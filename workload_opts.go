package pythia

// Workload options: Hadoop-side behavior — see the package doc's
// "Configuring a cluster" index.

// WithReduceSlowstart sets the fraction of maps that must complete before
// reducers launch (Hadoop's default 0.05).
func WithReduceSlowstart(f float64) Option {
	return func(c *config) { c.hadoopCfg.SlowstartFraction = f }
}

// WithParallelCopies bounds each reducer's concurrent fetches (default 5).
func WithParallelCopies(n int) Option { return func(c *config) { c.hadoopCfg.ParallelCopies = n } }

// WithHDFS attaches a simulated HDFS (64 MB blocks, 3-way replication,
// default placement policy). Jobs whose specs set ReduceOutputRatio > 0
// then write their reducer output back through the replication pipeline
// before completing; HDFS traffic rides the default ECMP pipeline, not
// Pythia's rules, as in the paper.
func WithHDFS() Option { return func(c *config) { c.hdfs = true } }

// WithIncast enables the TCP many-to-one goodput-collapse model at receiver
// edge links: beyond threshold concurrent incoming flows, capacity degrades
// by factor per extra flow, floored at floorFrac of nominal. Models the
// incast pathology the paper cites (Chen et al.); interacts with Hadoop's
// ParallelCopies setting.
func WithIncast(threshold int, factor, floorFrac float64) Option {
	return func(c *config) {
		c.incastThreshold = threshold
		c.incastFactor = factor
		c.incastFloor = floorFrac
	}
}
