package hdfs

import (
	"math"
	"testing"
	"testing/quick"

	"pythia/internal/ecmp"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

func rig() (*sim.Engine, *netsim.Network, *FileSystem, []topology.NodeID) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	fs := New(eng, net, hosts, ecmp.New(g, 2, 1), Config{}, 1)
	return eng, net, fs, hosts
}

func TestWriteCreatesReplicatedBlocks(t *testing.T) {
	eng, net, fs, hosts := rig()
	var file *File
	if err := fs.Write(hosts[0], "/data/a", 200e6, func(f *File) { file = f }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if file == nil {
		t.Fatal("write never completed")
	}
	// 200 MB at 64 MB blocks = 4 blocks.
	if len(file.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(file.Blocks))
	}
	g := net.Graph()
	for _, b := range file.Blocks {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas", b.ID, len(b.Replicas))
		}
		// Default policy: first replica on the writer.
		if b.Replicas[0] != hosts[0] {
			t.Fatalf("first replica on %d, want writer %d", b.Replicas[0], hosts[0])
		}
		// Second on a different rack; third on the second's rack,
		// different node.
		r1 := g.Node(b.Replicas[1]).Rack
		if r1 == g.Node(hosts[0]).Rack {
			t.Fatal("second replica on the writer's rack")
		}
		if g.Node(b.Replicas[2]).Rack != r1 {
			t.Fatal("third replica not on the second's rack")
		}
		if b.Replicas[2] == b.Replicas[1] {
			t.Fatal("third replica duplicates the second")
		}
	}
}

func TestWriteVolumeAccounting(t *testing.T) {
	eng, _, fs, hosts := rig()
	fs.Write(hosts[0], "/x", 128e6, nil)
	eng.Run()
	// 2 blocks x 3 replicas.
	if math.Abs(fs.BytesWritten-3*128e6) > 1 {
		t.Fatalf("BytesWritten = %v, want %v", fs.BytesWritten, 3*128e6)
	}
	total := 0.0
	for _, h := range hosts {
		total += fs.StoredBytes(h)
	}
	if math.Abs(total-3*128e6) > 1 {
		t.Fatalf("stored total = %v", total)
	}
}

func TestWritePipelineTiming(t *testing.T) {
	eng, _, fs, hosts := rig()
	var doneAt sim.Time
	// One 64 MB block: pipeline hops client(local) + 2 remote at 1 Gbps.
	// Slowest remote hop: 64 MB ≈ 0.512 s; hops run concurrently in the
	// fluid model but share the trunk, so expect < 2 s and > 0.5 s.
	fs.Write(hosts[0], "/t", 64e6, func(*File) { doneAt = eng.Now() })
	eng.Run()
	if doneAt < 0.4 || doneAt > 2.5 {
		t.Fatalf("pipeline took %v", doneAt)
	}
}

func TestWriteValidation(t *testing.T) {
	_, _, fs, hosts := rig()
	if err := fs.Write(hosts[0], "/a", 0, nil); err == nil {
		t.Fatal("zero-size write accepted")
	}
	if err := fs.Write(hosts[0], "/a", 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(hosts[0], "/a", 1e6, nil); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestReadPrefersLocalReplica(t *testing.T) {
	eng, net, fs, hosts := rig()
	fs.Write(hosts[0], "/r", 64e6, nil)
	eng.Run()
	// Reading from the writer: all blocks local, no fabric traffic.
	before := net.LinkBits(0)
	readDone := false
	if err := fs.Read(hosts[0], "/r", func() { readDone = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !readDone {
		t.Fatal("read never completed")
	}
	_ = before
	// Local read: the measured read volume counts, but nothing new on the
	// host's uplink beyond what the write placed there.
	if fs.BytesRead != 64e6 {
		t.Fatalf("BytesRead = %v", fs.BytesRead)
	}
}

func TestReadFromRemoteRackWorks(t *testing.T) {
	eng, _, fs, hosts := rig()
	fs.Write(hosts[0], "/far", 64e6, nil)
	eng.Run()
	// A client holding no replica (host1 is in rack0; replica 2,3 are in
	// rack1; host1 may or may not hold one — pick a host that holds none).
	file, _ := fs.Lookup("/far")
	holds := map[topology.NodeID]bool{}
	for _, b := range file.Blocks {
		for _, r := range b.Replicas {
			holds[r] = true
		}
	}
	var client topology.NodeID = -1
	for _, h := range hosts {
		if !holds[h] {
			client = h
			break
		}
	}
	if client == -1 {
		t.Skip("every host holds a replica")
	}
	done := false
	fs.Read(client, "/far", func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("remote read never completed")
	}
}

func TestReadUnknownFile(t *testing.T) {
	_, _, fs, hosts := rig()
	if err := fs.Read(hosts[0], "/nope", nil); err == nil {
		t.Fatal("unknown file read accepted")
	}
}

func TestStorageFlowsAreNotShuffle(t *testing.T) {
	eng, net, fs, hosts := rig()
	fs.Write(hosts[0], "/k", 64e6, nil)
	eng.Run()
	for _, f := range net.History() {
		if f.Kind != netsim.Storage {
			t.Fatalf("HDFS produced %v flow", f.Kind)
		}
	}
	// NetFlow-style shuffle accounting must be untouched.
	if net.HostTxBits(hosts[0]) != 0 {
		t.Fatal("storage traffic counted as shuffle TX")
	}
}

func TestSingleRackFallback(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 1, topology.Gbps)
	net := netsim.New(eng, g)
	// Use only rack-0 hosts as datanodes: remote-rack placement must fall
	// back to same-rack nodes.
	fs := New(eng, net, hosts[:5], ecmp.New(g, 2, 1), Config{}, 1)
	var file *File
	fs.Write(hosts[0], "/single", 64e6, func(f *File) { file = f })
	eng.Run()
	if file == nil {
		t.Fatal("write did not complete")
	}
	if len(file.Blocks[0].Replicas) != 3 {
		t.Fatalf("replicas = %d", len(file.Blocks[0].Replicas))
	}
	seen := map[topology.NodeID]bool{}
	for _, r := range file.Blocks[0].Replicas {
		if seen[r] {
			t.Fatal("duplicate replica node")
		}
		seen[r] = true
	}
}

func TestReplicationCappedByClusterSize(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(1, 1, topology.Gbps)
	net := netsim.New(eng, g)
	fs := New(eng, net, hosts, ecmp.New(g, 2, 1), Config{Replication: 5}, 1)
	var file *File
	fs.Write(hosts[0], "/c", 1e6, func(f *File) { file = f })
	eng.Run()
	if file == nil || len(file.Blocks[0].Replicas) != 2 {
		t.Fatalf("replicas should cap at cluster size 2: %+v", file)
	}
}

func TestConstructorPanics(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(2, 1, topology.Gbps)
	net := netsim.New(eng, g)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty hosts did not panic")
			}
		}()
		New(eng, net, nil, ecmp.New(g, 2, 1), Config{}, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil resolver did not panic")
			}
		}()
		New(eng, net, hosts, nil, Config{}, 1)
	}()
}

func TestDeterministicPlacement(t *testing.T) {
	place := func() []topology.NodeID {
		eng, _, fs, hosts := rig()
		var file *File
		fs.Write(hosts[2], "/d", 64e6, func(f *File) { file = f })
		eng.Run()
		return file.Blocks[0].Replicas
	}
	a, b := place(), place()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("placement nondeterministic")
		}
	}
}

func TestDeleteFreesStorage(t *testing.T) {
	eng, _, fs, hosts := rig()
	fs.Write(hosts[0], "/d", 128e6, nil)
	eng.Run()
	if err := fs.Delete("/d"); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, h := range hosts {
		total += fs.StoredBytes(h)
	}
	if total != 0 {
		t.Fatalf("storage not freed: %v", total)
	}
	if fs.Exists("/d") {
		t.Fatal("file still exists")
	}
	if err := fs.Delete("/d"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestFailDataNodeReplicates(t *testing.T) {
	eng, _, fs, hosts := rig()
	fs.Write(hosts[0], "/r", 192e6, nil) // 3 blocks x 3 replicas
	eng.Run()
	// Fail the writer (first replica of every block).
	var recovered, lost int
	gotCallback := false
	fs.FailDataNode(hosts[0], func(r, l int) { recovered, lost = r, l; gotCallback = true })
	eng.Run()
	if !gotCallback {
		t.Fatal("re-replication never completed")
	}
	if lost != 0 {
		t.Fatalf("lost %d blocks with 2 surviving replicas each", lost)
	}
	if recovered != 3 {
		t.Fatalf("recovered %d blocks, want 3", recovered)
	}
	// Every block is back at 3 replicas, none on the dead node.
	f, _ := fs.Lookup("/r")
	for _, b := range f.Blocks {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas", b.ID, len(b.Replicas))
		}
		for _, r := range b.Replicas {
			if r == hosts[0] {
				t.Fatal("replica still on failed node")
			}
		}
	}
	if fs.StoredBytes(hosts[0]) != 0 {
		t.Fatal("failed node still accounts storage")
	}
}

func TestFailDataNodeDataLoss(t *testing.T) {
	// Replication 1: failing the only holder loses the blocks.
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(2, 1, topology.Gbps)
	net := netsim.New(eng, g)
	fs := New(eng, net, hosts, ecmp.New(g, 2, 1), Config{Replication: 1}, 1)
	fs.Write(hosts[0], "/solo", 64e6, nil)
	eng.Run()
	var lost int
	fs.FailDataNode(hosts[0], func(r, l int) { lost = l })
	eng.Run()
	if lost != 1 {
		t.Fatalf("lost = %d, want 1", lost)
	}
}

func TestReadsSurviveNodeFailure(t *testing.T) {
	eng, _, fs, hosts := rig()
	fs.Write(hosts[0], "/read", 64e6, nil)
	eng.Run()
	fs.FailDataNode(hosts[0], nil)
	eng.Run()
	done := false
	if err := fs.Read(hosts[1], "/read", func() { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("read after failure did not complete")
	}
}

// Property: for random writers and file sizes, placement always honors the
// default policy invariants — first replica on the writer, no duplicate
// nodes per block, second replica off-rack when another rack exists.
func TestPropertyPlacementPolicy(t *testing.T) {
	f := func(writerIdx uint8, sizeMB uint16, seed uint64) bool {
		eng := sim.NewEngine()
		g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
		net := netsim.New(eng, g)
		fs := New(eng, net, hosts, ecmp.New(g, 2, 1), Config{}, seed)
		writer := hosts[int(writerIdx)%len(hosts)]
		size := (float64(sizeMB%512) + 1) * 1e6
		var file *File
		if err := fs.Write(writer, "/p", size, func(fl *File) { file = fl }); err != nil {
			return false
		}
		eng.Run()
		if file == nil {
			return false
		}
		writerRack := g.Node(writer).Rack
		for _, b := range file.Blocks {
			if b.Replicas[0] != writer {
				return false
			}
			seen := map[topology.NodeID]bool{}
			for _, r := range b.Replicas {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
			if len(b.Replicas) >= 2 && g.Node(b.Replicas[1]).Rack == writerRack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
