// Package hdfs models the Hadoop Distributed File System substrate the
// paper's jobs sit on: a namenode applying the default block-placement
// policy (first replica local, second on a remote rack, third on a
// different node of that remote rack), datanodes on every cluster host, and
// replication-pipeline writes and shortest-replica reads carried as flows
// on the network simulator.
//
// HDFS traffic is *not* scheduled by Pythia — it is part of the "rest of
// the datacenter traffic handled through default network control" (§IV) —
// so the filesystem takes its own PathResolver (normally ECMP).
package hdfs

import (
	"fmt"
	"math"

	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/stats"
	"pythia/internal/topology"
)

// PathResolver chooses network paths for block transfers (usually plain
// ECMP; mirrors hadoop.PathResolver).
type PathResolver interface {
	ResolveShuffle(t netsim.FiveTuple) (topology.Path, error)
}

// DataPort is the datanode streaming port (50010 in Hadoop 1.x).
const DataPort = 50010

// Config shapes the filesystem.
type Config struct {
	// BlockBytes is the block size (default 64 MB, Hadoop 1.x).
	BlockBytes float64
	// Replication is the replica count per block (default 3).
	Replication int
	// DiskBps caps the block write rate at each datanode; writes are
	// carried as zero-hop flows for the local replica (default 1 Gbps —
	// the paper stored intermediate data in memory, keeping disks off
	// the critical path).
	DiskBps float64
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.BlockBytes == 0 {
		c.BlockBytes = 64e6
	}
	if c.Replication == 0 {
		c.Replication = 3
	}
	if c.DiskBps == 0 {
		c.DiskBps = 1e9
	}
	return c
}

// Block is one replicated extent of a file.
type Block struct {
	ID       int
	Bytes    float64
	Replicas []topology.NodeID
}

// File is a closed HDFS file.
type File struct {
	Name   string
	Bytes  float64
	Blocks []Block
}

// FileSystem is the simulated HDFS instance.
type FileSystem struct {
	eng      *sim.Engine
	net      *netsim.Network
	resolver PathResolver
	cfg      Config
	rng      *stats.RNG

	hosts  []topology.NodeID
	byRack map[int][]topology.NodeID
	racks  []int

	files     map[string]*File
	stored    map[topology.NodeID]float64 // bytes per datanode
	nextBlock int
	nextPort  uint16

	// BytesWritten and BytesRead count completed transfers (all replicas).
	BytesWritten float64
	BytesRead    float64
}

// New builds a filesystem with a datanode on every host.
func New(eng *sim.Engine, net *netsim.Network, hosts []topology.NodeID, resolver PathResolver, cfg Config, seed uint64) *FileSystem {
	if len(hosts) == 0 {
		panic("hdfs: need at least one datanode")
	}
	if resolver == nil {
		panic("hdfs: nil path resolver")
	}
	fs := &FileSystem{
		eng:      eng,
		net:      net,
		resolver: resolver,
		cfg:      cfg.Defaults(),
		rng:      stats.NewRNG(seed ^ 0xD47A),
		hosts:    append([]topology.NodeID(nil), hosts...),
		byRack:   make(map[int][]topology.NodeID),
		files:    make(map[string]*File),
		stored:   make(map[topology.NodeID]float64),
		nextPort: 30000,
	}
	g := net.Graph()
	for _, h := range hosts {
		r := g.Node(h).Rack
		if _, seen := fs.byRack[r]; !seen {
			fs.racks = append(fs.racks, r)
		}
		fs.byRack[r] = append(fs.byRack[r], h)
	}
	return fs
}

// Exists reports whether a file is present.
func (fs *FileSystem) Exists(name string) bool { _, ok := fs.files[name]; return ok }

// Lookup returns a closed file's metadata.
func (fs *FileSystem) Lookup(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// StoredBytes reports the bytes a datanode holds (all replicas counted).
func (fs *FileSystem) StoredBytes(node topology.NodeID) float64 { return fs.stored[node] }

// placeReplicas applies the default HDFS placement policy.
func (fs *FileSystem) placeReplicas(client topology.NodeID) []topology.NodeID {
	n := fs.cfg.Replication
	if n > len(fs.hosts) {
		n = len(fs.hosts)
	}
	replicas := make([]topology.NodeID, 0, n)
	used := map[topology.NodeID]bool{}
	add := func(h topology.NodeID) {
		replicas = append(replicas, h)
		used[h] = true
	}
	// 1st: the client itself when it is a datanode; otherwise random.
	first := client
	if !fs.isDataNode(client) {
		first = fs.hosts[fs.rng.Intn(len(fs.hosts))]
	}
	add(first)
	if len(replicas) == n {
		return replicas
	}
	// 2nd: a node on a different rack (fall back to any other node on
	// single-rack clusters).
	g := fs.net.Graph()
	firstRack := g.Node(first).Rack
	var remote []topology.NodeID
	for _, r := range fs.racks {
		if r == firstRack {
			continue
		}
		remote = append(remote, fs.byRack[r]...)
	}
	var second topology.NodeID = -1
	if len(remote) > 0 {
		second = remote[fs.rng.Intn(len(remote))]
	} else {
		second = fs.randomUnused(used)
	}
	if second >= 0 {
		add(second)
	}
	if len(replicas) == n {
		return replicas
	}
	// 3rd: a different node on the second replica's rack.
	if second >= 0 {
		rack := g.Node(second).Rack
		var candidates []topology.NodeID
		for _, h := range fs.byRack[rack] {
			if !used[h] {
				candidates = append(candidates, h)
			}
		}
		if len(candidates) > 0 {
			add(candidates[fs.rng.Intn(len(candidates))])
		}
	}
	// Any remaining replicas (replication > 3): random unused nodes.
	for len(replicas) < n {
		h := fs.randomUnused(used)
		if h < 0 {
			break
		}
		add(h)
	}
	return replicas
}

func (fs *FileSystem) randomUnused(used map[topology.NodeID]bool) topology.NodeID {
	var free []topology.NodeID
	for _, h := range fs.hosts {
		if !used[h] {
			free = append(free, h)
		}
	}
	if len(free) == 0 {
		return -1
	}
	return free[fs.rng.Intn(len(free))]
}

func (fs *FileSystem) isDataNode(h topology.NodeID) bool {
	for _, d := range fs.hosts {
		if d == h {
			return true
		}
	}
	return false
}

// Write streams a new file of the given size from client, block by block,
// each block through its replication pipeline (client → r1 → r2 → r3).
// onComplete fires when the final block's last replica lands. It returns an
// error for empty sizes or duplicate names.
func (fs *FileSystem) Write(client topology.NodeID, name string, bytes float64, onComplete func(*File)) error {
	if bytes <= 0 {
		return fmt.Errorf("hdfs: write %q with non-positive size", name)
	}
	if fs.Exists(name) {
		return fmt.Errorf("hdfs: file %q exists", name)
	}
	file := &File{Name: name, Bytes: bytes}
	fs.files[name] = file
	numBlocks := int(math.Ceil(bytes / fs.cfg.BlockBytes))
	fs.writeBlock(client, file, 0, numBlocks, bytes, onComplete)
	return nil
}

// writeBlock writes block idx and chains to the next (HDFS streams blocks
// sequentially on one writer).
func (fs *FileSystem) writeBlock(client topology.NodeID, file *File, idx, total int, remaining float64, onComplete func(*File)) {
	size := fs.cfg.BlockBytes
	if remaining < size {
		size = remaining
	}
	replicas := fs.placeReplicas(client)
	block := Block{ID: fs.nextBlock, Bytes: size, Replicas: replicas}
	fs.nextBlock++

	// Pipeline: client → r1 → r2 → … Every hop moves the full block; the
	// pipeline finishes when its slowest hop finishes.
	hops := make([][2]topology.NodeID, 0, len(replicas))
	prev := client
	for _, r := range replicas {
		hops = append(hops, [2]topology.NodeID{prev, r})
		prev = r
	}
	pendingHops := len(hops)
	hopDone := func() {
		pendingHops--
		if pendingHops > 0 {
			return
		}
		// Block committed on all replicas.
		file.Blocks = append(file.Blocks, block)
		for _, r := range replicas {
			fs.stored[r] += size
		}
		fs.BytesWritten += size * float64(len(replicas))
		if idx+1 < total {
			fs.writeBlock(client, file, idx+1, total, remaining-size, onComplete)
			return
		}
		if onComplete != nil {
			onComplete(file)
		}
	}
	for _, hop := range hops {
		fs.transfer(hop[0], hop[1], size, hopDone)
	}
}

// transfer moves bytes src→dst as a Storage flow (zero-hop local replica
// writes are capped by disk rate via the network's local-path handling).
func (fs *FileSystem) transfer(src, dst topology.NodeID, bytes float64, done func()) {
	port := fs.nextPort
	fs.nextPort++
	if fs.nextPort == 0 {
		fs.nextPort = 30000
	}
	tuple := netsim.FiveTuple{SrcHost: src, DstHost: dst, SrcPort: DataPort, DstPort: port, Protocol: 6}
	var path topology.Path
	if src == dst {
		path = topology.Path{Src: src, Dst: dst}
	} else {
		p, err := fs.resolver.ResolveShuffle(tuple)
		if err != nil {
			// Unroutable (partition): retry like the DFSClient does.
			fs.eng.After(5*sim.Second, func() { fs.transfer(src, dst, bytes, done) })
			return
		}
		path = p
	}
	fs.net.StartFlow(tuple, netsim.Storage, path, bytes*8, -1, -1, -1, func(*netsim.Flow) { done() })
}

// Delete removes a file's metadata and frees its replicas' storage.
func (fs *FileSystem) Delete(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("hdfs: file %q not found", name)
	}
	for _, b := range f.Blocks {
		for _, r := range b.Replicas {
			fs.stored[r] -= b.Bytes
			if fs.stored[r] < 0 {
				fs.stored[r] = 0
			}
		}
	}
	delete(fs.files, name)
	return nil
}

// FailDataNode removes a datanode from service and re-replicates every
// block that held a replica there: for each under-replicated block, a
// surviving replica streams a copy to a new node (the namenode's
// re-replication queue). onComplete (may be nil) fires when all transfers
// land. Blocks with no surviving replica are lost and counted.
func (fs *FileSystem) FailDataNode(node topology.NodeID, onComplete func(recovered, lost int)) {
	// Remove from the datanode set.
	kept := fs.hosts[:0]
	for _, h := range fs.hosts {
		if h != node {
			kept = append(kept, h)
		}
	}
	fs.hosts = kept
	g := fs.net.Graph()
	fs.byRack = make(map[int][]topology.NodeID)
	fs.racks = fs.racks[:0]
	for _, h := range fs.hosts {
		r := g.Node(h).Rack
		if _, seen := fs.byRack[r]; !seen {
			fs.racks = append(fs.racks, r)
		}
		fs.byRack[r] = append(fs.byRack[r], h)
	}
	fs.stored[node] = 0

	pending := 0
	recovered, lost := 0, 0
	finish := func() {
		if pending == 0 && onComplete != nil {
			onComplete(recovered, lost)
		}
	}
	for _, f := range fs.files {
		for bi := range f.Blocks {
			b := &f.Blocks[bi]
			idx := -1
			for i, r := range b.Replicas {
				if r == node {
					idx = i
				}
			}
			if idx < 0 {
				continue
			}
			b.Replicas = append(b.Replicas[:idx], b.Replicas[idx+1:]...)
			if len(b.Replicas) == 0 {
				lost++
				continue
			}
			// Pick a target not already holding the block.
			used := map[topology.NodeID]bool{}
			for _, r := range b.Replicas {
				used[r] = true
			}
			target := fs.randomUnused(used)
			if target < 0 {
				continue // cluster too small to restore replication
			}
			src := b.Replicas[0]
			block := b
			bytes := b.Bytes
			pending++
			fs.transfer(src, target, bytes, func() {
				block.Replicas = append(block.Replicas, target)
				fs.stored[target] += bytes
				fs.BytesWritten += bytes
				recovered++
				pending--
				finish()
			})
		}
	}
	finish()
}

// BlockReplicas implements the hadoop.InputSource interface: the datanodes
// holding block idx of the named file.
func (fs *FileSystem) BlockReplicas(name string, idx int) ([]topology.NodeID, bool) {
	f, ok := fs.files[name]
	if !ok || idx < 0 || idx >= len(f.Blocks) {
		return nil, false
	}
	return append([]topology.NodeID(nil), f.Blocks[idx].Replicas...), true
}

// ReadBlock streams block idx of the named file to the client from its
// nearest replica (hadoop.InputSource).
func (fs *FileSystem) ReadBlock(client topology.NodeID, name string, idx int, done func()) error {
	f, ok := fs.files[name]
	if !ok || idx < 0 || idx >= len(f.Blocks) {
		return fmt.Errorf("hdfs: no block %d in %q", idx, name)
	}
	block := f.Blocks[idx]
	src := fs.nearestReplica(client, block.Replicas)
	fs.BytesRead += block.Bytes
	fs.transfer(src, client, block.Bytes, func() {
		if done != nil {
			done()
		}
	})
	return nil
}

// WriteOutput adapts Write to the hadoop.OutputSink interface (reducer
// write-back). Name collisions append a uniquifying suffix rather than
// failing, since task re-execution can legitimately rewrite output.
func (fs *FileSystem) WriteOutput(client topology.NodeID, name string, bytes float64, done func()) {
	final := name
	for i := 1; fs.Exists(final); i++ {
		final = fmt.Sprintf("%s.%d", name, i)
	}
	onComplete := func(*File) {
		if done != nil {
			done()
		}
	}
	if err := fs.Write(client, final, bytes, onComplete); err != nil {
		panic(fmt.Sprintf("hdfs: WriteOutput: %v", err))
	}
}

// Read streams a file to the client from the nearest replica of each block
// (same node beats same rack beats remote), sequentially, calling done at
// the end. Unknown files return an error.
func (fs *FileSystem) Read(client topology.NodeID, name string, done func()) error {
	file, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("hdfs: file %q not found", name)
	}
	if len(file.Blocks) == 0 {
		return fmt.Errorf("hdfs: file %q still being written", name)
	}
	fs.readBlock(client, file, 0, done)
	return nil
}

func (fs *FileSystem) readBlock(client topology.NodeID, file *File, idx int, done func()) {
	if idx >= len(file.Blocks) {
		if done != nil {
			done()
		}
		return
	}
	block := file.Blocks[idx]
	src := fs.nearestReplica(client, block.Replicas)
	fs.BytesRead += block.Bytes
	fs.transfer(src, client, block.Bytes, func() {
		fs.readBlock(client, file, idx+1, done)
	})
}

// nearestReplica prefers the client itself, then a same-rack replica, then
// any.
func (fs *FileSystem) nearestReplica(client topology.NodeID, replicas []topology.NodeID) topology.NodeID {
	g := fs.net.Graph()
	clientRack := g.Node(client).Rack
	best := replicas[0]
	bestScore := 3
	for _, r := range replicas {
		score := 2
		if r == client {
			score = 0
		} else if g.Node(r).Rack == clientRack {
			score = 1
		}
		if score < bestScore {
			best, bestScore = r, score
		}
	}
	return best
}
