// Package trace records MapReduce job execution events and renders them as
// sequence (Gantt) diagrams — the "custom visualization tool" the paper used
// to produce Fig. 1a, where the map, shuffle and reduce phases of a toy sort
// job are annotated and the 5x reducer skew is visible in the per-reducer
// fetch volumes. Output is ASCII (deterministic and diffable) plus an SVG
// writer for reports.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"pythia/internal/hadoop"
	"pythia/internal/netsim"
	"pythia/internal/sim"
)

// Span is one task's timeline segment.
type Span struct {
	Label string
	Host  int // tracker index
	Start sim.Time
	End   sim.Time
	Kind  SpanKind
}

// SpanKind classifies a span for rendering.
type SpanKind int

const (
	// MapSpan covers a map task's compute.
	MapSpan SpanKind = iota
	// ShuffleSpan covers a reducer's fetch phase.
	ShuffleSpan
	// ReduceSpan covers a reducer's compute after the shuffle barrier.
	ReduceSpan
)

func (k SpanKind) glyph() byte {
	switch k {
	case MapSpan:
		return 'M'
	case ShuffleSpan:
		return 's'
	case ReduceSpan:
		return 'R'
	}
	return '?'
}

// FetchRecord is one shuffle transfer.
type FetchRecord struct {
	Map, Reduce int
	Bytes       float64
	Start, End  sim.Time
	Remote      bool
}

// Recorder captures one job's execution from cluster events.
type Recorder struct {
	eng *sim.Engine

	jobID      int
	haveJob    bool
	mapStart   map[int]sim.Time
	redStart   map[int]sim.Time
	shufDone   map[int]sim.Time
	spans      []Span
	fetches    []FetchRecord
	fetchStart map[[2]int]sim.Time
	job        *hadoop.Job
}

// Attach wires a recorder to a cluster. It records the first job submitted
// (the Fig. 1a tool visualizes a single job).
func Attach(eng *sim.Engine, cluster *hadoop.Cluster) *Recorder {
	r := &Recorder{
		eng:        eng,
		mapStart:   make(map[int]sim.Time),
		redStart:   make(map[int]sim.Time),
		shufDone:   make(map[int]sim.Time),
		fetchStart: make(map[[2]int]sim.Time),
	}
	cluster.OnMapScheduled(func(j *hadoop.Job, m *hadoop.MapTask) {
		if !r.claim(j) {
			return
		}
		r.mapStart[m.ID] = eng.Now()
	})
	cluster.OnMapFinished(func(j *hadoop.Job, m *hadoop.MapTask, _ []float64) {
		if !r.owns(j) {
			return
		}
		r.spans = append(r.spans, Span{
			Label: fmt.Sprintf("map-%d", m.ID), Host: m.Tracker,
			Start: r.mapStart[m.ID], End: eng.Now(), Kind: MapSpan,
		})
	})
	cluster.OnReduceScheduled(func(j *hadoop.Job, red *hadoop.ReduceTask) {
		if !r.claim(j) {
			return
		}
		r.redStart[red.ID] = eng.Now()
	})
	cluster.OnFetchStart(func(j *hadoop.Job, mapID, reduceID int, f *netsim.Flow) {
		if !r.owns(j) {
			return
		}
		r.fetchStart[[2]int{mapID, reduceID}] = eng.Now()
	})
	cluster.OnFetchDone(func(j *hadoop.Job, mapID, reduceID int, f *netsim.Flow) {
		if !r.owns(j) {
			return
		}
		rec := FetchRecord{
			Map: mapID, Reduce: reduceID,
			Start: r.fetchStart[[2]int{mapID, reduceID}], End: eng.Now(),
		}
		if f != nil {
			rec.Bytes = f.SizeBits / 8
			rec.Remote = len(f.Path.Links) > 0
		}
		r.fetches = append(r.fetches, rec)
	})
	cluster.OnJobDone(func(j *hadoop.Job) {
		if !r.owns(j) {
			return
		}
		r.job = j
		for _, red := range j.Reduces {
			r.spans = append(r.spans,
				Span{Label: fmt.Sprintf("reduce-%d", red.ID), Host: red.Tracker,
					Start: r.redStart[red.ID], End: red.ShuffleDone, Kind: ShuffleSpan},
				Span{Label: fmt.Sprintf("reduce-%d", red.ID), Host: red.Tracker,
					Start: red.ShuffleDone, End: red.Finished, Kind: ReduceSpan},
			)
		}
	})
	return r
}

func (r *Recorder) claim(j *hadoop.Job) bool {
	if !r.haveJob {
		r.haveJob = true
		r.jobID = j.ID
	}
	return r.jobID == j.ID
}

func (r *Recorder) owns(j *hadoop.Job) bool { return r.haveJob && r.jobID == j.ID }

// Job returns the recorded job (nil before completion).
func (r *Recorder) Job() *hadoop.Job { return r.job }

// Spans returns recorded spans sorted by (kind, label).
func (r *Recorder) Spans() []Span {
	out := append([]Span(nil), r.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Fetches returns all fetch records in completion order.
func (r *Recorder) Fetches() []FetchRecord { return append([]FetchRecord(nil), r.fetches...) }

// ReducerVolumes sums fetched bytes per reducer — the skew annotation of
// Fig. 1a.
func (r *Recorder) ReducerVolumes() map[int]float64 {
	v := make(map[int]float64)
	for _, f := range r.fetches {
		v[f.Reduce] += f.Bytes
	}
	return v
}

// Render draws the ASCII sequence diagram, width columns wide. It returns
// an empty string when no job has completed.
func (r *Recorder) Render(width int) string {
	if r.job == nil || width < 40 {
		return ""
	}
	spans := r.Spans()
	t0 := r.job.Submitted
	t1 := r.job.Finished
	total := float64(t1.Sub(t0))
	if total <= 0 {
		return ""
	}
	labelW := 0
	rows := map[string][]Span{}
	var order []string
	for _, s := range spans {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
		if _, ok := rows[s.Label]; !ok {
			order = append(order, s.Label)
		}
		rows[s.Label] = append(rows[s.Label], s)
	}
	barW := width - labelW - 2
	if barW < 10 {
		barW = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d maps, %d reduces, %.1fs total\n",
		r.job.Spec.Name, r.job.Spec.NumMaps, r.job.Spec.NumReduces, total)
	fmt.Fprintf(&b, "phases: M=map s=shuffle R=reduce; maps done %.1fs, shuffle done %.1fs\n",
		float64(r.job.MapPhaseEnd.Sub(t0)), float64(r.job.ShuffleEnd.Sub(t0)))
	for _, label := range order {
		line := make([]byte, barW)
		for i := range line {
			line[i] = '.'
		}
		for _, s := range rows[label] {
			from := int(float64(s.Start.Sub(t0)) / total * float64(barW))
			to := int(float64(s.End.Sub(t0)) / total * float64(barW))
			if to >= barW {
				to = barW - 1
			}
			if from > to {
				from = to
			}
			for i := from; i <= to; i++ {
				line[i] = s.Kind.glyph()
			}
		}
		fmt.Fprintf(&b, "%-*s |%s\n", labelW, label, line)
	}
	// Skew annotation, as in Fig. 1a's discussion.
	vols := r.ReducerVolumes()
	var rids []int
	for rid := range vols {
		rids = append(rids, rid)
	}
	sort.Ints(rids)
	for _, rid := range rids {
		fmt.Fprintf(&b, "reducer-%d fetched %.1f MB\n", rid, vols[rid]/1e6)
	}
	return b.String()
}

// RenderSVG draws the same diagram as a standalone SVG document.
func (r *Recorder) RenderSVG() string {
	if r.job == nil {
		return ""
	}
	const (
		w        = 900
		rowH     = 22
		leftPad  = 120
		topPad   = 40
		rightPad = 20
	)
	spans := r.Spans()
	rows := map[string]int{}
	var order []string
	for _, s := range spans {
		if _, ok := rows[s.Label]; !ok {
			rows[s.Label] = len(order)
			order = append(order, s.Label)
		}
	}
	t0, t1 := r.job.Submitted, r.job.Finished
	total := float64(t1.Sub(t0))
	h := topPad + rowH*len(order) + 30
	scale := float64(w-leftPad-rightPad) / total
	colors := map[SpanKind]string{MapSpan: "#4e79a7", ShuffleSpan: "#f28e2b", ReduceSpan: "#59a14f"}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, w, h)
	fmt.Fprintf(&b, `<text x="10" y="20" font-family="monospace" font-size="14">%s: %.1fs (map | shuffle | reduce)</text>`,
		r.job.Spec.Name, total)
	for _, s := range spans {
		y := topPad + rows[s.Label]*rowH
		x := leftPad + float64(s.Start.Sub(t0))*scale
		sw := float64(s.End.Sub(s.Start)) * scale
		if sw < 1 {
			sw = 1
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"/>`,
			x, y, sw, rowH-6, colors[s.Kind])
	}
	for label, idx := range rows {
		fmt.Fprintf(&b, `<text x="6" y="%d" font-family="monospace" font-size="12">%s</text>`,
			topPad+idx*rowH+12, label)
	}
	b.WriteString(`</svg>`)
	return b.String()
}
