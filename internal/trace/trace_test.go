package trace

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pythia/internal/ecmp"
	"pythia/internal/hadoop"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

func runToy() (*Recorder, *hadoop.Job) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	rec := Attach(eng, cl)
	j, err := cl.Submit(workload.ToySort())
	if err != nil {
		panic(err)
	}
	eng.Run()
	return rec, j
}

func TestRecorderCapturesAllSpans(t *testing.T) {
	rec, j := runToy()
	if rec.Job() != j {
		t.Fatal("recorder job mismatch")
	}
	spans := rec.Spans()
	// 3 map spans + 2 shuffle + 2 reduce.
	var m, s, r int
	for _, sp := range spans {
		switch sp.Kind {
		case MapSpan:
			m++
		case ShuffleSpan:
			s++
		case ReduceSpan:
			r++
		}
		if sp.End < sp.Start {
			t.Fatalf("span %q ends before start", sp.Label)
		}
	}
	if m != 3 || s != 2 || r != 2 {
		t.Fatalf("spans m=%d s=%d r=%d, want 3/2/2", m, s, r)
	}
}

func TestReducerVolumesShowSkew(t *testing.T) {
	rec, _ := runToy()
	vols := rec.ReducerVolumes()
	// ToySort sends reducer-0 5x reducer-1 (payload); wire overhead is a
	// common factor.
	ratio := vols[0] / vols[1]
	if math.Abs(ratio-5) > 0.01 {
		t.Fatalf("volume ratio = %v, want 5 (Fig. 1a skew)", ratio)
	}
}

func TestFetchRecords(t *testing.T) {
	rec, _ := runToy()
	fs := rec.Fetches()
	if len(fs) != 6 { // 3 maps x 2 reducers
		t.Fatalf("fetches = %d, want 6", len(fs))
	}
	for _, f := range fs {
		if f.End < f.Start {
			t.Fatal("fetch ends before start")
		}
		if f.Bytes < 0 {
			t.Fatal("negative fetch volume")
		}
	}
}

func TestRenderASCII(t *testing.T) {
	rec, _ := runToy()
	out := rec.Render(100)
	if out == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"toy-sort", "map-0", "map-2", "reduce-0", "reduce-1", "reducer-0 fetched", "M", "s", "R"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Rows all same width region: every task line has the | separator.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 7 {
		t.Fatalf("only %d lines", len(lines))
	}
}

func TestRenderEmptyBeforeCompletion(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(2, 1, topology.Gbps)
	net := netsim.New(eng, g)
	cl := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	rec := Attach(eng, cl)
	if rec.Render(100) != "" {
		t.Fatal("render before any job")
	}
	if rec.RenderSVG() != "" {
		t.Fatal("svg before any job")
	}
}

func TestRenderSVG(t *testing.T) {
	rec, _ := runToy()
	svg := rec.RenderSVG()
	for _, want := range []string{"<svg", "</svg>", "rect", "toy-sort"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
}

func TestRecorderIgnoresSecondJob(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	rec := Attach(eng, cl)
	j1, _ := cl.Submit(workload.ToySort())
	cl.Submit(workload.ToySort())
	eng.Run()
	if rec.Job() != j1 {
		t.Fatal("recorder switched jobs")
	}
	if len(rec.Fetches()) != 6 {
		t.Fatalf("fetches = %d, want 6 (first job only)", len(rec.Fetches()))
	}
}

func TestShuffleSpanPrecedesReduceSpan(t *testing.T) {
	rec, _ := runToy()
	var shufEnd, redStart map[string]sim.Time
	shufEnd = map[string]sim.Time{}
	redStart = map[string]sim.Time{}
	for _, s := range rec.Spans() {
		switch s.Kind {
		case ShuffleSpan:
			shufEnd[s.Label] = s.End
		case ReduceSpan:
			redStart[s.Label] = s.Start
		}
	}
	for label, e := range shufEnd {
		if redStart[label] != e {
			t.Fatalf("%s: reduce starts at %v, shuffle ended %v", label, redStart[label], e)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	rec, _ := runToy()
	raw, err := rec.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			TsUs  float64 `json:"ts"`
			DurUs float64 `json:"dur"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	cats := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			t.Fatalf("non-complete event %q", e.Phase)
		}
		if e.TsUs < 0 || e.DurUs < 0 {
			t.Fatalf("negative timing in %q", e.Name)
		}
		cats[e.Cat]++
	}
	if cats["map"] != 3 || cats["shuffle"] != 2 || cats["reduce"] != 2 {
		t.Fatalf("categories: %v", cats)
	}
	if cats["fetch"] != 6 {
		t.Fatalf("fetch events = %d, want 6", cats["fetch"])
	}
}

func TestChromeTraceEmptyBeforeJob(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(2, 1, topology.Gbps)
	net := netsim.New(eng, g)
	cl := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	rec := Attach(eng, cl)
	raw, err := rec.ChromeTrace()
	if err != nil || raw != nil {
		t.Fatalf("expected nil trace, got %v / %v", raw, err)
	}
}
