package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// chromeEvent is one Trace Event Format record ("X" = complete event).
// The format is consumed by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

func (k SpanKind) category() string {
	switch k {
	case MapSpan:
		return "map"
	case ShuffleSpan:
		return "shuffle"
	case ReduceSpan:
		return "reduce"
	}
	return "unknown"
}

// ChromeTrace exports the recorded job as Chrome trace-event JSON: one
// "thread" per tasktracker, a complete-event per task span, and one per
// shuffle fetch (on a dedicated fetch lane per reducer). Returns nil when
// no job completed.
func (r *Recorder) ChromeTrace() ([]byte, error) {
	if r.job == nil {
		return nil, nil
	}
	t0 := r.job.Submitted
	var events []chromeEvent
	for _, s := range r.Spans() {
		events = append(events, chromeEvent{
			Name:  fmt.Sprintf("%s (%s)", s.Label, s.Kind.category()),
			Cat:   s.Kind.category(),
			Phase: "X",
			TsUs:  float64(s.Start.Sub(t0)) * 1e6,
			DurUs: float64(s.End.Sub(s.Start)) * 1e6,
			PID:   0,
			TID:   s.Host,
			Args:  map[string]any{"host": s.Host},
		})
	}
	// Fetch lanes: tid = 1000 + reducer ID keeps them clear of tracker
	// rows.
	fetches := r.Fetches()
	sort.Slice(fetches, func(i, j int) bool {
		if fetches[i].Start != fetches[j].Start {
			return fetches[i].Start < fetches[j].Start
		}
		return fetches[i].Map < fetches[j].Map
	})
	for _, f := range fetches {
		if f.Bytes == 0 {
			continue
		}
		events = append(events, chromeEvent{
			Name:  fmt.Sprintf("fetch m%d→r%d", f.Map, f.Reduce),
			Cat:   "fetch",
			Phase: "X",
			TsUs:  float64(f.Start.Sub(t0)) * 1e6,
			DurUs: float64(f.End.Sub(f.Start)) * 1e6,
			PID:   0,
			TID:   1000 + f.Reduce,
			Args: map[string]any{
				"bytes":  f.Bytes,
				"remote": f.Remote,
			},
		})
	}
	return json.MarshalIndent(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	}, "", " ")
}
