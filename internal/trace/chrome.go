package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"pythia/internal/flight"
	"pythia/internal/sim"
)

// chromeEvent is one Trace Event Format record ("X" = complete event).
// The format is consumed by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

func (k SpanKind) category() string {
	switch k {
	case MapSpan:
		return "map"
	case ShuffleSpan:
		return "shuffle"
	case ReduceSpan:
		return "reduce"
	}
	return "unknown"
}

// ChromeTrace exports the recorded job as Chrome trace-event JSON: one
// "thread" per tasktracker, a complete-event per task span, and one per
// shuffle fetch (on a dedicated fetch lane per reducer). Returns nil when
// no job completed.
func (r *Recorder) ChromeTrace() ([]byte, error) {
	if r.job == nil {
		return nil, nil
	}
	events := r.fabricChromeEvents(r.job.Submitted)
	return marshalChrome(events)
}

// marshalChrome renders trace events in the Chrome/Perfetto JSON envelope.
func marshalChrome(events []chromeEvent) ([]byte, error) {
	return json.MarshalIndent(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	}, "", " ")
}

// fabricChromeEvents renders the job's task spans and fetch lanes (pid 0)
// relative to t0.
func (r *Recorder) fabricChromeEvents(t0 sim.Time) []chromeEvent {
	var events []chromeEvent
	for _, s := range r.Spans() {
		events = append(events, chromeEvent{
			Name:  fmt.Sprintf("%s (%s)", s.Label, s.Kind.category()),
			Cat:   s.Kind.category(),
			Phase: "X",
			TsUs:  float64(s.Start.Sub(t0)) * 1e6,
			DurUs: float64(s.End.Sub(s.Start)) * 1e6,
			PID:   0,
			TID:   s.Host,
			Args:  map[string]any{"host": s.Host},
		})
	}
	// Fetch lanes: tid = 1000 + reducer ID keeps them clear of tracker
	// rows.
	fetches := r.Fetches()
	sort.Slice(fetches, func(i, j int) bool {
		if fetches[i].Start != fetches[j].Start {
			return fetches[i].Start < fetches[j].Start
		}
		return fetches[i].Map < fetches[j].Map
	})
	for _, f := range fetches {
		if f.Bytes == 0 {
			continue
		}
		events = append(events, chromeEvent{
			Name:  fmt.Sprintf("fetch m%d→r%d", f.Map, f.Reduce),
			Cat:   "fetch",
			Phase: "X",
			TsUs:  float64(f.Start.Sub(t0)) * 1e6,
			DurUs: float64(f.End.Sub(f.Start)) * 1e6,
			PID:   0,
			TID:   1000 + f.Reduce,
			Args: map[string]any{
				"bytes":  f.Bytes,
				"remote": f.Remote,
			},
		})
	}
	return events
}

// Control-plane lane assignment for the merged trace (pid 1).
var planeLanes = map[flight.Plane]int{
	flight.PlaneMonitor:   1,
	flight.PlaneMgmt:      2,
	flight.PlaneCollector: 3,
	flight.PlaneControl:   4,
	flight.PlaneFabric:    5,
	flight.PlaneServe:     6,
}

// MergedChrome exports one Chrome/Perfetto trace holding both the fabric
// view (the recorder's task spans and fetch lanes, pid 0) and the
// control-plane view (flight-recorder events on per-plane lanes, pid 1):
// rule-install RTTs and shuffle-flow lifetimes render as duration spans,
// everything else as instants. Either source may be absent: a nil recorder
// (or one that saw no job) yields control lanes only, and an empty event
// log yields the plain fabric trace.
func MergedChrome(r *Recorder, events []flight.Event) ([]byte, error) {
	// A common clock: the job submit instant when known, else the first
	// flight event, so timestamps are never negative.
	var t0 sim.Time
	haveT0 := false
	if r != nil && r.job != nil {
		t0 = r.job.Submitted
		haveT0 = true
	}
	if len(events) > 0 && (!haveT0 || events[0].T < t0) {
		t0 = events[0].T
	}

	var out []chromeEvent
	if r != nil && r.job != nil {
		out = append(out,
			chromeEvent{Name: "process_name", Phase: "M", PID: 0,
				Args: map[string]any{"name": "fabric"}})
		out = append(out, r.fabricChromeEvents(t0)...)
	}
	if len(events) > 0 {
		out = append(out,
			chromeEvent{Name: "process_name", Phase: "M", PID: 1,
				Args: map[string]any{"name": "control plane"}})
		for _, pl := range []flight.Plane{flight.PlaneMonitor, flight.PlaneMgmt,
			flight.PlaneCollector, flight.PlaneControl, flight.PlaneFabric,
			flight.PlaneServe} {
			out = append(out, chromeEvent{Name: "thread_name", Phase: "M",
				PID: 1, TID: planeLanes[pl], Args: map[string]any{"name": string(pl)}})
		}
	}
	for i := range events {
		out = append(out, controlChromeEvent(&events[i], t0))
	}
	return marshalChrome(out)
}

// controlChromeEvent converts one flight event to a trace record on its
// plane's lane. Events carrying a duration (install RTT, flow lifetime)
// become "X" complete events spanning it; the rest are "i" instants.
func controlChromeEvent(ev *flight.Event, t0 sim.Time) chromeEvent {
	ce := chromeEvent{
		Name:  string(ev.Kind),
		Cat:   string(ev.Plane),
		Phase: "i",
		TsUs:  float64(ev.T.Sub(t0)) * 1e6,
		PID:   1,
		TID:   planeLanes[ev.Plane],
	}
	spanKind := ev.Kind == flight.InstallDone || ev.Kind == flight.FlowCompleted ||
		ev.Kind == flight.BatchJournaled || ev.Kind == flight.BatchCommitted ||
		ev.Kind == flight.RecoveryReplay
	if spanKind && ev.DelaySec > 0 {
		ce.Phase = "X"
		ce.TsUs -= ev.DelaySec * 1e6
		ce.DurUs = ev.DelaySec * 1e6
	}
	args := map[string]any{}
	if ev.Job >= 0 {
		args["job"] = ev.Job
	}
	if ev.Map >= 0 {
		args["map"] = ev.Map
	}
	if ev.Reduce >= 0 {
		args["reduce"] = ev.Reduce
	}
	if ev.Src >= 0 {
		args["src"] = int(ev.Src)
	}
	if ev.Dst >= 0 {
		args["dst"] = int(ev.Dst)
	}
	if ev.Cookie != 0 {
		args["cookie"] = ev.Cookie
	}
	if ev.Bytes != 0 {
		args["bytes"] = ev.Bytes
	}
	if ev.Disposition != "" {
		args["disposition"] = ev.Disposition
	}
	if ev.Path != "" {
		args["path"] = ev.Path
	}
	if ev.Detail != "" {
		args["detail"] = ev.Detail
	}
	if len(args) > 0 {
		ce.Args = args
	}
	return ce
}
