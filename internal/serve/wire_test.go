package serve

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"pythia/internal/core"
	"pythia/internal/topology"
)

// goldenIngest is the canonical v1 request encoding. The wire format is a
// compatibility contract: if this test breaks, the protocol version must
// bump.
const goldenIngest = `{
  "reducers": [{"job": 3, "reduce": 0, "host": 5}],
  "intents": [
    {"job": 3, "map": 1, "src_host": 0, "predicted_wire_bytes": [1000000, 2500000]},
    {"job": 3, "map": 2, "attempt": 1, "src_host": 7, "predicted_wire_bytes": [500000]}
  ],
  "done_jobs": [2]
}`

// TestWireGoldenRoundTrip: the golden vector decodes to the expected
// structure, survives an encode/decode round trip, and omits empty optional
// fields on re-encode.
func TestWireGoldenRoundTrip(t *testing.T) {
	req, err := decodeIngest(strings.NewReader(goldenIngest), 8, 0)
	if err != nil {
		t.Fatalf("decode golden vector: %v", err)
	}
	want := &IngestRequest{
		Reducers: []WireReducerUp{{Job: 3, Reduce: 0, Host: 5}},
		Intents: []WireIntent{
			{Job: 3, Map: 1, SrcHost: 0, PredictedWireBytes: []float64{1e6, 2.5e6}},
			{Job: 3, Map: 2, Attempt: 1, SrcHost: 7, PredictedWireBytes: []float64{5e5}},
		},
		DoneJobs: []int{2},
	}
	if !reflect.DeepEqual(req, want) {
		t.Fatalf("golden vector decoded to\n%+v\nwant\n%+v", req, want)
	}

	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if strings.Contains(string(b), "attempt") && !strings.Contains(string(b), `"attempt":1`) {
		t.Errorf("attempt=0 not omitted on re-encode: %s", b)
	}
	again, err := decodeIngest(strings.NewReader(string(b)), 8, 0)
	if err != nil {
		t.Fatalf("decode re-encoded request: %v", err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("round trip diverged:\n%+v\nwant\n%+v", again, want)
	}
}

// TestWireToOps: protocol order (reducers, intents, done_jobs) with host
// indexes mapped through the fabric table.
func TestWireToOps(t *testing.T) {
	hosts := []topology.NodeID{100, 101, 102, 103, 104, 105, 106, 107}
	req, err := decodeIngest(strings.NewReader(goldenIngest), len(hosts), 0)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	ops := req.ToOps(hosts)
	wantKinds := []core.OpKind{core.OpReducerUp, core.OpIntent, core.OpIntent, core.OpJobDone}
	if len(ops) != len(wantKinds) {
		t.Fatalf("got %d ops, want %d", len(ops), len(wantKinds))
	}
	for i, k := range wantKinds {
		if ops[i].Kind != k {
			t.Errorf("ops[%d].Kind = %v, want %v", i, ops[i].Kind, k)
		}
	}
	if ops[0].Reducer.Host != 105 {
		t.Errorf("reducer host = %v, want 105", ops[0].Reducer.Host)
	}
	if ops[2].Intent.SrcHost != 107 {
		t.Errorf("intent src = %v, want 107", ops[2].Intent.SrcHost)
	}
	if ops[3].Job != 2 {
		t.Errorf("done job = %d, want 2", ops[3].Job)
	}
}

// TestWireRejections: every malformed-request class is refused with a
// diagnostic mentioning the offending field.
func TestWireRejections(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"truncated JSON", `{"intents": [`, "malformed"},
		{"trailing data", `{"done_jobs":[1]} {"done_jobs":[2]}`, "trailing data"},
		{"unknown field", `{"done_jobs":[1],"bogus":true}`, "bogus"},
		{"empty request", `{}`, "empty request"},
		{"negative job", `{"intents":[{"job":-1,"map":0,"src_host":0,"predicted_wire_bytes":[1]}]}`, "negative job"},
		{"host out of range", `{"reducers":[{"job":0,"reduce":0,"host":8}]}`, "outside"},
		{"negative src_host", `{"intents":[{"job":0,"map":0,"src_host":-1,"predicted_wire_bytes":[1]}]}`, "src_host"},
		{"no predicted bytes", `{"intents":[{"job":0,"map":0,"src_host":0,"predicted_wire_bytes":[]}]}`, "empty predicted_wire_bytes"},
		{"negative bytes", `{"intents":[{"job":0,"map":0,"src_host":0,"predicted_wire_bytes":[-5]}]}`, "finite non-negative"},
		{"non-finite bytes", `{"intents":[{"job":0,"map":0,"src_host":0,"predicted_wire_bytes":[1e999]}]}`, "malformed"},
		{"negative done job", `{"done_jobs":[-2]}`, "negative job"},
		{"over op budget", `{"done_jobs":[1,2,3]}`, "exceeds 2 operations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			maxOps := 0
			if tc.name == "over op budget" {
				maxOps = 2
			}
			_, err := decodeIngest(strings.NewReader(tc.body), 8, maxOps)
			if err == nil {
				t.Fatalf("body %q was accepted", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
