package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func postJSON(t *testing.T, client *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/v1/ingest", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /v1/ingest: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getStats(t *testing.T, client *http.Client, url string) StatsResponse {
	t.Helper()
	resp, err := client.Get(url + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return st
}

// TestServerEndToEnd drives one job through the full HTTP surface: reducer
// placements, intents (with one duplicate), retirement, stats, health.
func TestServerEndToEnd(t *testing.T) {
	srv, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	resp, body := postJSON(t, client, ts.URL, `{
		"reducers": [{"job":0,"reduce":0,"host":0},{"job":0,"reduce":1,"host":3}],
		"intents": [
			{"job":0,"map":0,"src_host":1,"predicted_wire_bytes":[1e7,2e7]},
			{"job":0,"map":0,"src_host":1,"predicted_wire_bytes":[1e7,2e7]}
		]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("decode ingest response: %v", err)
	}
	if ir.Accepted != 3 || ir.Duplicates != 1 || ir.Deferred != 0 {
		t.Fatalf("dispositions: %+v", ir)
	}
	if want := []string{"accepted", "accepted", "accepted", "duplicate"}; len(ir.Results) != 4 ||
		ir.Results[0] != want[0] || ir.Results[3] != want[3] {
		t.Fatalf("results %v, want %v", ir.Results, want)
	}

	st := getStats(t, client, ts.URL)
	if st.Placements == 0 || st.AggregatesPlaced == 0 {
		t.Fatalf("no placements after resolvable intents: %+v", st)
	}
	if st.OutstandingBookings == 0 {
		t.Fatalf("expected live bookings before retirement: %+v", st)
	}

	resp, body = postJSON(t, client, ts.URL, `{"done_jobs":[0]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retire: HTTP %d: %s", resp.StatusCode, body)
	}
	if st := getStats(t, client, ts.URL); st.OutstandingBookings != 0 {
		t.Fatalf("%d bookings leaked after done_jobs", st.OutstandingBookings)
	}

	resp, body = postJSON(t, client, ts.URL, `{"intents":[{"job":0,"map":0,"src_host":99,"predicted_wire_bytes":[1]}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad host: HTTP %d: %s", resp.StatusCode, body)
	}

	hz, err := client.Get(ts.URL + "/v1/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hz.StatusCode, err)
	}
	hz.Body.Close()

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerBackpressure429: with a full single-slot queue and no batch
// loop draining it, the next request is rejected with 429 + Retry-After;
// once the loop starts, the queued request completes normally.
func TestServerBackpressure429(t *testing.T) {
	srv, err := New(Config{QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately not started: the queue can only fill.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, client, ts.URL, `{"done_jobs":[7]}`)
		first <- resp.StatusCode
	}()
	// Wait until the first request occupies the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for getStats(t, client, ts.URL).QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, client, ts.URL, `{"done_jobs":[8]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	srv.Start()
	if code := <-first; code != http.StatusOK {
		t.Fatalf("queued request: HTTP %d after loop start", code)
	}
	if st := getStats(t, client, ts.URL); st.RejectedTotal != 1 {
		t.Fatalf("rejected_total = %d, want 1", st.RejectedTotal)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerGracefulShutdown: after Shutdown both ingest and health answer
// 503, and shutdown itself returns cleanly.
func TestServerGracefulShutdown(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	if resp, body := postJSON(t, client, ts.URL, `{"done_jobs":[1]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if resp, _ := postJSON(t, client, ts.URL, `{"done_jobs":[2]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining ingest: HTTP %d, want 503", resp.StatusCode)
	}
	hz, err := client.Get(ts.URL + "/v1/healthz")
	if err != nil || hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %v %v, want 503", hz.StatusCode, err)
	}
	hz.Body.Close()
}

// TestServerConcurrentIngest hammers the server from many goroutines (one
// job per goroutine, so op order within a job is preserved) and checks
// nothing leaks — the test exists mostly for the race detector.
func TestServerConcurrentIngest(t *testing.T) {
	srv, err := New(Config{Shards: 4, QueueCap: 8, BatchMax: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const jobs = 12
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			client := ts.Client()
			post := func(body string) {
				for {
					resp, err := client.Post(ts.URL+"/v1/ingest", "application/json",
						bytes.NewReader([]byte(body)))
					if err != nil {
						t.Errorf("job %d: %v", j, err)
						return
					}
					code := resp.StatusCode
					resp.Body.Close()
					if code == http.StatusTooManyRequests {
						time.Sleep(time.Millisecond)
						continue
					}
					if code != http.StatusOK {
						t.Errorf("job %d: HTTP %d", j, code)
					}
					return
				}
			}
			post(fmt.Sprintf(`{"reducers":[{"job":%d,"reduce":0,"host":%d},{"job":%d,"reduce":1,"host":%d}]}`,
				j, j%8, j, (j+3)%8))
			for m := 0; m < 4; m++ {
				post(fmt.Sprintf(`{"intents":[{"job":%d,"map":%d,"src_host":%d,"predicted_wire_bytes":[2e6,3e6]}]}`,
					j, m, (j+m)%8))
			}
			post(fmt.Sprintf(`{"done_jobs":[%d]}`, j))
		}(j)
	}
	wg.Wait()

	st := getStats(t, ts.Client(), ts.URL)
	if st.OutstandingBookings != 0 || st.PendingIntents != 0 {
		t.Fatalf("leaks after all jobs retired: %+v", st)
	}
	if st.IntentsReceived != jobs*4 {
		t.Fatalf("intents_received = %d, want %d", st.IntentsReceived, jobs*4)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
