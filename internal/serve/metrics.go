package serve

import (
	"strconv"
	"sync"

	"pythia/internal/flight"
	"pythia/internal/wal"
)

// This file is the serving plane's metric set: a flight.LiveRegistry behind
// typed observation methods. A nil *serveMetrics means instrumentation is
// disabled — every method nil-checks its receiver, so the disabled hot path
// costs one pointer compare and zero allocations (guarded by
// BenchmarkMetricsDisabled). The /metrics endpoint merges this registry's
// cumulative snapshot with scrape-time polled series (queue depth, collector
// and WAL gauges) before one exposition render.

// Histogram bucket edges, chosen for the serving plane's ranges.
var (
	// latencyEdges spans sub-millisecond in-process handling through
	// multi-second saturation backlogs.
	latencyEdges = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// bodyEdges spans one-op requests through the 8 MiB body cap.
	bodyEdges = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}
	// batchEdges spans singleton batches through BatchMax-scale coalescing.
	batchEdges = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	// fsyncEdges spans page-cache syncs through slow-disk stalls.
	fsyncEdges = []float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025,
		0.005, 0.01, 0.025, 0.05, 0.1, 0.25}
)

// Rejection reasons for pythia_serve_rejected_total.
const (
	rejectQueueFull  = "queue_full"
	rejectTooLarge   = "body_too_large"
	rejectBadRequest = "bad_request"
	rejectDraining   = "draining"
	rejectCrashed    = "crashed"
	rejectRecovering = "recovering"
)

type routeCode struct {
	route string
	code  int
}

// serveMetrics owns the live registry and the pre-registered handles the
// request path and batch loop observe through.
type serveMetrics struct {
	reg *flight.LiveRegistry

	bodyBytes     *flight.LiveHistogram
	batchOps      *flight.LiveHistogram
	commitSeconds *flight.LiveHistogram
	batchesTotal  *flight.LiveCounter
	opsTotal      *flight.LiveCounter

	walAppends     *flight.LiveCounter
	walAppendBytes *flight.LiveCounter
	walFsync       *flight.LiveHistogram
	walRotations   *flight.LiveCounter
	walSnapshots   *flight.LiveCounter
	walSnapBytes   *flight.LiveCounter
	walCompacted   *flight.LiveCounter

	// Label-fanned families, materialized on first use under mu. The hot
	// path is one mutex and a struct-keyed map lookup — no allocation.
	mu        sync.Mutex
	requests  map[routeCode]*flight.LiveCounter
	latencies map[string]*flight.LiveHistogram
	rejects   map[string]*flight.LiveCounter
}

func newServeMetrics() *serveMetrics {
	reg := flight.NewLiveRegistry()
	return &serveMetrics{
		reg: reg,
		bodyBytes: reg.Histogram("pythia_serve_request_body_bytes",
			"Ingest request body sizes in bytes.", bodyEdges),
		batchOps: reg.Histogram("pythia_serve_batch_ops",
			"Operations per committed collector batch.", batchEdges),
		commitSeconds: reg.Histogram("pythia_serve_commit_seconds",
			"Wall seconds per batch commit (journal append through collector apply).", latencyEdges),
		batchesTotal: reg.Counter("pythia_serve_batches_total",
			"Collector batches committed."),
		opsTotal: reg.Counter("pythia_serve_ops_total",
			"Collector operations committed."),
		walAppends: reg.Counter("pythia_wal_appends_total",
			"Journal records appended."),
		walAppendBytes: reg.Counter("pythia_wal_appended_bytes_total",
			"Journal payload bytes appended."),
		walFsync: reg.Histogram("pythia_wal_fsync_seconds",
			"Journal fsync wall time in seconds.", fsyncEdges),
		walRotations: reg.Counter("pythia_wal_rotations_total",
			"Journal segment rotations (including the first segment)."),
		walSnapshots: reg.Counter("pythia_wal_snapshots_total",
			"Durable snapshots written."),
		walSnapBytes: reg.Counter("pythia_wal_snapshot_bytes_total",
			"Snapshot payload bytes written."),
		walCompacted: reg.Counter("pythia_wal_compacted_segments_total",
			"Journal segments removed by compaction."),
		requests:  map[routeCode]*flight.LiveCounter{},
		latencies: map[string]*flight.LiveHistogram{},
		rejects:   map[string]*flight.LiveCounter{},
	}
}

// request records one completed HTTP request: the per-route/per-code counter
// and the per-route latency histogram.
func (m *serveMetrics) request(route string, code int, seconds float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c, ok := m.requests[routeCode{route, code}]
	if !ok {
		c = m.reg.Counter(
			flight.SeriesName("pythia_serve_requests_total", "route", route, "code", strconv.Itoa(code)),
			"HTTP requests served, by route and status code.")
		m.requests[routeCode{route, code}] = c
	}
	h, ok := m.latencies[route]
	if !ok {
		h = m.reg.Histogram(
			flight.SeriesName("pythia_serve_request_seconds", "route", route),
			"HTTP request latency in seconds, by route.", latencyEdges)
		m.latencies[route] = h
	}
	m.mu.Unlock()
	c.Inc()
	h.Observe(seconds)
}

// rejected counts one refused request by reason (429 queue_full, 413
// body_too_large, 400 bad_request, 503 draining/crashed/recovering).
func (m *serveMetrics) rejected(reason string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c, ok := m.rejects[reason]
	if !ok {
		c = m.reg.Counter(
			flight.SeriesName("pythia_serve_rejected_total", "reason", reason),
			"Requests refused, by reason.")
		m.rejects[reason] = c
	}
	m.mu.Unlock()
	c.Inc()
}

// body records an ingest request's body size.
func (m *serveMetrics) body(bytes int64) {
	if m == nil || bytes < 0 {
		return
	}
	m.bodyBytes.Observe(float64(bytes))
}

// batch records one committed batch: size, commit wall time, op throughput.
func (m *serveMetrics) batch(ops int, commitSeconds float64) {
	if m == nil {
		return
	}
	m.batchesTotal.Inc()
	m.opsTotal.Add(float64(ops))
	m.batchOps.Observe(float64(ops))
	m.commitSeconds.Observe(commitSeconds)
}

// walObserver bridges the journal's lifecycle hooks into the registry.
// Returns nil when metrics are disabled, preserving the journal's nil-check
// fast path.
func (m *serveMetrics) walObserver() *wal.Observer {
	if m == nil {
		return nil
	}
	return &wal.Observer{
		Append: func(bytes int) {
			m.walAppends.Inc()
			m.walAppendBytes.Add(float64(bytes))
		},
		Fsync:    func(sec float64) { m.walFsync.Observe(sec) },
		Rotate:   func() { m.walRotations.Inc() },
		Snapshot: func(bytes int) { m.walSnapshots.Inc(); m.walSnapBytes.Add(float64(bytes)) },
		Compact:  func(segments int) { m.walCompacted.Add(float64(segments)) },
	}
}

// normalizeRoute maps a request path onto the bounded route-label set, so
// arbitrary client paths cannot mint unbounded series.
func normalizeRoute(path string) string {
	switch path {
	case "/v1/ingest", "/v1/stats", "/v1/healthz", "/v1/readyz", "/metrics":
		return path
	}
	if len(path) >= len("/debug/pprof") && path[:len("/debug/pprof")] == "/debug/pprof" {
		return "/debug/pprof"
	}
	return "other"
}
