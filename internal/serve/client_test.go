package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first n requests with status (plus an optional
// Retry-After header), then delegates to ok.
func flakyHandler(n int, status int, retryAfter string, ok http.Handler) (http.Handler, *atomic.Int32) {
	var calls atomic.Int32
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(calls.Add(1)) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			writeError(w, status, "induced failure")
			return
		}
		ok.ServeHTTP(w, r)
	}), &calls
}

func clientConfig() ClientConfig {
	return ClientConfig{
		AttemptTimeout: time.Second,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		Seed:           3,
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	srv, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusInternalServerError} {
		h, calls := flakyHandler(2, status, "", srv.Handler())
		ts := httptest.NewServer(h)
		cl := NewClient(ts.URL, clientConfig())
		resp, err := cl.Ingest(context.Background(), &IngestRequest{DoneJobs: []int{1}})
		if err != nil {
			t.Errorf("status %d: ingest after retries: %v", status, err)
		} else if len(resp.Results) != 1 {
			t.Errorf("status %d: results %v", status, resp.Results)
		}
		if got := calls.Load(); got != 3 {
			t.Errorf("status %d: %d attempts, want 3", status, got)
		}
		ts.Close()
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	srv, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	h, _ := flakyHandler(1, http.StatusTooManyRequests, "1", srv.Handler())
	ts := httptest.NewServer(h)
	defer ts.Close()
	cl := NewClient(ts.URL, clientConfig()) // jitter envelope is 5 ms; Retry-After asks for 1 s
	start := time.Now()
	if _, err := cl.Ingest(context.Background(), &IngestRequest{DoneJobs: []int{2}}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if d := time.Since(start); d < time.Second {
		t.Errorf("retried after %v; Retry-After asked for >= 1s", d)
	}
}

func TestClientPermanentErrorNoRetry(t *testing.T) {
	srv, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	var calls atomic.Int32
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counted)
	defer ts.Close()
	cl := NewClient(ts.URL, clientConfig())
	_, err = cl.Ingest(context.Background(), &IngestRequest{Intents: []WireIntent{{
		Job: 0, Map: 0, SrcHost: 9999, PredictedWireBytes: []float64{1}}}})
	var perm *PermanentError
	if !errors.As(err, &perm) || perm.StatusCode != http.StatusBadRequest {
		t.Fatalf("want PermanentError(400), got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("%d attempts for a permanent error, want 1", got)
	}
}

func TestClientContextCancelsBackoff(t *testing.T) {
	always := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusServiceUnavailable, "down forever")
	})
	ts := httptest.NewServer(always)
	defer ts.Close()
	cfg := clientConfig()
	cfg.BaseBackoff = 50 * time.Millisecond
	cfg.MaxBackoff = time.Second
	cl := NewClient(ts.URL, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := cl.Ingest(ctx, &IngestRequest{DoneJobs: []int{1}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestClientMaxAttempts(t *testing.T) {
	var calls atomic.Int32
	always := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusInternalServerError, "broken")
	})
	ts := httptest.NewServer(always)
	defer ts.Close()
	cfg := clientConfig()
	cfg.MaxAttempts = 3
	cl := NewClient(ts.URL, cfg)
	if _, err := cl.Ingest(context.Background(), &IngestRequest{DoneJobs: []int{1}}); err == nil {
		t.Fatal("ingest against a broken server succeeded")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("%d attempts, want 3", got)
	}
}

func TestClientStats(t *testing.T) {
	srv, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL, clientConfig())
	st, err := cl.ServerStats(context.Background())
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.NumHosts == 0 {
		t.Errorf("stats reported zero hosts: %+v", st)
	}
}
