package serve

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"pythia/internal/core"
	"pythia/internal/flight"
	"pythia/internal/sim"
)

// This file is the serving plane's durability layer: the write-ahead
// discipline in the batch loop (journal before commit, commit before ack),
// snapshot compaction, crash-point injection for the chaos tests, and the
// startup recovery path.
//
// The recovery contract: with ClockHz set, a server killed at any crash
// point and restarted with Recover reaches a placement digest bit-identical
// to an uninterrupted run fed the same requests. Three properties carry it:
//
//  1. Journal-before-ack. A batch's ops are framed (WireBatch) and appended
//     before ApplyBatch runs; a response is only released after commit. A
//     crash before append loses nothing acked; a crash after append is
//     replayed on restart; in both windows the client saw no reply and
//     retries, where the collector's (job, map, attempt) idempotence set
//     makes the resubmission a no-op — exactly-once by construction.
//  2. The journal is the clock authority. Each record carries the engine
//     instant its batch committed at; replay runs the engine to exactly
//     that instant, so TTL sweeps fire at the same virtual times in the
//     recovered timeline. Live traffic meters the clock by NovelOps —
//     already-applied redeliveries advance virtual time by zero — so a
//     crashed-and-retried run and the oracle agree on every sweep instant.
//  3. Snapshots are exact. The collector snapshot carries float64 state
//     bit-for-bit (summing bookings back up would re-associate additions),
//     and rules are re-installed under their original cookies, so the
//     restored placement plane is indistinguishable from the original.

// CrashPoint identifies an injection site in the batch loop's write-ahead
// sequence. The three points bracket the durability windows that matter: a
// batch can die before it is journaled, after it is journaled but before it
// mutates the collector, or after commit but before clients hear about it.
type CrashPoint int

const (
	// CrashBeforeAppend kills the loop before the batch reaches the
	// journal: the batch is lost, clients time out and retry.
	CrashBeforeAppend CrashPoint = iota
	// CrashAfterAppend kills the loop between journal append and collector
	// commit: restart replays the batch, client retries deduplicate.
	CrashAfterAppend
	// CrashAfterCommit kills the loop after commit but before responses are
	// released: restart already has the batch (journaled and applied),
	// client retries deduplicate.
	CrashAfterCommit
)

func (p CrashPoint) String() string {
	switch p {
	case CrashBeforeAppend:
		return "before-append"
	case CrashAfterAppend:
		return "after-append"
	case CrashAfterCommit:
		return "after-commit"
	}
	return fmt.Sprintf("CrashPoint(%d)", int(p))
}

// crashAt consults the injection hook; on a hit it simulates a process kill:
// the journal handle is abandoned without a final sync (the OS page cache
// keeps un-fsynced writes alive across an in-process "restart", exactly as a
// kill -9 on the same machine would), crashedC wakes every waiting handler,
// and the caller abandons the batch without answering anyone.
func (s *Server) crashAt(p CrashPoint) bool {
	if s.cfg.CrashHook == nil || !s.cfg.CrashHook(p) {
		return false
	}
	s.crashOnce.Do(func() {
		if s.wal != nil {
			s.wal.Abort()
		}
		close(s.crashedC)
	})
	return true
}

// crashed reports whether a crash point fired.
func (s *Server) crashed() bool {
	select {
	case <-s.crashedC:
		return true
	default:
		return false
	}
}

// walSnapshot is the snapshot-file payload: the collector's complete state
// plus the serving-plane continuation values (logical clock, running
// placement digest) that let a restart resume the digest stream mid-word.
// gob preserves float64 bit patterns and the collector snapshot's
// array-keyed maps.
type walSnapshot struct {
	Core       *core.Snapshot
	VirtualSec float64
	Digest     uint64
	Placements int
}

func encodeSnapshot(s *walSnapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeSnapshot(p []byte) (*walSnapshot, error) {
	s := new(walSnapshot)
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(s); err != nil {
		return nil, err
	}
	return s, nil
}

// snapshotLocked cuts a snapshot covering the journal through appliedSeq and
// compacts segments the snapshot supersedes. Caller holds colMu. Snapshot
// failure is availability-safe — the journal remains authoritative and the
// next restart just replays more — so errors skip compaction rather than
// stopping the server.
func (s *Server) snapshotLocked() {
	payload, err := encodeSnapshot(&walSnapshot{
		Core:       s.col.Snapshot(),
		VirtualSec: s.virtual,
		Digest:     s.digest,
		Placements: s.placements,
	})
	if err != nil {
		return
	}
	if err := s.wal.WriteSnapshot(s.appliedSeq, payload); err != nil {
		return
	}
	_, _ = s.wal.Compact(s.appliedSeq + 1)
	s.snapSeq = s.appliedSeq
	s.snapshots++
	if s.fr != nil {
		ev := flight.Ev(flight.SnapshotTaken, flight.PlaneServe)
		ev.T = sim.Time(s.virtual)
		ev.Bytes = float64(len(payload))
		s.fr.Record(ev)
	}
	if s.log != nil {
		s.log.Debug("snapshot written", "seq", s.appliedSeq, "bytes", len(payload))
	}
}

// recover rebuilds collector and serving state from the journal directory:
// restore the latest snapshot (if any), run the engine to the snapshot
// instant — catch-up TTL sweeps are no-ops against restored state — then
// replay the journal tail through the normal ApplyBatch path, each record at
// its journaled engine instant. Runs in Start's goroutine behind the
// readiness gate, concurrent with stats and metrics scrapes, so it holds
// colMu around the restore and around each replayed record — a scrape
// interleaving mid-replay sees a consistent prefix of the recovered state.
func (s *Server) recover() error {
	t0 := time.Now()
	seq, payload, ok, err := s.wal.LatestSnapshot()
	if err != nil {
		return fmt.Errorf("serve: reading snapshot: %w", err)
	}
	from := uint64(1)
	if ok {
		snap, err := decodeSnapshot(payload)
		if err != nil {
			return fmt.Errorf("serve: decoding snapshot %d: %w", seq, err)
		}
		s.colMu.Lock()
		if err := s.col.Restore(snap.Core); err != nil {
			s.colMu.Unlock()
			return fmt.Errorf("serve: restoring snapshot %d: %w", seq, err)
		}
		s.virtual = snap.VirtualSec
		s.digest = snap.Digest
		s.placements = snap.Placements
		s.appliedSeq = seq
		s.snapSeq = seq
		from = seq + 1
		if t := sim.Time(s.virtual); t > s.eng.Now() {
			s.eng.RunUntil(t)
		}
		s.colMu.Unlock()
	}
	n := 0
	err = s.wal.Replay(from, func(recSeq uint64, p []byte) error {
		b, err := decodeBatch(p)
		if err != nil {
			return fmt.Errorf("serve: journal record %d: %w", recSeq, err)
		}
		ops, err := b.ToOps(s.hosts)
		if err != nil {
			return fmt.Errorf("serve: journal record %d: %w", recSeq, err)
		}
		s.colMu.Lock()
		if t := sim.Time(b.VirtualSec); t > s.eng.Now() {
			s.eng.RunUntil(t)
		}
		s.col.ApplyBatch(ops, s.cfg.Workers)
		s.virtual = b.VirtualSec
		s.appliedSeq = recSeq
		s.colMu.Unlock()
		n++
		return nil
	})
	if err != nil {
		return err
	}
	sec := time.Since(t0).Seconds()
	s.colMu.Lock()
	s.recovered = true
	s.recoveredRecords = n
	s.recoverySec = sec
	virtual := s.virtual
	s.colMu.Unlock()
	if s.fr != nil {
		ev := flight.Ev(flight.RecoveryReplay, flight.PlaneServe)
		ev.T = sim.Time(virtual)
		ev.Count = n
		ev.DelaySec = sec
		s.fr.Record(ev)
	}
	if s.log != nil {
		s.log.Info("recovery complete",
			"replayed_records", n, "virtual_sec", virtual, "wall_sec", sec)
	}
	return nil
}
