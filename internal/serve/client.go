package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pythia/internal/stats"
)

// ClientConfig tunes the retrying client. The zero value is usable.
type ClientConfig struct {
	// AttemptTimeout bounds each HTTP attempt (default 10 s). The caller's
	// context bounds the whole call including backoff sleeps.
	AttemptTimeout time.Duration
	// MaxAttempts caps attempts per call; 0 retries until the context
	// expires.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (default 50 ms); MaxBackoff
	// caps it (default 5 s). Sleeps use full jitter — uniform in
	// (0, min(MaxBackoff, BaseBackoff<<attempt)] — except when the server's
	// Retry-After asks for longer.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter sequence deterministic (tests); 0 seeds from
	// the clock.
	Seed uint64
	// HTTP overrides the transport (default http.DefaultTransport with the
	// per-attempt timeout applied via context).
	HTTP *http.Client
}

// Client is a resilient client for the serving API: per-attempt timeouts,
// exponential backoff with full jitter, Retry-After honored on 429/503, and
// context propagation. Safe for concurrent use.
//
// Retrying an ingest request is safe by protocol construction: intents
// deduplicate on (job, map, attempt), reducer placements are idempotent
// last-write-wins, and done_jobs for retired jobs are no-ops — so a request
// resubmitted across a server crash and restart is applied exactly once.
type Client struct {
	base string
	cfg  ClientConfig

	mu  sync.Mutex
	rng *stats.RNG
	st  ClientStats // local retry counters (under mu)
}

// ClientStats counts the client's own retry behavior — the client-side view
// of server health. All fields are cumulative since construction.
type ClientStats struct {
	// Attempts counts HTTP round trips started (includes the first try of
	// every call).
	Attempts int64 `json:"attempts"`
	// Retries counts attempts after the first for any call.
	Retries int64 `json:"retries"`
	// RetryAfterHonored counts backoff sleeps stretched to a server
	// Retry-After hint.
	RetryAfterHonored int64 `json:"retry_after_honored"`
	// TransportErrors counts attempts that failed before an HTTP status
	// (connection refused, attempt timeout).
	TransportErrors int64 `json:"transport_errors"`
	// PermanentErrors counts non-retryable server rejections.
	PermanentErrors int64 `json:"permanent_errors"`
	// BackoffSeconds sums time spent sleeping between attempts.
	BackoffSeconds float64 `json:"backoff_seconds"`
}

// NewClient builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string, cfg ClientConfig) *Client {
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 10 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	return &Client{base: baseURL, cfg: cfg, rng: stats.NewRNG(seed)}
}

// PermanentError wraps a server rejection that retrying cannot fix (4xx
// other than 429): the request itself is wrong.
type PermanentError struct {
	StatusCode int
	Message    string
}

func (e *PermanentError) Error() string {
	return fmt.Sprintf("server rejected request (%d): %s", e.StatusCode, e.Message)
}

// Ingest submits one batch of operations, retrying transport errors and
// retryable statuses (429, 500, 502, 503, 504) with backoff until the
// context expires or MaxAttempts is reached. The returned error wraps the
// last attempt's failure.
func (c *Client) Ingest(ctx context.Context, req *IngestRequest) (*IngestResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding request: %w", err)
	}
	resp := new(IngestResponse)
	if err := c.do(ctx, http.MethodPost, "/v1/ingest", body, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// ServerStats fetches the server's stats snapshot with the same retry
// policy.
func (c *Client) ServerStats(ctx context.Context) (*StatsResponse, error) {
	resp := new(StatsResponse)
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Stats returns a copy of the client's own retry counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// do runs the retry loop around one logical call.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; c.cfg.MaxAttempts <= 0 || attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.count(func(st *ClientStats) { st.Retries++ })
			if err := c.sleep(ctx, attempt, lastErr); err != nil {
				return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return err
		}
		retryable, err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("serve: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// retryAfterError carries the server's Retry-After hint to the backoff.
type retryAfterError struct {
	status     int
	message    string
	retryAfter time.Duration // 0 when the server sent no hint
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("server busy (%d): %s", e.status, e.message)
}

// count applies one mutation to the client's retry counters under mu.
func (c *Client) count(f func(*ClientStats)) {
	c.mu.Lock()
	f(&c.st)
	c.mu.Unlock()
}

// attempt runs one HTTP round trip. It reports whether a failure is worth
// retrying.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) (retryable bool, err error) {
	c.count(func(st *ClientStats) { st.Attempts++ })
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return false, fmt.Errorf("serve: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		// Transport errors (connection refused mid-restart, attempt
		// timeout) are the retrying client's reason to exist.
		c.count(func(st *ClientStats) { st.TransportErrors++ })
		return true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out); err != nil {
			return true, fmt.Errorf("serve: decoding response: %w", err)
		}
		return false, nil
	}
	var msg ErrorResponse
	_ = json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&msg)
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusInternalServerError, http.StatusBadGateway, http.StatusGatewayTimeout:
		var after time.Duration
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, perr := strconv.Atoi(v); perr == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return true, &retryAfterError{status: resp.StatusCode, message: msg.Error, retryAfter: after}
	default:
		c.count(func(st *ClientStats) { st.PermanentErrors++ })
		return false, &PermanentError{StatusCode: resp.StatusCode, Message: msg.Error}
	}
}

// sleep blocks for the attempt's backoff: full jitter over the exponential
// envelope, stretched to the server's Retry-After when that asks for more.
func (c *Client) sleep(ctx context.Context, attempt int, lastErr error) error {
	envelope := c.cfg.MaxBackoff
	if shift := attempt - 1; shift < 30 {
		if d := c.cfg.BaseBackoff << shift; d < envelope {
			envelope = d
		}
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Float64() * float64(envelope))
	c.mu.Unlock()
	if d <= 0 {
		d = time.Millisecond
	}
	if rae, ok := lastErr.(*retryAfterError); ok && rae.retryAfter > d {
		d = rae.retryAfter
		c.count(func(st *ClientStats) { st.RetryAfterHonored++ })
	}
	c.count(func(st *ClientStats) { st.BackoffSeconds += d.Seconds() })
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
