package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pythia/internal/core"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Config tunes the serving surface and the collector behind it.
type Config struct {
	// Shards is the collector shard count (core.Config.Shards); Workers
	// bounds ApplyBatch's concurrent shard phase.
	Shards  int
	Workers int

	// QueueCap bounds the ingest queue in requests. A full queue is the
	// backpressure signal: new requests are rejected with 429 and a
	// Retry-After header instead of queueing unboundedly.
	QueueCap int
	// BatchMax caps the operations folded into one collector batch (one
	// placement pass); the batch loop drains at most this many ops from
	// queued requests before committing.
	BatchMax int
	// MaxOpsPerRequest rejects oversized ingest requests up front.
	MaxOpsPerRequest int

	// ClockHz, when positive, drives the collector on a logical clock:
	// each ingested operation advances virtual time by 1/ClockHz seconds,
	// so TTL sweeps fire at operation-count-determined instants and a
	// request sequence has one deterministic outcome regardless of wall
	// speed (the oracle mode). Zero uses the wall clock since Start.
	ClockHz float64
	// BookingTTLSec garbage-collects bookings whose flows never settle
	// (in serving mode nothing drains bookings except done_jobs and this
	// sweep). Zero disables.
	BookingTTLSec float64

	// K is the k-shortest-paths fan-out per pair. FatTreeK/HostsPerEdge
	// size the fat-tree fabric standing in for the datacenter network.
	K            int
	FatTreeK     int
	HostsPerEdge int
}

// Defaults fills unset fields: 4 shards, 4 workers, 256-request queue,
// 512-op batches, 4096-op requests, 30 s booking TTL, and a k=4 fat-tree
// (16 hosts).
func (c Config) Defaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Workers <= 0 {
		c.Workers = c.Shards
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 512
	}
	if c.MaxOpsPerRequest <= 0 {
		c.MaxOpsPerRequest = 4096
	}
	if c.BookingTTLSec == 0 {
		c.BookingTTLSec = 30
	}
	if c.K <= 0 {
		c.K = 4
	}
	if c.FatTreeK <= 0 {
		c.FatTreeK = 4
	}
	if c.HostsPerEdge <= 0 {
		c.HostsPerEdge = c.FatTreeK / 2
	}
	return c
}

// ingestJob is one queued request: its lowered operations, and the slot the
// batch loop fills before signaling done.
type ingestJob struct {
	ops     []core.Op
	results []core.OpResult
	enq     time.Time
	done    chan struct{}
}

// latRingSize bounds the server-side latency sample ring (power of two).
const latRingSize = 1 << 14

// Server is the Pythia serving process: an HTTP front end, a bounded ingest
// queue, and a single batch loop that owns the collector and its simulated
// SDN substrate.
type Server struct {
	cfg   Config
	hosts []topology.NodeID

	// colMu serializes collector + engine access between the batch loop
	// and the stats handler.
	colMu sync.Mutex
	eng   *sim.Engine
	col   core.Collector

	digest     uint64 // FNV-1a over the placement stream (under colMu)
	placements int
	virtual    float64 // logical clock (ClockHz mode, under colMu)

	queue    chan *ingestJob
	stop     chan struct{}
	loopDone chan struct{}
	draining atomic.Bool
	started  atomic.Bool
	startAt  time.Time

	requestsTotal atomic.Int64
	rejectedTotal atomic.Int64

	latMu  sync.Mutex
	latSec [latRingSize]float64 // enqueue→commit, seconds
	latN   int                  // total recorded (ring index = latN % size)

	mux     *http.ServeMux
	httpSrv *http.Server // set by ListenAndServe
}

// New builds a serving stack: fat-tree fabric, network simulator, OpenFlow
// controller, and a sharded collector, all owned by the server's batch
// loop. Call Start before serving requests.
func New(cfg Config) (*Server, error) {
	cfg = cfg.Defaults()
	if cfg.FatTreeK%2 != 0 {
		return nil, fmt.Errorf("serve: fat-tree k must be even, got %d", cfg.FatTreeK)
	}
	eng := sim.NewEngine()
	g, hosts := topology.FatTree(cfg.FatTreeK, cfg.HostsPerEdge, topology.Gbps)
	net := netsim.New(eng, g)
	ofc := openflow.NewController(eng, net, 0)
	py := core.New(eng, net, ofc, core.Config{
		K:              cfg.K,
		Aggregate:      true,
		UseCriticality: true,
		BookingTTL:     sim.Duration(cfg.BookingTTLSec),
		Shards:         cfg.Shards,
	})
	s := &Server{
		cfg:      cfg,
		hosts:    hosts,
		eng:      eng,
		col:      py,
		queue:    make(chan *ingestJob, cfg.QueueCap),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	py.SetPlacementHook(s.observePlacement)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s, nil
}

// observePlacement folds one placement decision into the running digest
// (called by the collector during ApplyBatch, i.e. under colMu).
func (s *Server) observePlacement(src, dst topology.NodeID, path topology.Path) {
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			s.digest ^= (v >> (8 * i)) & 0xff
			s.digest *= 1099511628211
		}
	}
	mix(uint64(src))
	mix(uint64(dst))
	for _, l := range path.Links {
		mix(uint64(l))
	}
	mix(^uint64(0)) // record separator
	s.placements++
}

// Start launches the batch loop and anchors the wall clock. It must be
// called exactly once, before the first request.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		panic("serve: Start called twice")
	}
	s.digest = 14695981039346656037 // FNV-1a offset basis
	s.startAt = time.Now()
	go s.loop()
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// NumHosts reports the fabric's host count — the exclusive upper bound for
// wire host indexes.
func (s *Server) NumHosts() int { return len(s.hosts) }

// ListenAndServe starts the batch loop (if not already started) and serves
// HTTP on addr until Shutdown. It returns http.ErrServerClosed after a
// clean shutdown, like net/http.
func (s *Server) ListenAndServe(addr string) error {
	if !s.started.Load() {
		s.Start()
	}
	s.httpSrv = &http.Server{Addr: addr, Handler: s.mux}
	return s.httpSrv.ListenAndServe()
}

// Shutdown drains gracefully: new requests are refused with 503, in-flight
// handlers finish (the batch loop keeps committing until they do), then the
// loop drains the residual queue and exits. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	close(s.stop)
	select {
	case <-s.loopDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	return err
}

// loop is the batch executor: it coalesces queued requests up to BatchMax
// operations, advances the collector clock, and applies one collector batch
// (one placement pass) per iteration.
func (s *Server) loop() {
	defer close(s.loopDone)
	for {
		select {
		case j := <-s.queue:
			s.runBatch(s.coalesce(j))
		case <-s.stop:
			// Residual drain: requests enqueued before shutdown finished
			// still get committed and answered.
			for {
				select {
				case j := <-s.queue:
					s.runBatch(s.coalesce(j))
				default:
					return
				}
			}
		}
	}
}

// coalesce greedily folds already-queued requests after j into one batch,
// up to BatchMax operations.
func (s *Server) coalesce(j *ingestJob) []*ingestJob {
	batch := []*ingestJob{j}
	n := len(j.ops)
	for n < s.cfg.BatchMax {
		select {
		case j2 := <-s.queue:
			batch = append(batch, j2)
			n += len(j2.ops)
		default:
			return batch
		}
	}
	return batch
}

// runBatch concatenates the batch's operations, advances the collector
// clock (firing any due TTL sweeps), applies the batch, and distributes
// results and latency samples back to the waiting requests.
func (s *Server) runBatch(batch []*ingestJob) {
	nops := 0
	for _, j := range batch {
		nops += len(j.ops)
	}
	ops := make([]core.Op, 0, nops)
	for _, j := range batch {
		ops = append(ops, j.ops...)
	}

	s.colMu.Lock()
	var target float64
	if s.cfg.ClockHz > 0 {
		s.virtual += float64(nops) / s.cfg.ClockHz
		target = s.virtual
	} else {
		target = time.Since(s.startAt).Seconds()
	}
	if deadline := sim.Time(target); deadline > s.eng.Now() {
		s.eng.RunUntil(deadline)
	}
	results := s.col.ApplyBatch(ops, s.cfg.Workers)
	s.colMu.Unlock()

	now := time.Now()
	s.latMu.Lock()
	at := 0
	for _, j := range batch {
		j.results = results[at : at+len(j.ops)]
		at += len(j.ops)
		s.latSec[s.latN%latRingSize] = now.Sub(j.enq).Seconds()
		s.latN++
	}
	s.latMu.Unlock()
	for _, j := range batch {
		close(j.done)
	}
}

// latencyPercentiles snapshots the ring and reports (p50, p99) in seconds.
func (s *Server) latencyPercentiles() (p50, p99 float64) {
	s.latMu.Lock()
	n := s.latN
	if n > latRingSize {
		n = latRingSize
	}
	samples := make([]float64, n)
	copy(samples, s.latSec[:n])
	s.latMu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(samples)
	pick := func(q float64) float64 {
		i := int(q * float64(n-1))
		return samples[i]
	}
	return pick(0.50), pick(0.99)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.requestsTotal.Add(1)
	req, err := decodeIngest(r.Body, len(s.hosts), s.cfg.MaxOpsPerRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := &ingestJob{ops: req.ToOps(s.hosts), enq: time.Now(), done: make(chan struct{})}
	select {
	case s.queue <- j:
	default:
		// Bounded-queue backpressure: reject rather than buffer without
		// limit, and tell the client when to come back.
		s.rejectedTotal.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "ingest queue full (%d requests)", s.cfg.QueueCap)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone; the batch loop will still commit the ops (they are
		// in the queue), there is just nobody to answer.
		return
	}
	resp := IngestResponse{Results: make([]string, len(j.results)), QueueDepth: len(s.queue)}
	for i, res := range j.results {
		resp.Results[i] = res.String()
		switch res {
		case core.OpDuplicate:
			resp.Duplicates++
		case core.OpDeferred:
			resp.Deferred++
		default:
			resp.Accepted++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.colMu.Lock()
	st := s.col.Stats()
	digest := s.digest
	placements := s.placements
	virtual := float64(s.eng.Now())
	s.colMu.Unlock()
	p50, p99 := s.latencyPercentiles()
	writeJSON(w, http.StatusOK, StatsResponse{
		CollectorStats:   st,
		PlacementDigest:  fmt.Sprintf("%016x", digest),
		Placements:       placements,
		QueueDepth:       len(s.queue),
		NumHosts:         len(s.hosts),
		VirtualSec:       virtual,
		RequestsTotal:    s.requestsTotal.Load(),
		RejectedTotal:    s.rejectedTotal.Load(),
		LatencyP50Micros: p50 * 1e6,
		LatencyP99Micros: p99 * 1e6,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
