package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pythia/internal/core"
	"pythia/internal/flight"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/wal"
)

// Config tunes the serving surface and the collector behind it.
type Config struct {
	// Shards is the collector shard count (core.Config.Shards); Workers
	// bounds ApplyBatch's concurrent shard phase.
	Shards  int
	Workers int

	// QueueCap bounds the ingest queue in requests. A full queue is the
	// backpressure signal: new requests are rejected with 429 and a
	// Retry-After header instead of queueing unboundedly.
	QueueCap int
	// BatchMax caps the operations folded into one collector batch (one
	// placement pass); the batch loop drains at most this many ops from
	// queued requests before committing.
	BatchMax int
	// MaxOpsPerRequest rejects oversized ingest requests up front.
	MaxOpsPerRequest int

	// ClockHz, when positive, drives the collector on a logical clock:
	// each ingested operation advances virtual time by 1/ClockHz seconds,
	// so TTL sweeps fire at operation-count-determined instants and a
	// request sequence has one deterministic outcome regardless of wall
	// speed (the oracle mode). Zero uses the wall clock since Start.
	ClockHz float64
	// BookingTTLSec garbage-collects bookings whose flows never settle
	// (in serving mode nothing drains bookings except done_jobs and this
	// sweep). Zero disables.
	BookingTTLSec float64

	// K is the k-shortest-paths fan-out per pair. FatTreeK/HostsPerEdge
	// size the fat-tree fabric standing in for the datacenter network.
	K            int
	FatTreeK     int
	HostsPerEdge int

	// WALDir, when set, enables the write-ahead journal: every batch is
	// appended (and synced per FsyncEvery) before it commits, and commits
	// before clients are answered, so an acked operation survives a crash.
	WALDir string
	// Recover replays WALDir's snapshot + journal tail through the normal
	// ApplyBatch path during New. Without it, a non-empty journal is an
	// error — silently ignoring history would leak every booking it holds.
	Recover bool
	// FsyncEvery is the journal sync cadence: 0 syncs every append (the
	// durable default), N > 1 every Nth, negative never (page-cache-only
	// durability — survives process kills, not power loss).
	FsyncEvery int
	// SnapshotEvery cuts a snapshot and compacts the journal every this
	// many committed batches, bounding restart cost. 0 defaults to 1024;
	// negative disables periodic snapshots (graceful shutdown still cuts a
	// final one).
	SnapshotEvery int
	// SegmentBytes caps journal segment size (0 defaults to 8 MiB).
	SegmentBytes int64

	// CrashHook, when non-nil, is consulted at each CrashPoint in the
	// batch loop; returning true simulates a process kill there (chaos
	// tests). Production servers leave it nil.
	CrashHook func(CrashPoint) bool

	// Metrics enables the live metrics registry and the GET /metrics
	// Prometheus exposition endpoint. Disabled, the request and batch hot
	// paths carry zero instrumentation cost (no allocations — guarded by
	// BenchmarkMetricsDisabled).
	Metrics bool
	// Pprof mounts net/http/pprof under /debug/pprof/ (opt-in: profiling
	// endpoints leak internals and should not face untrusted clients).
	Pprof bool
	// Logger, when non-nil, enables structured request and batch logging
	// through it. Level filtering is the logger's: request logs emit at
	// Info, per-batch logs at Debug.
	Logger *slog.Logger
	// FlightEvents, when positive, enables a bounded in-memory flight
	// recorder holding the newest FlightEvents serve-plane events
	// (ingest → journal → commit → placement), exported via
	// Server.FlightEvents / Server.ChromeTrace.
	FlightEvents int
}

// Defaults fills unset fields: 4 shards, 4 workers, 256-request queue,
// 512-op batches, 4096-op requests, 30 s booking TTL, and a k=4 fat-tree
// (16 hosts).
func (c Config) Defaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Workers <= 0 {
		c.Workers = c.Shards
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 512
	}
	if c.MaxOpsPerRequest <= 0 {
		c.MaxOpsPerRequest = 4096
	}
	if c.BookingTTLSec == 0 {
		c.BookingTTLSec = 30
	}
	if c.K <= 0 {
		c.K = 4
	}
	if c.FatTreeK <= 0 {
		c.FatTreeK = 4
	}
	if c.HostsPerEdge <= 0 {
		c.HostsPerEdge = c.FatTreeK / 2
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 1024
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 8 << 20
	}
	return c
}

// ingestJob is one queued request: its lowered operations, and the slot the
// batch loop fills before signaling done.
type ingestJob struct {
	ops     []core.Op
	results []core.OpResult
	enq     time.Time
	done    chan struct{}
}

// latRingSize bounds the server-side latency sample ring (power of two).
const latRingSize = 1 << 14

// Server is the Pythia serving process: an HTTP front end, a bounded ingest
// queue, and a single batch loop that owns the collector and its simulated
// SDN substrate.
type Server struct {
	cfg     Config
	hosts   []topology.NodeID
	hostIdx map[topology.NodeID]int // reverse host table for journal encoding

	// colMu serializes collector + engine access between the batch loop
	// and the stats handler.
	colMu sync.Mutex
	eng   *sim.Engine
	col   core.Collector

	digest     uint64 // FNV-1a over the placement stream (under colMu)
	placements int
	virtual    float64 // logical clock (ClockHz mode, under colMu)

	// Durability state (under colMu; the batch loop is the only appender).
	wal        *wal.Log
	appliedSeq uint64 // last journal seq committed into the collector
	snapSeq    uint64 // journal seq the latest snapshot covers through
	snapshots  int

	// Recovery report (written by the recovery goroutine under colMu
	// before readyC closes; read under colMu).
	recovered        bool
	recoveredRecords int
	recoverySec      float64

	// Readiness gate. readyC closes once the server can ingest (for a
	// Recover server, after replay completes inside Start's goroutine;
	// otherwise in New). failedC closes instead when recovery fails;
	// recoverErr is written before failedC closes and read-only after.
	// recoverGate, when non-nil, holds recovery until it closes (tests
	// observe the "recovering" readiness state through it).
	needsRecover bool
	readyC       chan struct{}
	failedC      chan struct{}
	recoverErr   error
	recoverGate  chan struct{}

	queue    chan *ingestJob
	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}
	draining atomic.Bool
	started  atomic.Bool
	startAt  time.Time

	// crashedC closes when an injected crash point fires; every waiting
	// handler wakes and answers 503 so clients retry against the restarted
	// process.
	crashedC  chan struct{}
	crashOnce sync.Once

	// statsMu guards the serving counters and the latency ring as one
	// snapshot domain: /v1/stats reads them in a single critical section,
	// so its queue depth, totals, and percentiles are mutually consistent.
	statsMu       sync.Mutex
	requestsTotal int64
	rejectedTotal int64
	latSec        [latRingSize]float64 // enqueue→commit, seconds
	latN          int                  // total recorded (ring index = latN % size)
	lastCommit    time.Time            // last batch commit (under statsMu)
	reqPerSec     float64              // EWMA of request commit rate (under statsMu)

	// Observability plane (nil when disabled; every use nil-checks).
	met    *serveMetrics
	fr     *flight.LiveRecorder
	log    *slog.Logger
	reqSeq atomic.Uint64 // request-ID sequence for the logging middleware

	mux     *http.ServeMux
	handler http.Handler // mux, possibly wrapped in the observability middleware
	httpMu  sync.Mutex
	// httpSrv is set by ListenAndServe and read by Shutdown (under httpMu
	// — the two race otherwise).
	httpSrv *http.Server
}

// New builds a serving stack: fat-tree fabric, network simulator, OpenFlow
// controller, and a sharded collector, all owned by the server's batch
// loop. Call Start before serving requests.
func New(cfg Config) (*Server, error) {
	cfg = cfg.Defaults()
	if cfg.FatTreeK%2 != 0 {
		return nil, fmt.Errorf("serve: fat-tree k must be even, got %d", cfg.FatTreeK)
	}
	eng := sim.NewEngine()
	g, hosts := topology.FatTree(cfg.FatTreeK, cfg.HostsPerEdge, topology.Gbps)
	net := netsim.New(eng, g)
	ofc := openflow.NewController(eng, net, 0)
	py := core.New(eng, net, ofc, core.Config{
		K:              cfg.K,
		Aggregate:      true,
		UseCriticality: true,
		BookingTTL:     sim.Duration(cfg.BookingTTLSec),
		Shards:         cfg.Shards,
	})
	s := &Server{
		cfg:      cfg,
		hosts:    hosts,
		hostIdx:  make(map[topology.NodeID]int, len(hosts)),
		eng:      eng,
		col:      py,
		queue:    make(chan *ingestJob, cfg.QueueCap),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
		crashedC: make(chan struct{}),
		readyC:   make(chan struct{}),
		failedC:  make(chan struct{}),
		log:      cfg.Logger,
	}
	for i, h := range hosts {
		s.hostIdx[h] = i
	}
	s.digest = 14695981039346656037 // FNV-1a offset basis
	py.SetPlacementHook(s.observePlacement)
	if cfg.Metrics {
		s.met = newServeMetrics()
	}
	if cfg.FlightEvents > 0 {
		s.fr = flight.NewLiveRecorder(cfg.FlightEvents, nil)
		py.SetFlightRecorder(s.fr)
	}

	if cfg.WALDir != "" {
		l, err := wal.Open(cfg.WALDir, wal.Options{
			SegmentBytes: cfg.SegmentBytes,
			SyncEvery:    cfg.FsyncEvery,
			Observer:     s.met.walObserver(),
		})
		if err != nil {
			return nil, fmt.Errorf("serve: opening journal: %w", err)
		}
		s.wal = l
		_, _, hasSnap, snapErr := l.LatestSnapshot()
		switch {
		case cfg.Recover:
			// Replay runs asynchronously in Start, behind the readiness
			// gate, so liveness probes and scrapes answer during a long
			// recovery. The history check below stays synchronous: an
			// un-replayable journal must fail construction loudly.
			s.needsRecover = true
		case l.Records() > 0 || (snapErr == nil && hasSnap):
			l.Abort()
			return nil, fmt.Errorf("serve: journal %s holds history; set Recover to replay it or point WALDir at a fresh directory", cfg.WALDir)
		}
	}
	if !s.needsRecover {
		close(s.readyC) // nothing to replay: ready from construction
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	if cfg.Metrics {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.handler = http.Handler(s.mux)
	if s.met != nil || s.log != nil {
		s.handler = s.instrument(s.mux)
	}
	return s, nil
}

// observePlacement folds one placement decision into the running digest
// (called by the collector during ApplyBatch, i.e. under colMu).
func (s *Server) observePlacement(src, dst topology.NodeID, path topology.Path) {
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			s.digest ^= (v >> (8 * i)) & 0xff
			s.digest *= 1099511628211
		}
	}
	mix(uint64(src))
	mix(uint64(dst))
	for _, l := range path.Links {
		mix(uint64(l))
	}
	mix(^uint64(0)) // record separator
	s.placements++
}

// Start launches the batch loop and anchors the wall clock. It must be
// called exactly once, before the first request. For a Recover server,
// journal replay runs first, asynchronously, behind the readiness gate:
// ingest answers 503 "recovering" (retryable) and /v1/readyz reports the
// state until replay completes — use AwaitReady to block on it.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		panic("serve: Start called twice")
	}
	go func() {
		if s.needsRecover {
			if s.recoverGate != nil {
				<-s.recoverGate // test hook: hold the server in "recovering"
			}
			if err := s.recover(); err != nil {
				s.recoverErr = err
				s.wal.Abort()
				if s.log != nil {
					s.log.Error("recovery failed", "error", err)
				}
				close(s.failedC)
				close(s.loopDone) // Shutdown must not wait on a loop that never ran
				return
			}
			close(s.readyC)
		}
		// In wall-clock mode a recovered process re-anchors so elapsed
		// time continues from the recovered virtual instant instead of
		// rewinding.
		s.colMu.Lock()
		v := s.virtual
		s.colMu.Unlock()
		s.startAt = time.Now().Add(-time.Duration(v * float64(time.Second)))
		s.loop()
	}()
}

// AwaitReady blocks until the server can ingest: immediately for a fresh
// server, after journal replay for a Recover server. It returns the
// recovery error if replay failed, or ctx's error if it expires first.
func (s *Server) AwaitReady(ctx context.Context) error {
	select {
	case <-s.readyC:
		return nil
	case <-s.failedC:
		return s.recoverErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ready reports whether the server is past its readiness gate.
func (s *Server) ready() bool {
	select {
	case <-s.readyC:
		return true
	default:
		return false
	}
}

// recoveryFailed reports whether asynchronous journal replay failed.
func (s *Server) recoveryFailed() bool {
	select {
	case <-s.failedC:
		return true
	default:
		return false
	}
}

// Handler returns the server's HTTP handler (for tests and embedding). With
// metrics or logging enabled it includes the observability middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// NumHosts reports the fabric's host count — the exclusive upper bound for
// wire host indexes.
func (s *Server) NumHosts() int { return len(s.hosts) }

// httpServer builds the hardened HTTP front end: header-read and idle
// timeouts bound slowloris-style connection hoarding. (Whole-request
// timeouts stay unset — ingest handlers legitimately block on the batch
// loop under load.)
func (s *Server) httpServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// ListenAndServe starts the batch loop (if not already started) and serves
// HTTP on addr until Shutdown. It returns http.ErrServerClosed after a
// clean shutdown, like net/http.
func (s *Server) ListenAndServe(addr string) error {
	if !s.started.Load() {
		s.Start()
	}
	srv := s.httpServer(addr)
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.ListenAndServe()
}

// Shutdown drains gracefully: new requests are refused with 503, in-flight
// handlers finish (the batch loop keeps committing until they do), then the
// loop drains the residual queue and exits; with a journal enabled, a final
// snapshot is cut so the next start restores instead of replaying. Safe to
// call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started.Load() {
		select {
		case <-s.loopDone:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// After a crash or a failed recovery the journal handle is already
	// abandoned; a clean drain seals it with a final snapshot (idempotent:
	// a second Shutdown finds appliedSeq == snapSeq and Close a no-op).
	if s.wal != nil && !s.crashed() && !s.recoveryFailed() {
		s.colMu.Lock()
		if s.appliedSeq > s.snapSeq {
			s.snapshotLocked()
		}
		s.colMu.Unlock()
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// loop is the batch executor: it coalesces queued requests up to BatchMax
// operations, advances the collector clock, and applies one collector batch
// (one placement pass) per iteration.
func (s *Server) loop() {
	defer close(s.loopDone)
	for {
		select {
		case j := <-s.queue:
			if !s.runBatch(s.coalesce(j)) {
				return // injected crash: die without draining or answering
			}
		case <-s.stop:
			// Residual drain: requests enqueued before shutdown finished
			// still get committed and answered.
			for {
				select {
				case j := <-s.queue:
					if !s.runBatch(s.coalesce(j)) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// coalesce greedily folds already-queued requests after j into one batch,
// up to BatchMax operations.
func (s *Server) coalesce(j *ingestJob) []*ingestJob {
	batch := []*ingestJob{j}
	n := len(j.ops)
	for n < s.cfg.BatchMax {
		select {
		case j2 := <-s.queue:
			batch = append(batch, j2)
			n += len(j2.ops)
		default:
			return batch
		}
	}
	return batch
}

// runBatch concatenates the batch's operations, advances the collector
// clock (firing any due TTL sweeps), journals the batch, applies it, and
// distributes results and latency samples back to the waiting requests —
// strictly in that order, so nothing is acked that a restart cannot
// reconstruct. Returns false when an injected crash point fired (the loop
// dies without answering).
func (s *Server) runBatch(batch []*ingestJob) bool {
	nops := 0
	for _, j := range batch {
		nops += len(j.ops)
	}
	ops := make([]core.Op, 0, nops)
	for _, j := range batch {
		ops = append(ops, j.ops...)
	}

	s.colMu.Lock()
	var target float64
	if s.cfg.ClockHz > 0 {
		// Meter only novel work: an already-applied redelivery (a client
		// retry across a crash) advances virtual time by zero, keeping TTL
		// sweep instants identical to an uninterrupted run's.
		s.virtual += float64(s.col.NovelOps(ops)) / s.cfg.ClockHz
		target = s.virtual
	} else {
		target = time.Since(s.startAt).Seconds()
		if target < s.virtual {
			target = s.virtual
		}
		s.virtual = target
	}
	if s.crashAt(CrashBeforeAppend) {
		s.colMu.Unlock()
		return false
	}
	instrumented := s.met != nil || s.fr != nil
	if s.fr != nil {
		ev := flight.Ev(flight.BatchIngested, flight.PlaneServe)
		ev.T = sim.Time(target)
		ev.Count = nops
		s.fr.Record(ev)
	}
	var commitT0 time.Time
	if instrumented {
		commitT0 = time.Now()
	}
	if s.wal != nil {
		payload, err := encodeBatch(&WireBatch{VirtualSec: target, Ops: opsToWire(ops, s.hostIdx)})
		if err == nil {
			_, err = s.wal.Append(payload)
		}
		if err != nil {
			// Fail-stop: a durable server that cannot journal must not ack.
			s.colMu.Unlock()
			panic(fmt.Sprintf("serve: journal append failed, refusing to ack unjournaled batches: %v", err))
		}
		if s.fr != nil {
			ev := flight.Ev(flight.BatchJournaled, flight.PlaneServe)
			ev.T = sim.Time(target)
			ev.Bytes = float64(len(payload))
			ev.DelaySec = time.Since(commitT0).Seconds()
			s.fr.Record(ev)
		}
	}
	if s.crashAt(CrashAfterAppend) {
		s.colMu.Unlock()
		return false
	}
	if deadline := sim.Time(target); deadline > s.eng.Now() {
		s.eng.RunUntil(deadline)
	}
	results := s.col.ApplyBatch(ops, s.cfg.Workers)
	if instrumented {
		commitSec := time.Since(commitT0).Seconds()
		s.met.batch(nops, commitSec)
		if s.fr != nil {
			ev := flight.Ev(flight.BatchCommitted, flight.PlaneServe)
			ev.T = sim.Time(target)
			ev.Count = nops
			ev.DelaySec = commitSec
			s.fr.Record(ev)
		}
	}
	if s.wal != nil {
		s.appliedSeq = s.wal.NextSeq() - 1
		if s.cfg.SnapshotEvery > 0 && s.appliedSeq-s.snapSeq >= uint64(s.cfg.SnapshotEvery) {
			s.snapshotLocked()
		}
	}
	s.colMu.Unlock()
	if s.log != nil {
		s.log.Debug("batch committed",
			"ops", nops, "requests", len(batch), "virtual_sec", target)
	}
	if s.crashAt(CrashAfterCommit) {
		return false
	}

	now := time.Now()
	s.statsMu.Lock()
	at := 0
	for _, j := range batch {
		j.results = results[at : at+len(j.ops)]
		at += len(j.ops)
		s.latSec[s.latN%latRingSize] = now.Sub(j.enq).Seconds()
		s.latN++
	}
	// Feed the Retry-After estimate: EWMA of committed requests per second.
	if !s.lastCommit.IsZero() {
		if dt := now.Sub(s.lastCommit).Seconds(); dt > 0 {
			inst := float64(len(batch)) / dt
			if s.reqPerSec == 0 {
				s.reqPerSec = inst
			} else {
				s.reqPerSec = 0.8*s.reqPerSec + 0.2*inst
			}
		}
	}
	s.lastCommit = now
	s.statsMu.Unlock()
	for _, j := range batch {
		close(j.done)
	}
	return true
}

// retryAfterSecs derives the 429 Retry-After hint from the current queue
// depth and the recent commit rate: roughly how long until the backlog
// drains, clamped to [1, 30] seconds. With no rate estimate yet (cold
// server) it stays at the floor.
func retryAfterSecs(depth int, ratePerSec float64) int {
	if ratePerSec <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(depth) / ratePerSec))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// retryAfter snapshots the live inputs for retryAfterSecs.
func (s *Server) retryAfter() int {
	s.statsMu.Lock()
	rate := s.reqPerSec
	s.statsMu.Unlock()
	return retryAfterSecs(len(s.queue), rate)
}

// statsSnap is one mutually consistent view of the serving counters: every
// field is read in a single statsMu critical section, so a scrape cannot see
// a request total from after a latency ring it read from before.
type statsSnap struct {
	p50, p99   float64 // seconds
	requests   int64
	rejected   int64
	queueDepth int
}

// statsSnapshot captures the serving counters and latency percentiles under
// one statsMu hold.
func (s *Server) statsSnapshot() statsSnap {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	p50, p99 := s.percentilesLocked()
	return statsSnap{
		p50:        p50,
		p99:        p99,
		requests:   s.requestsTotal,
		rejected:   s.rejectedTotal,
		queueDepth: len(s.queue),
	}
}

// percentilesLocked computes (p50, p99) from the latency ring. Caller holds
// statsMu.
func (s *Server) percentilesLocked() (p50, p99 float64) {
	n := s.latN
	if n > latRingSize {
		n = latRingSize
	}
	if n == 0 {
		return 0, 0
	}
	samples := make([]float64, n)
	copy(samples, s.latSec[:n])
	sort.Float64s(samples)
	pick := func(q float64) float64 {
		i := int(q * float64(n-1))
		return samples[i]
	}
	return pick(0.50), pick(0.99)
}

// latencyPercentiles snapshots the ring and reports (p50, p99) in seconds.
func (s *Server) latencyPercentiles() (p50, p99 float64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.percentilesLocked()
}

// countRequest and countRejected bump the serving totals under statsMu.
func (s *Server) countRequest() {
	s.statsMu.Lock()
	s.requestsTotal++
	s.statsMu.Unlock()
}

func (s *Server) countRejected() {
	s.statsMu.Lock()
	s.rejectedTotal++
	s.statsMu.Unlock()
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.met.rejected(rejectDraining)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.crashed() {
		s.met.rejected(rejectCrashed)
		writeError(w, http.StatusServiceUnavailable, "server crashed; retry against the restarted process")
		return
	}
	if !s.ready() {
		if s.recoveryFailed() {
			s.met.rejected(rejectCrashed)
			writeError(w, http.StatusServiceUnavailable, "recovery failed: %v", s.recoverErr)
			return
		}
		// Replaying the journal: retryable, like any transient outage.
		s.met.rejected(rejectRecovering)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server is recovering; retry")
		return
	}
	s.countRequest()
	if cl := r.ContentLength; cl >= 0 {
		s.met.body(cl)
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	req, err := decodeIngest(r.Body, len(s.hosts), s.cfg.MaxOpsPerRequest)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.rejected(rejectTooLarge)
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.met.rejected(rejectBadRequest)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := &ingestJob{ops: req.ToOps(s.hosts), enq: time.Now(), done: make(chan struct{})}
	select {
	case s.queue <- j:
	default:
		// Bounded-queue backpressure: reject rather than buffer without
		// limit, and tell the client when the backlog should have drained.
		s.countRejected()
		s.met.rejected(rejectQueueFull)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeError(w, http.StatusTooManyRequests, "ingest queue full (%d requests)", s.cfg.QueueCap)
		return
	}
	select {
	case <-j.done:
	case <-s.crashedC:
		// The batch loop died mid-flight; this request may or may not have
		// committed. 503 sends the client back to retry against the
		// restarted process, where dedup makes the resubmission safe.
		writeError(w, http.StatusServiceUnavailable, "server crashed mid-batch; retry")
		return
	case <-r.Context().Done():
		// Client gone; the batch loop will still commit the ops (they are
		// in the queue), there is just nobody to answer.
		return
	}
	resp := IngestResponse{Results: make([]string, len(j.results)), QueueDepth: len(s.queue)}
	for i, res := range j.results {
		resp.Results[i] = res.String()
		switch res {
		case core.OpDuplicate:
			resp.Duplicates++
		case core.OpDeferred:
			resp.Deferred++
		default:
			resp.Accepted++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.colMu.Lock()
	st := s.col.Stats()
	digest := s.digest
	placements := s.placements
	virtual := float64(s.eng.Now())
	var walRecords, walSegments int
	var walBytes int64
	snapshots, snapSeq := s.snapshots, s.snapSeq
	if s.wal != nil {
		walRecords = s.wal.Records()
		walSegments = s.wal.Segments()
		walBytes = s.wal.Size()
	}
	recovered, recoveredRecords, recoverySec := s.recovered, s.recoveredRecords, s.recoverySec
	s.colMu.Unlock()
	sn := s.statsSnapshot()
	writeJSON(w, http.StatusOK, StatsResponse{
		CollectorStats:   st,
		PlacementDigest:  fmt.Sprintf("%016x", digest),
		Placements:       placements,
		QueueDepth:       sn.queueDepth,
		NumHosts:         len(s.hosts),
		VirtualSec:       virtual,
		RequestsTotal:    sn.requests,
		RejectedTotal:    sn.rejected,
		LatencyP50Micros: sn.p50 * 1e6,
		LatencyP99Micros: sn.p99 * 1e6,

		WALRecords:       walRecords,
		WALSegments:      walSegments,
		WALBytes:         walBytes,
		Snapshots:        snapshots,
		SnapshotSeq:      snapSeq,
		Recovered:        recovered,
		RecoveredRecords: recoveredRecords,
		RecoverySec:      recoverySec,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.crashed() {
		writeError(w, http.StatusServiceUnavailable, "crashed")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: unlike /v1/healthz (liveness — is the
// process up and not wedged), it answers 503 whenever the server should not
// receive traffic, with the reason as the plain-text body: "recovering"
// during journal replay, "draining" during shutdown, "crashed" after an
// injected crash, and the recovery error if replay failed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.crashed():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "crashed")
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case s.recoveryFailed():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "recovery failed: %v\n", s.recoverErr)
	case !s.ready():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "recovering")
	default:
		fmt.Fprintln(w, "ready")
	}
}
