// Package serve puts an online serving surface in front of the sharded
// Pythia collector (internal/core): a versioned HTTP/JSON wire protocol for
// shuffle-intent ingest, request batching into the collector's two-phase
// ApplyBatch, bounded-queue backpressure, and graceful shutdown. The
// simulated SDN substrate (netsim + openflow) stands in for the fabric; in
// the paper's deployment the same collector would steer a physical testbed.
//
// # Wire protocol (v1)
//
//	POST /v1/ingest   — body IngestRequest, reply IngestResponse
//	GET  /v1/stats    — reply StatsResponse
//	GET  /v1/healthz  — 200 "ok" (503 while draining)
//
// Ingest operations are applied in request order: reducer placements, then
// intents, then job retirements. A saturated server replies 429 with a
// Retry-After header; a draining server replies 503. Unknown fields are
// rejected so protocol drift fails loudly.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"

	"pythia/internal/core"
	"pythia/internal/instrument"
	"pythia/internal/topology"
)

// WireIntent is one shuffle-spill prediction: map task on src_host will
// feed predicted_wire_bytes[r] bytes to reducer r.
type WireIntent struct {
	Job     int `json:"job"`
	Map     int `json:"map"`
	Attempt int `json:"attempt,omitempty"`
	// SrcHost is the mapper's host index in [0, num_hosts) — the fabric's
	// host table is published as num_hosts in /v1/stats.
	SrcHost            int       `json:"src_host"`
	PredictedWireBytes []float64 `json:"predicted_wire_bytes"`
}

// WireReducerUp reports reducer placement: job's reducer is on host.
type WireReducerUp struct {
	Job    int `json:"job"`
	Reduce int `json:"reduce"`
	Host   int `json:"host"`
}

// IngestRequest carries a batch of collector operations. At least one list
// must be non-empty.
type IngestRequest struct {
	Reducers []WireReducerUp `json:"reducers,omitempty"`
	Intents  []WireIntent    `json:"intents,omitempty"`
	DoneJobs []int           `json:"done_jobs,omitempty"`
}

// ops reports the operation count.
func (r *IngestRequest) ops() int { return len(r.Reducers) + len(r.Intents) + len(r.DoneJobs) }

// IngestResponse summarizes the request's dispositions. Results is
// positional with the request's operation order (reducers, intents,
// done_jobs): "accepted", "duplicate", or "deferred".
type IngestResponse struct {
	Accepted   int      `json:"accepted"`
	Deferred   int      `json:"deferred"`
	Duplicates int      `json:"duplicates"`
	Results    []string `json:"results"`
	QueueDepth int      `json:"queue_depth"`
}

// StatsResponse is the /v1/stats reply: every collector counter plus the
// serving-plane gauges. PlacementDigest fingerprints the placement-decision
// stream (FNV-1a over src, dst, path of every decision in order) — two
// servers fed the same request sequence must report the same digest
// regardless of shard or worker count.
type StatsResponse struct {
	core.CollectorStats
	PlacementDigest  string  `json:"placement_digest"`
	Placements       int     `json:"placements"`
	QueueDepth       int     `json:"queue_depth"`
	NumHosts         int     `json:"num_hosts"`
	VirtualSec       float64 `json:"virtual_sec"`
	RequestsTotal    int64   `json:"requests_total"`
	RejectedTotal    int64   `json:"rejected_total"`
	LatencyP50Micros float64 `json:"latency_p50_micros"`
	LatencyP99Micros float64 `json:"latency_p99_micros"`

	// Durability gauges (zero when the write-ahead journal is disabled).
	WALRecords  int   `json:"wal_records,omitempty"`
	WALSegments int   `json:"wal_segments,omitempty"`
	WALBytes    int64 `json:"wal_bytes,omitempty"`
	// Snapshots counts snapshots cut this process lifetime; SnapshotSeq is
	// the journal sequence the latest one covers through.
	Snapshots   int    `json:"snapshots,omitempty"`
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
	// Recovered reports that this process rebuilt state from the journal at
	// startup: RecoveredRecords batches replayed in RecoverySec wall
	// seconds (on top of the snapshot, if one existed).
	Recovered        bool    `json:"recovered,omitempty"`
	RecoveredRecords int     `json:"recovered_records,omitempty"`
	RecoverySec      float64 `json:"recovery_sec,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WireOp is one collector operation in journal encoding. Exactly one of the
// payload fields is set, selected by Kind ("intent", "reducer_up",
// "job_done"). The journal reuses the ingest wire types so a record is
// readable with the same tooling as the protocol itself.
type WireOp struct {
	Kind    string         `json:"kind"`
	Intent  *WireIntent    `json:"intent,omitempty"`
	Reducer *WireReducerUp `json:"reducer,omitempty"`
	Job     int            `json:"job,omitempty"`
}

// WireBatch is one committed batch as journaled by the write-ahead log: the
// engine instant the batch committed at (the logical-clock target, so replay
// never re-derives clock advances) and the batch's operations in their exact
// commit order — order is semantic, because reducer placements resolve
// deferred intents positionally.
type WireBatch struct {
	VirtualSec float64  `json:"virtual_sec"`
	Ops        []WireOp `json:"ops"`
}

const (
	wireKindIntent    = "intent"
	wireKindReducerUp = "reducer_up"
	wireKindJobDone   = "job_done"
)

// opsToWire raises lowered collector operations back to wire form for
// journaling, mapping concrete hosts through the reverse host table.
func opsToWire(ops []core.Op, hostIdx map[topology.NodeID]int) []WireOp {
	out := make([]WireOp, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case core.OpIntent:
			out[i] = WireOp{Kind: wireKindIntent, Intent: &WireIntent{
				Job: op.Intent.Job, Map: op.Intent.Map, Attempt: op.Intent.Attempt,
				SrcHost:            hostIdx[op.Intent.SrcHost],
				PredictedWireBytes: op.Intent.PredictedWireBytes,
			}}
		case core.OpReducerUp:
			out[i] = WireOp{Kind: wireKindReducerUp, Reducer: &WireReducerUp{
				Job: op.Reducer.Job, Reduce: op.Reducer.Reduce,
				Host: hostIdx[op.Reducer.Host],
			}}
		case core.OpJobDone:
			out[i] = WireOp{Kind: wireKindJobDone, Job: op.Job}
		}
	}
	return out
}

// ToOps lowers a journaled batch back into collector operations, preserving
// commit order. Host indexes outside the fabric's table (a journal from a
// different topology) fail loudly rather than replaying garbage.
func (b *WireBatch) ToOps(hosts []topology.NodeID) ([]core.Op, error) {
	ops := make([]core.Op, len(b.Ops))
	for i, w := range b.Ops {
		switch w.Kind {
		case wireKindIntent:
			if w.Intent == nil {
				return nil, fmt.Errorf("op %d: intent record without payload", i)
			}
			if w.Intent.SrcHost < 0 || w.Intent.SrcHost >= len(hosts) {
				return nil, fmt.Errorf("op %d: src_host %d outside [0,%d) — journal from a different fabric?",
					i, w.Intent.SrcHost, len(hosts))
			}
			ops[i] = core.Op{Kind: core.OpIntent, Intent: instrument.Intent{
				Job: w.Intent.Job, Map: w.Intent.Map, Attempt: w.Intent.Attempt,
				SrcHost: hosts[w.Intent.SrcHost], PredictedWireBytes: w.Intent.PredictedWireBytes}}
		case wireKindReducerUp:
			if w.Reducer == nil {
				return nil, fmt.Errorf("op %d: reducer_up record without payload", i)
			}
			if w.Reducer.Host < 0 || w.Reducer.Host >= len(hosts) {
				return nil, fmt.Errorf("op %d: host %d outside [0,%d) — journal from a different fabric?",
					i, w.Reducer.Host, len(hosts))
			}
			ops[i] = core.Op{Kind: core.OpReducerUp, Reducer: instrument.ReducerUp{
				Job: w.Reducer.Job, Reduce: w.Reducer.Reduce, Host: hosts[w.Reducer.Host]}}
		case wireKindJobDone:
			ops[i] = core.Op{Kind: core.OpJobDone, Job: w.Job}
		default:
			return nil, fmt.Errorf("op %d: unknown kind %q", i, w.Kind)
		}
	}
	return ops, nil
}

// encodeBatch/decodeBatch are the journal payload codec. JSON round-trips
// float64 exactly (shortest representation), so VirtualSec survives with the
// bit pattern the original commit used — a requirement for digest-exact
// replay.
func encodeBatch(b *WireBatch) ([]byte, error) { return json.Marshal(b) }
func decodeBatch(p []byte) (*WireBatch, error) {
	b := new(WireBatch)
	if err := json.Unmarshal(p, b); err != nil {
		return nil, err
	}
	return b, nil
}

// maxBodyBytes bounds request bodies before decoding.
const maxBodyBytes = 8 << 20

// decodeIngest parses and validates an ingest request body against the
// server's host table and per-request op budget. Body size is bounded by the
// caller (the HTTP handler wraps bodies in http.MaxBytesReader so oversized
// requests surface as 413, not a truncated-JSON 400).
func decodeIngest(r io.Reader, numHosts, maxOps int) (*IngestRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req IngestRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("malformed request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("malformed request: trailing data after JSON object")
	}
	if req.ops() == 0 {
		return nil, fmt.Errorf("empty request: no reducers, intents, or done_jobs")
	}
	if maxOps > 0 && req.ops() > maxOps {
		return nil, fmt.Errorf("request exceeds %d operations (%d)", maxOps, req.ops())
	}
	for i, up := range req.Reducers {
		if up.Job < 0 || up.Reduce < 0 {
			return nil, fmt.Errorf("reducers[%d]: negative job or reduce ID", i)
		}
		if up.Host < 0 || up.Host >= numHosts {
			return nil, fmt.Errorf("reducers[%d]: host %d outside [0,%d)", i, up.Host, numHosts)
		}
	}
	for i, in := range req.Intents {
		if in.Job < 0 || in.Map < 0 || in.Attempt < 0 {
			return nil, fmt.Errorf("intents[%d]: negative job, map, or attempt ID", i)
		}
		if in.SrcHost < 0 || in.SrcHost >= numHosts {
			return nil, fmt.Errorf("intents[%d]: src_host %d outside [0,%d)", i, in.SrcHost, numHosts)
		}
		if len(in.PredictedWireBytes) == 0 {
			return nil, fmt.Errorf("intents[%d]: empty predicted_wire_bytes", i)
		}
		for r, b := range in.PredictedWireBytes {
			if math.IsNaN(b) || math.IsInf(b, 0) || b < 0 {
				return nil, fmt.Errorf("intents[%d]: predicted_wire_bytes[%d] = %v is not a finite non-negative byte count", i, r, b)
			}
		}
	}
	for i, job := range req.DoneJobs {
		if job < 0 {
			return nil, fmt.Errorf("done_jobs[%d]: negative job ID", i)
		}
	}
	return &req, nil
}

// ToOps lowers a validated request into collector operations in protocol
// order (reducers, intents, done_jobs), mapping host indexes through the
// fabric's host table. Exported for the benchmark's in-process oracle,
// which replays the same requests on a bare collector.
func (req *IngestRequest) ToOps(hosts []topology.NodeID) []core.Op {
	ops := make([]core.Op, 0, req.ops())
	for _, up := range req.Reducers {
		ops = append(ops, core.Op{Kind: core.OpReducerUp, Reducer: instrument.ReducerUp{
			Job: up.Job, Reduce: up.Reduce, Host: hosts[up.Host]}})
	}
	for _, in := range req.Intents {
		ops = append(ops, core.Op{Kind: core.OpIntent, Intent: instrument.Intent{
			Job: in.Job, Map: in.Map, Attempt: in.Attempt,
			SrcHost: hosts[in.SrcHost], PredictedWireBytes: in.PredictedWireBytes}})
	}
	for _, job := range req.DoneJobs {
		ops = append(ops, core.Op{Kind: core.OpJobDone, Job: job})
	}
	return ops
}

// writeJSON encodes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError replies with an ErrorResponse.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
