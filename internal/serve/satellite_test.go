package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHTTPServerHardened pins the front-end timeouts that bound slowloris
// connection hoarding.
func TestHTTPServerHardened(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := srv.httpServer(":0")
	if hs.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slow-header connections hoard sockets forever")
	}
	if hs.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections never close")
	}
	if hs.Handler == nil {
		t.Error("handler not wired")
	}
}

// TestOversizedBodyRejected413: a body past maxBodyBytes answers 413 (not a
// truncation-shaped 400), and the server survives to serve the next request.
func TestOversizedBodyRejected413(t *testing.T) {
	srv, err := New(Config{MaxOpsPerRequest: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var b strings.Builder
	b.WriteString(`{"intents":[`)
	for i := 0; b.Len() < maxBodyBytes+1024; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"job":%d,"map":0,"src_host":0,"predicted_wire_bytes":[1e6]}`, i)
	}
	b.WriteString(`]}`)
	resp, body := postJSON(t, ts.Client(), ts.URL, b.String())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d: %.200s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.Client(), ts.URL, `{"done_jobs":[1]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("request after 413: HTTP %d", resp.StatusCode)
	}
}

// TestShutdownIdempotent: repeated and concurrent Shutdown calls all return
// cleanly (the stop channel closes exactly once, the journal seals once).
func TestShutdownIdempotent(t *testing.T) {
	srv, err := New(Config{WALDir: t.TempDir(), ClockHz: 50})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postJSON(t, ts.Client(), ts.URL, `{"done_jobs":[1]}`)

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = srv.Shutdown(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("shutdown %d: %v", i, err)
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("shutdown after shutdown: %v", err)
	}
}

// TestRetryAfterDerivation pins the backlog-drain estimate.
func TestRetryAfterDerivation(t *testing.T) {
	cases := []struct {
		depth int
		rate  float64
		want  int
	}{
		{0, 0, 1},     // no estimate yet: floor
		{100, 0, 1},   // still no estimate: floor, not a wild guess
		{0, 50, 1},    // empty queue: floor
		{10, 50, 1},   // drains in 0.2s: floor
		{100, 50, 2},  // 2 s of backlog
		{75, 10, 8},   // ceil(7.5)
		{1000, 1, 30}, // clamp at 30 s
		{5, -3, 1},    // nonsense rate: floor
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.depth, c.rate); got != c.want {
			t.Errorf("retryAfterSecs(%d, %v) = %d, want %d", c.depth, c.rate, got, c.want)
		}
	}
}

// TestRetryAfterHeaderInRange: the live 429 header carries the derived
// value, parseable and within the clamp.
func TestRetryAfterHeaderInRange(t *testing.T) {
	srv, err := New(Config{QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the queue can only fill.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "application/json",
			strings.NewReader(`{"done_jobs":[1]}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for getStats(t, ts.Client(), ts.URL).QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _ := postJSON(t, ts.Client(), ts.URL, `{"done_jobs":[2]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After %q not an int in [1,30] (%v)", resp.Header.Get("Retry-After"), err)
	}
	srv.Start()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyRingWraparound: past latRingSize samples the ring overwrites
// oldest-first and percentiles read only live slots.
func TestLatencyRingWraparound(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Fill 1.5 rings: slots hold values from the most recent latRingSize
	// records (1.0 for the overwritten half, 2.0 for the rest).
	for i := 0; i < latRingSize+latRingSize/2; i++ {
		v := 1.0
		if i >= latRingSize {
			v = 2.0
		}
		srv.latSec[srv.latN%latRingSize] = v
		srv.latN++
	}
	p50, p99 := srv.latencyPercentiles()
	if p50 != 1.0 {
		t.Errorf("p50 = %v, want 1.0 (half the ring overwritten)", p50)
	}
	if p99 != 2.0 {
		t.Errorf("p99 = %v, want 2.0", p99)
	}
	if srv.latN != latRingSize+latRingSize/2 {
		t.Errorf("latN = %d, want %d", srv.latN, latRingSize+latRingSize/2)
	}
}

// TestLatencyPercentileEdges: zero and one samples.
func TestLatencyPercentileEdges(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p50, p99 := srv.latencyPercentiles(); p50 != 0 || p99 != 0 {
		t.Errorf("no samples: (%v, %v), want (0, 0)", p50, p99)
	}
	srv.latSec[0] = 0.25
	srv.latN = 1
	if p50, p99 := srv.latencyPercentiles(); p50 != 0.25 || p99 != 0.25 {
		t.Errorf("one sample: (%v, %v), want (0.25, 0.25)", p50, p99)
	}
}

// TestCancelledRequestCommitsOnce: a client that gives up after enqueue
// does not un-enqueue its ops — they commit exactly once, and resubmitting
// them deduplicates.
func TestCancelledRequestCommitsOnce(t *testing.T) {
	srv, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Not started yet: the request parks in the queue so cancellation
	// deterministically wins the race against commit.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"reducers":[{"job":0,"reduce":0,"host":1}],
		"intents":[{"job":0,"map":0,"src_host":2,"predicted_wire_bytes":[3e6]}]}`
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/ingest",
		bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	respC := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		respC <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for getStats(t, ts.Client(), ts.URL).QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-respC; err == nil {
		t.Fatal("cancelled request returned a response")
	}

	srv.Start()
	defer srv.Shutdown(context.Background())
	deadline = time.Now().Add(5 * time.Second)
	for getStats(t, ts.Client(), ts.URL).IntentsReceived != 1 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled request's ops never committed")
		}
		time.Sleep(time.Millisecond)
	}

	// The abandoned client's retry deduplicates instead of double-booking.
	resp, raw := postJSON(t, ts.Client(), ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d: %s", resp.StatusCode, raw)
	}
	st := getStats(t, ts.Client(), ts.URL)
	if st.IntentsReceived != 1 {
		t.Errorf("intents_received = %d after resubmit, want 1 (exactly-once)", st.IntentsReceived)
	}
	if st.DedupHits != 1 {
		t.Errorf("dedup_hits = %d, want 1", st.DedupHits)
	}
}
