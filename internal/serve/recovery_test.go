package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// frontDoor gives a fleet of server generations one stable URL: requests
// always land on the current generation, the way a restarted process
// reclaims its listen address.
type frontDoor struct {
	cur atomic.Pointer[Server]
}

func (f *frontDoor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.cur.Load().Handler().ServeHTTP(w, r)
}

// stormTrace builds a deterministic request sequence: per job a reducer
// placement request then one request per map intent, with job retirements
// at the end. Every intent is unique, so exactly-once delivery is directly
// readable from intents_received.
func stormTrace(jobs, maps, reduces, numHosts int) []*IngestRequest {
	var reqs []*IngestRequest
	for j := 0; j < jobs; j++ {
		ups := make([]WireReducerUp, reduces)
		for r := 0; r < reduces; r++ {
			ups[r] = WireReducerUp{Job: j, Reduce: r, Host: (j*3 + r) % numHosts}
		}
		reqs = append(reqs, &IngestRequest{Reducers: ups})
		for m := 0; m < maps; m++ {
			bytes := make([]float64, reduces)
			for r := range bytes {
				bytes[r] = 1e6 * float64(1+(j+m+r)%5)
			}
			reqs = append(reqs, &IngestRequest{Intents: []WireIntent{{
				Job: j, Map: m, SrcHost: (j + m) % numHosts, PredictedWireBytes: bytes}}})
		}
	}
	for j := 0; j < jobs; j++ {
		reqs = append(reqs, &IngestRequest{DoneJobs: []int{j}})
	}
	return reqs
}

// crashPlan schedules one injected kill: fire point when the generation's
// batch counter reaches at.
type crashPlan struct {
	point CrashPoint
	at    int
}

// crashHook builds a CrashHook firing plan once. The batch counter ticks at
// CrashBeforeAppend, which every batch passes first.
func crashHook(plan crashPlan) func(CrashPoint) bool {
	var batches atomic.Int32
	return func(p CrashPoint) bool {
		if p == CrashBeforeAppend {
			batches.Add(1)
		}
		return p == plan.point && int(batches.Load()) == plan.at
	}
}

// runStorm drives trace sequentially (depth 1: one in-flight request = one
// batch, pinning batch boundaries) through a chain of server generations
// that crash per schedule and restart with Recover. It returns the final
// generation's stats and the generation count. With an empty schedule and no
// WALDir this is the uninterrupted oracle.
func runStorm(t *testing.T, base Config, walDir string, schedule []crashPlan, trace []*IngestRequest) (StatsResponse, int) {
	t.Helper()
	build := func(resume bool, plan *crashPlan) *Server {
		cfg := base
		cfg.WALDir = walDir
		cfg.Recover = resume
		if plan != nil {
			cfg.CrashHook = crashHook(*plan)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Errorf("building server generation: %v", err)
			return nil
		}
		return srv
	}

	var front frontDoor
	var mu sync.Mutex
	generations := 1
	var watch func(s *Server, next int)
	watch = func(s *Server, next int) {
		go func() {
			select {
			case <-s.crashedC:
			case <-s.loopDone:
				if !s.crashed() {
					return // clean exit, no successor needed
				}
			}
			<-s.loopDone
			var plan *crashPlan
			if next < len(schedule) {
				plan = &schedule[next]
			}
			succ := build(true, plan)
			if succ == nil {
				return
			}
			succ.Start()
			mu.Lock()
			generations++
			mu.Unlock()
			front.cur.Store(succ)
			watch(succ, next+1)
		}()
	}

	var plan *crashPlan
	if len(schedule) > 0 {
		plan = &schedule[0]
	}
	first := build(false, plan)
	if first == nil {
		t.FailNow()
	}
	first.Start()
	front.cur.Store(first)
	watch(first, 1)

	ts := httptest.NewServer(&front)
	defer ts.Close()
	cl := NewClient(ts.URL, ClientConfig{
		AttemptTimeout: 2 * time.Second,
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Seed:           7,
		HTTP:           ts.Client(),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, req := range trace {
		if _, err := cl.Ingest(ctx, req); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	final := front.cur.Load()
	st, err := cl.ServerStats(ctx)
	if err != nil {
		t.Fatalf("final stats: %v", err)
	}
	if err := final.Shutdown(context.Background()); err != nil {
		t.Fatalf("final shutdown: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	return *st, generations
}

// TestCrashRecoveryStorm is the acceptance proof for the durable serving
// plane: a retrying client pushes a fixed trace while the server is killed
// at every crash point in turn (after journal append, after commit, before
// append), each successor recovering from the journal. The surviving
// process must reach the exact placement digest and logical clock of an
// uninterrupted oracle run, with zero leaked bookings, and the dedup
// counters must show every op applied exactly once despite the retries.
func TestCrashRecoveryStorm(t *testing.T) {
	base := Config{
		Shards:        2,
		ClockHz:       50,
		QueueCap:      64,
		SnapshotEvery: 4,
		FsyncEvery:    0,
	}
	const jobs, maps, reduces = 6, 3, 2
	trace := stormTrace(jobs, maps, reduces, 16)

	oracle, oracleGens := runStorm(t, base, "", nil, trace)
	if oracleGens != 1 {
		t.Fatalf("oracle restarted %d times", oracleGens)
	}
	if oracle.DedupHits != 0 {
		t.Fatalf("oracle saw %d dedup hits; the trace must be duplicate-free", oracle.DedupHits)
	}

	// Batch numbers land on intent requests (per-job blocks of 1 reducer +
	// 3 intent requests), so the crashed-and-retried request carries an
	// intent and the dedup counter proves the exactly-once path.
	schedule := []crashPlan{
		{CrashAfterCommit, 3},
		{CrashAfterAppend, 4},
		{CrashBeforeAppend, 5},
	}
	st, gens := runStorm(t, base, t.TempDir(), schedule, trace)
	if want := len(schedule) + 1; gens != want {
		t.Fatalf("storm ran %d generations, want %d (every crash must fire)", gens, want)
	}

	if st.PlacementDigest != oracle.PlacementDigest {
		t.Errorf("placement digest %s != oracle %s", st.PlacementDigest, oracle.PlacementDigest)
	}
	if st.Placements != oracle.Placements {
		t.Errorf("placements %d != oracle %d", st.Placements, oracle.Placements)
	}
	if st.VirtualSec != oracle.VirtualSec {
		t.Errorf("logical clock %v != oracle %v (NovelOps must exempt redeliveries)",
			st.VirtualSec, oracle.VirtualSec)
	}
	if st.IntentsReceived != jobs*maps {
		t.Errorf("intents_received = %d, want %d (exactly-once)", st.IntentsReceived, jobs*maps)
	}
	if st.DedupHits == 0 {
		t.Error("no dedup hits: the storm never exercised a cross-crash retry")
	}
	if st.OutstandingBookings != 0 || st.PendingIntents != 0 {
		t.Errorf("leaked state after storm: bookings=%d pending=%d",
			st.OutstandingBookings, st.PendingIntents)
	}
	if !st.Recovered {
		t.Error("final generation does not report recovery")
	}
}

// TestCrashPointMatrix runs one focused kill-and-recover cycle per crash
// point, each in a fresh journal directory, proving every window recovers
// to the oracle digest on its own (the storm composes them).
func TestCrashPointMatrix(t *testing.T) {
	base := Config{Shards: 2, ClockHz: 50, QueueCap: 64, SnapshotEvery: 4}
	trace := stormTrace(4, 2, 2, 16)
	oracle, _ := runStorm(t, base, "", nil, trace)
	for _, point := range []CrashPoint{CrashBeforeAppend, CrashAfterAppend, CrashAfterCommit} {
		t.Run(point.String(), func(t *testing.T) {
			st, gens := runStorm(t, base, t.TempDir(), []crashPlan{{point, 3}}, trace)
			if gens != 2 {
				t.Fatalf("%d generations, want 2", gens)
			}
			if st.PlacementDigest != oracle.PlacementDigest {
				t.Errorf("digest %s != oracle %s", st.PlacementDigest, oracle.PlacementDigest)
			}
			if st.VirtualSec != oracle.VirtualSec {
				t.Errorf("clock %v != oracle %v", st.VirtualSec, oracle.VirtualSec)
			}
			if st.OutstandingBookings != 0 {
				t.Errorf("%d leaked bookings", st.OutstandingBookings)
			}
		})
	}
}

// TestRecoverySweepExactness crashes a server whose TTL sweep is actively
// reclaiming bookings (low clock rate, short TTL, jobs never retired) and
// checks the recovered run reclaims exactly what the oracle does — the
// test that fails if redeliveries were allowed to advance the logical
// clock and skew sweep instants.
func TestRecoverySweepExactness(t *testing.T) {
	base := Config{
		Shards:        2,
		ClockHz:       2, // 1 op = 0.5 virtual seconds: sweeps fire mid-trace
		BookingTTLSec: 4,
		QueueCap:      64,
		SnapshotEvery: 3,
	}
	// No done_jobs: every booking must drain through the TTL sweep.
	var trace []*IngestRequest
	for j := 0; j < 5; j++ {
		trace = append(trace, &IngestRequest{Reducers: []WireReducerUp{
			{Job: j, Reduce: 0, Host: (j * 2) % 16}, {Job: j, Reduce: 1, Host: (j*2 + 1) % 16}}})
		for m := 0; m < 3; m++ {
			trace = append(trace, &IngestRequest{Intents: []WireIntent{{
				Job: j, Map: m, SrcHost: (j + m) % 16, PredictedWireBytes: []float64{2e6, 3e6}}}})
		}
	}

	oracle, _ := runStorm(t, base, "", nil, trace)
	if oracle.ExpiredBookings == 0 {
		t.Fatalf("oracle expired nothing; the trace does not exercise the sweep: %+v", oracle.CollectorStats)
	}
	st, gens := runStorm(t, base, t.TempDir(), []crashPlan{{CrashAfterAppend, 6}}, trace)
	if gens != 2 {
		t.Fatalf("%d generations, want 2", gens)
	}
	if st.PlacementDigest != oracle.PlacementDigest {
		t.Errorf("digest %s != oracle %s", st.PlacementDigest, oracle.PlacementDigest)
	}
	if st.ExpiredBookings != oracle.ExpiredBookings || st.ExpiredIntents != oracle.ExpiredIntents {
		t.Errorf("sweep diverged: expired %d/%d vs oracle %d/%d",
			st.ExpiredBookings, st.ExpiredIntents, oracle.ExpiredBookings, oracle.ExpiredIntents)
	}
	if st.VirtualSec != oracle.VirtualSec {
		t.Errorf("clock %v != oracle %v", st.VirtualSec, oracle.VirtualSec)
	}
}

// TestGracefulRestartFromSnapshot: a clean Shutdown seals the journal with
// a final snapshot; the next start restores it without replaying records
// and continues the digest stream.
func TestGracefulRestartFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, ClockHz: 50, WALDir: dir}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	postJSON(t, client, ts.URL, `{"reducers":[{"job":0,"reduce":0,"host":1}]}`)
	postJSON(t, client, ts.URL, `{"intents":[{"job":0,"map":0,"src_host":2,"predicted_wire_bytes":[4e6]}]}`)
	before := getStats(t, client, ts.URL)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()

	cfg.Recover = true
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovering: %v", err)
	}
	srv2.Start()
	if err := srv2.AwaitReady(context.Background()); err != nil {
		t.Fatalf("awaiting recovery: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	after := getStats(t, ts2.Client(), ts2.URL)
	if !after.Recovered {
		t.Error("restart does not report recovery")
	}
	if after.RecoveredRecords != 0 {
		t.Errorf("replayed %d records despite final snapshot", after.RecoveredRecords)
	}
	if after.PlacementDigest != before.PlacementDigest {
		t.Errorf("digest %s != pre-shutdown %s", after.PlacementDigest, before.PlacementDigest)
	}
	if after.OutstandingBookings != before.OutstandingBookings {
		t.Errorf("bookings %d != pre-shutdown %d", after.OutstandingBookings, before.OutstandingBookings)
	}
	// The restored process keeps serving: retire the job and check drain.
	postJSON(t, ts2.Client(), ts2.URL, `{"done_jobs":[0]}`)
	if st := getStats(t, ts2.Client(), ts2.URL); st.OutstandingBookings != 0 {
		t.Errorf("%d bookings leaked after restart-then-retire", st.OutstandingBookings)
	}
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestJournalRequiresRecoverFlag: starting over a non-empty journal without
// Recover must fail loudly instead of silently orphaning history.
func TestJournalRequiresRecoverFlag(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{Shards: 2, ClockHz: 50, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	postJSON(t, ts.Client(), ts.URL, `{"done_jobs":[3]}`)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if _, err := New(Config{Shards: 2, ClockHz: 50, WALDir: dir}); err == nil {
		t.Fatal("New over a journal with history succeeded without Recover")
	}
}
