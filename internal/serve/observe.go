package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pythia/internal/flight"
	"pythia/internal/trace"
)

// This file is the serving plane's read side of the operations plane: the
// observability middleware (request metrics, request-ID stamping, structured
// request logs), the GET /metrics Prometheus exposition handler, and the
// live flight-recorder accessors.

// statusWriter captures the status code the handler wrote, for the request
// metrics and logs. WriteHeader-less handlers count as 200, like net/http.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps the mux with the observability middleware: every request
// gets an X-Request-ID, a per-route/per-code counter and latency observation
// (when metrics are on), and a structured log line (when logging is on).
// Installed only when at least one of the two is enabled, so a bare server's
// request path is untouched.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.reqSeq.Add(1)
		w.Header().Set("X-Request-ID", strconv.FormatUint(id, 10))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(t0)
		route := normalizeRoute(r.URL.Path)
		s.met.request(route, sw.code, dur.Seconds())
		if s.log != nil {
			s.log.Info("request",
				"request_id", id,
				"method", r.Method,
				"route", route,
				"path", r.URL.Path,
				"status", sw.code,
				"duration_ms", float64(dur.Microseconds())/1000,
				"bytes", sw.bytes)
		}
	})
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleMetrics renders the Prometheus exposition: a snapshot of the live
// (event-driven) registry merged with scrape-time polled series — queue
// depth, collector gauges and counters (aggregate and per-shard), journal
// sizes, and the recovery report — so one scrape is one consistent view.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.met.reg.Snapshot()
	poll := flight.NewRegistry()
	poll.Gauge("pythia_serve_queue_depth",
		"Requests waiting in the ingest queue.").Set(float64(len(s.queue)))
	poll.Gauge("pythia_serve_draining",
		"1 while the server refuses new work for shutdown.").Set(b2f(s.draining.Load()))
	poll.Gauge("pythia_serve_ready",
		"1 once the readiness gate is open (recovery complete).").Set(b2f(s.ready()))

	sn := s.statsSnapshot()
	poll.Gauge("pythia_serve_latency_p50_seconds",
		"Median enqueue-to-commit latency over the sample ring.").Set(sn.p50)
	poll.Gauge("pythia_serve_latency_p99_seconds",
		"99th-percentile enqueue-to-commit latency over the sample ring.").Set(sn.p99)

	s.colMu.Lock()
	st := s.col.Stats()
	shards := s.col.ShardStats()
	virtual := float64(s.eng.Now())
	placements := s.placements
	var walRecords, walSegments int
	var walBytes int64
	if s.wal != nil {
		walRecords = s.wal.Records()
		walSegments = s.wal.Segments()
		walBytes = s.wal.Size()
	}
	recovered, recoveredRecords, recoverySec := s.recovered, s.recoveredRecords, s.recoverySec
	s.colMu.Unlock()

	poll.Gauge("pythia_serve_virtual_seconds",
		"The collector's virtual clock.").Set(virtual)
	poll.Counter("pythia_serve_placements_total",
		"Placement decisions folded into the digest.").Add(float64(placements))

	counters := []struct {
		name, help string
		v          int
	}{
		{"pythia_collector_intents_received_total", "Unique intents ingested.", st.IntentsReceived},
		{"pythia_collector_intents_deferred_total", "Intents parked awaiting reducer placement.", st.IntentsDeferred},
		{"pythia_collector_dedup_hits_total", "Exact duplicate intents dropped by the idempotence set.", st.DedupHits},
		{"pythia_collector_duplicate_intents_total", "Re-predictions for an already-booked flow.", st.DuplicateIntents},
		{"pythia_collector_expired_bookings_total", "Reservations reclaimed by the booking-TTL sweep.", st.ExpiredBookings},
		{"pythia_collector_expired_intents_total", "Deferred intents reclaimed by the booking-TTL sweep.", st.ExpiredIntents},
		{"pythia_collector_aggregates_placed_total", "Aggregated flow groups placed.", st.AggregatesPlaced},
		{"pythia_collector_reaffirmations_total", "Placements re-affirmed on re-prediction.", st.Reaffirmations},
		{"pythia_collector_reallocations_total", "Placements moved on re-prediction.", st.Reallocations},
		{"pythia_collector_rule_install_errors_total", "Rule installs rejected by the controller.", st.RuleInstallErrors},
		{"pythia_collector_flows_rescued_total", "Flows rescued from failed links.", st.FlowsRescued},
		{"pythia_collector_aggregates_degraded_total", "Aggregates degraded to shortest path.", st.AggregatesDegraded},
		{"pythia_collector_reconciliations_total", "Reconciliation passes run.", st.Reconciliations},
	}
	for _, c := range counters {
		poll.Counter(c.name, c.help).Add(float64(c.v))
	}
	poll.Gauge("pythia_collector_pending_intents",
		"Intents awaiting reducer placement.").Set(float64(st.PendingIntents))
	poll.Gauge("pythia_collector_outstanding_bookings",
		"Live reservations plus deferred intents, all jobs.").Set(float64(st.OutstandingBookings))
	poll.Gauge("pythia_collector_outstanding_demand_bits",
		"Booked-but-undelivered predicted demand.").Set(st.OutstandingDemandBits)
	for i, sh := range shards {
		l := strconv.Itoa(i)
		poll.Gauge(flight.SeriesName("pythia_collector_shard_pending_intents", "shard", l),
			"Pending intents, by shard.").Set(float64(sh.PendingIntents))
		poll.Gauge(flight.SeriesName("pythia_collector_shard_booked_flows", "shard", l),
			"Booked flows, by shard.").Set(float64(sh.BookedFlows))
		poll.Counter(flight.SeriesName("pythia_collector_shard_dedup_hits_total", "shard", l),
			"Duplicate intents dropped, by shard.").Add(float64(sh.DedupHits))
		poll.Counter(flight.SeriesName("pythia_collector_shard_expired_bookings_total", "shard", l),
			"TTL-reclaimed reservations, by shard.").Add(float64(sh.ExpiredBookings))
		poll.Counter(flight.SeriesName("pythia_collector_shard_expired_intents_total", "shard", l),
			"TTL-reclaimed deferred intents, by shard.").Add(float64(sh.ExpiredIntents))
	}

	if s.wal != nil {
		poll.Gauge("pythia_wal_records",
			"Records in the live journal.").Set(float64(walRecords))
		poll.Gauge("pythia_wal_segments",
			"Segments in the live journal.").Set(float64(walSegments))
		poll.Gauge("pythia_wal_size_bytes",
			"On-disk journal size.").Set(float64(walBytes))
	}
	poll.Gauge("pythia_recovery_recovered",
		"1 if this process restored state from a journal at startup.").Set(b2f(recovered))
	poll.Gauge("pythia_recovery_replayed_records",
		"Journal records replayed during startup recovery.").Set(float64(recoveredRecords))
	poll.Gauge("pythia_recovery_seconds",
		"Wall time startup recovery took.").Set(recoverySec)

	flight.Merge(snap, poll)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, snap.PrometheusText())
}

// FlightEvents returns a copy of the live flight-recorder ring, oldest
// first (nil when Config.FlightEvents is 0).
func (s *Server) FlightEvents() []flight.Event { return s.fr.Events() }

// FlightJSONL renders the live flight-recorder ring as JSON Lines.
func (s *Server) FlightJSONL() []byte { return s.fr.JSONL() }

// ChromeTrace renders the live flight-recorder ring as a Chrome
// chrome://tracing JSON document: serve-plane batch spans next to the
// collector's control-plane lanes, on the virtual-time axis.
func (s *Server) ChromeTrace() ([]byte, error) {
	if s.fr == nil {
		return nil, fmt.Errorf("serve: flight recorder disabled (Config.FlightEvents is 0)")
	}
	return trace.MergedChrome(nil, s.fr.Events())
}
