package serve

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pythia/internal/flight"
)

func scrape(t *testing.T, client *http.Client, url string) *flight.Exposition {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := flight.LintExposition(string(raw)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, raw)
	}
	exp, err := flight.ParseExposition(string(raw))
	if err != nil {
		t.Fatalf("exposition fails parse: %v", err)
	}
	return exp
}

// TestMetricsEndToEnd ingests real traffic on a fully instrumented server and
// checks the scrape: the exposition parses and lints clean, and the key
// series across the serve, WAL, and collector planes carry the expected
// values.
func TestMetricsEndToEnd(t *testing.T) {
	srv, err := New(Config{
		Shards:       2,
		ClockHz:      50,
		WALDir:       t.TempDir(),
		Metrics:      true,
		FlightEvents: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	postJSON(t, client, ts.URL, `{
		"reducers": [{"job":0,"reduce":0,"host":0},{"job":0,"reduce":1,"host":3}],
		"intents": [
			{"job":0,"map":0,"src_host":1,"predicted_wire_bytes":[1e7,2e7]},
			{"job":0,"map":0,"src_host":1,"predicted_wire_bytes":[1e7,2e7]}
		]
	}`)
	if resp, _ := postJSON(t, client, ts.URL, `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request: HTTP %d", resp.StatusCode)
	}

	exp := scrape(t, client, ts.URL)
	checks := []struct {
		name string
		kv   []string
		want float64
	}{
		{"pythia_serve_requests_total", []string{"route", "/v1/ingest", "code", "200"}, 1},
		{"pythia_serve_requests_total", []string{"route", "/v1/ingest", "code", "400"}, 1},
		{"pythia_serve_rejected_total", []string{"reason", "bad_request"}, 1},
		{"pythia_serve_batches_total", nil, 1},
		{"pythia_serve_ops_total", nil, 4},
		{"pythia_serve_ready", nil, 1},
		{"pythia_serve_draining", nil, 0},
		{"pythia_collector_intents_received_total", nil, 1},
		{"pythia_collector_dedup_hits_total", nil, 1},
	}
	for _, c := range checks {
		s := exp.Sample(c.name, c.kv...)
		if s == nil {
			t.Errorf("series %s%v missing from scrape", c.name, c.kv)
			continue
		}
		if s.Value != c.want {
			t.Errorf("%s%v = %v, want %v", c.name, c.kv, s.Value, c.want)
		}
	}
	// Cumulative families that only assert nonzero (timing-dependent).
	for _, name := range []string{
		"pythia_wal_appends_total", "pythia_wal_appended_bytes_total",
		"pythia_wal_rotations_total", "pythia_serve_placements_total",
	} {
		if s := exp.Sample(name); s == nil || s.Value <= 0 {
			t.Errorf("series %s missing or zero", name)
		}
	}
	// Histogram families present and consistent (lint already proved
	// cumulative buckets; check the observation landed).
	if s := exp.Sample("pythia_serve_request_seconds_count", "route", "/v1/ingest"); s == nil || s.Value != 2 {
		t.Errorf("request latency histogram: got %+v, want count 2", s)
	}
	if s := exp.Sample("pythia_serve_commit_seconds_count"); s == nil || s.Value != 1 {
		t.Errorf("commit latency histogram: got %+v, want count 1", s)
	}
	// Per-shard gauges exist for every shard.
	for _, shard := range []string{"0", "1"} {
		if s := exp.Sample("pythia_collector_shard_booked_flows", "shard", shard); s == nil {
			t.Errorf("per-shard gauge missing for shard %s", shard)
		}
	}

	// The middleware stamps request IDs.
	resp, err := client.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID on instrumented server")
	}

	// The flight recorder saw the batch lifecycle.
	kinds := map[flight.Kind]bool{}
	for _, ev := range srv.FlightEvents() {
		kinds[ev.Kind] = true
	}
	for _, k := range []flight.Kind{flight.BatchIngested, flight.BatchJournaled, flight.BatchCommitted} {
		if !kinds[k] {
			t.Errorf("flight recorder missing %s event", k)
		}
	}
	if tr, err := srv.ChromeTrace(); err != nil || len(tr) == 0 {
		t.Errorf("ChromeTrace: %v (%d bytes)", err, len(tr))
	}
}

// TestReadyzTransitions walks the readiness state machine: "recovering" while
// the (gated) replay runs, "ready" after, "draining" during shutdown — while
// /v1/healthz stays a pure liveness probe (200 during recovery).
func TestReadyzTransitions(t *testing.T) {
	dir := t.TempDir()
	seed, err := New(Config{Shards: 2, ClockHz: 50, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seed.Start()
	ts := httptest.NewServer(seed.Handler())
	postJSON(t, ts.Client(), ts.URL, `{"done_jobs":[1]}`)
	if err := seed.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	srv, err := New(Config{Shards: 2, ClockHz: 50, WALDir: dir, Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.recoverGate = make(chan struct{}) // hold replay: server stays "recovering"
	srv.Start()
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()
	client := ts2.Client()

	probe := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get(ts2.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, strings.TrimSpace(string(body))
	}

	if code, body := probe("/v1/readyz"); code != http.StatusServiceUnavailable || body != "recovering" {
		t.Fatalf("recovering readyz: HTTP %d %q, want 503 recovering", code, body)
	}
	if code, _ := probe("/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during recovery: HTTP %d, want 200 (liveness only)", code)
	}
	resp, err := client.Post(ts2.URL+"/v1/ingest", "application/json", strings.NewReader(`{"done_jobs":[2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest during recovery: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("recovering 503 carries no Retry-After")
	}

	close(srv.recoverGate)
	if err := srv.AwaitReady(context.Background()); err != nil {
		t.Fatalf("AwaitReady: %v", err)
	}
	if code, body := probe("/v1/readyz"); code != http.StatusOK || body != "ready" {
		t.Fatalf("ready readyz: HTTP %d %q, want 200 ready", code, body)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body := probe("/v1/readyz"); code != http.StatusServiceUnavailable || body != "draining" {
		t.Fatalf("draining readyz: HTTP %d %q, want 503 draining", code, body)
	}
}

// TestRecoveryMetricsAfterRestart kills a server mid-stream, restarts over
// the journal, and checks the successor's scrape reports a nonzero replay:
// the crash-recovery storm's observability counterpart.
func TestRecoveryMetricsAfterRestart(t *testing.T) {
	dir := t.TempDir()
	kill := make(chan struct{})
	srv, err := New(Config{
		Shards: 2, ClockHz: 50, WALDir: dir, SnapshotEvery: -1,
		CrashHook: func(p CrashPoint) bool {
			select {
			case <-kill:
				return p == CrashAfterCommit
			default:
				return false
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	postJSON(t, client, ts.URL, `{"reducers":[{"job":0,"reduce":0,"host":1}]}`)
	postJSON(t, client, ts.URL, `{"intents":[{"job":0,"map":0,"src_host":2,"predicted_wire_bytes":[4e6]}]}`)
	close(kill) // next batch dies after commit, journal unsealed
	resp, _ := postJSON(t, client, ts.URL, `{"done_jobs":[9]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("crashed batch answered HTTP %d, want 503", resp.StatusCode)
	}
	<-srv.loopDone
	ts.Close()

	succ, err := New(Config{Shards: 2, ClockHz: 50, WALDir: dir, Recover: true, Metrics: true})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	succ.Start()
	defer succ.Shutdown(context.Background())
	if err := succ.AwaitReady(context.Background()); err != nil {
		t.Fatalf("AwaitReady: %v", err)
	}
	ts2 := httptest.NewServer(succ.Handler())
	defer ts2.Close()
	exp := scrape(t, ts2.Client(), ts2.URL)
	if s := exp.Sample("pythia_recovery_recovered"); s == nil || s.Value != 1 {
		t.Errorf("pythia_recovery_recovered = %+v, want 1", s)
	}
	if s := exp.Sample("pythia_recovery_replayed_records"); s == nil || s.Value <= 0 {
		t.Errorf("pythia_recovery_replayed_records = %+v, want > 0", s)
	}
	if s := exp.Sample("pythia_recovery_seconds"); s == nil || s.Value <= 0 {
		t.Errorf("pythia_recovery_seconds = %+v, want > 0", s)
	}
}

// TestStatsSnapshotConsistencyHammer pounds ingest while concurrently taking
// stats snapshots (run under -race): totals must be monotone across
// snapshots, and the final snapshot must account for every request.
func TestStatsSnapshotConsistencyHammer(t *testing.T) {
	srv, err := New(Config{Shards: 2, QueueCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const writers, perWriter = 8, 25
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					postJSON(t, ts.Client(), ts.URL, `{"done_jobs":[1]}`)
				}
			}(w)
		}
		wg.Wait()
	}()

	var lastReq, lastRej int64
	for {
		sn := srv.statsSnapshot()
		if sn.requests < lastReq || sn.rejected < lastRej {
			t.Fatalf("snapshot went backwards: requests %d→%d rejected %d→%d",
				lastReq, sn.requests, lastRej, sn.rejected)
		}
		lastReq, lastRej = sn.requests, sn.rejected
		select {
		case <-done:
			deadline := time.Now().Add(5 * time.Second)
			for srv.statsSnapshot().requests != writers*perWriter {
				if time.Now().After(deadline) {
					t.Fatalf("final requests %d, want %d", srv.statsSnapshot().requests, writers*perWriter)
				}
				time.Sleep(time.Millisecond)
			}
			return
		default:
		}
	}
}

// TestRequestLogging: with a Logger configured, each request emits one
// structured line carrying the request ID, route, and status.
func TestRequestLogging(t *testing.T) {
	var mu sync.Mutex
	var logs strings.Builder
	syncW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logs.Write(p)
	})
	logger := slog.New(slog.NewJSONHandler(syncW, &slog.HandlerOptions{Level: slog.LevelInfo}))
	srv, err := New(Config{Shards: 2, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postJSON(t, ts.Client(), ts.URL, `{"done_jobs":[1]}`)

	mu.Lock()
	out := logs.String()
	mu.Unlock()
	for _, want := range []string{`"msg":"request"`, `"route":"/v1/ingest"`, `"status":200`, `"request_id":`} {
		if !strings.Contains(out, want) {
			t.Errorf("request log missing %s:\n%s", want, out)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestClientStatsCounters: the client's local counters see its retries.
func TestClientStatsCounters(t *testing.T) {
	var calls int
	var mu sync.Mutex
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"recovering"}`))
			return
		}
		_, _ = w.Write([]byte(`{"results":[],"accepted":0}`))
	}))
	defer h.Close()
	cl := NewClient(h.URL, ClientConfig{
		HTTP: h.Client(), Seed: 1, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if _, err := cl.Ingest(context.Background(), &IngestRequest{DoneJobs: []int{1}}); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.Attempts != 2 || st.Retries != 1 {
		t.Errorf("attempts=%d retries=%d, want 2/1", st.Attempts, st.Retries)
	}
	if st.RetryAfterHonored != 1 {
		t.Errorf("retry_after_honored=%d, want 1 (server hint exceeded jitter)", st.RetryAfterHonored)
	}
	if st.BackoffSeconds < 1 {
		t.Errorf("backoff_seconds=%v, want >= 1 (stretched to Retry-After)", st.BackoffSeconds)
	}

	// A permanent rejection counts without retrying.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"no"}`))
	}))
	defer bad.Close()
	cl2 := NewClient(bad.URL, ClientConfig{HTTP: bad.Client(), Seed: 1})
	if _, err := cl2.Ingest(context.Background(), &IngestRequest{}); err == nil {
		t.Fatal("permanent rejection returned no error")
	}
	if st := cl2.Stats(); st.PermanentErrors != 1 || st.Attempts != 1 {
		t.Errorf("permanent=%d attempts=%d, want 1/1", st.PermanentErrors, st.Attempts)
	}
}

// TestPprofOptIn: /debug/pprof is absent by default and mounted with
// Config.Pprof.
func TestPprofOptIn(t *testing.T) {
	plain, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(plain.Handler())
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: HTTP %d, want 404", resp.StatusCode)
	}

	prof, err := New(Config{Shards: 2, Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(prof.Handler())
	defer ts2.Close()
	resp2, err := ts2.Client().Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof with opt-in: HTTP %d, want 200", resp2.StatusCode)
	}
}

// BenchmarkMetricsDisabled is the 0 allocs/op guard for the disabled-path
// observation calls the hot path makes per request and per batch: nil
// serveMetrics receivers and the nil WAL observer must cost a pointer
// compare, nothing more. CI fails the build if this allocates.
func BenchmarkMetricsDisabled(b *testing.B) {
	var m *serveMetrics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.request("/v1/ingest", 200, 0.001)
		m.rejected(rejectQueueFull)
		m.body(512)
		m.batch(8, 0.0004)
		if m.walObserver() != nil {
			b.Fatal("nil metrics must yield a nil WAL observer")
		}
	}
}

// TestMetricsDisabledZeroAlloc mirrors BenchmarkMetricsDisabled as a plain
// test so `go test` (not just the CI bench gate) catches a regression.
func TestMetricsDisabledZeroAlloc(t *testing.T) {
	var m *serveMetrics
	var fr *flight.LiveRecorder
	if n := testing.AllocsPerRun(200, func() {
		m.request("/v1/ingest", 200, 0.001)
		m.rejected(rejectQueueFull)
		m.body(512)
		m.batch(8, 0.0004)
		fr.Record(flight.Ev(flight.BatchIngested, flight.PlaneServe))
	}); n != 0 {
		t.Fatalf("disabled-path observations allocate %v/op, want 0", n)
	}
}
