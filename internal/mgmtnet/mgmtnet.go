// Package mgmtnet models the management network of §III: a physically
// distinct, lower-bisection network (a star through one management switch)
// interconnecting all servers, switches and the controller. It carries the
// out-of-band control plane — Pythia's prediction notifications, reducer-up
// events, and OpenFlow control messages — so that control traffic never
// disrupts application data traffic, while still being subject to its own
// serialization and queueing.
//
// The model is intentionally simple and conservative: per-endpoint
// half-duplex serialization at LinkBps plus a propagation delay, with FIFO
// queueing per sender. That captures the failure mode that matters (control
// bursts queueing behind each other at message granularity) without a
// second full fluid simulation.
package mgmtnet

import (
	"fmt"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Config shapes the management network.
type Config struct {
	// LinkBps is each endpoint's management-port rate (the paper notes
	// this network is "typically of much lower bisection and cost";
	// 100 Mbps management ports were the norm). Default 100 Mbps.
	LinkBps float64
	// PropagationDelay is the fixed one-way latency floor. Default 0.5 ms.
	PropagationDelay sim.Duration
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.LinkBps == 0 {
		c.LinkBps = 100e6
	}
	if c.PropagationDelay == 0 {
		c.PropagationDelay = 0.5 * sim.Millisecond
	}
	return c
}

// Network is the management fabric.
type Network struct {
	eng *sim.Engine
	cfg Config

	// busyUntil serializes each sender's management port.
	busyUntil map[topology.NodeID]sim.Time

	// Messages and Bytes count delivered traffic.
	Messages uint64
	Bytes    float64
	// MaxQueueDelay tracks the worst serialization wait observed.
	MaxQueueDelay sim.Duration
}

// New builds a management network on the engine.
func New(eng *sim.Engine, cfg Config) *Network {
	return &Network{
		eng:       eng,
		cfg:       cfg.Defaults(),
		busyUntil: make(map[topology.NodeID]sim.Time),
	}
}

// Send transmits a control message of the given size from the sender's
// management port, invoking deliver when it arrives at the collector /
// controller. Messages from one sender serialize FIFO; bytes must be
// positive.
func (n *Network) Send(from topology.NodeID, bytes float64, deliver func()) {
	if bytes <= 0 {
		panic(fmt.Sprintf("mgmtnet: message of %v bytes", bytes))
	}
	now := n.eng.Now()
	start := n.busyUntil[from]
	if start < now {
		start = now
	}
	queueDelay := start.Sub(now)
	if queueDelay > n.MaxQueueDelay {
		n.MaxQueueDelay = queueDelay
	}
	txTime := sim.Duration(bytes * 8 / n.cfg.LinkBps)
	done := start.Add(txTime)
	n.busyUntil[from] = done
	n.Messages++
	n.Bytes += bytes
	n.eng.At(done.Add(n.cfg.PropagationDelay), deliver)
}

// Latency reports the no-queue delivery latency for a message size — handy
// for tests and capacity planning.
func (n *Network) Latency(bytes float64) sim.Duration {
	return sim.Duration(bytes*8/n.cfg.LinkBps) + n.cfg.PropagationDelay
}
