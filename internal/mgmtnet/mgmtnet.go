// Package mgmtnet models the management network of §III: a physically
// distinct, lower-bisection network (a star through one management switch)
// interconnecting all servers, switches and the controller. It carries the
// out-of-band control plane — Pythia's prediction notifications, reducer-up
// events, and OpenFlow control messages — so that control traffic never
// disrupts application data traffic, while still being subject to its own
// serialization and queueing.
//
// The model is intentionally simple and conservative: per-endpoint
// half-duplex serialization at LinkBps plus a propagation delay, with FIFO
// queueing per sender. That captures the failure mode that matters (control
// bursts queueing behind each other at message granularity) without a
// second full fluid simulation.
package mgmtnet

import (
	"fmt"

	"pythia/internal/flight"
	"pythia/internal/sim"
	"pythia/internal/stats"
	"pythia/internal/topology"
)

// Config shapes the management network.
type Config struct {
	// LinkBps is each endpoint's management-port rate (the paper notes
	// this network is "typically of much lower bisection and cost";
	// 100 Mbps management ports were the norm). Default 100 Mbps.
	LinkBps float64
	// PropagationDelay is the fixed one-way latency floor. Default 0.5 ms.
	PropagationDelay sim.Duration
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.LinkBps == 0 {
		c.LinkBps = 100e6
	}
	if c.PropagationDelay == 0 {
		c.PropagationDelay = 0.5 * sim.Millisecond
	}
	return c
}

// FaultConfig models the management star's unreliability. The zero value is
// the legacy perfectly-reliable fabric; per-message faults are drawn from a
// dedicated splitmix64 stream so runs are exactly reproducible from Seed.
type FaultConfig struct {
	// DropProb is the per-message loss probability (message transmitted,
	// then lost in the star; the sender's port time is still consumed).
	DropProb float64
	// DupProb is the per-message duplication probability: a second copy of
	// the message is delivered right after the first (the retransmit-storm
	// failure mode that motivates collector-side idempotence).
	DupProb float64
	// ExtraDelay is added to every delivery, modeling a congested or
	// distant management network.
	ExtraDelay sim.Duration
	// JitterMax adds a uniform [0, JitterMax) per-delivery delay.
	JitterMax sim.Duration
	// Seed fixes the fault stream (0 is a valid seed).
	Seed uint64
	// DeferDuringOutage queues sends attempted while the star is down
	// (Fail) and releases them FIFO on Recover; by default such sends are
	// dropped on the floor, as with a rebooting management switch.
	DeferDuringOutage bool
}

// deferredSend is one message held back by an outage under the defer policy.
type deferredSend struct {
	from    topology.NodeID
	bytes   float64
	deliver func()
}

// Network is the management fabric.
type Network struct {
	eng *sim.Engine
	cfg Config

	// busyUntil serializes each sender's management port.
	busyUntil map[topology.NodeID]sim.Time

	// faults is the injected unreliability model; rng is nil until
	// SetFaults installs one, keeping the fault-free path bit-identical to
	// the pre-fault implementation.
	faults   FaultConfig
	rng      *stats.RNG
	down     bool
	deferred []deferredSend

	// fl, when non-nil, receives per-message flight events. Kept nil when
	// recording is disabled so the hot path stays allocation-free.
	fl flight.Sink

	// Messages and Bytes count traffic put on the wire toward delivery
	// (duplicate copies included, dropped transmissions excluded).
	Messages uint64
	Bytes    float64
	// MaxQueueDelay tracks the worst serialization wait observed.
	MaxQueueDelay sim.Duration
	// Dropped counts messages lost to injected faults or outage, Duplicated
	// the extra copies delivered, and Deferred the sends parked during an
	// outage under the defer policy.
	Dropped    uint64
	Duplicated uint64
	Deferred   uint64
}

// New builds a management network on the engine.
func New(eng *sim.Engine, cfg Config) *Network {
	return &Network{
		eng:       eng,
		cfg:       cfg.Defaults(),
		busyUntil: make(map[topology.NodeID]sim.Time),
	}
}

// SetFaults installs the fault model. Call before traffic starts; changing
// it mid-run only affects future sends.
func (n *Network) SetFaults(cfg FaultConfig) {
	n.faults = cfg
	n.rng = stats.NewRNG(cfg.Seed)
}

// SetFlightRecorder installs a flight-event sink. Pass a non-nil sink only;
// leave the field nil to disable recording.
func (n *Network) SetFlightRecorder(s flight.Sink) { n.fl = s }

// recordMsg emits one per-message flight event; no-op when disabled.
func (n *Network) recordMsg(kind flight.Kind, from topology.NodeID, bytes float64, queueDelay sim.Duration, disp string) {
	if n.fl == nil {
		return
	}
	ev := flight.Ev(kind, flight.PlaneMgmt)
	ev.Src = from
	ev.Bytes = bytes
	ev.DelaySec = float64(queueDelay)
	ev.Disposition = disp
	n.fl.Record(ev)
}

// Fail takes the whole management star down (the management switch reboots
// or loses power). Messages already on the wire still arrive; sends
// attempted while down are dropped, or parked until Recover under the
// DeferDuringOutage policy.
func (n *Network) Fail() { n.down = true }

// Recover brings the star back and releases any deferred sends in FIFO
// order, re-serializing them through their senders' ports from now.
func (n *Network) Recover() {
	if !n.down {
		return
	}
	n.down = false
	pending := n.deferred
	n.deferred = nil
	for _, d := range pending {
		n.transmit(d.from, d.bytes, d.deliver)
	}
}

// Down reports whether the star is failed.
func (n *Network) Down() bool { return n.down }

// Send transmits a control message of the given size from the sender's
// management port, invoking deliver when it arrives at the collector /
// controller. Messages from one sender serialize FIFO; bytes must be
// positive. Injected faults (SetFaults) may drop, delay or duplicate the
// message; during an outage (Fail) the send is dropped or deferred per the
// configured policy and deliver may never run.
func (n *Network) Send(from topology.NodeID, bytes float64, deliver func()) {
	if bytes <= 0 {
		panic(fmt.Sprintf("mgmtnet: message of %v bytes", bytes))
	}
	if n.down {
		if n.faults.DeferDuringOutage {
			n.Deferred++
			n.deferred = append(n.deferred, deferredSend{from, bytes, deliver})
			n.recordMsg(flight.MgmtDeferred, from, bytes, 0, flight.DispOutage)
		} else {
			n.Dropped++
			n.recordMsg(flight.MgmtDropped, from, bytes, 0, flight.DispOutage)
		}
		return
	}
	n.transmit(from, bytes, deliver)
}

// transmit serializes one message out the sender's port and schedules its
// delivery (or loss). Fault draws happen in transmission order, so runs are
// deterministic for a fixed seed.
func (n *Network) transmit(from topology.NodeID, bytes float64, deliver func()) {
	now := n.eng.Now()
	start := n.busyUntil[from]
	if start < now {
		start = now
	}
	queueDelay := start.Sub(now)
	if queueDelay > n.MaxQueueDelay {
		n.MaxQueueDelay = queueDelay
	}
	txTime := sim.Duration(bytes * 8 / n.cfg.LinkBps)
	done := start.Add(txTime)
	n.busyUntil[from] = done
	if n.rng != nil && n.faults.DropProb > 0 && n.rng.Float64() < n.faults.DropProb {
		// The bits left the port and died in the star: port time is spent,
		// nothing arrives.
		n.Dropped++
		n.recordMsg(flight.MgmtDropped, from, bytes, queueDelay, flight.DispDrop)
		return
	}
	n.Messages++
	n.Bytes += bytes
	n.recordMsg(flight.MgmtSent, from, bytes, queueDelay, "")
	n.eng.At(done.Add(n.deliveryDelay()), deliver)
	if n.rng != nil && n.faults.DupProb > 0 && n.rng.Float64() < n.faults.DupProb {
		n.Duplicated++
		n.Messages++
		n.Bytes += bytes
		n.recordMsg(flight.MgmtDuplicated, from, bytes, queueDelay, "")
		n.eng.At(done.Add(n.deliveryDelay()), deliver)
	}
}

// deliveryDelay is the post-transmission latency of one delivery:
// propagation plus any configured extra delay and jitter.
func (n *Network) deliveryDelay() sim.Duration {
	d := n.cfg.PropagationDelay + n.faults.ExtraDelay
	if n.rng != nil && n.faults.JitterMax > 0 {
		d += sim.Duration(n.rng.Float64() * float64(n.faults.JitterMax))
	}
	return d
}

// Latency reports the no-queue delivery latency for a message size — handy
// for tests and capacity planning.
func (n *Network) Latency(bytes float64) sim.Duration {
	return sim.Duration(bytes*8/n.cfg.LinkBps) + n.cfg.PropagationDelay
}
