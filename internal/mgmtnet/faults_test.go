package mgmtnet

import (
	"math"
	"testing"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Tests for the fault model and burst-queueing behavior of the management
// star.

// TestBurstQueueingFIFOAndDeterministic: N senders each burst M messages at
// the same instant. Per-sender delivery must be FIFO, MaxQueueDelay must
// grow to (M-1) transmission times, senders must not serialize against each
// other, and two identical runs must produce identical delivery schedules.
func TestBurstQueueingFIFOAndDeterministic(t *testing.T) {
	const senders, msgs = 4, 8
	const bytes = 12500 // 1 ms at 100 Mbps
	run := func() ([][]sim.Time, sim.Duration) {
		eng := sim.NewEngine()
		n := New(eng, Config{})
		got := make([][]sim.Time, senders)
		for s := 0; s < senders; s++ {
			s := s
			for i := 0; i < msgs; i++ {
				n.Send(topology.NodeID(s), bytes, func() { got[s] = append(got[s], eng.Now()) })
			}
		}
		eng.Run()
		return got, n.MaxQueueDelay
	}
	a, maxQ := run()
	for s := 0; s < senders; s++ {
		if len(a[s]) != msgs {
			t.Fatalf("sender %d delivered %d of %d", s, len(a[s]), msgs)
		}
		for i := 1; i < msgs; i++ {
			// FIFO with exactly one transmission time between arrivals.
			if gap := float64(a[s][i].Sub(a[s][i-1])); math.Abs(gap-0.001) > 1e-9 {
				t.Fatalf("sender %d gap %d = %v, want 1 ms", s, i, gap)
			}
		}
		// Senders are independent half-duplex ports: bursts run in
		// parallel, so every sender's schedule matches sender 0's.
		for i := range a[s] {
			if a[s][i] != a[0][i] {
				t.Fatalf("sender %d delivery %d = %v, sender 0 = %v", s, i, a[s][i], a[0][i])
			}
		}
	}
	// The last message of each burst waited (msgs-1) transmission times.
	if want := sim.Duration((msgs - 1) * 0.001); math.Abs(float64(maxQ-want)) > 1e-9 {
		t.Fatalf("MaxQueueDelay = %v, want %v", maxQ, want)
	}
	b, _ := run()
	for s := range a {
		for i := range a[s] {
			if a[s][i] != b[s][i] {
				t.Fatal("identical bursts, different schedules")
			}
		}
	}
}

func TestDropAllLosesEverythingButBurnsPortTime(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	n.SetFaults(FaultConfig{DropProb: 1, Seed: 1})
	delivered := 0
	for i := 0; i < 5; i++ {
		n.Send(1, 12500, func() { delivered++ })
	}
	eng.Run()
	if delivered != 0 {
		t.Fatalf("%d messages survived DropProb=1", delivered)
	}
	if n.Dropped != 5 || n.Messages != 0 {
		t.Fatalf("Dropped=%d Messages=%d", n.Dropped, n.Messages)
	}
	// Port time is still consumed: a later send from the same port queues
	// behind the dropped burst (5 ms of transmissions).
	var lateAt sim.Time
	n.SetFaults(FaultConfig{}) // heal the star so the probe survives
	n.Send(1, 1250, func() { lateAt = eng.Now() })
	eng.Run()
	if float64(lateAt) < 0.005 {
		t.Fatalf("probe at %v, want after the 5 ms of burned port time", lateAt)
	}
}

func TestDuplicationDeliversTwiceAndCounts(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	n.SetFaults(FaultConfig{DupProb: 1, Seed: 1})
	delivered := 0
	n.Send(1, 1250, func() { delivered++ })
	eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d times, want 2 (original + duplicate)", delivered)
	}
	if n.Duplicated != 1 || n.Messages != 2 || n.Bytes != 2500 {
		t.Fatalf("Duplicated=%d Messages=%d Bytes=%v", n.Duplicated, n.Messages, n.Bytes)
	}
}

func TestOutageDropPolicy(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	delivered := 0
	n.Fail()
	if !n.Down() {
		t.Fatal("Down() false after Fail")
	}
	n.Send(1, 1250, func() { delivered++ })
	n.Recover()
	eng.Run()
	if delivered != 0 {
		t.Fatal("default outage policy delivered a message sent while down")
	}
	if n.Dropped != 1 || n.Deferred != 0 {
		t.Fatalf("Dropped=%d Deferred=%d", n.Dropped, n.Deferred)
	}
}

func TestOutageDeferPolicyReleasesFIFO(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	n.SetFaults(FaultConfig{DeferDuringOutage: true, Seed: 1})
	var order []int
	eng.At(1, func() { n.Fail() })
	eng.At(2, func() {
		for i := 0; i < 3; i++ {
			i := i
			n.Send(1, 1250, func() { order = append(order, i) })
		}
	})
	eng.At(5, func() { n.Recover() })
	eng.Run()
	if len(order) != 3 {
		t.Fatalf("delivered %d of 3 deferred messages", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("defer release out of order: %v", order)
		}
	}
	if n.Deferred != 3 || n.Dropped != 0 {
		t.Fatalf("Deferred=%d Dropped=%d", n.Deferred, n.Dropped)
	}
}

func TestExtraDelayAndJitterDeterministic(t *testing.T) {
	run := func() []sim.Time {
		eng := sim.NewEngine()
		n := New(eng, Config{})
		n.SetFaults(FaultConfig{ExtraDelay: 10 * sim.Millisecond, JitterMax: 5 * sim.Millisecond, Seed: 9})
		var at []sim.Time
		for i := 0; i < 6; i++ {
			n.Send(topology.NodeID(i), 1250, func() { at = append(at, eng.Now()) })
		}
		eng.Run()
		return at
	}
	a := run()
	base := New(sim.NewEngine(), Config{}).Latency(1250)
	for _, at := range a {
		d := at.Sub(0)
		if d < base+10*sim.Millisecond || d >= base+15*sim.Millisecond {
			t.Fatalf("delivery at %v outside [base+10ms, base+15ms)", at)
		}
	}
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different jitter")
		}
	}
}

// TestZeroFaultConfigIsInert: installing an all-zero fault model must not
// change a single delivery time (no RNG draws on the hot path).
func TestZeroFaultConfigIsInert(t *testing.T) {
	run := func(install bool) []sim.Time {
		eng := sim.NewEngine()
		n := New(eng, Config{})
		if install {
			n.SetFaults(FaultConfig{Seed: 123})
		}
		var at []sim.Time
		for i := 0; i < 4; i++ {
			n.Send(1, 2500, func() { at = append(at, eng.Now()) })
		}
		eng.Run()
		return at
	}
	plain, zeroed := run(false), run(true)
	for i := range plain {
		if plain[i] != zeroed[i] {
			t.Fatalf("zero fault config perturbed delivery %d: %v vs %v", i, zeroed[i], plain[i])
		}
	}
}
