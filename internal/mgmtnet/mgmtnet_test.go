package mgmtnet

import (
	"math"
	"testing"

	"pythia/internal/sim"
)

func TestDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.LinkBps != 100e6 || c.PropagationDelay != 0.0005 {
		t.Fatalf("defaults: %+v", c)
	}
	c2 := Config{LinkBps: 1e9}.Defaults()
	if c2.LinkBps != 1e9 {
		t.Fatal("explicit LinkBps overridden")
	}
}

func TestSingleMessageLatency(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	var at sim.Time
	// 1250 bytes at 100 Mbps = 0.1 ms tx + 0.5 ms propagation.
	n.Send(1, 1250, func() { at = eng.Now() })
	eng.Run()
	want := 0.0001 + 0.0005
	if math.Abs(float64(at)-want) > 1e-9 {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if math.Abs(float64(n.Latency(1250))-want) > 1e-12 {
		t.Fatalf("Latency = %v", n.Latency(1250))
	}
}

func TestSameSenderSerializes(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	var first, second sim.Time
	n.Send(1, 12500, func() { first = eng.Now() })  // 1 ms tx
	n.Send(1, 12500, func() { second = eng.Now() }) // queued behind
	eng.Run()
	if math.Abs(float64(first)-0.0015) > 1e-9 {
		t.Fatalf("first at %v", first)
	}
	if math.Abs(float64(second)-0.0025) > 1e-9 {
		t.Fatalf("second at %v, want 2.5ms (serialized)", second)
	}
	if n.MaxQueueDelay <= 0 {
		t.Fatal("queue delay not recorded")
	}
}

func TestDifferentSendersParallel(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	var a, b sim.Time
	n.Send(1, 12500, func() { a = eng.Now() })
	n.Send(2, 12500, func() { b = eng.Now() })
	eng.Run()
	if a != b {
		t.Fatalf("independent senders serialized: %v vs %v", a, b)
	}
}

func TestAccounting(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	n.Send(1, 100, func() {})
	n.Send(2, 200, func() {})
	eng.Run()
	if n.Messages != 2 || n.Bytes != 300 {
		t.Fatalf("messages=%d bytes=%v", n.Messages, n.Bytes)
	}
}

func TestSendPanicsOnEmpty(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	defer func() {
		if recover() == nil {
			t.Error("zero-byte send did not panic")
		}
	}()
	n.Send(1, 0, func() {})
}

func TestQueueDrainsOverTime(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	// Burst of 10 messages at t=0, then one at t=1: the late message
	// must not queue (port long idle).
	for i := 0; i < 10; i++ {
		n.Send(1, 1250, func() {})
	}
	var lateAt sim.Time
	eng.At(1, func() {
		n.Send(1, 1250, func() { lateAt = eng.Now() })
	})
	eng.Run()
	if math.Abs(float64(lateAt)-1.0006) > 1e-9 {
		t.Fatalf("late message at %v, want 1.0006", lateAt)
	}
}
