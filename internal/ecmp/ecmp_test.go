package ecmp

import (
	"testing"
	"testing/quick"

	"pythia/internal/netsim"
	"pythia/internal/topology"
)

func setup() (*Allocator, []topology.NodeID, *topology.Graph) {
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	return New(g, 4, 1), hosts, g
}

func tup(src, dst topology.NodeID, sp, dp uint16) netsim.FiveTuple {
	return netsim.FiveTuple{SrcHost: src, DstHost: dst, SrcPort: sp, DstPort: dp, Protocol: 6}
}

func TestResolveDeterministic(t *testing.T) {
	a, hosts, _ := setup()
	ft := tup(hosts[0], hosts[5], 100, 200)
	p1, ok1 := a.Resolve(ft)
	p2, ok2 := a.Resolve(ft)
	if !ok1 || !ok2 || !p1.Equal(p2) {
		t.Fatal("same tuple resolved to different paths")
	}
}

func TestResolveLocal(t *testing.T) {
	a, hosts, _ := setup()
	p, ok := a.Resolve(tup(hosts[0], hosts[0], 1, 2))
	if !ok || p.Hops() != 0 {
		t.Fatalf("local resolve = %v hops, ok=%v", p.Hops(), ok)
	}
}

func TestResolveValidPath(t *testing.T) {
	a, hosts, g := setup()
	for sp := uint16(0); sp < 50; sp++ {
		p, ok := a.Resolve(tup(hosts[1], hosts[7], sp, 50060))
		if !ok {
			t.Fatal("no path")
		}
		if err := p.Valid(g); err != nil {
			t.Fatalf("invalid path: %v", err)
		}
		if p.Src != hosts[1] || p.Dst != hosts[7] {
			t.Fatal("wrong endpoints")
		}
	}
}

func TestEqualCostOnly(t *testing.T) {
	// In a leaf-spine with 2 spines, ECMP must only use the 4-hop paths
	// even when k allows longer detours.
	g, hosts := topology.LeafSpine(3, 2, 2, topology.Gbps)
	a := New(g, 8, 1)
	ps := a.Paths(hosts[0], hosts[4])
	if len(ps) != 2 {
		t.Fatalf("equal-cost set = %d, want 2 (one per spine)", len(ps))
	}
	for _, p := range ps {
		if p.Hops() != ps[0].Hops() {
			t.Fatal("unequal-cost path in ECMP set")
		}
	}
}

func TestPortSensitivity(t *testing.T) {
	// Different source ports must spread over both trunks eventually.
	a, hosts, _ := setup()
	seen := map[topology.LinkID]bool{}
	for sp := uint16(0); sp < 64; sp++ {
		p, _ := a.Resolve(tup(hosts[0], hosts[5], sp, 50060))
		seen[p.Links[1]] = true // trunk hop
	}
	if len(seen) != 2 {
		t.Fatalf("64 flows hashed onto %d trunks, want 2", len(seen))
	}
}

func TestHashBalance(t *testing.T) {
	a, hosts, _ := setup()
	counts := map[topology.LinkID]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		p, _ := a.Resolve(tup(hosts[0], hosts[5], uint16(i), uint16(i*7)))
		counts[p.Links[1]]++
	}
	for l, c := range counts {
		if c < n/2-n/8 || c > n/2+n/8 {
			t.Fatalf("trunk %d got %d of %d flows; hash is skewed", l, c, n)
		}
	}
}

func TestSeedChangesPlacement(t *testing.T) {
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	a1 := New(g, 2, 1)
	a2 := New(g, 2, 99)
	diff := 0
	for i := 0; i < 100; i++ {
		ft := tup(hosts[0], hosts[5], uint16(i), 50060)
		p1, _ := a1.Resolve(ft)
		p2, _ := a2.Resolve(ft)
		if !p1.Equal(p2) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical placements for all 100 flows")
	}
}

func TestCacheInvalidationOnTopologyChange(t *testing.T) {
	a, hosts, g := setup()
	ps := a.Paths(hosts[0], hosts[5])
	if len(ps) != 2 {
		t.Fatalf("paths = %d, want 2", len(ps))
	}
	// Take one trunk down; cache must refresh.
	trunk := ps[0].Links[1]
	g.SetLinkUp(trunk, false)
	ps2 := a.Paths(hosts[0], hosts[5])
	if len(ps2) != 1 {
		t.Fatalf("paths after link down = %d, want 1", len(ps2))
	}
	for _, p := range ps2 {
		if err := p.Valid(g); err != nil {
			t.Fatalf("stale path after topology change: %v", err)
		}
	}
}

func TestResolveDisconnected(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	b := g.AddNode(topology.Host, "b", 1)
	al := New(g, 2, 0)
	if _, ok := al.Resolve(tup(a, b, 1, 2)); ok {
		t.Fatal("resolved a path in a disconnected graph")
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	g, _, _ := topology.TwoRack(2, 1, topology.Gbps)
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	New(g, 0, 0)
}

// Property: Resolve is a pure function of (tuple, seed) and always yields a
// valid path between the right endpoints.
func TestPropertyResolve(t *testing.T) {
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	a := New(g, 4, 7)
	f := func(si, di uint8, sp, dp uint16, proto uint8) bool {
		src := hosts[int(si)%len(hosts)]
		dst := hosts[int(di)%len(hosts)]
		ft := netsim.FiveTuple{SrcHost: src, DstHost: dst, SrcPort: sp, DstPort: dp, Protocol: proto}
		p1, ok := a.Resolve(ft)
		if !ok {
			return false
		}
		p2, _ := a.Resolve(ft)
		if !p1.Equal(p2) {
			return false
		}
		if src == dst {
			return p1.Hops() == 0
		}
		return p1.Valid(g) == nil && p1.Src == src && p1.Dst == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkResolve(b *testing.B) {
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	a := New(g, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Resolve(tup(hosts[0], hosts[5], uint16(i), 50060))
	}
}

func TestRoundRobinDeals(t *testing.T) {
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	rr := NewRoundRobin(g, 2)
	ft := tup(hosts[0], hosts[5], 1, 1)
	p1, ok1 := rr.Resolve(ft)
	p2, ok2 := rr.Resolve(ft)
	p3, ok3 := rr.Resolve(ft)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("resolution failed")
	}
	if p1.Equal(p2) {
		t.Fatal("consecutive resolutions not rotated")
	}
	if !p1.Equal(p3) {
		t.Fatal("rotation did not wrap over 2 paths")
	}
}

func TestRoundRobinPerPairState(t *testing.T) {
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	rr := NewRoundRobin(g, 2)
	a1, _ := rr.Resolve(tup(hosts[0], hosts[5], 1, 1))
	// A different pair starts its own rotation from index 0.
	b1, _ := rr.Resolve(tup(hosts[1], hosts[6], 1, 1))
	a2, _ := rr.Resolve(tup(hosts[0], hosts[5], 1, 1))
	if a1.Equal(a2) {
		t.Fatal("pair A did not advance")
	}
	// Pair B's first pick uses the same index as pair A's first pick
	// (both index 0 of their own sets).
	_ = b1
}

func TestRoundRobinLocalAndDisconnected(t *testing.T) {
	g, hosts, _ := topology.TwoRack(2, 1, topology.Gbps)
	rr := NewRoundRobin(g, 2)
	if p, ok := rr.Resolve(tup(hosts[0], hosts[0], 1, 1)); !ok || p.Hops() != 0 {
		t.Fatal("local resolve broken")
	}
	if _, err := rr.ResolveShuffle(tup(hosts[0], hosts[1], 1, 1)); err != nil {
		t.Fatal(err)
	}
	iso := topology.NewGraph()
	a := iso.AddNode(topology.Host, "a", 0)
	b := iso.AddNode(topology.Host, "b", 1)
	rr2 := NewRoundRobin(iso, 2)
	if _, err := rr2.ResolveShuffle(tup(a, b, 1, 1)); err == nil {
		t.Fatal("disconnected pair resolved")
	}
}

func TestRoundRobinPerfectBalance(t *testing.T) {
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	rr := NewRoundRobin(g, 2)
	counts := map[topology.LinkID]int{}
	for i := 0; i < 100; i++ {
		p, _ := rr.Resolve(tup(hosts[0], hosts[5], uint16(i), 1))
		counts[p.Links[1]]++
	}
	for l, c := range counts {
		if c != 50 {
			t.Fatalf("trunk %d got %d of 100, want exact 50/50", l, c)
		}
	}
}
