// Package ecmp implements the paper's baseline flow-allocation scheme:
// Equal-Cost Multi-Pathing. As in the paper's own implementation, a flow's
// five-tuple is hashed and the flow is assigned a path by a modulus
// computation over the number of available paths in the routing graph
// (cf. RFC 2992). The hash is load-unaware: two elephant flows can land on
// the same congested path while an alternative sits idle — the adversarial
// case of Fig. 1b.
package ecmp

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"pythia/internal/netsim"
	"pythia/internal/topology"
)

// Allocator assigns paths by five-tuple hash over the k-shortest paths of
// each host pair. Path sets come from an incrementally-repaired
// topology.PathCache (a fault invalidates only the pairs it can affect; the
// paper recomputes the routing graph only on topology events, keeping
// routing computation off the data path); the equal-cost subsets derived
// from them are memoized against the cache revision.
type Allocator struct {
	g    *topology.Graph
	pc   *topology.PathCache
	seed uint64
	eq   map[[2]topology.NodeID][]topology.Path
	rev  uint64

	// FlowsRescued counts in-flight flows re-hashed off failed paths by
	// RescueStranded (fault-plane subscription via AttachNetwork).
	FlowsRescued int
}

// New returns an ECMP allocator over the k shortest paths per pair. The
// seed perturbs the hash so experiments can sample different (deterministic)
// hash placements, emulating different TCP source ports across job runs.
func New(g *topology.Graph, k int, seed uint64) *Allocator {
	if k <= 0 {
		panic("ecmp: k must be positive")
	}
	a := &Allocator{
		g:    g,
		pc:   topology.NewPathCache(g, k),
		seed: seed,
		eq:   make(map[[2]topology.NodeID][]topology.Path),
	}
	a.rev = a.pc.Rev()
	return a
}

// Paths returns the cached equal-cost path set for a host pair.
func (a *Allocator) Paths(src, dst topology.NodeID) []topology.Path {
	key := [2]topology.NodeID{src, dst}
	all := a.pc.Paths(src, dst)
	// Deriving the eq-cost subset is cheap, but the memo must still drop
	// pairs whose underlying paths were invalidated; the cache revision
	// moves whenever any entry does.
	if a.pc.Rev() != a.rev {
		a.eq = make(map[[2]topology.NodeID][]topology.Path)
		a.rev = a.pc.Rev()
	}
	if ps, ok := a.eq[key]; ok {
		return ps
	}
	// ECMP only spreads over equal-cost (same hop count) paths.
	var eq []topology.Path
	for _, p := range all {
		if p.Hops() == all[0].Hops() {
			eq = append(eq, p)
		}
	}
	a.eq[key] = eq
	return eq
}

// Hash computes the flow hash used for the modulus path selection.
func (a *Allocator) Hash(t netsim.FiveTuple) uint64 {
	h := fnv.New64a()
	var buf [21]byte
	binary.BigEndian.PutUint64(buf[0:8], a.seed)
	binary.BigEndian.PutUint32(buf[8:12], uint32(t.SrcHost))
	binary.BigEndian.PutUint32(buf[12:16], uint32(t.DstHost))
	binary.BigEndian.PutUint16(buf[16:18], t.SrcPort)
	binary.BigEndian.PutUint16(buf[18:20], t.DstPort)
	buf[20] = t.Protocol
	h.Write(buf[:])
	// FNV-1a's low bits are parity-linear in the input bytes, which biases
	// a small modulus (e.g. 2 trunk paths). Finalize with an avalanche mix
	// so every output bit depends on every input byte.
	return mix(h.Sum64())
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Resolve picks the path for a flow: hash(five-tuple) mod |paths|. It
// returns false when the pair is disconnected. Same-host pairs resolve to
// the zero-hop local path.
func (a *Allocator) Resolve(t netsim.FiveTuple) (topology.Path, bool) {
	if t.SrcHost == t.DstHost {
		return topology.Path{Src: t.SrcHost, Dst: t.DstHost}, true
	}
	ps := a.Paths(t.SrcHost, t.DstHost)
	if len(ps) == 0 {
		return topology.Path{}, false
	}
	return ps[a.Hash(t)%uint64(len(ps))], true
}

// ResolveShuffle adapts Resolve to the hadoop.PathResolver interface, making
// plain ECMP usable directly as the cluster's flow allocator (the paper's
// baseline configuration).
func (a *Allocator) ResolveShuffle(t netsim.FiveTuple) (topology.Path, error) {
	p, ok := a.Resolve(t)
	if !ok {
		return topology.Path{}, fmt.Errorf("ecmp: no path %d -> %d", t.SrcHost, t.DstHost)
	}
	return p, nil
}

// AttachNetwork subscribes the allocator to the network's fault plane:
// every link/switch failure or recovery re-hashes the in-flight flows of
// the given kinds whose paths died. ECMP has no controller, so this models
// each switch's local hash simply re-spreading over the surviving
// equal-cost next hops. Attach one allocator per flow kind it owns (the
// shuffle allocator must not move another allocator's storage flows).
func (a *Allocator) AttachNetwork(net *netsim.Network, kinds ...netsim.FlowKind) {
	net.SubscribeTopology(func(netsim.TopoEvent) {
		a.RescueStranded(net, kinds...)
	})
}

// RescueStranded walks the active flows of the given kinds and re-resolves
// any whose path crosses a dead link, returning how many moved. Flows whose
// pair is fully disconnected stay put and starve until connectivity
// returns (there is nowhere to move them). Recovery events matter too:
// re-hashing on recovery is what puts traffic back onto restored trunks.
func (a *Allocator) RescueStranded(net *netsim.Network, kinds ...netsim.FlowKind) int {
	moved := 0
	net.ForEachActive(func(f *netsim.Flow) {
		if len(f.Path.Links) == 0 {
			return // zero-hop local flow, nothing to rescue
		}
		match := false
		for _, k := range kinds {
			if f.Kind == k {
				match = true
				break
			}
		}
		if !match {
			return
		}
		if f.Path.Valid(a.g) == nil {
			return // still routable
		}
		p, ok := a.Resolve(f.Tuple)
		if !ok {
			return // disconnected: starve until recovery
		}
		net.Reroute(f, p)
		moved++
	})
	a.FlowsRescued += moved
	return moved
}
