package ecmp

import (
	"fmt"

	"pythia/internal/netsim"
	"pythia/internal/topology"
)

// RoundRobin is the simplest alternative flow-allocation module (§IV notes
// Pythia's design is "modular enough to support further flow scheduling
// algorithms"): it deals each host pair's successive flows across the
// equal-cost path set in rotation. Unlike hash-based ECMP it cannot collide
// an unlucky pair of elephants on the same path twice in a row, but it is
// still load- and application-unaware.
type RoundRobin struct {
	alloc *Allocator
	next  map[[2]topology.NodeID]int
}

// NewRoundRobin builds the allocator over the k shortest equal-cost paths
// per pair.
func NewRoundRobin(g *topology.Graph, k int) *RoundRobin {
	return &RoundRobin{
		alloc: New(g, k, 0),
		next:  make(map[[2]topology.NodeID]int),
	}
}

// Resolve deals the pair's next equal-cost path. Note that unlike hashing,
// resolution is stateful: the same five-tuple maps to different paths on
// successive calls.
func (r *RoundRobin) Resolve(t netsim.FiveTuple) (topology.Path, bool) {
	if t.SrcHost == t.DstHost {
		return topology.Path{Src: t.SrcHost, Dst: t.DstHost}, true
	}
	ps := r.alloc.Paths(t.SrcHost, t.DstHost)
	if len(ps) == 0 {
		return topology.Path{}, false
	}
	key := [2]topology.NodeID{t.SrcHost, t.DstHost}
	idx := r.next[key] % len(ps)
	r.next[key]++
	return ps[idx], true
}

// ResolveShuffle adapts Resolve to hadoop.PathResolver.
func (r *RoundRobin) ResolveShuffle(t netsim.FiveTuple) (topology.Path, error) {
	p, ok := r.Resolve(t)
	if !ok {
		return topology.Path{}, fmt.Errorf("roundrobin: no path %d -> %d", t.SrcHost, t.DstHost)
	}
	return p, nil
}
