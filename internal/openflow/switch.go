package openflow

import (
	"errors"
	"fmt"

	"pythia/internal/netsim"
	"pythia/internal/topology"
)

// ErrTableFull is returned when a switch's flow table has no room for
// another rule. The paper motivates host-pair (and rack/POD-pair)
// aggregation precisely by the high cost and limited size of wildcard-rule
// TCAM memory.
var ErrTableFull = errors.New("openflow: flow table full")

// FlowRule is one forwarding entry: packets matching Match are emitted on
// link Out. Cookie groups rules installed for one logical path so they can
// be removed together.
type FlowRule struct {
	Match    Match
	Out      topology.LinkID
	Priority int
	Cookie   uint64
	// seq is assigned by the switch at install time to break priority ties
	// (later installs win, as in OpenFlow's overlapping-rule semantics
	// with OFPFF_CHECK_OVERLAP unset).
	seq uint64
}

// EvictionPolicy selects the behaviour of Install at a full table.
type EvictionPolicy int

const (
	// RejectWhenFull fails installs at capacity (ErrTableFull) — the
	// conservative default; the controller is expected to manage state.
	RejectWhenFull EvictionPolicy = iota
	// EvictOldest drops the lowest-priority (oldest among ties) rule to
	// make room, approximating idle-timeout churn on real TCAMs.
	EvictOldest
)

// Switch is a flow-table-bearing network element.
type Switch struct {
	Node topology.NodeID
	// Capacity limits the number of rules (0 = unlimited).
	Capacity int
	// Eviction selects the full-table behaviour.
	Eviction EvictionPolicy

	rules   []*FlowRule
	nextSeq uint64
	// rackOf resolves a host's rack for prefix (rack-pair) rules; nil
	// disables rack matching.
	rackOf func(topology.NodeID) int
	// Counters, for the stats service and tests.
	Installs  uint64
	Removals  uint64
	Lookups   uint64
	Misses    uint64
	Evictions uint64
}

// NewSwitch returns a switch with an empty table.
func NewSwitch(node topology.NodeID, capacity int) *Switch {
	return &Switch{Node: node, Capacity: capacity}
}

// SetRackResolver enables rack-pair (prefix) rule matching.
func (s *Switch) SetRackResolver(fn func(topology.NodeID) int) { s.rackOf = fn }

// Install adds a rule. At capacity it fails with ErrTableFull
// (RejectWhenFull) or evicts the lowest-priority, oldest rule (EvictOldest).
func (s *Switch) Install(r FlowRule) error {
	if s.Capacity > 0 && len(s.rules) >= s.Capacity {
		if s.Eviction != EvictOldest {
			return ErrTableFull
		}
		victim := 0
		for i, c := range s.rules {
			v := s.rules[victim]
			if c.Priority < v.Priority || (c.Priority == v.Priority && c.seq < v.seq) {
				victim = i
			}
		}
		s.rules = append(s.rules[:victim], s.rules[victim+1:]...)
		s.Evictions++
	}
	rc := r
	rc.seq = s.nextSeq
	s.nextSeq++
	s.rules = append(s.rules, &rc)
	s.Installs++
	return nil
}

// Lookup returns the best matching rule: highest priority, then highest
// specificity, then most recently installed.
func (s *Switch) Lookup(t netsim.FiveTuple) (FlowRule, bool) {
	s.Lookups++
	var best *FlowRule
	for _, r := range s.rules {
		if !r.Match.MatchesWithRacks(t, s.rackOf) {
			continue
		}
		if best == nil {
			best = r
			continue
		}
		if r.Priority != best.Priority {
			if r.Priority > best.Priority {
				best = r
			}
			continue
		}
		rs, bs := r.Match.Specificity(), best.Match.Specificity()
		if rs != bs {
			if rs > bs {
				best = r
			}
			continue
		}
		if r.seq > best.seq {
			best = r
		}
	}
	if best == nil {
		s.Misses++
		return FlowRule{}, false
	}
	return *best, true
}

// RemoveByCookie deletes all rules carrying the cookie and returns how many
// were removed.
func (s *Switch) RemoveByCookie(cookie uint64) int {
	kept := s.rules[:0]
	removed := 0
	for _, r := range s.rules {
		if r.Cookie == cookie {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	for i := len(kept); i < len(s.rules); i++ {
		s.rules[i] = nil
	}
	s.rules = kept
	s.Removals += uint64(removed)
	return removed
}

// RuleCount reports current table occupancy.
func (s *Switch) RuleCount() int { return len(s.rules) }

// Rules returns a copy of the table for inspection.
func (s *Switch) Rules() []FlowRule {
	out := make([]FlowRule, len(s.rules))
	for i, r := range s.rules {
		out[i] = *r
	}
	return out
}

func (s *Switch) String() string {
	return fmt.Sprintf("switch(node=%d rules=%d)", s.Node, len(s.rules))
}
