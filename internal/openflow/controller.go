package openflow

import (
	"fmt"

	"pythia/internal/flight"
	"pythia/internal/mgmtnet"
	"pythia/internal/netsim"
	"pythia/internal/ofp10"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// DefaultInstallLatency is the per-rule programming latency. The paper
// reports contemporary hardware allows ~3–5 ms per installed flow; we default
// to the middle of that band.
const DefaultInstallLatency = 4 * sim.Millisecond

// DefaultPollInterval is the link-load update service period.
const DefaultPollInterval = 1 * sim.Second

// Controller is the centralized SDN control plane: it owns a Switch per
// topology switch node, serializes rule installation with per-rule latency,
// publishes periodic link-load statistics, and notifies listeners of
// topology changes (OpenDaylight's topology update service in the paper).
type Controller struct {
	eng *sim.Engine
	g   *topology.Graph
	net *netsim.Network

	switches map[topology.NodeID]*Switch

	// InstallLatency is the control-plane programming cost per rule.
	InstallLatency sim.Duration

	// install queue: the controller programs rules strictly in order.
	queueBusyUntil sim.Time

	linkLoad  map[topology.LinkID]LoadSample
	pollEvery sim.Duration
	topoLs    []func()
	lastVer   uint64

	// dist caches per-destination hop distances for the default ECMP
	// pipeline, rebuilt on topology version change.
	dist distCache

	// RulesInstalled counts successful installs, for overhead reporting.
	RulesInstalled uint64
	// FlowModsSent counts OpenFlow FLOW_MOD messages emitted and
	// ControlBytes their total wire size (ofp10 encoding) — the §III
	// control-plane traffic the management network carries.
	FlowModsSent uint64
	ControlBytes float64

	// mgmt, when set, carries control messages with per-sender
	// serialization instead of the fixed install pipeline delay.
	mgmt     *mgmtnet.Network
	ctrlNode topology.NodeID
	nextXID  uint32

	// Control-plane fault model (see faults.go).
	faults   FaultConfig
	ctrlDown bool
	txSeq    uint64
	ctrlUpLs []func()
	// Retransmissions counts timed-out FLOW_MODs that were re-sent,
	// DroppedFlowMods the transmissions lost to injected faults or
	// controller outage, and InstallFailures the rules abandoned after the
	// retry budget ran out.
	Retransmissions uint64
	DroppedFlowMods uint64
	InstallFailures uint64

	// fl, when non-nil, receives control-plane flight events. Kept nil when
	// recording is disabled so the hot path stays allocation-free.
	fl flight.Sink
}

// LoadSample is one link's state as of the last poll.
type LoadSample struct {
	Utilization  float64
	AvailableBps float64
	// ShuffleBps is the portion of the load due to shuffle flows, which
	// application-aware consumers (Pythia) can subtract to estimate
	// background traffic.
	ShuffleBps float64
	SampledAt  sim.Time
}

// NewController builds a controller over every switch in the graph and
// starts the link-load poller.
func NewController(eng *sim.Engine, net *netsim.Network, tableCapacity int) *Controller {
	g := net.Graph()
	c := &Controller{
		eng:            eng,
		g:              g,
		net:            net,
		switches:       make(map[topology.NodeID]*Switch),
		InstallLatency: DefaultInstallLatency,
		linkLoad:       make(map[topology.LinkID]LoadSample),
		pollEvery:      DefaultPollInterval,
		lastVer:        g.Version(),
	}
	rackOf := func(n topology.NodeID) int { return g.Node(n).Rack }
	for _, s := range g.Switches() {
		sw := NewSwitch(s, tableCapacity)
		sw.SetRackResolver(rackOf)
		c.switches[s] = sw
		// Session setup per switch: HELLO exchange + feature discovery.
		c.ControlBytes += float64(len(ofp10.Hello(0))) * 2
		c.ControlBytes += float64(len(ofp10.PortStatsRequest(0)))
	}
	// Fault-plane events (netsim.FailLink/FailSwitch and recoveries) reach
	// the controller immediately — they model the switch's asynchronous
	// PORT_STATUS notification — while raw graph mutations are still only
	// seen at poll granularity, like LLDP-driven discovery. Updating
	// lastVer here keeps the next poll from double-firing the listeners.
	net.SubscribeTopology(func(netsim.TopoEvent) {
		if v := c.g.Version(); v != c.lastVer {
			c.lastVer = v
			for _, fn := range c.topoLs {
				fn()
			}
		}
	})
	c.poll()
	return c
}

// SetManagementNetwork routes FLOW_MOD messages over an explicit management
// fabric (per-sender FIFO serialization + transmission time) before the
// per-rule switch programming latency, instead of the built-in serialized
// pipeline. ctrlNode identifies the controller's management port.
func (c *Controller) SetManagementNetwork(mn *mgmtnet.Network, ctrlNode topology.NodeID) {
	c.mgmt = mn
	c.ctrlNode = ctrlNode
}

// SetFlightRecorder installs a flight-event sink. Pass a non-nil sink only;
// leave the field nil to disable recording.
func (c *Controller) SetFlightRecorder(s flight.Sink) { c.fl = s }

// matchEndpoints maps a rule match to flight-event endpoints: concrete
// hosts when present, rack numbers encoded as NodeIDs otherwise (mirroring
// the collector's rack-scope aggregate keys).
func matchEndpoints(m Match) (src, dst topology.NodeID) {
	src, dst = -1, -1
	switch {
	case m.SrcHost != Wildcard:
		src = m.SrcHost
	case m.SrcRack != Wildcard:
		src = topology.NodeID(m.SrcRack)
	}
	switch {
	case m.DstHost != Wildcard:
		dst = m.DstHost
	case m.DstRack != Wildcard:
		dst = topology.NodeID(m.DstRack)
	}
	return src, dst
}

// Switch returns the flow-table model for a switch node; nil for hosts or
// unknown nodes.
func (c *Controller) Switch(n topology.NodeID) *Switch { return c.switches[n] }

// SetPollInterval changes the link-load service period (takes effect after
// the next poll).
func (c *Controller) SetPollInterval(d sim.Duration) {
	if d <= 0 {
		panic("openflow: non-positive poll interval")
	}
	c.pollEvery = d
}

func (c *Controller) poll() {
	// One pass over each link's occupancy-index entry yields all three
	// quantities, so a poll costs O(links + flows-on-links) instead of the
	// pre-index O(links × active flows).
	for _, l := range c.g.Links() {
		u, avail, shuffle := c.net.LinkStats(l.ID)
		c.linkLoad[l.ID] = LoadSample{
			Utilization:  u,
			AvailableBps: avail,
			ShuffleBps:   shuffle,
			SampledAt:    c.eng.Now(),
		}
	}
	// The link-load update service is OFPST_PORT polling under the hood:
	// one request/reply per switch per period, the reply sized by the
	// switch's port count. This dominates Pythia's control traffic.
	for node, sw := range c.switches {
		ports := len(c.g.Out(node))
		c.nextXID++
		c.ControlBytes += float64(len(ofp10.PortStatsRequest(c.nextXID)))
		c.ControlBytes += float64(8 + 4 + ports*104) // reply header + entries
		_ = sw
	}
	if c.g.Version() != c.lastVer {
		c.lastVer = c.g.Version()
		for _, fn := range c.topoLs {
			fn()
		}
	}
	// Daemon: the recurring poll must not keep the simulation alive after
	// the workload drains.
	c.eng.AfterDaemon(c.pollEvery, c.poll)
}

// LinkLoad returns the last polled sample for a link. The staleness is
// inherent to stats-polling control planes and is what reactive schemes
// like Hedera pay that predictive Pythia does not.
func (c *Controller) LinkLoad(l topology.LinkID) LoadSample { return c.linkLoad[l] }

// OnTopologyChange registers a callback run when the topology version
// changes (detected at poll granularity).
func (c *Controller) OnTopologyChange(fn func()) { c.topoLs = append(c.topoLs, fn) }

// FailLink takes a link down (fault injection). Traffic on the link starves
// immediately; control-plane listeners hear about it at the next poll, as
// with LLDP-driven discovery.
//
// Deprecated: use Network.FailLink, which downs the whole duplex pair and
// notifies every fault-plane subscriber immediately. This single-direction,
// poll-granularity variant remains for tests that exercise discovery lag.
func (c *Controller) FailLink(l topology.LinkID) {
	c.g.SetLinkUp(l, false)
	c.net.NotifyTopology()
}

// RestoreLink brings a link back up.
//
// Deprecated: use Network.RecoverLink (see FailLink).
func (c *Controller) RestoreLink(l topology.LinkID) {
	c.g.SetLinkUp(l, true)
	c.net.NotifyTopology()
}

// InstallPath programs one rule per switch along the path so that traffic
// matching m follows exactly that path. Rules appear in the switch tables
// asynchronously — the controller serializes installs at InstallLatency per
// rule — and done (may be nil) fires with the first error or nil once all
// rules are in. Host hops need no rules (servers have a single uplink).
func (c *Controller) InstallPath(m Match, path topology.Path, priority int, cookie uint64, done func(error)) {
	c.install(m, path, priority, cookie, false, done)
}

// InstallSteering programs rules only on hops whose out-link leads to
// another switch — the trunk/spine choices. Used with rack-pair (prefix)
// matches: the final hop to the destination server differs per host and is
// left to the default pipeline, so one coarse rule steers a whole rack's
// traffic without misdelivering it.
func (c *Controller) InstallSteering(m Match, path topology.Path, priority int, cookie uint64, done func(error)) {
	c.install(m, path, priority, cookie, true, done)
}

// installStep is one rule installation on one switch along a path; a nil
// switch marks a pure-ack round trip (no rule-bearing hops).
type installStep struct {
	sw  *Switch
	out topology.LinkID
}

func (c *Controller) install(m Match, path topology.Path, priority int, cookie uint64, interSwitchOnly bool, done func(error)) {
	var steps []installStep
	for _, lid := range path.Links {
		l := c.g.Link(lid)
		if sw, ok := c.switches[l.From]; ok {
			if interSwitchOnly && c.g.Node(l.To).Kind != topology.Switch {
				continue
			}
			steps = append(steps, installStep{sw, lid})
		}
	}
	if c.fl != nil {
		ev := flight.Ev(flight.InstallStart, flight.PlaneControl)
		ev.Src, ev.Dst = matchEndpoints(m)
		ev.Cookie = cookie
		ev.Count = len(steps)
		c.fl.Record(ev)
		if done != nil {
			// Wrap the caller's ack to stamp the install RTT. Only a non-nil
			// done is wrapped: turning a nil done non-nil would activate the
			// no-op ack round trip below and change the simulation.
			src, dst := matchEndpoints(m)
			start := c.eng.Now()
			orig := done
			done = func(err error) {
				ev := flight.Ev(flight.InstallDone, flight.PlaneControl)
				ev.Src, ev.Dst = src, dst
				ev.Cookie = cookie
				ev.DelaySec = float64(c.eng.Now().Sub(start))
				if err != nil {
					ev.Disposition = flight.DispError
					ev.Detail = err.Error()
				} else {
					ev.Disposition = flight.DispOK
				}
				c.fl.Record(ev)
				orig(err)
			}
		}
	}
	if c.faults.InstallTimeout > 0 {
		c.installFaulty(m, steps, priority, cookie, done)
		return
	}
	if len(steps) == 0 {
		if done != nil {
			// Even a no-op command round-trips the control network. With a
			// management network configured the ack must queue behind the
			// controller's other control traffic like any FLOW_MOD, not
			// bypass it through the built-in pipeline delay.
			if c.mgmt != nil {
				c.nextXID++
				wire := ofp10.EchoRequest(c.nextXID, nil)
				c.ControlBytes += float64(len(wire))
				c.mgmt.Send(c.ctrlNode, float64(len(wire)), func() {
					c.eng.After(c.InstallLatency, func() { done(nil) })
				})
			} else {
				c.eng.After(c.InstallLatency, func() { done(nil) })
			}
		}
		return
	}
	var firstErr error
	apply := func(st installStep, last bool) {
		err := st.sw.Install(FlowRule{Match: m, Out: st.out, Priority: priority, Cookie: cookie})
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err == nil {
			c.RulesInstalled++
		}
		if last && done != nil {
			done(firstErr)
		}
	}

	if c.mgmt != nil {
		// Explicit control plane: each rule is a real OpenFlow FLOW_MOD
		// serialized out the controller's management port (FIFO), then
		// programmed at the switch after the hardware latency.
		for i, st := range steps {
			st := st
			last := i == len(steps)-1
			wire := c.encodeFlowMod(m, st.out, priority, cookie)
			c.FlowModsSent++
			c.ControlBytes += float64(len(wire))
			c.mgmt.Send(c.ctrlNode, float64(len(wire)), func() {
				c.eng.After(c.InstallLatency, func() { apply(st, last) })
			})
		}
		return
	}

	// Built-in pipeline: serialize behind any in-flight installation work
	// at InstallLatency per rule (the paper's 3–5 ms/flow budget).
	start := c.queueBusyUntil
	if start < c.eng.Now() {
		start = c.eng.Now()
	}
	for i, st := range steps {
		st := st
		last := i == len(steps)-1
		wire := c.encodeFlowMod(m, st.out, priority, cookie)
		c.FlowModsSent++
		c.ControlBytes += float64(len(wire))
		at := start.Add(sim.Duration(float64(c.InstallLatency) * float64(i+1)))
		c.eng.At(at, func() { apply(st, last) })
	}
	c.queueBusyUntil = start.Add(sim.Duration(float64(c.InstallLatency) * float64(len(steps))))
}

// encodeFlowMod produces the authentic OpenFlow 1.0 wire message for a rule
// (host-pair or rack-prefix match, one output action); its size feeds the
// control-traffic accounting.
func (c *Controller) encodeFlowMod(m Match, out topology.LinkID, priority int, cookie uint64) []byte {
	c.nextXID++
	var src, dst uint32
	switch {
	case m.SrcHost != Wildcard:
		src = uint32(m.SrcHost)
	case m.SrcRack != Wildcard:
		src = uint32(m.SrcRack)
	}
	switch {
	case m.DstHost != Wildcard:
		dst = uint32(m.DstHost)
	case m.DstRack != Wildcard:
		dst = uint32(m.DstRack)
	}
	fm := &ofp10.FlowMod{
		XID:      c.nextXID,
		Match:    ofp10.HostPairMatch(src, dst),
		Cookie:   cookie,
		Command:  ofp10.FCAdd,
		Priority: uint16(priority),
		Actions:  []ofp10.ActionOutput{{Port: uint16(out)}},
	}
	return fm.Encode()
}

// RemovePath deletes every rule carrying cookie across all switches,
// immediately (rule deletion is cheap and not on the critical path).
func (c *Controller) RemovePath(cookie uint64) int {
	removed := 0
	for _, sw := range c.switches {
		removed += sw.RemoveByCookie(cookie)
	}
	return removed
}

// Resolve walks a tuple through the fabric hop by hop: hosts forward on
// their single uplink; switches consult their flow table and, on a miss,
// fall back to local ECMP hashing over the shortest-path next hops (the
// default datacenter pipeline in the paper). It fails when the fabric has
// no route or a rule loop is detected.
func (c *Controller) Resolve(t netsim.FiveTuple) (topology.Path, error) {
	if t.SrcHost == t.DstHost {
		return topology.Path{Src: t.SrcHost, Dst: t.DstHost}, nil
	}
	dist := c.distanceTo(t.DstHost)
	var links []topology.LinkID
	at := t.SrcHost
	maxHops := 4 * c.g.NumNodes()
	for at != t.DstHost {
		if len(links) >= maxHops {
			return topology.Path{}, fmt.Errorf("openflow: forwarding loop resolving %v after %d hops", t, len(links))
		}
		var next topology.LinkID = -1
		if sw, ok := c.switches[at]; ok {
			if rule, ok := sw.Lookup(t); ok && c.g.LinkUp(rule.Out) && c.g.Link(rule.Out).From == at {
				next = rule.Out
			}
		}
		if next == -1 {
			// Default pipeline: ECMP local hash over shortest-path
			// next hops.
			var candidates []topology.LinkID
			for _, lid := range c.g.Out(at) {
				to := c.g.Link(lid).To
				d := dist[to]
				if d < 0 {
					continue
				}
				if cur := dist[at]; cur >= 0 && d == cur-1 {
					candidates = append(candidates, lid)
				}
			}
			if len(candidates) == 0 {
				return topology.Path{}, fmt.Errorf("openflow: no route from node %d to %d", at, t.DstHost)
			}
			next = candidates[localHash(t, at)%uint64(len(candidates))]
		}
		links = append(links, next)
		at = c.g.Link(next).To
	}
	p := topology.Path{Links: links, Src: t.SrcHost, Dst: t.DstHost}
	if err := p.Valid(c.g); err != nil {
		return topology.Path{}, fmt.Errorf("openflow: resolved invalid path: %w", err)
	}
	return p, nil
}

// distCache holds per-destination hop distances in dense index-addressed
// form, keyed by graph version. Earlier revisions rebuilt a reverse
// adjacency map and a distance map on every Resolve call — the single
// largest allocation source in whole-trial profiles (83% of allocated
// bytes at k=8). Now the reverse adjacency is a CSR built once per topology
// version and each destination's distance vector is computed once and
// reused until the next version bump.
type distCache struct {
	ver     uint64
	built   bool
	revHead []int32 // CSR: predecessors of node n are revList[revHead[n]:revHead[n+1]]
	revList []topology.NodeID
	byDst   map[topology.NodeID][]int32
	queue   []topology.NodeID
	degree  []int32 // rebuild scratch
}

// distanceTo returns hop distances of every node to dst over up links:
// dist[n] is the hop count, -1 when unreachable.
func (c *Controller) distanceTo(dst topology.NodeID) []int32 {
	dc := &c.dist
	if !dc.built || dc.ver != c.g.Version() {
		dc.rebuild(c.g)
	}
	if d, ok := dc.byDst[dst]; ok {
		return d
	}
	n := c.g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	dc.queue = append(dc.queue[:0], dst)
	for qi := 0; qi < len(dc.queue); qi++ {
		u := dc.queue[qi]
		nd := dist[u] + 1
		for _, m := range dc.revList[dc.revHead[u]:dc.revHead[u+1]] {
			if dist[m] < 0 {
				dist[m] = nd
				dc.queue = append(dc.queue, m)
			}
		}
	}
	dc.byDst[dst] = dist
	return dist
}

// rebuild recomputes the reverse CSR over up links and drops all cached
// distance vectors.
func (dc *distCache) rebuild(g *topology.Graph) {
	n := g.NumNodes()
	nl := g.NumLinks()
	if cap(dc.degree) < n+1 {
		dc.degree = make([]int32, n+1)
		dc.revHead = make([]int32, n+1)
	}
	dc.degree = dc.degree[:n+1]
	dc.revHead = dc.revHead[:n+1]
	for i := range dc.degree {
		dc.degree[i] = 0
	}
	for l := 0; l < nl; l++ {
		lid := topology.LinkID(l)
		if g.LinkUp(lid) {
			dc.degree[g.Link(lid).To]++
		}
	}
	var sum int32
	for i := 0; i <= n; i++ {
		dc.revHead[i] = sum
		if i < n {
			sum += dc.degree[i]
		}
	}
	if cap(dc.revList) < int(sum) {
		dc.revList = make([]topology.NodeID, sum)
	}
	dc.revList = dc.revList[:sum]
	copy(dc.degree, dc.revHead[:n+1]) // reuse as running fill cursor
	for l := 0; l < nl; l++ {
		lid := topology.LinkID(l)
		if g.LinkUp(lid) {
			lk := g.Link(lid)
			dc.revList[dc.degree[lk.To]] = lk.From
			dc.degree[lk.To]++
		}
	}
	dc.byDst = make(map[topology.NodeID][]int32)
	dc.ver = g.Version()
	dc.built = true
}

// ResolveShuffle adapts Resolve to the hadoop.PathResolver interface: under
// Pythia, shuffle flows are routed by whatever rules the controller has
// installed, falling back to the default ECMP pipeline on a table miss.
func (c *Controller) ResolveShuffle(t netsim.FiveTuple) (topology.Path, error) {
	return c.Resolve(t)
}

func localHash(t netsim.FiveTuple, at topology.NodeID) uint64 {
	z := uint64(t.SrcHost)<<48 ^ uint64(t.DstHost)<<32 ^
		uint64(t.SrcPort)<<16 ^ uint64(t.DstPort) ^ uint64(t.Protocol)<<56 ^ uint64(at)<<24
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
