package openflow

import (
	"math"
	"testing"
	"testing/quick"

	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

func tb() (*sim.Engine, *netsim.Network, *Controller, []topology.NodeID, []topology.LinkID) {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	c := NewController(eng, net, 0)
	return eng, net, c, hosts, trunks
}

func tup(src, dst topology.NodeID, sp, dp uint16) netsim.FiveTuple {
	return netsim.FiveTuple{SrcHost: src, DstHost: dst, SrcPort: sp, DstPort: dp, Protocol: 6}
}

func TestMatchWildcards(t *testing.T) {
	m := HostPair(1, 2)
	if !m.Matches(tup(1, 2, 123, 456)) {
		t.Fatal("host-pair match failed on matching tuple")
	}
	if m.Matches(tup(1, 3, 123, 456)) || m.Matches(tup(2, 2, 1, 1)) {
		t.Fatal("host-pair matched wrong hosts")
	}
	if m.Specificity() != 4 {
		t.Fatalf("HostPair specificity = %d, want 4", m.Specificity())
	}
}

func TestMatchExact(t *testing.T) {
	ft := tup(3, 4, 10, 20)
	m := Exact(ft)
	if !m.Matches(ft) {
		t.Fatal("exact match failed")
	}
	other := ft
	other.SrcPort = 11
	if m.Matches(other) {
		t.Fatal("exact matched different port")
	}
	if m.Specificity() != 10 {
		t.Fatalf("Exact specificity = %d, want 10", m.Specificity())
	}
	if m.String() == "" || HostPair(1, 2).String() == "" {
		t.Fatal("empty Match.String")
	}
}

func TestSwitchInstallLookup(t *testing.T) {
	s := NewSwitch(0, 0)
	if err := s.Install(FlowRule{Match: HostPair(1, 2), Out: 7, Priority: 10, Cookie: 1}); err != nil {
		t.Fatal(err)
	}
	r, ok := s.Lookup(tup(1, 2, 5, 5))
	if !ok || r.Out != 7 {
		t.Fatalf("lookup = %+v ok=%v", r, ok)
	}
	if _, ok := s.Lookup(tup(9, 9, 1, 1)); ok {
		t.Fatal("lookup matched nothing-rule")
	}
	if s.Misses != 1 || s.Lookups != 2 || s.Installs != 1 {
		t.Fatalf("counters: %+v", *s)
	}
}

func TestSwitchPriorityAndSpecificity(t *testing.T) {
	s := NewSwitch(0, 0)
	ft := tup(1, 2, 10, 20)
	s.Install(FlowRule{Match: HostPair(1, 2), Out: 1, Priority: 5})
	s.Install(FlowRule{Match: Exact(ft), Out: 2, Priority: 5})
	if r, _ := s.Lookup(ft); r.Out != 2 {
		t.Fatalf("more specific rule lost: out=%d", r.Out)
	}
	s.Install(FlowRule{Match: HostPair(1, 2), Out: 3, Priority: 9})
	if r, _ := s.Lookup(ft); r.Out != 3 {
		t.Fatalf("higher priority rule lost: out=%d", r.Out)
	}
	// Same priority+specificity: newest wins.
	s.Install(FlowRule{Match: HostPair(1, 2), Out: 4, Priority: 9})
	if r, _ := s.Lookup(ft); r.Out != 4 {
		t.Fatalf("newest-wins broken: out=%d", r.Out)
	}
}

func TestSwitchCapacity(t *testing.T) {
	s := NewSwitch(0, 2)
	if err := s.Install(FlowRule{Match: HostPair(1, 2), Out: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Install(FlowRule{Match: HostPair(1, 3), Out: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Install(FlowRule{Match: HostPair(1, 4), Out: 1}); err != ErrTableFull {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

func TestSwitchRemoveByCookie(t *testing.T) {
	s := NewSwitch(0, 0)
	s.Install(FlowRule{Match: HostPair(1, 2), Out: 1, Cookie: 42})
	s.Install(FlowRule{Match: HostPair(1, 3), Out: 1, Cookie: 42})
	s.Install(FlowRule{Match: HostPair(1, 4), Out: 1, Cookie: 7})
	if n := s.RemoveByCookie(42); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if s.RuleCount() != 1 {
		t.Fatalf("rules left = %d, want 1", s.RuleCount())
	}
	if rs := s.Rules(); len(rs) != 1 || rs[0].Cookie != 7 {
		t.Fatalf("wrong survivor: %+v", rs)
	}
}

func TestControllerHasSwitchPerSwitchNode(t *testing.T) {
	_, _, c, hosts, _ := tb()
	if c.Switch(hosts[0]) != nil {
		t.Fatal("controller created a switch for a host")
	}
	g := 0
	for _, n := range []topology.NodeID{0, 1} { // tor0, tor1 are first two nodes
		if c.Switch(n) != nil {
			g++
		}
	}
	if g != 2 {
		t.Fatalf("controller switches = %d, want 2", g)
	}
}

func TestResolveDefaultECMPConsistent(t *testing.T) {
	_, _, c, hosts, _ := tb()
	ft := tup(hosts[0], hosts[5], 9, 9)
	p1, err := c.Resolve(ft)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := c.Resolve(ft)
	if !p1.Equal(p2) {
		t.Fatal("default pipeline not flow-consistent")
	}
	if p1.Hops() != 3 {
		t.Fatalf("inter-rack hops = %d, want 3", p1.Hops())
	}
}

func TestResolveLocal(t *testing.T) {
	_, _, c, hosts, _ := tb()
	p, err := c.Resolve(tup(hosts[0], hosts[0], 1, 1))
	if err != nil || p.Hops() != 0 {
		t.Fatalf("local resolve: %v, hops=%d", err, p.Hops())
	}
}

func TestResolveSpreadsAcrossTrunks(t *testing.T) {
	_, _, c, hosts, trunks := tb()
	seen := map[topology.LinkID]bool{}
	for sp := uint16(0); sp < 64; sp++ {
		p, err := c.Resolve(tup(hosts[0], hosts[5], sp, 50060))
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range p.Links {
			for _, tr := range trunks {
				if l == tr {
					seen[l] = true
				}
			}
		}
	}
	if len(seen) != 2 {
		t.Fatalf("default ECMP used %d trunks over 64 flows, want 2", len(seen))
	}
}

func TestInstallPathOverridesECMP(t *testing.T) {
	eng, _, c, hosts, trunks := tb()
	g := c.g
	paths := g.KShortestPaths(hosts[0], hosts[5], 2)
	// Choose the path over trunk 1 explicitly.
	var want topology.Path
	for _, p := range paths {
		for _, l := range p.Links {
			if l == trunks[1] {
				want = p
			}
		}
	}
	if want.Hops() == 0 {
		t.Fatal("no path over trunk1 found")
	}
	installed := false
	c.InstallPath(HostPair(hosts[0], hosts[5]), want, 100, 1, func(err error) {
		if err != nil {
			t.Errorf("install error: %v", err)
		}
		installed = true
	})
	eng.Run()
	if !installed {
		t.Fatal("done callback never fired")
	}
	// Every flow between the pair must now take the installed path,
	// regardless of ports.
	for sp := uint16(0); sp < 16; sp++ {
		p, err := c.Resolve(tup(hosts[0], hosts[5], sp, 50060))
		if err != nil {
			t.Fatal(err)
		}
		if !p.Equal(want) {
			t.Fatalf("flow sp=%d did not follow installed path", sp)
		}
	}
	// Reverse direction is unaffected.
	rp, err := c.Resolve(tup(hosts[5], hosts[0], 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Src != hosts[5] {
		t.Fatal("reverse path broken")
	}
}

func TestInstallLatencySerialized(t *testing.T) {
	eng, _, c, hosts, _ := tb()
	g := c.g
	p1 := g.KShortestPaths(hosts[0], hosts[5], 2)[0]
	p2 := g.KShortestPaths(hosts[1], hosts[6], 2)[0]
	var t1, t2 sim.Time
	c.InstallPath(HostPair(hosts[0], hosts[5]), p1, 100, 1, func(error) { t1 = eng.Now() })
	c.InstallPath(HostPair(hosts[1], hosts[6]), p2, 100, 2, func(error) { t2 = eng.Now() })
	eng.Run()
	// Each inter-rack path crosses 2 switches → 2 rules each at 4 ms.
	if math.Abs(float64(t1)-0.008) > 1e-9 {
		t.Fatalf("first install done at %v, want 8ms", t1)
	}
	if math.Abs(float64(t2)-0.016) > 1e-9 {
		t.Fatalf("second install done at %v, want 16ms (serialized)", t2)
	}
	if c.RulesInstalled != 4 {
		t.Fatalf("RulesInstalled = %d, want 4", c.RulesInstalled)
	}
}

func TestInstallPathTableFull(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(2, 2, topology.Gbps)
	net := netsim.New(eng, g)
	c := NewController(eng, net, 1) // one rule per switch
	p := g.KShortestPaths(hosts[0], hosts[2], 2)[0]
	var err1, err2 error
	ok1 := false
	c.InstallPath(HostPair(hosts[0], hosts[2]), p, 100, 1, func(err error) { err1 = err; ok1 = true })
	c.InstallPath(HostPair(hosts[1], hosts[3]), p, 100, 2, func(err error) { err2 = err })
	eng.Run()
	if !ok1 || err1 != nil {
		t.Fatalf("first install should succeed, err=%v", err1)
	}
	if err2 != ErrTableFull {
		t.Fatalf("second install err = %v, want ErrTableFull", err2)
	}
}

func TestRemovePathRestoresECMP(t *testing.T) {
	eng, _, c, hosts, _ := tb()
	g := c.g
	p := g.KShortestPaths(hosts[0], hosts[5], 2)[0]
	c.InstallPath(HostPair(hosts[0], hosts[5]), p, 100, 77, nil)
	eng.Run()
	if n := c.RemovePath(77); n != 2 {
		t.Fatalf("removed %d rules, want 2", n)
	}
	if n := c.RemovePath(77); n != 0 {
		t.Fatalf("second remove = %d, want 0", n)
	}
}

func TestLinkLoadPolling(t *testing.T) {
	eng, net, c, hosts, _ := tb()
	g := c.g
	p := g.KShortestPaths(hosts[0], hosts[5], 2)[0]
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, p, 10e9, 0, 0, 0, nil)
	// At t=0 the poller ran before the flow existed.
	if s := c.LinkLoad(p.Links[0]); s.Utilization != 0 {
		t.Fatalf("pre-poll utilization = %v, want 0 (stale)", s.Utilization)
	}
	eng.RunUntil(1.5) // poller fires at t=1
	s := c.LinkLoad(p.Links[0])
	if math.Abs(s.Utilization-1) > 1e-9 {
		t.Fatalf("polled utilization = %v, want 1", s.Utilization)
	}
	if s.SampledAt != 1 {
		t.Fatalf("SampledAt = %v, want 1", s.SampledAt)
	}
	if s.AvailableBps != 0 {
		t.Fatalf("AvailableBps = %v, want 0", s.AvailableBps)
	}
}

func TestPollerDoesNotKeepEngineAlive(t *testing.T) {
	eng, _, _, _, _ := tb()
	eng.At(2, func() {})
	eng.Run() // must terminate despite the recurring poller
	if eng.Now() < 2 {
		t.Fatalf("engine stopped early at %v", eng.Now())
	}
}

func TestTopologyChangeNotification(t *testing.T) {
	eng, _, c, _, trunks := tb()
	notified := 0
	c.OnTopologyChange(func() { notified++ })
	eng.At(0.5, func() { c.FailLink(trunks[0]) })
	eng.At(3.5, func() {})
	eng.RunUntil(3.5)
	if notified != 1 {
		t.Fatalf("topology notifications = %d, want 1", notified)
	}
	if c.g.LinkUp(trunks[0]) {
		t.Fatal("link still up after FailLink")
	}
	c.RestoreLink(trunks[0])
	if !c.g.LinkUp(trunks[0]) {
		t.Fatal("link down after RestoreLink")
	}
}

func TestResolveAfterLinkFailure(t *testing.T) {
	eng, _, c, hosts, trunks := tb()
	c.FailLink(trunks[0])
	// Also fail the reverse direction to fully remove the trunk.
	rev := c.g.FindLinks(c.g.Link(trunks[0]).To, c.g.Link(trunks[0]).From)
	_ = rev
	eng.RunUntil(0.1)
	for sp := uint16(0); sp < 16; sp++ {
		p, err := c.Resolve(tup(hosts[0], hosts[5], sp, 50060))
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range p.Links {
			if l == trunks[0] {
				t.Fatal("resolved through failed link")
			}
		}
	}
}

func TestSetPollIntervalValidation(t *testing.T) {
	_, _, c, _, _ := tb()
	defer func() {
		if recover() == nil {
			t.Error("non-positive poll interval did not panic")
		}
	}()
	c.SetPollInterval(0)
}

func TestInstallPathHostOnlyPath(t *testing.T) {
	eng, _, c, hosts, _ := tb()
	// Zero-hop path: no switches, still calls done after control RTT.
	done := false
	c.InstallPath(HostPair(hosts[0], hosts[0]), topology.Path{Src: hosts[0], Dst: hosts[0]}, 1, 1, func(err error) {
		if err != nil {
			t.Errorf("err = %v", err)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("done not called for rule-less path")
	}
}

// Property: for random tuples, Resolve yields a valid path ending at the
// destination, and installing a host-pair rule set forces all ports onto
// one path.
func TestPropertyResolveValid(t *testing.T) {
	_, _, c, hosts, _ := tb()
	f := func(si, di uint8, sp, dp uint16) bool {
		src := hosts[int(si)%len(hosts)]
		dst := hosts[int(di)%len(hosts)]
		p, err := c.Resolve(tup(src, dst, sp, dp))
		if err != nil {
			return false
		}
		if src == dst {
			return p.Hops() == 0
		}
		return p.Valid(c.g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkResolveFabric(b *testing.B) {
	_, _, c, hosts, _ := tb()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Resolve(tup(hosts[0], hosts[5], uint16(i), 50060)); err != nil {
			b.Fatal(err)
		}
	}
}
