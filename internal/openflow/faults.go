package openflow

import (
	"errors"

	"pythia/internal/flight"
	"pythia/internal/ofp10"
	"pythia/internal/sim"
)

// ErrControlPlaneUnreachable reports that a rule install exhausted its retry
// budget without an acknowledgement — the controller's view of that switch
// is stale. Consumers (Pythia) match it with errors.Is and degrade the
// affected aggregate to the default ECMP pipeline.
var ErrControlPlaneUnreachable = errors.New("openflow: control plane unreachable (install retry budget exhausted)")

// FaultConfig models management-channel unreliability. The zero value means
// the legacy perfectly-reliable pipeline; setting InstallTimeout > 0 turns
// the fault-aware install path on.
type FaultConfig struct {
	// InstallTimeout is how long the controller waits for a FLOW_MOD to be
	// acknowledged before retransmitting. Zero disables the fault machinery
	// entirely.
	InstallTimeout sim.Duration
	// MaxRetries bounds retransmissions per rule; past the budget the
	// install fails with ErrControlPlaneUnreachable.
	MaxRetries int
	// RetryBackoff is the delay before the first retransmission; it doubles
	// on every subsequent attempt (exponential backoff).
	RetryBackoff sim.Duration
	// ExtraDelay is added to every management-channel delivery, modeling a
	// congested or distant control network.
	ExtraDelay sim.Duration
	// Drop, when non-nil, is consulted with a monotonically increasing
	// transmission sequence number; returning true loses that transmission.
	// Deterministic hooks (e.g. drop every Nth) keep runs reproducible.
	Drop func(seq uint64) bool
}

// SetFaults installs the control-plane fault model. Call before traffic
// starts; changing it mid-run only affects future installs.
func (c *Controller) SetFaults(cfg FaultConfig) { c.faults = cfg }

// Faults returns the active fault model.
func (c *Controller) Faults() FaultConfig { return c.faults }

// FailController takes the controller's management connectivity down: every
// subsequent FLOW_MOD transmission is lost (the retry machinery keeps
// trying until its budget runs out). Requires a FaultConfig with
// InstallTimeout > 0 for installs issued while down to resolve; otherwise
// they would wait forever for an ack that cannot arrive.
func (c *Controller) FailController() { c.ctrlDown = true }

// RecoverController restores management connectivity and fires the
// OnControllerUp listeners so schedulers can reconcile state programmed
// while the controller was dark.
func (c *Controller) RecoverController() {
	if !c.ctrlDown {
		return
	}
	c.ctrlDown = false
	for _, fn := range c.ctrlUpLs {
		fn()
	}
}

// ControllerUp reports management connectivity.
func (c *Controller) ControllerUp() bool { return !c.ctrlDown }

// OnControllerUp registers a callback fired by RecoverController.
func (c *Controller) OnControllerUp(fn func()) { c.ctrlUpLs = append(c.ctrlUpLs, fn) }

// installFaulty is the fault-aware install path: each rule is an independent
// transmission with timeout, bounded exponential-backoff retransmission, and
// loss injection. A path with no rule-bearing hops still costs one pure-ack
// round trip so that control-plane outage is observable for it too.
func (c *Controller) installFaulty(m Match, steps []installStep, priority int, cookie uint64, done func(error)) {
	if len(steps) == 0 {
		steps = []installStep{{sw: nil, out: -1}}
	}
	remaining := len(steps)
	var firstErr error
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 && done != nil {
			done(firstErr)
		}
	}
	for _, st := range steps {
		c.sendWithRetry(m, st, priority, cookie, 0, finish)
	}
}

// sendWithRetry performs one transmission attempt for one rule and arms its
// timeout. Late deliveries after a timeout are discarded (stale XID), so a
// retransmitted rule is never double-installed.
func (c *Controller) sendWithRetry(m Match, st installStep, priority int, cookie uint64, attempt int, finish func(error)) {
	c.txSeq++
	seq := c.txSeq
	var wire []byte
	if st.sw != nil {
		wire = c.encodeFlowMod(m, st.out, priority, cookie)
	} else {
		c.nextXID++
		wire = ofp10.EchoRequest(c.nextXID, nil)
	}

	delivered := false
	abandoned := false
	deliver := func() {
		if abandoned {
			return
		}
		delivered = true
		if st.sw == nil {
			finish(nil)
			return
		}
		err := st.sw.Install(FlowRule{Match: m, Out: st.out, Priority: priority, Cookie: cookie})
		if err == nil {
			c.RulesInstalled++
		}
		finish(err)
	}

	lost := c.ctrlDown || (c.faults.Drop != nil && c.faults.Drop(seq))
	if c.ctrlDown {
		// The controller cannot put the message on the wire at all: no
		// bytes are accounted, the transmission is simply lost.
		c.DroppedFlowMods++
		c.recordFlowModLost(cookie, attempt, flight.DispOutage)
	} else {
		if st.sw != nil {
			c.FlowModsSent++
		}
		c.ControlBytes += float64(len(wire))
		if lost {
			c.DroppedFlowMods++
			c.recordFlowModLost(cookie, attempt, flight.DispDrop)
		}
	}
	if !lost {
		after := c.InstallLatency + c.faults.ExtraDelay
		if c.mgmt != nil {
			c.mgmt.Send(c.ctrlNode, float64(len(wire)), func() {
				c.eng.After(after, deliver)
			})
		} else {
			c.eng.After(after, deliver)
		}
	}

	c.eng.After(c.faults.InstallTimeout, func() {
		if delivered {
			return
		}
		abandoned = true
		if attempt < c.faults.MaxRetries {
			c.Retransmissions++
			if c.fl != nil {
				ev := flight.Ev(flight.FlowModRetry, flight.PlaneControl)
				ev.Cookie = cookie
				ev.Count = attempt + 1
				c.fl.Record(ev)
			}
			backoff := sim.Duration(float64(c.faults.RetryBackoff) * float64(uint64(1)<<uint(attempt)))
			c.eng.After(backoff, func() {
				c.sendWithRetry(m, st, priority, cookie, attempt+1, finish)
			})
			return
		}
		c.InstallFailures++
		finish(ErrControlPlaneUnreachable)
	})
}

// recordFlowModLost emits the flowmod-dropped flight event; a no-op when
// the recorder is disabled.
func (c *Controller) recordFlowModLost(cookie uint64, attempt int, disp string) {
	if c.fl == nil {
		return
	}
	ev := flight.Ev(flight.FlowModDropped, flight.PlaneControl)
	ev.Cookie = cookie
	ev.Count = attempt + 1
	ev.Disposition = disp
	c.fl.Record(ev)
}
