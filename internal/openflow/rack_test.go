package openflow

import (
	"testing"
	"testing/quick"

	"pythia/internal/mgmtnet"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Rack-pair (prefix) rule semantics through the controller.

func TestRackPairMatchNeedsResolver(t *testing.T) {
	m := RackPair(0, 1)
	ft := tup(2, 7, 1, 2) // hosts in rack0 / rack1 on the testbed
	// Without a resolver the rack fields cannot match.
	if m.MatchesWithRacks(ft, nil) {
		t.Fatal("rack match succeeded without resolver")
	}
	rackOf := func(n topology.NodeID) int {
		if n >= 2 && n <= 6 {
			return 0
		}
		return 1
	}
	if !m.MatchesWithRacks(ft, rackOf) {
		t.Fatal("rack match failed with resolver")
	}
	if m.MatchesWithRacks(tup(7, 2, 1, 2), rackOf) {
		t.Fatal("reversed rack pair matched")
	}
}

func TestInstallSteeringSkipsLastHop(t *testing.T) {
	eng, _, c, hosts, trunks := tb()
	g := c.g
	// Find the path over trunk1.
	var path topology.Path
	for _, p := range g.KShortestPaths(hosts[0], hosts[5], 2) {
		for _, l := range p.Links {
			if l == trunks[1] {
				path = p
			}
		}
	}
	done := false
	c.InstallSteering(RackPair(0, 1), path, 100, 5, func(err error) {
		if err != nil {
			t.Errorf("steering install: %v", err)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("install never completed")
	}
	// Only the source-side ToR gets a rule (its out-link leads to the
	// other switch); the destination ToR's hop to the host is left to
	// the default pipeline.
	tor0, tor1 := c.Switch(0), c.Switch(1)
	if tor0.RuleCount() != 1 {
		t.Fatalf("tor0 rules = %d, want 1", tor0.RuleCount())
	}
	if tor1.RuleCount() != 0 {
		t.Fatalf("tor1 rules = %d, want 0 (delivery hop is default)", tor1.RuleCount())
	}
	// Every rack0→rack1 host pair must now ride trunk1, and be delivered
	// to its own destination.
	for _, src := range hosts[:5] {
		for _, dst := range hosts[5:] {
			p, err := c.Resolve(tup(src, dst, 9, 9))
			if err != nil {
				t.Fatal(err)
			}
			usesTrunk1 := false
			for _, l := range p.Links {
				if l == trunks[1] {
					usesTrunk1 = true
				}
			}
			if !usesTrunk1 {
				t.Fatalf("%d->%d not steered over trunk1", src, dst)
			}
			if p.Dst != dst {
				t.Fatalf("misdelivered to %d, want %d", p.Dst, dst)
			}
		}
	}
	// Reverse-direction traffic is untouched by the rack0→rack1 rule.
	p, err := c.Resolve(tup(hosts[5], hosts[0], 9, 9))
	if err != nil || p.Dst != hosts[0] {
		t.Fatalf("reverse resolve broken: %v %v", p, err)
	}
}

func TestRuleWithStaleOutIgnored(t *testing.T) {
	eng, _, c, hosts, trunks := tb()
	g := c.g
	var path topology.Path
	for _, p := range g.KShortestPaths(hosts[0], hosts[5], 2) {
		for _, l := range p.Links {
			if l == trunks[0] {
				path = p
			}
		}
	}
	c.InstallPath(HostPair(hosts[0], hosts[5]), path, 100, 9, nil)
	eng.Run()
	// Fail the trunk the rule points at: Resolve must fall back to the
	// default pipeline over the surviving trunk rather than error.
	c.FailLink(trunks[0])
	p, err := c.Resolve(tup(hosts[0], hosts[5], 3, 3))
	if err != nil {
		t.Fatalf("resolve after stale rule: %v", err)
	}
	for _, l := range p.Links {
		if l == trunks[0] {
			t.Fatal("resolved through failed link via stale rule")
		}
	}
}

func tup2(src, dst topology.NodeID) netsim.FiveTuple {
	return netsim.FiveTuple{SrcHost: src, DstHost: dst, SrcPort: 1, DstPort: 2, Protocol: 6}
}

func TestControllerOnLeafSpine(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts := topology.LeafSpine(3, 3, 3, topology.Gbps)
	net := netsim.New(eng, g)
	c := NewController(eng, net, 0)
	// Default pipeline must route across the spine for any host pair.
	for i := 0; i < len(hosts); i += 2 {
		for j := 1; j < len(hosts); j += 3 {
			if i == j {
				continue
			}
			p, err := c.Resolve(tup2(hosts[i], hosts[j]))
			if err != nil {
				t.Fatalf("%d->%d: %v", i, j, err)
			}
			if err := p.Valid(g); err != nil {
				t.Fatalf("invalid: %v", err)
			}
		}
	}
}

func TestFlowModAccounting(t *testing.T) {
	eng, _, c, hosts, _ := tb()
	base := c.ControlBytes // session setup already counted
	if base <= 0 {
		t.Fatal("no session-setup control traffic")
	}
	p := c.g.KShortestPaths(hosts[0], hosts[5], 2)[0]
	c.InstallPath(HostPair(hosts[0], hosts[5]), p, 100, 1, nil)
	eng.Run()
	if c.FlowModsSent != 2 {
		t.Fatalf("FlowModsSent = %d, want 2 (one per switch)", c.FlowModsSent)
	}
	// OF1.0 flow_mod with one output action is 80 bytes.
	if got := c.ControlBytes - base; got != 160 {
		t.Fatalf("control bytes = %v, want 160", got)
	}
}

func TestInstallOverManagementNetwork(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	c := NewController(eng, net, 0)
	mn := mgmtnet.New(eng, mgmtnet.Config{})
	c.SetManagementNetwork(mn, topology.NodeID(-1))
	p := g.KShortestPaths(hosts[0], hosts[5], 2)[0]
	var doneAt sim.Time
	c.InstallPath(HostPair(hosts[0], hosts[5]), p, 100, 1, func(err error) {
		if err != nil {
			t.Errorf("install: %v", err)
		}
		doneAt = eng.Now()
	})
	eng.Run()
	if mn.Messages != 2 {
		t.Fatalf("mgmt messages = %d, want 2", mn.Messages)
	}
	// 80B at 100 Mbps = 6.4 µs tx + 0.5 ms prop, serialized x2, plus the
	// 4 ms install each (concurrent across switches after delivery).
	// Bound it loosely: > 4 ms, < 10 ms.
	if doneAt < 0.004 || doneAt > 0.010 {
		t.Fatalf("install completed at %v", doneAt)
	}
	// Rules actually landed.
	if c.RulesInstalled != 2 {
		t.Fatalf("rules = %d", c.RulesInstalled)
	}
}

func TestEvictOldestPolicy(t *testing.T) {
	s := NewSwitch(0, 2)
	s.Eviction = EvictOldest
	s.Install(FlowRule{Match: HostPair(1, 2), Out: 1, Priority: 5, Cookie: 1})
	s.Install(FlowRule{Match: HostPair(1, 3), Out: 1, Priority: 9, Cookie: 2})
	// Table full: the priority-5 rule is evicted, not the install failed.
	if err := s.Install(FlowRule{Match: HostPair(1, 4), Out: 1, Priority: 7, Cookie: 3}); err != nil {
		t.Fatalf("eviction policy failed install: %v", err)
	}
	if s.RuleCount() != 2 || s.Evictions != 1 {
		t.Fatalf("rules=%d evictions=%d", s.RuleCount(), s.Evictions)
	}
	// The survivor set is cookies {2, 3}.
	seen := map[uint64]bool{}
	for _, r := range s.Rules() {
		seen[r.Cookie] = true
	}
	if !seen[2] || !seen[3] || seen[1] {
		t.Fatalf("wrong survivors: %v", seen)
	}
	// Ties evict the oldest.
	s.Install(FlowRule{Match: HostPair(1, 5), Out: 1, Priority: 7, Cookie: 4})
	seen = map[uint64]bool{}
	for _, r := range s.Rules() {
		seen[r.Cookie] = true
	}
	if seen[3] && !seen[4] {
		t.Fatalf("tie eviction kept the older rule: %v", seen)
	}
}

func TestRejectRemainsDefault(t *testing.T) {
	s := NewSwitch(0, 1)
	s.Install(FlowRule{Match: HostPair(1, 2), Out: 1})
	if err := s.Install(FlowRule{Match: HostPair(1, 3), Out: 1}); err != ErrTableFull {
		t.Fatalf("default policy err = %v", err)
	}
	if s.Evictions != 0 {
		t.Fatal("default policy evicted")
	}
}

// Property: once a host-pair rule set is installed, every port combination
// resolves onto exactly the installed path; after removal, resolution still
// succeeds (default pipeline).
func TestPropertyInstalledPathAuthority(t *testing.T) {
	f := func(si, di uint8, pick bool, sp, dp uint16) bool {
		eng := sim.NewEngine()
		g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
		net := netsim.New(eng, g)
		c := NewController(eng, net, 0)
		src := hosts[int(si)%5]
		dst := hosts[5+int(di)%5]
		paths := g.KShortestPaths(src, dst, 2)
		want := paths[0]
		if pick && len(paths) > 1 {
			want = paths[1]
		}
		c.InstallPath(HostPair(src, dst), want, 100, 1, nil)
		eng.Run()
		got, err := c.Resolve(tup(src, dst, sp, dp))
		if err != nil || !got.Equal(want) {
			return false
		}
		c.RemovePath(1)
		after, err := c.Resolve(tup(src, dst, sp, dp))
		return err == nil && after.Valid(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
