// Package openflow models the software-defined networking substrate Pythia
// programs: per-switch flow tables with wildcard-capable matches, a central
// controller that installs forwarding rules with realistic per-rule latency
// (the paper cites 3–5 ms per installed flow on contemporary hardware), a
// periodic link-load update service, and topology-change notification —
// the services Pythia's OpenDaylight plugin consumes.
package openflow

import (
	"fmt"

	"pythia/internal/netsim"
	"pythia/internal/topology"
)

// Wildcard marks a match field as "any".
const Wildcard = -1

// Match is a wildcard-capable predicate over flow five-tuples. Pythia's
// rules match on host pairs only (ports wildcarded), because a shuffle
// flow's TCP destination port is assigned at socket bind time and cannot be
// known at prediction time.
type Match struct {
	SrcHost  topology.NodeID // Wildcard or node ID
	DstHost  topology.NodeID
	SrcPort  int32 // Wildcard or 0..65535
	DstPort  int32
	Protocol int16 // Wildcard or 0..255
	// SrcRack/DstRack model IP-prefix rules that aggregate whole racks or
	// PODs — the forwarding-state-conserving policy the paper proposes
	// for large-scale SDN deployments (§IV). Wildcard disables them.
	// Evaluating them requires rack knowledge, so they only take effect
	// on switches constructed with a rack resolver.
	SrcRack int
	DstRack int
}

// HostPair returns the aggregation match Pythia installs: exact on source
// and destination server, wildcard elsewhere.
func HostPair(src, dst topology.NodeID) Match {
	return Match{SrcHost: src, DstHost: dst, SrcPort: Wildcard, DstPort: Wildcard,
		Protocol: Wildcard, SrcRack: Wildcard, DstRack: Wildcard}
}

// RackPair returns the coarse aggregation match: any flow from a server in
// srcRack to a server in dstRack.
func RackPair(srcRack, dstRack int) Match {
	return Match{SrcHost: Wildcard, DstHost: Wildcard, SrcPort: Wildcard, DstPort: Wildcard,
		Protocol: Wildcard, SrcRack: srcRack, DstRack: dstRack}
}

// Exact returns a five-tuple exact match (what classical fine-grained
// OpenFlow rules would use, were ports knowable).
func Exact(t netsim.FiveTuple) Match {
	return Match{
		SrcHost:  t.SrcHost,
		DstHost:  t.DstHost,
		SrcPort:  int32(t.SrcPort),
		DstPort:  int32(t.DstPort),
		Protocol: int16(t.Protocol),
		SrcRack:  Wildcard,
		DstRack:  Wildcard,
	}
}

// MatchesWithRacks reports whether the tuple satisfies every non-wildcard
// field, resolving rack fields through rackOf (may be nil when no rack
// fields are set).
func (m Match) MatchesWithRacks(t netsim.FiveTuple, rackOf func(topology.NodeID) int) bool {
	if !m.Matches(t) {
		return false
	}
	if m.SrcRack != Wildcard {
		if rackOf == nil || rackOf(t.SrcHost) != m.SrcRack {
			return false
		}
	}
	if m.DstRack != Wildcard {
		if rackOf == nil || rackOf(t.DstHost) != m.DstRack {
			return false
		}
	}
	return true
}

// Matches reports whether the tuple satisfies every non-wildcard
// non-rack field.
func (m Match) Matches(t netsim.FiveTuple) bool {
	if m.SrcHost != Wildcard && m.SrcHost != t.SrcHost {
		return false
	}
	if m.DstHost != Wildcard && m.DstHost != t.DstHost {
		return false
	}
	if m.SrcPort != Wildcard && m.SrcPort != int32(t.SrcPort) {
		return false
	}
	if m.DstPort != Wildcard && m.DstPort != int32(t.DstPort) {
		return false
	}
	if m.Protocol != Wildcard && m.Protocol != int16(t.Protocol) {
		return false
	}
	return true
}

// Specificity counts non-wildcard fields; more specific rules win ties at
// equal priority. Rack fields count as half a host field each (a prefix is
// coarser than an exact address).
func (m Match) Specificity() int {
	n := 0
	if m.SrcHost != Wildcard {
		n += 2
	}
	if m.DstHost != Wildcard {
		n += 2
	}
	if m.SrcPort != Wildcard {
		n += 2
	}
	if m.DstPort != Wildcard {
		n += 2
	}
	if m.Protocol != Wildcard {
		n += 2
	}
	if m.SrcRack != Wildcard {
		n++
	}
	if m.DstRack != Wildcard {
		n++
	}
	return n
}

func (m Match) String() string {
	f := func(v int64) string {
		if v == Wildcard {
			return "*"
		}
		return fmt.Sprintf("%d", v)
	}
	s := fmt.Sprintf("src=%s dst=%s sport=%s dport=%s proto=%s",
		f(int64(m.SrcHost)), f(int64(m.DstHost)), f(int64(m.SrcPort)), f(int64(m.DstPort)), f(int64(m.Protocol)))
	if m.SrcRack != Wildcard || m.DstRack != Wildcard {
		s += fmt.Sprintf(" srack=%s drack=%s", f(int64(m.SrcRack)), f(int64(m.DstRack)))
	}
	return s
}
