package openflow

import (
	"fmt"
	"strings"
	"testing"

	"pythia/internal/mgmtnet"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// A pair of rules that bounce a tuple between the two ToR switches must be
// detected as a forwarding loop after exactly 4×N hops — the guard used to
// be off by one and allowed an extra traversal.
func TestResolveLoopGuardDetectsRuleLoop(t *testing.T) {
	_, _, c, hosts, trunks := tb()
	g := c.g
	rev, ok := g.Reverse(trunks[0])
	if !ok {
		t.Fatal("trunk has no reverse link")
	}
	s0, s1 := g.Link(trunks[0]).From, g.Link(trunks[0]).To
	m := HostPair(hosts[0], hosts[5])
	if err := c.Switch(s0).Install(FlowRule{Match: m, Out: trunks[0], Priority: 10, Cookie: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Switch(s1).Install(FlowRule{Match: m, Out: rev, Priority: 10, Cookie: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Resolve(tup(hosts[0], hosts[5], 7, 7))
	if err == nil {
		t.Fatal("looping rule set resolved to a path")
	}
	want := fmt.Sprintf("after %d hops", 4*g.NumNodes())
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("loop guard fired at the wrong hop count: got %q, want it to contain %q",
			err.Error(), want)
	}
}

// A zero-step install (e.g. a same-host path that needs no rules) must still
// queue its acknowledgement behind the controller's other management-port
// traffic when an explicit management network is configured, instead of
// bypassing it through the fixed built-in pipeline delay.
func TestNoopInstallAckRidesManagementNetwork(t *testing.T) {
	eng, _, c, hosts, _ := tb()
	mn := mgmtnet.New(eng, mgmtnet.Config{})
	ctrl := topology.NodeID(-1)
	c.SetManagementNetwork(mn, ctrl)
	// Occupy the controller's management port: 1.25 MB at the default
	// 100 Mbps serializes for 100 ms.
	mn.Send(ctrl, 1.25e6, func() {})
	ackAt := sim.Time(-1)
	c.InstallPath(HostPair(hosts[0], hosts[0]),
		topology.Path{Src: hosts[0], Dst: hosts[0]}, 10, 1,
		func(err error) {
			if err != nil {
				t.Errorf("no-op install failed: %v", err)
			}
			ackAt = eng.Now()
		})
	eng.Run()
	if ackAt < 0 {
		t.Fatal("no-op install never acknowledged")
	}
	if float64(ackAt) <= 0.1 {
		t.Fatalf("no-op ack at t=%vs bypassed the busy management port (port free at t=0.1s)", float64(ackAt))
	}
}
