package netflow

import (
	"math"
	"testing"

	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

func rig() (*sim.Engine, *netsim.Network, []topology.NodeID, *Collector) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	coll := NewCollector(eng, net, hosts, 0)
	return eng, net, hosts, coll
}

func tup(src, dst topology.NodeID, sp, dp uint16) netsim.FiveTuple {
	return netsim.FiveTuple{SrcHost: src, DstHost: dst, SrcPort: sp, DstPort: dp, Protocol: 6}
}

func TestCollectorSamplesCumulativeCurve(t *testing.T) {
	eng, net, hosts, coll := rig()
	g := net.Graph()
	p := g.KShortestPaths(hosts[0], hosts[5], 2)[0]
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, p, 8e8, 0, 0, 0, nil) // 100 MB, ~0.8s
	eng.At(2, func() {})                                                               // keep sim alive past flow end
	eng.Run()
	s := coll.Series(hosts[0])
	if len(s) < 5 {
		t.Fatalf("only %d samples", len(s))
	}
	// Monotone nondecreasing.
	for i := 1; i < len(s); i++ {
		if s[i].Bytes < s[i-1].Bytes {
			t.Fatal("cumulative curve decreased")
		}
	}
	final := coll.FinalBytes(hosts[0])
	if math.Abs(final-1e8) > 1e3 {
		t.Fatalf("final bytes = %v, want 1e8", final)
	}
}

func TestBytesAtStepInterpolation(t *testing.T) {
	eng, net, hosts, coll := rig()
	g := net.Graph()
	p := g.KShortestPaths(hosts[0], hosts[5], 2)[0]
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, p, 8e8, 0, 0, 0, nil)
	eng.At(2, func() {})
	eng.Run()
	if got := coll.BytesAt(hosts[0], -1); got != 0 {
		t.Fatalf("BytesAt before start = %v", got)
	}
	half := coll.BytesAt(hosts[0], 0.4)
	if half <= 0 || half >= 1e8 {
		t.Fatalf("mid-flow bytes = %v", half)
	}
	if got := coll.BytesAt(hosts[0], 100); math.Abs(got-1e8) > 1e3 {
		t.Fatalf("BytesAt after end = %v", got)
	}
}

func TestTimeToReach(t *testing.T) {
	eng, net, hosts, coll := rig()
	g := net.Graph()
	p := g.KShortestPaths(hosts[0], hosts[5], 2)[0]
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, p, 8e8, 0, 0, 0, nil)
	eng.At(2, func() {})
	eng.Run()
	at, ok := coll.TimeToReach(hosts[0], 5e7)
	if !ok {
		t.Fatal("never reached half volume")
	}
	// 50 MB at 125 MB/s ≈ 0.4 s (sampled at 100 ms grid).
	if float64(at) < 0.3 || float64(at) > 0.6 {
		t.Fatalf("reached 50MB at %v", at)
	}
	if _, ok := coll.TimeToReach(hosts[0], 1e12); ok {
		t.Fatal("claimed to reach impossible volume")
	}
}

func TestIdleHostFlatCurve(t *testing.T) {
	eng, _, hosts, coll := rig()
	eng.At(1, func() {})
	eng.Run()
	if coll.FinalBytes(hosts[3]) != 0 {
		t.Fatal("idle host shows traffic")
	}
}

func TestStopHaltsSampling(t *testing.T) {
	eng, _, hosts, coll := rig()
	eng.At(0.5, coll.Stop)
	eng.At(5, func() {})
	eng.Run()
	n := len(coll.Series(hosts[0]))
	if n > 8 {
		t.Fatalf("sampling continued after Stop: %d samples", n)
	}
}

func TestPredictionCurve(t *testing.T) {
	var pc PredictionCurve
	pc.Add(1, 100)
	pc.Add(2, 50)
	if pc.Total() != 150 {
		t.Fatalf("total = %v", pc.Total())
	}
	pts := pc.Points()
	if len(pts) != 2 || pts[1].Bytes != 150 {
		t.Fatalf("points = %v", pts)
	}
	at, ok := pc.TimeToReach(120)
	if !ok || at != 2 {
		t.Fatalf("TimeToReach(120) = %v, %v", at, ok)
	}
	if _, ok := pc.TimeToReach(200); ok {
		t.Fatal("reached beyond total")
	}
}

func TestLeadStatsPredictionEarlyAndOverestimating(t *testing.T) {
	eng, net, hosts, coll := rig()
	g := net.Graph()
	p := g.KShortestPaths(hosts[0], hosts[5], 2)[0]

	// Prediction: full volume known at t=0.5, overestimated by 5%.
	var pc PredictionCurve
	pc.Add(0.5, 1.05e8)
	// Actual: flow starts at t=3, 100 MB.
	eng.At(3, func() {
		net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, p, 8e8, 0, 0, 0, nil)
	})
	eng.At(6, func() {})
	eng.Run()

	min, mean, over, ok := LeadStats(&pc, coll, hosts[0], 10)
	if !ok {
		t.Fatal("LeadStats failed")
	}
	if min <= 0 {
		t.Fatalf("min lead = %v, want positive (prediction was early)", min)
	}
	if mean < min {
		t.Fatalf("mean %v < min %v", mean, min)
	}
	if math.Abs(over-0.05) > 0.01 {
		t.Fatalf("overestimate = %v, want ~0.05", over)
	}
}

func TestLeadStatsDegenerate(t *testing.T) {
	eng, _, hosts, coll := rig()
	eng.At(1, func() {})
	eng.Run()
	var pc PredictionCurve
	if _, _, _, ok := LeadStats(&pc, coll, hosts[0], 10); ok {
		t.Fatal("LeadStats succeeded with no data")
	}
}

func TestLinkProbeSamples(t *testing.T) {
	eng, net, hosts, _ := rig()
	g := net.Graph()
	p := g.KShortestPaths(hosts[0], hosts[5], 2)[0]
	trunk := p.Links[1]
	probe := NewLinkProbe(eng, net, []topology.LinkID{trunk}, 0)
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, p, 8e8, 0, 0, 0, nil)
	eng.At(2, func() {})
	eng.Run()
	s := probe.Series(trunk)
	if len(s) < 10 {
		t.Fatalf("samples = %d", len(s))
	}
	// Utilization is 1.0 while the flow runs (~0.8s of 2s window).
	if m := probe.MeanUtilization(trunk); m < 0.2 || m > 0.7 {
		t.Fatalf("mean utilization = %v", m)
	}
	if peak := probe.PeakShuffleBps(trunk); peak < 0.99e9 {
		t.Fatalf("peak shuffle rate = %v", peak)
	}
}

func TestLinkProbeStop(t *testing.T) {
	eng, net, _, _ := rig()
	g := net.Graph()
	links := []topology.LinkID{g.Links()[0].ID}
	probe := NewLinkProbe(eng, net, links, 0)
	eng.At(0.25, probe.Stop)
	eng.At(3, func() {})
	eng.Run()
	if n := len(probe.Series(links[0])); n > 5 {
		t.Fatalf("probe kept sampling after Stop: %d", n)
	}
	if probe.MeanUtilization(links[0]) != 0 {
		t.Fatal("idle link nonzero utilization")
	}
	if probe.PeakShuffleBps(links[0]) != 0 {
		t.Fatal("idle link nonzero shuffle rate")
	}
}
