// Package netflow reproduces the measurement methodology of the paper's
// Fig. 5: NetFlow probes on every server plus a central collector, sampling
// the cumulative shuffle traffic each Hadoop server sources onto the network
// (the paper filtered on the tasktracker HTTP port and synchronized clocks
// to 100 ms). Comparing these measured curves against Pythia's predicted
// curves yields the prediction promptness (lead time) and accuracy
// (over-estimation factor) results.
package netflow

import (
	"sort"

	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Point is one sample of a cumulative traffic curve.
type Point struct {
	T sim.Time
	// Bytes is cumulative wire bytes since collector start.
	Bytes float64
}

// Collector polls per-host TX counters at a fixed interval.
type Collector struct {
	eng      *sim.Engine
	net      *netsim.Network
	hosts    []topology.NodeID
	interval sim.Duration
	series   map[topology.NodeID][]Point
	stopped  bool
}

// DefaultInterval matches the paper's 100 ms clock-synchronization accuracy.
const DefaultInterval = 100 * sim.Millisecond

// NewCollector starts sampling the given hosts. interval ≤ 0 takes the
// default.
func NewCollector(eng *sim.Engine, net *netsim.Network, hosts []topology.NodeID, interval sim.Duration) *Collector {
	if interval <= 0 {
		interval = DefaultInterval
	}
	c := &Collector{
		eng:      eng,
		net:      net,
		hosts:    append([]topology.NodeID(nil), hosts...),
		interval: interval,
		series:   make(map[topology.NodeID][]Point),
	}
	c.sample()
	return c
}

func (c *Collector) sample() {
	if c.stopped {
		return
	}
	now := c.eng.Now()
	for _, h := range c.hosts {
		bits := c.net.HostTxBits(h)
		c.series[h] = append(c.series[h], Point{T: now, Bytes: bits / 8})
	}
	c.eng.AfterDaemon(c.interval, c.sample)
}

// Stop halts sampling.
func (c *Collector) Stop() { c.stopped = true }

// Series returns the sampled cumulative curve for a host.
func (c *Collector) Series(host topology.NodeID) []Point {
	return append([]Point(nil), c.series[host]...)
}

// BytesAt returns the measured cumulative bytes at time t (step
// interpolation over samples; 0 before the first sample, last value after
// the final one).
func (c *Collector) BytesAt(host topology.NodeID, t sim.Time) float64 {
	s := c.series[host]
	if len(s) == 0 || t < s[0].T {
		return 0
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].T > t })
	return s[i-1].Bytes
}

// FinalBytes returns the last measured cumulative value for a host.
func (c *Collector) FinalBytes(host topology.NodeID) float64 {
	s := c.series[host]
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].Bytes
}

// TimeToReach returns the first sampled time the host's cumulative curve
// reached the given byte count, or false if it never did. This is the
// primitive behind the Fig. 5 lead-time computation: for a volume level V,
// lead(V) = measuredTimeToReach(V) - predictedTimeToReach(V).
func (c *Collector) TimeToReach(host topology.NodeID, bytes float64) (sim.Time, bool) {
	for _, p := range c.series[host] {
		if p.Bytes >= bytes {
			return p.T, true
		}
	}
	return 0, false
}

// UtilizationSample is one link-load observation.
type UtilizationSample struct {
	T sim.Time
	// Utilization is the fraction of capacity in use (background +
	// flows).
	Utilization float64
	// ShuffleBps is the shuffle-flow portion of the load.
	ShuffleBps float64
}

// LinkProbe periodically samples the utilization of selected links —
// the measurement behind Fig. 1b's port-occupancy annotations, extended
// over time.
type LinkProbe struct {
	eng      *sim.Engine
	net      *netsim.Network
	links    []topology.LinkID
	interval sim.Duration
	series   map[topology.LinkID][]UtilizationSample
	stopped  bool
}

// NewLinkProbe starts sampling the given links. interval ≤ 0 takes the
// collector default (100 ms).
func NewLinkProbe(eng *sim.Engine, net *netsim.Network, links []topology.LinkID, interval sim.Duration) *LinkProbe {
	if interval <= 0 {
		interval = DefaultInterval
	}
	p := &LinkProbe{
		eng:      eng,
		net:      net,
		links:    append([]topology.LinkID(nil), links...),
		interval: interval,
		series:   make(map[topology.LinkID][]UtilizationSample),
	}
	p.sample()
	return p
}

func (p *LinkProbe) sample() {
	if p.stopped {
		return
	}
	now := p.eng.Now()
	for _, l := range p.links {
		p.series[l] = append(p.series[l], UtilizationSample{
			T:           now,
			Utilization: p.net.Utilization(l),
			ShuffleBps:  p.net.ShuffleRateOn(l),
		})
	}
	p.eng.AfterDaemon(p.interval, p.sample)
}

// Stop halts sampling.
func (p *LinkProbe) Stop() { p.stopped = true }

// Series returns the samples for a link.
func (p *LinkProbe) Series(l topology.LinkID) []UtilizationSample {
	return append([]UtilizationSample(nil), p.series[l]...)
}

// MeanUtilization averages a link's sampled utilization.
func (p *LinkProbe) MeanUtilization(l topology.LinkID) float64 {
	s := p.series[l]
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, u := range s {
		sum += u.Utilization
	}
	return sum / float64(len(s))
}

// PeakShuffleBps returns the maximum sampled shuffle rate on a link.
func (p *LinkProbe) PeakShuffleBps(l topology.LinkID) float64 {
	peak := 0.0
	for _, u := range p.series[l] {
		if u.ShuffleBps > peak {
			peak = u.ShuffleBps
		}
	}
	return peak
}

// PredictionCurve is the collector-side cumulative predicted-bytes curve for
// one source host: each intent adds its predicted volume at its arrival
// time. bench wires a recording sink in front of Pythia to build these.
type PredictionCurve struct {
	points []Point
	total  float64
}

// Add appends predicted bytes at time t (times must be nondecreasing, as
// intents arrive in order).
func (p *PredictionCurve) Add(t sim.Time, bytes float64) {
	p.total += bytes
	p.points = append(p.points, Point{T: t, Bytes: p.total})
}

// Total returns the cumulative predicted volume.
func (p *PredictionCurve) Total() float64 { return p.total }

// Points returns the curve.
func (p *PredictionCurve) Points() []Point { return append([]Point(nil), p.points...) }

// TimeToReach returns when the predicted curve reached the byte level.
func (p *PredictionCurve) TimeToReach(bytes float64) (sim.Time, bool) {
	for _, pt := range p.points {
		if pt.Bytes >= bytes {
			return pt.T, true
		}
	}
	return 0, false
}

// LeadStats compares a prediction curve against the measured curve for one
// host at n evenly spaced volume levels, returning the minimum and mean lead
// (measured time minus predicted time; positive = prediction was early) and
// the final over-estimation ratio predicted/measured - 1.
func LeadStats(pred *PredictionCurve, coll *Collector, host topology.NodeID, n int) (minLead, meanLead sim.Duration, overestimate float64, ok bool) {
	measured := coll.FinalBytes(host)
	if measured <= 0 || pred.Total() <= 0 || n <= 0 {
		return 0, 0, 0, false
	}
	var sum float64
	count := 0
	min := sim.Duration(0)
	first := true
	for i := 1; i <= n; i++ {
		level := measured * float64(i) / float64(n+1)
		mt, ok1 := coll.TimeToReach(host, level)
		pt, ok2 := pred.TimeToReach(level)
		if !ok1 || !ok2 {
			continue
		}
		lead := mt.Sub(pt)
		if first || lead < min {
			min = lead
			first = false
		}
		sum += float64(lead)
		count++
	}
	if count == 0 {
		return 0, 0, 0, false
	}
	return min, sim.Duration(sum / float64(count)), pred.Total()/measured - 1, true
}
