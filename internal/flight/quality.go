package flight

import (
	"fmt"
	"math"
	"sort"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Quality scores how well the prediction plane raced the shuffle, computed
// from a flight-recorder event log. Lead time is the paper's win condition:
// how long before a shuffle flow started on the fabric was its covering
// aggregate's rule install already complete. Byte error exercises
// WithPredictionError: how far the booked (predicted) wire bytes were from
// the bytes the flow actually moved.
type Quality struct {
	// Volume counters.
	Intents     int `json:"intents"`      // intents accepted by the collector (ok + late)
	Bookings    int `json:"bookings"`     // per-(job,map,reduce) demand bookings
	Placements  int `json:"placements"`   // aggregate placement decisions
	Installs    int `json:"installs"`     // successful rule installs
	FabricFlows int `json:"fabric_flows"` // shuffle flows that crossed the fabric

	// Prediction lead time: flow-admitted minus the last successful
	// install-done for the flow's (src,dst) aggregate. Only covered flows —
	// flows with a booking anywhere in the log — are classified: a covered
	// flow whose aggregate had no successful install by admit time lost the
	// race and counts as late (excluded from the percentiles). Uncovered
	// flows (intra-rack, non-Pythia schedulers) are out of scope.
	CoveredFlows int     `json:"covered_flows"`
	LeadSamples  int     `json:"lead_samples"`
	LeadP50Sec   float64 `json:"lead_p50_sec"`
	LeadP95Sec   float64 `json:"lead_p95_sec"`
	LeadMaxSec   float64 `json:"lead_max_sec"`
	LateFraction float64 `json:"late_fraction"` // late flows / covered flows

	// Prediction byte error: (predicted - actual) / actual per completed
	// flow that had a booking.
	ByteSamples        int     `json:"byte_samples"`
	ByteErrMeanFrac    float64 `json:"byte_err_mean_frac"`     // signed mean
	ByteErrMeanAbsFrac float64 `json:"byte_err_mean_abs_frac"` // mean |err|
	ByteErrP95AbsFrac  float64 `json:"byte_err_p95_abs_frac"`  // p95 |err|
}

type qualitySamples struct {
	q        Quality
	leads    []float64 // seconds, event order
	byteErrs []float64 // signed fractions, event order
	late     int
}

// collectSamples gathers the raw lead-time and byte-error samples plus the
// volume counters shared by ComputeQuality and BuildMetrics. Two passes:
// the first learns which flows were ever booked (covered by a prediction),
// the second classifies admissions against the install timeline.
func collectSamples(events []Event) qualitySamples {
	var s qualitySamples
	type pair struct{ src, dst topology.NodeID }
	type fkey struct{ job, mapID, reduce int }
	predicted := map[fkey]float64{} // last booked wire bytes per flow
	for i := range events {
		ev := &events[i]
		if ev.Kind == BookingMade {
			predicted[fkey{ev.Job, ev.Map, ev.Reduce}] = ev.Bytes
		}
	}
	lastInstall := map[pair]sim.Time{} // last successful install per aggregate
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case IntentReceived:
			if ev.Disposition != DispDup {
				s.q.Intents++
			}
		case BookingMade:
			s.q.Bookings++
		case Placement:
			s.q.Placements++
		case InstallDone:
			if ev.Disposition == DispOK {
				s.q.Installs++
				lastInstall[pair{ev.Src, ev.Dst}] = ev.T
			}
		case FlowAdmitted:
			s.q.FabricFlows++
			if _, covered := predicted[fkey{ev.Job, ev.Map, ev.Reduce}]; !covered {
				break
			}
			s.q.CoveredFlows++
			if t, ok := lastInstall[pair{ev.Src, ev.Dst}]; ok {
				s.leads = append(s.leads, float64(ev.T.Sub(t)))
			} else {
				s.late++
			}
		case FlowCompleted:
			k := fkey{ev.Job, ev.Map, ev.Reduce}
			if pred, ok := predicted[k]; ok && ev.Bytes > 0 {
				s.byteErrs = append(s.byteErrs, (pred-ev.Bytes)/ev.Bytes)
			}
		}
	}
	return s
}

// percentile returns the p-th percentile (0 < p <= 1) of sorted ascending
// samples using the nearest-rank method; 0 for an empty slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ComputeQuality scores an event log. It is a pure function of the log, so
// same-seed runs produce identical Quality values.
func ComputeQuality(events []Event) Quality {
	return qualityFromSamples(collectSamples(events))
}

// FlowRace is one covered flow's admission against the rule-install race:
// T is the fabric admission time, Late reports whether the flow's
// aggregate had no successful install by then (the prediction lost).
type FlowRace struct {
	T    sim.Time
	Late bool
}

// FlowRaces extracts the per-flow race outcomes in admission order, using
// the same covered-flow classification as ComputeQuality. The steady-state
// harness bins these by measurement window to correlate prediction
// lateness with tail-latency windows.
func FlowRaces(events []Event) []FlowRace {
	type pair struct{ src, dst topology.NodeID }
	type fkey struct{ job, mapID, reduce int }
	covered := map[fkey]bool{}
	for i := range events {
		ev := &events[i]
		if ev.Kind == BookingMade {
			covered[fkey{ev.Job, ev.Map, ev.Reduce}] = true
		}
	}
	var out []FlowRace
	lastInstall := map[pair]sim.Time{}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case InstallDone:
			if ev.Disposition == DispOK {
				lastInstall[pair{ev.Src, ev.Dst}] = ev.T
			}
		case FlowAdmitted:
			if !covered[fkey{ev.Job, ev.Map, ev.Reduce}] {
				continue
			}
			_, won := lastInstall[pair{ev.Src, ev.Dst}]
			out = append(out, FlowRace{T: ev.T, Late: !won})
		}
	}
	return out
}

func qualityFromSamples(s qualitySamples) Quality {
	q := s.q
	q.LeadSamples = len(s.leads)
	leads := append([]float64(nil), s.leads...)
	sort.Float64s(leads)
	q.LeadP50Sec = percentile(leads, 0.50)
	q.LeadP95Sec = percentile(leads, 0.95)
	if n := len(leads); n > 0 {
		q.LeadMaxSec = leads[n-1]
	}
	if q.CoveredFlows > 0 {
		q.LateFraction = float64(s.late) / float64(q.CoveredFlows)
	}
	q.ByteSamples = len(s.byteErrs)
	if n := len(s.byteErrs); n > 0 {
		var sum, sumAbs float64
		abs := make([]float64, n)
		for i, e := range s.byteErrs {
			sum += e
			sumAbs += math.Abs(e)
			abs[i] = math.Abs(e)
		}
		sort.Float64s(abs)
		q.ByteErrMeanFrac = sum / float64(n)
		q.ByteErrMeanAbsFrac = sumAbs / float64(n)
		q.ByteErrP95AbsFrac = percentile(abs, 0.95)
	}
	return q
}

// Bucket edges for the standard histograms, in seconds (latencies) or
// fractions (byte error). Fixed at compile time: no run ever chooses edges
// from data, so snapshots are comparable across runs.
var (
	monitorLatencyEdges = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
	mgmtQueueEdges      = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5}
	installRTTEdges     = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}
	leadTimeEdges       = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
	byteErrEdges        = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}
)

// BuildMetrics derives the standard deterministic metrics registry from an
// event log: per-kind event counters, per-plane latency histograms, and the
// prediction-quality scores (lead-time histogram, late fraction, byte
// error). All event kinds are pre-registered so healthy runs still expose
// zero-valued series.
func BuildMetrics(events []Event) *Registry {
	r := NewRegistry()
	allKinds := []Kind{
		SpillDetected, IndexDecoded, IntentEnqueued, IntentDropped,
		MgmtSent, MgmtDropped, MgmtDuplicated, MgmtDeferred,
		IntentReceived, ReducerUpSeen, BookingMade, BookingExpired, IntentExpired,
		Placement, Degraded, Reconciled,
		InstallStart, InstallDone, FlowModRetry, FlowModDropped,
		FlowAdmitted, FlowCompleted,
	}
	kindCounters := make(map[Kind]*Counter, len(allKinds))
	for _, k := range allKinds {
		kindCounters[k] = r.Counter(
			fmt.Sprintf(`pythia_flight_events_total{kind="%s"}`, k),
			"Flight-recorder events by kind.")
	}
	monitorLat := r.Histogram("pythia_monitor_latency_seconds",
		"Spill detected to intent enqueued (fs-notify + index decode).", monitorLatencyEdges)
	mgmtQueue := r.Histogram("pythia_mgmt_queue_delay_seconds",
		"Per-message queueing delay on the management port.", mgmtQueueEdges)
	transit := r.Histogram("pythia_intent_transit_seconds",
		"Intent enqueued to first collector receipt.", installRTTEdges)
	installRTT := r.Histogram("pythia_install_rtt_seconds",
		"Rule-install round-trip time (successful installs).", installRTTEdges)
	leadHist := r.Histogram("pythia_lead_time_seconds",
		"Install-complete to flow-start lead time (won races only).", leadTimeEdges)
	byteErrHist := r.Histogram("pythia_byte_error_abs_fraction",
		"Absolute predicted-vs-actual byte error per completed flow.", byteErrEdges)

	type akey struct{ job, mapID, attempt int }
	spillAt := map[akey]sim.Time{}
	enqueuedAt := map[akey]sim.Time{}
	received := map[akey]bool{}
	for i := range events {
		ev := &events[i]
		if c, ok := kindCounters[ev.Kind]; ok {
			c.Inc()
		}
		k := akey{ev.Job, ev.Map, ev.Attempt}
		switch ev.Kind {
		case SpillDetected:
			if _, ok := spillAt[k]; !ok {
				spillAt[k] = ev.T
			}
		case IntentEnqueued:
			if t, ok := spillAt[k]; ok {
				monitorLat.Observe(float64(ev.T.Sub(t)))
			}
			if _, ok := enqueuedAt[k]; !ok {
				enqueuedAt[k] = ev.T
			}
		case IntentReceived:
			if t, ok := enqueuedAt[k]; ok && !received[k] {
				received[k] = true
				transit.Observe(float64(ev.T.Sub(t)))
			}
		case MgmtSent:
			mgmtQueue.Observe(ev.DelaySec)
		case InstallDone:
			if ev.Disposition == DispOK {
				installRTT.Observe(ev.DelaySec)
			}
		}
	}

	s := collectSamples(events)
	q := qualityFromSamples(s)
	for _, l := range s.leads {
		leadHist.Observe(l)
	}
	for _, e := range s.byteErrs {
		byteErrHist.Observe(math.Abs(e))
	}
	r.Gauge("pythia_late_prediction_fraction",
		"Fraction of covered shuffle flows admitted before their rule install completed.").Set(q.LateFraction)
	r.Gauge("pythia_fabric_flows",
		"Shuffle flows that crossed the fabric.").Set(float64(q.FabricFlows))
	r.Gauge("pythia_byte_error_mean_frac",
		"Signed mean predicted-vs-actual byte error fraction.").Set(q.ByteErrMeanFrac)
	return r
}

// VerifyChains checks that the log has no orphan spans: every event that
// has a causal parent in the taxonomy is preceded by that parent. Forward
// incompleteness is legal (a dropped message leaves an enqueue with no
// receipt), but an effect without its cause is a recorder bug. The booking →
// placement link assumes host-pair aggregation scope (the default); rack
// scope re-keys aggregates and is not verified here.
func VerifyChains(events []Event) error {
	type akey struct{ job, mapID, attempt int }
	type fkey struct{ job, mapID, reduce int }
	type pair struct{ src, dst topology.NodeID }
	spilled := map[akey]bool{}
	decoded := map[akey]bool{}
	enqueued := map[akey]bool{}
	receivedJM := map[[2]int]bool{}
	bookedPairs := map[pair]bool{}
	installStarted := map[uint64]bool{}
	admitted := map[fkey]bool{}
	for i := range events {
		ev := &events[i]
		ak := akey{ev.Job, ev.Map, ev.Attempt}
		orphan := func(parent Kind) error {
			return fmt.Errorf("flight: event %d %s at %s has no preceding %s (job=%d map=%d attempt=%d reduce=%d src=%d dst=%d cookie=%d)",
				i, ev.Kind, ev.T, parent, ev.Job, ev.Map, ev.Attempt, ev.Reduce, ev.Src, ev.Dst, ev.Cookie)
		}
		switch ev.Kind {
		case SpillDetected:
			spilled[ak] = true
		case IndexDecoded:
			if !spilled[ak] {
				return orphan(SpillDetected)
			}
			decoded[ak] = true
		case IntentEnqueued:
			if !decoded[ak] {
				return orphan(IndexDecoded)
			}
			enqueued[ak] = true
		case IntentReceived:
			if !enqueued[ak] {
				return orphan(IntentEnqueued)
			}
			receivedJM[[2]int{ev.Job, ev.Map}] = true
		case BookingMade:
			if !receivedJM[[2]int{ev.Job, ev.Map}] {
				return orphan(IntentReceived)
			}
			bookedPairs[pair{ev.Src, ev.Dst}] = true
		case Placement:
			if !bookedPairs[pair{ev.Src, ev.Dst}] {
				return orphan(BookingMade)
			}
		case InstallStart:
			installStarted[ev.Cookie] = true
		case InstallDone:
			if !installStarted[ev.Cookie] {
				return orphan(InstallStart)
			}
		case FlowAdmitted:
			admitted[fkey{ev.Job, ev.Map, ev.Reduce}] = true
		case FlowCompleted:
			if !admitted[fkey{ev.Job, ev.Map, ev.Reduce}] {
				return orphan(FlowAdmitted)
			}
		}
	}
	return nil
}
