package flight

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// LiveRegistry is the concurrency-safe sibling of Registry, built for the
// online serving plane: counters and gauges are single atomic words,
// histograms stripe their buckets across several small mutexes so concurrent
// request handlers rarely contend. The deterministic simulator keeps using
// Registry (single-threaded, bit-identical snapshots); the server uses
// LiveRegistry and renders by snapshotting into a plain Registry, so the
// exposition path — family grouping, escaping, golden conformance — is one
// shared implementation.
//
// Registration (Counter/Gauge/Histogram lookup by name) takes the registry
// mutex and may allocate; instrumented code must register once up front and
// hold the returned handles. The observation methods (Inc, Add, Set,
// Observe) are safe for concurrent use and allocation-free.
type LiveRegistry struct {
	mu         sync.Mutex
	counters   map[string]*LiveCounter
	gauges     map[string]*LiveGauge
	histograms map[string]*LiveHistogram
	help       map[string]string // keyed by base name (label suffix stripped)
	typ        map[string]string
}

// NewLiveRegistry returns an empty concurrent registry.
func NewLiveRegistry() *LiveRegistry {
	return &LiveRegistry{
		counters:   map[string]*LiveCounter{},
		gauges:     map[string]*LiveGauge{},
		histograms: map[string]*LiveHistogram{},
		help:       map[string]string{},
		typ:        map[string]string{},
	}
}

// LiveCounter is a monotonically increasing value updated with atomics.
// Values are float64 bits in a uint64 so Snapshot renders identically to the
// deterministic registry.
type LiveCounter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *LiveCounter) Inc() { c.Add(1) }

// Add adds d (must be non-negative; not enforced).
func (c *LiveCounter) Add(d float64) {
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current count.
func (c *LiveCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// LiveGauge is a value that can go up and down, updated with atomics.
type LiveGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *LiveGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to decrement).
func (g *LiveGauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *LiveGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histStripes is the histogram lock-stripe count. Eight stripes keep p99
// contention negligible at the serving plane's worker counts while the
// snapshot merge stays trivial.
const histStripes = 8

type histStripe struct {
	mu     sync.Mutex
	counts []uint64 // len(edges)+1; last is the +Inf bucket
	sum    float64
	count  uint64
	_      [24]byte // pad toward a cache line to curb false sharing
}

// LiveHistogram counts observations into fixed buckets with the same `le`
// semantics as Histogram, striping updates across histStripes mutexes.
// Observations land in a stripe chosen by a round-robin atomic — cheap,
// allocation-free, and uniform under load; the exposition snapshot merges
// all stripes.
type LiveHistogram struct {
	edges []float64 // ascending upper bounds, exclusive of +Inf
	next  atomic.Uint64
	strip [histStripes]histStripe
}

// Observe records v. Safe for concurrent use; allocation-free.
func (h *LiveHistogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.edges, v) // first i with edges[i] >= v
	s := &h.strip[h.next.Add(1)%histStripes]
	s.mu.Lock()
	s.counts[i]++
	s.sum += v
	s.count++
	s.mu.Unlock()
}

// Count returns the total number of observations across stripes.
func (h *LiveHistogram) Count() uint64 {
	var n uint64
	for i := range h.strip {
		s := &h.strip[i]
		s.mu.Lock()
		n += s.count
		s.mu.Unlock()
	}
	return n
}

func (r *LiveRegistry) register(name, help, typ string) {
	base := baseName(name)
	if _, ok := r.help[base]; !ok {
		r.help[base] = help
		r.typ[base] = typ
	} else if r.typ[base] != typ {
		panic("flight: metric " + base + " re-registered as " + typ + ", was " + r.typ[base])
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *LiveRegistry) Counter(name, help string) *LiveCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, help, "counter")
	c := &LiveCounter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *LiveRegistry) Gauge(name, help string) *LiveGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, help, "gauge")
	g := &LiveGauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given ascending bucket edges if needed; re-registration ignores the edges
// argument.
func (r *LiveRegistry) Histogram(name, help string, edges []float64) *LiveHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if !sort.Float64sAreSorted(edges) {
		panic("flight: histogram " + name + " edges not ascending")
	}
	r.register(name, help, "histogram")
	h := &LiveHistogram{edges: append([]float64(nil), edges...)}
	for i := range h.strip {
		h.strip[i].counts = make([]uint64, len(edges)+1)
	}
	r.histograms[name] = h
	return h
}

// Snapshot copies the live registry into a plain deterministic Registry:
// counters and gauges are read atomically, histogram stripes are merged
// under their mutexes. The result renders with Registry.PrometheusText, so
// live and simulated metrics share one exposition implementation. Each
// metric is internally consistent (a histogram's _count equals its bucket
// totals); cross-metric skew of in-flight updates is possible, as with any
// live scrape.
func (r *LiveRegistry) Snapshot() *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := NewRegistry()
	for name, c := range r.counters {
		out.Counter(name, r.help[baseName(name)]).Add(c.Value())
	}
	for name, g := range r.gauges {
		out.Gauge(name, r.help[baseName(name)]).Set(g.Value())
	}
	for name, h := range r.histograms {
		dst := out.Histogram(name, r.help[baseName(name)], h.edges)
		for i := range h.strip {
			s := &h.strip[i]
			s.mu.Lock()
			for j, n := range s.counts {
				dst.counts[j] += n
			}
			dst.sum += s.sum
			dst.count += s.count
			s.mu.Unlock()
		}
	}
	return out
}

// Merge copies every series of src into dst, summing counters and histogram
// buckets and overwriting gauges. It lets the serving plane combine its
// cumulative LiveRegistry snapshot with scrape-time polled series before one
// exposition render.
func Merge(dst, src *Registry) {
	for name, c := range src.counters {
		dst.Counter(name, src.help[baseName(name)]).Add(c.Value())
	}
	for name, g := range src.gauges {
		dst.Gauge(name, src.help[baseName(name)]).Set(g.Value())
	}
	for name, h := range src.histograms {
		d := dst.Histogram(name, src.help[baseName(name)], h.edges)
		for i, n := range h.counts {
			if i < len(d.counts) {
				d.counts[i] += n
			}
		}
		d.sum += h.sum
		d.count += h.count
	}
}
