package flight

import (
	"sync"

	"pythia/internal/sim"
)

// LiveRecorder is a bounded, concurrency-safe Sink for the online serving
// plane. Unlike Recorder — which grows without bound and trusts the
// simulator's single-threaded callback order — LiveRecorder keeps the most
// recent cap events in a ring and guards itself with a mutex, so a
// long-running service can leave span recording enabled without unbounded
// memory growth. Timestamps come from the now callback (the service's
// virtual clock); events recorded with a nonzero T keep it.
type LiveRecorder struct {
	mu      sync.Mutex
	now     func() sim.Time
	events  []Event
	start   int // ring read position, valid when len(events) == cap(events)
	dropped uint64
}

// NewLiveRecorder returns a recorder retaining the last capEvents events.
// now supplies the timestamp for events recorded with T == 0; it may be nil
// if producers always stamp T themselves.
func NewLiveRecorder(capEvents int, now func() sim.Time) *LiveRecorder {
	if capEvents < 1 {
		capEvents = 1
	}
	return &LiveRecorder{now: now, events: make([]Event, 0, capEvents)}
}

// Record appends ev, evicting the oldest event when the ring is full.
func (r *LiveRecorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if ev.T == 0 && r.now != nil {
		ev.T = r.now()
	}
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, ev)
	} else {
		r.events[r.start] = ev
		r.start = (r.start + 1) % len(r.events)
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (r *LiveRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Len reports how many events are currently retained.
func (r *LiveRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped reports how many events were evicted to stay within capacity.
func (r *LiveRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// JSONL serializes the retained events as JSON Lines, oldest first.
func (r *LiveRecorder) JSONL() []byte { return MarshalJSONL(r.Events()) }
