package flight

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Registry is a deterministic metrics registry: counters, gauges, and
// fixed-bucket histograms keyed by name. It never touches the wall clock
// and its text snapshot sorts every series by name, so two identical runs
// render byte-identical snapshots. Metric names follow Prometheus
// conventions and may carry a `{label="value"}` suffix; HELP/TYPE headers
// are emitted once per base name.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // keyed by base name (label suffix stripped)
	typ        map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
		typ:        map[string]string{},
	}
}

// Counter is a monotonically increasing value.
type Counter struct{ v float64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d (must be non-negative; not enforced).
func (c *Counter) Add(d float64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a value that can go up and down.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets with Prometheus `le`
// (less-or-equal) semantics: an observation lands in the first bucket whose
// upper edge is >= the value; values above the last edge land in the
// implicit +Inf bucket. NaN observations are ignored (they would poison the
// running sum and break determinism of comparisons).
type Histogram struct {
	edges  []float64 // ascending upper bounds, exclusive of +Inf
	counts []uint64  // len(edges)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.edges, v) // first i with edges[i] >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Buckets returns the bucket edges and per-bucket (non-cumulative) counts;
// the final count is the +Inf bucket.
func (h *Histogram) Buckets() (edges []float64, counts []uint64) {
	return h.edges, h.counts
}

func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) register(name, help, typ string) {
	base := baseName(name)
	if _, ok := r.help[base]; !ok {
		r.help[base] = help
		r.typ[base] = typ
	} else if r.typ[base] != typ {
		panic(fmt.Sprintf("flight: metric %q re-registered as %s, was %s", base, typ, r.typ[base]))
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, help, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, help, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given ascending bucket edges if needed. Edges must be sorted ascending;
// re-registration ignores the edges argument.
func (r *Registry) Histogram(name, help string, edges []float64) *Histogram {
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if !sort.Float64sAreSorted(edges) {
		panic(fmt.Sprintf("flight: histogram %q edges not ascending: %v", name, edges))
	}
	r.register(name, help, "histogram")
	h := &Histogram{edges: append([]float64(nil), edges...), counts: make([]uint64, len(edges)+1)}
	r.histograms[name] = h
	return h
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text per the exposition format: backslash and
// newline (double quotes are legal in HELP).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// SeriesName builds a registry series name "base{k1="v1",k2="v2"}" from
// alternating key/value pairs, escaping label values. Use it whenever a
// label value is not a known-safe literal. With no pairs it returns base
// unchanged.
func SeriesName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("flight: SeriesName(%q): odd key/value list", base))
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// splitLabels splits "name{a="b"}" into ("name", `a="b"`).
func splitLabels(name string) (string, string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// PrometheusText renders every metric in the Prometheus text exposition
// format. Output is conformant and deterministic: series are grouped into
// metric families (one HELP/TYPE header per family, all of the family's
// series contiguous under it — never interleaved with another family, even
// when a family's name is a prefix of another's), families are ordered by
// name, series within a family by label set, histogram buckets are
// cumulative and end at le="+Inf" with _count equal to the +Inf bucket.
func (r *Registry) PrometheusText() string {
	// Group series by family (base name) first: sorting raw series names
	// would interleave families whose names share a prefix (`h{a="1"}` >
	// `h2`, because '{' sorts after digits), which the exposition format
	// forbids.
	families := map[string][]string{}
	collect := func(name string) {
		base, _ := splitLabels(name)
		families[base] = append(families[base], name)
	}
	for n := range r.counters {
		collect(n)
	}
	for n := range r.gauges {
		collect(n)
	}
	for n := range r.histograms {
		collect(n)
	}
	bases := make([]string, 0, len(families))
	for base := range families {
		bases = append(bases, base)
	}
	sort.Strings(bases)

	var b strings.Builder
	series := func(base, labels, suffix, extra, value string) {
		b.WriteString(base)
		b.WriteString(suffix)
		all := labels
		if extra != "" {
			if all != "" {
				all += ","
			}
			all += extra
		}
		if all != "" {
			b.WriteString("{")
			b.WriteString(all)
			b.WriteString("}")
		}
		b.WriteString(" ")
		b.WriteString(value)
		b.WriteString("\n")
	}
	for _, base := range bases {
		fmt.Fprintf(&b, "# HELP %s %s\n", base, escapeHelp(r.help[base]))
		fmt.Fprintf(&b, "# TYPE %s %s\n", base, r.typ[base])
		names := families[base]
		sort.Strings(names)
		for _, name := range names {
			_, labels := splitLabels(name)
			if c, ok := r.counters[name]; ok {
				series(base, labels, "", "", formatFloat(c.v))
				continue
			}
			if g, ok := r.gauges[name]; ok {
				series(base, labels, "", "", formatFloat(g.v))
				continue
			}
			h := r.histograms[name]
			var cum uint64
			for i, edge := range h.edges {
				cum += h.counts[i]
				series(base, labels, "_bucket", `le="`+formatFloat(edge)+`"`, strconv.FormatUint(cum, 10))
			}
			cum += h.counts[len(h.edges)]
			series(base, labels, "_bucket", `le="+Inf"`, strconv.FormatUint(cum, 10))
			series(base, labels, "_sum", "", formatFloat(h.sum))
			series(base, labels, "_count", "", strconv.FormatUint(h.count, 10))
		}
	}
	return b.String()
}
