package flight

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Registry is a deterministic metrics registry: counters, gauges, and
// fixed-bucket histograms keyed by name. It never touches the wall clock
// and its text snapshot sorts every series by name, so two identical runs
// render byte-identical snapshots. Metric names follow Prometheus
// conventions and may carry a `{label="value"}` suffix; HELP/TYPE headers
// are emitted once per base name.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // keyed by base name (label suffix stripped)
	typ        map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
		typ:        map[string]string{},
	}
}

// Counter is a monotonically increasing value.
type Counter struct{ v float64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d (must be non-negative; not enforced).
func (c *Counter) Add(d float64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a value that can go up and down.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets with Prometheus `le`
// (less-or-equal) semantics: an observation lands in the first bucket whose
// upper edge is >= the value; values above the last edge land in the
// implicit +Inf bucket. NaN observations are ignored (they would poison the
// running sum and break determinism of comparisons).
type Histogram struct {
	edges  []float64 // ascending upper bounds, exclusive of +Inf
	counts []uint64  // len(edges)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.edges, v) // first i with edges[i] >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Buckets returns the bucket edges and per-bucket (non-cumulative) counts;
// the final count is the +Inf bucket.
func (h *Histogram) Buckets() (edges []float64, counts []uint64) {
	return h.edges, h.counts
}

func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) register(name, help, typ string) {
	base := baseName(name)
	if _, ok := r.help[base]; !ok {
		r.help[base] = help
		r.typ[base] = typ
	} else if r.typ[base] != typ {
		panic(fmt.Sprintf("flight: metric %q re-registered as %s, was %s", base, typ, r.typ[base]))
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, help, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, help, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given ascending bucket edges if needed. Edges must be sorted ascending;
// re-registration ignores the edges argument.
func (r *Registry) Histogram(name, help string, edges []float64) *Histogram {
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if !sort.Float64sAreSorted(edges) {
		panic(fmt.Sprintf("flight: histogram %q edges not ascending: %v", name, edges))
	}
	r.register(name, help, "histogram")
	h := &Histogram{edges: append([]float64(nil), edges...), counts: make([]uint64, len(edges)+1)}
	r.histograms[name] = h
	return h
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// splitLabels splits "name{a="b"}" into ("name", `a="b"`).
func splitLabels(name string) (string, string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// PrometheusText renders every metric in the Prometheus text exposition
// format, sorted by series name so the snapshot is deterministic.
func (r *Registry) PrometheusText() string {
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	seenHeader := map[string]bool{}
	header := func(base string) {
		if seenHeader[base] {
			return
		}
		seenHeader[base] = true
		fmt.Fprintf(&b, "# HELP %s %s\n", base, r.help[base])
		fmt.Fprintf(&b, "# TYPE %s %s\n", base, r.typ[base])
	}
	series := func(base, labels, suffix, extra, value string) {
		b.WriteString(base)
		b.WriteString(suffix)
		all := labels
		if extra != "" {
			if all != "" {
				all += ","
			}
			all += extra
		}
		if all != "" {
			b.WriteString("{")
			b.WriteString(all)
			b.WriteString("}")
		}
		b.WriteString(" ")
		b.WriteString(value)
		b.WriteString("\n")
	}
	for _, name := range names {
		base, labels := splitLabels(name)
		header(base)
		if c, ok := r.counters[name]; ok {
			series(base, labels, "", "", formatFloat(c.v))
			continue
		}
		if g, ok := r.gauges[name]; ok {
			series(base, labels, "", "", formatFloat(g.v))
			continue
		}
		h := r.histograms[name]
		var cum uint64
		for i, edge := range h.edges {
			cum += h.counts[i]
			series(base, labels, "_bucket", `le="`+formatFloat(edge)+`"`, strconv.FormatUint(cum, 10))
		}
		cum += h.counts[len(h.edges)]
		series(base, labels, "_bucket", `le="+Inf"`, strconv.FormatUint(cum, 10))
		series(base, labels, "_sum", "", formatFloat(h.sum))
		series(base, labels, "_count", "", strconv.FormatUint(h.count, 10))
	}
	return b.String()
}
