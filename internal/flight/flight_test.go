package flight

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pythia/internal/sim"
)

// TestHistogramBucketEdges pins the Prometheus `le` semantics: a value
// exactly on an edge lands in that edge's bucket, values below the first
// edge in the first, values above the last in +Inf, and NaN is skipped.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t", "test", []float64{1, 2, 5})
	for _, v := range []float64{
		0.5,        // below first edge -> bucket le=1
		1,          // exactly on an edge -> bucket le=1
		1.0000001,  // just past -> bucket le=2
		2,          // on edge -> le=2
		5,          // on last edge -> le=5
		6,          // above last edge -> +Inf
		-3,         // negative -> le=1
		math.NaN(), // skipped entirely
	} {
		h.Observe(v)
	}
	edges, counts := h.Buckets()
	if len(edges) != 3 || len(counts) != 4 {
		t.Fatalf("bucket shape: %v %v", edges, counts)
	}
	want := []uint64{3, 2, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count %d, want 7 (NaN must be skipped)", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.0000001+2+5+6-3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum %v, want %v", got, want)
	}
}

func TestHistogramRejectsUnsortedEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted edges must panic")
		}
	}()
	NewRegistry().Histogram("bad", "test", []float64{2, 1})
}

func TestRegistryRejectsTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter(`m{kind="a"}`, "test")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a base name under a different type must panic")
		}
	}()
	r.Gauge(`m{kind="b"}`, "test")
}

// TestPrometheusTextFormat checks the exposition-format invariants: sorted
// series, single HELP/TYPE per base name across labeled series, cumulative
// histogram buckets with a +Inf terminator, and determinism.
func TestPrometheusTextFormat(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		// Registration order deliberately scrambled: output must not care.
		r.Counter(`ev{kind="b"}`, "events").Add(2)
		r.Gauge("frac", "a fraction").Set(0.25)
		h := r.Histogram("lat", "latency", []float64{0.1, 1})
		h.Observe(0.05)
		h.Observe(0.5)
		h.Observe(2)
		r.Counter(`ev{kind="a"}`, "events").Inc()
		return r.PrometheusText()
	}
	text := build()
	if text != build() {
		t.Fatal("snapshot not deterministic across identical builds")
	}
	want := `# HELP ev events
# TYPE ev counter
ev{kind="a"} 1
ev{kind="b"} 2
# HELP frac a fraction
# TYPE frac gauge
frac 0.25
# HELP lat latency
# TYPE lat histogram
lat_bucket{le="0.1"} 1
lat_bucket{le="1"} 2
lat_bucket{le="+Inf"} 3
lat_sum 2.55
lat_count 3
`
	if text != want {
		t.Fatalf("snapshot mismatch:\n got:\n%s\nwant:\n%s", text, want)
	}
}

// TestJSONLRoundTrip: marshal → parse is lossless and the encoding is
// deterministic (fixed struct field order, one object per line).
func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		func() Event {
			ev := Ev(SpillDetected, PlaneMonitor)
			ev.T = sim.Time(1.5)
			ev.Job, ev.Map, ev.Attempt, ev.Src = 0, 3, 1, 7
			ev.Disposition = DispOK
			return ev
		}(),
		func() Event {
			ev := Ev(InstallDone, PlaneControl)
			ev.T = sim.Time(2.25)
			ev.Src, ev.Dst = 7, 9
			ev.Cookie = 42
			ev.DelaySec = 0.004
			ev.Disposition = DispOK
			return ev
		}(),
	}
	data := MarshalJSONL(events)
	if n := bytes.Count(data, []byte("\n")); n != len(events) {
		t.Fatalf("%d lines for %d events", n, len(events))
	}
	back, err := ParseJSONL(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, back[i], events[i])
		}
	}
	if !bytes.Equal(MarshalJSONL(back), data) {
		t.Fatal("re-marshal not byte-identical")
	}
}

// synthetic builds a minimal complete lifecycle for one flow:
// spill → decode → enqueue → receive → booking → placement → install →
// admit → complete, with known timings.
func synthetic() []Event {
	at := func(tv float64, ev Event) Event { ev.T = sim.Time(tv); return ev }
	ids := func(ev Event, job, mapID, attempt, reduce int) Event {
		ev.Job, ev.Map, ev.Attempt, ev.Reduce = job, mapID, attempt, reduce
		return ev
	}
	spill := ids(Ev(SpillDetected, PlaneMonitor), 0, 1, 1, -1)
	spill.Src = 2
	spill.Disposition = DispOK
	decoded := ids(Ev(IndexDecoded, PlaneMonitor), 0, 1, 1, -1)
	enq := ids(Ev(IntentEnqueued, PlaneMonitor), 0, 1, 1, -1)
	recv := ids(Ev(IntentReceived, PlaneCollector), 0, 1, 1, -1)
	recv.Disposition = DispOK
	book := ids(Ev(BookingMade, PlaneCollector), 0, 1, 1, 0)
	book.Src, book.Dst = 2, 5
	book.Bytes = 110
	book.Disposition = DispNew
	place := Ev(Placement, PlaneCollector)
	place.Src, place.Dst = 2, 5
	istart := Ev(InstallStart, PlaneControl)
	istart.Cookie = 9
	idone := Ev(InstallDone, PlaneControl)
	idone.Cookie = 9
	idone.Src, idone.Dst = 2, 5
	idone.DelaySec = 0.01
	idone.Disposition = DispOK
	admit := ids(Ev(FlowAdmitted, PlaneFabric), 0, 1, -1, 0)
	admit.Src, admit.Dst = 2, 5
	admit.Bytes = 100
	done := ids(Ev(FlowCompleted, PlaneFabric), 0, 1, -1, 0)
	done.Src, done.Dst = 2, 5
	done.Bytes = 100
	done.DelaySec = 1
	return []Event{
		at(1.0, spill), at(1.01, decoded), at(1.02, enq), at(1.03, recv),
		at(1.04, book), at(1.05, place), at(1.05, istart), at(1.06, idone),
		at(3.06, admit), at(4.06, done),
	}
}

func TestComputeQualitySynthetic(t *testing.T) {
	q := ComputeQuality(synthetic())
	if q.Intents != 1 || q.Bookings != 1 || q.Placements != 1 || q.Installs != 1 {
		t.Fatalf("volume counters: %+v", q)
	}
	if q.FabricFlows != 1 || q.CoveredFlows != 1 || q.LeadSamples != 1 {
		t.Fatalf("coverage: %+v", q)
	}
	if got, want := q.LeadP50Sec, 2.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("lead p50 %v, want %v", got, want)
	}
	if q.LateFraction != 0 {
		t.Fatalf("late fraction %v, want 0", q.LateFraction)
	}
	// Predicted 110 vs actual 100 -> +10% signed error.
	if got := q.ByteErrMeanFrac; math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("byte error %v, want 0.1", got)
	}
}

// TestComputeQualityLateFlow: an admitted covered flow with no prior install
// counts late; uncovered flows are out of scope.
func TestComputeQualityLateFlow(t *testing.T) {
	events := synthetic()
	// Strip the install events: the flow still has a booking, so it is
	// covered, but the race is lost.
	var stripped []Event
	for _, ev := range events {
		if ev.Kind == InstallStart || ev.Kind == InstallDone {
			continue
		}
		stripped = append(stripped, ev)
	}
	q := ComputeQuality(stripped)
	if q.CoveredFlows != 1 || q.LeadSamples != 0 {
		t.Fatalf("coverage: %+v", q)
	}
	if q.LateFraction != 1 {
		t.Fatalf("late fraction %v, want 1", q.LateFraction)
	}
	// An uncovered flow (no booking anywhere) is not classified at all.
	uncov := Ev(FlowAdmitted, PlaneFabric)
	uncov.T = sim.Time(5)
	uncov.Job, uncov.Map, uncov.Reduce = 0, 99, 0
	q = ComputeQuality(append(stripped, uncov))
	if q.FabricFlows != 2 || q.CoveredFlows != 1 {
		t.Fatalf("uncovered flow misclassified: %+v", q)
	}
}

func TestVerifyChainsCleanAndOrphans(t *testing.T) {
	if err := VerifyChains(synthetic()); err != nil {
		t.Fatalf("complete lifecycle flagged: %v", err)
	}
	// Forward incompleteness is legal: drop everything after the enqueue.
	events := synthetic()
	if err := VerifyChains(events[:3]); err != nil {
		t.Fatalf("truncated (but causal) log flagged: %v", err)
	}
	// An effect without its cause is not: each removal below orphans the
	// named later event.
	drops := []struct {
		drop   Kind
		orphan Kind
	}{
		{SpillDetected, IndexDecoded},
		{IndexDecoded, IntentEnqueued},
		{IntentEnqueued, IntentReceived},
		{IntentReceived, BookingMade},
		{BookingMade, Placement},
		{InstallStart, InstallDone},
		{FlowAdmitted, FlowCompleted},
	}
	for _, d := range drops {
		var mutated []Event
		for _, ev := range synthetic() {
			if ev.Kind != d.drop {
				mutated = append(mutated, ev)
			}
		}
		err := VerifyChains(mutated)
		if err == nil {
			t.Fatalf("dropping %s left no orphan", d.drop)
		}
		if !strings.Contains(err.Error(), string(d.orphan)) || !strings.Contains(err.Error(), string(d.drop)) {
			t.Fatalf("dropping %s: error does not name orphan %s and parent: %v", d.drop, d.orphan, err)
		}
	}
}

func TestSummarizeSynthetic(t *testing.T) {
	s := Summarize(synthetic())
	for _, want := range []string{
		"job 0:", "1 bookings", "1 placements", "1 installs",
		"critical path of worst aggregate h2->h5",
		"spill detected", "rules installed", "flow completed",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	if got := Summarize(nil); !strings.Contains(got, "no job-scoped flight events") {
		t.Fatalf("empty-log summary: %q", got)
	}
}

// TestBuildMetricsSnapshot: the standard registry exposes the full kind
// vocabulary (zero-valued series included) and the quality gauges.
func TestBuildMetricsSnapshot(t *testing.T) {
	text := BuildMetrics(synthetic()).PrometheusText()
	for _, want := range []string{
		`pythia_flight_events_total{kind="spill-detected"} 1`,
		`pythia_flight_events_total{kind="mgmt-dropped"} 0`, // pre-registered, unused
		`pythia_lead_time_seconds_count 1`,
		`pythia_install_rtt_seconds_bucket{le="+Inf"} 1`,
		"pythia_late_prediction_fraction 0",
		"pythia_fabric_flows 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, text)
		}
	}
	if text != BuildMetrics(synthetic()).PrometheusText() {
		t.Fatal("BuildMetrics snapshot not deterministic")
	}
}

// TestRecorderNilSafety: a nil *Recorder is inert through every accessor (the
// facade calls them without a recorder attached).
func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.Record(Ev(SpillDetected, PlaneMonitor))
	if r.Len() != 0 || r.Events() != nil || r.JSONL() != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestRecorderStampsSimTime(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng)
	eng.At(2.5, func() { r.Record(Ev(SpillDetected, PlaneMonitor)) })
	eng.Run()
	if r.Len() != 1 || r.Events()[0].T != sim.Time(2.5) {
		t.Fatalf("timestamp not taken from the engine clock: %+v", r.Events())
	}
}
