package flight

import (
	"fmt"
	"sort"
	"strings"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Summarize renders a human-readable per-job digest of an event log: event
// volumes, per-plane latency breakdowns, and the critical path of each
// job's worst (largest completed) aggregate — the span chain the paper's
// race is decided on. Output is deterministic: jobs ascending, fixed
// formatting, no map iteration without sorting.
func Summarize(events []Event) string {
	var b strings.Builder
	jobs := map[int][]int{} // job -> event indexes, in log order
	for i := range events {
		if events[i].Job >= 0 {
			jobs[events[i].Job] = append(jobs[events[i].Job], i)
		}
	}
	ids := make([]int, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) == 0 {
		b.WriteString("no job-scoped flight events recorded\n")
	}
	mgmt := struct{ sent, dropped, dup, deferred int }{}
	for i := range events {
		switch events[i].Kind {
		case MgmtSent:
			mgmt.sent++
		case MgmtDropped:
			mgmt.dropped++
		case MgmtDuplicated:
			mgmt.dup++
		case MgmtDeferred:
			mgmt.deferred++
		}
	}
	for _, id := range ids {
		summarizeJob(&b, events, id, jobs[id])
	}
	fmt.Fprintf(&b, "mgmt network: %d sent, %d dropped, %d duplicated, %d deferred\n",
		mgmt.sent, mgmt.dropped, mgmt.dup, mgmt.deferred)
	return b.String()
}

type latAgg struct {
	n        int
	sum, max float64
}

func (l *latAgg) add(v float64) {
	l.n++
	l.sum += v
	if v > l.max {
		l.max = v
	}
}

func (l *latAgg) String() string {
	if l.n == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f/%.1f ms", l.sum/float64(l.n)*1e3, l.max*1e3)
}

func summarizeJob(b *strings.Builder, events []Event, job int, idx []int) {
	type akey struct{ mapID, attempt int }
	type pair struct{ src, dst topology.NodeID }
	counts := map[Kind]int{}
	spillAt := map[akey]sim.Time{}
	enqueuedAt := map[akey]sim.Time{}
	var monitor, transit, install latAgg
	aggBytes := map[pair]float64{} // completed bytes per (src,dst)
	bookedPairs := map[pair]bool{} // aggregates this job's bookings touched
	received := map[akey]bool{}
	for _, i := range idx {
		ev := &events[i]
		counts[ev.Kind]++
		ak := akey{ev.Map, ev.Attempt}
		switch ev.Kind {
		case SpillDetected:
			if _, ok := spillAt[ak]; !ok {
				spillAt[ak] = ev.T
			}
		case IntentEnqueued:
			if t, ok := spillAt[ak]; ok {
				monitor.add(float64(ev.T.Sub(t)))
			}
			if _, ok := enqueuedAt[ak]; !ok {
				enqueuedAt[ak] = ev.T
			}
		case IntentReceived:
			if t, ok := enqueuedAt[ak]; ok && !received[ak] {
				received[ak] = true
				transit.add(float64(ev.T.Sub(t)))
			}
		case BookingMade:
			bookedPairs[pair{ev.Src, ev.Dst}] = true
		case FlowCompleted:
			aggBytes[pair{ev.Src, ev.Dst}] += ev.Bytes
		}
	}
	// Placements and installs are aggregate-scoped (an aggregate can carry
	// several jobs' demand, so those events have no job field); attribute to
	// this job the ones on aggregates its bookings touched.
	placements, installs := 0, 0
	for i := range events {
		ev := &events[i]
		if !bookedPairs[pair{ev.Src, ev.Dst}] {
			continue
		}
		switch ev.Kind {
		case Placement:
			placements++
		case InstallDone:
			if ev.Disposition == DispOK {
				installs++
				install.add(ev.DelaySec)
			}
		}
	}
	fmt.Fprintf(b, "job %d: %d spills, %d intents enqueued, %d received (%d dup), %d bookings, %d placements, %d installs, %d fabric flows completed\n",
		job, counts[SpillDetected], counts[IntentEnqueued],
		counts[IntentReceived], dispCount(events, idx, IntentReceived, DispDup),
		counts[BookingMade], placements, installs, counts[FlowCompleted])
	if n := counts[Degraded] + counts[FlowModRetry] + counts[IntentDropped]; n > 0 {
		fmt.Fprintf(b, "  faults: %d degraded, %d flowmod retries, %d intents dropped\n",
			counts[Degraded], counts[FlowModRetry], counts[IntentDropped])
	}
	fmt.Fprintf(b, "  plane latency (mean/max): monitor %s, intent transit %s, install rtt %s\n",
		monitor.String(), transit.String(), install.String())

	// Critical path of the worst aggregate: the (src,dst) pair that moved
	// the most completed bytes, ties broken by lowest (src,dst).
	var worst pair
	var worstBytes float64
	found := false
	pairs := make([]pair, 0, len(aggBytes))
	for p := range aggBytes {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].src != pairs[j].src {
			return pairs[i].src < pairs[j].src
		}
		return pairs[i].dst < pairs[j].dst
	})
	for _, p := range pairs {
		if !found || aggBytes[p] > worstBytes {
			worst, worstBytes, found = p, aggBytes[p], true
		}
	}
	if !found {
		return
	}
	fmt.Fprintf(b, "  critical path of worst aggregate h%d->h%d (%.1f MB completed):\n",
		worst.src, worst.dst, worstBytes/1e6)
	renderChain(b, events, idx, job, worst.src, worst.dst)
}

func dispCount(events []Event, idx []int, kind Kind, disp string) int {
	n := 0
	for _, i := range idx {
		if events[i].Kind == kind && events[i].Disposition == disp {
			n++
		}
	}
	return n
}

func okCount(events []Event, idx []int) int {
	n := 0
	for _, i := range idx {
		if events[i].Kind == InstallDone && events[i].Disposition == DispOK {
			n++
		}
	}
	return n
}

// renderChain prints the lifecycle of the largest completed flow on the
// (src,dst) aggregate: spill → intent → receipt → booking → placement →
// install → admit → completion, with absolute sim time and deltas.
func renderChain(b *strings.Builder, events []Event, idx []int, job int, src, dst topology.NodeID) {
	// Largest completed flow on the aggregate; ties broken by log order.
	var flow *Event
	for _, i := range idx {
		ev := &events[i]
		if ev.Kind == FlowCompleted && ev.Src == src && ev.Dst == dst {
			if flow == nil || ev.Bytes > flow.Bytes {
				flow = ev
			}
		}
	}
	if flow == nil {
		return
	}
	var chain []*Event
	add := func(e *Event) {
		if e != nil {
			chain = append(chain, e)
		}
	}
	// Scan the whole log, not just the job's events: placement and install
	// spans are aggregate-scoped and carry no job field.
	before := func(limit *Event, match func(*Event) bool) *Event {
		var last *Event
		for i := range events {
			ev := &events[i]
			if limit != nil && ev.T > limit.T {
				break
			}
			if match(ev) {
				last = ev
			}
		}
		return last
	}
	mapID, reduce := flow.Map, flow.Reduce
	admit := before(flow, func(e *Event) bool {
		return e.Kind == FlowAdmitted && e.Job == job && e.Map == mapID && e.Reduce == reduce
	})
	add(before(admit, func(e *Event) bool {
		return e.Kind == SpillDetected && e.Job == job && e.Map == mapID
	}))
	add(before(admit, func(e *Event) bool {
		return e.Kind == IntentEnqueued && e.Job == job && e.Map == mapID
	}))
	add(before(admit, func(e *Event) bool {
		return e.Kind == IntentReceived && e.Job == job && e.Map == mapID
	}))
	add(before(admit, func(e *Event) bool {
		return e.Kind == BookingMade && e.Job == job && e.Map == mapID && e.Reduce == reduce
	}))
	// Pick the last successful install before the admit, then the placement
	// that produced it (the last one at or before the install), so the chain
	// stays causally ordered even when the aggregate was re-placed later.
	install := before(admit, func(e *Event) bool {
		return e.Kind == InstallDone && e.Src == src && e.Dst == dst && e.Disposition == DispOK
	})
	placeLimit := install
	if placeLimit == nil {
		placeLimit = admit
	}
	add(before(placeLimit, func(e *Event) bool {
		return e.Kind == Placement && e.Src == src && e.Dst == dst
	}))
	add(install)
	add(admit)
	add(flow)
	// Render in true temporal order: when the aggregate's rules were
	// installed off an earlier booking, placement and install legitimately
	// precede this flow's own spill — that is what a won race looks like.
	sort.SliceStable(chain, func(i, j int) bool { return chain[i].T < chain[j].T })
	var prev sim.Time
	for n, ev := range chain {
		label := describe(ev)
		if n == 0 {
			fmt.Fprintf(b, "    %9.3fs %s\n", float64(ev.T), label)
		} else {
			fmt.Fprintf(b, "    %+8.3fs  %s\n", float64(ev.T.Sub(prev)), label)
		}
		prev = ev.T
	}
}

func describe(ev *Event) string {
	switch ev.Kind {
	case SpillDetected:
		return fmt.Sprintf("spill detected on h%d (map %d attempt %d)", ev.Src, ev.Map, ev.Attempt)
	case IntentEnqueued:
		return fmt.Sprintf("intent enqueued (%d partitions predicted)", ev.Count)
	case IntentReceived:
		return fmt.Sprintf("intent received by collector (%s)", ev.Disposition)
	case BookingMade:
		return fmt.Sprintf("booking r%d: %.1f MB predicted (%s)", ev.Reduce, ev.Bytes/1e6, ev.Disposition)
	case Placement:
		return fmt.Sprintf("placed on path %s (%d candidates; %s)", ev.Path, ev.Count, ev.Detail)
	case InstallDone:
		return fmt.Sprintf("rules installed, cookie %d (rtt %.1f ms)", ev.Cookie, ev.DelaySec*1e3)
	case FlowAdmitted:
		return fmt.Sprintf("flow admitted: map %d -> r%d, %.1f MB on the wire", ev.Map, ev.Reduce, ev.Bytes/1e6)
	case FlowCompleted:
		return fmt.Sprintf("flow completed: %.1f MB actual in %.3f s", ev.Bytes/1e6, ev.DelaySec)
	default:
		return string(ev.Kind)
	}
}
