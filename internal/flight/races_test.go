package flight

import (
	"testing"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// FlowRaces must classify exactly the covered flows, in admission order,
// with the same install-race semantics as ComputeQuality: an admission with
// no prior successful install for its (src,dst) aggregate is late.
func TestFlowRaces(t *testing.T) {
	mk := func(kind Kind, at float64, job, mapID, reduce int, src, dst topology.NodeID, disp string) Event {
		ev := Ev(kind, PlaneFabric)
		ev.T = sim.Time(at)
		ev.Job, ev.Map, ev.Reduce = job, mapID, reduce
		ev.Src, ev.Dst = src, dst
		ev.Disposition = disp
		return ev
	}
	events := []Event{
		// Flow (0,0,0) booked; flow (0,1,0) never booked (uncovered).
		mk(BookingMade, 1, 0, 0, 0, 3, 4, "new"),
		// Uncovered flow admitted — must not appear in the output.
		mk(FlowAdmitted, 2, 0, 1, 0, 3, 4, ""),
		// Covered flow admitted before any install: late.
		mk(FlowAdmitted, 3, 0, 0, 0, 3, 4, ""),
		// Install completes for the aggregate...
		mk(InstallDone, 4, 0, 0, 0, 3, 4, DispOK),
		// ...second booking covers another flow on the same pair, admitted
		// after the install: the prediction won.
		mk(BookingMade, 5, 0, 2, 1, 3, 4, "new"),
		mk(FlowAdmitted, 6, 0, 2, 1, 3, 4, ""),
		// A failed install on a different pair must not count as coverage.
		mk(BookingMade, 7, 1, 0, 0, 5, 6, "new"),
		mk(InstallDone, 8, 1, 0, 0, 5, 6, "error"),
		mk(FlowAdmitted, 9, 1, 0, 0, 5, 6, ""),
	}
	races := FlowRaces(events)
	if len(races) != 3 {
		t.Fatalf("got %d races, want 3 (uncovered flows excluded): %+v", len(races), races)
	}
	want := []FlowRace{
		{T: 3, Late: true},  // admitted before install
		{T: 6, Late: false}, // admitted after successful install
		{T: 9, Late: true},  // only a failed install on its pair
	}
	for i, w := range want {
		if races[i] != w {
			t.Fatalf("race %d = %+v, want %+v", i, races[i], w)
		}
	}
}

// FlowRaces and ComputeQuality must agree on the covered-flow count and
// late fraction — they implement the same classification.
func TestFlowRacesMatchesQuality(t *testing.T) {
	mk := func(kind Kind, at float64, job, mapID, reduce int, disp string) Event {
		ev := Ev(kind, PlaneFabric)
		ev.T = sim.Time(at)
		ev.Job, ev.Map, ev.Reduce = job, mapID, reduce
		ev.Src, ev.Dst = 1, 2
		ev.Disposition = disp
		return ev
	}
	events := []Event{
		mk(BookingMade, 1, 0, 0, 0, "new"),
		mk(BookingMade, 1, 0, 1, 0, "new"),
		mk(FlowAdmitted, 2, 0, 0, 0, ""),
		mk(InstallDone, 3, 0, 0, 0, DispOK),
		mk(FlowAdmitted, 4, 0, 1, 0, ""),
	}
	races := FlowRaces(events)
	q := ComputeQuality(events)
	if len(races) != q.CoveredFlows {
		t.Fatalf("races %d != quality covered flows %d", len(races), q.CoveredFlows)
	}
	late := 0
	for _, r := range races {
		if r.Late {
			late++
		}
	}
	if got := float64(late) / float64(len(races)); got != q.LateFraction {
		t.Fatalf("late fraction %v != quality %v", got, q.LateFraction)
	}
}
