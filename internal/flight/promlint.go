package flight

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a small, dependency-free Prometheus text exposition parser
// and linter. It backs the Registry conformance tests and the CI
// metrics-scrape smoke: scrape /metrics, ParseExposition, LintExposition,
// then assert the catalog's key series exist.

// Sample is one parsed exposition sample line.
type Sample struct {
	Name   string            // full sample name, including _bucket/_sum/_count suffixes
	Labels map[string]string // nil when the sample has no labels
	Value  float64
}

// Family is one parsed metric family: its HELP/TYPE headers and samples in
// file order.
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | untyped
	Help    string
	Samples []Sample
}

// Exposition is a parsed exposition page, families in file order.
type Exposition struct {
	Families []*Family
	byName   map[string]*Family
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *Family {
	return e.byName[name]
}

// Sample returns the first sample with the given full name and a label set
// containing every given key/value pair, or nil. kv is alternating
// key/value.
func (e *Exposition) Sample(name string, kv ...string) *Sample {
	fam := e.byName[familyOf(name)]
	if fam == nil {
		return nil
	}
	for i := range fam.Samples {
		s := &fam.Samples[i]
		if s.Name != name {
			continue
		}
		ok := true
		for j := 0; j+1 < len(kv); j += 2 {
			if s.Labels[kv[j]] != kv[j+1] {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return nil
}

// familyOf strips the histogram/summary sample suffixes from a full sample
// name, yielding the family name the sample belongs to.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parseLabels parses `k="v",k2="v2"` (the text between braces), handling
// \\, \", and \n escapes in values.
func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q missing '='", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(s) {
				return nil, fmt.Errorf("label %q value not terminated", key)
			}
			c := s[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %q value ends mid-escape", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %q bad escape \\%c", key, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
		s = strings.TrimSpace(s[i+1:])
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between label pairs, got %q", s)
			}
			s = strings.TrimSpace(s[1:])
		}
	}
	return labels, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// ParseExposition parses a Prometheus text exposition page, enforcing
// syntax: valid metric and label names, quoted and escaped label values,
// parseable sample values, TYPE headers naming known types, and each family
// contiguous (a family may not resume after another family's lines).
func ParseExposition(text string) (*Exposition, error) {
	exp := &Exposition{byName: map[string]*Family{}}
	var cur *Family
	closed := map[string]bool{} // families whose block has ended
	family := func(name string) *Family {
		if cur == nil || cur.Name != name {
			if cur != nil {
				closed[cur.Name] = true
			}
			if f, ok := exp.byName[name]; ok {
				cur = f // interleaving; caught by the closed check below
				return f
			}
			f := &Family{Name: name, Type: "untyped"}
			exp.byName[name] = f
			exp.Families = append(exp.Families, f)
			cur = f
		}
		return cur
	}
	for lineNo, line := range strings.Split(text, "\n") {
		loc := func(format string, args ...any) error {
			return fmt.Errorf("exposition line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				continue // arbitrary comment
			}
			name := parts[2]
			if !validMetricName(name) {
				return nil, loc("invalid metric name %q in %s header", name, parts[1])
			}
			if closed[name] {
				return nil, loc("family %q interleaved: header after another family began", name)
			}
			f := family(name)
			if parts[1] == "HELP" {
				if len(parts) == 4 {
					f.Help = parts[3]
				}
			} else {
				if len(parts) != 4 {
					return nil, loc("TYPE header for %q missing type", name)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.Type = parts[3]
				default:
					return nil, loc("unknown TYPE %q for %q", parts[3], name)
				}
				if len(f.Samples) > 0 {
					return nil, loc("TYPE header for %q after its samples", name)
				}
			}
			continue
		}
		// Sample line: name[{labels}] value [timestamp]
		var name, rest string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			end := strings.LastIndexByte(line, '}')
			if end < i {
				return nil, loc("unterminated label braces")
			}
			labels, err := parseLabels(line[i+1 : end])
			if err != nil {
				return nil, loc("%v", err)
			}
			rest = strings.TrimSpace(line[end+1:])
			if !validMetricName(name) {
				return nil, loc("invalid metric name %q", name)
			}
			fname := familyOf(name)
			if closed[fname] {
				return nil, loc("family %q interleaved: sample after another family began", fname)
			}
			v, err := sampleValue(rest)
			if err != nil {
				return nil, loc("%v", err)
			}
			family(fname).Samples = append(family(fname).Samples, Sample{Name: name, Labels: labels, Value: v})
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, loc("sample missing value")
		}
		name = fields[0]
		if !validMetricName(name) {
			return nil, loc("invalid metric name %q", name)
		}
		fname := familyOf(name)
		if closed[fname] {
			return nil, loc("family %q interleaved: sample after another family began", fname)
		}
		v, err := parseValue(fields[1])
		if err != nil {
			return nil, loc("bad value %q: %v", fields[1], err)
		}
		family(fname).Samples = append(family(fname).Samples, Sample{Name: name, Value: v})
	}
	return exp, nil
}

func sampleValue(rest string) (float64, error) {
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return 0, fmt.Errorf("sample missing value")
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return v, nil
}

// LintExposition parses text and checks semantic conformance on top of
// syntax: counters are non-negative and never carry reserved suffixes;
// every histogram has cumulative non-decreasing buckets per label set,
// a le="+Inf" bucket, and _count equal to the +Inf bucket (and to _sum's
// presence). Returns all problems found, joined.
func LintExposition(text string) error {
	exp, err := ParseExposition(text)
	if err != nil {
		return err
	}
	var problems []string
	for _, fam := range exp.Families {
		switch fam.Type {
		case "counter":
			for _, s := range fam.Samples {
				if s.Value < 0 {
					problems = append(problems, fmt.Sprintf("counter %s has negative value %v", s.Name, s.Value))
				}
				if s.Name != fam.Name {
					problems = append(problems, fmt.Sprintf("counter family %s has sample %s with reserved suffix", fam.Name, s.Name))
				}
			}
		case "histogram":
			problems = append(problems, lintHistogram(fam)...)
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("exposition lint: %s", strings.Join(problems, "; "))
	}
	return nil
}

// labelKey renders a label set minus `le` as a canonical string for grouping
// histogram series.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(',')
	}
	return b.String()
}

func lintHistogram(fam *Family) []string {
	type hist struct {
		buckets []Sample
		sum     *Sample
		count   *Sample
	}
	groups := map[string]*hist{}
	group := func(labels map[string]string) *hist {
		k := labelKey(labels)
		if groups[k] == nil {
			groups[k] = &hist{}
		}
		return groups[k]
	}
	var problems []string
	for i := range fam.Samples {
		s := fam.Samples[i]
		switch s.Name {
		case fam.Name + "_bucket":
			if _, ok := s.Labels["le"]; !ok {
				problems = append(problems, fmt.Sprintf("%s bucket missing le label", fam.Name))
				continue
			}
			g := group(s.Labels)
			g.buckets = append(g.buckets, s)
		case fam.Name + "_sum":
			group(s.Labels).sum = &fam.Samples[i]
		case fam.Name + "_count":
			group(s.Labels).count = &fam.Samples[i]
		default:
			problems = append(problems, fmt.Sprintf("histogram %s has stray sample %s", fam.Name, s.Name))
		}
	}
	for key, g := range groups {
		where := fam.Name
		if key != "" {
			where += "{" + strings.TrimSuffix(key, ",") + "}"
		}
		if len(g.buckets) == 0 {
			problems = append(problems, where+" has no buckets")
			continue
		}
		prevLe := math.Inf(-1)
		prev := -1.0
		sawInf := false
		for _, b := range g.buckets {
			le, err := parseValue(b.Labels["le"])
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s bad le %q", where, b.Labels["le"]))
				continue
			}
			if le <= prevLe {
				problems = append(problems, fmt.Sprintf("%s buckets not in ascending le order", where))
			}
			prevLe = le
			if b.Value < prev {
				problems = append(problems, fmt.Sprintf("%s buckets not cumulative (le=%q drops to %v)", where, b.Labels["le"], b.Value))
			}
			prev = b.Value
			if math.IsInf(le, +1) {
				sawInf = true
				if g.count != nil && g.count.Value != b.Value {
					problems = append(problems, fmt.Sprintf("%s _count %v != +Inf bucket %v", where, g.count.Value, b.Value))
				}
			}
		}
		if !sawInf {
			problems = append(problems, where+` missing le="+Inf" bucket`)
		}
		if g.count == nil {
			problems = append(problems, where+" missing _count")
		}
		if g.sum == nil {
			problems = append(problems, where+" missing _sum")
		}
	}
	return problems
}
