// Package flight is the cross-plane flight recorder: every prediction that
// moves through the simulator — from the moment a map task spills on a host
// to the moment the predicted shuffle flow completes on the fabric — leaves
// a trail of typed, simulated-time-stamped events. The recorder is strictly
// an observer: it never schedules engine events, never draws randomness, and
// never changes a decision, so a run with the recorder enabled is
// bit-identical to the same run without it.
//
// Determinism contract:
//   - Events are appended in engine callback order, which is deterministic
//     for a fixed seed (the engine orders same-instant events FIFO).
//   - Timestamps come from the simulation clock only; no wall clock anywhere.
//   - Serialization uses encoding/json struct marshaling (fixed field order),
//     so the JSONL export of a seeded run is byte-identical across runs.
//
// Overhead contract: every producer holds the recorder behind a Sink
// interface field that is nil-checked before any event is constructed, so
// the disabled path costs one pointer compare and zero allocations
// (guarded by BenchmarkRecorderDisabled).
package flight

import (
	"bytes"
	"encoding/json"
	"fmt"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Kind names one step of the prediction lifecycle.
type Kind string

// Lifecycle event kinds, in rough causal order.
const (
	// Monitor plane (internal/instrument).
	SpillDetected  Kind = "spill-detected"  // map output committed on a host; disposition ok|missed|crash
	IndexDecoded   Kind = "index-decoded"   // spill index file decoded into per-partition sizes
	IntentEnqueued Kind = "intent-enqueued" // shuffle intent handed to the mgmt network; disposition late for backlog re-emits
	IntentDropped  Kind = "intent-dropped"  // in-flight message discarded at delivery (job already done)

	// Management network plane (internal/mgmtnet).
	MgmtSent       Kind = "mgmt-sent"     // message serialized onto the mgmt port; DelaySec = queueing delay
	MgmtDropped    Kind = "mgmt-dropped"  // message lost (fault draw or outage drop policy)
	MgmtDuplicated Kind = "mgmt-dup"      // fault plane delivered a second copy
	MgmtDeferred   Kind = "mgmt-deferred" // outage with defer policy parked the message

	// Collector plane (internal/core).
	IntentReceived Kind = "intent-received" // collector accepted an intent; disposition ok|dup|late
	ReducerUpSeen  Kind = "reducer-up"      // reducer location learned
	BookingMade    Kind = "booking"         // per-(job,map,reduce) demand booked; disposition new|replaced
	BookingExpired Kind = "booking-expired" // TTL sweep evicted a booking
	IntentExpired  Kind = "intent-expired"  // TTL sweep evicted an unresolved intent
	Placement      Kind = "placement"       // aggregate placed on a path; Detail carries candidate scores
	Degraded       Kind = "degraded"        // aggregate gave up on rule install, degraded to ECMP
	Reconciled     Kind = "reconciled"      // controller recovery re-placed Count aggregates

	// Control plane (internal/openflow).
	InstallStart   Kind = "install-start"   // FLOW_MOD fan-out began; Count = hops
	InstallDone    Kind = "install-done"    // install acked; DelaySec = RTT; disposition ok|error
	FlowModRetry   Kind = "flowmod-retry"   // timeout fired, FLOW_MOD retransmitted; Count = attempt number
	FlowModDropped Kind = "flowmod-dropped" // FLOW_MOD lost; disposition outage|drop

	// Fabric plane (internal/netsim).
	FlowAdmitted  Kind = "flow-admitted"  // shuffle flow started on the fabric; Bytes = actual wire bytes
	FlowCompleted Kind = "flow-completed" // shuffle flow finished; Bytes = actual, DelaySec = duration

	// Serving plane (internal/serve): the live ingest→journal→commit path.
	// T carries the service's virtual clock; DelaySec carries wall-clock
	// stage durations.
	BatchIngested  Kind = "batch-ingested"  // a coalesced batch left the queue; Count = ops
	BatchJournaled Kind = "batch-journaled" // batch appended to the WAL; Bytes = frame payload, DelaySec = append+fsync
	BatchCommitted Kind = "batch-committed" // batch applied to the collector; Count = ops, DelaySec = apply wall time
	SnapshotTaken  Kind = "snapshot-taken"  // durable snapshot written; Bytes = snapshot size
	RecoveryReplay Kind = "recovery-replay" // startup replay finished; Count = records, DelaySec = wall time
)

// Plane names which simulator layer emitted an event.
type Plane string

// Planes, one per instrumented subsystem.
const (
	PlaneMonitor   Plane = "monitor"
	PlaneMgmt      Plane = "mgmt"
	PlaneCollector Plane = "collector"
	PlaneControl   Plane = "control"
	PlaneFabric    Plane = "fabric"
	PlaneServe     Plane = "serve"
)

// Dispositions qualify how an event resolved.
const (
	DispOK       = "ok"
	DispLate     = "late"
	DispDup      = "dup"
	DispMissed   = "missed"
	DispCrash    = "crash"
	DispJobDone  = "job-done"
	DispNew      = "new"
	DispReplaced = "replaced"
	DispError    = "error"
	DispOutage   = "outage"
	DispDrop     = "drop"
)

// Event is one flight-recorder span point. Identity fields (Job, Map,
// Attempt, Reduce, Src, Dst) use -1 for "not applicable" and are always
// serialized so the JSONL schema is uniform; payload fields are omitted
// when zero. The recorder stamps T; producers fill the rest.
type Event struct {
	T           sim.Time        `json:"t"`
	Kind        Kind            `json:"kind"`
	Plane       Plane           `json:"plane"`
	Job         int             `json:"job"`
	Map         int             `json:"map"`
	Attempt     int             `json:"attempt"`
	Reduce      int             `json:"reduce"`
	Src         topology.NodeID `json:"src"`
	Dst         topology.NodeID `json:"dst"`
	Cookie      uint64          `json:"cookie,omitempty"`
	Count       int             `json:"count,omitempty"`
	Bytes       float64         `json:"bytes,omitempty"`
	DelaySec    float64         `json:"delay_sec,omitempty"`
	Disposition string          `json:"disposition,omitempty"`
	Path        string          `json:"path,omitempty"`
	Detail      string          `json:"detail,omitempty"`
}

// Ev returns an Event of the given kind and plane with all identity fields
// set to -1 ("not applicable"). It is a plain struct literal — no heap
// allocation — so producers can build events on the stack after their
// nil-sink check.
func Ev(kind Kind, plane Plane) Event {
	return Event{Kind: kind, Plane: plane, Job: -1, Map: -1, Attempt: -1, Reduce: -1, Src: -1, Dst: -1}
}

// Sink receives flight events. Producers hold it as an interface field and
// MUST nil-check it before constructing an event; a nil sink means the
// recorder is disabled and the hot path must stay allocation-free. Never
// store a typed-nil *Recorder in a Sink field — leave the field nil.
type Sink interface {
	Record(Event)
}

// Recorder is the standard Sink: it stamps each event with the simulation
// clock and appends it to an in-memory log.
type Recorder struct {
	eng    *sim.Engine
	events []Event
}

// NewRecorder returns a Recorder reading timestamps from eng.
func NewRecorder(eng *sim.Engine) *Recorder {
	return &Recorder{eng: eng}
}

// Record stamps ev with the current simulated time and appends it.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	ev.T = r.eng.Now()
	r.events = append(r.events, ev)
}

// Events returns the recorded log in append order. The slice is shared with
// the recorder; callers must not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len reports how many events have been recorded.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// JSONL serializes the log as one JSON object per line, in append order.
// For a fixed seed the output is byte-identical across runs.
func (r *Recorder) JSONL() []byte { return MarshalJSONL(r.Events()) }

// MarshalJSONL renders events as JSON Lines.
func MarshalJSONL(events []Event) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			// Event contains only plain scalar fields; Marshal cannot fail.
			panic(fmt.Sprintf("flight: marshal event: %v", err))
		}
	}
	return buf.Bytes()
}

// ParseJSONL decodes a JSON Lines log produced by MarshalJSONL. Blank lines
// are skipped.
func ParseJSONL(data []byte) ([]Event, error) {
	var events []Event
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("flight: parse JSONL event %d: %w", len(events), err)
		}
		events = append(events, ev)
	}
	return events, nil
}
