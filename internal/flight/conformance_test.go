package flight

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusTextFamilyGrouping: families whose names share a prefix must
// not interleave. A raw sort of full series names would order `h2` between
// `h` and `h{a="1"}` (because '2' < '{'), splitting family h in two — the
// exposition format requires every family's series contiguous under one
// HELP/TYPE header. Golden output locks the grouped rendering.
func TestPrometheusTextFamilyGrouping(t *testing.T) {
	r := NewRegistry()
	r.Counter(`h{a="1"}`, "family h").Inc()
	r.Counter("h2", "family h2").Add(2)
	r.Counter("h", "family h").Add(3)
	want := `# HELP h family h
# TYPE h counter
h 3
h{a="1"} 1
# HELP h2 family h2
# TYPE h2 counter
h2 2
`
	got := r.PrometheusText()
	if got != want {
		t.Fatalf("grouped rendering mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if err := LintExposition(got); err != nil {
		t.Fatalf("own output fails lint: %v", err)
	}
}

// TestPrometheusTextEscaping: label values built via SeriesName escape
// backslash, quote, and newline; HELP escapes backslash and newline.
func TestPrometheusTextEscaping(t *testing.T) {
	r := NewRegistry()
	name := SeriesName("paths", "route", "/v1/ingest", "note", "a\\b\"c\nd")
	r.Counter(name, "routes with \\ and\nnewline").Inc()
	want := `# HELP paths routes with \\ and\nnewline
# TYPE paths counter
paths{route="/v1/ingest",note="a\\b\"c\nd"} 1
`
	got := r.PrometheusText()
	if got != want {
		t.Fatalf("escaped rendering mismatch:\n got:\n%q\nwant:\n%q", got, want)
	}
	exp, err := ParseExposition(got)
	if err != nil {
		t.Fatalf("own output fails parse: %v", err)
	}
	s := exp.Sample("paths", "route", "/v1/ingest")
	if s == nil {
		t.Fatal("escaped sample not found by parser")
	}
	if s.Labels["note"] != "a\\b\"c\nd" {
		t.Fatalf("escape round-trip: got %q", s.Labels["note"])
	}
}

// TestConformanceGolden is the full conformance golden: counters, gauges,
// and a labeled histogram render grouped, escaped, with cumulative buckets
// ending in +Inf and _count equal to the terminal bucket — and the output
// passes the package's own exposition lint.
func TestConformanceGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`req_seconds{route="/v1/ingest"}`, "request latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	r.Histogram(`req_seconds{route="/v1/stats"}`, "request latency", []float64{0.001, 0.01, 0.1}).Observe(0.002)
	r.Counter("req_seconds_total_ops", "op count").Add(4) // prefix family, must not interleave
	r.Gauge("queue_depth", "jobs queued").Set(7)
	got := r.PrometheusText()
	want := `# HELP queue_depth jobs queued
# TYPE queue_depth gauge
queue_depth 7
# HELP req_seconds request latency
# TYPE req_seconds histogram
req_seconds_bucket{route="/v1/ingest",le="0.001"} 1
req_seconds_bucket{route="/v1/ingest",le="0.01"} 1
req_seconds_bucket{route="/v1/ingest",le="0.1"} 2
req_seconds_bucket{route="/v1/ingest",le="+Inf"} 3
req_seconds_sum{route="/v1/ingest"} 3.0505
req_seconds_count{route="/v1/ingest"} 3
req_seconds_bucket{route="/v1/stats",le="0.001"} 0
req_seconds_bucket{route="/v1/stats",le="0.01"} 1
req_seconds_bucket{route="/v1/stats",le="0.1"} 1
req_seconds_bucket{route="/v1/stats",le="+Inf"} 1
req_seconds_sum{route="/v1/stats"} 0.002
req_seconds_count{route="/v1/stats"} 1
# HELP req_seconds_total_ops op count
# TYPE req_seconds_total_ops counter
req_seconds_total_ops 4
`
	if got != want {
		t.Fatalf("conformance golden mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if err := LintExposition(got); err != nil {
		t.Fatalf("golden output fails lint: %v", err)
	}
}

// TestLintExpositionCatchesViolations: the linter rejects the defects it
// exists to catch.
func TestLintExpositionCatchesViolations(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"non-cumulative buckets", `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`, "not cumulative"},
		{"missing +Inf", `# TYPE h histogram
h_bucket{le="1"} 5
h_sum 1
h_count 5
`, `missing le="+Inf"`},
		{"count mismatch", `# TYPE h histogram
h_bucket{le="+Inf"} 5
h_sum 1
h_count 4
`, "_count 4 != +Inf bucket 5"},
		{"interleaved family", `# TYPE a counter
a 1
# TYPE b counter
b 1
a{x="1"} 2
`, "interleaved"},
		{"negative counter", `# TYPE c counter
c -1
`, "negative"},
		{"bad label escape", `c{x="a\q"} 1
`, "bad escape"},
		{"bad value", `c one
`, "bad value"},
	}
	for _, tc := range cases {
		err := LintExposition(tc.text)
		if err == nil {
			t.Errorf("%s: lint accepted bad exposition", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
	if err := LintExposition(`# HELP ok fine
# TYPE ok counter
ok 1
ok{a="b"} 2
`); err != nil {
		t.Errorf("lint rejected good exposition: %v", err)
	}
}

// TestLiveRegistryParallel hammers every live metric type from many
// goroutines (run under -race) and checks the merged totals are exact.
func TestLiveRegistryParallel(t *testing.T) {
	r := NewLiveRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("depth", "depth")
	h := r.Histogram("lat_seconds", "latency", []float64{0.5, 1.5, 2.5})
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 4)) // buckets 0..3: one value beyond the last edge
				// Concurrent registration of an existing name must be safe
				// and return the same handle.
				if r.Counter("ops_total", "ops") != c {
					panic("duplicate live counter")
				}
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Fatalf("counter %v, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Fatalf("gauge %v, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Fatalf("histogram count %d, want %d", got, total)
	}
	snap := r.Snapshot()
	sh := snap.Histogram("lat_seconds", "latency", []float64{0.5, 1.5, 2.5})
	if sh.Count() != total {
		t.Fatalf("snapshot histogram count %d, want %d", sh.Count(), total)
	}
	_, counts := sh.Buckets()
	wantPer := uint64(total / 4)
	for i, n := range counts {
		if n != wantPer {
			t.Fatalf("bucket %d: %d observations, want %d", i, n, wantPer)
		}
	}
	if sum := sh.Sum(); sum != float64(total/4*(0+1+2+3)) {
		t.Fatalf("snapshot sum %v", sum)
	}
	if err := LintExposition(snap.PrometheusText()); err != nil {
		t.Fatalf("live snapshot fails lint: %v", err)
	}
}

// TestLiveObservationsAllocationFree: the hot-path observation methods must
// not allocate — the serving plane calls them per request.
func TestLiveObservationsAllocationFree(t *testing.T) {
	r := NewLiveRegistry()
	c := r.Counter("c", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", []float64{1, 2, 4, 8})
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
		g.Add(-1)
		h.Observe(3.5)
	}); n != 0 {
		t.Fatalf("live observations allocate %v/op, want 0", n)
	}
}

// TestMergeCombinesRegistries: Merge sums counters/histograms and overwrites
// gauges, letting a cumulative snapshot absorb scrape-time polled series.
func TestMergeCombinesRegistries(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("c", "c").Add(2)
	dst.Gauge("g", "g").Set(1)
	dst.Histogram("h", "h", []float64{1}).Observe(0.5)
	src := NewRegistry()
	src.Counter("c", "c").Add(3)
	src.Gauge("g", "g").Set(9)
	src.Histogram("h", "h", []float64{1}).Observe(5)
	src.Counter("new", "new").Inc()
	Merge(dst, src)
	if v := dst.Counter("c", "c").Value(); v != 5 {
		t.Fatalf("merged counter %v, want 5", v)
	}
	if v := dst.Gauge("g", "g").Value(); v != 9 {
		t.Fatalf("merged gauge %v, want 9 (overwrite)", v)
	}
	h := dst.Histogram("h", "h", []float64{1})
	if h.Count() != 2 || h.Sum() != 5.5 {
		t.Fatalf("merged histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	if dst.Counter("new", "new").Value() != 1 {
		t.Fatal("merge did not copy new series")
	}
	if err := LintExposition(dst.PrometheusText()); err != nil {
		t.Fatalf("merged registry fails lint: %v", err)
	}
}

// TestLiveRecorderRing: the bounded recorder retains the newest events,
// reports evictions, and returns them oldest-first.
func TestLiveRecorderRing(t *testing.T) {
	r := NewLiveRecorder(3, nil)
	for i := 1; i <= 5; i++ {
		ev := Ev(BatchIngested, PlaneServe)
		ev.T = 1
		ev.Count = i
		r.Record(ev)
	}
	if r.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", r.Dropped())
	}
	evs := r.Events()
	for i, want := range []int{3, 4, 5} {
		if evs[i].Count != want {
			t.Fatalf("event %d has Count %d, want %d", i, evs[i].Count, want)
		}
	}
	var nilRec *LiveRecorder
	nilRec.Record(Ev(BatchIngested, PlaneServe)) // nil-safe like Recorder
	if nilRec.Len() != 0 || nilRec.Events() != nil || nilRec.Dropped() != 0 {
		t.Fatal("nil LiveRecorder must be inert")
	}
}

// TestParseExpositionValues: +Inf/-Inf/NaN literals and le lookup.
func TestParseExpositionValues(t *testing.T) {
	exp, err := ParseExposition(`up +Inf
down -Inf
odd NaN
`)
	if err != nil {
		t.Fatal(err)
	}
	if s := exp.Sample("up"); s == nil || !math.IsInf(s.Value, +1) {
		t.Fatal("+Inf not parsed")
	}
	if s := exp.Sample("down"); s == nil || !math.IsInf(s.Value, -1) {
		t.Fatal("-Inf not parsed")
	}
	if s := exp.Sample("odd"); s == nil || !math.IsNaN(s.Value) {
		t.Fatal("NaN not parsed")
	}
}
