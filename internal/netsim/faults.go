package netsim

import (
	"fmt"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// The fault plane makes links and switches first-class failable entities.
// Every fault or recovery flows through one pipeline: mutate the graph,
// resettle the max-min allocation (NotifyTopology), then fan a TopoEvent out
// to subscribers — schedulers (ECMP rescue, Hedera re-place, Pythia
// re-placement via the OpenFlow controller) all observe the same event
// source instead of keeping controller-private failure state.

// TopoEventKind classifies a topology-change notification.
type TopoEventKind int

const (
	// LinkFailed: a duplex cable was administratively failed.
	LinkFailed TopoEventKind = iota
	// LinkRecovered: a previously failed cable came back.
	LinkRecovered
	// SwitchFailed: a switch went down, taking all incident links with it.
	SwitchFailed
	// SwitchRecovered: a switch came back; incident links return to their
	// administrative state.
	SwitchRecovered
)

func (k TopoEventKind) String() string {
	switch k {
	case LinkFailed:
		return "link-failed"
	case LinkRecovered:
		return "link-recovered"
	case SwitchFailed:
		return "switch-failed"
	case SwitchRecovered:
		return "switch-recovered"
	}
	return fmt.Sprintf("TopoEventKind(%d)", int(k))
}

// TopoEvent is a topology-change notification delivered synchronously to
// subscribers at the virtual instant of the fault.
type TopoEvent struct {
	Kind TopoEventKind
	// Link is the forward link of the affected duplex pair for Link*
	// events, -1 otherwise.
	Link topology.LinkID
	// Node is the affected switch for Switch* events, -1 otherwise.
	Node topology.NodeID
	// At is the virtual time of the event.
	At sim.Time
}

// SubscribeTopology registers fn to be called on every fault-plane event.
// Subscribers are invoked in registration order, synchronously, after the
// graph mutation and allocation resettle — a subscriber sees the
// post-fault network. Subscription order is part of the deterministic
// schedule; register at setup time, not mid-run.
func (n *Network) SubscribeTopology(fn func(TopoEvent)) {
	n.topoSubs = append(n.topoSubs, fn)
}

func (n *Network) publishTopo(ev TopoEvent) {
	ev.At = n.eng.Now()
	for _, fn := range n.topoSubs {
		fn(ev)
	}
}

// FailLink administratively fails a duplex cable: the given link and its
// reverse direction both go down. Flows crossing it starve (their
// bottleneck rate is zero) until a scheduler reroutes them or the link
// recovers. No-op if the cable is already administratively down.
func (n *Network) FailLink(l topology.LinkID) {
	if !n.setLinkAdmin(l, false) {
		return
	}
	n.publishTopo(TopoEvent{Kind: LinkFailed, Link: l, Node: -1})
}

// RecoverLink reverses FailLink. The cable stays effectively down while an
// endpoint switch is down. No-op if the cable is administratively up.
func (n *Network) RecoverLink(l topology.LinkID) {
	if !n.setLinkAdmin(l, true) {
		return
	}
	n.publishTopo(TopoEvent{Kind: LinkRecovered, Link: l, Node: -1})
}

// setLinkAdmin flips the administrative state of a duplex pair and reports
// whether anything changed.
func (n *Network) setLinkAdmin(l topology.LinkID, up bool) bool {
	if n.g.LinkAdminUp(l) == up {
		return false
	}
	n.g.SetLinkUp(l, up)
	if r, ok := n.g.Reverse(l); ok {
		n.g.SetLinkUp(r, up)
	}
	n.NotifyTopology()
	return true
}

// FailSwitch takes a switch down, downing every incident link in both
// directions. It panics when the node is a host (hosts are workload
// endpoints, not failable fabric elements) and no-ops when the switch is
// already down.
func (n *Network) FailSwitch(s topology.NodeID) {
	if n.g.Node(s).Kind != topology.Switch {
		panic(fmt.Sprintf("netsim: FailSwitch on non-switch node %d (%s)", s, n.g.Node(s).Name))
	}
	if !n.g.NodeUp(s) {
		return
	}
	n.g.SetNodeUp(s, false)
	n.NotifyTopology()
	n.publishTopo(TopoEvent{Kind: SwitchFailed, Link: -1, Node: s})
}

// RecoverSwitch reverses FailSwitch. Incident links come back only if they
// are administratively up (an explicitly failed cable stays failed). No-op
// if the switch is up.
func (n *Network) RecoverSwitch(s topology.NodeID) {
	if n.g.Node(s).Kind != topology.Switch {
		panic(fmt.Sprintf("netsim: RecoverSwitch on non-switch node %d (%s)", s, n.g.Node(s).Name))
	}
	if n.g.NodeUp(s) {
		return
	}
	n.g.SetNodeUp(s, true)
	n.NotifyTopology()
	n.publishTopo(TopoEvent{Kind: SwitchRecovered, Link: -1, Node: s})
}
