package netsim

import (
	"fmt"
	"testing"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// driveShardScript runs a deterministic multi-component workload (flows in
// several leaf-spine pods plus same-rack pairs, staggered starts, a trunk
// failure and recovery, background churn) at the given intra-pass worker
// width, and returns a fingerprint of every completion (id, finish time,
// transferred bits).
func driveShardScript(workers int) []string {
	eng := sim.NewEngine()
	g, hosts := topology.LeafSpine(4, 2, 4, topology.Gbps)
	n := New(eng, g)
	n.SetAllocWorkers(workers)

	var log []string
	record := func(f *Flow) {
		log = append(log, fmt.Sprintf("%d@%.9f:%.3f", f.ID, float64(f.Finished()), f.Transferred()))
	}
	start := func(at sim.Time, src, dst topology.NodeID, pathIdx int, bits float64) {
		eng.At(at, func() {
			ps := g.KShortestPaths(src, dst, 4)
			n.StartFlow(tup(src, dst, uint16(len(log)), 9), Shuffle, ps[pathIdx%len(ps)], bits, 0, int(src), int(dst), record)
		})
	}
	// Several independent components per instant: intra-rack pairs in
	// different racks share no links with each other.
	for r := 0; r < 4; r++ {
		a, b := hosts[r*4], hosts[r*4+1]
		c, d := hosts[r*4+2], hosts[r*4+3]
		start(0, a, b, 0, 3e8)
		start(0, c, d, 0, 2e8)
		start(0.1, a, c, 0, 5e8) // merges the two components mid-run
	}
	// Cross-rack flows to create bigger fabric-wide components.
	start(0.05, hosts[0], hosts[7], 0, 4e8)
	start(0.05, hosts[5], hosts[12], 1, 4e8)
	start(0.2, hosts[3], hosts[15], 0, 6e8)
	// Fault churn.
	eng.At(0.15, func() {
		var trunk topology.LinkID = -1
		for l := 0; l < g.NumLinks(); l++ {
			lk := g.Link(topology.LinkID(l))
			if g.Node(lk.From).Kind == topology.Switch && g.Node(lk.To).Kind == topology.Switch {
				trunk = topology.LinkID(l)
				break
			}
		}
		g.SetLinkUp(trunk, false)
		n.NotifyTopology()
		eng.At(0.3, func() {
			g.SetLinkUp(trunk, true)
			n.NotifyTopology()
		})
	})
	eng.At(0.25, func() { n.SetBackground(topology.LinkID(0), 2e8) })
	eng.Run()
	return log
}

// TestShardedAllocBitIdentical proves intra-pass component sharding produces
// bit-identical completion schedules at any worker-pool width, including
// widths far above the component count.
func TestShardedAllocBitIdentical(t *testing.T) {
	base := driveShardScript(1)
	if len(base) == 0 {
		t.Fatal("script completed no flows")
	}
	for _, w := range []int{2, 4, 8} {
		got := driveShardScript(w)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d completions, want %d", w, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: completion %d = %s, want %s", w, i, got[i], base[i])
			}
		}
	}
}

// TestSetAllocWorkersReporting covers the knob's clamping and read-back.
func TestSetAllocWorkersReporting(t *testing.T) {
	eng, n, _, _ := testbed()
	_ = eng
	if n.AllocWorkersSelected() != 1 {
		t.Fatalf("default width = %d, want 1", n.AllocWorkersSelected())
	}
	n.SetAllocWorkers(0)
	if n.AllocWorkersSelected() != 1 {
		t.Fatal("width 0 must clamp to 1")
	}
	n.SetAllocWorkers(6)
	if n.AllocWorkersSelected() != 6 {
		t.Fatalf("width = %d, want 6", n.AllocWorkersSelected())
	}
}

// BenchmarkEagerAllocPass guards the satellite fix for per-pass map churn in
// the eager modes: after warm-up every recompute must reuse the dense
// network-owned scratch with zero allocations per pass.
func BenchmarkEagerAllocPass(b *testing.B) {
	for _, mode := range []AllocMode{AllocIndexed, AllocScan} {
		b.Run(mode.String(), func(b *testing.B) {
			eng, n, hosts, _ := testbed()
			n.SetAllocMode(mode)
			g := n.Graph()
			for i := 0; i < 40; i++ {
				src, dst := hosts[i%5], hosts[5+i%5]
				ps := g.KShortestPaths(src, dst, 2)
				n.StartFlow(tup(src, dst, uint16(i), 1), Shuffle, ps[i%len(ps)], 1e15, 0, i, 0, nil)
			}
			eng.RunUntil(0.001)
			n.recompute() // warm scratch capacity
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.recompute()
			}
			b.StopTimer()
			if got := testing.AllocsPerRun(3, func() { n.recompute() }); got > 0 {
				b.Fatalf("%v eager pass allocated %v times/op, want 0", mode, got)
			}
		})
	}
}

// BenchmarkIncrementalAllocPass guards the incremental pass (component
// discovery + CSR build + fill) at zero steady-state allocations.
func BenchmarkIncrementalAllocPass(b *testing.B) {
	eng, n, hosts, _ := testbed()
	g := n.Graph()
	for i := 0; i < 40; i++ {
		src, dst := hosts[i%5], hosts[5+i%5]
		ps := g.KShortestPaths(src, dst, 2)
		n.StartFlow(tup(src, dst, uint16(i), 1), Shuffle, ps[i%len(ps)], 1e15, 0, i, 0, nil)
	}
	eng.RunUntil(0.001)
	n.recompute()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.recompute()
	}
	b.StopTimer()
	if got := testing.AllocsPerRun(3, func() { n.recompute() }); got > 0 {
		b.Fatalf("incremental pass allocated %v times/op, want 0", got)
	}
}
