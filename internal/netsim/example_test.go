package netsim_test

import (
	"fmt"

	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// A single flow on an uncontended 1 Gbps path moves at line rate.
func ExampleNetwork_StartFlow() {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	path := g.KShortestPaths(hosts[0], hosts[5], 1)[0]
	tuple := netsim.FiveTuple{SrcHost: hosts[0], DstHost: hosts[5], SrcPort: 50060, DstPort: 20000, Protocol: 6}
	net.StartFlow(tuple, netsim.Shuffle, path, 1e9, 0, 0, 0, func(f *netsim.Flow) {
		fmt.Printf("1 Gbit delivered in %s\n", f.Duration())
	})
	eng.Run()
	// Output:
	// 1 Gbit delivered in 1.000s
}

// CBR background traffic (the paper's iperf streams) takes its rate off the
// top; TCP flows share what remains max-min fairly.
func ExampleNetwork_SetBackground() {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	net.SetBackground(trunks[0], 0.75*topology.Gbps)
	paths := g.KShortestPaths(hosts[0], hosts[5], 2)
	var overTrunk0 topology.Path
	for _, p := range paths {
		for _, l := range p.Links {
			if l == trunks[0] {
				overTrunk0 = p
			}
		}
	}
	tuple := netsim.FiveTuple{SrcHost: hosts[0], DstHost: hosts[5], SrcPort: 50060, DstPort: 20000, Protocol: 6}
	net.StartFlow(tuple, netsim.Shuffle, overTrunk0, 1e9, 0, 0, 0, func(f *netsim.Flow) {
		fmt.Printf("through the 75%%-loaded trunk: %s\n", f.Duration())
	})
	eng.Run()
	// Output:
	// through the 75%-loaded trunk: 4.000s
}
