package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"pythia/internal/sim"
	"pythia/internal/stats"
	"pythia/internal/topology"
)

// Analytic cross-checks of the max-min fluid model against closed-form
// completion times.

func TestStaggeredFlowsAnalytic(t *testing.T) {
	// Flow A (2 Gbit) starts at t=0 alone on the path: runs at 1 Gbps.
	// Flow B (1 Gbit) joins at t=1 on the same path: both drop to 0.5.
	// A has 1 Gbit left at t=1 → A and B finish together at t=3.
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	var tA, tB sim.Time
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 2e9, 0, 0, 0, func(f *Flow) { tA = f.Finished() })
	eng.At(1, func() {
		n.StartFlow(tup(hosts[0], hosts[5], 2, 2), Shuffle, p, 1e9, 0, 1, 0, func(f *Flow) { tB = f.Finished() })
	})
	eng.Run()
	if math.Abs(float64(tA)-3) > 1e-6 || math.Abs(float64(tB)-3) > 1e-6 {
		t.Fatalf("tA=%v tB=%v, want both 3s", tA, tB)
	}
}

func TestShortFlowDepartureSpeedsUpSurvivor(t *testing.T) {
	// A (3 Gbit) and B (0.5 Gbit) share a 1 Gbps path from t=0.
	// Both at 0.5 Gbps: B done at t=1 (0.5 Gbit), A has 2.5 Gbit left,
	// then runs at 1 Gbps → done at t=3.5.
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	var tA sim.Time
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 3e9, 0, 0, 0, func(f *Flow) { tA = f.Finished() })
	n.StartFlow(tup(hosts[0], hosts[5], 2, 2), Shuffle, p, 0.5e9, 0, 1, 0, nil)
	eng.Run()
	if math.Abs(float64(tA)-3.5) > 1e-6 {
		t.Fatalf("survivor finished at %v, want 3.5s", tA)
	}
}

func TestMultiBottleneckMaxMin(t *testing.T) {
	// Case 1: all three flows share a trunk -> global bottleneck, 1/3
	// each even though two also share a source edge.
	eng, n, hosts, _ := testbed()
	pA := pathOf(t, n, hosts[0], hosts[5], 0)
	pB := pathOf(t, n, hosts[0], hosts[6], 0)
	pC := pathOf(t, n, hosts[1], hosts[7], 0) // same trunk (index 0)
	f1 := n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, pA, 1e12, 0, 0, 0, nil)
	f2 := n.StartFlow(tup(hosts[0], hosts[6], 2, 2), Shuffle, pB, 1e12, 0, 1, 0, nil)
	f3 := n.StartFlow(tup(hosts[1], hosts[7], 3, 3), Shuffle, pC, 1e12, 0, 2, 0, nil)
	eng.RunUntil(0.001)
	third := 1e9 / 3
	for i, f := range []*Flow{f1, f2, f3} {
		if math.Abs(f.Rate()-third) > 1 {
			t.Fatalf("flow %d rate %v, want 1/3 Gbps (shared trunk)", i, f.Rate())
		}
	}

	// Case 2: move f3 to the other trunk -> f1/f2 limited by their shared
	// source edge (0.5 each), f3 alone at full rate. This is where
	// max-min differs from proportional fairness.
	n.Reroute(f3, pathOf(t, n, hosts[1], hosts[7], 1))
	eng.RunUntil(0.002)
	if math.Abs(f1.Rate()-0.5e9) > 1 || math.Abs(f2.Rate()-0.5e9) > 1 {
		t.Fatalf("edge-shared flows at %v/%v, want 0.5G", f1.Rate(), f2.Rate())
	}
	if math.Abs(f3.Rate()-1e9) > 1 {
		t.Fatalf("isolated flow at %v, want 1G", f3.Rate())
	}
}

// Property: a single flow's duration equals size/(capacity - background)
// for any background level strictly below capacity.
func TestPropertySingleFlowDuration(t *testing.T) {
	f := func(bgRaw uint8, sizeRaw uint16) bool {
		bg := float64(bgRaw%90) / 100 * 1e9 // 0..89% background
		size := (float64(sizeRaw%1000) + 1) * 1e6
		eng := sim.NewEngine()
		g, hosts, trunks := topology.TwoRack(2, 1, topology.Gbps)
		n := New(eng, g)
		p := g.KShortestPaths(hosts[0], hosts[2], 1)[0]
		var crosses topology.LinkID = -1
		for _, l := range p.Links {
			if l == trunks[0] {
				crosses = l
			}
		}
		if crosses == -1 {
			return false
		}
		n.SetBackground(crosses, bg)
		var done sim.Time
		n.StartFlow(tup(hosts[0], hosts[2], 1, 1), Shuffle, p, size, 0, 0, 0,
			func(fl *Flow) { done = fl.Finished() })
		eng.Run()
		want := size / (1e9 - bg)
		return math.Abs(float64(done)-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinIsJainFair(t *testing.T) {
	// Identical flows through one bottleneck must have fairness 1.0.
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	for i := 0; i < 6; i++ {
		n.StartFlow(tup(hosts[0], hosts[5], uint16(i), 1), Shuffle, p, 1e12, 0, i, 0, nil)
	}
	eng.RunUntil(0.001)
	var rates []float64
	for _, f := range n.ActiveList() {
		rates = append(rates, f.Rate())
	}
	if f := stats.JainFairness(rates); math.Abs(f-1) > 1e-9 {
		t.Fatalf("max-min fairness index = %v, want 1.0", f)
	}
}
