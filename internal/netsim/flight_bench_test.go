package netsim

import (
	"testing"

	"pythia/internal/flight"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// BenchmarkRecorderDisabled guards the flight recorder's disabled-path
// overhead contract: with no sink attached, the fabric's record hook must be
// one nil compare — zero allocations per call. CI runs this with
// -benchtime=1x as a smoke check; the AllocsPerRun assertion is what holds
// the contract, independent of b.N.
func BenchmarkRecorderDisabled(b *testing.B) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	n := New(eng, g)
	p := g.KShortestPaths(hosts[0], hosts[5], 4)[0]
	f := &Flow{
		Tuple: FiveTuple{SrcHost: hosts[0], DstHost: hosts[5], SrcPort: 1, DstPort: 2, Protocol: 6},
		Kind:  Shuffle, Path: p, SizeBits: 1e9,
		Job: 0, Map: 1, Reduce: 2,
		started: eng.Now(),
	}
	if n.fl != nil {
		b.Fatal("recorder unexpectedly attached")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		n.recordFlow(flight.FlowAdmitted, f)
		n.recordFlow(flight.FlowCompleted, f)
	}); allocs != 0 {
		b.Fatalf("disabled recorder allocates: %v allocs/op", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.recordFlow(flight.FlowAdmitted, f)
		n.recordFlow(flight.FlowCompleted, f)
	}
}

// BenchmarkRecorderEnabled is the companion datum: the cost of one recorded
// fabric event (event construction + timestamp + append).
func BenchmarkRecorderEnabled(b *testing.B) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	n := New(eng, g)
	n.SetFlightRecorder(flight.NewRecorder(eng))
	p := g.KShortestPaths(hosts[0], hosts[5], 4)[0]
	f := &Flow{
		Tuple: FiveTuple{SrcHost: hosts[0], DstHost: hosts[5], SrcPort: 1, DstPort: 2, Protocol: 6},
		Kind:  Shuffle, Path: p, SizeBits: 1e9,
		Job: 0, Map: 1, Reduce: 2,
		started: eng.Now(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.recordFlow(flight.FlowAdmitted, f)
	}
}
