package netsim

import (
	"math"
	"testing"

	"pythia/internal/sim"
)

// TCP-incast goodput-collapse model tests.

func TestIncastDisabledByDefault(t *testing.T) {
	eng, n, hosts, _ := testbed()
	// 8 senders converge on host5.
	var done sim.Time
	for i := 0; i < 4; i++ {
		p := pathOf(t, n, hosts[i], hosts[5], 0)
		n.StartFlow(tup(hosts[i], hosts[5], uint16(i), 1), Shuffle, p, 0.25e9, 0, i, 0,
			func(f *Flow) { done = f.Finished() })
	}
	eng.Run()
	// 1 Gbit total into a 1 Gbps edge: exactly 1 s without incast.
	if math.Abs(float64(done)-1) > 1e-6 {
		t.Fatalf("finish = %v, want 1s", done)
	}
}

func TestIncastDegradesConvergence(t *testing.T) {
	eng, n, hosts, _ := testbed()
	n.EnableIncast(2, 0.1, 0.3) // beyond 2 concurrent senders: -10% each
	var done sim.Time
	for i := 0; i < 4; i++ {
		p := pathOf(t, n, hosts[i], hosts[5], 0)
		n.StartFlow(tup(hosts[i], hosts[5], uint16(i), 1), Shuffle, p, 0.25e9, 0, i, 0,
			func(f *Flow) { done = f.Finished() })
	}
	eng.Run()
	// 4 senders: 2 extra -> capacity 0.8 Gbps while all run; finish later
	// than 1 s (capacity recovers as flows drain, so < 1/0.8 + slack).
	if float64(done) <= 1.0 {
		t.Fatalf("incast had no effect: %v", done)
	}
	if float64(done) > 1.5 {
		t.Fatalf("incast collapse too strong: %v", done)
	}
}

func TestIncastFloor(t *testing.T) {
	eng, n, hosts, _ := testbed()
	n.EnableIncast(1, 0.5, 0.4) // brutal factor, floor at 40%
	for i := 0; i < 4; i++ {
		p := pathOf(t, n, hosts[i], hosts[5], 0)
		n.StartFlow(tup(hosts[i], hosts[5], uint16(i), 1), Shuffle, p, 1e9, 0, i, 0, nil)
	}
	eng.RunUntil(0.001)
	// Receiver edge capacity floored at 0.4 Gbps -> 0.1 Gbps per flow.
	sum := 0.0
	for _, f := range n.ActiveList() {
		sum += f.Rate()
	}
	if math.Abs(sum-0.4e9) > 1 {
		t.Fatalf("aggregate rate = %v, want floor 0.4 Gbps", sum)
	}
}

func TestIncastOnlyAtTerminalHop(t *testing.T) {
	// Transit links (trunks) must not degrade: 4 flows THROUGH a trunk to
	// 4 different receivers keep full trunk capacity.
	eng, n, hosts, _ := testbed()
	n.EnableIncast(2, 0.2, 0.3)
	for i := 0; i < 4; i++ {
		p := pathOf(t, n, hosts[i], hosts[5+i], 0)
		n.StartFlow(tup(hosts[i], hosts[5+i], uint16(i), 1), Shuffle, p, 1e9, 0, i, 0, nil)
	}
	eng.RunUntil(0.001)
	sum := 0.0
	for _, f := range n.ActiveList() {
		sum += f.Rate()
	}
	// All share one trunk (path index 0): 1 Gbps aggregate, undegraded.
	if math.Abs(sum-1e9) > 1 {
		t.Fatalf("aggregate = %v, want 1 Gbps (no transit incast)", sum)
	}
}

func TestEnableIncastValidation(t *testing.T) {
	_, n, _, _ := testbed()
	for _, bad := range [][3]float64{{1, 1.0, 0.5}, {1, -0.1, 0.5}, {1, 0.1, 0}, {1, 0.1, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("params %v did not panic", bad)
				}
			}()
			n.EnableIncast(int(bad[0]), bad[1], bad[2])
		}()
	}
}
