package netsim

import (
	"testing"

	"pythia/internal/sim"
)

// checkIndexMatchesScan compares every telemetry read on every link between
// the indexed path and the scan-baseline reference at the current instant.
// The two must agree bit-for-bit: both iterate flows in ascending FlowID
// order, so even the float sums are identical.
func checkIndexMatchesScan(t *testing.T, n *Network) {
	t.Helper()
	for _, l := range n.Graph().Links() {
		n.SetScanBaseline(false)
		iu, ia, is := n.LinkStats(l.ID)
		ifl := n.FlowsOn(l.ID)
		n.SetScanBaseline(true)
		su, sa, ss := n.LinkStats(l.ID)
		sfl := n.FlowsOn(l.ID)
		n.SetScanBaseline(false)
		if iu != su || ia != sa || is != ss {
			t.Fatalf("link %d: indexed stats (%v,%v,%v) != scan stats (%v,%v,%v)",
				l.ID, iu, ia, is, su, sa, ss)
		}
		if len(ifl) != len(sfl) {
			t.Fatalf("link %d: indexed FlowsOn %d flows, scan %d", l.ID, len(ifl), len(sfl))
		}
		for i := range ifl {
			if ifl[i].ID != sfl[i].ID {
				t.Fatalf("link %d: FlowsOn[%d] = %d indexed vs %d scan",
					l.ID, i, ifl[i].ID, sfl[i].ID)
			}
		}
	}
}

func TestIndexMatchesScanAcrossLifecycle(t *testing.T) {
	eng, n, hosts, _ := testbed()
	// A mesh of staggered flows so the checkpoints see starts, completions
	// and a mid-flight reroute.
	var tracked *Flow
	k := 0
	for i := 0; i < 5; i++ {
		for j := 5; j < 10; j++ {
			k++
			p := pathOf(t, n, hosts[i], hosts[j], k%2)
			f := n.StartFlow(tup(hosts[i], hosts[j], uint16(k), uint16(k)),
				Shuffle, p, float64(k)*2e8, 0, i, j, nil)
			if tracked == nil {
				tracked = f
			}
		}
	}
	eng.At(0.1, func() { checkIndexMatchesScan(t, n) })
	eng.At(0.5, func() {
		if !tracked.Done() {
			n.Reroute(tracked, pathOf(t, n, tracked.Tuple.SrcHost, tracked.Tuple.DstHost, 1))
		}
		checkIndexMatchesScan(t, n)
	})
	eng.At(3.0, func() { checkIndexMatchesScan(t, n) })
	eng.Run()
	checkIndexMatchesScan(t, n)
	if len(n.ActiveList()) != 0 {
		t.Fatal("flows still active after run")
	}
}

func TestScanBaselineFullRunIdentical(t *testing.T) {
	type rec struct {
		id                FlowID
		started, finished float64
	}
	run := func(scan bool) []rec {
		eng, n, hosts, _ := testbed()
		n.SetScanBaseline(scan)
		k := 0
		for i := 0; i < 5; i++ {
			for j := 5; j < 10; j++ {
				k++
				i, j, k := i, j, k
				eng.At(sim.Time(float64(k)*0.05), func() {
					p := pathOf(t, n, hosts[i], hosts[j], k%2)
					n.StartFlow(tup(hosts[i], hosts[j], uint16(k), uint16(k)),
						Shuffle, p, float64(1+k%3)*3e8, 0, i, j, nil)
				})
			}
		}
		eng.Run()
		var out []rec
		for _, f := range n.History() {
			out = append(out, rec{f.ID, float64(f.Started()), float64(f.Finished())})
		}
		return out
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: indexed %d vs scan %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d diverged: indexed %+v vs scan %+v", i, a[i], b[i])
		}
	}
}
