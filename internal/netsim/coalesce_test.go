package netsim

import (
	"testing"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Coalescing invariant: a wave of same-instant mutations pays for exactly
// one allocation pass; the eager modes pay one per mutation.
func TestCoalescedWavePaysOnePass(t *testing.T) {
	start := func(mode AllocMode) *Network {
		eng, n, hosts, _ := testbed()
		n.SetAllocMode(mode)
		for i := 0; i < 4; i++ {
			for j := 5; j < 9; j++ {
				p := pathOf(t, n, hosts[i], hosts[j], (i+j)%2)
				n.StartFlow(tup(hosts[i], hosts[j], uint16(i), uint16(j)),
					Shuffle, p, 1e9, 0, i, j, nil)
			}
		}
		eng.RunUntil(0.001)
		return n
	}
	inc := start(AllocIncremental)
	if inc.AllocPasses != 1 {
		t.Fatalf("incremental: 16 same-instant starts cost %d passes, want 1", inc.AllocPasses)
	}
	eager := start(AllocIndexed)
	if eager.AllocPasses != 16 {
		t.Fatalf("indexed: 16 starts cost %d passes, want 16", eager.AllocPasses)
	}
}

// Reads at the mutation instant observe fresh rates: the pending pass is
// flushed lazily, before the end-of-instant hook, without double-paying.
func TestCoalescedFlushOnRead(t *testing.T) {
	_, n, hosts, _ := testbed()
	p1 := pathOf(t, n, hosts[0], hosts[5], 0)
	p2 := pathOf(t, n, hosts[1], hosts[6], 0) // same trunk
	f1 := n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p1, 1e9, 0, 0, 0, nil)
	f2 := n.StartFlow(tup(hosts[1], hosts[6], 2, 2), Shuffle, p2, 1e9, 0, 1, 1, nil)
	// ActiveList (any rate-observing API) forces the coalesced pass.
	if got := len(n.ActiveList()); got != 2 {
		t.Fatalf("ActiveList = %d flows, want 2", got)
	}
	if f1.Rate() != 0.5e9 || f2.Rate() != 0.5e9 {
		t.Fatalf("rates after flush-on-read = %v, %v, want 0.5 Gbps each", f1.Rate(), f2.Rate())
	}
	if n.AllocPasses != 1 {
		t.Fatalf("flush-on-read cost %d passes, want 1", n.AllocPasses)
	}
}

// Component scoping: a mutation on one trunk must not trigger work that
// changes flows confined to the other trunk, and the resulting rates must
// still be exactly what a full pass computes.
func TestIncrementalComponentScope(t *testing.T) {
	eng, n, hosts, trunks := testbed()
	pA := pathOf(t, n, hosts[0], hosts[5], 0) // trunk 0
	pB := pathOf(t, n, hosts[1], hosts[6], 1) // trunk 1
	fA := n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, pA, 4e9, 0, 0, 0, nil)
	fB := n.StartFlow(tup(hosts[1], hosts[6], 2, 2), Shuffle, pB, 4e9, 0, 1, 1, nil)
	eng.RunUntil(0.5)
	if fA.Rate() != 1e9 || fB.Rate() != 1e9 {
		t.Fatalf("initial rates %v, %v, want 1 Gbps each", fA.Rate(), fB.Rate())
	}
	// Load trunk 0 with background; trunk 1's component is untouched.
	n.SetBackground(trunks[0], 0.6e9)
	eng.RunUntil(1.0)
	if fA.Rate() != 0.4e9 {
		t.Fatalf("fA rate after background = %v, want 0.4 Gbps", fA.Rate())
	}
	if fB.Rate() != 1e9 {
		t.Fatalf("fB rate after unrelated mutation = %v, want 1 Gbps", fB.Rate())
	}
}

// All three allocator modes must produce bit-identical flow histories on a
// staggered mesh with reroutes, completions and background churn.
func TestAllocModesBitIdentical(t *testing.T) {
	type rec struct {
		id                FlowID
		started, finished float64
	}
	run := func(mode AllocMode) []rec {
		eng, n, hosts, trunks := testbed()
		n.SetAllocMode(mode)
		var tracked *Flow
		k := 0
		for i := 0; i < 5; i++ {
			for j := 5; j < 10; j++ {
				k++
				i, j, k := i, j, k
				eng.At(sim.Time(float64(k%7)*0.05), func() {
					p := pathOf(t, n, hosts[i], hosts[j], k%2)
					f := n.StartFlow(tup(hosts[i], hosts[j], uint16(k), uint16(k)),
						Shuffle, p, float64(1+k%3)*3e8, 0, i, j, nil)
					if tracked == nil {
						tracked = f
					}
				})
			}
		}
		eng.At(0.2, func() { n.SetBackground(trunks[0], 0.3e9) })
		eng.At(0.6, func() {
			if tracked != nil && !tracked.Done() {
				n.Reroute(tracked, pathOf(t, n, tracked.Tuple.SrcHost, tracked.Tuple.DstHost, 1))
			}
		})
		eng.At(1.1, func() { n.SetBackground(trunks[0], 0) })
		eng.Run()
		var out []rec
		for _, f := range n.History() {
			out = append(out, rec{f.ID, float64(f.Started()), float64(f.Finished())})
		}
		return out
	}
	inc := run(AllocIncremental)
	if len(inc) != 25 {
		t.Fatalf("incremental run completed %d flows, want 25", len(inc))
	}
	for _, m := range []AllocMode{AllocIndexed, AllocScan} {
		got := run(m)
		if len(got) != len(inc) {
			t.Fatalf("%v: history length %d vs incremental %d", m, len(got), len(inc))
		}
		for i := range inc {
			if inc[i] != got[i] {
				t.Fatalf("%v: flow %d diverged: incremental %+v vs %+v", m, i, inc[i], got[i])
			}
		}
	}
}

// Link failure and recovery (NotifyTopology → full-pass coalescing) must be
// identical across modes too — the starvation window shape depends on the
// allocator honoring down links at the right instants.
func TestAllocModesIdenticalUnderFailure(t *testing.T) {
	run := func(mode AllocMode) (done sim.Time) {
		eng, n, hosts, _ := testbed()
		n.SetAllocMode(mode)
		p := pathOf(t, n, hosts[0], hosts[5], 0)
		trunk := p.Links[1]
		n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 2e9, 0, 0, 0,
			func(f *Flow) { done = f.Finished() })
		eng.At(1, func() {
			n.Graph().SetLinkUp(trunk, false)
			n.NotifyTopology()
		})
		eng.At(5, func() {
			n.Graph().SetLinkUp(trunk, true)
			n.NotifyTopology()
		})
		eng.Run()
		return done
	}
	inc := run(AllocIncremental)
	if inc != run(AllocIndexed) || inc != run(AllocScan) {
		t.Fatalf("failure-window completion diverged across modes (incremental %v)", inc)
	}
	if float64(inc) != 6 {
		t.Fatalf("completion = %v, want 6s", inc)
	}
}

// Zero-hop (loopback) flows get localBps immediately under coalescing, and
// SetLocalBps re-rates them.
func TestCoalescedLocalFlows(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := topology.Path{Src: hosts[0], Dst: hosts[0]}
	var done sim.Time
	n.StartFlow(tup(hosts[0], hosts[0], 1, 1), Shuffle, p, DefaultLocalBps, 0, 0, 0,
		func(f *Flow) { done = f.Finished() })
	eng.Run()
	if float64(done) != 1 {
		t.Fatalf("local flow finished at %v, want 1s at the 8 Gbps loopback rate", done)
	}
}
