// Package netsim is a flow-level (fluid) simulator of a multi-path
// datacenter network. TCP flows share each link with max-min fairness,
// recomputed at every flow arrival and departure; constant-bit-rate
// background traffic (the paper's iperf UDP streams used to emulate
// oversubscription) is unresponsive and consumes its configured rate off the
// top of each link it crosses.
//
// Path selection is deliberately external: the ECMP baseline, the
// Hedera-like baseline and the Pythia scheduler all inject flows with a
// chosen topology.Path, so the network model stays policy-free.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pythia/internal/flight"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// FlowID identifies a flow within one Network.
type FlowID int

// FlowKind tags what a flow carries, for accounting and for the NetFlow
// measurement substrate.
type FlowKind int

const (
	// Shuffle is Hadoop intermediate-data movement (the flows Pythia
	// schedules).
	Shuffle FlowKind = iota
	// Background is other datacenter traffic.
	Background
	// Control is Pythia/OpenFlow control-plane traffic (carried on the
	// management network in the paper; modeled for overhead accounting).
	Control
	// Storage is HDFS block movement (replication pipelines, remote
	// reads) — data traffic that Pythia does not schedule.
	Storage
)

func (k FlowKind) String() string {
	switch k {
	case Shuffle:
		return "shuffle"
	case Background:
		return "background"
	case Control:
		return "control"
	case Storage:
		return "storage"
	}
	return fmt.Sprintf("FlowKind(%d)", int(k))
}

// AllocMode selects the max-min allocator implementation. All three modes
// produce bit-identical flow rates and completion times (proven by golden
// tests); they differ only in cost.
type AllocMode int

const (
	// AllocIncremental (the default) coalesces all mutations at one
	// simulated instant into a single allocation pass via the engine's
	// end-of-instant hook, scopes each pass to the link/flow connected
	// component reachable from the mutated links, and reuses dense
	// scratch slices so the steady-state pass is allocation-free.
	AllocIncremental AllocMode = iota
	// AllocIndexed is the PR 1 implementation: an eager full progressive
	// filling pass after every mutation, with link occupancy read from
	// the per-link index but map-based scratch state.
	AllocIndexed
	// AllocScan is the original reference implementation: eager full
	// passes that rebuild occupancy by scanning every active flow.
	AllocScan
)

func (m AllocMode) String() string {
	switch m {
	case AllocIncremental:
		return "incremental"
	case AllocIndexed:
		return "indexed"
	case AllocScan:
		return "scan"
	}
	return fmt.Sprintf("AllocMode(%d)", int(m))
}

// FiveTuple is the classical flow identity. Pythia cannot know DstPort at
// prediction time (assigned at socket bind), which is why its rules match on
// host pairs; the ECMP baseline hashes the full tuple.
type FiveTuple struct {
	SrcHost  topology.NodeID
	DstHost  topology.NodeID
	SrcPort  uint16
	DstPort  uint16
	Protocol uint8
}

// Flow is a finite-size data transfer in flight.
type Flow struct {
	ID    FlowID
	Tuple FiveTuple
	Kind  FlowKind
	Path  topology.Path
	// SizeBits is the total volume to move.
	SizeBits float64
	// Labels let upper layers (Hadoop, Pythia) attach identity.
	Job, Map, Reduce int

	rate        float64 // current allocated bps
	remaining   float64
	transferred float64
	started     sim.Time
	finished    sim.Time
	done        bool
	onComplete  func(*Flow)

	// Allocator scratch, meaningful only inside one allocation pass:
	// mark dedups component collection (compared against Network.epoch),
	// unfixed tracks progressive-filling state, and compIdx is the flow's
	// position in the pass's dense component arrays (CSR path-link rows).
	mark    uint64
	unfixed bool
	compIdx int
}

// Rate returns the current max-min allocated rate in bps (valid between
// recomputations).
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bits still to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Transferred returns bits moved so far.
func (f *Flow) Transferred() float64 { return f.transferred }

// Started returns the flow start time.
func (f *Flow) Started() sim.Time { return f.started }

// Finished returns the completion time; valid only when Done.
func (f *Flow) Finished() sim.Time { return f.finished }

// Done reports completion.
func (f *Flow) Done() bool { return f.done }

// Duration returns the flow completion time minus start time; valid only
// when Done.
func (f *Flow) Duration() sim.Duration { return f.finished.Sub(f.started) }

// Network simulates the data network over a topology graph.
type Network struct {
	eng *sim.Engine
	g   *topology.Graph

	nextID FlowID
	// active holds the in-flight flows in ascending ID order (StartFlow
	// appends monotonically increasing IDs; completion preserves order).
	// Every accumulation over it is therefore deterministic.
	active  []*Flow
	history []*Flow

	// linkFlows indexes the active flows by every link they traverse
	// (ascending flow-ID order per link) and terminal counts the active
	// flows whose final hop lands on each link (the incast convergence
	// count). Both are dense slices keyed by LinkID and maintained
	// incrementally on StartFlow/Reroute/completion so that per-link
	// telemetry and the max-min bottleneck pass cost O(flows-on-link)
	// instead of scanning every active flow per link. Invariant: a path
	// never crosses the same link twice (deterministic forwarding cannot
	// revisit a node without looping forever, which Resolve rejects).
	linkFlows [][]*Flow
	terminal  []int

	// mode selects the allocator; scanBaseline mirrors mode==AllocScan
	// for the telemetry read paths (kept as a separate bool so the hot
	// paths branch on one flag, and for SetScanBaseline compatibility).
	mode         AllocMode
	scanBaseline bool

	// background CBR load per link, bps (dense by LinkID).
	background []float64

	// topoSubs are the fault-plane subscribers (see faults.go).
	topoSubs []func(TopoEvent)

	// accounting
	lastAdvance   sim.Time
	linkBits      []float64 // data bits carried per link (excl. background)
	hostTxBits    []float64 // bits sourced per host (shuffle only)
	completionFns []func(*Flow)

	// fl, when non-nil, receives fabric-plane flight events for shuffle
	// flows. The nil check in recordFlow is the whole disabled-path cost:
	// the field must stay nil (never a typed-nil recorder) so StartFlow and
	// completion remain allocation-free without the recorder.
	fl flight.Sink

	// localBps is the rate for zero-hop flows (source and sink on the
	// same server: a reducer fetching from a co-located mapper goes over
	// loopback/local disk, not the fabric).
	localBps float64

	// Incast models TCP throughput collapse at many-to-one convergence
	// points (Chen et al., the paper's TCP-incast citation): when more
	// than incastThreshold flows terminate at one receiving edge link,
	// that link's usable capacity degrades by incastFactor per extra
	// flow, floored at incastFloor of nominal. Disabled by default.
	incastThreshold int
	incastFactor    float64
	incastFloor     float64

	completeEvent *sim.Event
	// completeFn is completeDue bound once at construction: scheduling a
	// method value allocates a fresh closure per call, which would be the
	// only allocation left on the steady-state pass.
	completeFn func()

	// AllocPasses counts allocation passes (any mode). With coalescing, a
	// whole wave of same-instant mutations increments it once; the eager
	// modes increment it once per mutation. Tests assert on it.
	AllocPasses uint64

	// Coalescing state (AllocIncremental only): dirty means an allocation
	// pass is owed for the current instant; dirtySeeds accumulates the
	// links touched by the pending mutations, dirtyAll forces a full
	// pass. flush() settles the debt — at the engine's end-of-instant
	// hook at the latest, or earlier if a rate-observing read arrives.
	dirty      bool
	dirtyAll   bool
	dirtySeeds []topology.LinkID

	// Reusable allocator scratch (dense by LinkID unless noted). epoch
	// versions linkSeen and Flow.mark so nothing needs clearing between
	// passes.
	epoch     uint64
	linkSeen  []uint64
	residual  []float64
	counts    []int
	compLinks []topology.LinkID
	compFlows []*Flow
	workLinks []topology.LinkID
	doneBuf   []*Flow
	termEager []int // scan-mode terminal counts (dense by LinkID)

	// comps are the connected components discovered by the current pass:
	// contiguous [linkLo,linkHi)×[flowLo,flowHi) ranges of
	// compLinks/compFlows. csrStart/csrLinks form a CSR copy of each
	// component flow's path links (row f.compIdx), so the progressive-fill
	// inner loop walks one contiguous arena instead of chasing per-flow
	// slice headers.
	comps    []allocComp
	csrStart []int32
	csrLinks []topology.LinkID

	// Intra-trial sharding: components fill in parallel on a persistent
	// bounded worker pool. Component link/flow index sets are disjoint, so
	// the shared residual/counts/rate writes are race-free and the result
	// is bit-identical at any width. Components are processed in min-LinkID
	// order either way.
	allocWorkers int
	allocJobs    chan allocComp
	allocWG      sync.WaitGroup
	poolSize     int
}

// allocComp is one connected component of the link/flow sharing graph, as
// contiguous ranges into the pass's compLinks/compFlows arrays.
type allocComp struct {
	linkLo, linkHi int
	flowLo, flowHi int
	minLink        topology.LinkID
}

// EnableIncast turns on the many-to-one goodput-collapse model: beyond
// threshold concurrent flows into one receiver link, capacity shrinks by
// factor per additional flow (e.g. 0.05 = 5%), floored at floorFrac of
// nominal. Pass threshold <= 0 to disable.
func (n *Network) EnableIncast(threshold int, factor, floorFrac float64) {
	if factor < 0 || factor >= 1 || floorFrac <= 0 || floorFrac > 1 {
		panic("netsim: bad incast parameters")
	}
	n.advance()
	n.incastThreshold = threshold
	n.incastFactor = factor
	n.incastFloor = floorFrac
	n.mutatedAll()
}

// DefaultLocalBps is the default loopback/local-fetch rate (8 Gbps —
// comfortably above the 1 Gbps NICs so local fetches are never the
// bottleneck, matching the paper's in-memory intermediate data setup).
const DefaultLocalBps = 8e9

// SetLocalBps overrides the loopback transfer rate for zero-hop flows.
func (n *Network) SetLocalBps(bps float64) {
	if bps <= 0 {
		panic("netsim: non-positive local rate")
	}
	n.advance()
	n.localBps = bps
	n.mutatedAll()
}

// New creates a network simulator bound to an engine and a topology.
func New(eng *sim.Engine, g *topology.Graph) *Network {
	nl := g.NumLinks()
	n := &Network{
		eng:        eng,
		g:          g,
		linkFlows:  make([][]*Flow, nl),
		terminal:   make([]int, nl),
		background: make([]float64, nl),
		linkBits:   make([]float64, nl),
		hostTxBits: make([]float64, g.NumNodes()),
		linkSeen:   make([]uint64, nl),
		residual:   make([]float64, nl),
		counts:     make([]int, nl),
		termEager:  make([]int, nl),
		localBps:   DefaultLocalBps,
	}
	n.completeFn = n.completeDue
	return n
}

// ensureLink grows the dense per-link state to cover link id (links added to
// the graph after New).
func (n *Network) ensureLink(id topology.LinkID) {
	need := int(id) + 1
	if need <= len(n.linkFlows) {
		return
	}
	if nl := n.g.NumLinks(); nl > need {
		need = nl
	}
	grow := func(s []float64) []float64 {
		out := make([]float64, need)
		copy(out, s)
		return out
	}
	lf := make([][]*Flow, need)
	copy(lf, n.linkFlows)
	n.linkFlows = lf
	ti := make([]int, need)
	copy(ti, n.terminal)
	n.terminal = ti
	ci := make([]int, need)
	copy(ci, n.counts)
	n.counts = ci
	te := make([]int, need)
	copy(te, n.termEager)
	n.termEager = te
	ls := make([]uint64, need)
	copy(ls, n.linkSeen)
	n.linkSeen = ls
	n.background = grow(n.background)
	n.linkBits = grow(n.linkBits)
	n.residual = grow(n.residual)
}

// ensureHost grows the per-host accounting to cover host id.
func (n *Network) ensureHost(id topology.NodeID) {
	need := int(id) + 1
	if need <= len(n.hostTxBits) {
		return
	}
	if nn := n.g.NumNodes(); nn > need {
		need = nn
	}
	out := make([]float64, need)
	copy(out, n.hostTxBits)
	n.hostTxBits = out
}

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// SetBackground sets the CBR background load on a link in bps, clamped to
// [0, capacity]. Changing background reshapes the fair shares of all active
// flows sharing capacity with that link.
func (n *Network) SetBackground(link topology.LinkID, bps float64) {
	capBps := n.g.Link(link).CapacityBps
	if bps < 0 {
		bps = 0
	}
	if bps > capBps {
		bps = capBps
	}
	n.advance()
	n.ensureLink(link)
	n.background[link] = bps
	n.mutated(link)
}

// BackgroundOn returns the configured CBR load on a link.
func (n *Network) BackgroundOn(link topology.LinkID) float64 {
	if int(link) >= len(n.background) {
		return 0
	}
	return n.background[link]
}

// OnFlowComplete registers a callback invoked for every completing flow
// (after the flow's own callback).
func (n *Network) OnFlowComplete(fn func(*Flow)) {
	n.completionFns = append(n.completionFns, fn)
}

// StartFlow injects a flow on the given path. sizeBits must be positive and
// the path valid for the tuple endpoints. onComplete (may be nil) fires at
// completion time. The returned flow is live immediately.
func (n *Network) StartFlow(tuple FiveTuple, kind FlowKind, path topology.Path, sizeBits float64, job, mapID, reduce int, onComplete func(*Flow)) *Flow {
	if sizeBits <= 0 {
		panic("netsim: StartFlow with non-positive size")
	}
	if path.Src != tuple.SrcHost || path.Dst != tuple.DstHost {
		panic("netsim: path endpoints do not match tuple")
	}
	if err := path.Valid(n.g); err != nil {
		panic(fmt.Sprintf("netsim: invalid path: %v", err))
	}
	n.advance()
	f := &Flow{
		ID:        n.nextID,
		Tuple:     tuple,
		Kind:      kind,
		Path:      path,
		SizeBits:  sizeBits,
		remaining: sizeBits,
		started:   n.eng.Now(),
		Job:       job, Map: mapID, Reduce: reduce,
		onComplete: onComplete,
	}
	n.nextID++
	n.active = append(n.active, f) // IDs are monotonic: order stays ascending
	n.ensureHost(tuple.SrcHost)
	n.indexFlow(f)
	if len(path.Links) == 0 {
		// Zero-hop flows never contend on the fabric: the rate is fixed
		// here so the component-scoped allocator need not visit them.
		f.rate = n.localBps
	}
	n.mutatedLinks(path.Links)
	n.recordFlow(flight.FlowAdmitted, f)
	return f
}

// SetFlightRecorder installs a flight-event sink. Pass a non-nil sink only;
// leave the field nil to disable recording.
func (n *Network) SetFlightRecorder(s flight.Sink) { n.fl = s }

// recordFlow emits one fabric-plane flight event for a shuffle flow that
// actually crosses the fabric. The leading nil check is the hot path when
// recording is disabled and must stay allocation-free
// (BenchmarkRecorderDisabled guards it).
func (n *Network) recordFlow(kind flight.Kind, f *Flow) {
	if n.fl == nil {
		return
	}
	if f.Kind != Shuffle || len(f.Path.Links) == 0 {
		// Local fetches never touch the fabric; background/storage/control
		// flows are not predictions.
		return
	}
	ev := flight.Ev(kind, flight.PlaneFabric)
	ev.Job, ev.Map, ev.Reduce = f.Job, f.Map, f.Reduce
	ev.Src, ev.Dst = f.Tuple.SrcHost, f.Tuple.DstHost
	ev.Bytes = f.SizeBits / 8
	if kind == flight.FlowCompleted {
		ev.DelaySec = float64(n.eng.Now().Sub(f.started))
	}
	n.fl.Record(ev)
}

// indexFlow adds a flow to the per-link occupancy index, keeping each
// per-link list in ascending flow-ID order.
func (n *Network) indexFlow(f *Flow) {
	for _, l := range f.Path.Links {
		n.ensureLink(l)
		fs := append(n.linkFlows[l], f)
		// New flows carry the highest ID yet and hit the no-op fast path;
		// reroutes of older flows insertion-sort backwards.
		for i := len(fs) - 1; i > 0 && fs[i-1].ID > f.ID; i-- {
			fs[i], fs[i-1] = fs[i-1], fs[i]
		}
		n.linkFlows[l] = fs
	}
	if k := len(f.Path.Links); k > 0 {
		n.terminal[f.Path.Links[k-1]]++
	}
}

// unindexFlow removes a flow from the per-link occupancy index.
func (n *Network) unindexFlow(f *Flow) {
	for _, l := range f.Path.Links {
		fs := n.linkFlows[l]
		i := sort.Search(len(fs), func(i int) bool { return fs[i].ID >= f.ID })
		if i < len(fs) && fs[i] == f {
			copy(fs[i:], fs[i+1:])
			fs[len(fs)-1] = nil
			n.linkFlows[l] = fs[:len(fs)-1]
		}
	}
	if k := len(f.Path.Links); k > 0 {
		n.terminal[f.Path.Links[k-1]]--
	}
}

// SetAllocMode switches the allocator implementation. Any pending coalesced
// pass is flushed first, so the switch is safe at any instant; the per-link
// index is maintained in every mode.
func (n *Network) SetAllocMode(m AllocMode) {
	if m == n.mode {
		return
	}
	n.flush()
	n.mode = m
	n.scanBaseline = m == AllocScan
}

// AllocModeSelected returns the active allocator mode.
func (n *Network) AllocModeSelected() AllocMode { return n.mode }

// SetScanBaseline toggles the original reference implementation: eager
// full-scan allocation passes and telemetry that scans every active flow
// instead of consulting the occupancy index. SetScanBaseline(true) is
// equivalent to SetAllocMode(AllocScan); SetScanBaseline(false) restores the
// default incremental mode. The index is maintained either way, so the mode
// can be flipped at any time. Used by golden-equivalence tests and benchmark
// baselines; production callers never need it.
//
// Deprecated: call SetAllocMode directly (or pythia.WithAllocMode from the
// facade). Kept as a thin wrapper for older harness code.
func (n *Network) SetScanBaseline(on bool) {
	if on {
		n.SetAllocMode(AllocScan)
	} else {
		n.SetAllocMode(AllocIncremental)
	}
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.active) }

// History returns a copy of all completed flows in completion order. Use
// ForEachCompleted to iterate without the copy.
func (n *Network) History() []*Flow { return append([]*Flow(nil), n.history...) }

// CompletedFlows returns the number of completed flows.
func (n *Network) CompletedFlows() int { return len(n.history) }

// ForEachCompleted calls fn for every completed flow in completion order
// without copying the history slice. fn must not start, reroute or complete
// flows.
func (n *Network) ForEachCompleted(fn func(*Flow)) {
	for _, f := range n.history {
		fn(f)
	}
}

// advance accrues transfer progress from lastAdvance to now at current
// rates. It must be called before any change to the active set or rates.
// Iteration is in ascending flow-ID order (active is sorted), so the
// hostTxBits/linkBits float accumulations are identical on every run of the
// same seed.
func (n *Network) advance() {
	now := n.eng.Now()
	dt := float64(now.Sub(n.lastAdvance))
	if dt <= 0 {
		n.lastAdvance = now
		return
	}
	for _, f := range n.active {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		f.transferred += moved
		if f.Kind == Shuffle && len(f.Path.Links) > 0 {
			n.hostTxBits[f.Tuple.SrcHost] += moved
		}
		for _, l := range f.Path.Links {
			n.linkBits[l] += moved
		}
	}
	n.lastAdvance = now
}

// mutated records that the allocation on (the component of) one link is
// stale. In the eager modes it recomputes immediately.
func (n *Network) mutated(link topology.LinkID) {
	if n.mode != AllocIncremental {
		n.recompute()
		return
	}
	n.dirtySeeds = append(n.dirtySeeds, link)
	n.markDirty()
}

// mutatedLinks is mutated for a whole path worth of links (possibly empty —
// a zero-hop flow still owes a completion reschedule).
func (n *Network) mutatedLinks(links []topology.LinkID) {
	if n.mode != AllocIncremental {
		n.recompute()
		return
	}
	n.dirtySeeds = append(n.dirtySeeds, links...)
	n.markDirty()
}

// mutatedAll marks every allocation stale (topology events, incast/local
// parameter changes).
func (n *Network) mutatedAll() {
	if n.mode != AllocIncremental {
		n.recompute()
		return
	}
	n.dirtyAll = true
	n.markDirty()
}

func (n *Network) markDirty() {
	if n.dirty {
		return
	}
	n.dirty = true
	n.eng.OnInstantEnd(n.flush)
}

// flush settles a pending coalesced allocation: one component-scoped pass
// covering every mutation recorded at the current instant, then the
// next-completion reschedule. It is a no-op when nothing is dirty, so it is
// safe to call from every rate-observing read.
func (n *Network) flush() {
	if !n.dirty {
		return
	}
	n.dirty = false
	all := n.dirtyAll
	n.dirtyAll = false
	seeds := n.dirtySeeds
	n.dirtySeeds = n.dirtySeeds[:0]
	n.allocateIncremental(seeds, all)
	n.scheduleNextCompletion()
}

// recompute performs a full max-min fair allocation pass in the current mode
// and reschedules the next-completion event. The eager modes call it on
// every mutation; the incremental mode only via explicit full passes.
func (n *Network) recompute() {
	if n.mode == AllocIncremental {
		n.allocateIncremental(nil, true)
	} else {
		n.recomputeEager()
	}
	n.scheduleNextCompletion()
}

// linkResidual returns the capacity left for TCP flows on a link: zero when
// the link is down, else capacity (degraded by the incast model when the
// link is a convergence point) minus background, floored at zero. The float
// operation sequence matches the original implementation exactly so all
// allocator modes produce bit-identical shares.
func (n *Network) linkResidual(l topology.LinkID, terminalCount int) float64 {
	if !n.g.LinkUp(l) {
		// A failed link carries nothing: flows routed across it starve
		// until rerouted or the link recovers.
		return 0
	}
	capBps := n.g.Link(l).CapacityBps
	if n.incastThreshold > 0 {
		if extra := terminalCount - n.incastThreshold; extra > 0 {
			eff := 1 - n.incastFactor*float64(extra)
			if eff < n.incastFloor {
				eff = n.incastFloor
			}
			capBps *= eff
		}
	}
	r := capBps - n.background[l]
	if r < 0 {
		r = 0
	}
	return r
}

// allocateIncremental runs progressive filling over the connected components
// of links and flows reachable from the seed links (or over everything when
// all is set). Max-min allocation decomposes over connected components of
// the link/flow sharing graph, and each component is closed under "shares a
// link with", so flows outside it keep their rates and the restricted pass
// computes exactly the floats a global pass would. Scratch state is reused
// across passes (epoch-stamped, no clearing), so the steady-state pass
// allocates nothing.
//
// Discovery is serial and enumerates each component as a contiguous range of
// compLinks/compFlows, copying every component flow's path links into one
// dense CSR arena (csrStart/csrLinks). The fill phase then runs per
// component — serially in min-LinkID order, or sharded across the bounded
// worker pool when SetAllocWorkers raised the width. Component index sets
// are disjoint, so the shared residual/counts/rate writes never race and the
// result is bit-identical at any pool width.
func (n *Network) allocateIncremental(seeds []topology.LinkID, all bool) {
	n.AllocPasses++
	n.epoch++
	ep := n.epoch
	n.compLinks = n.compLinks[:0]
	n.compFlows = n.compFlows[:0]
	n.comps = n.comps[:0]
	n.csrStart = n.csrStart[:0]
	n.csrLinks = n.csrLinks[:0]

	// discover grows one component by BFS across the bipartite link/flow
	// sharing graph from an unseen link. compLinks doubles as the frontier
	// queue; the component occupies the tail ranges appended here.
	discover := func(seed topology.LinkID) {
		c := allocComp{
			linkLo:  len(n.compLinks),
			flowLo:  len(n.compFlows),
			minLink: seed,
		}
		n.linkSeen[seed] = ep
		n.compLinks = append(n.compLinks, seed)
		for i := c.linkLo; i < len(n.compLinks); i++ {
			for _, f := range n.linkFlows[n.compLinks[i]] {
				if f.mark == ep {
					continue
				}
				f.mark = ep
				f.compIdx = len(n.compFlows)
				n.compFlows = append(n.compFlows, f)
				n.csrStart = append(n.csrStart, int32(len(n.csrLinks)))
				for _, l := range f.Path.Links {
					n.csrLinks = append(n.csrLinks, l)
					if n.linkSeen[l] != ep {
						n.linkSeen[l] = ep
						n.compLinks = append(n.compLinks, l)
						if l < c.minLink {
							c.minLink = l
						}
					}
				}
			}
		}
		c.linkHi = len(n.compLinks)
		c.flowHi = len(n.compFlows)
		n.comps = append(n.comps, c)
	}

	if all {
		for _, f := range n.active {
			if len(f.Path.Links) == 0 {
				// Local (same-host) transfer: fixed loopback rate, no
				// fabric contention. Only reachable via a full pass.
				f.rate = n.localBps
				f.unfixed = false
				continue
			}
			if f.mark != ep {
				discover(f.Path.Links[0])
			}
		}
	} else {
		for _, l := range seeds {
			n.ensureLink(l)
			if n.linkSeen[l] != ep {
				discover(l)
			}
		}
	}
	n.csrStart = append(n.csrStart, int32(len(n.csrLinks))) // row sentinel

	// Deterministic component order (min LinkID). The per-component fills
	// are independent, so this fixes the processing order without
	// affecting any float; components are few, insertion sort stays
	// allocation-free.
	for i := 1; i < len(n.comps); i++ {
		c := n.comps[i]
		j := i
		for ; j > 0 && n.comps[j-1].minLink > c.minLink; j-- {
			n.comps[j] = n.comps[j-1]
		}
		n.comps[j] = c
	}

	workers := n.allocWorkers
	if workers > len(n.comps) {
		workers = len(n.comps)
	}
	if workers <= 1 {
		for _, c := range n.comps {
			n.fillComponent(c)
		}
		return
	}
	n.ensurePool(workers)
	n.allocWG.Add(len(n.comps))
	for _, c := range n.comps {
		n.allocJobs <- c
	}
	n.allocWG.Wait()
}

// fillComponent runs progressive filling over one component. Its writes
// (component link residual/counts, component flow rate/unfixed) are disjoint
// from every other component's, so fills may run concurrently.
func (n *Network) fillComponent(c allocComp) {
	// Component is closed: every flow on a component link is in compFlows,
	// so occupancy counts come straight off the index. The component's
	// compLinks range becomes the bottleneck worklist in place (compacted
	// as links saturate; discovery is over, the range is scratch now).
	wl := n.compLinks[c.linkLo:c.linkHi]
	w := wl[:0]
	for _, l := range wl {
		cnt := len(n.linkFlows[l])
		n.counts[l] = cnt
		n.residual[l] = n.linkResidual(l, n.terminal[l])
		if cnt > 0 {
			w = append(w, l)
		}
	}
	wl = w
	unfixedCount := 0
	for fi := c.flowLo; fi < c.flowHi; fi++ {
		f := n.compFlows[fi]
		f.rate = 0
		f.unfixed = true
		unfixedCount++
	}

	for unfixedCount > 0 {
		// Find the bottleneck link: minimal fair share among the links
		// still carrying unfixed flows, smallest LinkID on exact ties.
		// The worklist is compacted in the same sweep so saturated links
		// drop out of later rounds.
		bestShare := math.Inf(1)
		var bottleneck topology.LinkID = -1
		w := wl[:0]
		for _, l := range wl {
			cnt := n.counts[l]
			if cnt <= 0 {
				continue
			}
			w = append(w, l)
			share := n.residual[l] / float64(cnt)
			if share < bestShare || (share == bestShare && (bottleneck == -1 || l < bottleneck)) {
				bestShare = share
				bottleneck = l
			}
		}
		wl = w
		if bottleneck == -1 || math.IsInf(bestShare, 1) {
			break
		}
		// Fix every unfixed flow crossing the bottleneck at bestShare.
		// Every fixed flow subtracts the identical share, so the order
		// the candidates are visited in cannot change the residuals. The
		// flow's links come from the contiguous CSR row built during
		// discovery rather than the per-flow slice header.
		for _, f := range n.linkFlows[bottleneck] {
			if !f.unfixed {
				continue
			}
			f.unfixed = false
			unfixedCount--
			f.rate = bestShare
			for _, l := range n.csrLinks[n.csrStart[f.compIdx]:n.csrStart[f.compIdx+1]] {
				n.residual[l] -= bestShare
				if n.residual[l] < 0 {
					n.residual[l] = 0
				}
				n.counts[l]--
			}
		}
	}
}

// SetAllocWorkers bounds the worker pool that fills allocation components in
// parallel within a single pass (intra-trial parallelism for one giant
// fabric). Width 1 (the default) fills serially; any width produces
// bit-identical results, proven by the sharding golden tests. The pool is
// persistent and lazily grown; passes with fewer components than workers use
// fewer.
func (n *Network) SetAllocWorkers(w int) {
	if w < 1 {
		w = 1
	}
	n.flush()
	n.allocWorkers = w
}

// AllocWorkersSelected reports the configured intra-pass worker width.
func (n *Network) AllocWorkersSelected() int {
	if n.allocWorkers < 1 {
		return 1
	}
	return n.allocWorkers
}

// ensurePool lazily grows the persistent fill-worker pool to the given size.
// Workers park on the job channel between passes; buffered sends keep the
// steady-state dispatch allocation-free.
func (n *Network) ensurePool(workers int) {
	if n.poolSize >= workers {
		return
	}
	if n.allocJobs == nil {
		n.allocJobs = make(chan allocComp, 1024)
	}
	for i := n.poolSize; i < workers; i++ {
		go func() {
			for c := range n.allocJobs {
				n.fillComponent(c)
				n.allocWG.Done()
			}
		}()
	}
	n.poolSize = workers
}

// recomputeEager is the PR 1 allocator: a full progressive-filling pass
// after every mutation, occupancy from the index (AllocIndexed) or from a
// scan of every active flow (AllocScan). Earlier revisions rebuilt
// residual/counts/per-terminal maps on every pass — the per-pass map churn
// this now avoids by reusing the network-owned dense scratch
// (BenchmarkEagerAllocPass guards the allocs/op). The float operation
// sequence is unchanged: every share is residual/count with the identical
// values, and fix order cannot change the residuals, so the mode remains
// bit-identical to the original map-based reference.
func (n *Network) recomputeEager() {
	n.AllocPasses++
	n.epoch++
	ep := n.epoch
	// Candidate links (those carrying at least one flow) gather into the
	// reusable worklist; counts/residual/termEager are dense, epoch-gated
	// by first touch.
	n.workLinks = n.workLinks[:0]
	if n.scanBaseline {
		for _, f := range n.active {
			for _, l := range f.Path.Links {
				if n.linkSeen[l] != ep {
					n.linkSeen[l] = ep
					n.counts[l] = 0
					n.termEager[l] = 0
					n.workLinks = append(n.workLinks, l)
				}
				n.counts[l]++
			}
			if k := len(f.Path.Links); k > 0 {
				n.termEager[f.Path.Links[k-1]]++
			}
		}
		for _, l := range n.workLinks {
			n.residual[l] = n.linkResidual(l, n.termEager[l])
		}
	} else {
		for l, fs := range n.linkFlows {
			if len(fs) > 0 {
				lid := topology.LinkID(l)
				n.counts[lid] = len(fs)
				n.residual[lid] = n.linkResidual(lid, n.terminal[lid])
				n.workLinks = append(n.workLinks, lid)
			}
		}
	}

	unfixedCount := 0
	for _, f := range n.active {
		f.rate = 0
		f.unfixed = false
		if len(f.Path.Links) == 0 {
			f.rate = n.localBps
			continue
		}
		f.unfixed = true
		unfixedCount++
	}

	for unfixedCount > 0 {
		// Find the bottleneck link: minimal fair share among links
		// carrying unfixed flows, smallest LinkID on exact ties. The
		// worklist is compacted in the same sweep.
		bestShare := math.Inf(1)
		var bottleneck topology.LinkID = -1
		w := n.workLinks[:0]
		for _, l := range n.workLinks {
			c := n.counts[l]
			if c <= 0 {
				continue
			}
			w = append(w, l)
			share := n.residual[l] / float64(c)
			if share < bestShare || (share == bestShare && (bottleneck == -1 || l < bottleneck)) {
				bestShare = share
				bottleneck = l
			}
		}
		n.workLinks = w
		if bottleneck == -1 || math.IsInf(bestShare, 1) {
			break
		}
		// Fix every unfixed flow crossing the bottleneck at bestShare.
		// Every fixed flow subtracts the identical share, so the order the
		// candidates are visited in cannot change the resulting residuals.
		fix := func(f *Flow) {
			f.rate = bestShare
			f.unfixed = false
			unfixedCount--
			for _, l := range f.Path.Links {
				n.residual[l] -= bestShare
				if n.residual[l] < 0 {
					n.residual[l] = 0
				}
				n.counts[l]--
			}
		}
		if n.scanBaseline {
			for _, f := range n.active {
				if !f.unfixed {
					continue
				}
				for _, l := range f.Path.Links {
					if l == bottleneck {
						fix(f)
						break
					}
				}
			}
		} else {
			for _, f := range n.linkFlows[bottleneck] {
				if f.unfixed {
					fix(f)
				}
			}
		}
	}
}

func (n *Network) scheduleNextCompletion() {
	if n.completeEvent != nil {
		n.eng.Cancel(n.completeEvent)
		n.completeEvent = nil
	}
	next := math.Inf(1)
	for _, f := range n.active {
		if f.rate <= 0 {
			continue // starved; will resume when background/load changes
		}
		t := f.remaining / f.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	n.completeEvent = n.eng.After(sim.Duration(next), n.completeFn)
}

// completeDue finishes every flow whose remaining volume has reached zero at
// the current instant, then recomputes shares for the survivors.
func (n *Network) completeDue() {
	n.completeEvent = nil
	n.advance()
	const eps = 1.0 // one bit; fluid-model rounding tolerance
	completed := n.doneBuf[:0]
	keep := n.active[:0]
	for _, f := range n.active {
		if f.remaining <= eps {
			f.remaining = 0
			f.done = true
			f.finished = n.eng.Now()
			n.unindexFlow(f)
			completed = append(completed, f) // ascending ID: active is sorted
		} else {
			keep = append(keep, f)
		}
	}
	for i := len(keep); i < len(n.active); i++ {
		n.active[i] = nil
	}
	n.active = keep
	n.history = append(n.history, completed...)
	if n.mode == AllocIncremental {
		for _, f := range completed {
			n.dirtySeeds = append(n.dirtySeeds, f.Path.Links...)
		}
		n.markDirty()
	} else {
		n.recompute()
	}
	for _, f := range completed {
		n.recordFlow(flight.FlowCompleted, f)
		if f.onComplete != nil {
			f.onComplete(f)
		}
		for _, fn := range n.completionFns {
			fn(f)
		}
	}
	n.doneBuf = completed[:0]
}

// flowsOnSorted returns the active flows crossing a link in ascending
// flow-ID order — the occupancy index's slice directly, or (scan baseline) a
// fresh slice built by scanning every active flow as the pre-index
// implementation did. The sorted order makes every telemetry sum independent
// of container iteration order, so all paths produce bit-identical floats.
func (n *Network) flowsOnSorted(link topology.LinkID) []*Flow {
	if n.scanBaseline {
		var fs []*Flow
		for _, f := range n.active { // ascending ID already
			for _, l := range f.Path.Links {
				if l == link {
					fs = append(fs, f)
					break
				}
			}
		}
		return fs
	}
	if int(link) >= len(n.linkFlows) {
		return nil
	}
	return n.linkFlows[link]
}

// LinkStats returns a link's instantaneous utilization fraction, spare
// capacity in bps, and summed shuffle-flow rate in one pass over the flows
// crossing it — the controller's poll reads all three per link per period.
func (n *Network) LinkStats(link topology.LinkID) (utilization, availableBps, shuffleBps float64) {
	n.flush()
	capBps := n.g.Link(link).CapacityBps
	used := n.BackgroundOn(link)
	for _, f := range n.flowsOnSorted(link) {
		used += f.rate
		if f.Kind == Shuffle {
			shuffleBps += f.rate
		}
	}
	utilization = used / capBps
	if utilization > 1 {
		utilization = 1
	}
	if used < capBps {
		availableBps = capBps - used
	}
	return utilization, availableBps, shuffleBps
}

// Utilization returns the instantaneous fraction of a link's capacity in
// use (background + allocated flow rates). This is what the controller's
// link-load update service reads.
func (n *Network) Utilization(link topology.LinkID) float64 {
	u, _, _ := n.LinkStats(link)
	return u
}

// AvailableBps returns the instantaneous spare capacity of a link
// (capacity - background - allocated flow rates), floored at zero.
func (n *Network) AvailableBps(link topology.LinkID) float64 {
	_, a, _ := n.LinkStats(link)
	return a
}

// ShuffleRateOn returns the summed instantaneous rate of shuffle-kind flows
// crossing a link. Pythia uses this to differentiate shuffle load from
// background traffic when estimating available bandwidth.
func (n *Network) ShuffleRateOn(link topology.LinkID) float64 {
	_, _, s := n.LinkStats(link)
	return s
}

// HostTxBits returns cumulative shuffle bits sourced by a host up to the
// current instant, including in-flight progress. The NetFlow substrate
// samples this (Fig. 5 methodology).
func (n *Network) HostTxBits(host topology.NodeID) float64 {
	n.advance()
	if int(host) >= len(n.hostTxBits) {
		return 0
	}
	return n.hostTxBits[host]
}

// LinkBits returns cumulative data bits (excluding background) carried by a
// link.
func (n *Network) LinkBits(link topology.LinkID) float64 {
	n.advance()
	if int(link) >= len(n.linkBits) {
		return 0
	}
	return n.linkBits[link]
}

// NotifyTopology re-evaluates rate allocations after a topology change
// (link failure or recovery). Flows whose paths cross failed links starve
// from this instant; callers that can reroute them (Pythia, Hedera) should
// do so. Without this call, the change takes effect at the next flow event.
func (n *Network) NotifyTopology() {
	n.advance()
	n.mutatedAll()
}

// ActiveList returns a copy of the in-flight flows ordered by ID. Use
// ForEachActive to iterate without the copy.
func (n *Network) ActiveList() []*Flow {
	n.flush()
	return append([]*Flow(nil), n.active...)
}

// ForEachActive calls fn for every in-flight flow in ascending ID order
// without copying. fn may reroute flows (membership is untouched) but must
// not start or complete them.
func (n *Network) ForEachActive(fn func(*Flow)) {
	n.flush()
	for _, f := range n.active {
		fn(f)
	}
}

// FlowsOn returns the active flows traversing a link in ascending flow-ID
// order, useful for elephant detection in the Hedera-like baseline. The
// returned slice is the network's internal index entry: callers must not
// mutate it or hold it across flow starts/completions/reroutes (copy it, or
// use ForEachOn, if they need to).
func (n *Network) FlowsOn(link topology.LinkID) []*Flow {
	n.flush()
	return n.flowsOnSorted(link)
}

// ForEachOn calls fn for every active flow crossing a link in ascending ID
// order without allocating. fn must not start, reroute or complete flows.
func (n *Network) ForEachOn(link topology.LinkID, fn func(*Flow)) {
	n.flush()
	if n.scanBaseline {
		for _, f := range n.active {
			for _, l := range f.Path.Links {
				if l == link {
					fn(f)
					break
				}
			}
		}
		return
	}
	if int(link) >= len(n.linkFlows) {
		return
	}
	for _, f := range n.linkFlows[link] {
		fn(f)
	}
}

// Reroute moves an active flow onto a new path (Hedera-style reallocation).
// Progress is preserved; rates are recomputed. It panics if the flow is done
// or the path invalid.
func (n *Network) Reroute(f *Flow, path topology.Path) {
	if f.done {
		panic("netsim: reroute of completed flow")
	}
	if path.Src != f.Tuple.SrcHost || path.Dst != f.Tuple.DstHost {
		panic("netsim: reroute path endpoints mismatch")
	}
	if err := path.Valid(n.g); err != nil {
		panic(fmt.Sprintf("netsim: reroute invalid path: %v", err))
	}
	n.advance()
	n.unindexFlow(f)
	old := f.Path
	f.Path = path
	n.indexFlow(f)
	if len(path.Links) == 0 {
		f.rate = n.localBps
	}
	if n.mode == AllocIncremental {
		n.dirtySeeds = append(n.dirtySeeds, old.Links...)
		n.mutatedLinks(path.Links)
	} else {
		n.recompute()
	}
}
