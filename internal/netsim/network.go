// Package netsim is a flow-level (fluid) simulator of a multi-path
// datacenter network. TCP flows share each link with max-min fairness,
// recomputed at every flow arrival and departure; constant-bit-rate
// background traffic (the paper's iperf UDP streams used to emulate
// oversubscription) is unresponsive and consumes its configured rate off the
// top of each link it crosses.
//
// Path selection is deliberately external: the ECMP baseline, the
// Hedera-like baseline and the Pythia scheduler all inject flows with a
// chosen topology.Path, so the network model stays policy-free.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// FlowID identifies a flow within one Network.
type FlowID int

// FlowKind tags what a flow carries, for accounting and for the NetFlow
// measurement substrate.
type FlowKind int

const (
	// Shuffle is Hadoop intermediate-data movement (the flows Pythia
	// schedules).
	Shuffle FlowKind = iota
	// Background is other datacenter traffic.
	Background
	// Control is Pythia/OpenFlow control-plane traffic (carried on the
	// management network in the paper; modeled for overhead accounting).
	Control
	// Storage is HDFS block movement (replication pipelines, remote
	// reads) — data traffic that Pythia does not schedule.
	Storage
)

func (k FlowKind) String() string {
	switch k {
	case Shuffle:
		return "shuffle"
	case Background:
		return "background"
	case Control:
		return "control"
	case Storage:
		return "storage"
	}
	return fmt.Sprintf("FlowKind(%d)", int(k))
}

// FiveTuple is the classical flow identity. Pythia cannot know DstPort at
// prediction time (assigned at socket bind), which is why its rules match on
// host pairs; the ECMP baseline hashes the full tuple.
type FiveTuple struct {
	SrcHost  topology.NodeID
	DstHost  topology.NodeID
	SrcPort  uint16
	DstPort  uint16
	Protocol uint8
}

// Flow is a finite-size data transfer in flight.
type Flow struct {
	ID    FlowID
	Tuple FiveTuple
	Kind  FlowKind
	Path  topology.Path
	// SizeBits is the total volume to move.
	SizeBits float64
	// Labels let upper layers (Hadoop, Pythia) attach identity.
	Job, Map, Reduce int

	rate        float64 // current allocated bps
	remaining   float64
	transferred float64
	started     sim.Time
	finished    sim.Time
	done        bool
	onComplete  func(*Flow)
}

// Rate returns the current max-min allocated rate in bps (valid between
// recomputations).
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bits still to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Transferred returns bits moved so far.
func (f *Flow) Transferred() float64 { return f.transferred }

// Started returns the flow start time.
func (f *Flow) Started() sim.Time { return f.started }

// Finished returns the completion time; valid only when Done.
func (f *Flow) Finished() sim.Time { return f.finished }

// Done reports completion.
func (f *Flow) Done() bool { return f.done }

// Duration returns the flow completion time minus start time; valid only
// when Done.
func (f *Flow) Duration() sim.Duration { return f.finished.Sub(f.started) }

// Network simulates the data network over a topology graph.
type Network struct {
	eng *sim.Engine
	g   *topology.Graph

	nextID  FlowID
	active  map[FlowID]*Flow
	history []*Flow

	// linkFlows indexes the active flows by every link they traverse and
	// terminal counts the active flows whose final hop lands on each link
	// (the incast convergence count). Both are maintained incrementally on
	// StartFlow/Reroute/completion so that per-link telemetry and the
	// max-min bottleneck pass cost O(flows-on-link) instead of scanning
	// every active flow per link. Invariant: a path never crosses the same
	// link twice (deterministic forwarding cannot revisit a node without
	// looping forever, which Resolve rejects).
	linkFlows map[topology.LinkID]map[FlowID]*Flow
	terminal  map[topology.LinkID]int

	// scanBaseline reverts telemetry and the allocator's bottleneck pass
	// to the pre-index full-scan implementations. The index is still
	// maintained, so the mode can be flipped at any instant. It exists for
	// golden-equivalence tests and benchmark baselines only.
	scanBaseline bool

	// background CBR load per link, bps.
	background map[topology.LinkID]float64

	// accounting
	lastAdvance   sim.Time
	linkBits      map[topology.LinkID]float64 // data bits carried (excl. background)
	hostTxBits    map[topology.NodeID]float64 // bits sourced per host (shuffle only)
	completionFns []func(*Flow)

	// localBps is the rate for zero-hop flows (source and sink on the
	// same server: a reducer fetching from a co-located mapper goes over
	// loopback/local disk, not the fabric).
	localBps float64

	// Incast models TCP throughput collapse at many-to-one convergence
	// points (Chen et al., the paper's TCP-incast citation): when more
	// than incastThreshold flows terminate at one receiving edge link,
	// that link's usable capacity degrades by incastFactor per extra
	// flow, floored at incastFloor of nominal. Disabled by default.
	incastThreshold int
	incastFactor    float64
	incastFloor     float64

	completeEvent *sim.Event
}

// EnableIncast turns on the many-to-one goodput-collapse model: beyond
// threshold concurrent flows into one receiver link, capacity shrinks by
// factor per additional flow (e.g. 0.05 = 5%), floored at floorFrac of
// nominal. Pass threshold <= 0 to disable.
func (n *Network) EnableIncast(threshold int, factor, floorFrac float64) {
	if factor < 0 || factor >= 1 || floorFrac <= 0 || floorFrac > 1 {
		panic("netsim: bad incast parameters")
	}
	n.advance()
	n.incastThreshold = threshold
	n.incastFactor = factor
	n.incastFloor = floorFrac
	n.recompute()
}

// DefaultLocalBps is the default loopback/local-fetch rate (8 Gbps —
// comfortably above the 1 Gbps NICs so local fetches are never the
// bottleneck, matching the paper's in-memory intermediate data setup).
const DefaultLocalBps = 8e9

// SetLocalBps overrides the loopback transfer rate for zero-hop flows.
func (n *Network) SetLocalBps(bps float64) {
	if bps <= 0 {
		panic("netsim: non-positive local rate")
	}
	n.advance()
	n.localBps = bps
	n.recompute()
}

// New creates a network simulator bound to an engine and a topology.
func New(eng *sim.Engine, g *topology.Graph) *Network {
	return &Network{
		eng:        eng,
		g:          g,
		active:     make(map[FlowID]*Flow),
		linkFlows:  make(map[topology.LinkID]map[FlowID]*Flow),
		terminal:   make(map[topology.LinkID]int),
		background: make(map[topology.LinkID]float64),
		linkBits:   make(map[topology.LinkID]float64),
		hostTxBits: make(map[topology.NodeID]float64),
		localBps:   DefaultLocalBps,
	}
}

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// SetBackground sets the CBR background load on a link in bps, clamped to
// [0, capacity]. Changing background reshapes the fair shares of all active
// flows immediately.
func (n *Network) SetBackground(link topology.LinkID, bps float64) {
	capBps := n.g.Link(link).CapacityBps
	if bps < 0 {
		bps = 0
	}
	if bps > capBps {
		bps = capBps
	}
	n.advance()
	if bps == 0 {
		delete(n.background, link)
	} else {
		n.background[link] = bps
	}
	n.recompute()
}

// BackgroundOn returns the configured CBR load on a link.
func (n *Network) BackgroundOn(link topology.LinkID) float64 { return n.background[link] }

// OnFlowComplete registers a callback invoked for every completing flow
// (after the flow's own callback).
func (n *Network) OnFlowComplete(fn func(*Flow)) {
	n.completionFns = append(n.completionFns, fn)
}

// StartFlow injects a flow on the given path. sizeBits must be positive and
// the path valid for the tuple endpoints. onComplete (may be nil) fires at
// completion time. The returned flow is live immediately.
func (n *Network) StartFlow(tuple FiveTuple, kind FlowKind, path topology.Path, sizeBits float64, job, mapID, reduce int, onComplete func(*Flow)) *Flow {
	if sizeBits <= 0 {
		panic("netsim: StartFlow with non-positive size")
	}
	if path.Src != tuple.SrcHost || path.Dst != tuple.DstHost {
		panic("netsim: path endpoints do not match tuple")
	}
	if err := path.Valid(n.g); err != nil {
		panic(fmt.Sprintf("netsim: invalid path: %v", err))
	}
	n.advance()
	f := &Flow{
		ID:        n.nextID,
		Tuple:     tuple,
		Kind:      kind,
		Path:      path,
		SizeBits:  sizeBits,
		remaining: sizeBits,
		started:   n.eng.Now(),
		Job:       job, Map: mapID, Reduce: reduce,
		onComplete: onComplete,
	}
	n.nextID++
	n.active[f.ID] = f
	n.indexFlow(f)
	n.recompute()
	return f
}

// indexFlow adds a flow to the per-link occupancy index.
func (n *Network) indexFlow(f *Flow) {
	for _, l := range f.Path.Links {
		set := n.linkFlows[l]
		if set == nil {
			set = make(map[FlowID]*Flow)
			n.linkFlows[l] = set
		}
		set[f.ID] = f
	}
	if k := len(f.Path.Links); k > 0 {
		n.terminal[f.Path.Links[k-1]]++
	}
}

// unindexFlow removes a flow from the per-link occupancy index.
func (n *Network) unindexFlow(f *Flow) {
	for _, l := range f.Path.Links {
		if set := n.linkFlows[l]; set != nil {
			delete(set, f.ID)
			if len(set) == 0 {
				delete(n.linkFlows, l)
			}
		}
	}
	if k := len(f.Path.Links); k > 0 {
		last := f.Path.Links[k-1]
		if n.terminal[last]--; n.terminal[last] == 0 {
			delete(n.terminal, last)
		}
	}
}

// SetScanBaseline toggles the pre-index reference implementations: per-link
// telemetry and the allocator's bottleneck pass scan every active flow
// instead of consulting the occupancy index. The index is maintained either
// way, so the mode can be flipped at any time. Used by golden-equivalence
// tests and benchmark baselines; production callers never need it.
func (n *Network) SetScanBaseline(on bool) { n.scanBaseline = on }

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.active) }

// History returns all completed flows in completion order.
func (n *Network) History() []*Flow { return append([]*Flow(nil), n.history...) }

// advance accrues transfer progress from lastAdvance to now at current
// rates. It must be called before any change to the active set or rates.
func (n *Network) advance() {
	now := n.eng.Now()
	dt := float64(now.Sub(n.lastAdvance))
	if dt <= 0 {
		n.lastAdvance = now
		return
	}
	for _, f := range n.active {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		f.transferred += moved
		if f.Kind == Shuffle && len(f.Path.Links) > 0 {
			n.hostTxBits[f.Tuple.SrcHost] += moved
		}
		for _, l := range f.Path.Links {
			n.linkBits[l] += moved
		}
	}
	n.lastAdvance = now
}

// recompute performs max-min fair allocation (progressive filling) across
// all active flows and reschedules the next-completion event.
func (n *Network) recompute() {
	// Residual capacity per link after CBR background. Link occupancy
	// comes straight from the index; the scan baseline rebuilds it from
	// scratch the way the pre-index implementation did.
	residual := make(map[topology.LinkID]float64)
	counts := make(map[topology.LinkID]int, len(n.linkFlows))
	var terminal map[topology.LinkID]int // flows ending on this link
	if n.scanBaseline {
		terminal = make(map[topology.LinkID]int)
		for _, f := range n.active {
			for _, l := range f.Path.Links {
				counts[l]++
			}
			if k := len(f.Path.Links); k > 0 {
				terminal[f.Path.Links[k-1]]++
			}
		}
	} else {
		for l, fs := range n.linkFlows {
			counts[l] = len(fs)
		}
		terminal = n.terminal
	}
	for l, c := range counts {
		if c == 0 {
			continue
		}
		if !n.g.LinkUp(l) {
			// A failed link carries nothing: flows routed across it
			// starve until rerouted or the link recovers.
			residual[l] = 0
			continue
		}
		capBps := n.g.Link(l).CapacityBps
		if n.incastThreshold > 0 {
			if extra := terminal[l] - n.incastThreshold; extra > 0 {
				eff := 1 - n.incastFactor*float64(extra)
				if eff < n.incastFloor {
					eff = n.incastFloor
				}
				capBps *= eff
			}
		}
		r := capBps - n.background[l]
		if r < 0 {
			r = 0
		}
		residual[l] = r
	}

	unfixed := make(map[FlowID]*Flow, len(n.active))
	for id, f := range n.active {
		f.rate = 0
		if len(f.Path.Links) == 0 {
			// Local (same-host) transfer: fixed loopback rate, no
			// fabric contention.
			f.rate = n.localBps
			continue
		}
		unfixed[id] = f
	}

	for len(unfixed) > 0 {
		// Find the bottleneck link: minimal fair share among links
		// carrying unfixed flows.
		bestShare := math.Inf(1)
		var bottleneck topology.LinkID = -1
		for l, c := range counts {
			if c <= 0 {
				continue
			}
			share := residual[l] / float64(c)
			if share < bestShare || (share == bestShare && (bottleneck == -1 || l < bottleneck)) {
				bestShare = share
				bottleneck = l
			}
		}
		if bottleneck == -1 {
			break
		}
		if math.IsInf(bestShare, 1) {
			break
		}
		// Fix every unfixed flow crossing the bottleneck at bestShare.
		// Every fixed flow subtracts the identical share, so the order the
		// candidates are visited in cannot change the resulting residuals.
		fix := func(id FlowID, f *Flow) {
			f.rate = bestShare
			delete(unfixed, id)
			for _, l := range f.Path.Links {
				residual[l] -= bestShare
				if residual[l] < 0 {
					residual[l] = 0
				}
				counts[l]--
			}
		}
		if n.scanBaseline {
			for id, f := range unfixed {
				for _, l := range f.Path.Links {
					if l == bottleneck {
						fix(id, f)
						break
					}
				}
			}
		} else {
			for id, f := range n.linkFlows[bottleneck] {
				if _, ok := unfixed[id]; ok {
					fix(id, f)
				}
			}
		}
	}

	n.scheduleNextCompletion()
}

func (n *Network) scheduleNextCompletion() {
	if n.completeEvent != nil {
		n.eng.Cancel(n.completeEvent)
		n.completeEvent = nil
	}
	next := math.Inf(1)
	for _, f := range n.active {
		if f.rate <= 0 {
			continue // starved; will resume when background/load changes
		}
		t := f.remaining / f.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	n.completeEvent = n.eng.After(sim.Duration(next), n.completeDue)
}

// completeDue finishes every flow whose remaining volume has reached zero at
// the current instant, then recomputes shares for the survivors.
func (n *Network) completeDue() {
	n.completeEvent = nil
	n.advance()
	const eps = 1.0 // one bit; fluid-model rounding tolerance
	var completed []*Flow
	for id, f := range n.active {
		if f.remaining <= eps {
			f.remaining = 0
			f.done = true
			f.finished = n.eng.Now()
			delete(n.active, id)
			n.unindexFlow(f)
			completed = append(completed, f)
		}
	}
	// Deterministic callback order.
	for i := 0; i < len(completed); i++ {
		for j := i + 1; j < len(completed); j++ {
			if completed[j].ID < completed[i].ID {
				completed[i], completed[j] = completed[j], completed[i]
			}
		}
	}
	for _, f := range completed {
		n.history = append(n.history, f)
	}
	n.recompute()
	for _, f := range completed {
		if f.onComplete != nil {
			f.onComplete(f)
		}
		for _, fn := range n.completionFns {
			fn(f)
		}
	}
}

// flowsOnSorted returns the active flows crossing a link in ascending
// flow-ID order — via the occupancy index, or (scan baseline) by scanning
// every active flow as the pre-index implementation did. The sorted order
// makes every telemetry sum independent of map iteration order, so the
// indexed and scan paths produce bit-identical floats.
func (n *Network) flowsOnSorted(link topology.LinkID) []*Flow {
	var fs []*Flow
	if n.scanBaseline {
		for _, f := range n.active {
			for _, l := range f.Path.Links {
				if l == link {
					fs = append(fs, f)
					break
				}
			}
		}
	} else {
		set := n.linkFlows[link]
		if len(set) == 0 {
			return nil
		}
		fs = make([]*Flow, 0, len(set))
		for _, f := range set {
			fs = append(fs, f)
		}
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
	return fs
}

// LinkStats returns a link's instantaneous utilization fraction, spare
// capacity in bps, and summed shuffle-flow rate in one pass over the flows
// crossing it — the controller's poll reads all three per link per period.
func (n *Network) LinkStats(link topology.LinkID) (utilization, availableBps, shuffleBps float64) {
	capBps := n.g.Link(link).CapacityBps
	used := n.background[link]
	for _, f := range n.flowsOnSorted(link) {
		used += f.rate
		if f.Kind == Shuffle {
			shuffleBps += f.rate
		}
	}
	utilization = used / capBps
	if utilization > 1 {
		utilization = 1
	}
	if used < capBps {
		availableBps = capBps - used
	}
	return utilization, availableBps, shuffleBps
}

// Utilization returns the instantaneous fraction of a link's capacity in
// use (background + allocated flow rates). This is what the controller's
// link-load update service reads.
func (n *Network) Utilization(link topology.LinkID) float64 {
	u, _, _ := n.LinkStats(link)
	return u
}

// AvailableBps returns the instantaneous spare capacity of a link
// (capacity - background - allocated flow rates), floored at zero.
func (n *Network) AvailableBps(link topology.LinkID) float64 {
	_, a, _ := n.LinkStats(link)
	return a
}

// ShuffleRateOn returns the summed instantaneous rate of shuffle-kind flows
// crossing a link. Pythia uses this to differentiate shuffle load from
// background traffic when estimating available bandwidth.
func (n *Network) ShuffleRateOn(link topology.LinkID) float64 {
	_, _, s := n.LinkStats(link)
	return s
}

// HostTxBits returns cumulative shuffle bits sourced by a host up to the
// current instant, including in-flight progress. The NetFlow substrate
// samples this (Fig. 5 methodology).
func (n *Network) HostTxBits(host topology.NodeID) float64 {
	n.advance()
	return n.hostTxBits[host]
}

// LinkBits returns cumulative data bits (excluding background) carried by a
// link.
func (n *Network) LinkBits(link topology.LinkID) float64 {
	n.advance()
	return n.linkBits[link]
}

// NotifyTopology re-evaluates rate allocations after a topology change
// (link failure or recovery). Flows whose paths cross failed links starve
// from this instant; callers that can reroute them (Pythia, Hedera) should
// do so. Without this call, the change takes effect at the next flow event.
func (n *Network) NotifyTopology() {
	n.advance()
	n.recompute()
}

// ActiveList returns the in-flight flows ordered by ID.
func (n *Network) ActiveList() []*Flow {
	fs := make([]*Flow, 0, len(n.active))
	for _, f := range n.active {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
	return fs
}

// FlowsOn returns the active flows traversing a link, useful for elephant
// detection in the Hedera-like baseline. Order is by flow ID.
func (n *Network) FlowsOn(link topology.LinkID) []*Flow {
	return n.flowsOnSorted(link)
}

// Reroute moves an active flow onto a new path (Hedera-style reallocation).
// Progress is preserved; rates are recomputed. It panics if the flow is done
// or the path invalid.
func (n *Network) Reroute(f *Flow, path topology.Path) {
	if f.done {
		panic("netsim: reroute of completed flow")
	}
	if path.Src != f.Tuple.SrcHost || path.Dst != f.Tuple.DstHost {
		panic("netsim: reroute path endpoints mismatch")
	}
	if err := path.Valid(n.g); err != nil {
		panic(fmt.Sprintf("netsim: reroute invalid path: %v", err))
	}
	n.advance()
	n.unindexFlow(f)
	f.Path = path
	n.indexFlow(f)
	n.recompute()
}
