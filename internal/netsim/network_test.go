package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"pythia/internal/sim"
	"pythia/internal/topology"
)

// testbed returns the paper topology: 2 racks x 5 hosts, 2 trunks, 1 Gbps.
func testbed() (*sim.Engine, *Network, []topology.NodeID, []topology.LinkID) {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	return eng, New(eng, g), hosts, trunks
}

func pathOf(t *testing.T, n *Network, src, dst topology.NodeID, idx int) topology.Path {
	t.Helper()
	paths := n.Graph().KShortestPaths(src, dst, 4)
	if len(paths) <= idx {
		t.Fatalf("only %d paths from %d to %d", len(paths), src, dst)
	}
	return paths[idx]
}

func tup(src, dst topology.NodeID, sp, dp uint16) FiveTuple {
	return FiveTuple{SrcHost: src, DstHost: dst, SrcPort: sp, DstPort: dp, Protocol: 6}
}

func TestSingleFlowFullRate(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	var done *Flow
	n.StartFlow(tup(hosts[0], hosts[5], 1000, 2000), Shuffle, p, 1e9, 0, 0, 0, func(f *Flow) { done = f })
	eng.Run()
	if done == nil {
		t.Fatal("flow did not complete")
	}
	// 1 Gbit over an uncontended 1 Gbps path = 1 second.
	if d := float64(done.Duration()); math.Abs(d-1.0) > 1e-6 {
		t.Fatalf("duration = %v, want 1s", d)
	}
	if !done.Done() || done.Remaining() != 0 {
		t.Fatal("completion state inconsistent")
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	p2 := pathOf(t, n, hosts[1], hosts[5], 0)
	// Both use trunk0? Ensure same trunk: path index 0 for both should pick
	// lowest link IDs; they share the host5 edge link anyway (dst edge).
	var t1, t2 sim.Time
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 1e9, 0, 0, 0, func(f *Flow) { t1 = f.Finished() })
	n.StartFlow(tup(hosts[1], hosts[5], 2, 2), Shuffle, p2, 1e9, 0, 1, 0, func(f *Flow) { t2 = f.Finished() })
	eng.Run()
	// Shared destination edge link: each gets 500 Mbps, so 2 s each.
	if math.Abs(float64(t1)-2) > 1e-6 || math.Abs(float64(t2)-2) > 1e-6 {
		t.Fatalf("finish times = %v, %v, want 2s both", t1, t2)
	}
}

func TestDisjointPathsNoInterference(t *testing.T) {
	eng, n, hosts, _ := testbed()
	pA := pathOf(t, n, hosts[0], hosts[5], 0) // trunk 0
	pB := pathOf(t, n, hosts[1], hosts[6], 1) // trunk 1
	var tA, tB sim.Time
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, pA, 1e9, 0, 0, 0, func(f *Flow) { tA = f.Finished() })
	n.StartFlow(tup(hosts[1], hosts[6], 2, 2), Shuffle, pB, 1e9, 0, 1, 1, func(f *Flow) { tB = f.Finished() })
	eng.Run()
	if math.Abs(float64(tA)-1) > 1e-6 || math.Abs(float64(tB)-1) > 1e-6 {
		t.Fatalf("disjoint flows = %v, %v, want 1s both", tA, tB)
	}
}

func TestCollidingTrunkHalvesRate(t *testing.T) {
	eng, n, hosts, _ := testbed()
	pA := pathOf(t, n, hosts[0], hosts[5], 0)
	pB := pathOf(t, n, hosts[1], hosts[6], 0) // same trunk as pA
	var tA, tB sim.Time
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, pA, 1e9, 0, 0, 0, func(f *Flow) { tA = f.Finished() })
	n.StartFlow(tup(hosts[1], hosts[6], 2, 2), Shuffle, pB, 1e9, 0, 1, 1, func(f *Flow) { tB = f.Finished() })
	eng.Run()
	if math.Abs(float64(tA)-2) > 1e-6 || math.Abs(float64(tB)-2) > 1e-6 {
		t.Fatalf("colliding flows = %v, %v, want 2s both", tA, tB)
	}
}

func TestBackgroundReducesRate(t *testing.T) {
	eng, n, hosts, trunks := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	// Identify which trunk p uses and load it to 50%.
	var used topology.LinkID = -1
	for _, l := range p.Links {
		for _, tr := range trunks {
			if l == tr {
				used = l
			}
		}
	}
	if used == -1 {
		t.Fatal("path does not cross a trunk")
	}
	n.SetBackground(used, 0.5*topology.Gbps)
	var done sim.Time
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 1e9, 0, 0, 0, func(f *Flow) { done = f.Finished() })
	eng.Run()
	if math.Abs(float64(done)-2) > 1e-6 {
		t.Fatalf("flow with 50%% background = %v, want 2s", done)
	}
}

func TestBackgroundClamping(t *testing.T) {
	_, n, _, trunks := testbed()
	n.SetBackground(trunks[0], 5*topology.Gbps)
	if got := n.BackgroundOn(trunks[0]); got != topology.Gbps {
		t.Fatalf("background clamped to %v, want capacity", got)
	}
	n.SetBackground(trunks[0], -1)
	if got := n.BackgroundOn(trunks[0]); got != 0 {
		t.Fatalf("negative background = %v, want 0", got)
	}
}

func TestStarvedFlowResumesWhenBackgroundDrops(t *testing.T) {
	eng, n, hosts, trunks := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	var used topology.LinkID = -1
	for _, l := range p.Links {
		for _, tr := range trunks {
			if l == tr {
				used = l
			}
		}
	}
	n.SetBackground(used, topology.Gbps) // fully saturated: flow starves
	var done sim.Time
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 1e9, 0, 0, 0, func(f *Flow) { done = f.Finished() })
	eng.At(10, func() { n.SetBackground(used, 0) })
	eng.Run()
	// Starved for 10 s, then 1 s at full rate.
	if math.Abs(float64(done)-11) > 1e-6 {
		t.Fatalf("resumed flow finished at %v, want 11s", done)
	}
}

func TestLocalZeroHopFlow(t *testing.T) {
	eng, n, hosts, _ := testbed()
	local := topology.Path{Src: hosts[0], Dst: hosts[0]}
	var done *Flow
	n.StartFlow(tup(hosts[0], hosts[0], 1, 1), Shuffle, local, 8e9, 0, 0, 0, func(f *Flow) { done = f })
	eng.Run()
	if done == nil {
		t.Fatal("local flow did not complete")
	}
	if d := float64(done.Duration()); math.Abs(d-1) > 1e-6 {
		t.Fatalf("local 8 Gbit at default 8 Gbps = %v, want 1s", d)
	}
	if n.HostTxBits(hosts[0]) != 0 {
		t.Fatal("local flow counted as network TX")
	}
}

func TestSetLocalBps(t *testing.T) {
	eng, n, hosts, _ := testbed()
	n.SetLocalBps(1e9)
	local := topology.Path{Src: hosts[0], Dst: hosts[0]}
	var done *Flow
	n.StartFlow(tup(hosts[0], hosts[0], 1, 1), Shuffle, local, 1e9, 0, 0, 0, func(f *Flow) { done = f })
	eng.Run()
	if d := float64(done.Duration()); math.Abs(d-1) > 1e-6 {
		t.Fatalf("duration = %v, want 1s", d)
	}
}

func TestStartFlowValidation(t *testing.T) {
	_, n, hosts, _ := testbed()
	p := topology.Path{Src: hosts[0], Dst: hosts[0]}
	for _, fn := range []func(){
		func() { n.StartFlow(tup(hosts[0], hosts[0], 1, 1), Shuffle, p, 0, 0, 0, 0, nil) },
		func() { n.StartFlow(tup(hosts[1], hosts[0], 1, 1), Shuffle, p, 1, 0, 0, 0, nil) },
		func() { n.SetLocalBps(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid call did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestUtilizationAndAvailable(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 1e12, 0, 0, 0, nil)
	eng.RunUntil(0.1)
	for _, l := range p.Links {
		if u := n.Utilization(l); math.Abs(u-1.0) > 1e-9 {
			t.Fatalf("utilization on path link = %v, want 1.0", u)
		}
		if a := n.AvailableBps(l); a != 0 {
			t.Fatalf("available on saturated link = %v, want 0", a)
		}
	}
	// An unused link is idle.
	other := pathOf(t, n, hosts[1], hosts[6], 1)
	idle := other.Links[1] // trunk of the other path
	if u := n.Utilization(idle); u != 0 {
		t.Fatalf("idle link utilization = %v", u)
	}
	if a := n.AvailableBps(idle); a != topology.Gbps {
		t.Fatalf("idle link available = %v", a)
	}
}

func TestHostTxAccounting(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 1e9, 0, 0, 0, nil)
	eng.RunUntil(0.5)
	got := n.HostTxBits(hosts[0])
	if math.Abs(got-0.5e9) > 1e3 {
		t.Fatalf("TX after 0.5s = %v, want 5e8", got)
	}
	eng.Run()
	if got := n.HostTxBits(hosts[0]); math.Abs(got-1e9) > 1e3 {
		t.Fatalf("final TX = %v, want 1e9", got)
	}
}

func TestLinkBitsAccounting(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 2e9, 0, 0, 0, nil)
	eng.Run()
	for _, l := range p.Links {
		if got := n.LinkBits(l); math.Abs(got-2e9) > 1e3 {
			t.Fatalf("link %d carried %v bits, want 2e9", l, got)
		}
	}
}

func TestBackgroundDoesNotCountAsData(t *testing.T) {
	eng, n, _, trunks := testbed()
	n.SetBackground(trunks[0], 0.9*topology.Gbps)
	eng.RunUntil(10)
	if got := n.LinkBits(trunks[0]); got != 0 {
		t.Fatalf("background counted as data: %v bits", got)
	}
}

func TestFlowsOn(t *testing.T) {
	eng, n, hosts, _ := testbed()
	pA := pathOf(t, n, hosts[0], hosts[5], 0)
	pB := pathOf(t, n, hosts[1], hosts[6], 0)
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, pA, 1e12, 0, 0, 0, nil)
	n.StartFlow(tup(hosts[1], hosts[6], 2, 2), Shuffle, pB, 1e12, 0, 1, 1, nil)
	eng.RunUntil(0.01)
	trunk := pA.Links[1]
	fs := n.FlowsOn(trunk)
	if len(fs) != 2 {
		t.Fatalf("FlowsOn trunk = %d flows, want 2", len(fs))
	}
	if fs[0].ID > fs[1].ID {
		t.Fatal("FlowsOn not ordered by ID")
	}
	edge := pA.Links[0]
	if fs := n.FlowsOn(edge); len(fs) != 1 {
		t.Fatalf("FlowsOn src edge = %d, want 1", len(fs))
	}
}

func TestReroute(t *testing.T) {
	eng, n, hosts, trunks := testbed()
	p0 := pathOf(t, n, hosts[0], hosts[5], 0)
	p1 := pathOf(t, n, hosts[0], hosts[5], 1)
	// Saturate trunk0 with background; flow starts there, then is rerouted.
	var onP0 topology.LinkID = -1
	for _, l := range p0.Links {
		for _, tr := range trunks {
			if l == tr {
				onP0 = l
			}
		}
	}
	n.SetBackground(onP0, topology.Gbps)
	var done sim.Time
	f := n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p0, 1e9, 0, 0, 0, func(f *Flow) { done = f.Finished() })
	eng.At(5, func() { n.Reroute(f, p1) })
	eng.Run()
	// Starved 5 s on trunk0, then 1 s on trunk1.
	if math.Abs(float64(done)-6) > 1e-6 {
		t.Fatalf("rerouted flow finished at %v, want 6s", done)
	}
}

func TestRerouteValidation(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	f := n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 1e6, 0, 0, 0, nil)
	wrong := pathOf(t, n, hosts[1], hosts[6], 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("reroute with mismatched endpoints did not panic")
			}
		}()
		n.Reroute(f, wrong)
	}()
	eng.Run()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("reroute of done flow did not panic")
			}
		}()
		n.Reroute(f, p)
	}()
}

func TestHistoryOrder(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 2e9, 0, 0, 0, nil)
	n.StartFlow(tup(hosts[1], hosts[6], 2, 2), Shuffle, pathOf(t, n, hosts[1], hosts[6], 1), 1e9, 0, 1, 1, nil)
	eng.Run()
	h := n.History()
	if len(h) != 2 {
		t.Fatalf("history = %d, want 2", len(h))
	}
	if h[0].Finished() > h[1].Finished() {
		t.Fatal("history not in completion order")
	}
}

func TestOnFlowCompleteGlobalHook(t *testing.T) {
	eng, n, hosts, _ := testbed()
	count := 0
	n.OnFlowComplete(func(f *Flow) { count++ })
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 1e6, 0, 0, 0, nil)
	n.StartFlow(tup(hosts[0], hosts[5], 1, 2), Shuffle, p, 1e6, 0, 0, 1, nil)
	eng.Run()
	if count != 2 {
		t.Fatalf("global hook fired %d times, want 2", count)
	}
}

func TestFlowKindString(t *testing.T) {
	if Shuffle.String() != "shuffle" || Background.String() != "background" || Control.String() != "control" {
		t.Fatal("FlowKind strings wrong")
	}
	if FlowKind(42).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

// Property: conservation — total bits delivered equals flow size for any
// random set of flows on the testbed, and the sum of rates on any link never
// exceeds its residual capacity.
func TestPropertyConservationAndCapacity(t *testing.T) {
	f := func(sizes []uint8, pathSel []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 30 {
			return true
		}
		eng, n, hosts, _ := testbed()
		g := n.Graph()
		type want struct {
			f    *Flow
			size float64
		}
		var wants []want
		for i, s := range sizes {
			size := (float64(s) + 1) * 1e7
			src := hosts[i%5]
			dst := hosts[5+(i+3)%5]
			sel := 0
			if i < len(pathSel) {
				sel = int(pathSel[i]) % 2
			}
			paths := g.KShortestPaths(src, dst, 2)
			p := paths[sel%len(paths)]
			fl := n.StartFlow(tup(src, dst, uint16(i), uint16(i+1)), Shuffle, p, size, 0, i, 0, nil)
			wants = append(wants, want{fl, size})
		}
		// Capacity check mid-flight.
		eng.RunUntil(0.001)
		for _, l := range g.Links() {
			sum := 0.0
			for _, fl := range n.FlowsOn(l.ID) {
				sum += fl.Rate()
			}
			if sum > l.CapacityBps*(1+1e-9) {
				return false
			}
		}
		eng.Run()
		for _, w := range wants {
			if !w.f.Done() {
				return false
			}
			if math.Abs(w.f.Transferred()-w.size) > 10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-min fairness — with n identical flows on one bottleneck,
// each gets capacity/n.
func TestPropertyEqualShares(t *testing.T) {
	for _, count := range []int{1, 2, 3, 5, 8} {
		eng, n, hosts, _ := testbed()
		p := pathOf(t, n, hosts[0], hosts[5], 0)
		for i := 0; i < count; i++ {
			n.StartFlow(tup(hosts[0], hosts[5], uint16(i), 1), Shuffle, p, 1e12, 0, i, 0, nil)
		}
		eng.RunUntil(0.001)
		wantRate := topology.Gbps / float64(count)
		for _, fl := range n.FlowsOn(p.Links[0]) {
			if math.Abs(fl.Rate()-wantRate) > 1 {
				t.Fatalf("count=%d rate=%v want=%v", count, fl.Rate(), wantRate)
			}
		}
	}
}

func BenchmarkRecompute100Flows(b *testing.B) {
	eng, n, hosts, _ := testbed()
	g := n.Graph()
	paths := g.KShortestPaths(hosts[0], hosts[5], 2)
	for i := 0; i < 100; i++ {
		n.StartFlow(tup(hosts[i%5], hosts[5+i%5], uint16(i), 1), Shuffle,
			g.KShortestPaths(hosts[i%5], hosts[5+i%5], 2)[i%2], 1e15, 0, i, 0, nil)
	}
	_ = paths
	eng.RunUntil(0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.recompute()
	}
}
