package netsim

import (
	"math"
	"testing"

	"pythia/internal/sim"
)

// These tests cover the failure-injection semantics: a flow whose path
// crosses a downed link starves immediately (once NotifyTopology runs) and
// resumes when the link recovers or the flow is rerouted.

func TestFlowStarvesOnLinkFailure(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	var done sim.Time
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 2e9, 0, 0, 0,
		func(f *Flow) { done = f.Finished() })
	// Fail the trunk at t=1 (half transferred), restore at t=5.
	trunk := p.Links[1]
	eng.At(1, func() {
		n.Graph().SetLinkUp(trunk, false)
		n.NotifyTopology()
	})
	eng.At(5, func() {
		n.Graph().SetLinkUp(trunk, true)
		n.NotifyTopology()
	})
	eng.Run()
	// 1 s at 1 Gbps + 4 s starved + 1 s to finish = 6 s.
	if math.Abs(float64(done)-6) > 1e-6 {
		t.Fatalf("flow finished at %v, want 6s (starve window honored)", done)
	}
}

func TestFailureOnlyAffectsCrossingFlows(t *testing.T) {
	eng, n, hosts, _ := testbed()
	pA := pathOf(t, n, hosts[0], hosts[5], 0)
	pB := pathOf(t, n, hosts[1], hosts[6], 1) // other trunk
	var tA, tB sim.Time
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, pA, 2e9, 0, 0, 0, func(f *Flow) { tA = f.Finished() })
	n.StartFlow(tup(hosts[1], hosts[6], 2, 2), Shuffle, pB, 2e9, 0, 1, 1, func(f *Flow) { tB = f.Finished() })
	eng.At(0.5, func() {
		n.Graph().SetLinkUp(pA.Links[1], false)
		n.NotifyTopology()
	})
	eng.At(4, func() {
		n.Graph().SetLinkUp(pA.Links[1], true)
		n.NotifyTopology()
	})
	eng.Run()
	if math.Abs(float64(tB)-2) > 1e-6 {
		t.Fatalf("unaffected flow finished at %v, want 2s", tB)
	}
	if math.Abs(float64(tA)-5.5) > 1e-6 {
		t.Fatalf("affected flow finished at %v, want 5.5s", tA)
	}
}

func TestRerouteRescuesStarvedFlow(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p0 := pathOf(t, n, hosts[0], hosts[5], 0)
	p1 := pathOf(t, n, hosts[0], hosts[5], 1)
	var done sim.Time
	f := n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p0, 2e9, 0, 0, 0,
		func(fl *Flow) { done = fl.Finished() })
	eng.At(1, func() {
		n.Graph().SetLinkUp(p0.Links[1], false)
		n.NotifyTopology()
	})
	eng.At(3, func() { n.Reroute(f, p1) })
	eng.Run()
	// 1 s transferred, 2 s starved, 1 s on the new trunk.
	if math.Abs(float64(done)-4) > 1e-6 {
		t.Fatalf("rescued flow finished at %v, want 4s", done)
	}
}

func TestActiveList(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 1e12, 0, 0, 0, nil)
	n.StartFlow(tup(hosts[1], hosts[6], 2, 2), Shuffle, pathOf(t, n, hosts[1], hosts[6], 1), 1e12, 0, 1, 1, nil)
	eng.RunUntil(0.01)
	fs := n.ActiveList()
	if len(fs) != 2 {
		t.Fatalf("active = %d", len(fs))
	}
	if fs[0].ID > fs[1].ID {
		t.Fatal("not ordered by ID")
	}
}

func TestNotifyTopologyPreservesProgress(t *testing.T) {
	eng, n, hosts, _ := testbed()
	p := pathOf(t, n, hosts[0], hosts[5], 0)
	f := n.StartFlow(tup(hosts[0], hosts[5], 1, 1), Shuffle, p, 4e9, 0, 0, 0, nil)
	eng.At(1, func() {
		n.NotifyTopology() // no actual change: must be a harmless no-op
		if math.Abs(f.Transferred()-1e9) > 1e3 {
			t.Errorf("progress after 1s = %v, want 1e9", f.Transferred())
		}
	})
	eng.Run()
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
}
