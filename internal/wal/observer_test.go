package wal

import (
	"bytes"
	"testing"
)

// TestObserverHooks: every journal lifecycle event fires its hook with the
// right payload, and nil hooks are skipped without incident.
func TestObserverHooks(t *testing.T) {
	var (
		appends     int
		appendBytes int
		fsyncs      int
		rotations   int
		snapshots   int
		snapBytes   int
		compactions int
	)
	obs := &Observer{
		Append:   func(n int) { appends++; appendBytes += n },
		Fsync:    func(sec float64) { fsyncs++; _ = sec },
		Rotate:   func() { rotations++ },
		Snapshot: func(n int) { snapshots++; snapBytes += n },
		Compact:  func(n int) { compactions += n },
	}
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, SyncEvery: 1, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if rotations != 1 {
		t.Fatalf("opening an empty journal should rotate once, got %d", rotations)
	}
	rec := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 3; i++ { // 40+8 byte frames against a 64-byte segment: every append rotates
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if appends != 3 || appendBytes != 120 {
		t.Fatalf("appends=%d bytes=%d, want 3/120", appends, appendBytes)
	}
	if fsyncs == 0 {
		t.Fatal("SyncEvery=1 must fire the fsync hook")
	}
	if rotations < 3 {
		t.Fatalf("rotations=%d, want >= 3 with 48-byte frames in 64-byte segments", rotations)
	}
	if err := l.WriteSnapshot(3, []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	if snapshots != 1 || snapBytes != len("snapshot") {
		t.Fatalf("snapshots=%d bytes=%d, want 1/%d", snapshots, snapBytes, len("snapshot"))
	}
	if _, err := l.Compact(4); err != nil {
		t.Fatal(err)
	}
	if compactions == 0 {
		t.Fatal("compaction removed segments but the hook did not fire")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A partially populated observer (and absent hooks) must be harmless.
	dir2 := t.TempDir()
	l2, err := Open(dir2, Options{Observer: &Observer{Append: func(int) {}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := l2.WriteSnapshot(1, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}
