package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// collect replays the whole journal into memory.
func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	if err := l.Replay(from, func(seq uint64, p []byte) error {
		out[seq] = string(p)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	got := collect(t, l, 1)
	if len(got) != 10 || got[1] != "rec-1" || got[10] != "rec-10" {
		t.Fatalf("replay: %v", got)
	}
	if got := collect(t, l, 7); len(got) != 4 || got[7] != "rec-7" {
		t.Fatalf("replay from 7: %v", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen continues the sequence.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextSeq() != 11 {
		t.Fatalf("NextSeq after reopen = %d, want 11", l2.NextSeq())
	}
	if seq, _ := l2.Append([]byte("rec-11")); seq != 11 {
		t.Fatalf("append after reopen: seq %d", seq)
	}
	if got := collect(t, l2, 1); len(got) != 11 {
		t.Fatalf("replay after reopen: %d records", len(got))
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 20) // 28 bytes framed: 2 per segment
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 4 {
		t.Fatalf("expected rotation, got %d segments", l.Segments())
	}
	if got := collect(t, l, 1); len(got) != 10 {
		t.Fatalf("replay across segments: %d records", len(got))
	}

	// Snapshot through seq 7, then compact: segments entirely below 8 go.
	if err := l.WriteSnapshot(7, []byte("snap7")); err != nil {
		t.Fatal(err)
	}
	removed, err := l.Compact(8)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	got := collect(t, l, 8)
	if len(got) != 3 || got[8] == "" {
		t.Fatalf("post-compaction replay: %v", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after compaction: seq numbering must survive the missing head.
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextSeq() != 11 {
		t.Fatalf("NextSeq after compacted reopen = %d, want 11", l2.NextSeq())
	}
	if seq, p, ok, err := l2.LatestSnapshot(); err != nil || !ok || seq != 7 || string(p) != "snap7" {
		t.Fatalf("snapshot after reopen: seq=%d ok=%v err=%v", seq, ok, err)
	}
}

// openAfterCompactionFails guards the missing-middle-segment check: a hole
// in the sequence (not a compacted prefix) must fail loudly.
func TestOpenMissingMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 20)
	for i := 0; i < 6; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("want >=3 segments, got %d", l.Segments())
	}
	middle := l.segs[1].name()
	l.Close()
	if err := os.Remove(filepath.Join(dir, middle)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 64}); err == nil {
		t.Fatal("open with a missing middle segment succeeded")
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 5, 9} { // inside header, inside payload, just shy of full
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.Append([]byte("whole")); err != nil {
				t.Fatal(err)
			}
			if _, err := l.Append([]byte("torn!!")); err != nil {
				t.Fatal(err)
			}
			name := l.segs[0].name()
			l.Abort()

			// Simulate the torn write: keep the first record whole, cut the
			// second mid-frame.
			path := filepath.Join(dir, name)
			whole := int64(frameHeader + len("whole"))
			if err := os.Truncate(path, whole+int64(cut)); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			defer l2.Close()
			got := collect(t, l2, 1)
			if len(got) != 1 || got[1] != "whole" {
				t.Fatalf("after repair: %v", got)
			}
			if l2.NextSeq() != 2 {
				t.Fatalf("NextSeq after repair = %d, want 2", l2.NextSeq())
			}
			// The journal must accept appends at the repaired boundary.
			if seq, err := l2.Append([]byte("again")); err != nil || seq != 2 {
				t.Fatalf("append after repair: seq=%d err=%v", seq, err)
			}
			if got := collect(t, l2, 1); got[2] != "again" {
				t.Fatalf("replay after repair append: %v", got)
			}
		})
	}
}

// TestCorruptMiddleSegmentFails: CRC damage in a non-final segment is not a
// torn tail and must not be silently truncated.
func TestCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 20)
	for i := 0; i < 6; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	first := l.segs[0].name()
	l.Close()

	path := filepath.Join(dir, first)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[frameHeader+3] ^= 0xff // flip a payload bit in record 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 64}); err == nil {
		t.Fatal("open with corrupt non-final segment succeeded")
	}
}

func TestSnapshotCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.WriteSnapshot(3, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(9, []byte("new")); err != nil {
		t.Fatal(err)
	}
	// WriteSnapshot removes superseded snapshots; re-create the older one to
	// model the window where both exist, then corrupt the newer.
	if err := l.WriteSnapshot(3, []byte("old")); err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, "snap-0000000000000009.snap")
	b, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(newPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, p, ok, err := l.LatestSnapshot()
	if err != nil || !ok || seq != 3 || string(p) != "old" {
		t.Fatalf("fallback snapshot: seq=%d p=%q ok=%v err=%v", seq, p, ok, err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, every := range []int{0, 3, -1} {
		t.Run(fmt.Sprintf("every=%d", every), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{SyncEvery: every})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 7; i++ {
				if _, err := l.Append([]byte("p")); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{SyncEvery: every})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if got := collect(t, l2, 1); len(got) != 7 {
				t.Fatalf("replay: %d records", len(got))
			}
		})
	}
}

func TestAbortThenReopenSeesAllRecords(t *testing.T) {
	// A process crash (Abort: no final fsync) must not lose page-cache
	// writes on a same-machine restart — the property the serving plane's
	// kill-and-restart recovery depends on.
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Abort()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 1); len(got) != 5 || got[5] != "r4" {
		t.Fatalf("after abort/reopen: %v", got)
	}
}

func TestEmptyJournal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.NextSeq() != 1 || l.Records() != 0 {
		t.Fatalf("fresh journal: next=%d records=%d", l.NextSeq(), l.Records())
	}
	if _, _, ok, err := l.LatestSnapshot(); ok || err != nil {
		t.Fatalf("fresh journal has a snapshot? ok=%v err=%v", ok, err)
	}
	if got := collect(t, l, 1); len(got) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(got))
	}
}
