// Package wal is the serving plane's durability substrate: an append-only
// write-ahead journal of opaque records plus durable point-in-time
// snapshots, both living in one directory. The serving layer (internal/
// serve) encodes each committed batch with its wire types and appends it
// here *before* results are released to clients; on restart it loads the
// latest snapshot and replays the journal tail, so recovery cost is bounded
// by the snapshot cadence, not history length.
//
// # On-disk layout
//
//	wal-<firstSeq:016x>.seg   — record segments, rotated at SegmentBytes
//	snap-<seq:016x>.snap      — snapshots ("state through record seq")
//
// Records are framed [len u32le][crc32c u32le][payload]; record sequence
// numbers are implicit (the segment name carries the first, records count
// up from there), so a record cannot be forged at the wrong position.
// Snapshots use the same frame and are written tmp+rename, so a torn
// snapshot write never shadows an older good one.
//
// # Failure tolerance
//
// A torn append (crash mid-write) leaves a short or CRC-broken frame at the
// tail of the *last* segment; Open truncates it away and the journal
// resumes from the last whole record — exactly the record boundary the
// server never acked. The same damage in a non-final segment is real
// corruption and fails Open loudly. Snapshots that fail their CRC are
// skipped in favor of the next-older one.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Observer receives journal lifecycle callbacks for the serving plane's
// metrics. Every field is optional (nil = not observed) and every hook is
// invoked synchronously from the journal's single append owner, so
// implementations must be fast and must not call back into the log. A nil
// *Observer disables observation entirely at the cost of one pointer check.
type Observer struct {
	// Append fires after each successful Append with the payload size.
	Append func(bytes int)
	// Fsync fires after each explicit fsync of the append segment with its
	// wall-clock duration in seconds.
	Fsync func(seconds float64)
	// Rotate fires when a new segment is opened (including the first).
	Rotate func()
	// Snapshot fires after each durable snapshot write with the payload size.
	Snapshot func(bytes int)
	// Compact fires when Compact removes segments, with the count removed.
	Compact func(segments int)
}

// Options tunes the journal.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that would grow the
	// current segment past it opens a new segment first. Default 4 MiB.
	SegmentBytes int64
	// SyncEvery is the fsync cadence in appends: 0 (default) syncs every
	// append — the strict policy under which an acked batch survives a
	// machine crash; N > 1 syncs every Nth append (and on rotation and
	// Close); negative never syncs explicitly, leaving flush timing to the
	// OS (a process crash still loses nothing; a machine crash may lose the
	// unsynced tail, which Open then truncates away).
	SyncEvery int
	// Observer, when non-nil, receives lifecycle callbacks for metrics.
	Observer *Observer
}

func (o Options) defaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	return o
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"

	frameHeader = 8 // u32 length + u32 crc
	// maxRecordBytes rejects insane frame lengths produced by corruption
	// before they can drive a huge allocation.
	maxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segment is one journal file: records [firstSeq, firstSeq+records).
type segment struct {
	firstSeq uint64
	records  int
	size     int64
}

func (s segment) name() string { return fmt.Sprintf("%s%016x%s", segPrefix, s.firstSeq, segSuffix) }

// Log is an open journal directory. Appending is single-owner — the
// serving layer appends from one batch loop — but Close and Abort may race
// each other (concurrent shutdowns, crash vs. drain) and are serialized by
// closeMu.
type Log struct {
	dir  string
	opts Options

	segs []segment // ascending firstSeq; last is the append target
	cur  *os.File  // append handle for the last segment

	nextSeq     uint64 // seq the next Append returns
	unsynced    int    // appends since the last fsync
	appendedCRC uint32 // last appended record's CRC (introspection/tests)

	closeMu sync.Mutex
	closed  bool
}

// Open opens (creating if needed) the journal in dir, repairs a torn tail,
// and positions the log to append after the last whole record.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1}
	// Sweep leftovers from snapshot writes that died before their rename.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".tmp") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	names, err := l.list(segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		first, err := parseSeq(name, segPrefix, segSuffix)
		if err != nil {
			return nil, fmt.Errorf("wal: bad segment name %q: %w", name, err)
		}
		last := i == len(names)-1
		seg, err := l.scanSegment(name, first, last)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// A compacted journal legitimately starts past seq 1; the first
			// surviving segment is the authority on where history resumes.
			l.nextSeq = seg.firstSeq
		}
		if seg.firstSeq != l.nextSeq {
			return nil, fmt.Errorf("wal: segment %s starts at seq %d, want %d (missing segment?)",
				name, seg.firstSeq, l.nextSeq)
		}
		l.segs = append(l.segs, seg)
		l.nextSeq = seg.firstSeq + uint64(seg.records)
	}
	if len(l.segs) == 0 {
		if err := l.rotate(); err != nil {
			return nil, err
		}
	} else {
		tail := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(filepath.Join(dir, tail.name()), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.cur = f
	}
	return l, nil
}

// scanSegment validates a segment's frames, repairing (truncating) a torn
// tail if the segment is the journal's last.
func (l *Log) scanSegment(name string, first uint64, last bool) (segment, error) {
	path := filepath.Join(l.dir, name)
	f, err := os.Open(path)
	if err != nil {
		return segment{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	seg := segment{firstSeq: first}
	var good int64
	for {
		n, err := readFrame(f, nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !last {
				return segment{}, fmt.Errorf("wal: segment %s corrupt at offset %d: %w", name, good, err)
			}
			// Torn tail: drop the partial frame and everything after it.
			if terr := os.Truncate(path, good); terr != nil {
				return segment{}, fmt.Errorf("wal: truncating torn tail of %s: %w", name, terr)
			}
			break
		}
		good += int64(n)
		seg.records++
	}
	seg.size = good
	return seg, nil
}

// readFrame reads one frame, returning its total byte length. When dst is
// non-nil the payload is appended to *dst; otherwise it is verified and
// discarded. Any short read or CRC mismatch is an error (io.EOF alone means
// a clean end).
func readFrame(r io.Reader, dst *[]byte) (int, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("short frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxRecordBytes {
		return 0, fmt.Errorf("frame length %d exceeds %d", length, maxRecordBytes)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, fmt.Errorf("short frame payload: %w", err)
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return 0, fmt.Errorf("crc mismatch: %08x != %08x", got, want)
	}
	if dst != nil {
		*dst = payload
	}
	return frameHeader + int(length), nil
}

// appendFrame writes one framed payload to w.
func appendFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return frameHeader + len(payload), nil
}

// rotate syncs and closes the current segment and opens a fresh one whose
// name carries the next record's sequence number.
func (l *Log) rotate() error {
	if l.cur != nil {
		if err := l.fsyncCur(); err != nil {
			return err
		}
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.cur = nil
		l.unsynced = 0
	}
	seg := segment{firstSeq: l.nextSeq}
	f, err := os.OpenFile(filepath.Join(l.dir, seg.name()), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.cur = f
	l.segs = append(l.segs, seg)
	l.syncDir()
	if obs := l.opts.Observer; obs != nil && obs.Rotate != nil {
		obs.Rotate()
	}
	return nil
}

// fsyncCur syncs the append segment, timing the fsync for the observer.
func (l *Log) fsyncCur() error {
	obs := l.opts.Observer
	timed := obs != nil && obs.Fsync != nil
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if timed {
		obs.Fsync(time.Since(t0).Seconds())
	}
	return nil
}

// Append journals one record and returns its sequence number (1-based,
// strictly increasing across restarts). The record is on disk (page cache)
// when Append returns; it is fsync-durable per Options.SyncEvery.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.closed {
		return 0, fmt.Errorf("wal: append on closed log")
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record %d bytes exceeds %d", len(payload), maxRecordBytes)
	}
	tail := &l.segs[len(l.segs)-1]
	if tail.size > 0 && tail.size+frameHeader+int64(len(payload)) > l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
		tail = &l.segs[len(l.segs)-1]
	}
	n, err := appendFrame(l.cur, payload)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.appendedCRC = crc32.Checksum(payload, crcTable)
	tail.size += int64(n)
	tail.records++
	seq := l.nextSeq
	l.nextSeq++
	if obs := l.opts.Observer; obs != nil && obs.Append != nil {
		obs.Append(len(payload))
	}
	if l.opts.SyncEvery > 0 {
		l.unsynced++
		if l.unsynced >= l.opts.SyncEvery {
			if err := l.Sync(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// Sync fsyncs the current segment.
func (l *Log) Sync() error {
	if l.cur == nil {
		return nil
	}
	if err := l.fsyncCur(); err != nil {
		return err
	}
	l.unsynced = 0
	return nil
}

// Replay invokes fn for every record with seq >= from, in order. The
// payload slice is owned by fn. Replay reads through separate handles, so
// it is valid on a log positioned for append (the recovery path replays,
// then keeps appending).
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	for _, seg := range l.segs {
		if seg.firstSeq+uint64(seg.records) <= from {
			continue
		}
		f, err := os.Open(filepath.Join(l.dir, seg.name()))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		seq := seg.firstSeq
		for i := 0; i < seg.records; i++ {
			var payload []byte
			if _, err := readFrame(f, &payload); err != nil {
				f.Close()
				return fmt.Errorf("wal: replaying %s record %d: %w", seg.name(), seq, err)
			}
			if seq >= from {
				if err := fn(seq, payload); err != nil {
					f.Close()
					return err
				}
			}
			seq++
		}
		f.Close()
	}
	return nil
}

// NextSeq reports the sequence number the next Append will return.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

// Records reports the number of records currently in the journal
// (post-compaction tail only).
func (l *Log) Records() int {
	n := 0
	for _, s := range l.segs {
		n += s.records
	}
	return n
}

// Segments reports the live segment count.
func (l *Log) Segments() int { return len(l.segs) }

// Size reports the journal's byte footprint across live segments.
func (l *Log) Size() int64 {
	var n int64
	for _, s := range l.segs {
		n += s.size
	}
	return n
}

// WriteSnapshot durably records "state through record seq": tmp write,
// fsync, rename, directory sync. Older snapshots are removed afterwards, so
// at most the newest good snapshot plus the one being replaced exist at any
// instant.
func (l *Log) WriteSnapshot(seq uint64, payload []byte) error {
	name := fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
	tmp := filepath.Join(l.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := appendFrame(f, payload); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, name)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.syncDir()
	if obs := l.opts.Observer; obs != nil && obs.Snapshot != nil {
		obs.Snapshot(len(payload))
	}
	// Drop superseded snapshots.
	names, err := l.list(snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	for _, n := range names {
		s, err := parseSeq(n, snapPrefix, snapSuffix)
		if err == nil && s < seq {
			os.Remove(filepath.Join(l.dir, n))
		}
	}
	return nil
}

// LatestSnapshot loads the newest snapshot that passes its CRC, reporting
// the record seq it covers. ok is false when no usable snapshot exists.
func (l *Log) LatestSnapshot() (seq uint64, payload []byte, ok bool, err error) {
	names, err := l.list(snapPrefix, snapSuffix)
	if err != nil {
		return 0, nil, false, err
	}
	// list is ascending; try newest first, falling back past corrupt ones.
	for i := len(names) - 1; i >= 0; i-- {
		s, perr := parseSeq(names[i], snapPrefix, snapSuffix)
		if perr != nil {
			continue
		}
		f, oerr := os.Open(filepath.Join(l.dir, names[i]))
		if oerr != nil {
			continue
		}
		var p []byte
		_, rerr := readFrame(f, &p)
		f.Close()
		if rerr != nil {
			continue // corrupt snapshot: fall back to an older one
		}
		return s, p, true, nil
	}
	return 0, nil, false, nil
}

// Compact removes segments every record of which precedes keepFrom —
// typically LatestSnapshot's seq + 1 — bounding journal size by the
// snapshot cadence. The segment containing keepFrom (and the append
// segment) always survive.
func (l *Log) Compact(keepFrom uint64) (removed int, err error) {
	for len(l.segs) > 1 && l.segs[0].firstSeq+uint64(l.segs[0].records) <= keepFrom {
		if err := os.Remove(filepath.Join(l.dir, l.segs[0].name())); err != nil {
			return removed, fmt.Errorf("wal: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		l.syncDir()
		if obs := l.opts.Observer; obs != nil && obs.Compact != nil {
			obs.Compact(removed)
		}
	}
	return removed, nil
}

// Close syncs and closes the append segment. Idempotent and safe to race
// with Abort or another Close.
func (l *Log) Close() error {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.cur == nil {
		return nil
	}
	if err := l.fsyncCur(); err != nil {
		l.cur.Close()
		return err
	}
	err := l.cur.Close()
	l.cur = nil
	return err
}

// Abort closes the append segment *without* a final sync — the crash path.
// Data already written survives in the OS page cache (a same-machine
// restart sees it); only a machine crash could lose the unsynced tail.
func (l *Log) Abort() {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	if l.cur != nil {
		l.cur.Close()
		l.cur = nil
	}
}

// syncDir best-effort fsyncs the journal directory (durable file creation
// and renames on filesystems that need it).
func (l *Log) syncDir() {
	if d, err := os.Open(l.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// list returns dir entries with the given prefix/suffix, ascending by name
// (= ascending by seq, since the hex is fixed-width).
func (l *Log) list(prefix, suffix string) ([]string, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, prefix) && strings.HasSuffix(n, suffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

func parseSeq(name, prefix, suffix string) (uint64, error) {
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	return strconv.ParseUint(hex, 16, 64)
}
