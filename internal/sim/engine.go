// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant are delivered in scheduling order
// (FIFO), which keeps runs fully deterministic. All of the simulated
// substrates in this repository (the network, the Hadoop runtime, the SDN
// controller) are driven by a single Engine so that their interleavings are
// reproducible.
//
// Two scheduler implementations are available behind SchedulerMode: a
// bucketed calendar queue (the default — O(1) amortized enqueue/dequeue)
// and the original binary heap (kept as the reference baseline). Both
// deliver events in the identical (time, seq) total order, proven by the
// golden tests in calendar_test.go, so the toggle changes wall-clock cost
// only. Fired and cancelled events are recycled through a free list, making
// steady-state scheduling allocation-free (BenchmarkEngineSchedule guards
// this); an *Event handle is therefore only valid until its event fires or
// is cancelled, and must not be retained or Cancelled after a later event
// may have reused it.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds from simulation
// start. A float64 gives sub-microsecond resolution over multi-hour
// simulated horizons, which is ample for flow-level modeling.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Common durations, for readability at call sites.
const (
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Std converts a virtual duration to a time.Duration for display.
func (d Duration) Std() time.Duration { return time.Duration(float64(d) * float64(time.Second)) }

// String formats a virtual time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// String formats a duration as seconds with millisecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.3fs", float64(d)) }

// SchedulerMode selects the event-queue implementation.
type SchedulerMode int

const (
	// SchedCalendar is the default: a bucketed calendar queue with lazy
	// width/size recalibration and O(1) amortized hold operations.
	SchedCalendar SchedulerMode = iota
	// SchedHeap is the original container/heap binary queue, kept as the
	// reference baseline the calendar queue is proven bit-identical to.
	SchedHeap
)

func (m SchedulerMode) String() string {
	switch m {
	case SchedCalendar:
		return "calendar"
	case SchedHeap:
		return "heap"
	}
	return fmt.Sprintf("SchedulerMode(%d)", int(m))
}

// Event is a scheduled callback. The callback runs exactly once, at its
// scheduled time, unless cancelled first.
//
// Lifecycle: the handle returned by At/After is live until the event fires
// or is cancelled, at which point the engine recycles the struct through
// its free list. Cancel on a just-fired or just-cancelled event is a safe
// no-op, but a handle must not be used after a subsequent event could have
// been scheduled (the struct may then describe a different event).
type Event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among same-time events
	fn     func()
	index  int // heap position / calendar liveness; -1 once removed
	cancel bool
	daemon bool
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// before reports strict (time, seq) priority order.
func (e *Event) before(o *Event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// scheduler is the pluggable priority-queue contract shared by the heap and
// calendar implementations. The engine relies only on (time, seq) ordering,
// so any correct implementation delivers the identical event sequence.
type scheduler interface {
	push(*Event)
	// popMin removes and returns the earliest event, or nil when empty.
	popMin() *Event
	// peekMin returns the earliest event without removing it, or nil.
	peekMin() *Event
	// remove deletes a queued event (Cancel).
	remove(*Event)
	size() int
}

// heapQueue adapts the original container/heap implementation to the
// scheduler interface.
type heapQueue struct{ q eventQueue }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	return q[i].before(q[j])
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

func (h *heapQueue) push(e *Event) { heap.Push(&h.q, e) }
func (h *heapQueue) popMin() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return heap.Pop(&h.q).(*Event)
}
func (h *heapQueue) peekMin() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}
func (h *heapQueue) remove(e *Event) {
	heap.Remove(&h.q, e.index)
}
func (h *heapQueue) size() int { return len(h.q) }

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now       Time
	sched     scheduler
	mode      SchedulerMode
	seq       uint64
	running   bool
	stopped   bool
	nonDaemon int
	// free recycles fired/cancelled Event structs so steady-state
	// scheduling allocates nothing.
	free []*Event
	// instantEnd holds end-of-instant hooks registered by OnInstantEnd,
	// fired FIFO when the current timestamp drains.
	instantEnd []func()
	// Processed counts events that have fired.
	Processed uint64
	// Recycled counts Event structs served from the free list (telemetry
	// for the allocation-free claim; tests assert it grows).
	Recycled uint64
}

// NewEngine returns an engine with the clock at zero, an empty queue and the
// default calendar-queue scheduler.
func NewEngine() *Engine { return NewEngineMode(SchedCalendar) }

// NewEngineMode returns an engine using the given scheduler implementation.
// Both modes deliver events in the identical order; SchedHeap exists as the
// reference baseline for golden tests and benchmarks.
func NewEngineMode(m SchedulerMode) *Engine {
	e := &Engine{mode: m}
	switch m {
	case SchedHeap:
		e.sched = &heapQueue{}
	case SchedCalendar:
		e.sched = newCalendarQueue()
	default:
		panic(fmt.Sprintf("sim: unknown scheduler mode %d", int(m)))
	}
	return e
}

// Mode reports the scheduler implementation in use.
func (e *Engine) Mode() SchedulerMode { return e.mode }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.sched.size() }

// alloc takes an Event from the free list (or the heap allocator) and
// initializes it.
func (e *Engine) alloc(t Time, fn func(), daemon bool) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.Recycled++
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.index = 0
	ev.cancel = false
	ev.daemon = daemon
	e.seq++
	return ev
}

// release returns a fired or cancelled event to the free list. The fn
// reference is dropped so captured state does not outlive the event.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc(t, fn, false)
	e.nonDaemon++
	e.sched.push(ev)
	return ev
}

// AtDaemon schedules a background event that does not keep Run alive:
// when only daemon events remain pending, Run returns. Recurring pollers
// (SDN statistics, NetFlow sampling) use this so simulations terminate when
// the workload drains.
func (e *Engine) AtDaemon(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc(t, fn, true)
	e.sched.push(ev)
	return ev
}

// AfterDaemon is AtDaemon relative to the current time.
func (e *Engine) AfterDaemon(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.AtDaemon(e.now.Add(d), fn)
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op. The cancelled event's struct is
// recycled: the handle must not be used afterwards.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	e.sched.remove(ev)
	ev.index = -1
	if !ev.daemon {
		e.nonDaemon--
	}
	e.release(ev)
}

// OnInstantEnd registers fn to run when the current simulated instant
// drains: after the last already-queued event at Now() fires and before the
// clock advances past it (or the run loop returns). Hooks run FIFO, exactly
// once. A hook may schedule new events — including at the current instant,
// which are then processed before the clock moves — and may register further
// hooks, which still fire within the same instant. netsim uses this to
// coalesce rate recomputation: any number of flow arrivals, departures and
// reroutes at one timestamp pay for exactly one allocation pass.
func (e *Engine) OnInstantEnd(fn func()) {
	e.instantEnd = append(e.instantEnd, fn)
}

// runInstantEnd fires every pending end-of-instant hook (including hooks
// registered by hooks) and reports whether any ran.
func (e *Engine) runInstantEnd() bool {
	if len(e.instantEnd) == 0 {
		return false
	}
	for i := 0; i < len(e.instantEnd); i++ {
		fn := e.instantEnd[i]
		e.instantEnd[i] = nil
		fn()
	}
	e.instantEnd = e.instantEnd[:0]
	return true
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty. End-of-instant hooks fire before the clock would
// move to a later timestamp (and before reporting an empty queue).
func (e *Engine) Step() bool {
	for {
		head := e.sched.peekMin()
		if head == nil {
			if e.runInstantEnd() {
				continue // hooks may have scheduled new events
			}
			return false
		}
		if head.at > e.now && e.runInstantEnd() {
			continue // hooks may have scheduled same-instant events
		}
		break
	}
	ev := e.sched.popMin()
	ev.index = -1
	e.now = ev.at
	e.Processed++
	if !ev.daemon {
		e.nonDaemon--
	}
	fn := ev.fn
	// Recycle before the callback: the handle is dead (fired), and the
	// callback frequently schedules a successor that can reuse the struct
	// immediately (the netsim completion-event pattern).
	e.release(ev)
	fn()
	return true
}

// Run processes events until no non-daemon events remain or Stop is called.
// Daemon events earlier than the last non-daemon event still fire. When the
// foreground drains mid-instant, end-of-instant hooks get a chance to
// schedule follow-up work (e.g. the network's coalesced allocation pass
// scheduling the next flow completion) before Run decides to return.
func (e *Engine) Run() {
	e.running = true
	e.stopped = false
	for !e.stopped {
		if e.nonDaemon == 0 {
			if e.runInstantEnd() {
				continue
			}
			break
		}
		if !e.Step() {
			break
		}
	}
	e.running = false
}

// RunUntil processes events with time ≤ deadline. Events scheduled after the
// deadline remain queued; the clock is advanced to the deadline if the
// simulation ran dry earlier. End-of-instant hooks fire before the clock
// leaves the last processed instant.
func (e *Engine) RunUntil(deadline Time) {
	e.running = true
	e.stopped = false
	for !e.stopped {
		head := e.sched.peekMin()
		if head == nil || head.at > deadline {
			if e.runInstantEnd() {
				continue
			}
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.running = false
}

// Stop halts Run/RunUntil after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Ticker is a recurring daemon callback created by Every.
type Ticker struct {
	eng     *Engine
	period  Duration
	fn      func()
	stopped bool
}

// Every schedules fn as a recurring daemon: it fires every period while
// foreground work keeps the simulation alive, and never prevents Run from
// returning. The first firing is one period from now. Stop the ticker to
// cease firing.
func (e *Engine) Every(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	e.AfterDaemon(period, t.tick)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.eng.AfterDaemon(t.period, t.tick)
	}
}

// Stop halts the ticker; pending firings are suppressed.
func (t *Ticker) Stop() { t.stopped = true }

// SetPeriod changes the interval from the next firing onward.
func (t *Ticker) SetPeriod(period Duration) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	t.period = period
}

// NextEventTime returns the time of the earliest pending event, or +Inf when
// the queue is empty.
func (e *Engine) NextEventTime() Time {
	head := e.sched.peekMin()
	if head == nil {
		return Time(math.Inf(1))
	}
	return head.at
}
