package sim

import (
	"math"
	"testing"

	"pythia/internal/stats"
)

// firing is one delivered event in a golden sequence.
type firing struct {
	at Time
	id int
}

// driveScript runs a randomized scheduling workload — bursts of same-instant
// events, cancellations, nested scheduling, tickers, daemon events — against
// one engine and records the exact delivery sequence.
func driveScript(mode SchedulerMode, seed uint64) []firing {
	eng := NewEngineMode(mode)
	rng := stats.NewRNG(seed)
	var log []firing
	id := 0
	var pending []*Event

	schedule := func(at Time) {
		id++
		me := id
		var ev *Event
		ev = eng.At(at, func() {
			log = append(log, firing{eng.Now(), me})
			_ = ev
			// Occasionally fan out: same-instant and near-future events.
			switch rng.Intn(5) {
			case 0:
				id++
				inner := id
				eng.At(eng.Now(), func() { log = append(log, firing{eng.Now(), inner}) })
			case 1:
				id++
				inner := id
				eng.After(Duration(rng.Float64()*0.3), func() { log = append(log, firing{eng.Now(), inner}) })
			}
		})
		pending = append(pending, ev)
	}

	// Seed a spread of events: clustered bursts plus a sparse far tail.
	for i := 0; i < 200; i++ {
		at := Time(rng.Float64() * 10)
		if i%17 == 0 {
			at = Time(float64(i % 5)) // exact collisions, FIFO tie-break
		}
		if i%41 == 0 {
			at = Time(1000 + rng.Float64()*1000) // sparse far future
		}
		schedule(at)
	}
	// A ticker and a daemon that spans part of the run.
	ticks := 0
	tk := eng.Every(0.7, func() {
		ticks++
		log = append(log, firing{eng.Now(), -1})
		if ticks == 5 {
			// Period change takes effect from the next firing.
		}
	})
	eng.AtDaemon(3.3, func() { log = append(log, firing{eng.Now(), -2}) })
	// Cancel a deterministic subset mid-run.
	eng.At(2.5, func() {
		for i := 0; i < len(pending); i += 7 {
			eng.Cancel(pending[i])
		}
	})
	eng.Run()
	tk.Stop()
	return log
}

// TestCalendarMatchesHeapGolden proves the calendar queue delivers the exact
// event sequence the binary heap does — same times, same FIFO tie-breaks,
// same interleaving — under a randomized storm of bursts, cancels, nested
// scheduling and daemon events.
func TestCalendarMatchesHeapGolden(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 12345} {
		hp := driveScript(SchedHeap, seed)
		cal := driveScript(SchedCalendar, seed)
		if len(hp) == 0 {
			t.Fatalf("seed %d: empty firing log", seed)
		}
		if len(hp) != len(cal) {
			t.Fatalf("seed %d: heap fired %d events, calendar %d", seed, len(hp), len(cal))
		}
		for i := range hp {
			if hp[i] != cal[i] {
				t.Fatalf("seed %d: firing %d diverged: heap %+v calendar %+v", seed, i, hp[i], cal[i])
			}
		}
	}
}

// TestCalendarResizeCycles exercises growth and shrink through the lazy
// resize thresholds: a large wave enqueued, partially cancelled, fully
// drained, then a second sparse wave.
func TestCalendarResizeCycles(t *testing.T) {
	eng := NewEngine()
	fired := 0
	var evs []*Event
	for i := 0; i < 5000; i++ {
		evs = append(evs, eng.At(Time(float64(i)*1e-4), func() { fired++ }))
	}
	for i := 0; i < 5000; i += 3 {
		eng.Cancel(evs[i])
	}
	eng.Run()
	want := 5000 - len(pickEvery(5000, 3))
	if fired != want {
		t.Fatalf("fired %d events, want %d", fired, want)
	}
	// Sparse second wave far apart in time (direct-search path).
	fired = 0
	for i := 0; i < 5; i++ {
		eng.After(Duration(math.Pow(10, float64(i))), func() { fired++ })
	}
	eng.Run()
	if fired != 5 {
		t.Fatalf("sparse wave fired %d, want 5", fired)
	}
}

func pickEvery(n, k int) []int {
	var out []int
	for i := 0; i < n; i += k {
		out = append(out, i)
	}
	return out
}

// TestCalendarSameInstantBurst drains a large same-timestamp burst in FIFO
// order without quadratic blowup (head removals slice forward).
func TestCalendarSameInstantBurst(t *testing.T) {
	eng := NewEngine()
	var order []int
	const n = 20000
	for i := 0; i < n; i++ {
		i := i
		eng.At(1, func() { order = append(order, i) })
	}
	eng.Run()
	if len(order) != n {
		t.Fatalf("fired %d, want %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: got %d", i, v)
		}
	}
}

// TestFreeListRecycles proves steady-state scheduling reuses Event structs.
func TestFreeListRecycles(t *testing.T) {
	eng := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < 100 {
			eng.After(0.01, step)
		}
	}
	eng.After(0.01, step)
	eng.Run()
	if n != 100 {
		t.Fatalf("chain ran %d steps, want 100", n)
	}
	if eng.Recycled < 90 {
		t.Fatalf("free list recycled only %d events over a 100-step chain", eng.Recycled)
	}
}

// BenchmarkEngineSchedule guards the allocation-free steady state of the
// schedule/fire hot path for both scheduler modes: after warm-up, the
// After→fire→After chain must run at 0 allocs/op off the free list.
func BenchmarkEngineSchedule(b *testing.B) {
	for _, mode := range []SchedulerMode{SchedCalendar, SchedHeap} {
		b.Run(mode.String(), func(b *testing.B) {
			eng := NewEngineMode(mode)
			// Standing population so the queue is non-trivial.
			for i := 0; i < 256; i++ {
				eng.AtDaemon(Time(float64(i)), func() {})
			}
			n := 0
			var step func()
			step = func() {
				n++
				if n < b.N {
					eng.After(1e-3, step)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			eng.After(1e-3, step)
			eng.Run()
			b.StopTimer()
			if got := testing.AllocsPerRun(1, func() {
				eng.Cancel(eng.After(1e-3, func() {}))
			}); got > 0 {
				b.Fatalf("steady-state schedule+cancel allocated %v times/op, want 0", got)
			}
		})
	}
}
