package sim

import "testing"

// End-of-instant hooks are the engine half of netsim's recompute coalescing:
// any number of same-instant mutations register one hook, and the engine
// guarantees it runs after the last event at that timestamp and before the
// clock moves on.

func TestInstantEndFiresBeforeClockAdvances(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(1, func() {
		order = append(order, "a@1")
		e.OnInstantEnd(func() { order = append(order, "hook@1") })
	})
	e.At(1, func() { order = append(order, "b@1") })
	e.At(2, func() { order = append(order, "c@2") })
	e.Run()
	want := []string{"a@1", "b@1", "hook@1", "c@2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestInstantEndHookMayScheduleSameInstant(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.At(1, func() {
		e.OnInstantEnd(func() {
			// A flush can schedule a completion due "now".
			e.At(1, func() { got = append(got, e.Now()) })
		})
	})
	e.At(3, func() { got = append(got, e.Now()) })
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("fire times = %v, want [1 3]", got)
	}
}

func TestInstantEndHookChains(t *testing.T) {
	e := NewEngine()
	depth := 0
	e.At(1, func() {
		e.OnInstantEnd(func() {
			depth = 1
			e.OnInstantEnd(func() { depth = 2 })
		})
	})
	e.Run()
	if depth != 2 {
		t.Fatalf("nested hook did not run in the same instant: depth = %d", depth)
	}
}

// A hook registered when the foreground drains must still run — and events
// it schedules must keep Run alive. This is exactly the netsim shape: the
// last foreground event at an instant marks the network dirty, and only the
// flush hook schedules the next (non-daemon) completion event.
func TestInstantEndKeepsRunAlive(t *testing.T) {
	e := NewEngine()
	completed := false
	e.At(1, func() {
		e.OnInstantEnd(func() {
			e.After(5, func() { completed = true })
		})
	})
	e.Run()
	if !completed {
		t.Fatal("Run returned before the hook-scheduled event fired")
	}
	if e.Now() != 6 {
		t.Fatalf("clock = %v, want 6", e.Now())
	}
}

func TestInstantEndOutsideRun(t *testing.T) {
	// Mutations before Run (tests and setup code do this): the hook fires
	// when Run starts draining, before any queued event.
	e := NewEngine()
	var order []string
	e.OnInstantEnd(func() { order = append(order, "hook@0") })
	e.At(1, func() { order = append(order, "ev@1") })
	e.Run()
	if len(order) != 2 || order[0] != "hook@0" || order[1] != "ev@1" {
		t.Fatalf("order = %v, want [hook@0 ev@1]", order)
	}
}

func TestRunUntilDrainsHooks(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(1, func() {
		e.OnInstantEnd(func() { ran = true })
	})
	e.RunUntil(10)
	if !ran {
		t.Fatal("RunUntil left the instant-end hook pending")
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want deadline 10", e.Now())
	}
}

func TestRunUntilHookBeforeDeadlineEvents(t *testing.T) {
	// The hook at t=1 must fire before the event at t=2 even under RunUntil.
	e := NewEngine()
	var order []string
	e.At(1, func() {
		e.OnInstantEnd(func() { order = append(order, "hook@1") })
	})
	e.At(2, func() { order = append(order, "ev@2") })
	e.RunUntil(5)
	if len(order) != 2 || order[0] != "hook@1" || order[1] != "ev@2" {
		t.Fatalf("order = %v, want [hook@1 ev@2]", order)
	}
}

func TestStepDrainsHooksAtBoundary(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(1, func() {
		e.OnInstantEnd(func() { order = append(order, "hook") })
	})
	e.At(2, func() { order = append(order, "ev2") })
	for e.Step() {
	}
	if len(order) != 2 || order[0] != "hook" || order[1] != "ev2" {
		t.Fatalf("order = %v, want [hook ev2]", order)
	}
}
