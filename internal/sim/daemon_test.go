package sim

import "testing"

// Daemon-event semantics: background pollers must not keep Run alive, but
// still fire while foreground work remains.

func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	e := NewEngine()
	fired := 0
	var poll func()
	poll = func() {
		fired++
		e.AfterDaemon(1, poll)
	}
	e.AfterDaemon(1, poll)
	e.At(5, func() {}) // the only foreground event
	e.Run()
	if e.Now() != 5 {
		t.Fatalf("Run ended at %v, want 5", e.Now())
	}
	// Daemons at t=1..4 fired; the t=5 daemon was enqueued after the
	// foreground event at t=5, so Run stopped before it.
	if fired != 4 {
		t.Fatalf("daemon fired %d times, want 4", fired)
	}
}

func TestDaemonOnlyQueueRunsNothing(t *testing.T) {
	e := NewEngine()
	fired := false
	e.AtDaemon(1, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("daemon fired with no foreground work")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %v", e.Now())
	}
}

func TestRunUntilProcessesDaemons(t *testing.T) {
	e := NewEngine()
	fired := 0
	var poll func()
	poll = func() {
		fired++
		e.AfterDaemon(1, poll)
	}
	e.AfterDaemon(1, poll)
	e.RunUntil(3.5)
	if fired != 3 {
		t.Fatalf("daemons fired %d times under RunUntil(3.5), want 3", fired)
	}
}

func TestCancelDaemon(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.AtDaemon(1, func() { fired = true })
	e.Cancel(ev)
	e.At(2, func() {})
	e.Run()
	if fired {
		t.Fatal("cancelled daemon fired")
	}
}

func TestDaemonBeforeForegroundSameInstant(t *testing.T) {
	// A daemon scheduled earlier at the same time still fires before the
	// foreground event (FIFO by sequence).
	e := NewEngine()
	var order []string
	e.AtDaemon(1, func() { order = append(order, "daemon") })
	e.At(1, func() { order = append(order, "fg") })
	e.Run()
	if len(order) != 2 || order[0] != "daemon" || order[1] != "fg" {
		t.Fatalf("order = %v", order)
	}
}

func TestDaemonSchedulingValidation(t *testing.T) {
	e := NewEngine()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("past AtDaemon did not panic")
			}
		}()
		e.At(5, func() { e.AtDaemon(1, func() {}) })
		e.Run()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative AfterDaemon did not panic")
			}
		}()
		e.AfterDaemon(-1, func() {})
	}()
}

func TestMixedCancellationCounts(t *testing.T) {
	// Cancelling foreground events lets Run stop even with daemons ahead
	// of them in the queue.
	e := NewEngine()
	daemonFired := 0
	e.AtDaemon(1, func() { daemonFired++ })
	ev := e.At(10, func() {})
	e.Cancel(ev)
	e.Run()
	if daemonFired != 0 {
		t.Fatal("daemon fired after its only anchor was cancelled")
	}
}

func TestEveryTicks(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Every(1, func() { fired++ })
	e.At(4.5, func() {})
	e.Run()
	if fired != 4 {
		t.Fatalf("ticker fired %d times, want 4", fired)
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	var tk *Ticker
	tk = e.Every(1, func() {
		fired++
		if fired == 2 {
			tk.Stop()
		}
	})
	e.At(10, func() {})
	e.Run()
	if fired != 2 {
		t.Fatalf("ticker fired %d times after Stop, want 2", fired)
	}
}

func TestTickerSetPeriod(t *testing.T) {
	e := NewEngine()
	var at []Time
	var tk *Ticker
	tk = e.Every(1, func() {
		at = append(at, e.Now())
		tk.SetPeriod(2)
	})
	e.At(6.5, func() {})
	e.Run()
	// Fires at 1, 3, 5.
	if len(at) != 3 || at[0] != 1 || at[1] != 3 || at[2] != 5 {
		t.Fatalf("firings: %v", at)
	}
}

func TestEveryValidation(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	e.Every(0, func() {})
}
