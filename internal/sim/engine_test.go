package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(10, func() {
		e.After(5, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 15 {
		t.Fatalf("nested After fired at %v, want 15", fired)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []Time
	evs := make([]*Event, 0, 10)
	for i := 1; i <= 10; i++ {
		at := Time(i)
		evs = append(evs, e.At(at, func() { got = append(got, at) }))
	}
	e.Cancel(evs[4]) // t=5
	e.Cancel(evs[7]) // t=8
	e.Run()
	for _, at := range got {
		if at == 5 || at == 8 {
			t.Fatalf("cancelled event at %v fired", at)
		}
	}
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8", len(got))
	}
}

func TestDoubleCancelIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.At(1, func() {})
	e.Cancel(ev)
	e.Cancel(ev) // must not panic
	e.Cancel(nil)
	e.Run()
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 10, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired %d events before deadline, want 3", len(fired))
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v after RunUntil(5), want 5", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockWhenDry(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 100; i++ {
		e.At(Time(i), func() {
			count++
			if count == 10 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 10 {
		t.Fatalf("processed %d events after Stop, want 10", count)
	}
	if e.Pending() != 90 {
		t.Fatalf("Pending() = %d, want 90", e.Pending())
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if !math.IsInf(float64(e.NextEventTime()), 1) {
		t.Fatalf("NextEventTime on empty queue = %v, want +Inf", e.NextEventTime())
	}
	e.At(3, func() {})
	e.At(1, func() {})
	if e.NextEventTime() != 1 {
		t.Fatalf("NextEventTime = %v, want 1", e.NextEventTime())
	}
}

func TestProcessedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Processed != 7 {
		t.Fatalf("Processed = %d, want 7", e.Processed)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(10).Add(2.5)
	if tm != 12.5 {
		t.Fatalf("Add = %v, want 12.5", tm)
	}
	if d := Time(12.5).Sub(Time(10)); d != 2.5 {
		t.Fatalf("Sub = %v, want 2.5", d)
	}
	if Duration(1.5).Std().Seconds() != 1.5 {
		t.Fatalf("Std conversion wrong")
	}
}

func TestStringFormats(t *testing.T) {
	if s := Time(1.2345).String(); s != "1.234s" && s != "1.235s" {
		t.Fatalf("Time.String = %q", s)
	}
	if s := Duration(0.5).String(); s != "0.500s" {
		t.Fatalf("Duration.String = %q", s)
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and the clock never goes backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r) / 16
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement firing.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		e := NewEngine()
		n := 1 + rng.Intn(50)
		firedCount := 0
		evs := make([]*Event, n)
		for i := 0; i < n; i++ {
			evs[i] = e.At(Time(rng.Intn(100)), func() { firedCount++ })
		}
		cancelled := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(evs[i])
				cancelled++
			}
		}
		e.Run()
		if firedCount != n-cancelled {
			t.Fatalf("iter %d: fired %d, want %d", iter, firedCount, n-cancelled)
		}
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func() {})
		}
		e.Run()
	}
}
