package sim

import "testing"

// TestCancelAfterFireIsNoop exercises the documented handle rule: Cancel on
// a handle whose event already fired (and whose struct is sitting in the
// free list) is a safe no-op that neither panics nor perturbs later events,
// in both scheduler modes.
func TestCancelAfterFireIsNoop(t *testing.T) {
	for _, mode := range []SchedulerMode{SchedCalendar, SchedHeap} {
		t.Run(mode.String(), func(t *testing.T) {
			e := NewEngineMode(mode)
			fired := 0
			ev := e.At(1, func() { fired++ })
			e.At(2, func() { fired++ })
			e.Run()
			if fired != 2 {
				t.Fatalf("fired = %d, want 2", fired)
			}
			e.Cancel(ev) // already fired: must be a no-op
			e.Cancel(ev)
			// The free list must still hand out clean events afterwards.
			e.At(3, func() { fired++ })
			e.Run()
			if fired != 3 {
				t.Fatalf("post-cancel event did not fire: fired = %d, want 3", fired)
			}
		})
	}
}

// TestTickerSetPeriodOutsideCallback changes the period from a foreground
// event between firings: the already-scheduled next tick keeps its old time,
// and the new period applies from the firing after it.
func TestTickerSetPeriodOutsideCallback(t *testing.T) {
	e := NewEngine()
	var at []Time
	tk := e.Every(1, func() { at = append(at, e.Now()) })
	e.At(1.5, func() { tk.SetPeriod(3) })
	e.At(9, func() {})
	e.Run()
	// Ticks at 1, 2 (already armed before the change), then 5, 8.
	want := []Time{1, 2, 5, 8}
	if len(at) != len(want) {
		t.Fatalf("firings: %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("firings: %v, want %v", at, want)
		}
	}
}

// TestRunUntilHookAtDeadline pins the deadline × end-of-instant interplay:
// a hook registered by an event exactly at the deadline still runs, events
// it schedules at the deadline instant still run, and events it schedules
// past the deadline stay queued.
func TestRunUntilHookAtDeadline(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(5, func() {
		e.OnInstantEnd(func() {
			order = append(order, "hook@5")
			e.At(5, func() { order = append(order, "ev@5-from-hook") })
			e.At(6, func() { order = append(order, "ev@6") })
		})
	})
	e.RunUntil(5)
	if len(order) != 2 || order[0] != "hook@5" || order[1] != "ev@5-from-hook" {
		t.Fatalf("order at deadline = %v, want [hook@5 ev@5-from-hook]", order)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want the post-deadline event queued", e.Pending())
	}
	e.Run()
	if len(order) != 3 || order[2] != "ev@6" {
		t.Fatalf("order after drain = %v", order)
	}
}
