package sim

import "math"

// calBucket is one calendar day: a sorted deque of events. The live region
// is evs[head:]; pops advance head and pushes reuse the freed capacity, so a
// steady push/pop cycle through a bucket allocates nothing.
type calBucket struct {
	evs  []*Event
	head int
}

func (b *calBucket) live() []*Event { return b.evs[b.head:] }

// insert places ev at position lo of the live region (0 ≤ lo ≤ len(live)).
func (b *calBucket) insert(ev *Event, lo int) {
	if lo == 0 && b.head > 0 {
		// Front slack: O(1) insert before the current head.
		b.head--
		b.evs[b.head] = ev
		return
	}
	if len(b.evs) == cap(b.evs) && b.head > 0 {
		// Compact to the front so append reuses existing capacity.
		n := copy(b.evs, b.evs[b.head:])
		for i := n; i < len(b.evs); i++ {
			b.evs[i] = nil
		}
		b.evs = b.evs[:n]
		b.head = 0
	}
	b.evs = append(b.evs, nil)
	live := b.evs[b.head:]
	copy(live[lo+1:], live[lo:])
	live[lo] = ev
}

// delete removes the event at position lo of the live region.
func (b *calBucket) delete(lo int) {
	if lo == 0 {
		// Head removal is the pop path: O(1), so a large same-instant burst
		// drains linearly instead of quadratically.
		b.evs[b.head] = nil
		b.head++
		if b.head == len(b.evs) {
			b.evs = b.evs[:0]
			b.head = 0
		}
		return
	}
	live := b.evs[b.head:]
	copy(live[lo:], live[lo+1:])
	b.evs[len(b.evs)-1] = nil
	b.evs = b.evs[:len(b.evs)-1]
}

// calendarQueue is a bucketed calendar-queue scheduler (Brown 1988): events
// hash into year-cyclic time buckets, each kept sorted by (time, seq), so
// steady-state enqueue/dequeue cost O(1) amortized instead of the binary
// heap's O(log n). The bucket count and width recalibrate lazily as the
// queue grows and shrinks. Ordering is the same strict (time, seq) total
// order the heap uses — the engine's golden tests prove the two
// implementations deliver bit-identical event sequences.
type calendarQueue struct {
	buckets  []calBucket
	mask     int     // len(buckets)-1; bucket count is a power of two
	width    float64 // bucket time width ("day" length)
	invWidth float64
	count    int
	// lastT is a monotonic lower bound on the earliest queued time (the
	// last popped time); the min-scan starts from its bucket.
	lastT float64
	// cachedMin memoizes the earliest event between mutations; the global
	// minimum always sits at the head of its (sorted) bucket.
	cachedMin *Event
}

const (
	calMinBuckets = 1 << 3
	calMaxBuckets = 1 << 20
	calMinWidth   = 1e-9 // sub-ns virtual resolution floor
)

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets:  make([]calBucket, calMinBuckets),
		mask:     calMinBuckets - 1,
		width:    1.0 / 1024, // recalibrated on first resize
		invWidth: 1024,
	}
}

// bucketIdx maps a time to its bucket. Times are finite and non-negative
// (the engine rejects scheduling in the past); the product is clamped so a
// huge horizon with a tiny width cannot overflow the int64 conversion.
func (c *calendarQueue) bucketIdx(t float64) int {
	d := t * c.invWidth
	if d >= math.MaxInt64/2 {
		return int(math.MaxInt64/2) & c.mask
	}
	return int(int64(d)) & c.mask
}

func (c *calendarQueue) size() int { return c.count }

// searchLive binary-searches b's live region for the insertion point of ev
// in (time, seq) order.
func searchLive(live []*Event, ev *Event) int {
	lo, hi := 0, len(live)
	for lo < hi {
		mid := (lo + hi) / 2
		if live[mid].before(ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (c *calendarQueue) push(ev *Event) {
	if c.count >= 2*len(c.buckets) && len(c.buckets) < calMaxBuckets {
		c.resize(len(c.buckets) * 2)
	}
	idx := c.bucketIdx(float64(ev.at))
	b := &c.buckets[idx]
	b.insert(ev, searchLive(b.live(), ev))
	ev.index = idx
	c.count++
	if c.cachedMin != nil && ev.before(c.cachedMin) {
		c.cachedMin = ev
	}
}

func (c *calendarQueue) peekMin() *Event {
	if c.count == 0 {
		return nil
	}
	if c.cachedMin == nil {
		c.cachedMin = c.scanMin()
	}
	return c.cachedMin
}

func (c *calendarQueue) popMin() *Event {
	ev := c.peekMin()
	if ev == nil {
		return nil
	}
	c.removeAt(ev)
	c.lastT = float64(ev.at)
	c.cachedMin = nil
	if c.count < len(c.buckets)/4 && len(c.buckets) > calMinBuckets {
		c.resize(len(c.buckets) / 2)
	}
	return ev
}

func (c *calendarQueue) remove(ev *Event) {
	c.removeAt(ev)
	if ev == c.cachedMin {
		c.cachedMin = nil
	}
}

// removeAt deletes a queued event from its (sorted) bucket.
func (c *calendarQueue) removeAt(ev *Event) {
	idx := c.bucketIdx(float64(ev.at))
	b := &c.buckets[idx]
	live := b.live()
	lo := searchLive(live, ev)
	// lo is the first element not before ev; with unique (time, seq) keys
	// it is ev itself.
	if lo >= len(live) || live[lo] != ev {
		panic("sim: calendar queue removal of unqueued event")
	}
	b.delete(lo)
	c.count--
}

// scanMin locates the earliest queued event. It sweeps one full "year" of
// buckets from the last popped time's bucket — the common case finds the
// event within a few buckets — and falls back to a direct min over all
// bucket heads when the queue is sparser than a year. The minimum is always
// a bucket head, because buckets are sorted.
func (c *calendarQueue) scanMin() *Event {
	nb := len(c.buckets)
	start := c.bucketIdx(c.lastT)
	yearEnd := (math.Floor(c.lastT*c.invWidth) + 1) * c.width
	for i := 0; i < nb; i++ {
		b := &c.buckets[(start+i)&c.mask]
		if b.head < len(b.evs) {
			if h := b.evs[b.head]; float64(h.at) < yearEnd {
				return h
			}
		}
		yearEnd += c.width
	}
	// Sparse queue: no event within one bucket cycle of lastT. Direct
	// search across bucket heads, then fast-forward lastT so subsequent
	// scans start near the found event.
	var best *Event
	for i := range c.buckets {
		b := &c.buckets[i]
		if b.head < len(b.evs) {
			if h := b.evs[b.head]; best == nil || h.before(best) {
				best = h
			}
		}
	}
	if best != nil {
		c.lastT = float64(best.at)
	}
	return best
}

// resize rebuckets every event into nb buckets with a width recalibrated to
// the current queue contents (mean event spacing, clamped). Cost is O(n),
// amortized O(1) per operation by the doubling/halving thresholds.
func (c *calendarQueue) resize(nb int) {
	old := c.buckets
	// Recalibrate width: spread the queue's time span over ~3 events per
	// bucket-day. Degenerate spans (all events at one instant) keep the
	// previous width.
	minT, maxT := math.Inf(1), math.Inf(-1)
	for i := range old {
		for _, ev := range old[i].live() {
			t := float64(ev.at)
			if t < minT {
				minT = t
			}
			if t > maxT {
				maxT = t
			}
		}
	}
	if span := maxT - minT; span > 0 && c.count > 1 {
		w := span / float64(c.count) * 3
		if w < calMinWidth {
			w = calMinWidth
		}
		c.width = w
		c.invWidth = 1 / w
	}
	c.buckets = make([]calBucket, nb)
	c.mask = nb - 1
	c.count = 0
	c.cachedMin = nil
	for i := range old {
		for _, ev := range old[i].live() {
			c.push(ev)
		}
	}
}
