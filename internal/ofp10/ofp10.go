// Package ofp10 implements the subset of the OpenFlow 1.0 wire protocol
// (openflow-spec-v1.0.0, the version the paper's testbed switches spoke)
// that Pythia's control plane exercises: session setup (HELLO, ECHO,
// FEATURES), flow programming (FLOW_MOD with output actions), and the port
// statistics used by the link-load update service. Encoding follows the
// spec's big-endian fixed layouts exactly, so message sizes — which feed the
// management-network model — are authentic.
package ofp10

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the OpenFlow wire version (1.0 = 0x01).
const Version = 0x01

// MsgType enumerates the OpenFlow 1.0 message types used here.
type MsgType uint8

// Message types (spec §5.1).
const (
	TypeHello           MsgType = 0
	TypeError           MsgType = 1
	TypeEchoRequest     MsgType = 2
	TypeEchoReply       MsgType = 3
	TypeFeaturesRequest MsgType = 5
	TypeFeaturesReply   MsgType = 6
	TypeFlowMod         MsgType = 14
	TypeStatsRequest    MsgType = 16
	TypeStatsReply      MsgType = 17
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeError:
		return "ERROR"
	case TypeEchoRequest:
		return "ECHO_REQUEST"
	case TypeEchoReply:
		return "ECHO_REPLY"
	case TypeFeaturesRequest:
		return "FEATURES_REQUEST"
	case TypeFeaturesReply:
		return "FEATURES_REPLY"
	case TypeFlowMod:
		return "FLOW_MOD"
	case TypeStatsRequest:
		return "STATS_REQUEST"
	case TypeStatsReply:
		return "STATS_REPLY"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Errors.
var (
	ErrTruncated  = errors.New("ofp10: truncated message")
	ErrBadVersion = errors.New("ofp10: unsupported version")
	ErrBadLength  = errors.New("ofp10: length field mismatch")
	ErrBadType    = errors.New("ofp10: unexpected message type")
)

// Header is the 8-byte OpenFlow header (spec §5.1).
type Header struct {
	Type MsgType
	// Length covers header + body.
	Length uint16
	XID    uint32
}

const headerLen = 8

func putHeader(b []byte, t MsgType, length int, xid uint32) {
	b[0] = Version
	b[1] = byte(t)
	binary.BigEndian.PutUint16(b[2:4], uint16(length))
	binary.BigEndian.PutUint32(b[4:8], xid)
}

// ParseHeader decodes and validates the 8-byte header.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < headerLen {
		return Header{}, ErrTruncated
	}
	if b[0] != Version {
		return Header{}, ErrBadVersion
	}
	h := Header{
		Type:   MsgType(b[1]),
		Length: binary.BigEndian.Uint16(b[2:4]),
		XID:    binary.BigEndian.Uint32(b[4:8]),
	}
	if int(h.Length) < headerLen || int(h.Length) > len(b) {
		return Header{}, ErrBadLength
	}
	return h, nil
}

// Hello encodes an OFPT_HELLO.
func Hello(xid uint32) []byte {
	b := make([]byte, headerLen)
	putHeader(b, TypeHello, headerLen, xid)
	return b
}

// EchoRequest and EchoReply carry arbitrary payloads.
func EchoRequest(xid uint32, payload []byte) []byte {
	b := make([]byte, headerLen+len(payload))
	putHeader(b, TypeEchoRequest, len(b), xid)
	copy(b[headerLen:], payload)
	return b
}

// EchoReply mirrors the request payload.
func EchoReply(xid uint32, payload []byte) []byte {
	b := make([]byte, headerLen+len(payload))
	putHeader(b, TypeEchoReply, len(b), xid)
	copy(b[headerLen:], payload)
	return b
}

// FeaturesRequest encodes an OFPT_FEATURES_REQUEST (header only).
func FeaturesRequest(xid uint32) []byte {
	b := make([]byte, headerLen)
	putHeader(b, TypeFeaturesRequest, headerLen, xid)
	return b
}

// FeaturesReply is the subset of ofp_switch_features the controller uses.
type FeaturesReply struct {
	XID        uint32
	DatapathID uint64
	NumPorts   int
}

const featuresFixedLen = headerLen + 24
const phyPortLen = 48

// Encode serializes the reply with NumPorts empty phy-port entries (the
// simulator identifies ports by index; names and MACs are irrelevant).
func (fr *FeaturesReply) Encode() []byte {
	b := make([]byte, featuresFixedLen+fr.NumPorts*phyPortLen)
	putHeader(b, TypeFeaturesReply, len(b), fr.XID)
	binary.BigEndian.PutUint64(b[headerLen:], fr.DatapathID)
	// n_buffers, n_tables, capabilities, actions left zero.
	for i := 0; i < fr.NumPorts; i++ {
		at := featuresFixedLen + i*phyPortLen
		binary.BigEndian.PutUint16(b[at:], uint16(i+1))
	}
	return b
}

// DecodeFeaturesReply parses a FEATURES_REPLY.
func DecodeFeaturesReply(b []byte) (*FeaturesReply, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeFeaturesReply {
		return nil, ErrBadType
	}
	if int(h.Length) < featuresFixedLen || (int(h.Length)-featuresFixedLen)%phyPortLen != 0 {
		return nil, ErrBadLength
	}
	return &FeaturesReply{
		XID:        h.XID,
		DatapathID: binary.BigEndian.Uint64(b[headerLen:]),
		NumPorts:   (int(h.Length) - featuresFixedLen) / phyPortLen,
	}, nil
}

// Wildcard flag bits for Match.Wildcards (spec ofp_flow_wildcards).
const (
	WildcardInPort  uint32 = 1 << 0
	WildcardDLVLAN  uint32 = 1 << 1
	WildcardDLSrc   uint32 = 1 << 2
	WildcardDLDst   uint32 = 1 << 3
	WildcardDLType  uint32 = 1 << 4
	WildcardNWProto uint32 = 1 << 5
	WildcardTPSrc   uint32 = 1 << 6
	WildcardTPDst   uint32 = 1 << 7
	// NW address wildcards are 6-bit mask-length fields.
	WildcardNWSrcAll uint32 = 32 << 8
	WildcardNWDstAll uint32 = 32 << 14
	WildcardAll      uint32 = (1 << 22) - 1
)

// Match is the 40-byte ofp_match structure (spec §5.2.3). Host addresses
// are carried as IPv4 NWSrc/NWDst; the simulator maps node IDs into
// 10.0.0.0/8.
type Match struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     [6]byte
	DLDst     [6]byte
	DLVLAN    uint16
	DLType    uint16
	NWProto   uint8
	NWSrc     uint32
	NWDst     uint32
	TPSrc     uint16
	TPDst     uint16
}

const matchLen = 40

func (m *Match) put(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	copy(b[6:12], m.DLSrc[:])
	copy(b[12:18], m.DLDst[:])
	binary.BigEndian.PutUint16(b[18:20], m.DLVLAN)
	// b[20] VLAN PCP, b[21] pad
	binary.BigEndian.PutUint16(b[22:24], m.DLType)
	// b[24] NW ToS, b[25] NW proto, b[26:28] pad
	b[25] = m.NWProto
	binary.BigEndian.PutUint32(b[28:32], m.NWSrc)
	binary.BigEndian.PutUint32(b[32:36], m.NWDst)
	binary.BigEndian.PutUint16(b[36:38], m.TPSrc)
	binary.BigEndian.PutUint16(b[38:40], m.TPDst)
}

func parseMatch(b []byte) Match {
	var m Match
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DLSrc[:], b[6:12])
	copy(m.DLDst[:], b[12:18])
	m.DLVLAN = binary.BigEndian.Uint16(b[18:20])
	m.DLType = binary.BigEndian.Uint16(b[22:24])
	m.NWProto = b[25]
	m.NWSrc = binary.BigEndian.Uint32(b[28:32])
	m.NWDst = binary.BigEndian.Uint32(b[32:36])
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return m
}

// HostPairMatch builds the wildcard match Pythia installs: exact IPv4
// source/destination (10.x mapping of node IDs), everything else wildcard —
// exactly the aggregation §IV argues for.
func HostPairMatch(srcNode, dstNode uint32) Match {
	return Match{
		// Exact NW src+dst (clear the 6-bit mask-length fields) and
		// exact DLType (IPv4); everything else — ports included —
		// wildcard.
		Wildcards: WildcardAll &^ (uint32(63)<<8 | uint32(63)<<14 | WildcardDLType),
		DLType:    0x0800,
		NWSrc:     0x0A000000 | (srcNode & 0x00FFFFFF),
		NWDst:     0x0A000000 | (dstNode & 0x00FFFFFF),
	}
}

// FlowMod commands (spec ofp_flow_mod_command).
const (
	FCAdd          uint16 = 0
	FCModify       uint16 = 1
	FCDelete       uint16 = 3
	FCDeleteStrict uint16 = 4
)

// ActionOutput is the only action type Pythia needs (OFPAT_OUTPUT).
type ActionOutput struct {
	Port uint16
}

const actionOutputLen = 8

// FlowMod is ofp_flow_mod (spec §5.3.3) with output actions.
type FlowMod struct {
	XID         uint32
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	Actions     []ActionOutput
}

// FlowModLen is the wire size of a FlowMod with n output actions.
func FlowModLen(nActions int) int {
	return headerLen + matchLen + 24 + nActions*actionOutputLen
}

// Encode serializes the FlowMod.
func (fm *FlowMod) Encode() []byte {
	total := FlowModLen(len(fm.Actions))
	b := make([]byte, total)
	putHeader(b, TypeFlowMod, total, fm.XID)
	fm.Match.put(b[headerLen:])
	at := headerLen + matchLen
	binary.BigEndian.PutUint64(b[at:], fm.Cookie)
	binary.BigEndian.PutUint16(b[at+8:], fm.Command)
	binary.BigEndian.PutUint16(b[at+10:], fm.IdleTimeout)
	binary.BigEndian.PutUint16(b[at+12:], fm.HardTimeout)
	binary.BigEndian.PutUint16(b[at+14:], fm.Priority)
	binary.BigEndian.PutUint32(b[at+16:], 0xFFFFFFFF) // buffer_id: none
	binary.BigEndian.PutUint16(b[at+20:], 0xFFFF)     // out_port: none
	// b[at+22:at+24]: flags = 0
	at += 24
	for _, a := range fm.Actions {
		binary.BigEndian.PutUint16(b[at:], 0) // OFPAT_OUTPUT
		binary.BigEndian.PutUint16(b[at+2:], actionOutputLen)
		binary.BigEndian.PutUint16(b[at+4:], a.Port)
		binary.BigEndian.PutUint16(b[at+6:], 0xFFFF) // max_len
		at += actionOutputLen
	}
	return b
}

// DecodeFlowMod parses a FLOW_MOD message.
func DecodeFlowMod(b []byte) (*FlowMod, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeFlowMod {
		return nil, ErrBadType
	}
	if int(h.Length) < FlowModLen(0) || int(h.Length)%actionOutputLen != 0 {
		return nil, ErrBadLength
	}
	body := b[:h.Length]
	fm := &FlowMod{XID: h.XID, Match: parseMatch(body[headerLen:])}
	at := headerLen + matchLen
	fm.Cookie = binary.BigEndian.Uint64(body[at:])
	fm.Command = binary.BigEndian.Uint16(body[at+8:])
	fm.IdleTimeout = binary.BigEndian.Uint16(body[at+10:])
	fm.HardTimeout = binary.BigEndian.Uint16(body[at+12:])
	fm.Priority = binary.BigEndian.Uint16(body[at+14:])
	at += 24
	for at+actionOutputLen <= int(h.Length) {
		if binary.BigEndian.Uint16(body[at:]) != 0 ||
			binary.BigEndian.Uint16(body[at+2:]) != actionOutputLen {
			return nil, fmt.Errorf("ofp10: unsupported action at offset %d", at)
		}
		fm.Actions = append(fm.Actions, ActionOutput{Port: binary.BigEndian.Uint16(body[at+4:])})
		at += actionOutputLen
	}
	if at != int(h.Length) {
		return nil, ErrBadLength
	}
	return fm, nil
}

// PortStats is one entry of an OFPST_PORT stats reply (subset: the byte
// counters the link-load service consumes).
type PortStats struct {
	PortNo  uint16
	RxBytes uint64
	TxBytes uint64
}

const portStatsLen = 104 // full ofp_port_stats entry size

// PortStatsRequest encodes an OFPST_PORT request for all ports.
func PortStatsRequest(xid uint32) []byte {
	// header + stats header(4) + ofp_port_stats_request(8)
	b := make([]byte, headerLen+4+8)
	putHeader(b, TypeStatsRequest, len(b), xid)
	binary.BigEndian.PutUint16(b[8:10], 4)       // OFPST_PORT
	binary.BigEndian.PutUint16(b[10:12], 0)      // flags
	binary.BigEndian.PutUint16(b[12:14], 0xFFFF) // OFPP_NONE: all ports
	return b
}

// EncodePortStatsReply encodes an OFPST_PORT reply with the given entries.
func EncodePortStatsReply(xid uint32, entries []PortStats) []byte {
	b := make([]byte, headerLen+4+len(entries)*portStatsLen)
	putHeader(b, TypeStatsReply, len(b), xid)
	binary.BigEndian.PutUint16(b[headerLen:], 4) // OFPST_PORT
	at := headerLen + 4
	for _, e := range entries {
		binary.BigEndian.PutUint16(b[at:], e.PortNo)
		// rx_packets/tx_packets at +8/+16 left zero.
		binary.BigEndian.PutUint64(b[at+24:], e.RxBytes)
		binary.BigEndian.PutUint64(b[at+32:], e.TxBytes)
		at += portStatsLen
	}
	return b
}

// DecodePortStatsReply parses the entries of an OFPST_PORT reply.
func DecodePortStatsReply(b []byte) ([]PortStats, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeStatsReply {
		return nil, ErrBadType
	}
	if int(h.Length) < headerLen+4 {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(b[headerLen:headerLen+2]) != 4 {
		return nil, fmt.Errorf("ofp10: not a port-stats reply")
	}
	body := b[headerLen+4 : h.Length]
	if len(body)%portStatsLen != 0 {
		return nil, ErrBadLength
	}
	var out []PortStats
	for at := 0; at < len(body); at += portStatsLen {
		out = append(out, PortStats{
			PortNo:  binary.BigEndian.Uint16(body[at:]),
			RxBytes: binary.BigEndian.Uint64(body[at+24:]),
			TxBytes: binary.BigEndian.Uint64(body[at+32:]),
		})
	}
	return out, nil
}
