package ofp10

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHelloShape(t *testing.T) {
	b := Hello(7)
	if len(b) != 8 {
		t.Fatalf("hello len = %d", len(b))
	}
	h, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeHello || h.XID != 7 || h.Length != 8 {
		t.Fatalf("header: %+v", h)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	payload := []byte("ping")
	req := EchoRequest(1, payload)
	h, err := ParseHeader(req)
	if err != nil || h.Type != TypeEchoRequest {
		t.Fatalf("echo req: %v %v", h, err)
	}
	if !bytes.Equal(req[8:], payload) {
		t.Fatal("payload mangled")
	}
	rep := EchoReply(1, req[8:])
	if h, _ := ParseHeader(rep); h.Type != TypeEchoReply {
		t.Fatal("echo reply type")
	}
}

func TestParseHeaderValidation(t *testing.T) {
	if _, err := ParseHeader([]byte{1, 2, 3}); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	bad := Hello(1)
	bad[0] = 0x04 // OF 1.3
	if _, err := ParseHeader(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	short := Hello(1)
	short[3] = 4 // length < header
	if _, err := ParseHeader(short); err != ErrBadLength {
		t.Fatalf("length: %v", err)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	fm := &FlowMod{
		XID:      42,
		Match:    HostPairMatch(3, 9),
		Cookie:   0xDEADBEEF,
		Command:  FCAdd,
		Priority: 100,
		Actions:  []ActionOutput{{Port: 2}},
	}
	enc := fm.Encode()
	if len(enc) != FlowModLen(1) {
		t.Fatalf("len = %d, want %d", len(enc), FlowModLen(1))
	}
	// The canonical OF1.0 flow_mod with one output action is 80 bytes.
	if len(enc) != 80 {
		t.Fatalf("wire size = %d, want 80", len(enc))
	}
	got, err := DecodeFlowMod(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != 42 || got.Cookie != 0xDEADBEEF || got.Priority != 100 {
		t.Fatalf("fields: %+v", got)
	}
	if got.Match != fm.Match {
		t.Fatalf("match: %+v vs %+v", got.Match, fm.Match)
	}
	if len(got.Actions) != 1 || got.Actions[0].Port != 2 {
		t.Fatalf("actions: %+v", got.Actions)
	}
}

func TestHostPairMatchSemantics(t *testing.T) {
	m := HostPairMatch(3, 9)
	if m.NWSrc != 0x0A000003 || m.NWDst != 0x0A000009 {
		t.Fatalf("addresses: %x %x", m.NWSrc, m.NWDst)
	}
	if m.DLType != 0x0800 {
		t.Fatal("not IPv4")
	}
	// NW src/dst exact (mask-length bits zero), ports wildcarded.
	if m.Wildcards&(uint32(63)<<8) != 0 || m.Wildcards&(uint32(63)<<14) != 0 {
		t.Fatalf("NW wildcards set: %x", m.Wildcards)
	}
	if m.Wildcards&WildcardTPSrc == 0 || m.Wildcards&WildcardTPDst == 0 {
		t.Fatal("ports not wildcarded — Pythia cannot know them")
	}
}

func TestDecodeFlowModRejects(t *testing.T) {
	fm := (&FlowMod{Match: HostPairMatch(1, 2), Actions: []ActionOutput{{Port: 1}}}).Encode()
	if _, err := DecodeFlowMod(fm[:20]); err == nil {
		t.Fatal("truncated accepted")
	}
	wrongType := append([]byte(nil), fm...)
	wrongType[1] = byte(TypeHello)
	if _, err := DecodeFlowMod(wrongType); err != ErrBadType {
		t.Fatalf("type: %v", err)
	}
	badAction := append([]byte(nil), fm...)
	badAction[72] = 0xFF // action type
	if _, err := DecodeFlowMod(badAction); err == nil {
		t.Fatal("unsupported action accepted")
	}
}

func TestPortStatsRoundTrip(t *testing.T) {
	req := PortStatsRequest(5)
	if h, err := ParseHeader(req); err != nil || h.Type != TypeStatsRequest {
		t.Fatalf("req: %v %v", h, err)
	}
	entries := []PortStats{
		{PortNo: 1, RxBytes: 111, TxBytes: 222},
		{PortNo: 2, RxBytes: 333, TxBytes: 444},
	}
	rep := EncodePortStatsReply(5, entries)
	got, err := DecodePortStatsReply(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != entries[0] || got[1] != entries[1] {
		t.Fatalf("entries: %+v", got)
	}
}

func TestDecodePortStatsRejects(t *testing.T) {
	rep := EncodePortStatsReply(1, []PortStats{{PortNo: 1}})
	if _, err := DecodePortStatsReply(rep[:30]); err == nil {
		t.Fatal("truncated accepted")
	}
	notPort := append([]byte(nil), rep...)
	notPort[9] = 0 // stats type low byte: OFPST_PORT(4) -> OFPST_DESC(0)
	if _, err := DecodePortStatsReply(notPort); err == nil {
		t.Fatal("wrong stats type accepted")
	}
}

// Property: FlowMod round-trips for arbitrary field values and action
// counts.
func TestPropertyFlowModRoundTrip(t *testing.T) {
	f := func(xid uint32, cookie uint64, prio uint16, src, dst uint32, nActs uint8) bool {
		fm := &FlowMod{
			XID: xid, Cookie: cookie, Priority: prio,
			Match:   HostPairMatch(src, dst),
			Command: FCAdd,
		}
		for i := 0; i < int(nActs%8); i++ {
			fm.Actions = append(fm.Actions, ActionOutput{Port: uint16(i)})
		}
		got, err := DecodeFlowMod(fm.Encode())
		if err != nil {
			return false
		}
		if got.XID != xid || got.Cookie != cookie || got.Priority != prio {
			return false
		}
		if len(got.Actions) != len(fm.Actions) {
			return false
		}
		return got.Match == fm.Match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for typ, want := range map[MsgType]string{
		TypeHello: "HELLO", TypeFlowMod: "FLOW_MOD", TypeStatsReply: "STATS_REPLY",
	} {
		if typ.String() != want {
			t.Fatalf("%d = %q", typ, typ.String())
		}
	}
	if MsgType(99).String() == "" {
		t.Fatal("unknown empty")
	}
}

// FuzzParse hardens header + flow-mod + stats parsing against arbitrary
// bytes.
func FuzzParse(f *testing.F) {
	f.Add(Hello(1))
	f.Add((&FlowMod{Match: HostPairMatch(1, 2), Actions: []ActionOutput{{Port: 3}}}).Encode())
	f.Add(EncodePortStatsReply(9, []PortStats{{PortNo: 4, TxBytes: 5}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic.
		if _, err := ParseHeader(data); err != nil {
			return
		}
		DecodeFlowMod(data)
		DecodePortStatsReply(data)
	})
}

func TestFeaturesRoundTrip(t *testing.T) {
	req := FeaturesRequest(3)
	if h, err := ParseHeader(req); err != nil || h.Type != TypeFeaturesRequest {
		t.Fatalf("req: %v %v", h, err)
	}
	fr := &FeaturesReply{XID: 3, DatapathID: 0xAABB, NumPorts: 6}
	got, err := DecodeFeaturesReply(fr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != 3 || got.DatapathID != 0xAABB || got.NumPorts != 6 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestDecodeFeaturesRejects(t *testing.T) {
	fr := (&FeaturesReply{NumPorts: 1}).Encode()
	if _, err := DecodeFeaturesReply(fr[:10]); err == nil {
		t.Fatal("truncated accepted")
	}
	wrong := Hello(1)
	if _, err := DecodeFeaturesReply(wrong); err != ErrBadType {
		t.Fatalf("type: %v", err)
	}
}
