package instrument

import (
	"fmt"

	"pythia/internal/hadoop"
	"pythia/internal/mgmtnet"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Intent is a shuffle-intent prediction: after map Map of job Job finished
// on SrcHost, PredictedWireBytes[r] bytes are expected to flow from SrcHost
// to whichever server will run reducer r. Reducer locations are not part of
// the message — the collector resolves them, possibly later (destination
// back-fill).
type Intent struct {
	Job     int
	Map     int
	SrcHost topology.NodeID
	// PredictedWireBytes is indexed by reducer ID.
	PredictedWireBytes []float64
	// MapFinishedAt is the spill instant; EmittedAt is when the collector
	// receives the message. EmittedAt - MapFinishedAt is the
	// instrumentation latency.
	MapFinishedAt sim.Time
	EmittedAt     sim.Time
}

// ReducerUp announces that reducer Reduce of job Job was started on Host —
// the event the collector uses to fill in unknown flow destinations.
type ReducerUp struct {
	Job    int
	Reduce int
	Host   topology.NodeID
	At     sim.Time
}

// Sink receives instrumentation messages; Pythia's collector implements it.
type Sink interface {
	ShuffleIntent(Intent)
	ReducerUp(ReducerUp)
}

// JobDoneSink is implemented by sinks that want job-completion
// notifications, so per-job controller state (bookings for reducers that
// never started, deferred intents, barrier backlog) can be reclaimed.
type JobDoneSink interface {
	JobDone(job int)
}

// Config tunes the middleware's latency and overhead model.
type Config struct {
	// FSNotifyDelay is the gap between spill write and the filesystem
	// notification reaching the monitor.
	FSNotifyDelay sim.Duration
	// DecodeBase + DecodePerPartition model index-file analysis time.
	DecodeBase         sim.Duration
	DecodePerPartition sim.Duration
	// MgmtLatency is the one-way management-network delay to the
	// collector (out-of-band, so it never contends with shuffle data).
	// Ignored when Mgmt is set.
	MgmtLatency sim.Duration
	// Mgmt, when non-nil, carries control messages over an explicit
	// management-network model (per-sender serialization and queueing)
	// instead of the fixed MgmtLatency.
	Mgmt *mgmtnet.Network
	// PredictOverheadFactor converts decoded on-disk partition bytes into
	// predicted wire bytes. The paper derives it from known protocol
	// header sizes; slight overestimation (3–7% in Fig. 5) is expected
	// and safe.
	PredictOverheadFactor float64
	// DCCPUFraction is the constant monitoring CPU cost per server;
	// SpikeCPUSec is the per-spill index-analysis burst (§V-C: total
	// 2–5% CPU).
	DCCPUFraction float64
	SpikeCPUSec   float64
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.FSNotifyDelay == 0 {
		c.FSNotifyDelay = 20 * sim.Millisecond
	}
	if c.DecodeBase == 0 {
		c.DecodeBase = 5 * sim.Millisecond
	}
	if c.DecodePerPartition == 0 {
		c.DecodePerPartition = 0.2 * sim.Millisecond
	}
	if c.MgmtLatency == 0 {
		c.MgmtLatency = 1 * sim.Millisecond
	}
	if c.PredictOverheadFactor == 0 {
		c.PredictOverheadFactor = 1.08
	}
	if c.DCCPUFraction == 0 {
		c.DCCPUFraction = 0.02
	}
	if c.SpikeCPUSec == 0 {
		c.SpikeCPUSec = 0.03
	}
	return c
}

// Middleware is the fleet of per-server monitors. One Middleware instance
// serves a whole simulated cluster (monitors share no state in the real
// system; here the aggregation is just bookkeeping).
type Middleware struct {
	eng  *sim.Engine
	cfg  Config
	sink Sink

	// overhead accounting
	attachedAt sim.Time
	spills     map[topology.NodeID]int
	hosts      []topology.NodeID

	// IntentsSent counts prediction messages (network overhead analysis).
	IntentsSent int
	// BytesOnMgmt estimates control bytes on the management network.
	BytesOnMgmt float64
}

// Attach wires a middleware onto a cluster: every tasktracker host gets a
// monitor; predictions and reducer-up events flow to sink. Attach must be
// called before the first job is submitted.
func Attach(eng *sim.Engine, cluster *hadoop.Cluster, sink Sink, cfg Config) *Middleware {
	if sink == nil {
		panic("instrument: nil sink")
	}
	m := &Middleware{
		eng:        eng,
		cfg:        cfg.Defaults(),
		sink:       sink,
		attachedAt: eng.Now(),
		spills:     make(map[topology.NodeID]int),
		hosts:      cluster.Hosts(),
	}
	cluster.OnMapFinished(func(j *hadoop.Job, task *hadoop.MapTask, partitions []float64) {
		m.onSpill(cluster, j, task, partitions)
	})
	cluster.OnReduceScheduled(func(j *hadoop.Job, r *hadoop.ReduceTask) {
		host := cluster.HostOf(r.Tracker)
		// Reducer-init detection rides the monitor's tasktracker watch;
		// delivery to the collector costs one management-network hop.
		up := ReducerUp{Job: j.ID, Reduce: r.ID, Host: host, At: eng.Now()}
		m.send(host, 64, func() { m.sink.ReducerUp(up) })
	})
	if jd, ok := sink.(JobDoneSink); ok {
		cluster.OnJobDone(func(j *hadoop.Job) {
			// The jobtracker already knows completion; one mgmt hop tells
			// the collector to drop the job's residual state.
			job := j.ID
			m.send(cluster.Hosts()[0], 32, func() { jd.JobDone(job) })
		})
	}
	return m
}

// send delivers a control message to the collector over the configured
// management path (explicit network model or fixed latency).
func (m *Middleware) send(from topology.NodeID, bytes float64, deliver func()) {
	m.BytesOnMgmt += bytes
	if m.cfg.Mgmt != nil {
		m.cfg.Mgmt.Send(from, bytes, deliver)
		return
	}
	m.eng.After(m.cfg.MgmtLatency, deliver)
}

// onSpill models the full prediction pipeline for one finished map:
// FS notification → index decode → predict → send.
func (m *Middleware) onSpill(cluster *hadoop.Cluster, j *hadoop.Job, task *hadoop.MapTask, partitions []float64) {
	host := cluster.HostOf(task.Tracker)
	finished := m.eng.Now()
	m.spills[host]++

	// The Hadoop runtime wrote the spill and its index; encode the real
	// bytes the monitor will read.
	encoded := BuildIndex(partitions).Encode()

	delay := m.cfg.FSNotifyDelay +
		m.cfg.DecodeBase +
		sim.Duration(float64(m.cfg.DecodePerPartition)*float64(len(partitions)))
	m.eng.After(delay, func() {
		idx, err := DecodeIndex(encoded)
		if err != nil {
			// A real deployment would log and skip; in simulation this
			// is a programming error.
			panic(fmt.Sprintf("instrument: decode failed: %v", err))
		}
		pred := make([]float64, len(idx.Segments))
		for r, seg := range idx.Segments {
			pred[r] = float64(seg.PartLength) * m.cfg.PredictOverheadFactor
		}
		intent := Intent{
			Job:                j.ID,
			Map:                task.ID,
			SrcHost:            host,
			PredictedWireBytes: pred,
			MapFinishedAt:      finished,
		}
		m.IntentsSent++
		m.send(host, float64(32+8*len(pred)), func() {
			intent.EmittedAt = m.eng.Now()
			m.sink.ShuffleIntent(intent)
		})
	})
}

// OverheadReport summarizes the §V-C instrumentation cost model.
type OverheadReport struct {
	// MeanCPUFraction is the average per-server CPU fraction consumed
	// (constant monitoring + per-spill spikes).
	MeanCPUFraction float64
	// MaxCPUFraction is the worst server.
	MaxCPUFraction float64
	// Spills is the total number of index analyses performed.
	Spills int
	// MgmtBytes is control traffic placed on the management network.
	MgmtBytes float64
}

// Overhead computes the report over the window since Attach. It returns a
// zero report if no time has elapsed.
func (m *Middleware) Overhead() OverheadReport {
	elapsed := float64(m.eng.Now().Sub(m.attachedAt))
	rep := OverheadReport{MgmtBytes: m.BytesOnMgmt}
	if elapsed <= 0 {
		return rep
	}
	var sum, max float64
	for _, h := range m.hosts {
		cpu := m.cfg.DCCPUFraction + float64(m.spills[h])*m.cfg.SpikeCPUSec/elapsed
		sum += cpu
		if cpu > max {
			max = cpu
		}
		rep.Spills += m.spills[h]
	}
	rep.MeanCPUFraction = sum / float64(len(m.hosts))
	rep.MaxCPUFraction = max
	return rep
}
