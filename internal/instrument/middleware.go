package instrument

import (
	"fmt"

	"pythia/internal/flight"
	"pythia/internal/hadoop"
	"pythia/internal/mgmtnet"
	"pythia/internal/sim"
	"pythia/internal/stats"
	"pythia/internal/topology"
)

// Intent is a shuffle-intent prediction: after map Map of job Job finished
// on SrcHost, PredictedWireBytes[r] bytes are expected to flow from SrcHost
// to whichever server will run reducer r. Reducer locations are not part of
// the message — the collector resolves them, possibly later (destination
// back-fill).
type Intent struct {
	Job int
	Map int
	// Attempt is the 1-based map attempt that spilled. Together with
	// (Job, Map) it is the collector's idempotence key: a duplicated
	// message carries the same attempt, a speculative re-execution a new
	// one.
	Attempt int
	SrcHost topology.NodeID
	// PredictedWireBytes is indexed by reducer ID.
	PredictedWireBytes []float64
	// MapFinishedAt is the spill instant; EmittedAt is when the collector
	// receives the message. EmittedAt - MapFinishedAt is the
	// instrumentation latency.
	MapFinishedAt sim.Time
	EmittedAt     sim.Time
	// Late marks an intent recovered by a restarted monitor's spill-
	// directory re-scan rather than a live filesystem notification.
	Late bool
}

// ReducerUp announces that reducer Reduce of job Job was started on Host —
// the event the collector uses to fill in unknown flow destinations.
type ReducerUp struct {
	Job    int
	Reduce int
	Host   topology.NodeID
	At     sim.Time
}

// Sink receives instrumentation messages; Pythia's collector implements it.
type Sink interface {
	ShuffleIntent(Intent)
	ReducerUp(ReducerUp)
}

// JobDoneSink is implemented by sinks that want job-completion
// notifications, so per-job controller state (bookings for reducers that
// never started, deferred intents, barrier backlog) can be reclaimed.
type JobDoneSink interface {
	JobDone(job int)
}

// Config tunes the middleware's latency and overhead model.
type Config struct {
	// FSNotifyDelay is the gap between spill write and the filesystem
	// notification reaching the monitor.
	FSNotifyDelay sim.Duration
	// DecodeBase + DecodePerPartition model index-file analysis time.
	DecodeBase         sim.Duration
	DecodePerPartition sim.Duration
	// MgmtLatency is the one-way management-network delay to the
	// collector (out-of-band, so it never contends with shuffle data).
	// Ignored when Mgmt is set.
	MgmtLatency sim.Duration
	// Mgmt, when non-nil, carries control messages over an explicit
	// management-network model (per-sender serialization and queueing)
	// instead of the fixed MgmtLatency.
	Mgmt *mgmtnet.Network
	// PredictOverheadFactor converts decoded on-disk partition bytes into
	// predicted wire bytes. The paper derives it from known protocol
	// header sizes; slight overestimation (3–7% in Fig. 5) is expected
	// and safe.
	PredictOverheadFactor float64
	// DCCPUFraction is the constant monitoring CPU cost per server;
	// SpikeCPUSec is the per-spill index-analysis burst (§V-C: total
	// 2–5% CPU).
	DCCPUFraction float64
	SpikeCPUSec   float64
	// PredictionErrorFactor injects seeded multiplicative noise into every
	// per-reducer prediction: each positive predicted value is scaled by a
	// uniform factor in [1-f, 1+f). The paper's Fig. 5 regime is a 3–7%
	// systematic overestimate; this knob explores how scheduling quality
	// degrades as the estimates get noisier. Zero disables the noise (and
	// its RNG draws), keeping results bit-identical to the exact pipeline.
	PredictionErrorFactor float64
	// PredictionErrorSeed fixes the noise stream.
	PredictionErrorSeed uint64
	// MonitorFaults, when non-nil, enables seeded per-host monitor
	// crash/restart.
	MonitorFaults *MonitorFaultConfig
	// Flight, when non-nil, receives monitor-plane lifecycle events
	// (spill detected, index decoded, intent enqueued/dropped). Leave nil
	// to disable recording at zero cost; never store a typed-nil recorder.
	Flight flight.Sink
}

// MonitorFaultConfig models per-host monitor process failures.
type MonitorFaultConfig struct {
	// CrashProb is drawn once per spill notification: on a hit, the host's
	// monitor dies just before processing it, missing that spill and every
	// later one until restart.
	CrashProb float64
	// Downtime is how long a crashed monitor stays down before its
	// supervisor restarts it (default 10 s).
	Downtime sim.Duration
	// Seed fixes the crash stream.
	Seed uint64
}

// defaults fills unset monitor-fault fields.
func (c MonitorFaultConfig) defaults() MonitorFaultConfig {
	if c.Downtime == 0 {
		c.Downtime = 10 * sim.Second
	}
	return c
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.FSNotifyDelay == 0 {
		c.FSNotifyDelay = 20 * sim.Millisecond
	}
	if c.DecodeBase == 0 {
		c.DecodeBase = 5 * sim.Millisecond
	}
	if c.DecodePerPartition == 0 {
		c.DecodePerPartition = 0.2 * sim.Millisecond
	}
	if c.MgmtLatency == 0 {
		c.MgmtLatency = 1 * sim.Millisecond
	}
	if c.PredictOverheadFactor == 0 {
		c.PredictOverheadFactor = 1.08
	}
	if c.DCCPUFraction == 0 {
		c.DCCPUFraction = 0.02
	}
	if c.SpikeCPUSec == 0 {
		c.SpikeCPUSec = 0.03
	}
	return c
}

// missedSpill is one spill that landed while its host's monitor was down —
// the on-disk state a restarted monitor recovers by re-scanning the spill
// directory.
type missedSpill struct {
	job, mapID, attempt int
	partitions          []float64
	finished            sim.Time
}

// missedUp is a reducer start the crashed monitor's tasktracker watch never
// saw; the restart re-scan re-detects the running reducer.
type missedUp struct {
	job, reduce int
}

// Middleware is the fleet of per-server monitors. One Middleware instance
// serves a whole simulated cluster (monitors share no state in the real
// system; here the aggregation is just bookkeeping).
type Middleware struct {
	eng  *sim.Engine
	cfg  Config
	sink Sink
	fl   flight.Sink

	// overhead accounting
	attachedAt sim.Time
	spills     map[topology.NodeID]int
	hosts      []topology.NodeID

	// Monitor fault state: crashed monitors, the spills and reducer starts
	// they missed, and the seeded crash stream.
	down         map[topology.NodeID]bool
	missedSpills map[topology.NodeID][]missedSpill
	missedUps    map[topology.NodeID][]missedUp
	mfaults      MonitorFaultConfig
	crashRNG     *stats.RNG
	predErr      *stats.RNG

	// jobDone tracks cluster-side job completion so control messages still
	// in flight on the management network when their job ends are dropped
	// at delivery instead of resurrecting collector state.
	jobDone map[int]bool

	// IntentsSent counts prediction messages (network overhead analysis).
	IntentsSent int
	// BytesOnMgmt estimates control bytes on the management network.
	BytesOnMgmt float64
	// MonitorCrashes counts monitor deaths, MissedSpills the spill
	// notifications lost while down, and LateIntents the predictions
	// recovered by restart re-scans.
	MonitorCrashes int
	MissedSpills   int
	LateIntents    int
	// InFlightDropped counts control messages discarded at delivery
	// because their job finished while they were on the wire.
	InFlightDropped int
}

// Attach wires a middleware onto a cluster: every tasktracker host gets a
// monitor; predictions and reducer-up events flow to sink. Attach must be
// called before the first job is submitted.
func Attach(eng *sim.Engine, cluster *hadoop.Cluster, sink Sink, cfg Config) *Middleware {
	if sink == nil {
		panic("instrument: nil sink")
	}
	m := &Middleware{
		eng:          eng,
		cfg:          cfg.Defaults(),
		sink:         sink,
		fl:           cfg.Flight,
		attachedAt:   eng.Now(),
		spills:       make(map[topology.NodeID]int),
		hosts:        cluster.Hosts(),
		down:         make(map[topology.NodeID]bool),
		missedSpills: make(map[topology.NodeID][]missedSpill),
		missedUps:    make(map[topology.NodeID][]missedUp),
		jobDone:      make(map[int]bool),
	}
	if cfg.MonitorFaults != nil {
		m.mfaults = cfg.MonitorFaults.defaults()
		m.crashRNG = stats.NewRNG(m.mfaults.Seed)
	}
	if cfg.PredictionErrorFactor > 0 {
		m.predErr = stats.NewRNG(cfg.PredictionErrorSeed)
	}
	cluster.OnMapSpilled(func(j *hadoop.Job, task *hadoop.MapTask, sp hadoop.Spill) {
		m.onSpill(cluster, j, task, sp)
	})
	cluster.OnReduceScheduled(func(j *hadoop.Job, r *hadoop.ReduceTask) {
		host := cluster.HostOf(r.Tracker)
		if m.down[host] {
			// Reducer-init detection rides the monitor's tasktracker
			// watch; a dead monitor misses the start until its restart
			// re-scan finds the reducer already running.
			m.missedUps[host] = append(m.missedUps[host], missedUp{job: j.ID, reduce: r.ID})
			return
		}
		m.sendReducerUp(j.ID, r.ID, host)
	})
	jd, _ := sink.(JobDoneSink)
	cluster.OnJobDone(func(j *hadoop.Job) {
		// Mark completion cluster-side first: anything still in flight for
		// this job is dropped at delivery, and restart re-scans skip its
		// residual spills.
		m.jobDone[j.ID] = true
		for h := range m.missedSpills {
			m.missedSpills[h] = pruneSpills(m.missedSpills[h], j.ID)
		}
		for h := range m.missedUps {
			m.missedUps[h] = pruneUps(m.missedUps[h], j.ID)
		}
		if jd != nil {
			// The jobtracker already knows completion; one mgmt hop tells
			// the collector to drop the job's residual state. (This rides
			// the jobtracker's own management port, not a monitor, so
			// monitor crashes cannot lose it — only management faults can,
			// which the collector's booking TTL backstops.)
			job := j.ID
			m.send(cluster.Hosts()[0], 32, func() { jd.JobDone(job) })
		}
	})
	return m
}

// pruneSpills drops a finished job's entries from a missed-spill list.
func pruneSpills(in []missedSpill, job int) []missedSpill {
	out := in[:0]
	for _, sp := range in {
		if sp.job != job {
			out = append(out, sp)
		}
	}
	return out
}

// pruneUps drops a finished job's entries from a missed-reducer-up list.
func pruneUps(in []missedUp, job int) []missedUp {
	out := in[:0]
	for _, u := range in {
		if u.job != job {
			out = append(out, u)
		}
	}
	return out
}

// sendReducerUp delivers one reducer-up detection to the collector.
func (m *Middleware) sendReducerUp(job, reduce int, host topology.NodeID) {
	up := ReducerUp{Job: job, Reduce: reduce, Host: host, At: m.eng.Now()}
	m.send(host, 64, func() {
		if m.jobDone[job] {
			m.InFlightDropped++
			if m.fl != nil {
				ev := flight.Ev(flight.IntentDropped, flight.PlaneMonitor)
				ev.Job, ev.Reduce, ev.Src = job, reduce, host
				ev.Disposition = flight.DispJobDone
				m.fl.Record(ev)
			}
			return
		}
		m.sink.ReducerUp(up)
	})
}

// send delivers a control message to the collector over the configured
// management path (explicit network model or fixed latency).
func (m *Middleware) send(from topology.NodeID, bytes float64, deliver func()) {
	m.BytesOnMgmt += bytes
	if m.cfg.Mgmt != nil {
		m.cfg.Mgmt.Send(from, bytes, deliver)
		return
	}
	m.eng.After(m.cfg.MgmtLatency, deliver)
}

// onSpill models the full prediction pipeline for one finished map attempt:
// FS notification → index decode → predict → send. The spill carries the
// attempt that actually produced it, so speculative losers are attributed to
// their own host, not the winner's.
func (m *Middleware) onSpill(cluster *hadoop.Cluster, j *hadoop.Job, task *hadoop.MapTask, sp hadoop.Spill) {
	host := cluster.HostOf(sp.Tracker)
	finished := m.eng.Now()

	if m.down[host] {
		// The spill file hit the disk, but nobody is watching the
		// directory: the notification is lost until a restart re-scan.
		m.recordSpill(host, j.ID, task.ID, sp.Attempt, flight.DispMissed)
		m.MissedSpills++
		m.missedSpills[host] = append(m.missedSpills[host], missedSpill{
			job: j.ID, mapID: task.ID, attempt: sp.Attempt,
			partitions: sp.Partitions, finished: finished,
		})
		return
	}
	if m.crashRNG != nil && m.mfaults.CrashProb > 0 && m.crashRNG.Float64() < m.mfaults.CrashProb {
		// The monitor dies right as the notification fires; the spill joins
		// the backlog its successor will recover, and a supervisor restarts
		// the process after the configured downtime.
		m.crash(host)
		m.recordSpill(host, j.ID, task.ID, sp.Attempt, flight.DispCrash)
		m.MissedSpills++
		m.missedSpills[host] = append(m.missedSpills[host], missedSpill{
			job: j.ID, mapID: task.ID, attempt: sp.Attempt,
			partitions: sp.Partitions, finished: finished,
		})
		return
	}
	m.recordSpill(host, j.ID, task.ID, sp.Attempt, flight.DispOK)

	delay := m.cfg.FSNotifyDelay +
		m.cfg.DecodeBase +
		sim.Duration(float64(m.cfg.DecodePerPartition)*float64(len(sp.Partitions)))
	m.emitIntent(host, j.ID, task.ID, sp.Attempt, sp.Partitions, finished, delay, false)
}

// emitIntent runs the decode→predict→send tail of the pipeline after delay.
// Late intents are the ones recovered by a restart re-scan.
func (m *Middleware) emitIntent(host topology.NodeID, job, mapID, attempt int, partitions []float64, finished sim.Time, delay sim.Duration, late bool) {
	m.spills[host]++

	// The Hadoop runtime wrote the spill and its index; encode the real
	// bytes the monitor will read.
	encoded := BuildIndex(partitions).Encode()

	m.eng.After(delay, func() {
		idx, err := DecodeIndex(encoded)
		if err != nil {
			// A real deployment would log and skip; in simulation this
			// is a programming error.
			panic(fmt.Sprintf("instrument: decode failed: %v", err))
		}
		pred := make([]float64, len(idx.Segments))
		for r, seg := range idx.Segments {
			pred[r] = float64(seg.PartLength) * m.cfg.PredictOverheadFactor
		}
		if m.predErr != nil {
			// Seeded multiplicative noise: each positive prediction scaled
			// by a uniform factor in [1-f, 1+f), clamped at zero.
			f := m.cfg.PredictionErrorFactor
			for r := range pred {
				if pred[r] <= 0 {
					continue
				}
				pred[r] *= 1 + m.predErr.Range(-f, f)
				if pred[r] < 0 {
					pred[r] = 0
				}
			}
		}
		intent := Intent{
			Job:                job,
			Map:                mapID,
			Attempt:            attempt,
			SrcHost:            host,
			PredictedWireBytes: pred,
			MapFinishedAt:      finished,
			Late:               late,
		}
		m.IntentsSent++
		if late {
			m.LateIntents++
		}
		if m.fl != nil {
			ev := flight.Ev(flight.IndexDecoded, flight.PlaneMonitor)
			ev.Job, ev.Map, ev.Attempt, ev.Src = job, mapID, attempt, host
			ev.Count = len(idx.Segments)
			m.fl.Record(ev)
			var total float64
			for _, p := range pred {
				total += p
			}
			ev = flight.Ev(flight.IntentEnqueued, flight.PlaneMonitor)
			ev.Job, ev.Map, ev.Attempt, ev.Src = job, mapID, attempt, host
			ev.Count = len(pred)
			ev.Bytes = total
			if late {
				ev.Disposition = flight.DispLate
			}
			m.fl.Record(ev)
		}
		m.send(host, float64(32+8*len(pred)), func() {
			if m.jobDone[job] {
				m.InFlightDropped++
				if m.fl != nil {
					ev := flight.Ev(flight.IntentDropped, flight.PlaneMonitor)
					ev.Job, ev.Map, ev.Attempt, ev.Src = job, mapID, attempt, host
					ev.Disposition = flight.DispJobDone
					m.fl.Record(ev)
				}
				return
			}
			intent.EmittedAt = m.eng.Now()
			m.sink.ShuffleIntent(intent)
		})
	})
}

// recordSpill emits the spill-detected flight event; a no-op when the
// recorder is disabled.
func (m *Middleware) recordSpill(host topology.NodeID, job, mapID, attempt int, disp string) {
	if m.fl == nil {
		return
	}
	ev := flight.Ev(flight.SpillDetected, flight.PlaneMonitor)
	ev.Job, ev.Map, ev.Attempt, ev.Src = job, mapID, attempt, host
	ev.Disposition = disp
	m.fl.Record(ev)
}

// crash marks a host's monitor dead and, when monitor faults are configured
// with a downtime, schedules its supervised restart.
func (m *Middleware) crash(host topology.NodeID) {
	if m.down[host] {
		return
	}
	m.down[host] = true
	m.MonitorCrashes++
	if m.mfaults.Downtime > 0 {
		h := host
		m.eng.AfterDaemon(m.mfaults.Downtime, func() { m.RestartMonitor(h) })
	}
}

// CrashMonitor kills one host's monitor process immediately (scripted fault
// injection). While down, spill notifications and reducer starts on that host
// are missed; if monitor faults are configured with a nonzero Downtime the
// supervisor restarts it automatically, otherwise call RestartMonitor.
func (m *Middleware) CrashMonitor(host topology.NodeID) { m.crash(host) }

// RestartMonitor brings a crashed monitor back up. The fresh process
// re-scans the spill directory and re-emits every backlogged prediction as a
// late, batched intent (decode times accumulate — one process works through
// the backlog sequentially), and re-detects reducers that started while it
// was down. Spills belonging to already-finished jobs were cleaned up with
// the job and are skipped.
func (m *Middleware) RestartMonitor(host topology.NodeID) {
	if !m.down[host] {
		return
	}
	m.down[host] = false

	backlog := m.missedSpills[host]
	m.missedSpills[host] = nil
	var delay sim.Duration
	for _, sp := range backlog {
		if m.jobDone[sp.job] {
			continue
		}
		delay += m.cfg.DecodeBase +
			sim.Duration(float64(m.cfg.DecodePerPartition)*float64(len(sp.partitions)))
		m.emitIntent(host, sp.job, sp.mapID, sp.attempt, sp.partitions, sp.finished, delay, true)
	}

	ups := m.missedUps[host]
	m.missedUps[host] = nil
	for _, u := range ups {
		if m.jobDone[u.job] {
			continue
		}
		m.sendReducerUp(u.job, u.reduce, host)
	}
}

// MonitorDown reports whether a host's monitor is currently crashed.
func (m *Middleware) MonitorDown(host topology.NodeID) bool { return m.down[host] }

// OverheadReport summarizes the §V-C instrumentation cost model.
type OverheadReport struct {
	// MeanCPUFraction is the average per-server CPU fraction consumed
	// (constant monitoring + per-spill spikes).
	MeanCPUFraction float64
	// MaxCPUFraction is the worst server.
	MaxCPUFraction float64
	// Spills is the total number of index analyses performed.
	Spills int
	// MgmtBytes is control traffic placed on the management network.
	MgmtBytes float64
}

// Overhead computes the report over the window since Attach. It returns a
// zero report if no time has elapsed.
func (m *Middleware) Overhead() OverheadReport {
	elapsed := float64(m.eng.Now().Sub(m.attachedAt))
	rep := OverheadReport{MgmtBytes: m.BytesOnMgmt}
	if elapsed <= 0 {
		return rep
	}
	var sum, max float64
	for _, h := range m.hosts {
		cpu := m.cfg.DCCPUFraction + float64(m.spills[h])*m.cfg.SpikeCPUSec/elapsed
		sum += cpu
		if cpu > max {
			max = cpu
		}
		rep.Spills += m.spills[h]
	}
	rep.MeanCPUFraction = sum / float64(len(m.hosts))
	rep.MaxCPUFraction = max
	return rep
}
