package instrument

import (
	"bytes"
	"testing"
)

// FuzzDecodeIndex hardens the index-file codec against malformed input:
// whatever bytes arrive, DecodeIndex must either return a structured error
// or a valid IndexFile whose re-encoding round-trips — never panic.
func FuzzDecodeIndex(f *testing.F) {
	// Seed corpus: valid encodings of assorted shapes plus mutations.
	f.Add(BuildIndex(nil).Encode())
	f.Add(BuildIndex([]float64{0}).Encode())
	f.Add(BuildIndex([]float64{1e6, 2e6, 3e6}).Encode())
	big := make([]float64, 64)
	for i := range big {
		big[i] = float64(i) * 1e5
	}
	f.Add(BuildIndex(big).Encode())
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x59, 0x49, 0x58})
	corrupted := BuildIndex([]float64{5e6}).Encode()
	corrupted[len(corrupted)-1] ^= 0xFF
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := DecodeIndex(data)
		if err != nil {
			if idx != nil {
				t.Fatal("error with non-nil index")
			}
			return
		}
		// Valid decode: re-encode must be byte-identical (the format has
		// no redundancy beyond the checksum).
		if !bytes.Equal(idx.Encode(), data) {
			t.Fatal("decode/encode not a round trip")
		}
	})
}

// FuzzBuildIndex checks the builder across partition shapes: nonnegative
// inputs must always produce decodable encodings with consistent offsets.
func FuzzBuildIndex(f *testing.F) {
	f.Add(uint16(3), uint32(1e6))
	f.Add(uint16(0), uint32(0))
	f.Add(uint16(128), uint32(1<<30))
	f.Fuzz(func(t *testing.T, n uint16, base uint32) {
		parts := make([]float64, int(n)%256)
		for i := range parts {
			parts[i] = float64(base) * float64(i%7)
		}
		idx := BuildIndex(parts)
		got, err := DecodeIndex(idx.Encode())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		var off uint64
		for i, s := range got.Segments {
			if s.Start != off {
				t.Fatalf("segment %d offset %d, want %d", i, s.Start, off)
			}
			if s.PartLength < s.RawLength {
				t.Fatalf("segment %d framing shrank the data", i)
			}
			off += s.PartLength
		}
	})
}
