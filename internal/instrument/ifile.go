package instrument

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// This file implements the record-level format of Hadoop's intermediate map
// output segments (IFile), byte-compatible with Hadoop 1.x: each record is
// <keyLen VInt><valueLen VInt><key bytes><value bytes>, the stream ends with
// the EOF marker (two VInts of -1), and the segment carries a trailing
// IEEE CRC-32 (IFileOutputStream). Together with the index-file codec in
// indexfile.go this is the "deep Hadoop index/sequence file analysis" the
// paper credits for Pythia's prediction timeliness: the monitor can both
// locate partitions (index) and, when needed, sample records (IFile) to
// characterize a partition's contents.

// Hadoop zero-compressed VInt/VLong encoding (WritableUtils.writeVLong):
// values in [-112, 127] occupy one byte; otherwise the first byte encodes
// sign and byte count, followed by the magnitude big-endian.

// ErrVIntTruncated reports a VInt extending past the buffer.
var ErrVIntTruncated = errors.New("instrument: truncated vint")

// ErrVIntCorrupt reports an impossible VInt header.
var ErrVIntCorrupt = errors.New("instrument: corrupt vint")

// AppendVLong appends Hadoop's variable-length encoding of v to dst.
func AppendVLong(dst []byte, v int64) []byte {
	if v >= -112 && v <= 127 {
		return append(dst, byte(v))
	}
	length := -112
	u := v
	if v < 0 {
		u = ^v
		length = -120
	}
	for tmp := u; tmp != 0; tmp >>= 8 {
		length--
	}
	dst = append(dst, byte(length))
	n := -(length + 112)
	if length < -120 {
		n = -(length + 120)
	}
	for idx := n; idx != 0; idx-- {
		shift := uint((idx - 1) * 8)
		dst = append(dst, byte(u>>shift))
	}
	return dst
}

// ReadVLong decodes one VLong from b, returning the value and the number of
// bytes consumed.
func ReadVLong(b []byte) (int64, int, error) {
	if len(b) == 0 {
		return 0, 0, ErrVIntTruncated
	}
	first := int8(b[0])
	if first >= -112 {
		return int64(first), 1, nil
	}
	negative := first < -120
	n := int(-(first + 112))
	if negative {
		n = int(-(first + 120))
	}
	if n < 1 || n > 8 {
		return 0, 0, ErrVIntCorrupt
	}
	if len(b) < 1+n {
		return 0, 0, ErrVIntTruncated
	}
	var u int64
	for i := 0; i < n; i++ {
		u = u<<8 | int64(b[1+i])
	}
	if negative {
		u = ^u
	}
	return u, 1 + n, nil
}

// VLongLen returns the encoded size of v in bytes.
func VLongLen(v int64) int {
	return len(AppendVLong(nil, v))
}

// IFileRecord is one key/value pair.
type IFileRecord struct {
	Key   []byte
	Value []byte
}

// ifileEOF is the end-of-stream marker length value.
const ifileEOF = -1

// EncodeIFileSegment serializes records in Hadoop IFile framing with the
// EOF marker and trailing CRC-32.
func EncodeIFileSegment(records []IFileRecord) []byte {
	var out []byte
	for _, r := range records {
		out = AppendVLong(out, int64(len(r.Key)))
		out = AppendVLong(out, int64(len(r.Value)))
		out = append(out, r.Key...)
		out = append(out, r.Value...)
	}
	out = AppendVLong(out, ifileEOF)
	out = AppendVLong(out, ifileEOF)
	crc := crc32.ChecksumIEEE(out)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	return append(out, tail[:]...)
}

// IFileStats summarizes a decoded segment.
type IFileStats struct {
	Records  int
	KeyBytes int64
	ValBytes int64
	// WireBytes is the full segment size including framing and checksum.
	WireBytes int64
}

// FramingOverhead is the fraction of the segment spent on framing
// (VInt prefixes, EOF marker, checksum) over raw key+value payload.
func (s IFileStats) FramingOverhead() float64 {
	payload := s.KeyBytes + s.ValBytes
	if payload == 0 {
		return 0
	}
	return float64(s.WireBytes-payload) / float64(payload)
}

// DecodeIFileSegment parses and verifies a segment, returning the records
// and their statistics.
func DecodeIFileSegment(b []byte) ([]IFileRecord, IFileStats, error) {
	stats := IFileStats{WireBytes: int64(len(b))}
	if len(b) < 4 {
		return nil, stats, fmt.Errorf("instrument: ifile segment too short")
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, stats, fmt.Errorf("instrument: ifile checksum mismatch")
	}
	var records []IFileRecord
	at := 0
	for {
		kl, n, err := ReadVLong(body[at:])
		if err != nil {
			return nil, stats, err
		}
		at += n
		vl, n, err := ReadVLong(body[at:])
		if err != nil {
			return nil, stats, err
		}
		at += n
		if kl == ifileEOF && vl == ifileEOF {
			if at != len(body) {
				return nil, stats, fmt.Errorf("instrument: %d trailing bytes after EOF", len(body)-at)
			}
			break
		}
		if kl < 0 || vl < 0 || int64(at)+kl+vl > int64(len(body)) {
			return nil, stats, fmt.Errorf("instrument: record overruns segment")
		}
		rec := IFileRecord{
			Key:   append([]byte(nil), body[at:at+int(kl)]...),
			Value: append([]byte(nil), body[at+int(kl):at+int(kl)+int(vl)]...),
		}
		at += int(kl + vl)
		records = append(records, rec)
		stats.Records++
		stats.KeyBytes += kl
		stats.ValBytes += vl
	}
	return records, stats, nil
}

// SampleIFileStats decodes only the first maxRecords records — what the
// monitor does when it wants a cheap per-partition record-size estimate
// without scanning the whole spill.
func SampleIFileStats(b []byte, maxRecords int) (IFileStats, error) {
	stats := IFileStats{WireBytes: int64(len(b))}
	if len(b) < 4 {
		return stats, fmt.Errorf("instrument: ifile segment too short")
	}
	body := b[:len(b)-4]
	at := 0
	for stats.Records < maxRecords {
		kl, n, err := ReadVLong(body[at:])
		if err != nil {
			return stats, err
		}
		at += n
		vl, n, err := ReadVLong(body[at:])
		if err != nil {
			return stats, err
		}
		at += n
		if kl == ifileEOF && vl == ifileEOF {
			break
		}
		if kl < 0 || vl < 0 || int64(at)+kl+vl > int64(len(body)) {
			return stats, fmt.Errorf("instrument: record overruns segment")
		}
		at += int(kl + vl)
		stats.Records++
		stats.KeyBytes += kl
		stats.ValBytes += vl
	}
	return stats, nil
}
