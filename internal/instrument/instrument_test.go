package instrument

import (
	"math"
	"testing"
	"testing/quick"

	"pythia/internal/ecmp"
	"pythia/internal/hadoop"
	"pythia/internal/mgmtnet"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

func TestIndexRoundTrip(t *testing.T) {
	parts := []float64{100e6, 20e6, 0, 5e6}
	idx := BuildIndex(parts)
	got, err := DecodeIndex(idx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != 4 {
		t.Fatalf("segments = %d", len(got.Segments))
	}
	for r, s := range got.Segments {
		if s.RawLength != uint64(parts[r]) {
			t.Fatalf("segment %d raw = %d, want %d", r, s.RawLength, uint64(parts[r]))
		}
		if s.PartLength < s.RawLength {
			t.Fatalf("segment %d part < raw", r)
		}
	}
	// Offsets must be cumulative and nonoverlapping.
	var off uint64
	for r, s := range got.Segments {
		if s.Start != off {
			t.Fatalf("segment %d start = %d, want %d", r, s.Start, off)
		}
		off += s.PartLength
	}
}

func TestIndexEmptyPartitions(t *testing.T) {
	idx := BuildIndex(nil)
	got, err := DecodeIndex(idx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != 0 {
		t.Fatal("empty index grew segments")
	}
	if got.TotalRaw() != 0 {
		t.Fatal("empty index nonzero raw")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := BuildIndex([]float64{1e6, 2e6}).Encode()

	if _, err := DecodeIndex(enc[:5]); err != ErrIndexTruncated {
		t.Fatalf("short buffer err = %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, err := DecodeIndex(bad); err != ErrIndexMagic {
		t.Fatalf("bad magic err = %v", err)
	}
	badVer := append([]byte(nil), enc...)
	badVer[5] = 99
	if _, err := DecodeIndex(badVer); err != ErrIndexVersion {
		t.Fatalf("bad version err = %v", err)
	}
	flip := append([]byte(nil), enc...)
	flip[headerSize+3] ^= 0x01 // corrupt a segment byte
	if _, err := DecodeIndex(flip); err != ErrIndexChecksum {
		t.Fatalf("corrupted body err = %v", err)
	}
	trunc := enc[:len(enc)-8]
	if _, err := DecodeIndex(trunc); err != ErrIndexTruncated {
		t.Fatalf("truncated err = %v", err)
	}
}

func TestBuildIndexPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative partition did not panic")
		}
	}()
	BuildIndex([]float64{-1})
}

// Property: round trip preserves every segment for arbitrary partition
// vectors.
func TestPropertyIndexRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		parts := make([]float64, len(raw))
		for i, v := range raw {
			parts[i] = float64(v)
		}
		idx := BuildIndex(parts)
		got, err := DecodeIndex(idx.Encode())
		if err != nil {
			return false
		}
		if len(got.Segments) != len(idx.Segments) {
			return false
		}
		for i := range got.Segments {
			if got.Segments[i] != idx.Segments[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// recordingSink captures middleware output.
type recordingSink struct {
	intents []Intent
	ups     []ReducerUp
}

func (s *recordingSink) ShuffleIntent(i Intent) { s.intents = append(s.intents, i) }
func (s *recordingSink) ReducerUp(u ReducerUp)  { s.ups = append(s.ups, u) }

func rig() (*sim.Engine, *hadoop.Cluster, *recordingSink, *Middleware) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	sink := &recordingSink{}
	mw := Attach(eng, cl, sink, Config{})
	return eng, cl, sink, mw
}

func spec(maps, reduces int, bytesPer float64) *hadoop.JobSpec {
	d := make([]float64, maps)
	o := make([][]float64, maps)
	for m := range d {
		d[m] = 2
		row := make([]float64, reduces)
		for r := range row {
			row[r] = bytesPer
		}
		o[m] = row
	}
	return &hadoop.JobSpec{Name: "t", NumMaps: maps, NumReduces: reduces,
		MapDurations: d, MapOutputs: o}
}

func TestMiddlewareEmitsOneIntentPerMap(t *testing.T) {
	eng, cl, sink, mw := rig()
	cl.Submit(spec(8, 3, 5e6))
	eng.Run()
	if len(sink.intents) != 8 {
		t.Fatalf("intents = %d, want 8", len(sink.intents))
	}
	if mw.IntentsSent != 8 {
		t.Fatalf("IntentsSent = %d", mw.IntentsSent)
	}
	seen := map[int]bool{}
	for _, in := range sink.intents {
		if seen[in.Map] {
			t.Fatalf("duplicate intent for map %d", in.Map)
		}
		seen[in.Map] = true
		if len(in.PredictedWireBytes) != 3 {
			t.Fatalf("intent has %d reducers", len(in.PredictedWireBytes))
		}
	}
}

func TestIntentTimingAfterMapFinish(t *testing.T) {
	eng, cl, sink, _ := rig()
	cl.Submit(spec(4, 2, 5e6))
	eng.Run()
	for _, in := range sink.intents {
		lat := float64(in.EmittedAt.Sub(in.MapFinishedAt))
		if lat <= 0 {
			t.Fatalf("intent emitted before map finished: %v", lat)
		}
		if lat > 0.1 {
			t.Fatalf("instrumentation latency %vs too large", lat)
		}
	}
}

func TestPredictionOverestimatesModestly(t *testing.T) {
	// Predicted wire bytes must exceed actual wire bytes (payload*1.045)
	// by the Fig. 5 margin: 3–7%.
	eng, cl, sink, _ := rig()
	const payload = 10e6
	cl.Submit(spec(4, 2, payload))
	eng.Run()
	actualWire := payload * 1.045
	for _, in := range sink.intents {
		for _, p := range in.PredictedWireBytes {
			over := p/actualWire - 1
			if over < 0.01 || over > 0.09 {
				t.Fatalf("overestimate = %.3f, want within (0.01, 0.09)", over)
			}
		}
	}
}

func TestReducerUpEvents(t *testing.T) {
	eng, cl, sink, _ := rig()
	cl.Submit(spec(6, 4, 1e6))
	eng.Run()
	if len(sink.ups) != 4 {
		t.Fatalf("reducer-up events = %d, want 4", len(sink.ups))
	}
	seen := map[int]bool{}
	for _, u := range sink.ups {
		if seen[u.Reduce] {
			t.Fatal("duplicate reducer-up")
		}
		seen[u.Reduce] = true
		if u.Host < 0 {
			t.Fatal("reducer-up without host")
		}
	}
}

func TestOverheadWithinPaperBand(t *testing.T) {
	eng, cl, _, mw := rig()
	// Realistic map durations (10 s) so the spike amortization matches
	// production-shaped jobs, which is what §V-C measured.
	js := spec(40, 4, 2e6)
	for m := range js.MapDurations {
		js.MapDurations[m] = 10
	}
	cl.Submit(js)
	eng.Run()
	rep := mw.Overhead()
	if rep.Spills != 40 {
		t.Fatalf("spills = %d, want 40", rep.Spills)
	}
	if rep.MeanCPUFraction < 0.02 || rep.MeanCPUFraction > 0.05 {
		t.Fatalf("mean CPU fraction = %.4f, want within [0.02, 0.05] (§V-C)", rep.MeanCPUFraction)
	}
	if rep.MgmtBytes <= 0 {
		t.Fatal("no management traffic accounted")
	}
}

func TestOverheadZeroElapsed(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(2, 1, topology.Gbps)
	net := netsim.New(eng, g)
	cl := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	mw := Attach(eng, cl, &recordingSink{}, Config{})
	rep := mw.Overhead()
	if rep.MeanCPUFraction != 0 || rep.Spills != 0 {
		t.Fatalf("zero-window report: %+v", rep)
	}
}

func TestAttachNilSinkPanics(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(2, 1, topology.Gbps)
	net := netsim.New(eng, g)
	cl := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	defer func() {
		if recover() == nil {
			t.Error("nil sink did not panic")
		}
	}()
	Attach(eng, cl, nil, Config{})
}

func TestPredictionConservation(t *testing.T) {
	// Sum of predicted bytes across intents ≈ total payload *
	// framing * overhead factors.
	eng, cl, sink, _ := rig()
	js := spec(10, 4, 3e6)
	cl.Submit(js)
	eng.Run()
	var predicted float64
	for _, in := range sink.intents {
		for _, p := range in.PredictedWireBytes {
			predicted += p
		}
	}
	want := js.TotalShuffleBytes() * IFileFramingFactor * 1.08
	if math.Abs(predicted-want)/want > 0.001 {
		t.Fatalf("predicted total = %v, want %v", predicted, want)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.PredictOverheadFactor != 1.08 || c.DCCPUFraction != 0.02 {
		t.Fatalf("defaults: %+v", c)
	}
	c2 := Config{PredictOverheadFactor: 1.5}.Defaults()
	if c2.PredictOverheadFactor != 1.5 {
		t.Fatal("explicit value overridden")
	}
}

func BenchmarkIndexEncodeDecode(b *testing.B) {
	parts := make([]float64, 64)
	for i := range parts {
		parts[i] = float64(i) * 1e6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := BuildIndex(parts).Encode()
		if _, err := DecodeIndex(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExplicitManagementNetwork(t *testing.T) {
	// With the mgmtnet model, intents still arrive shortly after the
	// spill, and the network's accounting matches the middleware's.
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	mn := mgmtnet.New(eng, mgmtnet.Config{})
	sink := &recordingSink{}
	mw := Attach(eng, cl, sink, Config{Mgmt: mn})
	cl.Submit(spec(8, 3, 5e6))
	eng.Run()
	if len(sink.intents) != 8 {
		t.Fatalf("intents = %d", len(sink.intents))
	}
	if mn.Messages == 0 {
		t.Fatal("no control messages crossed the management network")
	}
	if mn.Bytes != mw.BytesOnMgmt {
		t.Fatalf("accounting mismatch: net %v vs middleware %v", mn.Bytes, mw.BytesOnMgmt)
	}
	for _, in := range sink.intents {
		lat := float64(in.EmittedAt.Sub(in.MapFinishedAt))
		if lat <= 0 || lat > 0.2 {
			t.Fatalf("intent latency %v with mgmt model", lat)
		}
	}
}
