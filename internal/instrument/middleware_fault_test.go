package instrument

import (
	"testing"

	"pythia/internal/ecmp"
	"pythia/internal/hadoop"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Tests for the prediction-plane fault layer: monitor crash/restart with
// spill-directory recovery, the in-flight drop guard on job completion, and
// seeded prediction-error noise.

// faultRig builds a cluster with a configurable middleware.
func faultRig(cfg Config) (*sim.Engine, *hadoop.Cluster, *recordingSink, *Middleware, []topology.NodeID) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	sink := &recordingSink{}
	mw := Attach(eng, cl, sink, cfg)
	return eng, cl, sink, mw, hosts
}

func TestMonitorCrashRecoversLateIntents(t *testing.T) {
	eng, cl, sink, mw, hosts := faultRig(Config{})
	// Kill every monitor up front: the first wave of spills lands on disk
	// unwatched. Restart everything at t=3 — after the 2 s maps finish,
	// well before the shuffle completes — so the re-scan recovers the
	// backlog as late intents.
	for _, h := range hosts {
		mw.CrashMonitor(h)
	}
	if !mw.MonitorDown(hosts[0]) {
		t.Fatal("monitor not down after CrashMonitor")
	}
	eng.At(3, func() {
		for _, h := range hosts {
			mw.RestartMonitor(h)
		}
	})
	cl.Submit(spec(8, 3, 5e6))
	eng.Run()
	if mw.MonitorCrashes != len(hosts) {
		t.Fatalf("MonitorCrashes = %d, want %d", mw.MonitorCrashes, len(hosts))
	}
	if mw.MissedSpills != 8 {
		t.Fatalf("MissedSpills = %d, want 8", mw.MissedSpills)
	}
	if mw.LateIntents != 8 {
		t.Fatalf("LateIntents = %d, want 8", mw.LateIntents)
	}
	// Recovery is complete: every map's prediction eventually arrived,
	// flagged late, and every reducer start was re-detected.
	if len(sink.intents) != 8 {
		t.Fatalf("recovered intents = %d, want 8", len(sink.intents))
	}
	for _, in := range sink.intents {
		if !in.Late {
			t.Fatalf("map %d intent not flagged late", in.Map)
		}
		if in.EmittedAt.Sub(in.MapFinishedAt) <= 0 {
			t.Fatal("late intent emitted before its spill")
		}
	}
	if len(sink.ups) != 3 {
		t.Fatalf("recovered reducer-ups = %d, want 3", len(sink.ups))
	}
}

func TestRestartSkipsFinishedJobsSpills(t *testing.T) {
	eng, cl, sink, mw, hosts := faultRig(Config{})
	for _, h := range hosts {
		mw.CrashMonitor(h)
	}
	cl.Submit(spec(4, 2, 1e6))
	eng.Run() // job completes with all monitors dark
	if len(sink.intents) != 0 {
		t.Fatalf("intents emitted by dead monitors: %d", len(sink.intents))
	}
	// The finished job's spill files were cleaned up with the job; a later
	// restart must find an empty directory.
	for _, h := range hosts {
		mw.RestartMonitor(h)
	}
	eng.Run()
	if len(sink.intents) != 0 || mw.LateIntents != 0 {
		t.Fatalf("restart resurrected a finished job: intents=%d late=%d",
			len(sink.intents), mw.LateIntents)
	}
}

// TestInFlightDroppedOnJobDone is the satellite regression: control messages
// still on the management wire when their job completes must be discarded at
// delivery, never handed to the sink.
func TestInFlightDroppedOnJobDone(t *testing.T) {
	// A management latency far beyond the job duration puts every message
	// "in flight" when the job ends.
	eng, cl, sink, mw, _ := faultRig(Config{MgmtLatency: 1000 * sim.Second})
	cl.Submit(spec(8, 3, 1e6))
	eng.Run()
	if len(sink.intents) != 0 || len(sink.ups) != 0 {
		t.Fatalf("stale deliveries reached the sink: %d intents, %d ups",
			len(sink.intents), len(sink.ups))
	}
	if mw.InFlightDropped != 8+3 {
		t.Fatalf("InFlightDropped = %d, want %d", mw.InFlightDropped, 8+3)
	}
}

func TestSeededMonitorCrashesDeterministic(t *testing.T) {
	run := func() (*recordingSink, *Middleware) {
		eng, cl, sink, mw, _ := faultRig(Config{
			MonitorFaults: &MonitorFaultConfig{CrashProb: 0.4, Downtime: 3 * sim.Second, Seed: 42},
		})
		js := spec(20, 3, 5e6)
		cl.Submit(js)
		eng.Run()
		return sink, mw
	}
	s1, m1 := run()
	s2, m2 := run()
	if m1.MonitorCrashes == 0 || m1.MissedSpills == 0 {
		t.Fatalf("crash probability 0.4 produced no faults: %+v", m1)
	}
	if m1.MonitorCrashes != m2.MonitorCrashes || m1.MissedSpills != m2.MissedSpills ||
		m1.LateIntents != m2.LateIntents || m1.IntentsSent != m2.IntentsSent {
		t.Fatalf("same seed diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			m1.MonitorCrashes, m1.MissedSpills, m1.LateIntents, m1.IntentsSent,
			m2.MonitorCrashes, m2.MissedSpills, m2.LateIntents, m2.IntentsSent)
	}
	if len(s1.intents) != len(s2.intents) {
		t.Fatalf("same seed, different intent counts: %d vs %d", len(s1.intents), len(s2.intents))
	}
}

func TestPredictionErrorBoundedAndSeeded(t *testing.T) {
	const factor = 0.5
	run := func(cfg Config) []Intent {
		eng, cl, sink, _, _ := faultRig(cfg)
		cl.Submit(spec(6, 4, 5e6))
		eng.Run()
		return sink.intents
	}
	exact := run(Config{})
	noisy := run(Config{PredictionErrorFactor: factor, PredictionErrorSeed: 7})
	again := run(Config{PredictionErrorFactor: factor, PredictionErrorSeed: 7})
	if len(noisy) != len(exact) {
		t.Fatalf("noise changed intent count: %d vs %d", len(noisy), len(exact))
	}
	byMap := make(map[int][]float64)
	for _, in := range exact {
		byMap[in.Map] = in.PredictedWireBytes
	}
	changed := false
	for _, in := range noisy {
		want := byMap[in.Map]
		for r, p := range in.PredictedWireBytes {
			if want[r] <= 0 {
				if p != want[r] {
					t.Fatalf("noise touched a zero prediction: map %d r %d", in.Map, r)
				}
				continue
			}
			lo, hi := want[r]*(1-factor), want[r]*(1+factor)
			if p < lo || p > hi {
				t.Fatalf("map %d r %d: noisy %v outside [%v, %v]", in.Map, r, p, lo, hi)
			}
			if p != want[r] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("50% error factor changed no prediction")
	}
	for i := range noisy {
		for r := range noisy[i].PredictedWireBytes {
			if noisy[i].PredictedWireBytes[r] != again[i].PredictedWireBytes[r] {
				t.Fatal("same seed, different noise")
			}
		}
	}
}
