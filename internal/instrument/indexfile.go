// Package instrument implements Pythia's Hadoop instrumentation middleware:
// the per-server process that watches the local tasktracker, receives
// filesystem notifications when a finished map task spills its intermediate
// output, decodes the map-output index file to learn per-reducer partition
// sizes, and ships a shuffle-intent prediction to the Pythia collector over
// the management network — all transparently to Hadoop and the application.
//
// The index-file codec mirrors Hadoop 1.x's SpillRecord on-disk layout (one
// fixed-width record per partition: start offset, raw length, part length,
// followed by a checksum), so the "deep Hadoop index/sequence file analysis"
// the paper credits for its prediction timeliness is performed on real
// encoded bytes here, not on in-memory shortcuts.
package instrument

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Index-file format constants.
const (
	indexMagic   = 0x50594958 // "PYIX"
	indexVersion = 1
	segmentSize  = 24 // three uint64s per partition
	headerSize   = 10 // magic u32 + version u16 + count u32
)

// Errors returned by DecodeIndex.
var (
	ErrIndexTruncated = errors.New("instrument: index file truncated")
	ErrIndexMagic     = errors.New("instrument: bad index magic")
	ErrIndexVersion   = errors.New("instrument: unsupported index version")
	ErrIndexChecksum  = errors.New("instrument: index checksum mismatch")
)

// Segment is one partition's extent in the spilled map output, as recorded
// by the index file: RawLength is the uncompressed key/value byte count,
// PartLength the on-disk segment length (IFile framing included).
type Segment struct {
	Start      uint64
	RawLength  uint64
	PartLength uint64
}

// IndexFile is the decoded per-map spill index: Segments[r] describes the
// partition destined for reducer r.
type IndexFile struct {
	Segments []Segment
}

// IFileFramingFactor is the on-disk expansion from raw key/value bytes to
// IFile segment bytes (record length prefixes, EOF markers, checksums).
// 1.5% matches the measured overhead of the record codec in ifile.go for
// typical ~200-byte shuffle records (two to three VInt prefix bytes per
// record) — see TestFramingOverheadJustifiesFactor.
const IFileFramingFactor = 1.015

// BuildIndex constructs the index a finished map with the given per-reducer
// payload byte counts would write. Offsets are cumulative over the part
// lengths, as on disk.
func BuildIndex(partitions []float64) *IndexFile {
	f := &IndexFile{Segments: make([]Segment, len(partitions))}
	var off uint64
	for r, p := range partitions {
		if p < 0 {
			panic(fmt.Sprintf("instrument: negative partition %d", r))
		}
		raw := uint64(p)
		part := uint64(p * IFileFramingFactor)
		f.Segments[r] = Segment{Start: off, RawLength: raw, PartLength: part}
		off += part
	}
	return f
}

// Encode serializes the index with a trailing CRC-32.
func (f *IndexFile) Encode() []byte {
	buf := make([]byte, headerSize+segmentSize*len(f.Segments)+4)
	binary.BigEndian.PutUint32(buf[0:4], indexMagic)
	binary.BigEndian.PutUint16(buf[4:6], indexVersion)
	binary.BigEndian.PutUint32(buf[6:10], uint32(len(f.Segments)))
	at := headerSize
	for _, s := range f.Segments {
		binary.BigEndian.PutUint64(buf[at:], s.Start)
		binary.BigEndian.PutUint64(buf[at+8:], s.RawLength)
		binary.BigEndian.PutUint64(buf[at+16:], s.PartLength)
		at += segmentSize
	}
	crc := crc32.ChecksumIEEE(buf[:at])
	binary.BigEndian.PutUint32(buf[at:], crc)
	return buf
}

// DecodeIndex parses and verifies an encoded index file.
func DecodeIndex(b []byte) (*IndexFile, error) {
	if len(b) < headerSize+4 {
		return nil, ErrIndexTruncated
	}
	if binary.BigEndian.Uint32(b[0:4]) != indexMagic {
		return nil, ErrIndexMagic
	}
	if binary.BigEndian.Uint16(b[4:6]) != indexVersion {
		return nil, ErrIndexVersion
	}
	count := int(binary.BigEndian.Uint32(b[6:10]))
	want := headerSize + segmentSize*count + 4
	if len(b) != want {
		return nil, ErrIndexTruncated
	}
	body := b[:want-4]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(b[want-4:]) {
		return nil, ErrIndexChecksum
	}
	f := &IndexFile{Segments: make([]Segment, count)}
	at := headerSize
	for i := 0; i < count; i++ {
		f.Segments[i] = Segment{
			Start:      binary.BigEndian.Uint64(b[at:]),
			RawLength:  binary.BigEndian.Uint64(b[at+8:]),
			PartLength: binary.BigEndian.Uint64(b[at+16:]),
		}
		at += segmentSize
	}
	return f, nil
}

// TotalRaw sums the raw partition bytes.
func (f *IndexFile) TotalRaw() uint64 {
	var t uint64
	for _, s := range f.Segments {
		t += s.RawLength
	}
	return t
}
