package instrument

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// Hadoop VInt compatibility: known encodings from the WritableUtils spec.
func TestVLongKnownEncodings(t *testing.T) {
	cases := []struct {
		v    int64
		want []byte
	}{
		{0, []byte{0x00}},
		{127, []byte{0x7f}},
		{-112, []byte{0x90}},
		{128, []byte{0x8f, 0x80}},        // -113, then 0x80
		{255, []byte{0x8f, 0xff}},        // one magnitude byte
		{256, []byte{0x8e, 0x01, 0x00}},  // two magnitude bytes
		{-113, []byte{0x87, 0x70}},       // negative: -121, ^v = 112
		{-256, []byte{0x87, 0xff}},       // ^(-256) = 255
		{-257, []byte{0x86, 0x01, 0x00}}, // ^(-257) = 256
		{1 << 40, []byte{0x8a, 0x01, 0, 0, 0, 0, 0}},
	}
	for _, c := range cases {
		got := AppendVLong(nil, c.v)
		if !bytes.Equal(got, c.want) {
			t.Errorf("encode(%d) = %x, want %x", c.v, got, c.want)
		}
		back, n, err := ReadVLong(got)
		if err != nil || back != c.v || n != len(got) {
			t.Errorf("decode(%x) = %d,%d,%v", got, back, n, err)
		}
		if VLongLen(c.v) != len(c.want) {
			t.Errorf("VLongLen(%d) = %d, want %d", c.v, VLongLen(c.v), len(c.want))
		}
	}
}

// Property: VLong round-trips for any int64.
func TestPropertyVLongRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		enc := AppendVLong(nil, v)
		got, n, err := ReadVLong(enc)
		return err == nil && got == v && n == len(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReadVLongErrors(t *testing.T) {
	if _, _, err := ReadVLong(nil); err != ErrVIntTruncated {
		t.Fatalf("empty: %v", err)
	}
	// Multi-byte header with missing magnitude bytes.
	if _, _, err := ReadVLong([]byte{0x8e, 0x01}); err != ErrVIntTruncated {
		t.Fatalf("truncated magnitude: %v", err)
	}
}

func TestIFileSegmentRoundTrip(t *testing.T) {
	records := []IFileRecord{
		{Key: []byte("alpha"), Value: []byte("1")},
		{Key: []byte("beta"), Value: bytes.Repeat([]byte("x"), 300)},
		{Key: []byte{}, Value: []byte{}},
	}
	seg := EncodeIFileSegment(records)
	got, stats, err := DecodeIFileSegment(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("records = %d", len(got))
	}
	for i := range records {
		if !bytes.Equal(got[i].Key, records[i].Key) || !bytes.Equal(got[i].Value, records[i].Value) {
			t.Fatalf("record %d mangled", i)
		}
	}
	if stats.Records != 3 || stats.KeyBytes != 9 || stats.ValBytes != 301 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.WireBytes != int64(len(seg)) {
		t.Fatal("wire bytes wrong")
	}
}

func TestIFileEmptySegment(t *testing.T) {
	seg := EncodeIFileSegment(nil)
	got, stats, err := DecodeIFileSegment(seg)
	if err != nil || len(got) != 0 || stats.Records != 0 {
		t.Fatalf("empty segment: %v %v %+v", got, err, stats)
	}
}

func TestIFileCorruptionDetected(t *testing.T) {
	seg := EncodeIFileSegment([]IFileRecord{{Key: []byte("k"), Value: []byte("v")}})
	bad := append([]byte(nil), seg...)
	bad[1] ^= 0xFF
	if _, _, err := DecodeIFileSegment(bad); err == nil {
		t.Fatal("corrupted segment accepted")
	}
	if _, _, err := DecodeIFileSegment(seg[:2]); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

func TestFramingOverheadJustifiesFactor(t *testing.T) {
	// With ~200-byte records (typical shuffle key/values), the measured
	// IFile framing overhead sits near the 1% IFileFramingFactor the
	// index builder assumes.
	var records []IFileRecord
	for i := 0; i < 1000; i++ {
		records = append(records, IFileRecord{
			Key:   bytes.Repeat([]byte("k"), 20),
			Value: bytes.Repeat([]byte("v"), 180),
		})
	}
	_, stats, err := DecodeIFileSegment(EncodeIFileSegment(records))
	if err != nil {
		t.Fatal(err)
	}
	over := stats.FramingOverhead()
	if math.Abs(over-(IFileFramingFactor-1)) > 0.005 {
		t.Fatalf("measured framing overhead %.4f vs assumed %.4f", over, IFileFramingFactor-1)
	}
}

func TestSampleIFileStats(t *testing.T) {
	var records []IFileRecord
	for i := 0; i < 100; i++ {
		records = append(records, IFileRecord{Key: []byte("key"), Value: []byte("value")})
	}
	seg := EncodeIFileSegment(records)
	stats, err := SampleIFileStats(seg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 10 {
		t.Fatalf("sampled %d records, want 10", stats.Records)
	}
	// Mean record size from the sample predicts the full segment.
	meanRec := float64(stats.KeyBytes+stats.ValBytes) / float64(stats.Records)
	if meanRec != 8 {
		t.Fatalf("mean record = %v, want 8", meanRec)
	}
	// Sampling more than exist stops at EOF.
	all, err := SampleIFileStats(seg, 1000)
	if err != nil || all.Records != 100 {
		t.Fatalf("full sample: %+v %v", all, err)
	}
}

// Property: segments of arbitrary record shapes round-trip and overhead is
// always positive.
func TestPropertyIFileRoundTrip(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 64 {
			return true
		}
		var records []IFileRecord
		for _, s := range sizes {
			records = append(records, IFileRecord{
				Key:   bytes.Repeat([]byte{0xAB}, int(s%32)),
				Value: bytes.Repeat([]byte{0xCD}, int(s)),
			})
		}
		seg := EncodeIFileSegment(records)
		got, stats, err := DecodeIFileSegment(seg)
		if err != nil || len(got) != len(records) {
			return false
		}
		return stats.WireBytes > stats.KeyBytes+stats.ValBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeIFile hardens the record parser against arbitrary bytes.
func FuzzDecodeIFile(f *testing.F) {
	f.Add(EncodeIFileSegment(nil))
	f.Add(EncodeIFileSegment([]IFileRecord{{Key: []byte("k"), Value: []byte("v")}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success, re-encode round-trips.
		recs, _, err := DecodeIFileSegment(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeIFileSegment(recs), data) {
			t.Fatal("decode/encode not a round trip")
		}
	})
}
