package hadoop

import (
	"fmt"

	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// PathResolver chooses a network path for a shuffle flow. The ECMP baseline,
// the OpenFlow fabric (consulted by Pythia-installed rules) and the
// Hedera-like baseline all implement this.
type PathResolver interface {
	ResolveShuffle(t netsim.FiveTuple) (topology.Path, error)
}

// OutputSink persists reducer output; hdfs.FileSystem implements it. done
// must be invoked exactly once when the data is durable.
type OutputSink interface {
	WriteOutput(client topology.NodeID, name string, bytes float64, done func())
}

// InputSource provides map-input block locations; hdfs.FileSystem implements
// it. BlockReplicas returns the hosts holding block idx of the named file,
// and ReadBlock streams that block to a non-local reader.
type InputSource interface {
	BlockReplicas(name string, idx int) ([]topology.NodeID, bool)
	ReadBlock(client topology.NodeID, name string, idx int, done func()) error
}

// ShufflePort is the well-known tasktracker HTTP port that sources shuffle
// data in Hadoop 1.x (the paper post-processed NetFlow traces filtering on
// it). The data flows mapper-server → reducer-server; the reducer side's
// ephemeral port is the unknowable one.
const ShufflePort = 50060

// Config shapes a simulated Hadoop cluster. Zero values take defaults via
// Defaults.
type Config struct {
	// MapSlots and ReduceSlots are per tasktracker.
	MapSlots    int
	ReduceSlots int
	// SlowstartFraction of maps must finish before reducers launch
	// (mapred.reduce.slowstart.completed.maps; Hadoop default 0.05).
	SlowstartFraction float64
	// ParallelCopies bounds each reducer's concurrent fetches
	// (mapred.reduce.parallel.copies; Hadoop default 5).
	ParallelCopies int
	// HeartbeatInterval is the tasktracker heartbeat period; out-of-band
	// heartbeats fire on task completion as in Hadoop 1.1.x.
	HeartbeatInterval sim.Duration
	// EventPollInterval is how often running reducers learn of newly
	// completed maps (TaskCompletionEvents piggyback on heartbeats).
	// Together with fetch queueing this produces the multi-second gap
	// between map finish and fetch start that gives Pythia its lead.
	EventPollInterval sim.Duration
	// FetchSetupDelay models per-fetch HTTP connection setup.
	FetchSetupDelay sim.Duration
	// FetchRetryDelay is the backoff before retrying a fetch that could
	// not be routed (e.g. during a network partition); Hadoop retries
	// failed copies rather than failing the reducer.
	FetchRetryDelay sim.Duration
	// WireOverheadFactor scales payload bytes to on-the-wire bytes
	// (TCP/IP/Ethernet headers ≈ 4.5% at 1448-byte MSS).
	WireOverheadFactor float64
	// Speculative enables speculative map execution
	// (mapred.map.tasks.speculative.execution): when slots idle and a
	// running map lags well beyond the typical duration, a second attempt
	// launches on another tracker; the first finisher wins. The losing
	// attempt may still spill before it is killed, which is how duplicate
	// shuffle-intent predictions reach Pythia.
	Speculative bool
	// SpeculativeLagFactor: a map is a straggler candidate once its
	// elapsed time exceeds this multiple of the median completed-map
	// duration (default 1.5).
	SpeculativeLagFactor float64
}

// Defaults fills unset fields with Hadoop-1.1-like values.
func (c Config) Defaults() Config {
	if c.MapSlots == 0 {
		c.MapSlots = 2
	}
	if c.ReduceSlots == 0 {
		c.ReduceSlots = 2
	}
	if c.SlowstartFraction == 0 {
		c.SlowstartFraction = 0.05
	}
	if c.ParallelCopies == 0 {
		c.ParallelCopies = 5
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 3 * sim.Second
	}
	if c.EventPollInterval == 0 {
		c.EventPollInterval = 3 * sim.Second
	}
	if c.FetchSetupDelay == 0 {
		c.FetchSetupDelay = 50 * sim.Millisecond
	}
	if c.FetchRetryDelay == 0 {
		c.FetchRetryDelay = 5 * sim.Second
	}
	if c.SpeculativeLagFactor == 0 {
		c.SpeculativeLagFactor = 1.5
	}
	if c.WireOverheadFactor == 0 {
		c.WireOverheadFactor = 1.045
	}
	return c
}

// mapAttempt is one in-flight map attempt's completion event.
type mapAttempt struct {
	ev *sim.Event
	tr *taskTracker
	at sim.Time
	id int // 1-based attempt number
}

// Spill describes one map attempt's on-disk output at the instant it lands.
// Unlike MapTask.Tracker — which always points at the winning attempt — it
// names the attempt and tracker that actually produced this spill, so
// instrumentation can attribute a losing speculative attempt's output to the
// server it really lives on.
type Spill struct {
	// Attempt is the 1-based attempt number that spilled.
	Attempt int
	// Tracker is the tasktracker index that ran the spilling attempt.
	Tracker int
	// Partitions is the per-reducer payload byte vector of the spill.
	Partitions []float64
}

// taskTracker is the per-server agent controlling local task slots.
type taskTracker struct {
	index    int
	host     topology.NodeID
	freeMap  int
	freeRed  int
	nextPort uint16
}

// Cluster is the simulated Hadoop deployment: a jobtracker plus one
// tasktracker per host.
type Cluster struct {
	eng      *sim.Engine
	net      *netsim.Network
	resolver PathResolver
	cfg      Config

	trackers  []*taskTracker
	jobs      []*Job
	nextJob   int
	hbRunning bool

	// Speculation metrics.
	SpeculativeLaunched int
	SpeculativeWins     int
	SpeculativeKilled   int

	// sink receives reducer output write-backs (nil: outputs are dropped,
	// as when jobs chain through in-memory stores).
	sink OutputSink
	// input provides map-input block locations for locality-aware
	// scheduling (nil: inputs are assumed local, the paper's setup).
	input InputSource

	// attempts tracks in-flight map attempt completion events per
	// (job, map), so losers can be killed when a winner finishes.
	attempts map[[2]int][]*mapAttempt

	// listeners (instrumentation middleware, trace recorder, tests)
	onMapScheduled    []func(*Job, *MapTask)
	onMapSpilled      []func(*Job, *MapTask, Spill)
	onMapFinished     []func(*Job, *MapTask, []float64)
	onReduceScheduled []func(*Job, *ReduceTask)
	onFetchStart      []func(*Job, int, int, *netsim.Flow)
	onFetchDone       []func(*Job, int, int, *netsim.Flow)
	onJobDone         []func(*Job)
}

// NewCluster builds a cluster whose tasktrackers run on the given hosts.
func NewCluster(eng *sim.Engine, net *netsim.Network, hosts []topology.NodeID, resolver PathResolver, cfg Config) *Cluster {
	if len(hosts) == 0 {
		panic("hadoop: cluster needs at least one host")
	}
	if resolver == nil {
		panic("hadoop: nil path resolver")
	}
	cfg = cfg.Defaults()
	c := &Cluster{eng: eng, net: net, resolver: resolver, cfg: cfg,
		attempts: make(map[[2]int][]*mapAttempt)}
	for i, h := range hosts {
		c.trackers = append(c.trackers, &taskTracker{
			index:    i,
			host:     h,
			freeMap:  cfg.MapSlots,
			freeRed:  cfg.ReduceSlots,
			nextPort: 20000,
		})
	}
	return c
}

// Config returns the effective (default-filled) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Hosts returns the tasktracker hosts in index order.
func (c *Cluster) Hosts() []topology.NodeID {
	hs := make([]topology.NodeID, len(c.trackers))
	for i, t := range c.trackers {
		hs[i] = t.host
	}
	return hs
}

// HostOf maps a tracker index to its topology node.
func (c *Cluster) HostOf(tracker int) topology.NodeID { return c.trackers[tracker].host }

// OnMapScheduled registers a listener for map task placement.
func (c *Cluster) OnMapScheduled(fn func(*Job, *MapTask)) {
	c.onMapScheduled = append(c.onMapScheduled, fn)
}

// OnMapSpilled registers a listener for spill events, carrying the attempt
// identity (the dedup key Pythia's collector relies on) and the tracker the
// spill actually landed on. Spill listeners fire before OnMapFinished
// listeners for the same event.
func (c *Cluster) OnMapSpilled(fn func(*Job, *MapTask, Spill)) {
	c.onMapSpilled = append(c.onMapSpilled, fn)
}

// OnMapFinished registers a listener for map completion; partitions is the
// per-reducer payload byte vector of the spilled output (what the index
// file records).
func (c *Cluster) OnMapFinished(fn func(*Job, *MapTask, []float64)) {
	c.onMapFinished = append(c.onMapFinished, fn)
}

// OnReduceScheduled registers a listener for reducer placement (Pythia's
// destination back-fill trigger).
func (c *Cluster) OnReduceScheduled(fn func(*Job, *ReduceTask)) {
	c.onReduceScheduled = append(c.onReduceScheduled, fn)
}

// OnFetchStart registers a listener for shuffle fetch start (map, reduce
// indices and the carrying flow; flow is nil for empty partitions).
func (c *Cluster) OnFetchStart(fn func(j *Job, mapID, reduceID int, f *netsim.Flow)) {
	c.onFetchStart = append(c.onFetchStart, fn)
}

// OnFetchDone registers a listener for shuffle fetch completion.
func (c *Cluster) OnFetchDone(fn func(j *Job, mapID, reduceID int, f *netsim.Flow)) {
	c.onFetchDone = append(c.onFetchDone, fn)
}

// OnJobDone registers a completion listener.
func (c *Cluster) OnJobDone(fn func(*Job)) { c.onJobDone = append(c.onJobDone, fn) }

// SetOutputSink attaches the distributed filesystem reducers write back to.
// Jobs whose specs set ReduceOutputRatio > 0 then include the write-back
// phase in their completion time.
func (c *Cluster) SetOutputSink(sink OutputSink) { c.sink = sink }

// SetInputSource attaches the filesystem map inputs are read from. Jobs
// whose specs name an InputFile then get data-local scheduling, with
// non-local maps streaming their block across the fabric first.
func (c *Cluster) SetInputSource(src InputSource) { c.input = src }

// Submit enqueues a job for execution and starts the heartbeat machinery.
// It returns the runtime job handle.
func (c *Cluster) Submit(spec *JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	j := &Job{
		ID:        c.nextJob,
		Spec:      spec,
		Submitted: c.eng.Now(),
	}
	c.nextJob++
	for m := 0; m < spec.NumMaps; m++ {
		j.Maps = append(j.Maps, &MapTask{ID: m, Tracker: -1})
		j.pendingMaps = append(j.pendingMaps, m)
	}
	for r := 0; r < spec.NumReduces; r++ {
		j.Reduces = append(j.Reduces, &ReduceTask{ID: r, Tracker: -1, fetched: make(map[int]bool)})
	}
	c.jobs = append(c.jobs, j)
	// First heartbeat round fires immediately on submission, then the
	// trackers settle into their periodic cycle.
	if !c.hbRunning {
		c.hbRunning = true
		c.eng.After(0, c.heartbeatAll)
	}
	return j, nil
}

// heartbeatAll runs a scheduling round over all trackers (deterministic
// index order) and re-arms the periodic heartbeat while work remains.
func (c *Cluster) heartbeatAll() {
	c.schedule()
	if c.pendingWork() {
		c.eng.After(c.cfg.HeartbeatInterval, c.heartbeatAll)
	} else {
		c.hbRunning = false
	}
}

func (c *Cluster) pendingWork() bool {
	for _, j := range c.jobs {
		if !j.Done {
			return true
		}
	}
	return false
}

// schedule assigns pending tasks to free slots, FIFO over jobs, spreading
// tasks round-robin over trackers.
func (c *Cluster) schedule() {
	for _, j := range c.jobs {
		if j.Done {
			continue
		}
		// Maps first: each free slot pulls a task, preferring one whose
		// input block lives on the tracker's host (Hadoop's data-local
		// pick on heartbeat).
		for len(j.pendingMaps) > 0 {
			tr := c.freestMapTracker()
			if tr == nil {
				break
			}
			idx, local := c.pickMap(j, tr)
			mapID := j.pendingMaps[idx]
			j.pendingMaps = append(j.pendingMaps[:idx], j.pendingMaps[idx+1:]...)
			c.startMap(j, j.Maps[mapID], tr, local)
		}
		if c.cfg.Speculative {
			c.maybeSpeculate(j)
		}
		// Reducers after slow-start.
		threshold := int(c.cfg.SlowstartFraction * float64(j.Spec.NumMaps))
		if threshold < 1 {
			threshold = 1
		}
		if j.mapsCompleted >= threshold {
			for j.nextReduce < j.Spec.NumReduces {
				tr := c.freestReduceTracker()
				if tr == nil {
					break
				}
				c.startReduce(j, j.Reduces[j.nextReduce], tr)
				j.nextReduce++
			}
		}
	}
}

// freestMapTracker picks the tracker with the most free map slots,
// tie-break by index — a simple deterministic spread.
func (c *Cluster) freestMapTracker() *taskTracker {
	var best *taskTracker
	for _, t := range c.trackers {
		if t.freeMap <= 0 {
			continue
		}
		if best == nil || t.freeMap > best.freeMap {
			best = t
		}
	}
	return best
}

func (c *Cluster) freestReduceTracker() *taskTracker {
	var best *taskTracker
	for _, t := range c.trackers {
		if t.freeRed <= 0 {
			continue
		}
		if best == nil || t.freeRed > best.freeRed {
			best = t
		}
	}
	return best
}

// pickMap chooses which pending map a tracker should run: the first one
// with an input replica on this host, else FIFO head. It returns the index
// into j.pendingMaps and whether the choice is data-local. Without an input
// source (or input file) everything is treated as local, matching the
// paper's setup.
func (c *Cluster) pickMap(j *Job, tr *taskTracker) (idx int, local bool) {
	if c.input == nil || j.Spec.InputFile == "" {
		return 0, true
	}
	for i, mapID := range j.pendingMaps {
		replicas, ok := c.input.BlockReplicas(j.Spec.InputFile, mapID)
		if !ok {
			continue
		}
		for _, r := range replicas {
			if r == tr.host {
				return i, true
			}
		}
	}
	return 0, false
}

func (c *Cluster) startMap(j *Job, m *MapTask, tr *taskTracker, local bool) {
	m.State = Running
	m.Tracker = tr.index
	m.Scheduled = c.eng.Now()
	m.Attempts = 1
	tr.freeMap--
	for _, fn := range c.onMapScheduled {
		fn(j, m)
	}
	compute := func() {
		d := sim.Duration(j.Spec.MapDurations[m.ID])
		ev := c.eng.After(d, func() { c.finishMap(j, m, tr, 1) })
		c.attempts[[2]int{j.ID, m.ID}] = append(c.attempts[[2]int{j.ID, m.ID}],
			&mapAttempt{ev: ev, tr: tr, at: c.eng.Now().Add(d), id: 1})
	}
	if local || c.input == nil || j.Spec.InputFile == "" {
		if c.input != nil && j.Spec.InputFile != "" {
			j.LocalMaps++
		}
		compute()
		return
	}
	// Non-local: stream the input block from a replica before computing.
	j.RemoteMaps++
	if err := c.input.ReadBlock(tr.host, j.Spec.InputFile, m.ID, compute); err != nil {
		// Block index out of range (spec larger than file): degrade to
		// local, as with generated inputs.
		compute()
	}
}

// maybeSpeculate launches backup attempts for straggling maps when slots
// idle, on a tracker other than the original's (otherwise the backup would
// share the straggler's cause).
func (c *Cluster) maybeSpeculate(j *Job) {
	median := j.medianCompletedMapSec()
	if median <= 0 {
		return
	}
	threshold := sim.Duration(c.cfg.SpeculativeLagFactor * median)
	now := c.eng.Now()
	for _, m := range j.Maps {
		if m.State != Running || m.speculating {
			continue
		}
		if now.Sub(m.Scheduled) <= threshold {
			continue
		}
		var backup *taskTracker
		for _, t := range c.trackers {
			if t.index == m.Tracker || t.freeMap <= 0 {
				continue
			}
			if backup == nil || t.freeMap > backup.freeMap {
				backup = t
			}
		}
		if backup == nil {
			return // no foreign slot free; try next heartbeat
		}
		m.speculating = true
		m.Attempts++
		attempt := m.Attempts
		backup.freeMap--
		c.SpeculativeLaunched++
		// A healthy rerun takes about the median duration.
		ev := c.eng.After(sim.Duration(median), func() { c.finishMap(j, m, backup, attempt) })
		c.attempts[[2]int{j.ID, m.ID}] = append(c.attempts[[2]int{j.ID, m.ID}],
			&mapAttempt{ev: ev, tr: backup, at: now.Add(sim.Duration(median)), id: attempt})
	}
}

func (c *Cluster) finishMap(j *Job, m *MapTask, tr *taskTracker, attempt int) {
	if m.State == Completed {
		// The losing attempt of a speculated map: it still spilled its
		// output before the kill reached it, so the spill listeners
		// (and therefore Pythia's instrumentation) see a duplicate.
		tr.freeMap++
		partitions := append([]float64(nil), j.Spec.MapOutputs[m.ID]...)
		for _, fn := range c.onMapSpilled {
			fn(j, m, Spill{Attempt: attempt, Tracker: tr.index, Partitions: partitions})
		}
		for _, fn := range c.onMapFinished {
			fn(j, m, partitions)
		}
		c.schedule()
		return
	}
	if m.speculating {
		m.speculating = false
		if tr.index != m.Tracker {
			c.SpeculativeWins++
		}
	}
	// Kill losing attempts whose completion lies beyond the kill latency
	// (one heartbeat): they free their slot and never spill. Losers that
	// finish sooner escape the kill and produce a duplicate spill.
	key := [2]int{j.ID, m.ID}
	killBy := c.eng.Now().Add(c.cfg.HeartbeatInterval)
	for _, at := range c.attempts[key] {
		if at.ev.Cancelled() || at.at <= c.eng.Now() || at.tr == tr {
			continue
		}
		if at.at > killBy {
			c.eng.Cancel(at.ev)
			at.tr.freeMap++
			c.SpeculativeKilled++
		}
	}
	delete(c.attempts, key)
	m.State = Completed
	m.Tracker = tr.index // winner sources the shuffle fetches
	m.Finished = c.eng.Now()
	tr.freeMap++
	j.mapsCompleted++
	j.completedMapSec = append(j.completedMapSec, float64(c.eng.Now().Sub(m.Scheduled)))
	if j.mapsCompleted == j.Spec.NumMaps {
		j.MapPhaseEnd = c.eng.Now()
	}
	// Spill: the intermediate output (and its index) now exists on disk.
	// This is the instant Pythia's filesystem notification fires.
	partitions := append([]float64(nil), j.Spec.MapOutputs[m.ID]...)
	for _, fn := range c.onMapSpilled {
		fn(j, m, Spill{Attempt: attempt, Tracker: tr.index, Partitions: partitions})
	}
	for _, fn := range c.onMapFinished {
		fn(j, m, partitions)
	}
	// Out-of-band heartbeat: freed slot is reusable immediately.
	c.schedule()
}

func (c *Cluster) startReduce(j *Job, r *ReduceTask, tr *taskTracker) {
	r.State = Shuffling
	r.Tracker = tr.index
	r.Scheduled = c.eng.Now()
	tr.freeRed--
	for _, fn := range c.onReduceScheduled {
		fn(j, r)
	}
	c.pollCompletions(j, r)
}

// pollCompletions adds newly learned completed maps to the reducer's fetch
// queue and re-arms the poll; it embodies the TaskCompletionEvent polling
// delay.
func (c *Cluster) pollCompletions(j *Job, r *ReduceTask) {
	if r.State != Shuffling {
		return
	}
	for m := 0; m < j.Spec.NumMaps; m++ {
		if j.Maps[m].State == Completed && !r.fetched[m] {
			r.fetched[m] = true // claimed: queued or in flight
			r.queue = append(r.queue, m)
		}
	}
	c.pumpFetches(j, r)
	if r.fetchedDone < j.Spec.NumMaps {
		c.eng.After(c.cfg.EventPollInterval, func() { c.pollCompletions(j, r) })
	}
}

// pumpFetches starts fetches up to the parallel-copy bound.
func (c *Cluster) pumpFetches(j *Job, r *ReduceTask) {
	for r.active < c.cfg.ParallelCopies && len(r.queue) > 0 {
		m := r.queue[0]
		r.queue = r.queue[1:]
		c.startFetch(j, r, m)
	}
}

func (c *Cluster) startFetch(j *Job, r *ReduceTask, m int) {
	payload := j.Spec.MapOutputs[m][r.ID]
	if payload == 0 {
		// Nothing to move; complete immediately without a flow.
		r.fetchedDone++
		for _, fn := range c.onFetchStart {
			fn(j, m, r.ID, nil)
		}
		for _, fn := range c.onFetchDone {
			fn(j, m, r.ID, nil)
		}
		c.maybeFinishShuffle(j, r)
		return
	}
	r.active++
	srcTracker := c.trackers[j.Maps[m].Tracker]
	dstTracker := c.trackers[r.Tracker]
	c.eng.After(c.cfg.FetchSetupDelay, func() {
		port := dstTracker.nextPort
		dstTracker.nextPort++
		if dstTracker.nextPort == 0 {
			dstTracker.nextPort = 20000
		}
		tuple := netsim.FiveTuple{
			SrcHost:  srcTracker.host,
			DstHost:  dstTracker.host,
			SrcPort:  ShufflePort,
			DstPort:  port,
			Protocol: 6,
		}
		path, err := c.resolver.ResolveShuffle(tuple)
		if err != nil {
			// Unroutable right now (e.g. partition). Back off and retry,
			// as Hadoop's copier threads do on fetch failures.
			r.active--
			c.eng.After(c.cfg.FetchRetryDelay, func() {
				r.queue = append(r.queue, m)
				c.pumpFetches(j, r)
			})
			return
		}
		wire := payload * c.cfg.WireOverheadFactor
		flow := c.net.StartFlow(tuple, netsim.Shuffle, path, wire*8, j.ID, m, r.ID, func(f *netsim.Flow) {
			r.active--
			r.fetchedDone++
			r.FetchedBytes += payload
			for _, fn := range c.onFetchDone {
				fn(j, m, r.ID, f)
			}
			c.pumpFetches(j, r)
			c.maybeFinishShuffle(j, r)
		})
		for _, fn := range c.onFetchStart {
			fn(j, m, r.ID, flow)
		}
	})
}

func (c *Cluster) maybeFinishShuffle(j *Job, r *ReduceTask) {
	if r.State != Shuffling || r.fetchedDone < j.Spec.NumMaps {
		return
	}
	r.State = Reducing
	r.ShuffleDone = c.eng.Now()
	compute := j.Spec.ReduceBaseSec + j.Spec.ReduceSecPerMB*(r.FetchedBytes/1e6)
	c.eng.After(sim.Duration(compute), func() {
		out := j.Spec.ReduceOutputRatio * r.FetchedBytes
		if c.sink == nil || out <= 0 {
			c.finishReduce(j, r)
			return
		}
		// Write-back: the reduce task holds its slot until the output is
		// durable in the distributed filesystem.
		name := fmt.Sprintf("/job-%d/part-%05d", j.ID, r.ID)
		c.sink.WriteOutput(c.trackers[r.Tracker].host, name, out, func() {
			c.finishReduce(j, r)
		})
	})
}

func (c *Cluster) finishReduce(j *Job, r *ReduceTask) {
	r.State = Completed
	r.Finished = c.eng.Now()
	c.trackers[r.Tracker].freeRed++
	j.reducesCompleted++
	if r.ShuffleDone > j.ShuffleEnd {
		j.ShuffleEnd = r.ShuffleDone
	}
	if j.reducesCompleted == j.Spec.NumReduces {
		j.Done = true
		j.Finished = c.eng.Now()
		for _, fn := range c.onJobDone {
			fn(j)
		}
	}
	c.schedule()
}
