package hadoop

import (
	"testing"
	"testing/quick"

	"pythia/internal/ecmp"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Fetch-retry semantics under partitions, and poll/parallelism timing.

func TestFetchRetriesAcrossPartition(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), Config{})
	j, _ := cl.Submit(uniformSpec(8, 4, 1, 5e6))
	// Partition both trunks from t=2 (before fetches can finish) to t=20.
	setAll := func(up bool) {
		for _, tr := range trunks {
			g.SetLinkUp(tr, up)
			if r, ok := g.Reverse(tr); ok {
				g.SetLinkUp(r, up)
			}
		}
		net.NotifyTopology()
	}
	eng.At(2, func() { setAll(false) })
	eng.At(20, func() { setAll(true) })
	eng.Run()
	if !j.Done {
		t.Fatal("job did not recover from partition (fetch retries broken)")
	}
	if float64(j.Finished) < 20 {
		// Only possible if nothing inter-rack existed; with 4 reducers
		// over 10 hosts some inter-rack traffic is certain.
		t.Fatalf("job finished at %v during partition", j.Finished)
	}
}

func TestEventPollIntervalBoundsFetchLag(t *testing.T) {
	// With a long poll interval, the gap between map completion and its
	// fetch grows accordingly.
	gapFor := func(poll sim.Duration) float64 {
		eng := sim.NewEngine()
		g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
		net := netsim.New(eng, g)
		cl := NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), Config{EventPollInterval: poll})
		spec := uniformSpec(10, 2, 2, 1e6)
		// Stagger maps so late completions land between polls.
		for m := range spec.MapDurations {
			spec.MapDurations[m] = float64(m)*1.7 + 1
		}
		mapDone := map[int]sim.Time{}
		totalGap, n := 0.0, 0
		cl.OnMapFinished(func(j *Job, m *MapTask, _ []float64) { mapDone[m.ID] = m.Finished })
		cl.OnFetchStart(func(j *Job, mapID, reduceID int, f *netsim.Flow) {
			totalGap += float64(eng.Now().Sub(mapDone[mapID]))
			n++
		})
		cl.Submit(spec)
		eng.Run()
		return totalGap / float64(n)
	}
	short := gapFor(0.5)
	long := gapFor(6)
	if long <= short {
		t.Fatalf("mean fetch gap did not grow with poll interval: %.2f vs %.2f", short, long)
	}
}

func TestTwoJobsShareSlots(t *testing.T) {
	// FIFO scheduler: job 0's maps occupy the slots first; job 1 still
	// finishes, after job 0's map phase clears.
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), Config{})
	j1, _ := cl.Submit(uniformSpec(40, 2, 2, 1e6))
	j2, _ := cl.Submit(uniformSpec(40, 2, 2, 1e6))
	eng.Run()
	if !j1.Done || !j2.Done {
		t.Fatal("jobs did not finish")
	}
	if j2.Finished < j1.MapPhaseEnd {
		t.Fatal("FIFO violated: job2 finished before job1's map phase")
	}
}

func TestFetchSetupDelayVisible(t *testing.T) {
	slow := func(d sim.Duration) float64 {
		eng := sim.NewEngine()
		g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
		net := netsim.New(eng, g)
		cl := NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), Config{FetchSetupDelay: d})
		j, _ := cl.Submit(uniformSpec(10, 2, 1, 1e6))
		eng.Run()
		return float64(j.Duration())
	}
	if slow(2) <= slow(0.01) {
		t.Fatal("per-fetch setup delay had no effect")
	}
}

// Property: for random small job shapes and any scheduler seed, every job
// completes, all tasks end Completed, and reducers fetch exactly the spec
// volume — the end-to-end liveness and conservation sweep.
func TestPropertyJobsAlwaysComplete(t *testing.T) {
	f := func(mapsRaw, reducesRaw, skewRaw uint8, seed uint64) bool {
		maps := int(mapsRaw%24) + 1
		reduces := int(reducesRaw%8) + 1
		eng := sim.NewEngine()
		g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
		net := netsim.New(eng, g)
		cl := NewCluster(eng, net, hosts, ecmp.New(g, 2, seed), Config{})
		d := make([]float64, maps)
		o := make([][]float64, maps)
		for m := range d {
			d[m] = 0.5 + float64((seed>>uint(m%16))&3)
			row := make([]float64, reduces)
			for r := range row {
				row[r] = float64((int(skewRaw)+m+r)%7) * 1e6 // zeros included
			}
			o[m] = row
		}
		spec := &JobSpec{Name: "p", NumMaps: maps, NumReduces: reduces,
			MapDurations: d, MapOutputs: o}
		want := spec.TotalShuffleBytes()
		j, err := cl.Submit(spec)
		if err != nil {
			return false
		}
		eng.Run()
		if !j.Done {
			return false
		}
		var fetched float64
		for _, r := range j.Reduces {
			if r.State != Completed {
				return false
			}
			fetched += r.FetchedBytes
		}
		for _, m := range j.Maps {
			if m.State != Completed {
				return false
			}
		}
		return fetched > want-1 && fetched < want+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
