package hadoop

import (
	"testing"

	"pythia/internal/ecmp"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// stragglerSpec: all maps take 2 s except one pathological 60 s straggler.
func stragglerSpec(maps, reduces int) *JobSpec {
	spec := uniformSpec(maps, reduces, 2, 2e6)
	spec.MapDurations[maps-1] = 60
	return spec
}

func specRig(cfg Config) (*sim.Engine, *Cluster) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), cfg)
	return eng, cl
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	run := func(speculative bool) (float64, *Cluster) {
		eng, cl := specRig(Config{Speculative: speculative})
		j, _ := cl.Submit(stragglerSpec(12, 2))
		eng.Run()
		if !j.Done {
			t.Fatal("job did not finish")
		}
		return float64(j.Duration()), cl
	}
	slow, _ := run(false)
	fast, cl := run(true)
	if cl.SpeculativeLaunched == 0 {
		t.Fatal("no speculative attempt launched for a 30x straggler")
	}
	if cl.SpeculativeWins == 0 {
		t.Fatal("backup attempt never won against a 30x straggler")
	}
	if fast >= slow {
		t.Fatalf("speculation did not help: %.1fs vs %.1fs", fast, slow)
	}
	// The straggler gates the map phase at 60s without speculation; with
	// it, the backup (≈2s median) finishes decades earlier.
	if fast > slow*0.6 {
		t.Fatalf("speculation too weak: %.1fs vs %.1fs", fast, slow)
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	eng, cl := specRig(Config{})
	j, _ := cl.Submit(stragglerSpec(12, 2))
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	if cl.SpeculativeLaunched != 0 {
		t.Fatal("speculation ran despite being disabled")
	}
}

func TestSpeculationWinnerSourcesFetches(t *testing.T) {
	eng, cl := specRig(Config{Speculative: true})
	spec := stragglerSpec(12, 2)
	j, _ := cl.Submit(spec)
	var winnerTracker int = -1
	cl.OnMapFinished(func(job *Job, m *MapTask, _ []float64) {
		if m.ID == spec.NumMaps-1 && m.State == Completed && winnerTracker == -1 {
			winnerTracker = m.Tracker
		}
	})
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	m := j.Maps[spec.NumMaps-1]
	if m.Attempts < 2 {
		t.Fatalf("straggler ran %d attempts, want 2", m.Attempts)
	}
	if m.Tracker != winnerTracker {
		t.Fatalf("fetch source %d != winning tracker %d", m.Tracker, winnerTracker)
	}
}

func TestSpeculationSlotAccounting(t *testing.T) {
	// After the job, all slots must be free again (no slot leaks from
	// kills or duplicate finishes).
	eng, cl := specRig(Config{Speculative: true, MapSlots: 2})
	j, _ := cl.Submit(stragglerSpec(16, 2))
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	for _, tr := range cl.trackers {
		if tr.freeMap != 2 {
			t.Fatalf("tracker %d has %d free map slots, want 2", tr.index, tr.freeMap)
		}
		if tr.freeRed != cl.cfg.ReduceSlots {
			t.Fatalf("tracker %d leaked reduce slots", tr.index)
		}
	}
	if cl.SpeculativeKilled+cl.SpeculativeWins == 0 {
		t.Fatal("speculation accounting empty")
	}
}

func TestNearTieProducesDuplicateSpill(t *testing.T) {
	// Straggler takes barely longer than the backup will: the original
	// finishes within the kill window and spills a duplicate.
	eng, cl := specRig(Config{Speculative: true, SpeculativeLagFactor: 1.1})
	spec := uniformSpec(12, 2, 2, 2e6)
	// Straggler: backup launches at ~2.2s+heartbeat, runs 2s (median);
	// original finishes at 6s — within a 3s heartbeat of the backup's
	// ~5-7s finish, so whoever loses is too close to kill.
	spec.MapDurations[11] = 6
	j, _ := cl.Submit(spec)
	finishes := map[int]int{}
	cl.OnMapFinished(func(job *Job, m *MapTask, _ []float64) { finishes[m.ID]++ })
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	if cl.SpeculativeLaunched == 0 {
		t.Skip("no speculation triggered in this timing configuration")
	}
	// Either a duplicate spill happened (near-tie) or the loser was
	// killed; both are legal — but slot accounting must hold regardless.
	for _, tr := range cl.trackers {
		if tr.freeMap != cl.cfg.MapSlots {
			t.Fatalf("slot leak on tracker %d", tr.index)
		}
	}
	total := 0
	for _, n := range finishes {
		total += n
	}
	if total < spec.NumMaps {
		t.Fatalf("spills %d < maps %d", total, spec.NumMaps)
	}
}

// TestSpillAttributionPerAttempt pins the OnMapSpilled contract: every spill
// carries the 1-based attempt that produced it and that attempt's own
// tracker — a speculative loser's duplicate spill must not be attributed to
// the winner's host (the bug the prediction plane inherited from routing
// spill events through OnMapFinished's task.Tracker).
func TestSpillAttributionPerAttempt(t *testing.T) {
	eng, cl := specRig(Config{Speculative: true, SpeculativeLagFactor: 1.1})
	spec := uniformSpec(12, 2, 2, 2e6)
	spec.MapDurations[11] = 6 // near-tie: both attempts spill
	j, _ := cl.Submit(spec)
	type rec struct {
		attempt, tracker int
	}
	spills := map[int][]rec{}
	cl.OnMapSpilled(func(job *Job, m *MapTask, sp Spill) {
		if sp.Attempt < 1 {
			t.Fatalf("map %d spill with attempt %d", m.ID, sp.Attempt)
		}
		if len(sp.Partitions) != spec.NumReduces {
			t.Fatalf("map %d spill has %d partitions", m.ID, len(sp.Partitions))
		}
		spills[m.ID] = append(spills[m.ID], rec{sp.Attempt, sp.Tracker})
	})
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	for id, rs := range spills {
		if len(rs) == 1 {
			if rs[0].attempt != 1 {
				t.Fatalf("map %d single spill from attempt %d", id, rs[0].attempt)
			}
			continue
		}
		// A duplicate spill: the two attempts are distinct and ran on
		// distinct trackers (speculation never co-locates the backup).
		if len(rs) != 2 {
			t.Fatalf("map %d spilled %d times", id, len(rs))
		}
		if rs[0].attempt == rs[1].attempt {
			t.Fatalf("map %d: duplicate spills share attempt %d", id, rs[0].attempt)
		}
		if rs[0].tracker == rs[1].tracker {
			t.Fatalf("map %d: duplicate spills share tracker %d", id, rs[0].tracker)
		}
	}
	if cl.SpeculativeLaunched > 0 {
		dup := false
		for _, rs := range spills {
			if len(rs) == 2 {
				dup = true
			}
		}
		if !dup && cl.SpeculativeKilled == 0 {
			t.Fatal("speculation ran but produced neither a kill nor a duplicate spill")
		}
	}
}

func TestDuplicateIntentsHandledByPythia(t *testing.T) {
	// End-to-end: speculative duplicates must not corrupt Pythia's
	// bookkeeping (outstanding demand must drain to zero).
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), Config{Speculative: true, SpeculativeLagFactor: 1.1})
	j, _ := cl.Submit(stragglerSpec(12, 3))
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
}
