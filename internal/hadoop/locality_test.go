package hadoop

import (
	"testing"

	"pythia/internal/ecmp"
	"pythia/internal/hdfs"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Data-locality scheduling against an HDFS input file.

// localityRig writes an input file whose blocks land across the cluster and
// wires it as the job's input source.
func localityRig(t *testing.T, blocks int) (*sim.Engine, *netsim.Network, *Cluster, *hdfs.FileSystem) {
	t.Helper()
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	res := ecmp.New(g, 2, 1)
	fs := hdfs.New(eng, net, hosts, res, hdfs.Config{}, 1)
	written := false
	fs.Write(hosts[0], "/input", float64(blocks)*64e6, func(*hdfs.File) { written = true })
	eng.Run()
	if !written {
		t.Fatal("input write did not finish")
	}
	cl := NewCluster(eng, net, hosts, res, Config{})
	cl.SetInputSource(fs)
	return eng, net, cl, fs
}

func TestLocalityPreferredPlacement(t *testing.T) {
	eng, _, cl, _ := localityRig(t, 12)
	spec := uniformSpec(12, 2, 1, 1e6)
	spec.InputFile = "/input"
	j, _ := cl.Submit(spec)
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	if j.LocalMaps+j.RemoteMaps != 12 {
		t.Fatalf("locality accounting: local=%d remote=%d", j.LocalMaps, j.RemoteMaps)
	}
	// A single-writer input concentrates first replicas on the writer
	// (default policy), so perfect locality is impossible; still, with 3
	// replicas per block the majority of maps should be node-local.
	if j.LocalMaps < 6 {
		t.Fatalf("only %d/12 maps were data-local", j.LocalMaps)
	}
	if j.RemoteMaps == 0 {
		t.Fatal("expected some remote maps with a single-writer input")
	}
}

func TestRemoteMapsStreamInput(t *testing.T) {
	// Only rack-0 datanodes hold the input (single-rack write with all
	// replicas there is impossible under the default policy, so instead
	// use a filesystem whose datanodes are rack-0 only); maps placed on
	// rack-1 trackers must stream their block across the fabric.
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	res := ecmp.New(g, 2, 1)
	fs := hdfs.New(eng, net, hosts[:5], res, hdfs.Config{}, 1)
	fs.Write(hosts[0], "/input", 12*64e6, nil)
	eng.Run()
	readsBefore := fs.BytesRead

	cl := NewCluster(eng, net, hosts, res, Config{MapSlots: 1})
	cl.SetInputSource(fs)
	spec := uniformSpec(12, 2, 1, 1e6)
	spec.InputFile = "/input"
	j, _ := cl.Submit(spec)
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	if j.RemoteMaps == 0 {
		t.Fatal("no remote maps despite rack-1 holding no replicas")
	}
	if fs.BytesRead <= readsBefore {
		t.Fatal("remote maps did not stream input")
	}
}

func TestRemoteMapsSlowerThanLocal(t *testing.T) {
	run := func(withInput bool) float64 {
		eng := sim.NewEngine()
		g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
		net := netsim.New(eng, g)
		res := ecmp.New(g, 2, 1)
		fs := hdfs.New(eng, net, hosts[:5], res, hdfs.Config{}, 1)
		fs.Write(hosts[0], "/input", 20*64e6, nil)
		eng.Run()
		cl := NewCluster(eng, net, hosts, res, Config{MapSlots: 1})
		cl.SetInputSource(fs)
		spec := uniformSpec(20, 2, 1, 1e6)
		if withInput {
			spec.InputFile = "/input"
		}
		j, _ := cl.Submit(spec)
		eng.Run()
		return float64(j.Duration())
	}
	withStreaming := run(true)
	allLocal := run(false)
	if withStreaming <= allLocal {
		t.Fatalf("input streaming free: %.2fs vs %.2fs", withStreaming, allLocal)
	}
}

func TestLocalityWithoutSourceIsNoop(t *testing.T) {
	eng, _, cl := rig(Config{})
	spec := uniformSpec(6, 2, 1, 1e6)
	spec.InputFile = "/missing" // no SetInputSource: must be ignored
	j, _ := cl.Submit(spec)
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	if j.LocalMaps != 0 || j.RemoteMaps != 0 {
		t.Fatal("locality counted without a source")
	}
}

func TestInputFileLargerSpecDegrades(t *testing.T) {
	// Spec with more maps than the file has blocks: extra maps fall back
	// to local compute rather than erroring.
	eng, _, cl, _ := localityRig(t, 4)
	spec := uniformSpec(8, 2, 1, 1e6)
	spec.InputFile = "/input"
	j, _ := cl.Submit(spec)
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
}
