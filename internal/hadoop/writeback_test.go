package hadoop

import (
	"math"
	"testing"

	"pythia/internal/ecmp"
	"pythia/internal/hdfs"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Write-back integration: reducers persist output through the HDFS
// replication pipeline before the job completes.

func writebackRig() (*sim.Engine, *netsim.Network, *Cluster, *hdfs.FileSystem) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	res := ecmp.New(g, 2, 1)
	cl := NewCluster(eng, net, hosts, res, Config{})
	fs := hdfs.New(eng, net, hosts, res, hdfs.Config{}, 1)
	cl.SetOutputSink(fs)
	return eng, net, cl, fs
}

func TestWritebackPersistsReducerOutput(t *testing.T) {
	eng, _, cl, fs := writebackRig()
	spec := uniformSpec(8, 2, 1, 10e6)
	spec.ReduceOutputRatio = 1.0
	j, _ := cl.Submit(spec)
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	for r := 0; r < 2; r++ {
		name := "/job-0/part-0000" + string(rune('0'+r))
		if !fs.Exists(name) {
			t.Fatalf("missing output file %s", name)
		}
	}
	// Each reducer fetched 8 x 10 MB and wrote it at ratio 1 with 3
	// replicas.
	want := 2 * 8 * 10e6 * 3
	if math.Abs(fs.BytesWritten-want) > 1 {
		t.Fatalf("BytesWritten = %v, want %v", fs.BytesWritten, want)
	}
}

func TestWritebackExtendsJobTime(t *testing.T) {
	run := func(ratio float64) float64 {
		eng, _, cl, _ := writebackRig()
		spec := uniformSpec(8, 2, 1, 40e6)
		spec.ReduceOutputRatio = ratio
		j, _ := cl.Submit(spec)
		eng.Run()
		return float64(j.Duration())
	}
	without := run(0)
	with := run(1.0)
	if with <= without {
		t.Fatalf("write-back did not extend the job: %.2fs vs %.2fs", with, without)
	}
}

func TestWritebackIgnoredWithoutSink(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), Config{})
	spec := uniformSpec(4, 2, 1, 5e6)
	spec.ReduceOutputRatio = 1.0
	j, _ := cl.Submit(spec)
	eng.Run()
	if !j.Done {
		t.Fatal("job without sink did not finish")
	}
}

func TestWritebackSlotHeldDuringWrite(t *testing.T) {
	// With 1 reduce slot per node and big write-backs, the write phase
	// must serialize reducer turnover without leaking slots.
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(2, 1, topology.Gbps)
	net := netsim.New(eng, g)
	res := ecmp.New(g, 2, 1)
	cl := NewCluster(eng, net, hosts, res, Config{ReduceSlots: 1})
	fs := hdfs.New(eng, net, hosts, res, hdfs.Config{}, 1)
	cl.SetOutputSink(fs)
	spec := uniformSpec(4, 8, 1, 20e6)
	spec.ReduceOutputRatio = 1.0
	j, _ := cl.Submit(spec)
	eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	for _, tr := range cl.trackers {
		if tr.freeRed != 1 {
			t.Fatalf("tracker %d leaked reduce slots", tr.index)
		}
	}
}
