package hadoop_test

import (
	"fmt"

	"pythia/internal/ecmp"
	"pythia/internal/hadoop"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

// Running the Fig. 1a toy job on the simulated Hadoop runtime.
func ExampleCluster_Submit() {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cluster := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	job, err := cluster.Submit(workload.ToySort())
	if err != nil {
		panic(err)
	}
	eng.Run()
	fmt.Printf("maps done %.1fs, barrier %.1fs, job %.1fs\n",
		float64(job.MapPhaseEnd), float64(job.ShuffleEnd), float64(job.Finished))
	// Output:
	// maps done 22.0s, barrier 25.8s, job 28.8s
}

// The instrumentation hooks expose exactly the events Pythia's middleware
// consumes: spills with per-reducer partition sizes.
func ExampleCluster_OnMapFinished() {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cluster := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{})
	cluster.OnMapFinished(func(j *hadoop.Job, m *hadoop.MapTask, partitions []float64) {
		if m.ID == 0 {
			fmt.Printf("map-0 spilled %.0f MB for reducer-0, %.0f MB for reducer-1\n",
				partitions[0]/1e6, partitions[1]/1e6)
		}
	})
	cluster.Submit(workload.ToySort())
	eng.Run()
	// Output:
	// map-0 spilled 167 MB for reducer-0, 33 MB for reducer-1
}
