// Package hadoop is a discrete-event simulator of the Hadoop 1.x MapReduce
// runtime, faithful to the scheduling behaviours Pythia exploits:
//
//   - a jobtracker assigns map/reduce tasks to tasktracker slots on
//     heartbeats (with out-of-band heartbeats on task completion, as in
//     Hadoop 1.1.x);
//   - intermediate map output is "spilled" at map completion time, with
//     per-reducer partition sizes — the artifact Pythia's instrumentation
//     decodes;
//   - reducers are scheduled only after a slow-start fraction of maps has
//     finished (default 5%), so early shuffle-intent predictions have
//     unknown destinations;
//   - each reducer learns of completed maps by polling and fetches from at
//     most ParallelCopies mappers concurrently; the gap between a map's
//     finish and the fetch of its output is the prediction lead time the
//     paper measures (Fig. 5);
//   - the shuffle is a barrier: a reducer starts reducing only after
//     fetching every map's partition, so one slow flow delays the job —
//     the paper's core motivation.
package hadoop

import (
	"fmt"

	"pythia/internal/sim"
)

// TaskState tracks the lifecycle of a map or reduce task.
type TaskState int

const (
	// Pending tasks await a slot.
	Pending TaskState = iota
	// Running tasks occupy a slot.
	Running
	// Shuffling reducers are fetching map output.
	Shuffling
	// Reducing reducers have passed the shuffle barrier.
	Reducing
	// Completed tasks are done.
	Completed
)

func (s TaskState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Shuffling:
		return "shuffling"
	case Reducing:
		return "reducing"
	case Completed:
		return "completed"
	}
	return fmt.Sprintf("TaskState(%d)", int(s))
}

// JobSpec describes a MapReduce job's resource shape. Workload generators
// (internal/workload) produce these; the simulator executes them.
type JobSpec struct {
	Name string
	// NumMaps and NumReduces size the task sets.
	NumMaps    int
	NumReduces int
	// MapDurations[m] is map m's compute time in seconds (input read and
	// map function; input is HDFS-local, so no fabric traffic).
	MapDurations []float64
	// MapOutputs[m][r] is the intermediate payload in bytes that map m
	// produces for reducer r — the flow-size matrix that drives the
	// shuffle.
	MapOutputs [][]float64
	// ReduceSecPerMB is reduce-side merge+reduce compute cost per MB
	// fetched; ReduceBaseSec is the fixed per-reducer overhead.
	ReduceSecPerMB float64
	ReduceBaseSec  float64
	// ReduceOutputRatio sizes each reducer's final output as a fraction
	// of its fetched bytes. When positive and the cluster has an output
	// sink (HDFS), reducers write back through the replication pipeline
	// before completing — the "writes back the reduction result to the
	// distributed file system" phase.
	ReduceOutputRatio float64
	// InputFile names the HDFS input whose block i feeds map i. When set
	// and the cluster has an input source, the scheduler prefers
	// data-local placement and non-local maps stream their block over
	// the fabric before computing.
	InputFile string
}

// Validate checks internal consistency.
func (s *JobSpec) Validate() error {
	if s.NumMaps <= 0 || s.NumReduces <= 0 {
		return fmt.Errorf("hadoop: job %q needs positive task counts", s.Name)
	}
	if len(s.MapDurations) != s.NumMaps {
		return fmt.Errorf("hadoop: job %q has %d map durations for %d maps", s.Name, len(s.MapDurations), s.NumMaps)
	}
	if len(s.MapOutputs) != s.NumMaps {
		return fmt.Errorf("hadoop: job %q has %d output rows for %d maps", s.Name, len(s.MapOutputs), s.NumMaps)
	}
	for m, row := range s.MapOutputs {
		if len(row) != s.NumReduces {
			return fmt.Errorf("hadoop: job %q map %d has %d partitions for %d reducers", s.Name, m, len(row), s.NumReduces)
		}
		for r, b := range row {
			if b < 0 {
				return fmt.Errorf("hadoop: job %q map %d partition %d negative", s.Name, m, r)
			}
		}
		if s.MapDurations[m] < 0 {
			return fmt.Errorf("hadoop: job %q map %d negative duration", s.Name, m)
		}
	}
	return nil
}

// TotalShuffleBytes sums the full intermediate volume.
func (s *JobSpec) TotalShuffleBytes() float64 {
	total := 0.0
	for _, row := range s.MapOutputs {
		for _, b := range row {
			total += b
		}
	}
	return total
}

// ReducerBytes returns per-reducer input volumes (the skew profile).
func (s *JobSpec) ReducerBytes() []float64 {
	out := make([]float64, s.NumReduces)
	for _, row := range s.MapOutputs {
		for r, b := range row {
			out[r] += b
		}
	}
	return out
}

// MapTask is one map task. With speculative execution, a second attempt may
// run concurrently; the fields reflect the winning attempt once Completed.
type MapTask struct {
	ID    int
	State TaskState
	// Tracker is the index of the tasktracker running (or, once
	// completed, that ran the winning attempt of) the task; -1 while
	// pending.
	Tracker   int
	Scheduled sim.Time
	Finished  sim.Time
	// Attempts counts launched attempts (1 without speculation).
	Attempts int
	// speculating marks that a backup attempt is in flight.
	speculating bool
}

// ReduceTask is one reduce attempt, with shuffle bookkeeping.
type ReduceTask struct {
	ID        int
	State     TaskState
	Tracker   int
	Scheduled sim.Time
	// ShuffleDone is when the last fetch completed (the barrier).
	ShuffleDone sim.Time
	Finished    sim.Time

	fetched      map[int]bool // map ID -> fetched (or in flight)
	fetchedDone  int
	active       int
	queue        []int // map IDs known-completed, awaiting fetch
	FetchedBytes float64
}

// Job is a submitted job's runtime state.
type Job struct {
	ID   int
	Spec *JobSpec

	Maps    []*MapTask
	Reduces []*ReduceTask

	Submitted sim.Time
	// MapPhaseEnd is when the last map finished.
	MapPhaseEnd sim.Time
	// ShuffleEnd is when the last reducer passed the shuffle barrier.
	ShuffleEnd sim.Time
	Finished   sim.Time
	Done       bool

	mapsCompleted    int
	reducesCompleted int
	pendingMaps      []int // map IDs awaiting a slot, FIFO with locality pick
	nextReduce       int
	// LocalMaps and RemoteMaps count data-local vs streamed placements
	// (both zero when locality is not modeled).
	LocalMaps  int
	RemoteMaps int
	// completedMapSec collects winning-attempt durations, feeding the
	// speculation straggler threshold.
	completedMapSec []float64
}

// medianCompletedMapSec returns the median duration of completed maps, or 0
// when fewer than three have finished (not enough signal to speculate).
func (j *Job) medianCompletedMapSec() float64 {
	if len(j.completedMapSec) < 3 {
		return 0
	}
	sorted := append([]float64(nil), j.completedMapSec...)
	for i := 0; i < len(sorted); i++ {
		for k := i + 1; k < len(sorted); k++ {
			if sorted[k] < sorted[i] {
				sorted[i], sorted[k] = sorted[k], sorted[i]
			}
		}
	}
	return sorted[len(sorted)/2]
}

// Duration returns total job time (valid once Done).
func (j *Job) Duration() sim.Duration { return j.Finished.Sub(j.Submitted) }

// MapHost returns the tasktracker host index of a map (-1 if unscheduled).
func (j *Job) MapHost(m int) int { return j.Maps[m].Tracker }
