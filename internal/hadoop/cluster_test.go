package hadoop

import (
	"math"
	"testing"

	"pythia/internal/ecmp"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// rig builds a 2-rack/10-host testbed cluster with an ECMP resolver.
func rig(cfg Config) (*sim.Engine, *netsim.Network, *Cluster) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	res := ecmp.New(g, 2, 1)
	cl := NewCluster(eng, net, hosts, res, cfg)
	return eng, net, cl
}

// uniformSpec builds a job with identical maps and uniform partitions.
func uniformSpec(maps, reduces int, mapSec, bytesPerPartition float64) *JobSpec {
	durations := make([]float64, maps)
	outputs := make([][]float64, maps)
	for m := range durations {
		durations[m] = mapSec
		row := make([]float64, reduces)
		for r := range row {
			row[r] = bytesPerPartition
		}
		outputs[m] = row
	}
	return &JobSpec{
		Name: "uniform", NumMaps: maps, NumReduces: reduces,
		MapDurations: durations, MapOutputs: outputs,
		ReduceSecPerMB: 0.001, ReduceBaseSec: 0.1,
	}
}

func TestSpecValidate(t *testing.T) {
	good := uniformSpec(2, 2, 1, 100)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := uniformSpec(2, 2, 1, 100)
	bad.MapDurations = bad.MapDurations[:1]
	if bad.Validate() == nil {
		t.Fatal("short durations accepted")
	}
	bad2 := uniformSpec(2, 2, 1, 100)
	bad2.MapOutputs[1][0] = -5
	if bad2.Validate() == nil {
		t.Fatal("negative partition accepted")
	}
	bad3 := uniformSpec(2, 2, 1, 100)
	bad3.NumMaps = 0
	if bad3.Validate() == nil {
		t.Fatal("zero maps accepted")
	}
	bad4 := uniformSpec(2, 2, 1, 100)
	bad4.MapOutputs[0] = bad4.MapOutputs[0][:1]
	if bad4.Validate() == nil {
		t.Fatal("ragged outputs accepted")
	}
	bad5 := uniformSpec(2, 2, 1, 100)
	bad5.MapDurations[0] = -1
	if bad5.Validate() == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestSpecAggregates(t *testing.T) {
	s := uniformSpec(3, 2, 1, 100)
	if got := s.TotalShuffleBytes(); got != 600 {
		t.Fatalf("TotalShuffleBytes = %v, want 600", got)
	}
	rb := s.ReducerBytes()
	if len(rb) != 2 || rb[0] != 300 || rb[1] != 300 {
		t.Fatalf("ReducerBytes = %v", rb)
	}
}

func TestJobCompletes(t *testing.T) {
	eng, _, cl := rig(Config{})
	spec := uniformSpec(6, 2, 2, 10e6)
	j, err := cl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !j.Done {
		t.Fatal("job did not complete")
	}
	if j.Finished <= j.Submitted {
		t.Fatal("bad completion time")
	}
	if j.MapPhaseEnd == 0 || j.ShuffleEnd == 0 {
		t.Fatal("phase timestamps not recorded")
	}
	if !(j.MapPhaseEnd <= j.ShuffleEnd && j.ShuffleEnd <= j.Finished) {
		t.Fatalf("phase ordering broken: maps=%v shuffle=%v done=%v",
			j.MapPhaseEnd, j.ShuffleEnd, j.Finished)
	}
}

func TestAllTasksComplete(t *testing.T) {
	eng, _, cl := rig(Config{})
	spec := uniformSpec(10, 4, 1, 5e6)
	j, _ := cl.Submit(spec)
	eng.Run()
	for _, m := range j.Maps {
		if m.State != Completed {
			t.Fatalf("map %d state = %v", m.ID, m.State)
		}
		if m.Tracker < 0 {
			t.Fatalf("map %d never placed", m.ID)
		}
	}
	for _, r := range j.Reduces {
		if r.State != Completed {
			t.Fatalf("reduce %d state = %v", r.ID, r.State)
		}
		if r.fetchedDone != spec.NumMaps {
			t.Fatalf("reduce %d fetched %d of %d", r.ID, r.fetchedDone, spec.NumMaps)
		}
	}
}

func TestReducerFetchesExactVolume(t *testing.T) {
	eng, _, cl := rig(Config{})
	spec := uniformSpec(8, 2, 1, 3e6)
	j, _ := cl.Submit(spec)
	eng.Run()
	for _, r := range j.Reduces {
		want := 8 * 3e6
		if math.Abs(r.FetchedBytes-want) > 1 {
			t.Fatalf("reduce %d fetched %v bytes, want %v", r.ID, r.FetchedBytes, want)
		}
	}
}

func TestSkewedReducerSlower(t *testing.T) {
	// Reducer 0 receives 5x reducer 1 (the Fig. 1a skew); its shuffle must
	// finish later on an otherwise idle network.
	eng, _, cl := rig(Config{})
	maps := 6
	durations := make([]float64, maps)
	outputs := make([][]float64, maps)
	for m := range outputs {
		durations[m] = 1
		outputs[m] = []float64{50e6, 10e6}
	}
	spec := &JobSpec{Name: "skew", NumMaps: maps, NumReduces: 2,
		MapDurations: durations, MapOutputs: outputs, ReduceSecPerMB: 0.001}
	j, _ := cl.Submit(spec)
	eng.Run()
	if !(j.Reduces[0].ShuffleDone > j.Reduces[1].ShuffleDone) {
		t.Fatalf("skewed reducer not slower: r0=%v r1=%v",
			j.Reduces[0].ShuffleDone, j.Reduces[1].ShuffleDone)
	}
}

func TestSlowstartDelaysReducers(t *testing.T) {
	eng, _, cl := rig(Config{SlowstartFraction: 0.5})
	spec := uniformSpec(10, 2, 5, 1e6)
	var reduceSched []sim.Time
	var fifthMapDone sim.Time
	cl.OnReduceScheduled(func(j *Job, r *ReduceTask) {
		reduceSched = append(reduceSched, r.Scheduled)
	})
	cl.OnMapFinished(func(j *Job, m *MapTask, parts []float64) {
		if j.mapsCompleted == 5 {
			fifthMapDone = m.Finished
		}
	})
	cl.Submit(spec)
	eng.Run()
	if len(reduceSched) != 2 {
		t.Fatalf("reducers scheduled = %d, want 2", len(reduceSched))
	}
	for _, ts := range reduceSched {
		if ts < fifthMapDone {
			t.Fatalf("reducer scheduled at %v before 50%% maps done (%v)", ts, fifthMapDone)
		}
	}
}

func TestParallelCopiesBound(t *testing.T) {
	eng, _, cl := rig(Config{ParallelCopies: 2})
	spec := uniformSpec(20, 1, 0.5, 20e6)
	inFlight := 0
	maxInFlight := 0
	cl.OnFetchStart(func(j *Job, m, r int, f *netsim.Flow) {
		if f == nil {
			return
		}
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
	})
	cl.OnFetchDone(func(j *Job, m, r int, f *netsim.Flow) {
		if f == nil {
			return
		}
		inFlight--
	})
	cl.Submit(spec)
	eng.Run()
	if maxInFlight > 2 {
		t.Fatalf("max concurrent fetches = %d, want <= 2", maxInFlight)
	}
	if maxInFlight < 2 {
		t.Fatalf("parallelism never reached the bound: %d", maxInFlight)
	}
}

func TestFetchGapGivesPredictionLead(t *testing.T) {
	// The time between a map finishing (prediction instant) and its
	// output being fetched must be positive — it is Pythia's lead.
	eng, _, cl := rig(Config{})
	spec := uniformSpec(12, 3, 2, 5e6)
	mapDone := map[int]sim.Time{}
	minGap := math.Inf(1)
	cl.OnMapFinished(func(j *Job, m *MapTask, parts []float64) {
		mapDone[m.ID] = m.Finished
	})
	cl.OnFetchStart(func(j *Job, m, r int, f *netsim.Flow) {
		gap := float64(eng.Now().Sub(mapDone[m]))
		if gap < minGap {
			minGap = gap
		}
	})
	cl.Submit(spec)
	eng.Run()
	if minGap <= 0 {
		t.Fatalf("fetch preceded map completion: gap=%v", minGap)
	}
}

func TestEmptyPartitionsSkipFlows(t *testing.T) {
	eng, net, cl := rig(Config{})
	maps := 4
	durations := []float64{1, 1, 1, 1}
	outputs := [][]float64{{1e6, 0}, {1e6, 0}, {1e6, 0}, {1e6, 0}}
	spec := &JobSpec{Name: "empty", NumMaps: maps, NumReduces: 2,
		MapDurations: durations, MapOutputs: outputs}
	j, _ := cl.Submit(spec)
	eng.Run()
	if !j.Done {
		t.Fatal("job with empty partitions did not finish")
	}
	// Reducer 1 received nothing: all its fetches were flow-less.
	if j.Reduces[1].FetchedBytes != 0 {
		t.Fatalf("empty reducer fetched %v bytes", j.Reduces[1].FetchedBytes)
	}
	for _, f := range net.History() {
		if f.Reduce == 1 {
			t.Fatal("flow created for empty partition")
		}
	}
}

func TestWireOverheadApplied(t *testing.T) {
	eng, net, cl := rig(Config{WireOverheadFactor: 1.10})
	spec := uniformSpec(1, 1, 1, 100e6)
	// Force remote: with one map and one reduce they may land on the same
	// host; use many maps to guarantee at least one remote flow instead.
	spec = uniformSpec(10, 2, 1, 10e6)
	cl.Submit(spec)
	eng.Run()
	for _, f := range net.History() {
		if len(f.Path.Links) == 0 {
			continue
		}
		// Each remote flow carries payload * 1.10 * 8 bits.
		if math.Abs(f.SizeBits-10e6*1.10*8) > 1 {
			t.Fatalf("flow size = %v bits, want %v", f.SizeBits, 10e6*1.1*8)
		}
	}
}

func TestLocalFetchesUseZeroHopPath(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(1, 1, topology.Gbps)
	net := netsim.New(eng, g)
	res := ecmp.New(g, 2, 1)
	// Single host: every fetch is local.
	cl := NewCluster(eng, net, hosts[:1], res, Config{})
	spec := uniformSpec(4, 2, 1, 1e6)
	j, _ := cl.Submit(spec)
	eng.Run()
	if !j.Done {
		t.Fatal("single-host job did not finish")
	}
	for _, f := range net.History() {
		if len(f.Path.Links) != 0 {
			t.Fatal("local fetch crossed the fabric")
		}
	}
	if net.HostTxBits(hosts[0]) != 0 {
		t.Fatal("local fetches counted as network TX")
	}
}

func TestListenersFireInOrder(t *testing.T) {
	eng, _, cl := rig(Config{})
	spec := uniformSpec(4, 2, 1, 1e6)
	var events []string
	cl.OnMapScheduled(func(j *Job, m *MapTask) { events = append(events, "ms") })
	cl.OnMapFinished(func(j *Job, m *MapTask, p []float64) { events = append(events, "mf") })
	cl.OnReduceScheduled(func(j *Job, r *ReduceTask) { events = append(events, "rs") })
	cl.OnJobDone(func(j *Job) { events = append(events, "jd") })
	cl.Submit(spec)
	eng.Run()
	counts := map[string]int{}
	for _, e := range events {
		counts[e]++
	}
	if counts["ms"] != 4 || counts["mf"] != 4 || counts["rs"] != 2 || counts["jd"] != 1 {
		t.Fatalf("event counts: %v", counts)
	}
	if events[len(events)-1] != "jd" {
		t.Fatal("job-done not last event")
	}
}

func TestMapFinishedPartitionsAreCopies(t *testing.T) {
	eng, _, cl := rig(Config{})
	spec := uniformSpec(2, 2, 1, 1e6)
	cl.OnMapFinished(func(j *Job, m *MapTask, parts []float64) {
		parts[0] = -999 // mutation must not corrupt the spec
	})
	j, _ := cl.Submit(spec)
	eng.Run()
	if !j.Done {
		t.Fatal("job not done")
	}
	if spec.MapOutputs[0][0] != 1e6 {
		t.Fatal("listener mutation leaked into the job spec")
	}
}

func TestSubmitValidates(t *testing.T) {
	_, _, cl := rig(Config{})
	bad := uniformSpec(2, 2, 1, 100)
	bad.NumReduces = 0
	if _, err := cl.Submit(bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestMultipleJobsSequential(t *testing.T) {
	eng, _, cl := rig(Config{})
	j1, _ := cl.Submit(uniformSpec(4, 2, 1, 1e6))
	j2, _ := cl.Submit(uniformSpec(4, 2, 1, 1e6))
	eng.Run()
	if !j1.Done || !j2.Done {
		t.Fatal("not all jobs finished")
	}
	if j1.ID == j2.ID {
		t.Fatal("duplicate job IDs")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Duration {
		eng, _, cl := rig(Config{})
		j, _ := cl.Submit(uniformSpec(12, 4, 2, 20e6))
		eng.Run()
		return j.Duration()
	}
	if run() != run() {
		t.Fatal("identical runs diverged")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.MapSlots != 2 || c.ReduceSlots != 2 || c.ParallelCopies != 5 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.SlowstartFraction != 0.05 {
		t.Fatalf("slowstart default = %v", c.SlowstartFraction)
	}
	if c.WireOverheadFactor != 1.045 {
		t.Fatalf("wire overhead default = %v", c.WireOverheadFactor)
	}
	// Explicit values survive.
	c2 := Config{MapSlots: 7, SlowstartFraction: 0.5}.Defaults()
	if c2.MapSlots != 7 || c2.SlowstartFraction != 0.5 {
		t.Fatalf("explicit values overridden: %+v", c2)
	}
}

func TestConstructorPanics(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(2, 1, topology.Gbps)
	net := netsim.New(eng, g)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty hosts did not panic")
			}
		}()
		NewCluster(eng, net, nil, ecmp.New(g, 2, 1), Config{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil resolver did not panic")
			}
		}()
		NewCluster(eng, net, hosts, nil, Config{})
	}()
}

func TestTaskStateString(t *testing.T) {
	for s, want := range map[TaskState]string{
		Pending: "pending", Running: "running", Shuffling: "shuffling",
		Reducing: "reducing", Completed: "completed",
	} {
		if s.String() != want {
			t.Fatalf("state %d = %q", s, s.String())
		}
	}
	if TaskState(99).String() == "" {
		t.Fatal("unknown state empty")
	}
}

func TestMapSlotsRespected(t *testing.T) {
	// 10 trackers x 1 map slot = at most 10 concurrent maps.
	eng, _, cl := rig(Config{MapSlots: 1})
	spec := uniformSpec(30, 2, 3, 1e6)
	running := 0
	maxRunning := 0
	cl.OnMapScheduled(func(j *Job, m *MapTask) {
		running++
		if running > maxRunning {
			maxRunning = running
		}
	})
	cl.OnMapFinished(func(j *Job, m *MapTask, p []float64) { running-- })
	cl.Submit(spec)
	eng.Run()
	if maxRunning > 10 {
		t.Fatalf("concurrent maps = %d, want <= 10", maxRunning)
	}
}

func BenchmarkJobExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, _, cl := rig(Config{})
		j, _ := cl.Submit(uniformSpec(40, 10, 2, 10e6))
		eng.Run()
		if !j.Done {
			b.Fatal("job not done")
		}
	}
}
