package core

import (
	"testing"

	"pythia/internal/hadoop"
	"pythia/internal/netsim"
	"pythia/internal/topology"
)

// These tests cover Pythia's §IV fault-tolerance path with the strict
// failure semantics: a downed link carries nothing, so in-flight flows must
// be actively rescued.

func failTrunk(s *stack, idx int) {
	s.ofc.FailLink(s.trunks[idx])
	if r, ok := s.net.Graph().Reverse(s.trunks[idx]); ok {
		s.net.Graph().SetLinkUp(r, false)
		s.net.NotifyTopology()
	}
}

func TestInFlightFlowsRescuedAfterTrunkFailure(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	// Big flows so plenty are in flight when the trunk dies.
	spec := uniformSpec(10, 4, 3, 120e6)
	j, _ := s.clus.Submit(spec)
	s.eng.At(10, func() {
		// Only rescue matters if flows actually cross trunk0 now.
		if len(s.net.FlowsOn(s.trunks[0])) == 0 {
			rev, _ := s.net.Graph().Reverse(s.trunks[0])
			if len(s.net.FlowsOn(rev)) == 0 {
				t.Log("no flows on trunk0 at failure time; rescue count may be zero")
			}
		}
		failTrunk(s, 0)
	})
	s.eng.Run()
	if !j.Done {
		t.Fatal("job stranded after trunk failure (flows not rescued)")
	}
	// After the poll detects the change, the recomputed paths must avoid
	// the dead trunk — verified implicitly by completion, and explicitly:
	for _, f := range s.net.History() {
		if f.Finished() < 11 {
			continue // may legitimately have used trunk0 before failure
		}
		for _, l := range f.Path.Links {
			if l == s.trunks[0] && f.Started() > 12 {
				t.Fatalf("flow started at %v routed over dead trunk", f.Started())
			}
		}
	}
}

func TestRescueCounterIncrements(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	spec := uniformSpec(10, 4, 2, 200e6)
	j, _ := s.clus.Submit(spec)
	// Fail whichever trunk carries flows at t=9 (after shuffle has begun).
	s.eng.At(9, func() {
		for idx := range s.trunks {
			rev, _ := s.net.Graph().Reverse(s.trunks[idx])
			if len(s.net.FlowsOn(s.trunks[idx]))+len(s.net.FlowsOn(rev)) > 0 {
				failTrunk(s, idx)
				return
			}
		}
	})
	s.eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	// The topology notification arrives at the next controller poll; if
	// flows were crossing the dead trunk, they must have been rescued.
	if s.py.FlowsRescued == 0 {
		t.Log("no flows were mid-trunk at failure time; acceptable but unusual")
	}
}

func TestBothTrunksFailThenRecover(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	spec := uniformSpec(8, 2, 2, 100e6)
	j, _ := s.clus.Submit(spec)
	g := s.net.Graph()
	all := func(up bool) {
		for _, tr := range s.trunks {
			g.SetLinkUp(tr, up)
			if r, ok := g.Reverse(tr); ok {
				g.SetLinkUp(r, up)
			}
		}
		s.net.NotifyTopology()
	}
	s.eng.At(6, func() { all(false) })
	s.eng.At(30, func() { all(true) })
	s.eng.Run()
	if !j.Done {
		t.Fatal("job did not recover after full partition healed")
	}
	if float64(j.Finished) < 30 {
		// Only fails if no shuffle data ever needed to cross racks.
		remote := false
		for _, f := range s.net.History() {
			if len(f.Path.Links) > 2 {
				remote = true
			}
		}
		if remote {
			t.Fatalf("job finished at %v during a full partition", j.Finished)
		}
	}
}

func TestRescuedFlowPathsValid(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	spec := uniformSpec(12, 4, 2, 150e6)
	j, _ := s.clus.Submit(spec)
	s.eng.At(8, func() { failTrunk(s, 1) })
	var bad []netsim.FlowID
	s.eng.At(15, func() {
		for _, f := range s.net.ActiveList() {
			if len(f.Path.Links) == 0 {
				continue
			}
			if err := f.Path.Valid(s.net.Graph()); err != nil {
				bad = append(bad, f.ID)
			}
		}
	})
	s.eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	if len(bad) > 0 {
		t.Fatalf("flows %v still on invalid paths 7s after failure (poll is 1s)", bad)
	}
}

func TestDisconnectedPairStaysStarvedUntilRepair(t *testing.T) {
	// With every trunk down, inter-rack aggregates are unroutable: Pythia
	// must not panic, and flows resume on repair.
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	g := s.net.Graph()
	var done bool
	p := g.KShortestPaths(s.hosts[0], s.hosts[5], 2)[0]
	f := s.net.StartFlow(netsim.FiveTuple{SrcHost: s.hosts[0], DstHost: s.hosts[5], SrcPort: 1, DstPort: 1, Protocol: 6},
		netsim.Shuffle, p, 1e9, 0, 0, 0, func(*netsim.Flow) { done = true })
	s.eng.At(0.5, func() {
		for _, tr := range s.trunks {
			g.SetLinkUp(tr, false)
			if r, ok := g.Reverse(tr); ok {
				g.SetLinkUp(r, false)
			}
		}
		s.net.NotifyTopology()
	})
	s.eng.At(10, func() {
		for _, tr := range s.trunks {
			g.SetLinkUp(tr, true)
			if r, ok := g.Reverse(tr); ok {
				g.SetLinkUp(r, true)
			}
		}
		s.net.NotifyTopology()
	})
	s.eng.Run()
	if !done {
		t.Fatalf("flow never completed after repair (remaining %v)", f.Remaining())
	}
	_ = topology.Gbps
}
