// Package core implements the paper's primary contribution: the Pythia
// orchestration entity. It is the collector that ingests shuffle-intent
// predictions from the per-server instrumentation middleware, the flow
// aggregation module that folds all mapper→reducer transfers between a
// server pair into one schedulable entity (TCP ports being unknowable at
// prediction time), and the network scheduling module that allocates
// aggregated flows to k-shortest paths with a first-fit bin-packing
// heuristic — assigning each aggregate to the path with the highest
// available bandwidth — and installs the corresponding OpenFlow rules.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pythia/internal/flight"
	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Scope selects the flow-aggregation granularity (§IV): host pairs by
// default; rack pairs for forwarding-state conservation at scale, where
// one prefix rule per rack pair steers the inter-rack hop and the default
// pipeline handles final delivery.
type Scope int

const (
	// ScopeHostPair aggregates per (mapper server, reducer server).
	ScopeHostPair Scope = iota
	// ScopeRackPair aggregates per (source rack, destination rack).
	ScopeRackPair
)

func (s Scope) String() string {
	switch s {
	case ScopeHostPair:
		return "host-pair"
	case ScopeRackPair:
		return "rack-pair"
	}
	return fmt.Sprintf("Scope(%d)", int(s))
}

// Config tunes the Pythia controller.
type Config struct {
	// K is the number of shortest paths precomputed per host pair
	// (the paper's k-shortest-paths module; hop-count metric).
	K int
	// RulePriority is the OpenFlow priority for Pythia rules (must beat
	// the default pipeline, which is priority-less here).
	RulePriority int
	// Aggregate folds same host-pair demand into one allocation entity
	// (the paper's flow aggregation module). Disabling it is the A2
	// ablation: every intent triggers its own allocation, so the pair's
	// path flaps with each decision.
	Aggregate bool
	// Scope selects host-pair (default) or rack-pair aggregation.
	Scope Scope
	// UseCriticality orders the bin-packing pass by barrier criticality —
	// aggregates feeding the reducer with the largest outstanding backlog
	// get first pick of paths — the §VI flow-priority criterion that
	// distinguishes Pythia from size-only schemes like FlowComb/Hedera.
	UseCriticality bool
	// HorizonSec converts outstanding booked bytes into an equivalent
	// rate when estimating residual path capacity during packing.
	HorizonSec float64
	// BookingTTL garbage-collects bookings and deferred intents whose
	// flows never materialize — a dropped intent's sibling, a lost
	// ReducerUp, a job whose JobDone died on the management network —
	// releasing their path reservations. Zero disables the sweep (the
	// legacy trust-the-messages behavior).
	BookingTTL sim.Duration
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.K == 0 {
		c.K = 4
	}
	if c.RulePriority == 0 {
		c.RulePriority = 100
	}
	if c.HorizonSec == 0 {
		c.HorizonSec = 10
	}
	return c
}

// EnableAggregation returns a config with aggregation on (the default
// production configuration).
func (c Config) EnableAggregation() Config { c.Aggregate = true; return c }

type pairKey struct {
	src, dst topology.NodeID
}

type flowKey struct {
	job, mapID, reduce int
}

// aggregate is one scheduled host-pair (or rack-pair) entity. For rack
// scope, repSrc/repDst are representative concrete endpoints used to
// enumerate candidate paths; the installed rule matches the whole rack pair
// and steers only the inter-switch hops.
type aggregate struct {
	key            pairKey
	repSrc, repDst topology.NodeID
	path           topology.Path
	cookie         uint64
	demandBits     float64 // outstanding predicted demand
	placed         bool
	indexed        bool // member of Pythia.placedOn for path's links
	// degraded marks an aggregate that fell back to the default ECMP
	// pipeline after the control plane became unreachable; allocation
	// skips it until reconciliation (controller recovery or a topology
	// change) clears the flag.
	degraded bool
	// perReducer tracks outstanding demand by (job, reducer), feeding the
	// criticality criterion.
	perReducer map[[2]int]float64
}

// pendingIntent holds per-reducer demands awaiting reducer placement.
type pendingIntent struct {
	intent     instrument.Intent
	unresolved map[int]float64 // reducer ID -> predicted bytes
	at         sim.Time        // arrival, for TTL expiry
}

// booking records one (job, map, reducer) demand reservation and the
// endpoints it was charged to.
type booking struct {
	bits     float64
	src, dst topology.NodeID
	at       sim.Time // reservation instant, for TTL expiry
}

// Pythia is the controller. It implements instrument.Sink.
type Pythia struct {
	eng *sim.Engine
	net *netsim.Network
	ofc *openflow.Controller
	g   *topology.Graph
	cfg Config

	// paths is the incrementally-repaired k-shortest-path cache: a fault
	// storm invalidates only the pairs whose paths a change can affect,
	// instead of the full flush earlier revisions paid on every topology
	// version bump.
	paths      *topology.PathCache
	reducerLoc map[[2]int]topology.NodeID // (job, reduce) -> host
	pending    []*pendingIntent

	aggregates map[pairKey]*aggregate
	// placedOn indexes the placed aggregates by every link of their
	// installed path, so pathScore shares spare capacity in
	// O(aggregates-on-link) instead of scanning every aggregate per
	// candidate link. Kept in lockstep with aggregate.placed. Each slice
	// is ordered by ascending pair key (keys are unique — one aggregate
	// per pair), so demand sums read in deterministic order without
	// sorting per query.
	placedOn map[topology.LinkID][]*aggregate
	// scanBaseline reverts pathScore to the pre-index full-scan pass
	// (golden-equivalence tests and benchmark baselines only).
	scanBaseline bool
	booked       map[flowKey]booking // predicted demand per (job,map,reduce)
	// redBacklog is global outstanding predicted demand per (job,
	// reducer) — the shuffle-barrier backlog that defines criticality.
	redBacklog map[[2]int]float64
	nextCookie uint64

	// seen is the idempotence set: one entry per (job, map, attempt)
	// intent already ingested, so a duplicated management-network message
	// (or a restart re-scan re-emission) is dropped rather than re-booked.
	seen map[[3]int]bool
	// jobLastSeen timestamps each job's latest control message, letting the
	// TTL sweep purge residual state of jobs that went silent (JobDone lost
	// on the management network).
	jobLastSeen map[int]sim.Time

	// fl, when non-nil, receives collector-plane flight events. Recording is
	// pure observation: it never changes an allocation decision, so enabled
	// and disabled runs stay bit-identical.
	fl flight.Sink

	// Metrics.
	IntentsReceived int
	IntentsDeferred int // had at least one unknown destination
	// AggregatesPlaced counts placements that installed (or re-installed)
	// rules; Reaffirmations counts allocation passes that re-affirmed an
	// aggregate on its unchanged path without touching the switches.
	AggregatesPlaced  int
	Reaffirmations    int
	Reallocations     int
	RuleInstallErrors int
	// FlowsRescued counts in-flight flows rerouted off failed links.
	FlowsRescued int
	// DuplicateIntents counts re-predictions for an already-booked
	// (job, map, reducer) — e.g. from speculative map attempts.
	DuplicateIntents int
	// AggregatesDegraded counts aggregates that fell back to the default
	// ECMP pipeline after the control plane became unreachable;
	// Reconciliations counts degraded aggregates re-placed once
	// connectivity returned.
	AggregatesDegraded int
	Reconciliations    int
	// DedupHits counts exact duplicate intents — same (job, map, attempt)
	// — dropped by the idempotence set.
	DedupHits int
	// ExpiredBookings and ExpiredIntents count reservations and deferred
	// intents reclaimed by the booking-TTL sweep.
	ExpiredBookings int
	ExpiredIntents  int
}

// New wires a Pythia controller to the SDN substrate. Register it as the
// instrumentation sink and keep the cluster's PathResolver pointed at the
// OpenFlow controller; Pythia steers traffic purely by installing rules.
func New(eng *sim.Engine, net *netsim.Network, ofc *openflow.Controller, cfg Config) *Pythia {
	p := &Pythia{
		eng:        eng,
		net:        net,
		ofc:        ofc,
		g:          net.Graph(),
		cfg:        cfg.Defaults(),
		reducerLoc: make(map[[2]int]topology.NodeID),
		aggregates: make(map[pairKey]*aggregate),
		placedOn:   make(map[topology.LinkID][]*aggregate),
		booked:     make(map[flowKey]booking),
		redBacklog: make(map[[2]int]float64),
		nextCookie: 1,
		seen:       make(map[[3]int]bool),
	}
	p.paths = topology.NewPathCache(p.g, p.cfg.K)
	if p.cfg.BookingTTL > 0 {
		p.jobLastSeen = make(map[int]sim.Time)
		// Sweep at half the TTL so nothing outlives ~1.5×TTL. The ticker is
		// a daemon: it never keeps the simulation alive on its own.
		eng.Every(p.cfg.BookingTTL/2, p.sweepExpired)
	}
	// Outstanding demand drains as the actual flows complete.
	net.OnFlowComplete(p.onFlowComplete)
	// Fault tolerance: recompute the routing graph and re-place every
	// active aggregate on topology change (§IV).
	ofc.OnTopologyChange(p.onTopologyChange)
	// Degraded-mode reconciliation: once management connectivity returns,
	// re-place every aggregate that fell back to the ECMP pipeline.
	ofc.OnControllerUp(p.onControllerUp)
	return p
}

var _ instrument.Sink = (*Pythia)(nil)
var _ instrument.JobDoneSink = (*Pythia)(nil)

// SetFlightRecorder installs a flight-event sink. Pass a non-nil sink only;
// leave the field nil to disable recording.
func (p *Pythia) SetFlightRecorder(s flight.Sink) { p.fl = s }

// SetScanBaseline reverts pathScore's booked-demand pass to the pre-index
// full-aggregate scan. The placement index is maintained either way; the
// knob exists for golden-equivalence tests and benchmark baselines.
func (p *Pythia) SetScanBaseline(on bool) { p.scanBaseline = on }

// indexAgg adds a placed aggregate to the per-link placement index.
func (p *Pythia) indexAgg(a *aggregate) {
	if a.indexed {
		return
	}
	for _, l := range a.path.Links {
		set := p.placedOn[l]
		i := sort.Search(len(set), func(i int) bool { return !aggKeyLess(set[i], a) })
		set = append(set, nil)
		copy(set[i+1:], set[i:])
		set[i] = a
		p.placedOn[l] = set
	}
	a.indexed = true
}

// aggKeyLess orders aggregates by ascending pair key — the fixed summation
// order bookedDemandOn relies on for bit-identical placement decisions.
func aggKeyLess(a, b *aggregate) bool {
	if a.key.src != b.key.src {
		return a.key.src < b.key.src
	}
	return a.key.dst < b.key.dst
}

// unindexAgg removes an aggregate from the per-link placement index.
func (p *Pythia) unindexAgg(a *aggregate) {
	if !a.indexed {
		return
	}
	for _, l := range a.path.Links {
		set := p.placedOn[l]
		i := sort.Search(len(set), func(i int) bool { return !aggKeyLess(set[i], a) })
		if i < len(set) && set[i] == a {
			copy(set[i:], set[i+1:])
			set[len(set)-1] = nil
			set = set[:len(set)-1]
			if len(set) == 0 {
				delete(p.placedOn, l)
			} else {
				p.placedOn[l] = set
			}
		}
	}
	a.indexed = false
}

// aggKey maps concrete endpoints to the aggregation key for the configured
// scope. Rack scope encodes rack numbers as NodeIDs.
func (p *Pythia) aggKey(src, dst topology.NodeID) pairKey {
	if p.cfg.Scope == ScopeRackPair {
		return pairKey{topology.NodeID(p.g.Node(src).Rack), topology.NodeID(p.g.Node(dst).Rack)}
	}
	return pairKey{src, dst}
}

// kPaths returns the k-shortest paths for a pair through the incremental
// cache (topology changes invalidate only affected pairs).
func (p *Pythia) kPaths(src, dst topology.NodeID) []topology.Path {
	return p.paths.Paths(src, dst)
}

// ShuffleIntent ingests one prediction message (instrument.Sink).
// Ingestion is idempotent on (job, map, attempt): a duplicated
// management-network delivery or a restart re-scan re-emission of an
// already-received intent is dropped outright. A *different* attempt of the
// same map (speculative backup) still flows through — the per-(job, map,
// reducer) booking replace keeps it from double-counting.
func (p *Pythia) ShuffleIntent(in instrument.Intent) {
	k := [3]int{in.Job, in.Map, in.Attempt}
	if p.seen[k] {
		p.DedupHits++
		p.recordIntent(in, flight.DispDup)
		return
	}
	p.seen[k] = true
	p.touch(in.Job)
	p.IntentsReceived++
	if in.Late {
		p.recordIntent(in, flight.DispLate)
	} else {
		p.recordIntent(in, flight.DispOK)
	}
	pi := &pendingIntent{intent: in, unresolved: make(map[int]float64), at: p.eng.Now()}
	for r, bytes := range in.PredictedWireBytes {
		if bytes <= 0 {
			continue
		}
		pi.unresolved[r] = bytes
	}
	p.resolveIntent(pi)
	if len(pi.unresolved) > 0 {
		p.IntentsDeferred++
		p.pending = append(p.pending, pi)
	}
	p.allocate()
}

// ReducerUp records a reducer's server placement and drains any deferred
// demand now resolvable (instrument.Sink).
func (p *Pythia) ReducerUp(up instrument.ReducerUp) {
	p.touch(up.Job)
	p.reducerLoc[[2]int{up.Job, up.Reduce}] = up.Host
	if p.fl != nil {
		ev := flight.Ev(flight.ReducerUpSeen, flight.PlaneCollector)
		ev.Job, ev.Reduce, ev.Dst = up.Job, up.Reduce, up.Host
		p.fl.Record(ev)
	}
	remaining := p.pending[:0]
	for _, pi := range p.pending {
		p.resolveIntent(pi)
		if len(pi.unresolved) > 0 {
			remaining = append(remaining, pi)
		}
	}
	for i := len(remaining); i < len(p.pending); i++ {
		p.pending[i] = nil
	}
	p.pending = remaining
	p.allocate()
}

// resolveIntent moves resolvable per-reducer demand into pair aggregates.
func (p *Pythia) resolveIntent(pi *pendingIntent) {
	in := pi.intent
	// Resolve in reducer-ID order: map iteration order is random, and the
	// flight recorder logs one booking per reducer — event order must be
	// deterministic. (The bookings themselves are order-independent.)
	reducers := make([]int, 0, len(pi.unresolved))
	for r := range pi.unresolved {
		reducers = append(reducers, r)
	}
	sort.Ints(reducers)
	var done []int
	for _, r := range reducers {
		bytes := pi.unresolved[r]
		dst, ok := p.reducerLoc[[2]int{in.Job, r}]
		if !ok {
			continue
		}
		done = append(done, r)
		if dst == in.SrcHost {
			continue // local fetch; never touches the fabric
		}
		if p.cfg.Scope == ScopeRackPair && p.g.Node(dst).Rack == p.g.Node(in.SrcHost).Rack {
			continue // intra-rack: single ToR hop, nothing to steer
		}
		bits := bytes * 8
		fk := flowKey{in.Job, in.Map, r}
		disp := flight.DispNew
		if prev, dup := p.booked[fk]; dup {
			// Duplicate intent for the same (job, map, reducer) — e.g. a
			// speculative map attempt spilled a second copy on another
			// server. Only one attempt's output is fetched, so keep a
			// single booking (replace, don't add).
			p.DuplicateIntents++
			p.unbook(fk, prev)
			disp = flight.DispReplaced
		}
		p.booked[fk] = booking{bits: bits, src: in.SrcHost, dst: dst, at: p.eng.Now()}
		if p.fl != nil {
			ev := flight.Ev(flight.BookingMade, flight.PlaneCollector)
			ev.Job, ev.Map, ev.Attempt, ev.Reduce = in.Job, in.Map, in.Attempt, r
			ev.Src, ev.Dst = in.SrcHost, dst
			ev.Bytes = bytes
			ev.Disposition = disp
			p.fl.Record(ev)
		}
		p.redBacklog[[2]int{in.Job, r}] += bits
		key := p.aggKey(in.SrcHost, dst)
		agg := p.aggregates[key]
		if agg == nil {
			agg = &aggregate{key: key, repSrc: in.SrcHost, repDst: dst,
				perReducer: make(map[[2]int]float64)}
			p.aggregates[key] = agg
		}
		agg.demandBits += bits
		agg.perReducer[[2]int{in.Job, r}] += bits
		if !p.cfg.Aggregate {
			// Ablation: every new demand forces a fresh placement
			// decision for the pair.
			agg.placed = false
			p.unindexAgg(agg)
		}
	}
	sort.Ints(done)
	for _, r := range done {
		delete(pi.unresolved, r)
	}
}

// PendingUnknownDestinations reports intents still awaiting reducer
// placement.
func (p *Pythia) PendingUnknownDestinations() int { return len(p.pending) }

// touch records job activity for the dead-job purge (TTL mode only).
func (p *Pythia) touch(job int) {
	if p.jobLastSeen != nil {
		p.jobLastSeen[job] = p.eng.Now()
	}
}

// sweepExpired is the booking-TTL garbage collector (daemon ticker, period
// BookingTTL/2). It releases reservations whose flows never materialized,
// drops deferred intents that never resolved, and purges residual per-job
// state for jobs silent past the TTL — the backstop that keeps collector
// state bounded when JobDone itself is lost on the management network.
// Expiry walks keys in sorted order so runs stay bit-identical per seed.
func (p *Pythia) sweepExpired() {
	now := p.eng.Now()
	ttl := p.cfg.BookingTTL

	var keys []flowKey
	for fk, b := range p.booked {
		if now.Sub(b.at) >= ttl {
			keys = append(keys, fk)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].job != keys[j].job {
			return keys[i].job < keys[j].job
		}
		if keys[i].mapID != keys[j].mapID {
			return keys[i].mapID < keys[j].mapID
		}
		return keys[i].reduce < keys[j].reduce
	})
	for _, fk := range keys {
		b := p.booked[fk]
		delete(p.booked, fk)
		p.unbook(fk, b)
		p.ExpiredBookings++
		if p.fl != nil {
			ev := flight.Ev(flight.BookingExpired, flight.PlaneCollector)
			ev.Job, ev.Map, ev.Reduce = fk.job, fk.mapID, fk.reduce
			ev.Src, ev.Dst = b.src, b.dst
			ev.Bytes = b.bits / 8
			p.fl.Record(ev)
		}
	}

	remaining := p.pending[:0]
	for _, pi := range p.pending {
		if now.Sub(pi.at) >= ttl {
			p.ExpiredIntents++
			if p.fl != nil {
				ev := flight.Ev(flight.IntentExpired, flight.PlaneCollector)
				ev.Job, ev.Map, ev.Attempt = pi.intent.Job, pi.intent.Map, pi.intent.Attempt
				ev.Src = pi.intent.SrcHost
				ev.Count = len(pi.unresolved)
				p.fl.Record(ev)
			}
			continue
		}
		remaining = append(remaining, pi)
	}
	for i := len(remaining); i < len(p.pending); i++ {
		p.pending[i] = nil
	}
	p.pending = remaining

	// Dead-job purge: a job with no bookings, no pending intents, and no
	// control message for a full TTL is gone — drop its reducer map and
	// idempotence entries so collector memory stays bounded.
	live := make(map[int]bool)
	for fk := range p.booked {
		live[fk.job] = true
	}
	for _, pi := range p.pending {
		live[pi.intent.Job] = true
	}
	var dead []int
	for job, last := range p.jobLastSeen {
		if !live[job] && now.Sub(last) >= ttl {
			dead = append(dead, job)
		}
	}
	sort.Ints(dead)
	for _, job := range dead {
		p.purgeJob(job)
	}
}

// purgeJob drops a job's residual non-booking state (reducer placements,
// backlog, idempotence entries, activity stamp).
func (p *Pythia) purgeJob(job int) {
	for jr := range p.reducerLoc {
		if jr[0] == job {
			delete(p.reducerLoc, jr)
		}
	}
	for jr := range p.redBacklog {
		if jr[0] == job {
			delete(p.redBacklog, jr)
		}
	}
	for k := range p.seen {
		if k[0] == job {
			delete(p.seen, k)
		}
	}
	if p.jobLastSeen != nil {
		delete(p.jobLastSeen, job)
	}
}

// OutstandingBookings reports the job's live reservations plus deferred
// intents — the quantity that must be zero after the job is done (leak
// detection).
func (p *Pythia) OutstandingBookings(job int) int {
	n := 0
	for fk := range p.booked {
		if fk.job == job {
			n++
		}
	}
	for _, pi := range p.pending {
		if pi.intent.Job == job {
			n++
		}
	}
	return n
}

// OutstandingDemandBits sums booked-but-undelivered predicted demand.
func (p *Pythia) OutstandingDemandBits() float64 {
	total := 0.0
	for _, a := range p.aggregates {
		total += a.demandBits
	}
	return total
}

// allocate runs the first-fit bin-packing pass: unplaced aggregates in
// descending demand order, each assigned to the k-shortest path with the
// highest available bandwidth given background estimates and already-booked
// shuffle demand.
func (p *Pythia) allocate() {
	var todo []*aggregate
	for _, a := range p.aggregates {
		if !a.placed && a.demandBits > 0 && !a.degraded {
			todo = append(todo, a)
		}
	}
	if len(todo) == 0 {
		return
	}
	crit := func(a *aggregate) float64 {
		max := 0.0
		for jr := range a.perReducer {
			if b := p.redBacklog[jr]; b > max {
				max = b
			}
		}
		return max
	}
	sort.Slice(todo, func(i, j int) bool {
		if p.cfg.UseCriticality {
			ci, cj := crit(todo[i]), crit(todo[j])
			if ci != cj {
				return ci > cj
			}
		}
		if todo[i].demandBits != todo[j].demandBits {
			return todo[i].demandBits > todo[j].demandBits
		}
		if todo[i].key.src != todo[j].key.src {
			return todo[i].key.src < todo[j].key.src
		}
		return todo[i].key.dst < todo[j].key.dst
	})
	for _, a := range todo {
		paths := p.kPaths(a.repSrc, a.repDst)
		if len(paths) == 0 {
			continue // unroutable; leave to the default pipeline
		}
		best := paths[0]
		bestScore := p.pathScore(paths[0], a)
		chosen := 0
		var scores []float64
		if p.fl != nil {
			scores = append(scores, bestScore)
		}
		for i, cand := range paths[1:] {
			s := p.pathScore(cand, a)
			if p.fl != nil {
				scores = append(scores, s)
			}
			if s > bestScore {
				best, bestScore = cand, s
				chosen = i + 1
			}
		}
		if p.fl != nil {
			ev := flight.Ev(flight.Placement, flight.PlaneCollector)
			ev.Src, ev.Dst = a.key.src, a.key.dst
			ev.Bytes = a.demandBits / 8
			ev.Count = len(paths)
			ev.Path = pathString(best)
			ev.Detail = placementDetail(scores, chosen, crit(a), p.cfg.UseCriticality)
			p.fl.Record(ev)
		}
		p.place(a, best)
	}
}

// pathString renders a path's link IDs for flight events.
func pathString(path topology.Path) string {
	var b strings.Builder
	for i, l := range path.Links {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(l)))
	}
	return b.String()
}

// placementDetail renders the bin-packing rationale: every candidate's
// estimated bandwidth, which index won, and (when the criticality criterion
// is active) the barrier backlog that prioritized the aggregate.
func placementDetail(scores []float64, chosen int, crit float64, useCrit bool) string {
	var b strings.Builder
	b.WriteString("scores=")
	for i, s := range scores {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(s, 'g', 4, 64))
	}
	b.WriteString(" chosen=")
	b.WriteString(strconv.Itoa(chosen))
	if useCrit {
		b.WriteString(" crit=")
		b.WriteString(strconv.FormatFloat(crit, 'g', 4, 64))
	}
	return b.String()
}

// pathScore estimates the bandwidth an aggregate would receive on a path:
// the minimum over links of the Hadoop-available capacity (nominal minus
// estimated background), shared demand-proportionally with the other
// aggregates booked there. Demand weighting makes heavy pairs spread even
// when all paths are equally loaded.
func (p *Pythia) pathScore(path topology.Path, self *aggregate) float64 {
	selfDemand := self.demandBits
	if selfDemand <= 0 {
		selfDemand = 1
	}
	score := 0.0
	for i, l := range path.Links {
		sample := p.ofc.LinkLoad(l)
		lk := p.g.Link(l)
		usedBps := sample.Utilization * lk.CapacityBps
		backgroundBps := usedBps - sample.ShuffleBps
		if backgroundBps < 0 {
			backgroundBps = 0
		}
		spare := lk.CapacityBps - backgroundBps
		if spare < 0 {
			spare = 0
		}
		// Share the spare capacity with aggregates already booked on
		// this link (self excluded), in proportion to predicted demand.
		linkScore := spare * selfDemand / (selfDemand + p.bookedDemandOn(l, self))
		if i == 0 || linkScore < score {
			score = linkScore
		}
	}
	return score
}

// bookedDemandOn sums the predicted demand of the other placed aggregates
// crossing link l. The summation order is fixed (ascending pair key) in
// both the indexed and scan-baseline modes so the float sum — and hence
// every placement decision — is bit-identical between them.
func (p *Pythia) bookedDemandOn(l topology.LinkID, self *aggregate) float64 {
	if !p.scanBaseline {
		// placedOn[l] is maintained in ascending pair-key order, so the
		// straight walk sums in exactly the order the scan branch sorts
		// into — no per-query sort or scratch allocation.
		sum := 0.0
		for _, other := range p.placedOn[l] {
			if other == self || other.demandBits <= 0 {
				continue
			}
			sum += other.demandBits
		}
		return sum
	}
	var others []*aggregate
	for _, other := range p.aggregates {
		if other == self || !other.placed || other.demandBits <= 0 {
			continue
		}
		for _, ol := range other.path.Links {
			if ol == l {
				others = append(others, other)
				break
			}
		}
	}
	sort.Slice(others, func(i, j int) bool { return aggKeyLess(others[i], others[j]) })
	sum := 0.0
	for _, o := range others {
		sum += o.demandBits
	}
	return sum
}

// place books the aggregate onto the path and installs its rules. An
// aggregate already holding rules for a different path is re-installed;
// one re-affirmed on its unchanged path counts as a Reaffirmation, not a
// placement, since no switch state moves.
func (p *Pythia) place(a *aggregate, path topology.Path) {
	// The cookie is the evidence that rules for a.path sit in the switches
	// (placed may have been cleared by a re-placement pass already).
	samePath := a.cookie != 0 && a.path.Equal(path)
	if a.cookie != 0 && !samePath {
		p.ofc.RemovePath(a.cookie)
		a.cookie = 0
		p.Reallocations++
	}
	p.unindexAgg(a)
	a.path = path
	a.placed = true
	p.indexAgg(a)
	if a.cookie != 0 {
		p.Reaffirmations++
		return
	}
	p.AggregatesPlaced++
	{
		cookie := p.nextCookie
		p.nextCookie++
		a.cookie = cookie
		onDone := func(err error) {
			if err != nil {
				p.RuleInstallErrors++
				if errors.Is(err, openflow.ErrControlPlaneUnreachable) {
					// Guard against stale acks: only degrade if this
					// install still backs the aggregate's current
					// placement.
					if p.aggregates[a.key] == a && a.cookie == cookie {
						p.degrade(a)
					}
				}
			}
		}
		if p.cfg.Scope == ScopeRackPair {
			match := openflow.RackPair(int(a.key.src), int(a.key.dst))
			p.ofc.InstallSteering(match, path, p.cfg.RulePriority, cookie, onDone)
		} else {
			match := openflow.HostPair(a.key.src, a.key.dst)
			p.ofc.InstallPath(match, path, p.cfg.RulePriority, cookie, onDone)
		}
	}
}

// degrade drops an aggregate to the default ECMP pipeline: whatever partial
// rules reached the switches are released (modeling switch-local idle-timeout
// expiry — switches expire rules autonomously, no control plane needed, so a
// half-programmed path cannot linger and trap traffic in a forwarding loop),
// and allocation skips the aggregate until reconciliation. Its traffic still
// flows — table misses fall back to local ECMP hashing in Resolve.
func (p *Pythia) degrade(a *aggregate) {
	if a.cookie != 0 {
		p.ofc.RemovePath(a.cookie)
		a.cookie = 0
	}
	a.placed = false
	a.degraded = true
	p.unindexAgg(a)
	p.AggregatesDegraded++
	if p.fl != nil {
		ev := flight.Ev(flight.Degraded, flight.PlaneCollector)
		ev.Src, ev.Dst = a.key.src, a.key.dst
		ev.Bytes = a.demandBits / 8
		p.fl.Record(ev)
	}
}

// onControllerUp reconciles degraded aggregates once management
// connectivity returns: clear the flags and run an allocation pass so live
// demand gets predictive placements again.
func (p *Pythia) onControllerUp() {
	n := 0
	for _, a := range p.aggregates {
		if a.degraded {
			a.degraded = false
			n++
		}
	}
	if n == 0 {
		return
	}
	p.Reconciliations += n
	if p.fl != nil {
		// One aggregated event: the loop above iterates an unsorted map, so
		// per-aggregate events here would be order-nondeterministic.
		ev := flight.Ev(flight.Reconciled, flight.PlaneCollector)
		ev.Count = n
		p.fl.Record(ev)
	}
	p.allocate()
}

// recordIntent emits the intent-received flight event; a no-op when the
// recorder is disabled.
func (p *Pythia) recordIntent(in instrument.Intent, disp string) {
	if p.fl == nil {
		return
	}
	ev := flight.Ev(flight.IntentReceived, flight.PlaneCollector)
	ev.Job, ev.Map, ev.Attempt, ev.Src = in.Job, in.Map, in.Attempt, in.SrcHost
	ev.Count = len(in.PredictedWireBytes)
	ev.DelaySec = float64(in.EmittedAt.Sub(in.MapFinishedAt))
	ev.Disposition = disp
	p.fl.Record(ev)
}

// onFlowComplete drains delivered demand and releases rules for pairs whose
// demand has emptied (keeping TCAM occupancy proportional to active work).
func (p *Pythia) onFlowComplete(f *netsim.Flow) {
	if f.Kind != netsim.Shuffle {
		return
	}
	key := flowKey{f.Job, f.Map, f.Reduce}
	b, ok := p.booked[key]
	if !ok {
		return
	}
	delete(p.booked, key)
	p.unbook(key, b)
}

// unbook reverses one booking: drains the reducer backlog and the owning
// aggregate, releasing the aggregate's rules when its demand empties.
func (p *Pythia) unbook(key flowKey, b booking) {
	jr := [2]int{key.job, key.reduce}
	if p.redBacklog[jr] -= b.bits; p.redBacklog[jr] <= 1 {
		delete(p.redBacklog, jr)
	}
	agg := p.aggregates[p.aggKey(b.src, b.dst)]
	if agg == nil {
		return
	}
	agg.demandBits -= b.bits
	if agg.perReducer[jr] -= b.bits; agg.perReducer[jr] <= 1 {
		delete(agg.perReducer, jr)
	}
	if agg.demandBits <= 1 { // float dust
		agg.demandBits = 0
		if agg.cookie != 0 {
			p.ofc.RemovePath(agg.cookie)
		}
		p.unindexAgg(agg)
		delete(p.aggregates, agg.key)
	}
}

// JobDone purges all controller state for a finished (or abandoned) job:
// pending intents, bookings, reducer placements, and barrier backlog. Booked
// demand whose flows never ran — e.g. reducers that never started — would
// otherwise pin aggregates, rules, and backlog entries forever.
func (p *Pythia) JobDone(job int) {
	remaining := p.pending[:0]
	for _, pi := range p.pending {
		if pi.intent.Job != job {
			remaining = append(remaining, pi)
		}
	}
	for i := len(remaining); i < len(p.pending); i++ {
		p.pending[i] = nil
	}
	p.pending = remaining
	var keys []flowKey
	for fk := range p.booked {
		if fk.job == job {
			keys = append(keys, fk)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].mapID != keys[j].mapID {
			return keys[i].mapID < keys[j].mapID
		}
		return keys[i].reduce < keys[j].reduce
	})
	for _, fk := range keys {
		b := p.booked[fk]
		delete(p.booked, fk)
		p.unbook(fk, b)
	}
	p.purgeJob(job)
}

// onTopologyChange recomputes routing, re-places every live aggregate, and
// reroutes in-flight shuffle flows stranded on failed links (§IV fault
// tolerance: the routing graph is rebuilt from topology-update events).
func (p *Pythia) onTopologyChange() {
	// The path cache self-repairs from the graph's transition journal on
	// the next query; no flush needed here.
	for _, a := range p.aggregates {
		if a.demandBits <= 0 {
			continue
		}
		// Invalid paths (through failed links) must move; valid ones are
		// re-scored too, since spare capacity shifted. Degraded aggregates
		// get another chance: the fabric changed, so retry placement (they
		// re-degrade if the control plane is still dark).
		a.placed = false
		a.degraded = false
		p.unindexAgg(a)
	}
	p.allocate()
	// Rescue stranded in-flight flows: move them onto their pair's new
	// path (or the best current shortest path if the pair has drained).
	// ForEachActive avoids copying the active set; Reroute during the walk
	// is safe because it does not change active-set membership.
	p.net.ForEachActive(func(f *netsim.Flow) {
		if f.Kind != netsim.Shuffle || len(f.Path.Links) == 0 {
			return
		}
		if f.Path.Valid(p.g) == nil {
			return // still routable
		}
		var target topology.Path
		agg := p.aggregates[p.aggKey(f.Tuple.SrcHost, f.Tuple.DstHost)]
		if agg != nil && agg.placed && p.cfg.Scope == ScopeHostPair {
			target = agg.path
		} else if ps := p.kPaths(f.Tuple.SrcHost, f.Tuple.DstHost); len(ps) > 0 {
			target = ps[0]
		} else {
			return // pair disconnected; flow stays starved
		}
		p.net.Reroute(f, target)
		p.FlowsRescued++
	})
}
