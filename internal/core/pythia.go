// Package core implements the paper's primary contribution: the Pythia
// orchestration entity. It is the collector that ingests shuffle-intent
// predictions from the per-server instrumentation middleware, the flow
// aggregation module that folds all mapper→reducer transfers between a
// server pair into one schedulable entity (TCP ports being unknowable at
// prediction time), and the network scheduling module that allocates
// aggregated flows to k-shortest paths with a first-fit bin-packing
// heuristic — assigning each aggregate to the path with the highest
// available bandwidth — and installs the corresponding OpenFlow rules.
//
// # Sharded collector state
//
// The paper's collector is one centralized entity. To serve as a concurrent
// online service (package serve) the collector's per-job state — deferred
// intents, bookings, the idempotence set, reducer placements, barrier
// backlog, activity stamps — is partitioned across Config.Shards shards
// keyed by job ID. The placement plane (pair aggregates, the per-link
// placement index, path cache and rule cookies) stays global: placement is
// a bin-packing pass over shared links and is inherently serial.
//
// Sharding is invisible to results. Every operation touches only its own
// job's shard, and the two places where state from several shards meets —
// the booking-TTL sweep and ApplyBatch's placement-plane commit — merge the
// per-shard (already sorted) streams with a deterministic min-key merge
// that reproduces the exact single-shard order. Same-seed runs are
// therefore bit-identical at any shard count, the same discipline the
// sharded network allocator follows (see netsim).
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pythia/internal/flight"
	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Scope selects the flow-aggregation granularity (§IV): host pairs by
// default; rack pairs for forwarding-state conservation at scale, where
// one prefix rule per rack pair steers the inter-rack hop and the default
// pipeline handles final delivery.
type Scope int

const (
	// ScopeHostPair aggregates per (mapper server, reducer server).
	ScopeHostPair Scope = iota
	// ScopeRackPair aggregates per (source rack, destination rack).
	ScopeRackPair
)

func (s Scope) String() string {
	switch s {
	case ScopeHostPair:
		return "host-pair"
	case ScopeRackPair:
		return "rack-pair"
	}
	return fmt.Sprintf("Scope(%d)", int(s))
}

// Config tunes the Pythia controller.
type Config struct {
	// K is the number of shortest paths precomputed per host pair
	// (the paper's k-shortest-paths module; hop-count metric).
	K int
	// RulePriority is the OpenFlow priority for Pythia rules (must beat
	// the default pipeline, which is priority-less here).
	RulePriority int
	// Aggregate folds same host-pair demand into one allocation entity
	// (the paper's flow aggregation module). Disabling it is the A2
	// ablation: every intent triggers its own allocation, so the pair's
	// path flaps with each decision.
	Aggregate bool
	// Scope selects host-pair (default) or rack-pair aggregation.
	Scope Scope
	// UseCriticality orders the bin-packing pass by barrier criticality —
	// aggregates feeding the reducer with the largest outstanding backlog
	// get first pick of paths — the §VI flow-priority criterion that
	// distinguishes Pythia from size-only schemes like FlowComb/Hedera.
	UseCriticality bool
	// HorizonSec converts outstanding booked bytes into an equivalent
	// rate when estimating residual path capacity during packing.
	HorizonSec float64
	// BookingTTL garbage-collects bookings and deferred intents whose
	// flows never materialize — a dropped intent's sibling, a lost
	// ReducerUp, a job whose JobDone died on the management network —
	// releasing their path reservations. Zero disables the sweep (the
	// legacy trust-the-messages behavior).
	BookingTTL sim.Duration
	// Shards partitions per-job collector state (bookings, deferred
	// intents, dedup tables, trackers) across this many job-keyed shards.
	// Placement decisions are merged deterministically, so any shard
	// count produces bit-identical results; shards > 1 additionally lets
	// ApplyBatch run the shard-local ingest phase concurrently. Zero or
	// one means the classic single-shard collector.
	Shards int
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.K == 0 {
		c.K = 4
	}
	if c.RulePriority == 0 {
		c.RulePriority = 100
	}
	if c.HorizonSec == 0 {
		c.HorizonSec = 10
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// EnableAggregation returns a config with aggregation on (the default
// production configuration).
func (c Config) EnableAggregation() Config { c.Aggregate = true; return c }

type pairKey struct {
	src, dst topology.NodeID
}

type flowKey struct {
	job, mapID, reduce int
}

// flowKeyLess is the sweep's total order on bookings: (job, map, reduce).
func flowKeyLess(a, b flowKey) bool {
	if a.job != b.job {
		return a.job < b.job
	}
	if a.mapID != b.mapID {
		return a.mapID < b.mapID
	}
	return a.reduce < b.reduce
}

// aggregate is one scheduled host-pair (or rack-pair) entity. For rack
// scope, repSrc/repDst are representative concrete endpoints used to
// enumerate candidate paths; the installed rule matches the whole rack pair
// and steers only the inter-switch hops.
type aggregate struct {
	key            pairKey
	repSrc, repDst topology.NodeID
	path           topology.Path
	cookie         uint64
	demandBits     float64 // outstanding predicted demand
	placed         bool
	indexed        bool // member of Pythia.placedOn for path's links
	// degraded marks an aggregate that fell back to the default ECMP
	// pipeline after the control plane became unreachable; allocation
	// skips it until reconciliation (controller recovery or a topology
	// change) clears the flag.
	degraded bool
	// perReducer tracks outstanding demand by (job, reducer), feeding the
	// criticality criterion.
	perReducer map[[2]int]float64
}

// pendingIntent holds per-reducer demands awaiting reducer placement.
type pendingIntent struct {
	intent     instrument.Intent
	unresolved map[int]float64 // reducer ID -> predicted bytes
	at         sim.Time        // arrival, for TTL expiry
	// seq is the intent's global arrival ordinal. Per-shard pending lists
	// are seq-ascending, so the TTL sweep's cross-shard expiry merge can
	// reproduce the single-shard (arrival-order) event sequence.
	seq uint64
}

// booking records one (job, map, reducer) demand reservation and the
// endpoints it was charged to.
type booking struct {
	bits     float64
	src, dst topology.NodeID
	at       sim.Time // reservation instant, for TTL expiry
}

// shard holds one partition of the collector's per-job state. Every key in
// every map belongs to a job with shardOf(job) == this shard, so two shards
// never hold state for the same job and shard-local phases of different
// shards may run concurrently.
type shard struct {
	reducerLoc  map[[2]int]topology.NodeID // (job, reduce) -> host
	pending     []*pendingIntent           // seq-ascending
	booked      map[flowKey]booking        // predicted demand per (job,map,reduce)
	redBacklog  map[[2]int]float64         // outstanding demand per (job, reducer)
	seen        map[[3]int]bool            // idempotence set per (job, map, attempt)
	jobLastSeen map[int]sim.Time           // TTL mode only

	// Shard-local metrics, summed by the Pythia accessors. Kept here so
	// ApplyBatch's concurrent shard phase mutates only its own shard.
	intentsReceived  int
	intentsDeferred  int
	dedupHits        int
	duplicateIntents int
	expiredBookings  int
	expiredIntents   int
}

func newShard(ttl bool) *shard {
	s := &shard{
		reducerLoc: make(map[[2]int]topology.NodeID),
		booked:     make(map[flowKey]booking),
		redBacklog: make(map[[2]int]float64),
		seen:       make(map[[3]int]bool),
	}
	if ttl {
		s.jobLastSeen = make(map[int]sim.Time)
	}
	return s
}

// Pythia is the controller. It implements Collector (and therefore
// instrument.Sink and instrument.JobDoneSink).
type Pythia struct {
	eng *sim.Engine
	net *netsim.Network
	ofc *openflow.Controller
	g   *topology.Graph
	cfg Config

	// paths is the incrementally-repaired k-shortest-path cache: a fault
	// storm invalidates only the pairs whose paths a change can affect,
	// instead of the full flush earlier revisions paid on every topology
	// version bump.
	paths *topology.PathCache

	// shards partitions per-job state; shardOf routes a job to its home.
	shards  []*shard
	nextSeq uint64 // next pendingIntent arrival ordinal

	aggregates map[pairKey]*aggregate
	// placedOn indexes the placed aggregates by every link of their
	// installed path, so pathScore shares spare capacity in
	// O(aggregates-on-link) instead of scanning every aggregate per
	// candidate link. Kept in lockstep with aggregate.placed. Each slice
	// is ordered by ascending pair key (keys are unique — one aggregate
	// per pair), so demand sums read in deterministic order without
	// sorting per query.
	placedOn map[topology.LinkID][]*aggregate
	// scanBaseline reverts pathScore to the pre-index full-scan pass
	// (golden-equivalence tests and benchmark baselines only).
	scanBaseline bool
	nextCookie   uint64

	// fl, when non-nil, receives collector-plane flight events. Recording is
	// pure observation: it never changes an allocation decision, so enabled
	// and disabled runs stay bit-identical.
	fl flight.Sink

	// onPlace, when non-nil, observes every placement decision (install or
	// re-affirmation) in decision order. Pure observation; the serving
	// surface uses it to fingerprint placement streams for the 1-vs-N-shard
	// equivalence check.
	onPlace func(src, dst topology.NodeID, path topology.Path)

	// Placement-plane metrics (mutated only in the serialized commit path).
	// AggregatesPlaced counts placements that installed (or re-installed)
	// rules; Reaffirmations counts allocation passes that re-affirmed an
	// aggregate on its unchanged path without touching the switches.
	AggregatesPlaced  int
	Reaffirmations    int
	Reallocations     int
	RuleInstallErrors int
	// FlowsRescued counts in-flight flows rerouted off failed links.
	FlowsRescued int
	// AggregatesDegraded counts aggregates that fell back to the default
	// ECMP pipeline after the control plane became unreachable;
	// Reconciliations counts degraded aggregates re-placed once
	// connectivity returned.
	AggregatesDegraded int
	Reconciliations    int
}

// New wires a Pythia controller to the SDN substrate. Register it as the
// instrumentation sink and keep the cluster's PathResolver pointed at the
// OpenFlow controller; Pythia steers traffic purely by installing rules.
func New(eng *sim.Engine, net *netsim.Network, ofc *openflow.Controller, cfg Config) *Pythia {
	cfg = cfg.Defaults()
	p := &Pythia{
		eng:        eng,
		net:        net,
		ofc:        ofc,
		g:          net.Graph(),
		cfg:        cfg,
		shards:     make([]*shard, cfg.Shards),
		aggregates: make(map[pairKey]*aggregate),
		placedOn:   make(map[topology.LinkID][]*aggregate),
		nextCookie: 1,
	}
	for i := range p.shards {
		p.shards[i] = newShard(cfg.BookingTTL > 0)
	}
	p.paths = topology.NewPathCache(p.g, p.cfg.K)
	if p.cfg.BookingTTL > 0 {
		// Sweep at half the TTL so nothing outlives ~1.5×TTL. The ticker is
		// a daemon: it never keeps the simulation alive on its own.
		eng.Every(p.cfg.BookingTTL/2, p.sweepExpired)
	}
	// Outstanding demand drains as the actual flows complete.
	net.OnFlowComplete(p.onFlowComplete)
	// Fault tolerance: recompute the routing graph and re-place every
	// active aggregate on topology change (§IV).
	ofc.OnTopologyChange(p.onTopologyChange)
	// Degraded-mode reconciliation: once management connectivity returns,
	// re-place every aggregate that fell back to the ECMP pipeline.
	ofc.OnControllerUp(p.onControllerUp)
	return p
}

var _ Collector = (*Pythia)(nil)

// shardOf routes a job ID to its home shard.
func (p *Pythia) shardOf(job int) *shard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	return p.shards[job%len(p.shards)]
}

// Shards reports the configured shard count.
func (p *Pythia) Shards() int { return len(p.shards) }

// SetFlightRecorder installs a flight-event sink. Pass a non-nil sink only;
// leave the field nil to disable recording.
func (p *Pythia) SetFlightRecorder(s flight.Sink) { p.fl = s }

// SetPlacementHook registers fn to observe every placement decision (rule
// install, re-install or re-affirmation) in decision order. Observation is
// pure: it must not mutate collector or fabric state. The serving surface
// uses it to maintain a running digest of the placement stream.
func (p *Pythia) SetPlacementHook(fn func(src, dst topology.NodeID, path topology.Path)) {
	p.onPlace = fn
}

// SetScanBaseline reverts pathScore's booked-demand pass to the pre-index
// full-aggregate scan. The placement index is maintained either way; the
// knob exists for golden-equivalence tests and benchmark baselines.
func (p *Pythia) SetScanBaseline(on bool) { p.scanBaseline = on }

// indexAgg adds a placed aggregate to the per-link placement index.
func (p *Pythia) indexAgg(a *aggregate) {
	if a.indexed {
		return
	}
	for _, l := range a.path.Links {
		set := p.placedOn[l]
		i := sort.Search(len(set), func(i int) bool { return !aggKeyLess(set[i], a) })
		set = append(set, nil)
		copy(set[i+1:], set[i:])
		set[i] = a
		p.placedOn[l] = set
	}
	a.indexed = true
}

// aggKeyLess orders aggregates by ascending pair key — the fixed summation
// order bookedDemandOn relies on for bit-identical placement decisions.
func aggKeyLess(a, b *aggregate) bool {
	if a.key.src != b.key.src {
		return a.key.src < b.key.src
	}
	return a.key.dst < b.key.dst
}

// unindexAgg removes an aggregate from the per-link placement index.
func (p *Pythia) unindexAgg(a *aggregate) {
	if !a.indexed {
		return
	}
	for _, l := range a.path.Links {
		set := p.placedOn[l]
		i := sort.Search(len(set), func(i int) bool { return !aggKeyLess(set[i], a) })
		if i < len(set) && set[i] == a {
			copy(set[i:], set[i+1:])
			set[len(set)-1] = nil
			set = set[:len(set)-1]
			if len(set) == 0 {
				delete(p.placedOn, l)
			} else {
				p.placedOn[l] = set
			}
		}
	}
	a.indexed = false
}

// aggKey maps concrete endpoints to the aggregation key for the configured
// scope. Rack scope encodes rack numbers as NodeIDs.
func (p *Pythia) aggKey(src, dst topology.NodeID) pairKey {
	if p.cfg.Scope == ScopeRackPair {
		return pairKey{topology.NodeID(p.g.Node(src).Rack), topology.NodeID(p.g.Node(dst).Rack)}
	}
	return pairKey{src, dst}
}

// kPaths returns the k-shortest paths for a pair through the incremental
// cache (topology changes invalidate only affected pairs).
func (p *Pythia) kPaths(src, dst topology.NodeID) []topology.Path {
	return p.paths.Paths(src, dst)
}

// ShuffleIntent ingests one prediction message (instrument.Sink).
// Ingestion is idempotent on (job, map, attempt): a duplicated
// management-network delivery or a restart re-scan re-emission of an
// already-received intent is dropped outright. A *different* attempt of the
// same map (speculative backup) still flows through — the per-(job, map,
// reducer) booking replace keeps it from double-counting.
func (p *Pythia) ShuffleIntent(in instrument.Intent) {
	sh := p.shardOf(in.Job)
	k := [3]int{in.Job, in.Map, in.Attempt}
	if sh.seen[k] {
		sh.dedupHits++
		p.recordIntent(in, flight.DispDup)
		return
	}
	sh.seen[k] = true
	p.touch(sh, in.Job)
	sh.intentsReceived++
	if in.Late {
		p.recordIntent(in, flight.DispLate)
	} else {
		p.recordIntent(in, flight.DispOK)
	}
	pi := p.newPending(in)
	p.resolveIntent(sh, pi)
	if len(pi.unresolved) > 0 {
		sh.intentsDeferred++
		sh.pending = append(sh.pending, pi)
	}
	p.allocate()
}

// newPending builds the deferred-intent record and stamps its arrival
// ordinal.
func (p *Pythia) newPending(in instrument.Intent) *pendingIntent {
	pi := &pendingIntent{intent: in, unresolved: make(map[int]float64), at: p.eng.Now(), seq: p.nextSeq}
	p.nextSeq++
	for r, bytes := range in.PredictedWireBytes {
		if bytes <= 0 {
			continue
		}
		pi.unresolved[r] = bytes
	}
	return pi
}

// ReducerUp records a reducer's server placement and drains any deferred
// demand now resolvable (instrument.Sink). Only the job's own shard is
// scanned: a foreign job's deferred intent can never resolve on this event,
// because resolution needs the foreign job's own ReducerUp first.
func (p *Pythia) ReducerUp(up instrument.ReducerUp) {
	sh := p.shardOf(up.Job)
	p.touch(sh, up.Job)
	sh.reducerLoc[[2]int{up.Job, up.Reduce}] = up.Host
	if p.fl != nil {
		ev := flight.Ev(flight.ReducerUpSeen, flight.PlaneCollector)
		ev.Job, ev.Reduce, ev.Dst = up.Job, up.Reduce, up.Host
		p.fl.Record(ev)
	}
	p.drainPending(sh)
	p.allocate()
}

// drainPending re-resolves a shard's deferred intents, compacting out the
// fully resolved ones.
func (p *Pythia) drainPending(sh *shard) {
	p.drainPendingWith(sh, p.fl, p.bookGlobal, p.unbookGlobal)
}

// drainPendingWith is drainPending with pluggable placement-plane sinks
// (see resolveIntentWith).
func (p *Pythia) drainPendingWith(sh *shard, fl flight.Sink, gBook bookFn, gUnbook unbookFn) {
	remaining := sh.pending[:0]
	for _, pi := range sh.pending {
		p.resolveIntentWith(sh, pi, fl, gBook, gUnbook)
		if len(pi.unresolved) > 0 {
			remaining = append(remaining, pi)
		}
	}
	for i := len(remaining); i < len(sh.pending); i++ {
		sh.pending[i] = nil
	}
	sh.pending = remaining
}

// bookFn/unbookFn receive the placement-plane half of booking operations:
// bookGlobal/unbookGlobal directly in single-op mode, delta recorders in
// ApplyBatch's shard phase (where the global aggregates must not be touched
// concurrently and the deltas replay later in merged order).
type bookFn func(fk flowKey, bits float64, src, dst topology.NodeID)
type unbookFn func(fk flowKey, b booking)

// resolveIntent moves resolvable per-reducer demand into pair aggregates.
func (p *Pythia) resolveIntent(sh *shard, pi *pendingIntent) {
	p.resolveIntentWith(sh, pi, p.fl, p.bookGlobal, p.unbookGlobal)
}

// resolveIntentWith is the resolver core: it mutates only the shard (booked,
// backlog) and hands the placement-plane half of every booking to gBook /
// gUnbook in a deterministic order. fl is the flight sink to use — nil in
// batch mode, where the shard phase runs concurrently and collector-plane
// events for batched operations are not recorded.
func (p *Pythia) resolveIntentWith(sh *shard, pi *pendingIntent, fl flight.Sink, gBook bookFn, gUnbook unbookFn) {
	in := pi.intent
	// Resolve in reducer-ID order: map iteration order is random, and the
	// flight recorder logs one booking per reducer — event order must be
	// deterministic. (The bookings themselves are order-independent.)
	reducers := make([]int, 0, len(pi.unresolved))
	for r := range pi.unresolved {
		reducers = append(reducers, r)
	}
	sort.Ints(reducers)
	var done []int
	for _, r := range reducers {
		bytes := pi.unresolved[r]
		dst, ok := sh.reducerLoc[[2]int{in.Job, r}]
		if !ok {
			continue
		}
		done = append(done, r)
		if !p.steerable(in.SrcHost, dst) {
			continue // local or intra-rack fetch; nothing to steer
		}
		bits := bytes * 8
		fk := flowKey{in.Job, in.Map, r}
		disp := flight.DispNew
		if prev, dup := sh.booked[fk]; dup {
			// Duplicate intent for the same (job, map, reducer) — e.g. a
			// speculative map attempt spilled a second copy on another
			// server. Only one attempt's output is fetched, so keep a
			// single booking (replace, don't add).
			sh.duplicateIntents++
			p.unbookLocal(sh, fk, prev)
			gUnbook(fk, prev)
			disp = flight.DispReplaced
		}
		sh.booked[fk] = booking{bits: bits, src: in.SrcHost, dst: dst, at: p.eng.Now()}
		if fl != nil {
			ev := flight.Ev(flight.BookingMade, flight.PlaneCollector)
			ev.Job, ev.Map, ev.Attempt, ev.Reduce = in.Job, in.Map, in.Attempt, r
			ev.Src, ev.Dst = in.SrcHost, dst
			ev.Bytes = bytes
			ev.Disposition = disp
			fl.Record(ev)
		}
		sh.redBacklog[[2]int{in.Job, r}] += bits
		gBook(fk, bits, in.SrcHost, dst)
	}
	sort.Ints(done)
	for _, r := range done {
		delete(pi.unresolved, r)
	}
}

// steerable reports whether a resolved (src, dst) transfer touches fabric
// links Pythia can steer: same-host fetches never leave the server, and
// under rack scope intra-rack transfers are a single ToR hop.
func (p *Pythia) steerable(src, dst topology.NodeID) bool {
	if dst == src {
		return false
	}
	if p.cfg.Scope == ScopeRackPair && p.g.Node(dst).Rack == p.g.Node(src).Rack {
		return false
	}
	return true
}

// bookGlobal applies the placement-plane half of one booking: charge the
// pair aggregate (creating it on first demand) and, under the A2 ablation,
// force a fresh placement decision.
func (p *Pythia) bookGlobal(fk flowKey, bits float64, src, dst topology.NodeID) {
	key := p.aggKey(src, dst)
	agg := p.aggregates[key]
	if agg == nil {
		agg = &aggregate{key: key, repSrc: src, repDst: dst,
			perReducer: make(map[[2]int]float64)}
		p.aggregates[key] = agg
	}
	agg.demandBits += bits
	agg.perReducer[[2]int{fk.job, fk.reduce}] += bits
	if !p.cfg.Aggregate {
		// Ablation: every new demand forces a fresh placement
		// decision for the pair.
		agg.placed = false
		p.unindexAgg(agg)
	}
}

// PendingUnknownDestinations reports intents still awaiting reducer
// placement.
func (p *Pythia) PendingUnknownDestinations() int {
	n := 0
	for _, sh := range p.shards {
		n += len(sh.pending)
	}
	return n
}

// touch records job activity for the dead-job purge (TTL mode only).
func (p *Pythia) touch(sh *shard, job int) {
	if sh.jobLastSeen != nil {
		sh.jobLastSeen[job] = p.eng.Now()
	}
}

// sweepExpired is the booking-TTL garbage collector (daemon ticker, period
// BookingTTL/2). It releases reservations whose flows never materialized,
// drops deferred intents that never resolved, and purges residual per-job
// state for jobs silent past the TTL — the backstop that keeps collector
// state bounded when JobDone itself is lost on the management network.
//
// Expiry order must be bit-identical at any shard count: booked keys are
// collected sorted per shard and min-key merged into the global
// (job, map, reduce) order; expired deferred intents merge by arrival seq.
func (p *Pythia) sweepExpired() {
	now := p.eng.Now()
	ttl := p.cfg.BookingTTL

	// Expired bookings: per-shard sorted lists, merged globally.
	keyLists := make([][]flowKey, len(p.shards))
	for i, sh := range p.shards {
		var keys []flowKey
		for fk, b := range sh.booked {
			if now.Sub(b.at) >= ttl {
				keys = append(keys, fk)
			}
		}
		sort.Slice(keys, func(a, b int) bool { return flowKeyLess(keys[a], keys[b]) })
		keyLists[i] = keys
	}
	heads := make([]int, len(keyLists))
	for {
		best := -1
		for i, l := range keyLists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || flowKeyLess(l[heads[i]], keyLists[best][heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		fk := keyLists[best][heads[best]]
		heads[best]++
		sh := p.shards[best]
		b := sh.booked[fk]
		delete(sh.booked, fk)
		p.unbookLocal(sh, fk, b)
		p.unbookGlobal(fk, b)
		sh.expiredBookings++
		if p.fl != nil {
			ev := flight.Ev(flight.BookingExpired, flight.PlaneCollector)
			ev.Job, ev.Map, ev.Reduce = fk.job, fk.mapID, fk.reduce
			ev.Src, ev.Dst = b.src, b.dst
			ev.Bytes = b.bits / 8
			p.fl.Record(ev)
		}
	}

	// Expired deferred intents: per-shard pending lists are seq-ascending,
	// so merging the expired ones by seq reproduces arrival order.
	var expired []*pendingIntent
	for _, sh := range p.shards {
		remaining := sh.pending[:0]
		for _, pi := range sh.pending {
			if now.Sub(pi.at) >= ttl {
				sh.expiredIntents++
				expired = append(expired, pi)
				continue
			}
			remaining = append(remaining, pi)
		}
		for i := len(remaining); i < len(sh.pending); i++ {
			sh.pending[i] = nil
		}
		sh.pending = remaining
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].seq < expired[j].seq })
	for _, pi := range expired {
		if p.fl != nil {
			ev := flight.Ev(flight.IntentExpired, flight.PlaneCollector)
			ev.Job, ev.Map, ev.Attempt = pi.intent.Job, pi.intent.Map, pi.intent.Attempt
			ev.Src = pi.intent.SrcHost
			ev.Count = len(pi.unresolved)
			p.fl.Record(ev)
		}
	}

	// Dead-job purge: a job with no bookings, no pending intents, and no
	// control message for a full TTL is gone — drop its reducer map and
	// idempotence entries so collector memory stays bounded.
	var dead []int
	for _, sh := range p.shards {
		live := make(map[int]bool)
		for fk := range sh.booked {
			live[fk.job] = true
		}
		for _, pi := range sh.pending {
			live[pi.intent.Job] = true
		}
		for job, last := range sh.jobLastSeen {
			if !live[job] && now.Sub(last) >= ttl {
				dead = append(dead, job)
			}
		}
	}
	sort.Ints(dead)
	for _, job := range dead {
		p.purgeJob(p.shardOf(job), job)
	}
}

// purgeJob drops a job's residual non-booking state (reducer placements,
// backlog, idempotence entries, activity stamp).
func (p *Pythia) purgeJob(sh *shard, job int) {
	for jr := range sh.reducerLoc {
		if jr[0] == job {
			delete(sh.reducerLoc, jr)
		}
	}
	for jr := range sh.redBacklog {
		if jr[0] == job {
			delete(sh.redBacklog, jr)
		}
	}
	for k := range sh.seen {
		if k[0] == job {
			delete(sh.seen, k)
		}
	}
	if sh.jobLastSeen != nil {
		delete(sh.jobLastSeen, job)
	}
}

// OutstandingBookings reports the job's live reservations plus deferred
// intents — the quantity that must be zero after the job is done (leak
// detection).
func (p *Pythia) OutstandingBookings(job int) int {
	sh := p.shardOf(job)
	n := 0
	for fk := range sh.booked {
		if fk.job == job {
			n++
		}
	}
	for _, pi := range sh.pending {
		if pi.intent.Job == job {
			n++
		}
	}
	return n
}

// OutstandingTotal reports live reservations plus deferred intents across
// every job — the service-level leak gauge (zero once every submitted job
// has been retired with JobDone).
func (p *Pythia) OutstandingTotal() int {
	n := 0
	for _, sh := range p.shards {
		n += len(sh.booked) + len(sh.pending)
	}
	return n
}

// OutstandingDemandBits sums booked-but-undelivered predicted demand.
func (p *Pythia) OutstandingDemandBits() float64 {
	total := 0.0
	for _, a := range p.aggregates {
		total += a.demandBits
	}
	return total
}

// allocate runs the first-fit bin-packing pass: unplaced aggregates in
// descending demand order, each assigned to the k-shortest path with the
// highest available bandwidth given background estimates and already-booked
// shuffle demand.
func (p *Pythia) allocate() {
	var todo []*aggregate
	for _, a := range p.aggregates {
		if !a.placed && a.demandBits > 0 && !a.degraded {
			todo = append(todo, a)
		}
	}
	if len(todo) == 0 {
		return
	}
	crit := func(a *aggregate) float64 {
		max := 0.0
		for jr := range a.perReducer {
			if b := p.shardOf(jr[0]).redBacklog[jr]; b > max {
				max = b
			}
		}
		return max
	}
	sort.Slice(todo, func(i, j int) bool {
		if p.cfg.UseCriticality {
			ci, cj := crit(todo[i]), crit(todo[j])
			if ci != cj {
				return ci > cj
			}
		}
		if todo[i].demandBits != todo[j].demandBits {
			return todo[i].demandBits > todo[j].demandBits
		}
		if todo[i].key.src != todo[j].key.src {
			return todo[i].key.src < todo[j].key.src
		}
		return todo[i].key.dst < todo[j].key.dst
	})
	for _, a := range todo {
		paths := p.kPaths(a.repSrc, a.repDst)
		if len(paths) == 0 {
			continue // unroutable; leave to the default pipeline
		}
		best := paths[0]
		bestScore := p.pathScore(paths[0], a)
		chosen := 0
		var scores []float64
		if p.fl != nil {
			scores = append(scores, bestScore)
		}
		for i, cand := range paths[1:] {
			s := p.pathScore(cand, a)
			if p.fl != nil {
				scores = append(scores, s)
			}
			if s > bestScore {
				best, bestScore = cand, s
				chosen = i + 1
			}
		}
		if p.fl != nil {
			ev := flight.Ev(flight.Placement, flight.PlaneCollector)
			ev.Src, ev.Dst = a.key.src, a.key.dst
			ev.Bytes = a.demandBits / 8
			ev.Count = len(paths)
			ev.Path = pathString(best)
			ev.Detail = placementDetail(scores, chosen, crit(a), p.cfg.UseCriticality)
			p.fl.Record(ev)
		}
		p.place(a, best)
	}
}

// pathString renders a path's link IDs for flight events.
func pathString(path topology.Path) string {
	var b strings.Builder
	for i, l := range path.Links {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(l)))
	}
	return b.String()
}

// placementDetail renders the bin-packing rationale: every candidate's
// estimated bandwidth, which index won, and (when the criticality criterion
// is active) the barrier backlog that prioritized the aggregate.
func placementDetail(scores []float64, chosen int, crit float64, useCrit bool) string {
	var b strings.Builder
	b.WriteString("scores=")
	for i, s := range scores {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(s, 'g', 4, 64))
	}
	b.WriteString(" chosen=")
	b.WriteString(strconv.Itoa(chosen))
	if useCrit {
		b.WriteString(" crit=")
		b.WriteString(strconv.FormatFloat(crit, 'g', 4, 64))
	}
	return b.String()
}

// pathScore estimates the bandwidth an aggregate would receive on a path:
// the minimum over links of the Hadoop-available capacity (nominal minus
// estimated background), shared demand-proportionally with the other
// aggregates booked there. Demand weighting makes heavy pairs spread even
// when all paths are equally loaded.
func (p *Pythia) pathScore(path topology.Path, self *aggregate) float64 {
	selfDemand := self.demandBits
	if selfDemand <= 0 {
		selfDemand = 1
	}
	score := 0.0
	for i, l := range path.Links {
		sample := p.ofc.LinkLoad(l)
		lk := p.g.Link(l)
		usedBps := sample.Utilization * lk.CapacityBps
		backgroundBps := usedBps - sample.ShuffleBps
		if backgroundBps < 0 {
			backgroundBps = 0
		}
		spare := lk.CapacityBps - backgroundBps
		if spare < 0 {
			spare = 0
		}
		// Share the spare capacity with aggregates already booked on
		// this link (self excluded), in proportion to predicted demand.
		linkScore := spare * selfDemand / (selfDemand + p.bookedDemandOn(l, self))
		if i == 0 || linkScore < score {
			score = linkScore
		}
	}
	return score
}

// bookedDemandOn sums the predicted demand of the other placed aggregates
// crossing link l. The summation order is fixed (ascending pair key) in
// both the indexed and scan-baseline modes so the float sum — and hence
// every placement decision — is bit-identical between them.
func (p *Pythia) bookedDemandOn(l topology.LinkID, self *aggregate) float64 {
	if !p.scanBaseline {
		// placedOn[l] is maintained in ascending pair-key order, so the
		// straight walk sums in exactly the order the scan branch sorts
		// into — no per-query sort or scratch allocation.
		sum := 0.0
		for _, other := range p.placedOn[l] {
			if other == self || other.demandBits <= 0 {
				continue
			}
			sum += other.demandBits
		}
		return sum
	}
	var others []*aggregate
	for _, other := range p.aggregates {
		if other == self || !other.placed || other.demandBits <= 0 {
			continue
		}
		for _, ol := range other.path.Links {
			if ol == l {
				others = append(others, other)
				break
			}
		}
	}
	sort.Slice(others, func(i, j int) bool { return aggKeyLess(others[i], others[j]) })
	sum := 0.0
	for _, o := range others {
		sum += o.demandBits
	}
	return sum
}

// place books the aggregate onto the path and installs its rules. An
// aggregate already holding rules for a different path is re-installed;
// one re-affirmed on its unchanged path counts as a Reaffirmation, not a
// placement, since no switch state moves.
func (p *Pythia) place(a *aggregate, path topology.Path) {
	// The cookie is the evidence that rules for a.path sit in the switches
	// (placed may have been cleared by a re-placement pass already).
	samePath := a.cookie != 0 && a.path.Equal(path)
	if a.cookie != 0 && !samePath {
		p.ofc.RemovePath(a.cookie)
		a.cookie = 0
		p.Reallocations++
	}
	p.unindexAgg(a)
	a.path = path
	a.placed = true
	p.indexAgg(a)
	if p.onPlace != nil {
		p.onPlace(a.key.src, a.key.dst, path)
	}
	if a.cookie != 0 {
		p.Reaffirmations++
		return
	}
	p.AggregatesPlaced++
	{
		cookie := p.nextCookie
		p.nextCookie++
		a.cookie = cookie
		onDone := func(err error) {
			if err != nil {
				p.RuleInstallErrors++
				if errors.Is(err, openflow.ErrControlPlaneUnreachable) {
					// Guard against stale acks: only degrade if this
					// install still backs the aggregate's current
					// placement.
					if p.aggregates[a.key] == a && a.cookie == cookie {
						p.degrade(a)
					}
				}
			}
		}
		if p.cfg.Scope == ScopeRackPair {
			match := openflow.RackPair(int(a.key.src), int(a.key.dst))
			p.ofc.InstallSteering(match, path, p.cfg.RulePriority, cookie, onDone)
		} else {
			match := openflow.HostPair(a.key.src, a.key.dst)
			p.ofc.InstallPath(match, path, p.cfg.RulePriority, cookie, onDone)
		}
	}
}

// degrade drops an aggregate to the default ECMP pipeline: whatever partial
// rules reached the switches are released (modeling switch-local idle-timeout
// expiry — switches expire rules autonomously, no control plane needed, so a
// half-programmed path cannot linger and trap traffic in a forwarding loop),
// and allocation skips the aggregate until reconciliation. Its traffic still
// flows — table misses fall back to local ECMP hashing in Resolve.
func (p *Pythia) degrade(a *aggregate) {
	if a.cookie != 0 {
		p.ofc.RemovePath(a.cookie)
		a.cookie = 0
	}
	a.placed = false
	a.degraded = true
	p.unindexAgg(a)
	p.AggregatesDegraded++
	if p.fl != nil {
		ev := flight.Ev(flight.Degraded, flight.PlaneCollector)
		ev.Src, ev.Dst = a.key.src, a.key.dst
		ev.Bytes = a.demandBits / 8
		p.fl.Record(ev)
	}
}

// onControllerUp reconciles degraded aggregates once management
// connectivity returns: clear the flags and run an allocation pass so live
// demand gets predictive placements again.
func (p *Pythia) onControllerUp() {
	n := 0
	for _, a := range p.aggregates {
		if a.degraded {
			a.degraded = false
			n++
		}
	}
	if n == 0 {
		return
	}
	p.Reconciliations += n
	if p.fl != nil {
		// One aggregated event: the loop above iterates an unsorted map, so
		// per-aggregate events here would be order-nondeterministic.
		ev := flight.Ev(flight.Reconciled, flight.PlaneCollector)
		ev.Count = n
		p.fl.Record(ev)
	}
	p.allocate()
}

// recordIntent emits the intent-received flight event; a no-op when the
// recorder is disabled.
func (p *Pythia) recordIntent(in instrument.Intent, disp string) {
	if p.fl == nil {
		return
	}
	ev := flight.Ev(flight.IntentReceived, flight.PlaneCollector)
	ev.Job, ev.Map, ev.Attempt, ev.Src = in.Job, in.Map, in.Attempt, in.SrcHost
	ev.Count = len(in.PredictedWireBytes)
	ev.DelaySec = float64(in.EmittedAt.Sub(in.MapFinishedAt))
	ev.Disposition = disp
	p.fl.Record(ev)
}

// onFlowComplete drains delivered demand and releases rules for pairs whose
// demand has emptied (keeping TCAM occupancy proportional to active work).
func (p *Pythia) onFlowComplete(f *netsim.Flow) {
	if f.Kind != netsim.Shuffle {
		return
	}
	sh := p.shardOf(f.Job)
	key := flowKey{f.Job, f.Map, f.Reduce}
	b, ok := sh.booked[key]
	if !ok {
		return
	}
	delete(sh.booked, key)
	p.unbookLocal(sh, key, b)
	p.unbookGlobal(key, b)
}

// unbookLocal reverses the shard-local half of one booking: draining the
// reducer's barrier backlog. (The caller removes the booked entry itself —
// duplicate replacement overwrites it instead.)
func (p *Pythia) unbookLocal(sh *shard, key flowKey, b booking) {
	jr := [2]int{key.job, key.reduce}
	if sh.redBacklog[jr] -= b.bits; sh.redBacklog[jr] <= 1 {
		delete(sh.redBacklog, jr)
	}
}

// unbookGlobal reverses the placement-plane half of one booking: draining
// the owning aggregate and releasing its rules when its demand empties.
func (p *Pythia) unbookGlobal(key flowKey, b booking) {
	agg := p.aggregates[p.aggKey(b.src, b.dst)]
	if agg == nil {
		return
	}
	jr := [2]int{key.job, key.reduce}
	agg.demandBits -= b.bits
	if agg.perReducer[jr] -= b.bits; agg.perReducer[jr] <= 1 {
		delete(agg.perReducer, jr)
	}
	if agg.demandBits <= 1 { // float dust
		agg.demandBits = 0
		if agg.cookie != 0 {
			p.ofc.RemovePath(agg.cookie)
		}
		p.unindexAgg(agg)
		delete(p.aggregates, agg.key)
	}
}

// JobDone purges all controller state for a finished (or abandoned) job:
// pending intents, bookings, reducer placements, and barrier backlog. Booked
// demand whose flows never ran — e.g. reducers that never started — would
// otherwise pin aggregates, rules, and backlog entries forever.
func (p *Pythia) JobDone(job int) {
	sh := p.shardOf(job)
	p.jobDoneLocal(sh, job, func(fk flowKey, b booking) {
		p.unbookGlobal(fk, b)
	})
}

// jobDoneLocal performs the shard-local half of JobDone — dropping the
// job's deferred intents, unbooking its reservations in sorted (map,
// reduce) order, and purging residual state — handing each released
// booking's placement-plane half to emit (applied immediately in direct
// mode, deferred to the batch commit in ApplyBatch).
func (p *Pythia) jobDoneLocal(sh *shard, job int, emit func(flowKey, booking)) {
	remaining := sh.pending[:0]
	for _, pi := range sh.pending {
		if pi.intent.Job != job {
			remaining = append(remaining, pi)
		}
	}
	for i := len(remaining); i < len(sh.pending); i++ {
		sh.pending[i] = nil
	}
	sh.pending = remaining
	var keys []flowKey
	for fk := range sh.booked {
		if fk.job == job {
			keys = append(keys, fk)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].mapID != keys[j].mapID {
			return keys[i].mapID < keys[j].mapID
		}
		return keys[i].reduce < keys[j].reduce
	})
	for _, fk := range keys {
		b := sh.booked[fk]
		delete(sh.booked, fk)
		p.unbookLocal(sh, fk, b)
		emit(fk, b)
	}
	p.purgeJob(sh, job)
}

// onTopologyChange recomputes routing, re-places every live aggregate, and
// reroutes in-flight shuffle flows stranded on failed links (§IV fault
// tolerance: the routing graph is rebuilt from topology-update events).
func (p *Pythia) onTopologyChange() {
	// The path cache self-repairs from the graph's transition journal on
	// the next query; no flush needed here.
	for _, a := range p.aggregates {
		if a.demandBits <= 0 {
			continue
		}
		// Invalid paths (through failed links) must move; valid ones are
		// re-scored too, since spare capacity shifted. Degraded aggregates
		// get another chance: the fabric changed, so retry placement (they
		// re-degrade if the control plane is still dark).
		a.placed = false
		a.degraded = false
		p.unindexAgg(a)
	}
	p.allocate()
	// Rescue stranded in-flight flows: move them onto their pair's new
	// path (or the best current shortest path if the pair has drained).
	// ForEachActive avoids copying the active set; Reroute during the walk
	// is safe because it does not change active-set membership.
	p.net.ForEachActive(func(f *netsim.Flow) {
		if f.Kind != netsim.Shuffle || len(f.Path.Links) == 0 {
			return
		}
		if f.Path.Valid(p.g) == nil {
			return // still routable
		}
		var target topology.Path
		agg := p.aggregates[p.aggKey(f.Tuple.SrcHost, f.Tuple.DstHost)]
		if agg != nil && agg.placed && p.cfg.Scope == ScopeHostPair {
			target = agg.path
		} else if ps := p.kPaths(f.Tuple.SrcHost, f.Tuple.DstHost); len(ps) > 0 {
			target = ps[0]
		} else {
			return // pair disconnected; flow stays starved
		}
		p.net.Reroute(f, target)
		p.FlowsRescued++
	})
}
