package core

import (
	"sync"

	"pythia/internal/topology"
)

// delta is one deferred placement-plane mutation produced by ApplyBatch's
// shard phase: the bookGlobal/unbookGlobal call the shard-local resolver
// would have made inline in single-op mode. (op, sub) is the mutation's
// position in the batch's global order — op is the operation's index in the
// batch, sub the emission ordinal within that operation — which the commit
// phase replays with a min-key merge.
type delta struct {
	op, sub int
	unbook  bool
	fk      flowKey
	// book fields
	bits     float64
	src, dst topology.NodeID
	// unbook field: the reservation being released
	prev booking
}

func deltaLess(a, b *delta) bool {
	if a.op != b.op {
		return a.op < b.op
	}
	return a.sub < b.sub
}

// ApplyBatch ingests a batch of collector operations in two phases:
//
//  1. Shard phase — operations are routed to their job's home shard and
//     each shard processes its own operations, in batch order, touching
//     only shard-local state (dedup, reducer placements, deferred intents,
//     bookings, barrier backlog). Placement-plane mutations are not applied
//     but recorded as (op, sub)-stamped deltas. Shards share nothing, so
//     with workers > 1 this phase runs shards concurrently.
//  2. Commit phase — serialized: the per-shard delta streams (each already
//     ascending in (op, sub)) are min-key merged into the batch's global
//     order and applied to the pair aggregates, then one placement pass
//     (allocate) runs for the whole batch.
//
// Determinism contract: for a fixed operation sequence and fixed batch
// boundaries, the results, all collector state, and every placement
// decision are bit-identical at any shard count and any worker count —
// the merged delta order reproduces exactly the order a single shard
// would have produced. Batch boundaries do matter: single-op mode runs a
// placement pass after every operation, ApplyBatch one per batch, so an
// online service and a per-message simulation legitimately place at
// different instants. Compare like with like (same batching) when checking
// equivalence.
//
// Collector-plane flight events are not recorded for batched operations
// (the shard phase may run concurrently); engine-driven events such as TTL
// sweeps still record normally.
//
// Results are positional with ops. The caller must not invoke any other
// collector method, nor advance the engine, while ApplyBatch runs.
func (p *Pythia) ApplyBatch(ops []Op, workers int) []OpResult {
	if len(ops) == 0 {
		return nil
	}
	results := make([]OpResult, len(ops))

	// Route operations to their home shards.
	byShard := make([][]int, len(p.shards))
	if len(p.shards) == 1 {
		idx := make([]int, len(ops))
		for i := range ops {
			idx[i] = i
		}
		byShard[0] = idx
	} else {
		for i := range ops {
			s := ops[i].job() % len(p.shards)
			byShard[s] = append(byShard[s], i)
		}
	}

	// Intent arrival ordinals depend only on the batch position, so the
	// pending lists stay seq-ascending identically at any shard count.
	seqBase := p.nextSeq
	p.nextSeq = seqBase + uint64(len(ops))

	deltas := make([][]delta, len(p.shards))
	run := func(si int) {
		sh := p.shards[si]
		var ds []delta
		for _, i := range byShard[si] {
			results[i] = p.applyShardOp(sh, ops[i], seqBase+uint64(i), i, &ds)
		}
		deltas[si] = ds
	}
	if workers <= 1 || len(p.shards) == 1 {
		for si := range p.shards {
			if len(byShard[si]) > 0 {
				run(si)
			}
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for si := range p.shards {
			if len(byShard[si]) == 0 {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(si int) {
				defer wg.Done()
				run(si)
				<-sem
			}(si)
		}
		wg.Wait()
	}

	// Commit: min-key merge the per-shard delta streams back into batch
	// order and apply them to the placement plane.
	heads := make([]int, len(deltas))
	for {
		best := -1
		for i := range deltas {
			if heads[i] >= len(deltas[i]) {
				continue
			}
			if best < 0 || deltaLess(&deltas[i][heads[i]], &deltas[best][heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		d := &deltas[best][heads[best]]
		heads[best]++
		if d.unbook {
			p.unbookGlobal(d.fk, d.prev)
		} else {
			p.bookGlobal(d.fk, d.bits, d.src, d.dst)
		}
	}

	p.allocate()
	return results
}

// applyShardOp runs one operation's shard-local half, appending its
// placement-plane deltas to ds stamped (opIdx, 0..n).
func (p *Pythia) applyShardOp(sh *shard, op Op, seq uint64, opIdx int, ds *[]delta) OpResult {
	sub := 0
	gBook := func(fk flowKey, bits float64, src, dst topology.NodeID) {
		*ds = append(*ds, delta{op: opIdx, sub: sub, fk: fk, bits: bits, src: src, dst: dst})
		sub++
	}
	gUnbook := func(fk flowKey, b booking) {
		*ds = append(*ds, delta{op: opIdx, sub: sub, unbook: true, fk: fk, prev: b})
		sub++
	}
	switch op.Kind {
	case OpIntent:
		in := op.Intent
		k := [3]int{in.Job, in.Map, in.Attempt}
		if sh.seen[k] {
			sh.dedupHits++
			return OpDuplicate
		}
		sh.seen[k] = true
		p.touch(sh, in.Job)
		sh.intentsReceived++
		pi := &pendingIntent{intent: in, unresolved: make(map[int]float64), at: p.eng.Now(), seq: seq}
		for r, bytes := range in.PredictedWireBytes {
			if bytes <= 0 {
				continue
			}
			pi.unresolved[r] = bytes
		}
		p.resolveIntentWith(sh, pi, nil, gBook, gUnbook)
		if len(pi.unresolved) > 0 {
			sh.intentsDeferred++
			sh.pending = append(sh.pending, pi)
			return OpDeferred
		}
		return OpAccepted
	case OpReducerUp:
		up := op.Reducer
		p.touch(sh, up.Job)
		sh.reducerLoc[[2]int{up.Job, up.Reduce}] = up.Host
		p.drainPendingWith(sh, nil, gBook, gUnbook)
		return OpAccepted
	case OpJobDone:
		p.jobDoneLocal(sh, op.Job, gUnbook)
		return OpAccepted
	}
	return OpAccepted
}
