package core

import (
	"fmt"
	"sort"

	"pythia/internal/instrument"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// This file is the collector's durability surface: Snapshot captures every
// bit of state a placement decision can depend on, Restore rebuilds it into
// a freshly constructed stack, and NovelOps is the logical-clock metering
// rule that makes at-least-once delivery clock-invisible. Together with the
// write-ahead journal (internal/wal) and the serving layer's replay
// (internal/serve) they make a restarted collector bit-identical to one
// that never crashed: restore the last snapshot, advance the engine to the
// snapshot instant (catch-up TTL sweeps are provably no-ops against
// restored state — anything they could expire was already expired by the
// same sweep before the snapshot was cut), then replay the journal tail
// through the normal ApplyBatch path.

// FlowKey is the exported (job, map, reduce) booking key used by snapshots.
type FlowKey struct {
	Job, Map, Reduce int
}

// BookingSnap is one demand reservation.
type BookingSnap struct {
	Bits     float64
	Src, Dst topology.NodeID
	At       sim.Time
}

// PendingSnap is one deferred intent awaiting reducer placement.
type PendingSnap struct {
	Intent     instrument.Intent
	Unresolved map[int]float64
	At         sim.Time
	Seq        uint64
}

// ShardSnap is one shard's complete per-job state and counters.
type ShardSnap struct {
	ReducerLoc  map[[2]int]topology.NodeID
	Pending     []PendingSnap
	Booked      map[FlowKey]BookingSnap
	RedBacklog  map[[2]int]float64
	Seen        map[[3]int]bool
	JobLastSeen map[int]sim.Time // nil when the TTL sweep is disabled

	IntentsReceived  int
	IntentsDeferred  int
	DedupHits        int
	DuplicateIntents int
	ExpiredBookings  int
	ExpiredIntents   int
}

// AggSnap is one pair aggregate of the placement plane. Cookie != 0 means
// rules for Path are programmed in the switches; Restore re-installs them
// under the same cookie so the post-restart rule lifecycle (same-path
// re-affirmation, removal on drain) is indistinguishable from an
// uninterrupted run.
type AggSnap struct {
	KeySrc, KeyDst topology.NodeID
	RepSrc, RepDst topology.NodeID
	Path           topology.Path
	Cookie         uint64
	DemandBits     float64
	Placed         bool
	Degraded       bool
	PerReducer     map[[2]int]float64
}

// Snapshot is a complete, self-contained capture of collector state. It is
// plain exported data (gob- and JSON-encodable); the float64 fields carry
// exact bit patterns, which Restore preserves — reconstructing demand sums
// from bookings instead would re-associate float additions and perturb
// placement scores.
type Snapshot struct {
	Shards     []ShardSnap
	NextSeq    uint64
	NextCookie uint64
	Aggregates []AggSnap // ascending pair key

	AggregatesPlaced   int
	Reaffirmations     int
	Reallocations      int
	RuleInstallErrors  int
	FlowsRescued       int
	AggregatesDegraded int
	Reconciliations    int
}

// Snapshot captures the collector's full state (Collector). The caller must
// hold the same exclusion ApplyBatch requires (no concurrent collector or
// engine use).
func (p *Pythia) Snapshot() *Snapshot {
	s := &Snapshot{
		Shards:     make([]ShardSnap, len(p.shards)),
		NextSeq:    p.nextSeq,
		NextCookie: p.nextCookie,

		AggregatesPlaced:   p.AggregatesPlaced,
		Reaffirmations:     p.Reaffirmations,
		Reallocations:      p.Reallocations,
		RuleInstallErrors:  p.RuleInstallErrors,
		FlowsRescued:       p.FlowsRescued,
		AggregatesDegraded: p.AggregatesDegraded,
		Reconciliations:    p.Reconciliations,
	}
	for i, sh := range p.shards {
		ss := ShardSnap{
			ReducerLoc: make(map[[2]int]topology.NodeID, len(sh.reducerLoc)),
			Booked:     make(map[FlowKey]BookingSnap, len(sh.booked)),
			RedBacklog: make(map[[2]int]float64, len(sh.redBacklog)),
			Seen:       make(map[[3]int]bool, len(sh.seen)),

			IntentsReceived:  sh.intentsReceived,
			IntentsDeferred:  sh.intentsDeferred,
			DedupHits:        sh.dedupHits,
			DuplicateIntents: sh.duplicateIntents,
			ExpiredBookings:  sh.expiredBookings,
			ExpiredIntents:   sh.expiredIntents,
		}
		for k, v := range sh.reducerLoc {
			ss.ReducerLoc[k] = v
		}
		for fk, b := range sh.booked {
			ss.Booked[FlowKey{fk.job, fk.mapID, fk.reduce}] = BookingSnap{b.bits, b.src, b.dst, b.at}
		}
		for k, v := range sh.redBacklog {
			ss.RedBacklog[k] = v
		}
		for k, v := range sh.seen {
			ss.Seen[k] = v
		}
		if sh.jobLastSeen != nil {
			ss.JobLastSeen = make(map[int]sim.Time, len(sh.jobLastSeen))
			for k, v := range sh.jobLastSeen {
				ss.JobLastSeen[k] = v
			}
		}
		for _, pi := range sh.pending {
			ps := PendingSnap{Intent: pi.intent, Unresolved: make(map[int]float64, len(pi.unresolved)),
				At: pi.at, Seq: pi.seq}
			for r, b := range pi.unresolved {
				ps.Unresolved[r] = b
			}
			ss.Pending = append(ss.Pending, ps)
		}
		s.Shards[i] = ss
	}
	for _, a := range p.aggregates {
		as := AggSnap{
			KeySrc: a.key.src, KeyDst: a.key.dst,
			RepSrc: a.repSrc, RepDst: a.repDst,
			Path:       topology.Path{Links: append([]topology.LinkID(nil), a.path.Links...), Src: a.path.Src, Dst: a.path.Dst},
			Cookie:     a.cookie,
			DemandBits: a.demandBits,
			Placed:     a.placed,
			Degraded:   a.degraded,
			PerReducer: make(map[[2]int]float64, len(a.perReducer)),
		}
		for k, v := range a.perReducer {
			as.PerReducer[k] = v
		}
		s.Aggregates = append(s.Aggregates, as)
	}
	sort.Slice(s.Aggregates, func(i, j int) bool {
		if s.Aggregates[i].KeySrc != s.Aggregates[j].KeySrc {
			return s.Aggregates[i].KeySrc < s.Aggregates[j].KeySrc
		}
		return s.Aggregates[i].KeyDst < s.Aggregates[j].KeyDst
	})
	return s
}

// Restore rebuilds collector state from a snapshot (Collector). It must run
// on a freshly constructed Pythia (same Config.Shards, same fabric) before
// any ingest; rules held by snapshotted aggregates are re-programmed into
// the fresh controller under their original cookies — the restart-time
// switch re-sync a physical deployment would perform. After Restore the
// caller advances the engine to the snapshot instant and replays the
// journal tail.
func (p *Pythia) Restore(s *Snapshot) error {
	if len(s.Shards) != len(p.shards) {
		return fmt.Errorf("core: snapshot has %d shards, collector %d (shard count must match across restart)",
			len(s.Shards), len(p.shards))
	}
	for i := range p.shards {
		if n := len(p.shards[i].seen) + len(p.shards[i].booked) + len(p.shards[i].pending); n != 0 {
			return fmt.Errorf("core: Restore on a non-fresh collector (shard %d has state)", i)
		}
	}
	p.nextSeq = s.NextSeq
	p.nextCookie = s.NextCookie
	p.AggregatesPlaced = s.AggregatesPlaced
	p.Reaffirmations = s.Reaffirmations
	p.Reallocations = s.Reallocations
	p.RuleInstallErrors = s.RuleInstallErrors
	p.FlowsRescued = s.FlowsRescued
	p.AggregatesDegraded = s.AggregatesDegraded
	p.Reconciliations = s.Reconciliations

	for i, ss := range s.Shards {
		sh := p.shards[i]
		sh.intentsReceived = ss.IntentsReceived
		sh.intentsDeferred = ss.IntentsDeferred
		sh.dedupHits = ss.DedupHits
		sh.duplicateIntents = ss.DuplicateIntents
		sh.expiredBookings = ss.ExpiredBookings
		sh.expiredIntents = ss.ExpiredIntents
		for k, v := range ss.ReducerLoc {
			sh.reducerLoc[k] = v
		}
		for fk, b := range ss.Booked {
			sh.booked[flowKey{fk.Job, fk.Map, fk.Reduce}] = booking{bits: b.Bits, src: b.Src, dst: b.Dst, at: b.At}
		}
		for k, v := range ss.RedBacklog {
			sh.redBacklog[k] = v
		}
		for k, v := range ss.Seen {
			sh.seen[k] = v
		}
		if ss.JobLastSeen != nil {
			if sh.jobLastSeen == nil {
				sh.jobLastSeen = make(map[int]sim.Time, len(ss.JobLastSeen))
			}
			for k, v := range ss.JobLastSeen {
				sh.jobLastSeen[k] = v
			}
		}
		// Pending lists are seq-ascending in snapshots (they were taken from
		// seq-ascending lists); keep them so.
		for _, ps := range ss.Pending {
			pi := &pendingIntent{intent: ps.Intent, unresolved: make(map[int]float64, len(ps.Unresolved)),
				at: ps.At, seq: ps.Seq}
			for r, b := range ps.Unresolved {
				pi.unresolved[r] = b
			}
			sh.pending = append(sh.pending, pi)
		}
	}

	for _, as := range s.Aggregates {
		a := &aggregate{
			key:        pairKey{as.KeySrc, as.KeyDst},
			repSrc:     as.RepSrc,
			repDst:     as.RepDst,
			path:       topology.Path{Links: append([]topology.LinkID(nil), as.Path.Links...), Src: as.Path.Src, Dst: as.Path.Dst},
			cookie:     as.Cookie,
			demandBits: as.DemandBits,
			placed:     as.Placed,
			degraded:   as.Degraded,
			perReducer: make(map[[2]int]float64, len(as.PerReducer)),
		}
		for k, v := range as.PerReducer {
			a.perReducer[k] = v
		}
		p.aggregates[a.key] = a
		if a.placed {
			p.indexAgg(a)
		}
		if a.cookie != 0 {
			// Re-program the rules the crashed process had installed. The
			// fresh control plane is assumed reachable at restore time, so
			// no degrade handling is wired; install acks are pure no-ops.
			if p.cfg.Scope == ScopeRackPair {
				p.ofc.InstallSteering(openflow.RackPair(int(a.key.src), int(a.key.dst)),
					a.path, p.cfg.RulePriority, a.cookie, nil)
			} else {
				p.ofc.InstallPath(openflow.HostPair(a.key.src, a.key.dst),
					a.path, p.cfg.RulePriority, a.cookie, nil)
			}
		}
	}
	return nil
}

// NovelOps counts the operations of a batch that represent new work rather
// than at-least-once redelivery: intents not yet in the idempotence set,
// reducer placements that change the recorded host, and retirements of jobs
// the collector still knows. The serving layer's logical clock advances by
// this count, so a retried request — same ops, already applied — moves
// virtual time by zero and a crashed-and-recovered run keeps the exact
// sweep schedule of an uninterrupted one.
//
// The count is evaluated against pre-batch state (plus earlier ops of the
// same batch), is read-only, and is deterministic: journal replay re-derives
// the same value the original run metered.
func (p *Pythia) NovelOps(ops []Op) int {
	novel := 0
	var seenScratch map[[3]int]bool
	var redScratch map[[2]int]topology.NodeID
	var jobScratch map[int]bool // job known (true) / retired (false) by earlier ops in this batch
	jobKnown := func(sh *shard, job int) bool {
		if v, ok := jobScratch[job]; ok {
			return v
		}
		if sh.jobLastSeen == nil {
			// No TTL bookkeeping: fall back to "always novel" for JobDone by
			// reporting the job known.
			return true
		}
		_, ok := sh.jobLastSeen[job]
		return ok
	}
	markJob := func(job int, known bool) {
		if jobScratch == nil {
			jobScratch = make(map[int]bool)
		}
		jobScratch[job] = known
	}
	for i := range ops {
		op := &ops[i]
		sh := p.shardOf(op.job())
		switch op.Kind {
		case OpIntent:
			k := [3]int{op.Intent.Job, op.Intent.Map, op.Intent.Attempt}
			if sh.seen[k] || seenScratch[k] {
				continue
			}
			if seenScratch == nil {
				seenScratch = make(map[[3]int]bool)
			}
			seenScratch[k] = true
			markJob(op.Intent.Job, true)
			novel++
		case OpReducerUp:
			k := [2]int{op.Reducer.Job, op.Reducer.Reduce}
			cur, ok := redScratch[k]
			if !ok {
				cur, ok = sh.reducerLoc[k]
			}
			if ok && cur == op.Reducer.Host {
				continue
			}
			if redScratch == nil {
				redScratch = make(map[[2]int]topology.NodeID)
			}
			redScratch[k] = op.Reducer.Host
			markJob(op.Reducer.Job, true)
			novel++
		case OpJobDone:
			if !jobKnown(sh, op.Job) {
				continue
			}
			markJob(op.Job, false)
			novel++
		}
	}
	return novel
}
