package core

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// snapStack is a collector driven the way the serving plane drives it:
// batches applied under a NovelOps-metered logical clock, no Hadoop cluster.
type snapStack struct {
	eng *sim.Engine
	py  *Pythia
	dig *placementDigest

	virtual float64
	clockHz float64
}

func newSnapStack(t *testing.T, shards int, ttl sim.Duration, clockHz float64) *snapStack {
	t.Helper()
	eng := sim.NewEngine()
	g, _, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	ofc := openflow.NewController(eng, net, 0)
	py := New(eng, net, ofc, Config{Aggregate: true, UseCriticality: true,
		Shards: shards, BookingTTL: ttl})
	s := &snapStack{eng: eng, py: py, dig: newPlacementDigest(), clockHz: clockHz}
	py.SetPlacementHook(s.dig.observe)
	return s
}

// apply runs one batch exactly like the serving loop: advance the logical
// clock by the batch's novel-op count, run the engine to the new instant
// (firing any due TTL sweeps), then ApplyBatch.
func (s *snapStack) apply(ops []Op) {
	s.virtual += float64(s.py.NovelOps(ops)) / s.clockHz
	s.eng.RunUntil(sim.Time(s.virtual))
	s.py.ApplyBatch(ops, 2)
}

// gobRoundTrip pushes a snapshot through the codec the serving plane uses
// for its snapshot files, so the restore test also proves the on-disk
// representation is lossless (exact float bits, array-keyed maps and all).
func gobRoundTrip(t *testing.T, s *Snapshot) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	out := new(Snapshot)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

// TestSnapshotRestoreContinuesIdentically is the core recovery proof: take a
// snapshot mid-stream, rebuild a fresh stack from its gob round-trip, and
// drive both the original and the restored collector through the identical
// remainder — placement digests, stats, and leak gauges must stay
// bit-identical, TTL sweeps included.
func TestSnapshotRestoreContinuesIdentically(t *testing.T) {
	_, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	ops := batchTrace(hosts, 9, 6, 4, 42)
	const chunk, cutChunk = 17, 4
	const clockHz = 1.0

	oracle := newSnapStack(t, 2, 40, clockHz)
	var snap *Snapshot
	var snapVirtual float64
	var snapDig placementDigest
	for at, i := 0, 0; at < len(ops); at, i = at+chunk, i+1 {
		end := at + chunk
		if end > len(ops) {
			end = len(ops)
		}
		oracle.apply(ops[at:end])
		if i == cutChunk {
			snap = gobRoundTrip(t, oracle.py.Snapshot())
			snapVirtual = oracle.virtual
			snapDig = *oracle.dig
		}
	}
	if snap == nil {
		t.Fatal("trace too short to reach the snapshot chunk")
	}
	if oracle.py.Stats().ExpiredBookings == 0 {
		t.Fatal("trace never exercised the TTL sweep; the test is too weak")
	}

	restored := newSnapStack(t, 2, 40, clockHz)
	if err := restored.py.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	restored.virtual = snapVirtual
	*restored.dig = snapDig
	// Catch-up: run the fresh engine to the snapshot instant. Every TTL
	// sweep fired on the way is a no-op against restored state (anything it
	// could expire was expired by the same sweep before the snapshot).
	preCatchUp := restored.py.Stats()
	restored.eng.RunUntil(sim.Time(snapVirtual))
	if st := restored.py.Stats(); st != preCatchUp {
		t.Fatalf("catch-up sweeps mutated state:\n got %+v\nwant %+v", st, preCatchUp)
	}
	for at := (cutChunk + 1) * chunk; at < len(ops); at += chunk {
		end := at + chunk
		if end > len(ops) {
			end = len(ops)
		}
		restored.apply(ops[at:end])
	}

	if restored.dig.h != oracle.dig.h || restored.dig.n != oracle.dig.n {
		t.Errorf("placement digest diverged after restore: %x/%d vs %x/%d",
			restored.dig.h, restored.dig.n, oracle.dig.h, oracle.dig.n)
	}
	if got, want := restored.py.Stats(), oracle.py.Stats(); got != want {
		t.Errorf("stats diverged after restore:\n got %+v\nwant %+v", got, want)
	}
	if restored.virtual != oracle.virtual {
		t.Errorf("logical clock diverged: %v vs %v", restored.virtual, oracle.virtual)
	}
	if n := restored.py.OutstandingTotal(); n != oracle.py.OutstandingTotal() {
		t.Errorf("leak gauge diverged: %d vs %d", n, oracle.py.OutstandingTotal())
	}
}

// TestSnapshotGobLossless proves the snapshot of a collector with live state
// survives the gob codec structurally intact.
func TestSnapshotGobLossless(t *testing.T) {
	_, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	s := newSnapStack(t, 2, 40, 4)
	ops := batchTrace(hosts, 5, 4, 4, 7)
	s.apply(ops[:len(ops)/2]) // stop mid-stream so pending/booked state is live
	snap := s.py.Snapshot()
	if len(snap.Aggregates) == 0 {
		t.Fatal("snapshot captured no aggregates; the test is too weak")
	}
	got := gobRoundTrip(t, snap)
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("gob round trip not lossless:\n got %+v\nwant %+v", got, snap)
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	a := newSnapStack(t, 2, 40, 4)
	snap := a.py.Snapshot()

	wrongShards := newSnapStack(t, 4, 40, 4)
	if err := wrongShards.py.Restore(snap); err == nil {
		t.Error("restore with mismatched shard count succeeded")
	}

	_, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	dirty := newSnapStack(t, 2, 40, 4)
	dirty.apply([]Op{{Kind: OpIntent, Intent: instrument.Intent{Job: 1, Map: 0,
		SrcHost: hosts[0], PredictedWireBytes: []float64{1e6}}}})
	if err := dirty.py.Restore(snap); err == nil {
		t.Error("restore onto a non-fresh collector succeeded")
	}
}

// TestNovelOps pins the duplicate-exemption rules of the logical clock: a
// redelivered batch must meter zero, and intra-batch ordering must be
// respected so replay re-derives the exact advance the original run used.
func TestNovelOps(t *testing.T) {
	_, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	s := newSnapStack(t, 2, 40, 4)
	in := instrument.Intent{Job: 1, Map: 0, Attempt: 0, SrcHost: hosts[0],
		PredictedWireBytes: []float64{5e6, 5e6}}
	batch := []Op{
		{Kind: OpIntent, Intent: in},
		{Kind: OpIntent, Intent: in}, // intra-batch dup: not novel
		{Kind: OpReducerUp, Reducer: instrument.ReducerUp{Job: 1, Reduce: 0, Host: hosts[5]}},
		{Kind: OpReducerUp, Reducer: instrument.ReducerUp{Job: 1, Reduce: 0, Host: hosts[5]}}, // same host: not novel
		{Kind: OpJobDone, Job: 99}, // unknown job: not novel
	}
	if n := s.py.NovelOps(batch); n != 2 {
		t.Errorf("NovelOps(first delivery) = %d, want 2", n)
	}
	s.apply(batch) // commit intent + reducer placement, keep job 1 live
	if n := s.py.NovelOps(batch); n != 0 {
		t.Errorf("NovelOps(redelivery) = %d, want 0", n)
	}
	// Moving a reducer to a new host is real work, metered.
	if n := s.py.NovelOps([]Op{{Kind: OpReducerUp,
		Reducer: instrument.ReducerUp{Job: 1, Reduce: 0, Host: hosts[6]}}}); n != 1 {
		t.Errorf("NovelOps(reducer moved) = %d, want 1", n)
	}
	// JobDone for a live job meters 1; after it retires the job the same
	// batch sees the job as gone.
	if n := s.py.NovelOps([]Op{{Kind: OpJobDone, Job: 1}, {Kind: OpJobDone, Job: 1}}); n != 1 {
		t.Errorf("NovelOps(done,done) = %d, want 1", n)
	}
	s.apply([]Op{{Kind: OpJobDone, Job: 1}})
	if n := s.py.NovelOps([]Op{{Kind: OpJobDone, Job: 1}}); n != 0 {
		t.Errorf("NovelOps(done after retire) = %d, want 0", n)
	}

	// Without TTL bookkeeping there is no liveness table; JobDone always
	// meters (documented conservative fallback).
	noTTL := newSnapStack(t, 1, 0, 4)
	if n := noTTL.py.NovelOps([]Op{{Kind: OpJobDone, Job: 5}}); n != 1 {
		t.Errorf("NovelOps(JobDone, no TTL) = %d, want 1", n)
	}
}
