package core

import (
	"fmt"
	"hash/fnv"
	"testing"

	"pythia/internal/hadoop"
	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/stats"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

// placementDigest fingerprints the collector's placement-decision stream:
// every place() call folds (src, dst, path links) into an FNV-1a hash, so
// two runs share a digest iff they made identical decisions in identical
// order.
type placementDigest struct {
	h uint64
	n int
}

func newPlacementDigest() *placementDigest { return &placementDigest{h: 14695981039346656037} }

func (d *placementDigest) observe(src, dst topology.NodeID, path topology.Path) {
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			d.h ^= (v >> (8 * i)) & 0xff
			d.h *= 1099511628211
		}
	}
	mix(uint64(src))
	mix(uint64(dst))
	for _, l := range path.Links {
		mix(uint64(l))
	}
	mix(0xffffffffffffffff) // record separator
	d.n++
}

// shardedRun drives a three-job staggered workload through the full
// simulated stack at the given shard count and returns (job durations,
// stats, placement digest).
func shardedRun(t *testing.T, shards int) ([]sim.Duration, CollectorStats, uint64) {
	t.Helper()
	s := newStack(Config{Aggregate: true, UseCriticality: true, Shards: shards,
		BookingTTL: 40}, hadoop.Config{})
	dig := newPlacementDigest()
	s.py.SetPlacementHook(dig.observe)
	var jobs []*hadoop.Job
	submit := func(at float64, spec *hadoop.JobSpec) {
		s.eng.At(sim.Time(at), func() {
			j, err := s.clus.Submit(spec)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			jobs = append(jobs, j)
		})
	}
	submit(0, workload.Sort(2*workload.GB, 8, 7))
	submit(3, workload.Nutch(1*workload.GB, 6, 11))
	submit(5, workload.Sort(1*workload.GB, 4, 13))
	s.eng.Run()
	var durs []sim.Duration
	for _, j := range jobs {
		if !j.Done {
			t.Fatalf("job %s did not finish (shards=%d)", j.Spec.Name, shards)
		}
		durs = append(durs, j.Duration())
	}
	return durs, s.py.Stats(), dig.h
}

// TestShardCountInvariantSimRun proves the sharded collector is invisible
// to results in per-message (simulation) mode: the same seeded workload
// produces bit-identical job durations, counters, and placement streams at
// 1, 2, and 8 shards.
func TestShardCountInvariantSimRun(t *testing.T) {
	refDurs, refStats, refDig := shardedRun(t, 1)
	for _, shards := range []int{2, 8} {
		durs, st, dig := shardedRun(t, shards)
		st.Shards = refStats.Shards // the one field that legitimately differs
		if len(durs) != len(refDurs) {
			t.Fatalf("shards=%d: %d jobs vs %d", shards, len(durs), len(refDurs))
		}
		for i := range durs {
			if durs[i] != refDurs[i] {
				t.Errorf("shards=%d: job %d duration %v != %v", shards, i, durs[i], refDurs[i])
			}
		}
		if st != refStats {
			t.Errorf("shards=%d: stats diverged:\n got %+v\nwant %+v", shards, st, refStats)
		}
		if dig != refDig {
			t.Errorf("shards=%d: placement digest %x != %x", shards, dig, refDig)
		}
	}
}

// batchTrace synthesizes a deterministic op stream exercising every op
// kind plus the dedup, duplicate-booking, and deferred paths across many
// interleaved jobs.
func batchTrace(hosts []topology.NodeID, jobs, mapsPer, reducesPer int, seed uint64) []Op {
	rng := stats.NewRNG(seed)
	var ops []Op
	for j := 0; j < jobs; j++ {
		// Half the reducers come up before the intents (immediate
		// resolution), half after (deferred path).
		for r := 0; r < reducesPer/2; r++ {
			ops = append(ops, Op{Kind: OpReducerUp, Reducer: instrument.ReducerUp{
				Job: j, Reduce: r, Host: hosts[rng.Intn(len(hosts))]}})
		}
	}
	for m := 0; m < mapsPer; m++ {
		for j := 0; j < jobs; j++ {
			bytes := make([]float64, reducesPer)
			for r := range bytes {
				bytes[r] = 1e6 + float64(rng.Intn(20))*1e6
			}
			in := instrument.Intent{Job: j, Map: m, Attempt: 0,
				SrcHost: hosts[rng.Intn(len(hosts))], PredictedWireBytes: bytes}
			ops = append(ops, Op{Kind: OpIntent, Intent: in})
			if rng.Float64() < 0.2 {
				ops = append(ops, Op{Kind: OpIntent, Intent: in}) // exact dup
			}
			if rng.Float64() < 0.2 {
				// Speculative re-attempt from another host: replaces the
				// (job, map, reducer) bookings.
				in2 := in
				in2.Attempt = 1
				in2.SrcHost = hosts[rng.Intn(len(hosts))]
				ops = append(ops, Op{Kind: OpIntent, Intent: in2})
			}
		}
	}
	for j := 0; j < jobs; j++ {
		for r := reducesPer / 2; r < reducesPer; r++ {
			ops = append(ops, Op{Kind: OpReducerUp, Reducer: instrument.ReducerUp{
				Job: j, Reduce: r, Host: hosts[rng.Intn(len(hosts))]}})
		}
	}
	for j := 0; j < jobs; j++ {
		ops = append(ops, Op{Kind: OpJobDone, Job: j})
	}
	return ops
}

// batchRun replays the trace through ApplyBatch in fixed-size chunks on a
// collector with no attached Hadoop cluster (the online-service shape) and
// returns (per-op results digest, stats, placement digest, leak gauge).
func batchRun(t *testing.T, ops []Op, shards, workers, chunk int) (uint64, CollectorStats, uint64, int) {
	t.Helper()
	eng := sim.NewEngine()
	g, _, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	ofc := openflow.NewController(eng, net, 0)
	py := New(eng, net, ofc, Config{Aggregate: true, UseCriticality: true, Shards: shards})
	dig := newPlacementDigest()
	py.SetPlacementHook(dig.observe)
	resH := fnv.New64a()
	for at := 0; at < len(ops); at += chunk {
		end := at + chunk
		if end > len(ops) {
			end = len(ops)
		}
		for _, r := range py.ApplyBatch(ops[at:end], workers) {
			fmt.Fprintf(resH, "%d,", r)
		}
	}
	return resH.Sum64(), py.Stats(), dig.h, py.OutstandingTotal()
}

// TestApplyBatchShardAndWorkerInvariance proves the batch executor's
// determinism contract: identical results, stats, and placement streams at
// shard counts 1/2/8 and worker counts 1/2/4, with zero leaked bookings
// once every job is retired.
func TestApplyBatchShardAndWorkerInvariance(t *testing.T) {
	_, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	ops := batchTrace(hosts, 9, 6, 4, 42)
	refRes, refStats, refDig, refLeaks := batchRun(t, ops, 1, 1, 17)
	if refLeaks != 0 {
		t.Fatalf("reference run leaked %d bookings", refLeaks)
	}
	if refStats.DedupHits == 0 || refStats.DuplicateIntents == 0 || refStats.IntentsDeferred == 0 {
		t.Fatalf("trace does not exercise dedup/duplicate/deferred paths: %+v", refStats)
	}
	for _, shards := range []int{2, 8} {
		for _, workers := range []int{1, 2, 4} {
			res, st, dig, leaks := batchRun(t, ops, shards, workers, 17)
			st.Shards = refStats.Shards // the one field that legitimately differs
			if res != refRes {
				t.Errorf("shards=%d workers=%d: op results diverged", shards, workers)
			}
			if st != refStats {
				t.Errorf("shards=%d workers=%d: stats diverged:\n got %+v\nwant %+v",
					shards, workers, st, refStats)
			}
			if dig != refDig {
				t.Errorf("shards=%d workers=%d: placement digest %x != %x",
					shards, workers, dig, refDig)
			}
			if leaks != 0 {
				t.Errorf("shards=%d workers=%d: %d leaked bookings", shards, workers, leaks)
			}
		}
	}
}

// TestApplyBatchDispositions pins the per-op result semantics.
func TestApplyBatchDispositions(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	ofc := openflow.NewController(eng, net, 0)
	py := New(eng, net, ofc, Config{Aggregate: true, Shards: 4})
	in := instrument.Intent{Job: 1, Map: 0, SrcHost: hosts[0],
		PredictedWireBytes: []float64{5e6, 5e6}}
	res := py.ApplyBatch([]Op{
		{Kind: OpIntent, Intent: in}, // no reducers known yet -> deferred
		{Kind: OpIntent, Intent: in}, // exact duplicate
		{Kind: OpReducerUp, Reducer: instrument.ReducerUp{Job: 1, Reduce: 0, Host: hosts[5]}},
		{Kind: OpReducerUp, Reducer: instrument.ReducerUp{Job: 1, Reduce: 1, Host: hosts[6]}},
		{Kind: OpJobDone, Job: 1},
	}, 2)
	want := []OpResult{OpDeferred, OpDuplicate, OpAccepted, OpAccepted, OpAccepted}
	for i, r := range res {
		if r != want[i] {
			t.Errorf("op %d: result %v, want %v", i, r, want[i])
		}
	}
	if n := py.OutstandingTotal(); n != 0 {
		t.Errorf("leaked %d bookings after JobDone", n)
	}
	if py.PendingUnknownDestinations() != 0 {
		t.Errorf("pending intents survived JobDone")
	}
}

// TestShardStats: the per-shard snapshot's counters sum to the aggregate
// stats and its gauges reflect live shard state.
func TestShardStats(t *testing.T) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	ofc := openflow.NewController(eng, net, 0)
	py := New(eng, net, ofc, Config{Aggregate: true, Shards: 4})
	in := instrument.Intent{Job: 1, Map: 0, SrcHost: hosts[0],
		PredictedWireBytes: []float64{5e6, 5e6}}
	py.ApplyBatch([]Op{
		{Kind: OpIntent, Intent: in},
		{Kind: OpIntent, Intent: in}, // dedup hit
		{Kind: OpReducerUp, Reducer: instrument.ReducerUp{Job: 1, Reduce: 0, Host: hosts[5]}},
		{Kind: OpIntent, Intent: instrument.Intent{Job: 2, Map: 0, SrcHost: hosts[1],
			PredictedWireBytes: []float64{3e6}}}, // stays pending: reducer unknown
	}, 2)
	per := py.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d shards, want 4", len(per))
	}
	agg := py.Stats()
	var sum ShardStat
	var pending, booked int
	for _, s := range per {
		sum.IntentsReceived += s.IntentsReceived
		sum.IntentsDeferred += s.IntentsDeferred
		sum.DedupHits += s.DedupHits
		sum.DuplicateIntents += s.DuplicateIntents
		sum.ExpiredBookings += s.ExpiredBookings
		sum.ExpiredIntents += s.ExpiredIntents
		pending += s.PendingIntents
		booked += s.BookedFlows
	}
	if sum.IntentsReceived != agg.IntentsReceived || sum.DedupHits != agg.DedupHits ||
		sum.IntentsDeferred != agg.IntentsDeferred {
		t.Fatalf("shard sums %+v disagree with aggregate %+v", sum, agg)
	}
	if sum.DedupHits == 0 {
		t.Fatal("trace should have produced a dedup hit")
	}
	if pending == 0 {
		t.Fatal("job 2's intent should be pending on some shard")
	}
	if booked == 0 {
		t.Fatal("job 1's resolved demand should be booked on some shard")
	}
	// Jobs land on different shards (job % shards).
	if per[1%4].IntentsReceived == 0 || per[2%4].PendingIntents == 0 {
		t.Fatalf("per-shard attribution wrong: %+v", per)
	}
	py.ApplyBatch([]Op{{Kind: OpJobDone, Job: 1}, {Kind: OpJobDone, Job: 2}}, 2)
	for i, s := range py.ShardStats() {
		if s.PendingIntents != 0 || s.BookedFlows != 0 {
			t.Fatalf("shard %d retains state after JobDone: %+v", i, s)
		}
	}
}
