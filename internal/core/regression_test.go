package core

import (
	"testing"

	"pythia/internal/hadoop"
	"pythia/internal/instrument"
	"pythia/internal/topology"
)

// accessLinkOf finds the switch→host link serving a host.
func accessLinkOf(t *testing.T, g *topology.Graph, h topology.NodeID) topology.LinkID {
	t.Helper()
	for _, l := range g.Links() {
		if l.To == h && g.Node(l.From).Kind == topology.Switch {
			return l.ID
		}
	}
	t.Fatalf("no access link for host %d", h)
	return -1
}

// A topology change that leaves an aggregate's best path unchanged must be
// counted as a re-affirmation, not a placement: no switch state moves. The
// counter used to inflate on every re-placement pass.
func TestReaffirmationNotCountedAsPlacement(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	s.eng.At(1, func() {
		s.py.ReducerUp(instrument.ReducerUp{Job: 1, Reduce: 0, Host: s.hosts[5]})
		s.py.ShuffleIntent(instrument.Intent{Job: 1, Map: 0, SrcHost: s.hosts[0],
			PredictedWireBytes: []float64{50e6}})
	})
	s.eng.At(2.5, func() {
		if s.py.AggregatesPlaced != 1 {
			t.Fatalf("placements before failure = %d, want 1", s.py.AggregatesPlaced)
		}
		// Fail an uninvolved host's access link: the graph version bumps, so
		// the next poll re-places every aggregate, but the (hosts[0] →
		// hosts[5]) candidate paths are untouched.
		s.ofc.FailLink(accessLinkOf(t, s.net.Graph(), s.hosts[9]))
	})
	// Keep the engine alive past the poll that notices the change.
	s.eng.At(4, func() {})
	s.eng.Run()
	if s.py.AggregatesPlaced != 1 {
		t.Fatalf("AggregatesPlaced = %d after unchanged-path re-placement, want 1",
			s.py.AggregatesPlaced)
	}
	if s.py.Reaffirmations != 1 {
		t.Fatalf("Reaffirmations = %d, want 1", s.py.Reaffirmations)
	}
	if s.py.Reallocations != 0 {
		t.Fatalf("Reallocations = %d for an unchanged path, want 0", s.py.Reallocations)
	}
}

// Jobs whose reducers never start must not pin controller state forever:
// JobDone purges pending intents, bookings, backlog, reducer locations and
// drained aggregates, and releases the aggregates' rules.
func TestJobDonePurgesDeadJobState(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	s.eng.At(1, func() {
		// Reducer 1 never comes up, so the intent stays pending and the
		// reducer-0 booking's flow never runs.
		s.py.ShuffleIntent(instrument.Intent{Job: 3, Map: 0, SrcHost: s.hosts[0],
			PredictedWireBytes: []float64{10e6, 20e6}})
		s.py.ReducerUp(instrument.ReducerUp{Job: 3, Reduce: 0, Host: s.hosts[5]})
	})
	s.eng.At(2, func() {
		if s.py.totalPending() != 1 || s.py.totalBooked() != 1 || len(s.py.aggregates) != 1 {
			t.Fatalf("setup: pending=%d booked=%d aggregates=%d, want 1 each",
				s.py.totalPending(), s.py.totalBooked(), len(s.py.aggregates))
		}
		s.py.JobDone(3)
		if n := s.py.totalPending(); n != 0 {
			t.Errorf("pending intents leaked: %d", n)
		}
		if n := s.py.totalBooked(); n != 0 {
			t.Errorf("bookings leaked: %d", n)
		}
		if n := s.py.totalBacklog(); n != 0 {
			t.Errorf("reducer backlog leaked: %d", n)
		}
		if n := len(s.py.aggregates); n != 0 {
			t.Errorf("aggregates leaked: %d", n)
		}
		if n := s.py.totalReducerLoc(); n != 0 {
			t.Errorf("reducer locations leaked: %d", n)
		}
		if n := len(s.py.placedOn); n != 0 {
			t.Errorf("placement index leaked: %d links", n)
		}
	})
	s.eng.Run()
	for _, sw := range s.net.Graph().Switches() {
		if n := s.ofc.Switch(sw).RuleCount(); n != 0 {
			t.Fatalf("switch %d still holds %d rules after JobDone", sw, n)
		}
	}
}

// The middleware must deliver job-completion notifications to sinks that
// implement instrument.JobDoneSink, so a full job run leaves no residual
// per-job state in the controller.
func TestJobDoneWiredThroughMiddleware(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	s.clus.Submit(uniformSpec(8, 2, 2, 5e6))
	s.eng.Run()
	if s.py.totalReducerLoc() != 0 {
		t.Fatalf("reducer locations retained after job completion: %d", s.py.totalReducerLoc())
	}
	if s.py.totalPending() != 0 || s.py.totalBooked() != 0 || s.py.totalBacklog() != 0 {
		t.Fatalf("per-job state retained: pending=%d booked=%d backlog=%d",
			s.py.totalPending(), s.py.totalBooked(), s.py.totalBacklog())
	}
}
