package core

import (
	"testing"

	"pythia/internal/hadoop"
	"pythia/internal/topology"
)

// Tests for the §IV forwarding-state-conservation policy: rack-pair (POD)
// aggregation, where one prefix rule per rack pair steers inter-rack
// traffic instead of one rule set per server pair.

func TestScopeString(t *testing.T) {
	if ScopeHostPair.String() != "host-pair" || ScopeRackPair.String() != "rack-pair" {
		t.Fatal("scope strings")
	}
	if Scope(9).String() == "" {
		t.Fatal("unknown scope")
	}
}

func TestRackScopeCompletesJob(t *testing.T) {
	s := newStack(Config{Aggregate: true, Scope: ScopeRackPair}, hadoop.Config{})
	spec := uniformSpec(10, 4, 2, 20e6)
	j, _ := s.clus.Submit(spec)
	s.eng.Run()
	if !j.Done {
		t.Fatal("rack-scope job did not finish")
	}
	if s.py.IntentsReceived() != 10 {
		t.Fatalf("intents = %d", s.py.IntentsReceived())
	}
}

func TestRackScopeUsesFarFewerRules(t *testing.T) {
	run := func(scope Scope) uint64 {
		s := newStack(Config{Aggregate: true, Scope: scope}, hadoop.Config{})
		spec := uniformSpec(20, 8, 2, 20e6)
		j, _ := s.clus.Submit(spec)
		s.eng.Run()
		if !j.Done {
			t.Fatal("job did not finish")
		}
		return s.ofc.RulesInstalled
	}
	host := run(ScopeHostPair)
	rack := run(ScopeRackPair)
	if rack == 0 {
		t.Fatal("rack scope installed no rules")
	}
	// Two racks: at most 2 inter-rack pairs x 1 steering rule each
	// (re-placements may add a few); host scope has up to 2*5*5 pairs x 2
	// rules. Expect at least a 5x reduction.
	if rack*5 > host {
		t.Fatalf("rack scope rules %d not << host scope %d", rack, host)
	}
}

func TestRackScopeDeliversToCorrectHosts(t *testing.T) {
	// The steering rule matches whole racks; the final hop must still be
	// per-destination. Every completed flow's path must end at its own
	// destination host.
	s := newStack(Config{Aggregate: true, Scope: ScopeRackPair}, hadoop.Config{})
	spec := uniformSpec(12, 6, 2, 10e6)
	j, _ := s.clus.Submit(spec)
	s.eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	for _, f := range s.net.History() {
		if f.Path.Dst != f.Tuple.DstHost || f.Path.Src != f.Tuple.SrcHost {
			t.Fatalf("flow delivered to wrong endpoints: path %v tuple %v",
				f.Path, f.Tuple)
		}
		if err := f.Path.Valid(s.net.Graph()); err != nil && f.Path.Hops() > 0 {
			t.Fatalf("invalid delivered path: %v", err)
		}
	}
}

func TestRackScopeSteersAwayFromLoadedTrunk(t *testing.T) {
	s := newStack(Config{Aggregate: true, Scope: ScopeRackPair}, hadoop.Config{})
	s.net.SetBackground(s.trunks[0], 0.95*topology.Gbps)
	if rev, ok := s.net.Graph().Reverse(s.trunks[0]); ok {
		s.net.SetBackground(rev, 0.95*topology.Gbps)
	}
	spec := uniformSpec(10, 4, 3, 30e6)
	j, _ := s.clus.Submit(spec)
	s.eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	both := func(l topology.LinkID) float64 {
		bits := s.net.LinkBits(l)
		if r, ok := s.net.Graph().Reverse(l); ok {
			bits += s.net.LinkBits(r)
		}
		return bits
	}
	loaded, clean := both(s.trunks[0]), both(s.trunks[1])
	if clean == 0 {
		t.Fatal("no traffic on clean trunk")
	}
	if loaded > clean*0.25 {
		t.Fatalf("rack steering put %v bits on the hot trunk vs %v clean", loaded, clean)
	}
}

func TestRackScopeIntraRackNotBooked(t *testing.T) {
	s := newStack(Config{Aggregate: true, Scope: ScopeRackPair}, hadoop.Config{})
	spec := uniformSpec(10, 4, 2, 10e6)
	j, _ := s.clus.Submit(spec)
	s.eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	for key := range s.py.aggregates {
		if key.src == key.dst {
			t.Fatalf("intra-rack pair booked under rack scope: %v", key)
		}
	}
}

func TestRackScopePerformanceParity(t *testing.T) {
	// On the 2-rack testbed the steering decision is the whole decision,
	// so rack scope should perform close to host scope.
	run := func(scope Scope) float64 {
		s := newStack(Config{Aggregate: true, Scope: scope}, hadoop.Config{})
		s.net.SetBackground(s.trunks[0], 0.9*topology.Gbps)
		if rev, ok := s.net.Graph().Reverse(s.trunks[0]); ok {
			s.net.SetBackground(rev, 0.9*topology.Gbps)
		}
		spec := uniformSpec(16, 6, 2, 30e6)
		j, _ := s.clus.Submit(spec)
		s.eng.Run()
		return float64(j.Duration())
	}
	host, rack := run(ScopeHostPair), run(ScopeRackPair)
	// Rack scope cannot split one rack pair across both trunks, so on a
	// 2-rack testbed it may lose some bandwidth; allow 2x but not worse.
	if rack > host*2 {
		t.Fatalf("rack scope %.1fs far worse than host scope %.1fs", rack, host)
	}
}
