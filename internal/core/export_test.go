package core

// Shard-spanning views of the collector's partitioned per-job state, for
// tests that predate sharding and asserted on the old global maps.

func (p *Pythia) totalPending() int { return p.sumShards(func(s *shard) int { return len(s.pending) }) }
func (p *Pythia) totalBooked() int  { return p.sumShards(func(s *shard) int { return len(s.booked) }) }
func (p *Pythia) totalBacklog() int {
	return p.sumShards(func(s *shard) int { return len(s.redBacklog) })
}
func (p *Pythia) totalReducerLoc() int {
	return p.sumShards(func(s *shard) int { return len(s.reducerLoc) })
}
func (p *Pythia) totalSeen() int { return p.sumShards(func(s *shard) int { return len(s.seen) }) }

func (p *Pythia) bookedSnapshot() map[flowKey]booking {
	m := make(map[flowKey]booking)
	for _, sh := range p.shards {
		for fk, b := range sh.booked {
			m[fk] = b
		}
	}
	return m
}

func (p *Pythia) backlogSnapshot() map[[2]int]float64 {
	m := make(map[[2]int]float64)
	for _, sh := range p.shards {
		for jr, b := range sh.redBacklog {
			m[jr] = b
		}
	}
	return m
}
