package core

import (
	"testing"

	"pythia/internal/hadoop"
	"pythia/internal/instrument"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Tests for the §VI flow-priority criterion: aggregates feeding the reducer
// with the largest outstanding barrier backlog get first pick of paths.

// intent builds a hand-made shuffle intent for direct sink injection.
func intent(job, mapID int, src topology.NodeID, perReducer []float64) instrument.Intent {
	return instrument.Intent{
		Job: job, Map: mapID, SrcHost: src,
		PredictedWireBytes: perReducer,
	}
}

func up(job, reduce int, host topology.NodeID) instrument.ReducerUp {
	return instrument.ReducerUp{Job: job, Reduce: reduce, Host: host}
}

// critRig builds a Pythia over the testbed with one trunk visibly better
// than the other, so placement order decides who gets the good path.
func critRig(useCrit bool) (*stack, topology.LinkID, topology.LinkID) {
	s := newStack(Config{Aggregate: true, UseCriticality: useCrit}, hadoop.Config{})
	// trunk0 heavily loaded, trunk1 light: first-placed aggregate takes
	// trunk1.
	s.net.SetBackground(s.trunks[0], 0.9*topology.Gbps)
	if r, ok := s.net.Graph().Reverse(s.trunks[0]); ok {
		s.net.SetBackground(r, 0.9*topology.Gbps)
	}
	// Let the link-load poller observe the background before intents.
	s.eng.At(1.5, func() {})
	s.eng.RunUntil(1.5)
	return s, s.trunks[0], s.trunks[1]
}

func pathUsesTrunk(s *stack, a *aggregate, trunk topology.LinkID) bool {
	for _, l := range a.path.Links {
		if l == trunk {
			return true
		}
	}
	return false
}

func injectScenario(s *stack) (critical, casual *aggregate) {
	py := s.py
	// Reducer 0 on rack1-host0 carries a huge backlog from rack0-host2;
	// reducer 1 on rack1-host1 a small one.
	py.ReducerUp(up(0, 0, s.hosts[5]))
	py.ReducerUp(up(0, 1, s.hosts[6]))
	// Backlog builder: 200 MB to reducer 0 from host2.
	py.ShuffleIntent(intent(0, 0, s.hosts[2], []float64{200e6, 0}))
	// Two equal-demand aggregates; demand tie-break (src ID asc) would
	// place host0's first. host0 feeds the *casual* reducer 1, host1
	// feeds the *critical* reducer 0.
	py.ShuffleIntent(intent(0, 1, s.hosts[0], []float64{0, 50e6}))
	py.ShuffleIntent(intent(0, 2, s.hosts[1], []float64{50e6, 0}))

	casual = py.aggregates[pairKey{s.hosts[0], s.hosts[6]}]
	critical = py.aggregates[pairKey{s.hosts[1], s.hosts[5]}]
	return critical, casual
}

func TestCriticalityPrefersBarrierGatingAggregate(t *testing.T) {
	s, _, clean := critRig(true)
	critical, casual := injectScenario(s)
	if critical == nil || casual == nil {
		t.Fatal("aggregates not created")
	}
	if !critical.placed || !casual.placed {
		t.Fatal("aggregates not placed")
	}
	// The backlog-building aggregate (host2→host5, 200 MB) placed first
	// and took the clean trunk; with criticality on, the 50 MB aggregate
	// feeding the same overloaded reducer sorts *before* the equal-sized
	// casual one, which matters for the remaining capacity split.
	if !pathUsesTrunk(s, critical, clean) && pathUsesTrunk(s, casual, clean) {
		t.Fatal("critical aggregate lost the better trunk to the casual one")
	}
}

func TestCriticalityOrderingFlips(t *testing.T) {
	// Directly verify the sort key: with criticality off, the casual
	// host0 aggregate is placed first (src tie-break); with it on, the
	// critical one is. Observe via AggregatesPlaced order proxy: place()
	// count is equal, so instead compare the paths chosen under both
	// configurations — they must differ in at least one run when the
	// ordering flips matters.
	pathsOf := func(useCrit bool) (critClean, casClean bool) {
		s, _, clean := critRig(useCrit)
		critical, casual := injectScenario(s)
		return pathUsesTrunk(s, critical, clean), pathUsesTrunk(s, casual, clean)
	}
	onCrit, onCas := pathsOf(true)
	offCrit, offCas := pathsOf(false)
	t.Logf("crit-on: critical-on-clean=%v casual-on-clean=%v; crit-off: %v %v",
		onCrit, onCas, offCrit, offCas)
	// Invariant: with criticality on, the critical aggregate is never
	// worse off than the casual one.
	if !onCrit && onCas {
		t.Fatal("criticality on, but casual aggregate got the clean trunk exclusively")
	}
}

func TestBacklogDrainsOnFlowCompletion(t *testing.T) {
	s := newStack(Config{Aggregate: true, UseCriticality: true}, hadoop.Config{})
	spec := uniformSpec(6, 3, 2, 10e6)
	j, _ := s.clus.Submit(spec)
	s.eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	if s.py.totalBacklog() != 0 {
		t.Fatalf("reducer backlog not drained: %v", s.py.backlogSnapshot())
	}
	if len(s.py.aggregates) != 0 {
		t.Fatalf("aggregates not drained: %d", len(s.py.aggregates))
	}
}

func TestCriticalityEndToEndNoRegression(t *testing.T) {
	// Criticality ordering must never materially hurt: same workload, on
	// vs off, within 10%.
	run := func(useCrit bool) float64 {
		s := newStack(Config{Aggregate: true, UseCriticality: useCrit}, hadoop.Config{})
		s.net.SetBackground(s.trunks[0], 0.9*topology.Gbps)
		if r, ok := s.net.Graph().Reverse(s.trunks[0]); ok {
			s.net.SetBackground(r, 0.9*topology.Gbps)
		}
		spec := uniformSpec(16, 8, 2, 25e6)
		j, _ := s.clus.Submit(spec)
		s.eng.Run()
		return float64(j.Duration())
	}
	off, on := run(false), run(true)
	if on > off*1.10 {
		t.Fatalf("criticality regressed: on=%.1fs off=%.1fs", on, off)
	}
}

func TestSpeculativeDuplicateIntentsDeduped(t *testing.T) {
	// A speculative near-tie spills twice; Pythia must book once and
	// drain fully.
	s := newStack(Config{Aggregate: true}, hadoop.Config{Speculative: true, SpeculativeLagFactor: 1.1})
	spec := uniformSpec(12, 3, 2, 5e6)
	spec.MapDurations[11] = 6 // near-tie straggler
	j, _ := s.clus.Submit(spec)
	s.eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	if s.py.OutstandingDemandBits() != 0 {
		t.Fatalf("demand not drained after duplicates: %v", s.py.OutstandingDemandBits())
	}
	if s.py.DuplicateIntents() > 0 {
		t.Logf("deduplicated %d duplicate intents", s.py.DuplicateIntents())
	}
}

func TestDirectDuplicateIntentReplaced(t *testing.T) {
	// Inject a cross-attempt duplicate by hand: same (job, map, reducer)
	// from two different attempts on two different source hosts — the
	// speculative-backup shape. Booking must move, not double.
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	s.py.ReducerUp(up(0, 0, s.hosts[5]))
	first := intent(0, 0, s.hosts[0], []float64{100e6})
	first.Attempt = 1
	s.py.ShuffleIntent(first)
	if got := s.py.OutstandingDemandBits(); got != 100e6*8 {
		t.Fatalf("first booking = %v bits", got)
	}
	second := intent(0, 0, s.hosts[1], []float64{100e6})
	second.Attempt = 2
	s.py.ShuffleIntent(second)
	if got := s.py.OutstandingDemandBits(); got != 100e6*8 {
		t.Fatalf("after duplicate = %v bits, want unchanged total", got)
	}
	if s.py.DuplicateIntents() != 1 {
		t.Fatalf("DuplicateIntents = %d, want 1", s.py.DuplicateIntents())
	}
	// The booking must now live on the host1 aggregate.
	if agg := s.py.aggregates[pairKey{s.hosts[1], s.hosts[5]}]; agg == nil || agg.demandBits != 100e6*8 {
		t.Fatal("booking did not move to the new attempt's host")
	}
	if agg := s.py.aggregates[pairKey{s.hosts[0], s.hosts[5]}]; agg != nil {
		t.Fatal("stale booking left on the old attempt's host")
	}
}

// TestExactDuplicateIntentDropped pins the idempotence key: an identical
// (job, map, attempt) message — a management-network duplication or a
// restart re-scan re-emission — is dropped before any bookkeeping, while a
// different attempt goes through the replace path. This is the collector
// half of the speculative-execution audit.
func TestExactDuplicateIntentDropped(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	s.py.ReducerUp(up(0, 0, s.hosts[5]))
	in := intent(0, 0, s.hosts[0], []float64{100e6})
	in.Attempt = 1
	s.py.ShuffleIntent(in)
	s.py.ShuffleIntent(in) // exact duplicate: same attempt
	if s.py.DedupHits() != 1 {
		t.Fatalf("DedupHits = %d, want 1", s.py.DedupHits())
	}
	if s.py.DuplicateIntents() != 0 {
		t.Fatalf("exact duplicate took the replace path: DuplicateIntents = %d", s.py.DuplicateIntents())
	}
	if s.py.IntentsReceived() != 1 {
		t.Fatalf("IntentsReceived = %d, want 1", s.py.IntentsReceived())
	}
	if got := s.py.OutstandingDemandBits(); got != 100e6*8 {
		t.Fatalf("demand after exact duplicate = %v bits, want single booking", got)
	}
	// The booking stays on the original attempt's host.
	if agg := s.py.aggregates[pairKey{s.hosts[0], s.hosts[5]}]; agg == nil || agg.demandBits != 100e6*8 {
		t.Fatal("original booking disturbed by the duplicate")
	}
}

// TestBookkeepingInvariant: at every sampled instant during a busy run, the
// sum of per-(job,map,reducer) bookings equals the sum of aggregate demands
// and the sum of reducer backlogs — no demand is lost or double-counted.
func TestBookkeepingInvariant(t *testing.T) {
	s := newStack(Config{Aggregate: true, UseCriticality: true}, hadoop.Config{})
	spec := uniformSpec(20, 6, 2, 15e6)
	j, _ := s.clus.Submit(spec)
	check := func() {
		var booked, agg, backlog float64
		for _, b := range s.py.bookedSnapshot() {
			booked += b.bits
		}
		for _, a := range s.py.aggregates {
			agg += a.demandBits
		}
		for _, b := range s.py.backlogSnapshot() {
			backlog += b
		}
		// Local bookings (src==dst) are skipped, so booked may exceed agg
		// only by... no: local fetches are never booked. All three must
		// match within float dust.
		if diff := booked - agg; diff > 10 || diff < -10 {
			t.Fatalf("t=%v: booked %v != aggregates %v", s.eng.Now(), booked, agg)
		}
		if diff := booked - backlog; diff > 10 || diff < -10 {
			t.Fatalf("t=%v: booked %v != backlog %v", s.eng.Now(), booked, backlog)
		}
	}
	for i := 1; i <= 40; i++ {
		s.eng.At(sim.Time(float64(i)), check)
	}
	s.eng.Run()
	if !j.Done {
		t.Fatal("job did not finish")
	}
	check()
}
