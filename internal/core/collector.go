package core

import (
	"fmt"

	"pythia/internal/instrument"
)

// Collector is the serving-facing surface of the Pythia collector: the
// per-message ingest methods the simulator's instrumentation plane drives
// directly (instrument.Sink, instrument.JobDoneSink), plus the batch entry
// point and introspection the online service (package serve) is built on.
// Pythia is the one production implementation; the interface exists so the
// serving layer depends on a contract rather than on collector internals.
type Collector interface {
	instrument.Sink
	instrument.JobDoneSink

	// ApplyBatch ingests a batch of operations: a concurrent shard-local
	// phase (bounded by workers) followed by one serialized placement
	// pass. Results are positional with ops. See Pythia.ApplyBatch for
	// the determinism contract.
	ApplyBatch(ops []Op, workers int) []OpResult

	// Stats snapshots every collector counter and gauge.
	Stats() CollectorStats

	// ShardStats snapshots each shard's live gauges and counters, indexed
	// by shard ordinal — the serving plane's per-shard metrics surface.
	ShardStats() []ShardStat

	// OutstandingBookings reports one job's live reservations plus
	// deferred intents; OutstandingTotal sums that over all jobs (the
	// service-level leak gauge).
	OutstandingBookings(job int) int
	OutstandingTotal() int
	// OutstandingDemandBits sums booked-but-undelivered predicted demand.
	OutstandingDemandBits() float64
	// PendingUnknownDestinations reports intents still awaiting reducer
	// placement.
	PendingUnknownDestinations() int
	// Shards reports the configured shard count.
	Shards() int

	// Snapshot captures complete collector state; Restore rebuilds it into
	// a freshly constructed collector with the same shard count,
	// re-programming installed rules under their original cookies. The
	// pair is the durability surface the serving plane's write-ahead
	// journal compacts against.
	Snapshot() *Snapshot
	Restore(*Snapshot) error

	// NovelOps counts the ops of a batch that are new work rather than
	// at-least-once redelivery — the logical-clock advance for the batch.
	// Evaluated against current state, read-only, deterministic under
	// journal replay.
	NovelOps(ops []Op) int
}

// OpKind discriminates batch operations.
type OpKind int

const (
	// OpIntent ingests one shuffle-intent prediction (Op.Intent).
	OpIntent OpKind = iota
	// OpReducerUp records one reducer placement (Op.Reducer).
	OpReducerUp
	// OpJobDone retires all state for one job (Op.Job).
	OpJobDone
)

func (k OpKind) String() string {
	switch k {
	case OpIntent:
		return "intent"
	case OpReducerUp:
		return "reducer-up"
	case OpJobDone:
		return "job-done"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one batched collector operation. Exactly the field selected by Kind
// is meaningful.
type Op struct {
	Kind    OpKind
	Intent  instrument.Intent
	Reducer instrument.ReducerUp
	Job     int // OpJobDone
}

// job returns the operation's job ID — the shard key.
func (o Op) job() int {
	switch o.Kind {
	case OpIntent:
		return o.Intent.Job
	case OpReducerUp:
		return o.Reducer.Job
	default:
		return o.Job
	}
}

// OpResult reports the per-operation ingest disposition.
type OpResult int

const (
	// OpAccepted: the operation was ingested (for an intent, every
	// per-reducer demand resolved or was empty).
	OpAccepted OpResult = iota
	// OpDuplicate: an already-seen (job, map, attempt) intent, dropped by
	// the idempotence set.
	OpDuplicate
	// OpDeferred: the intent was ingested but at least one per-reducer
	// demand awaits its reducer's placement.
	OpDeferred
)

func (r OpResult) String() string {
	switch r {
	case OpAccepted:
		return "accepted"
	case OpDuplicate:
		return "duplicate"
	case OpDeferred:
		return "deferred"
	}
	return fmt.Sprintf("OpResult(%d)", int(r))
}

// CollectorStats is a point-in-time snapshot of every collector counter and
// gauge, JSON-shaped for the serving stats endpoint.
type CollectorStats struct {
	IntentsReceived    int `json:"intents_received"`
	IntentsDeferred    int `json:"intents_deferred"`
	DedupHits          int `json:"dedup_hits"`
	DuplicateIntents   int `json:"duplicate_intents"`
	ExpiredBookings    int `json:"expired_bookings"`
	ExpiredIntents     int `json:"expired_intents"`
	AggregatesPlaced   int `json:"aggregates_placed"`
	Reaffirmations     int `json:"reaffirmations"`
	Reallocations      int `json:"reallocations"`
	RuleInstallErrors  int `json:"rule_install_errors"`
	FlowsRescued       int `json:"flows_rescued"`
	AggregatesDegraded int `json:"aggregates_degraded"`
	Reconciliations    int `json:"reconciliations"`

	PendingIntents        int     `json:"pending_intents"`
	OutstandingBookings   int     `json:"outstanding_bookings"`
	OutstandingDemandBits float64 `json:"outstanding_demand_bits"`
	Shards                int     `json:"shards"`
}

// IntentsReceived counts unique intents ingested (dedup-dropped excluded).
func (p *Pythia) IntentsReceived() int {
	return p.sumShards(func(s *shard) int { return s.intentsReceived })
}

// IntentsDeferred counts intents that arrived with at least one unknown
// reducer destination.
func (p *Pythia) IntentsDeferred() int {
	return p.sumShards(func(s *shard) int { return s.intentsDeferred })
}

// DedupHits counts exact duplicate intents — same (job, map, attempt) —
// dropped by the idempotence set.
func (p *Pythia) DedupHits() int { return p.sumShards(func(s *shard) int { return s.dedupHits }) }

// DuplicateIntents counts re-predictions for an already-booked
// (job, map, reducer) — e.g. from speculative map attempts.
func (p *Pythia) DuplicateIntents() int {
	return p.sumShards(func(s *shard) int { return s.duplicateIntents })
}

// ExpiredBookings counts reservations reclaimed by the booking-TTL sweep.
func (p *Pythia) ExpiredBookings() int {
	return p.sumShards(func(s *shard) int { return s.expiredBookings })
}

// ExpiredIntents counts deferred intents reclaimed by the booking-TTL sweep.
func (p *Pythia) ExpiredIntents() int {
	return p.sumShards(func(s *shard) int { return s.expiredIntents })
}

func (p *Pythia) sumShards(f func(*shard) int) int {
	n := 0
	for _, sh := range p.shards {
		n += f(sh)
	}
	return n
}

// ShardStat is a point-in-time view of one collector shard: the live
// pending/booking gauges plus the shard-local ingest counters.
type ShardStat struct {
	PendingIntents   int `json:"pending_intents"`
	BookedFlows      int `json:"booked_flows"`
	IntentsReceived  int `json:"intents_received"`
	IntentsDeferred  int `json:"intents_deferred"`
	DedupHits        int `json:"dedup_hits"`
	DuplicateIntents int `json:"duplicate_intents"`
	ExpiredBookings  int `json:"expired_bookings"`
	ExpiredIntents   int `json:"expired_intents"`
}

// ShardStats snapshots each shard's gauges and counters, indexed by shard
// ordinal (Collector).
func (p *Pythia) ShardStats() []ShardStat {
	out := make([]ShardStat, len(p.shards))
	for i, sh := range p.shards {
		out[i] = ShardStat{
			PendingIntents:   len(sh.pending),
			BookedFlows:      len(sh.booked),
			IntentsReceived:  sh.intentsReceived,
			IntentsDeferred:  sh.intentsDeferred,
			DedupHits:        sh.dedupHits,
			DuplicateIntents: sh.duplicateIntents,
			ExpiredBookings:  sh.expiredBookings,
			ExpiredIntents:   sh.expiredIntents,
		}
	}
	return out
}

// Stats snapshots every collector counter and gauge (Collector).
func (p *Pythia) Stats() CollectorStats {
	return CollectorStats{
		IntentsReceived:    p.IntentsReceived(),
		IntentsDeferred:    p.IntentsDeferred(),
		DedupHits:          p.DedupHits(),
		DuplicateIntents:   p.DuplicateIntents(),
		ExpiredBookings:    p.ExpiredBookings(),
		ExpiredIntents:     p.ExpiredIntents(),
		AggregatesPlaced:   p.AggregatesPlaced,
		Reaffirmations:     p.Reaffirmations,
		Reallocations:      p.Reallocations,
		RuleInstallErrors:  p.RuleInstallErrors,
		FlowsRescued:       p.FlowsRescued,
		AggregatesDegraded: p.AggregatesDegraded,
		Reconciliations:    p.Reconciliations,

		PendingIntents:        p.PendingUnknownDestinations(),
		OutstandingBookings:   p.OutstandingTotal(),
		OutstandingDemandBits: p.OutstandingDemandBits(),
		Shards:                p.Shards(),
	}
}
