package core

import (
	"testing"

	"pythia/internal/hadoop"
	"pythia/internal/sim"
)

// Tests for the booking-TTL garbage collector: reservations whose flows
// never materialize must not pin aggregates, rules, or backlog forever.

func TestBookingTTLExpiresOrphanedBooking(t *testing.T) {
	s := newStack(Config{Aggregate: true, BookingTTL: 30 * sim.Second}, hadoop.Config{})
	// Hand-inject a booking whose flow will never run (no job submitted):
	// the shape left behind by a JobDone lost on the management network.
	s.py.ReducerUp(up(0, 0, s.hosts[5]))
	in := intent(0, 0, s.hosts[0], []float64{100e6})
	in.Attempt = 1
	s.py.ShuffleIntent(in)
	if s.py.OutstandingBookings(0) != 1 {
		t.Fatalf("outstanding bookings = %d, want 1", s.py.OutstandingBookings(0))
	}
	s.eng.RunUntil(100)
	if s.py.ExpiredBookings() != 1 {
		t.Fatalf("ExpiredBookings = %d, want 1", s.py.ExpiredBookings())
	}
	if got := s.py.OutstandingDemandBits(); got != 0 {
		t.Fatalf("demand after expiry = %v bits, want 0", got)
	}
	if s.py.OutstandingBookings(0) != 0 {
		t.Fatal("booking leaked past the TTL sweep")
	}
	if len(s.py.aggregates) != 0 {
		t.Fatalf("aggregates not released: %d", len(s.py.aggregates))
	}
	// The dead-job purge follows once the job goes silent: reducer
	// placements and idempotence entries are dropped too.
	if s.py.totalSeen() != 0 || s.py.totalReducerLoc() != 0 {
		t.Fatalf("dead-job state not purged: seen=%d reducerLoc=%d",
			s.py.totalSeen(), s.py.totalReducerLoc())
	}
}

func TestBookingTTLExpiresDeferredIntent(t *testing.T) {
	s := newStack(Config{Aggregate: true, BookingTTL: 30 * sim.Second}, hadoop.Config{})
	// An intent whose ReducerUp never arrives (dropped on the management
	// network) defers forever without the sweep.
	in := intent(0, 0, s.hosts[0], []float64{100e6})
	in.Attempt = 1
	s.py.ShuffleIntent(in)
	if s.py.PendingUnknownDestinations() != 1 {
		t.Fatalf("pending = %d, want 1", s.py.PendingUnknownDestinations())
	}
	s.eng.RunUntil(100)
	if s.py.ExpiredIntents() != 1 {
		t.Fatalf("ExpiredIntents = %d, want 1", s.py.ExpiredIntents())
	}
	if s.py.PendingUnknownDestinations() != 0 {
		t.Fatal("deferred intent leaked past the TTL sweep")
	}
}

// TestBookingTTLInertOnHealthyRun: with a TTL comfortably above the job
// duration, the sweep never fires on live state and the schedule is
// bit-identical to TTL-off.
func TestBookingTTLInertOnHealthyRun(t *testing.T) {
	run := func(ttl sim.Duration) (sim.Duration, int) {
		s := newStack(Config{Aggregate: true, BookingTTL: ttl}, hadoop.Config{})
		spec := uniformSpec(12, 4, 2, 10e6)
		j, _ := s.clus.Submit(spec)
		s.eng.Run()
		if !j.Done {
			t.Fatal("job did not finish")
		}
		return j.Duration(), s.py.ExpiredBookings()
	}
	dOff, _ := run(0)
	dOn, expired := run(300 * sim.Second)
	if expired != 0 {
		t.Fatalf("healthy run expired %d bookings", expired)
	}
	if dOn != dOff {
		t.Fatalf("TTL changed a healthy schedule: %v vs %v", dOn, dOff)
	}
}
