package core

import (
	"math"
	"testing"

	"pythia/internal/ecmp"
	"pythia/internal/hadoop"
	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

// stack is a fully wired testbed: network, SDN controller, Pythia, Hadoop.
type stack struct {
	eng    *sim.Engine
	net    *netsim.Network
	ofc    *openflow.Controller
	py     *Pythia
	clus   *hadoop.Cluster
	mw     *instrument.Middleware
	hosts  []topology.NodeID
	trunks []topology.LinkID
}

func newStack(cfg Config, hcfg hadoop.Config) *stack {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	ofc := openflow.NewController(eng, net, 0)
	py := New(eng, net, ofc, cfg)
	clus := hadoop.NewCluster(eng, net, hosts, ofc, hcfg)
	mw := instrument.Attach(eng, clus, py, instrument.Config{})
	return &stack{eng: eng, net: net, ofc: ofc, py: py, clus: clus, mw: mw, hosts: hosts, trunks: trunks}
}

// ecmpRun runs the same job under plain ECMP for comparison.
func ecmpRun(spec *hadoop.JobSpec, bg func(*netsim.Network, []topology.LinkID), hcfg hadoop.Config, seed uint64) sim.Duration {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	if bg != nil {
		bg(net, trunks)
	}
	clus := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, seed), hcfg)
	j, err := clus.Submit(spec)
	if err != nil {
		panic(err)
	}
	eng.Run()
	if !j.Done {
		panic("ecmp job did not finish")
	}
	return j.Duration()
}

func uniformSpec(maps, reduces int, mapSec, bytesPer float64) *hadoop.JobSpec {
	d := make([]float64, maps)
	o := make([][]float64, maps)
	for m := range d {
		d[m] = mapSec
		row := make([]float64, reduces)
		for r := range row {
			row[r] = bytesPer
		}
		o[m] = row
	}
	return &hadoop.JobSpec{Name: "u", NumMaps: maps, NumReduces: reduces,
		MapDurations: d, MapOutputs: o, ReduceSecPerMB: 0.001}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.K != 4 || c.RulePriority != 100 || c.HorizonSec != 10 {
		t.Fatalf("defaults: %+v", c)
	}
	if !(Config{}).EnableAggregation().Aggregate {
		t.Fatal("EnableAggregation did not set flag")
	}
}

func TestIntentsReceivedAndResolved(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	spec := uniformSpec(8, 2, 2, 5e6)
	s.clus.Submit(spec)
	s.eng.Run()
	if s.py.IntentsReceived() != 8 {
		t.Fatalf("intents = %d, want 8", s.py.IntentsReceived())
	}
	if s.py.PendingUnknownDestinations() != 0 {
		t.Fatalf("pending = %d after job end", s.py.PendingUnknownDestinations())
	}
	if s.py.OutstandingDemandBits() != 0 {
		t.Fatalf("outstanding demand = %v after job end", s.py.OutstandingDemandBits())
	}
}

func TestEarlyIntentsDeferredUntilReducersUp(t *testing.T) {
	// With a high slow-start, many maps finish (and predict) before any
	// reducer exists: their intents must be deferred, then back-filled.
	s := newStack(Config{Aggregate: true}, hadoop.Config{SlowstartFraction: 0.9})
	spec := uniformSpec(10, 2, 2, 5e6)
	// Stagger map finishes so early intents land while no reducer exists.
	for m := range spec.MapDurations {
		spec.MapDurations[m] = float64(m + 1)
	}
	s.clus.Submit(spec)
	s.eng.Run()
	if s.py.IntentsDeferred() == 0 {
		t.Fatal("no intents were deferred despite 90% slow-start")
	}
	if s.py.PendingUnknownDestinations() != 0 {
		t.Fatal("deferred intents never resolved")
	}
}

func TestRulesInstalledAndReleased(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	spec := uniformSpec(8, 2, 2, 20e6)
	s.clus.Submit(spec)
	s.eng.Run()
	if s.ofc.RulesInstalled == 0 {
		t.Fatal("Pythia installed no rules")
	}
	// After the job drains, tables must be empty again.
	for _, sw := range []topology.NodeID{0, 1} {
		if n := s.ofc.Switch(sw).RuleCount(); n != 0 {
			t.Fatalf("switch %d still holds %d rules after drain", sw, n)
		}
	}
}

func TestShuffleFlowsFollowInstalledRules(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	// Load trunk0 so Pythia must steer inter-rack shuffle to trunk1.
	s.net.SetBackground(s.trunks[0], 0.95*topology.Gbps)
	if rev, ok := s.net.Graph().Reverse(s.trunks[0]); ok {
		s.net.SetBackground(rev, 0.95*topology.Gbps)
	}
	spec := uniformSpec(10, 4, 3, 30e6)
	s.clus.Submit(spec)
	s.eng.Run()
	// Count inter-rack shuffle bits per trunk (both directions: reducers
	// may all sit in one rack): the loaded trunk should carry (almost)
	// none of them.
	both := func(l topology.LinkID) float64 {
		bits := s.net.LinkBits(l)
		if r, ok := s.net.Graph().Reverse(l); ok {
			bits += s.net.LinkBits(r)
		}
		return bits
	}
	loaded := both(s.trunks[0])
	clean := both(s.trunks[1])
	if clean == 0 {
		t.Fatal("no shuffle crossed the clean trunk")
	}
	if loaded > clean*0.2 {
		t.Fatalf("Pythia put %v bits on the 95%%-loaded trunk vs %v on the clean one", loaded, clean)
	}
}

func TestPythiaBeatsECMPUnderAsymmetricLoad(t *testing.T) {
	// The headline claim at high oversubscription: an asymmetric
	// background load makes ECMP collide elephants onto the hot trunk,
	// while Pythia books them onto spare capacity.
	bg := func(net *netsim.Network, trunks []topology.LinkID) {
		g := net.Graph()
		// trunk0 95% loaded both directions; trunk1 30%.
		loads := []float64{0.95, 0.30}
		for i, tr := range trunks {
			net.SetBackground(tr, loads[i]*topology.Gbps)
			if r, ok := g.Reverse(tr); ok {
				net.SetBackground(r, loads[i]*topology.Gbps)
			}
		}
	}
	spec := workload.Sort(4*workload.GB, 8, 42)

	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	bg(s.net, s.trunks)
	j, err := s.clus.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	s.eng.Run()
	if !j.Done {
		t.Fatal("pythia job did not finish")
	}
	pythiaTime := float64(j.Duration())

	ecmpTime := float64(ecmpRun(workload.Sort(4*workload.GB, 8, 42), bg, hadoop.Config{}, 1))

	if pythiaTime >= ecmpTime {
		t.Fatalf("Pythia (%.1fs) not faster than ECMP (%.1fs)", pythiaTime, ecmpTime)
	}
	speedup := (ecmpTime - pythiaTime) / pythiaTime
	if speedup < 0.05 {
		t.Fatalf("speedup only %.1f%% under heavy asymmetric load", speedup*100)
	}
	t.Logf("pythia=%.1fs ecmp=%.1fs speedup=%.1f%%", pythiaTime, ecmpTime, speedup*100)
}

func TestAggregationReducesPlacements(t *testing.T) {
	specGen := func() *hadoop.JobSpec { return uniformSpec(12, 4, 2, 10e6) }

	on := newStack(Config{Aggregate: true}, hadoop.Config{})
	on.clus.Submit(specGen())
	on.eng.Run()

	off := newStack(Config{Aggregate: false}, hadoop.Config{})
	off.clus.Submit(specGen())
	off.eng.Run()

	// Without aggregation every intent triggers its own allocation decision;
	// decisions that land on the pair's unchanged path count as
	// re-affirmations, changed paths as placements. Either way the A2
	// ablation must decide strictly more often than the aggregated run.
	onDecisions := on.py.AggregatesPlaced + on.py.Reaffirmations
	offDecisions := off.py.AggregatesPlaced + off.py.Reaffirmations
	if offDecisions <= onDecisions {
		t.Fatalf("aggregation off decided %d (placed %d + reaffirmed %d) <= on %d (placed %d + reaffirmed %d)",
			offDecisions, off.py.AggregatesPlaced, off.py.Reaffirmations,
			onDecisions, on.py.AggregatesPlaced, on.py.Reaffirmations)
	}
}

func TestTopologyChangeReallocates(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	spec := uniformSpec(10, 4, 5, 80e6)
	j, _ := s.clus.Submit(spec)
	// Fail trunk0 mid-job (after predictions have been placed).
	s.eng.At(8, func() {
		s.ofc.FailLink(s.trunks[0])
		if r, ok := s.net.Graph().Reverse(s.trunks[0]); ok {
			s.net.Graph().SetLinkUp(r, false)
		}
	})
	s.eng.Run()
	if !j.Done {
		t.Fatal("job did not survive link failure")
	}
	// Everything must have crossed trunk1 after the failure; the job
	// completing at all (plus valid paths) is the real assertion, since
	// resolution would panic on an invalid path.
}

func TestLocalFetchesNeverBooked(t *testing.T) {
	// Single-rack cluster: with both endpoints always in rack 0 but on
	// different hosts, aggregates exist; same-host pairs must not.
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	spec := uniformSpec(6, 2, 1, 1e6)
	s.clus.Submit(spec)
	s.eng.Run()
	for key := range s.py.aggregates {
		if key.src == key.dst {
			t.Fatal("same-host pair was booked")
		}
	}
}

func TestOverheadReportAfterRun(t *testing.T) {
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	js := uniformSpec(20, 4, 10, 5e6)
	s.clus.Submit(js)
	s.eng.Run()
	rep := s.mw.Overhead()
	if rep.Spills != 20 {
		t.Fatalf("spills = %d", rep.Spills)
	}
	if rep.MeanCPUFraction <= 0 || rep.MeanCPUFraction > 0.10 {
		t.Fatalf("CPU fraction = %v", rep.MeanCPUFraction)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() sim.Duration {
		s := newStack(Config{Aggregate: true}, hadoop.Config{})
		s.net.SetBackground(s.trunks[0], 0.8*topology.Gbps)
		j, _ := s.clus.Submit(workload.Nutch(1*workload.GB, 6, 3))
		s.eng.Run()
		return j.Duration()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("end-to-end nondeterminism: %v vs %v", a, b)
	}
}

func TestPredictionLeadIsPositive(t *testing.T) {
	// Intents must reach Pythia before the corresponding flows start:
	// measure min(flow start - intent arrival) per (job,map,reduce).
	s := newStack(Config{Aggregate: true}, hadoop.Config{})
	intentAt := map[[3]int]sim.Time{}
	s.clus.OnMapFinished(func(j *hadoop.Job, m *hadoop.MapTask, parts []float64) {})
	spec := uniformSpec(10, 4, 3, 10e6)

	// Wrap the sink to observe arrival times.
	// (Pythia is the sink; record via a listener on fetches instead.)
	minLead := math.Inf(1)
	s.clus.OnFetchStart(func(j *hadoop.Job, mapID, reduceID int, f *netsim.Flow) {
		if f == nil || len(f.Path.Links) == 0 {
			return
		}
		key := [3]int{j.ID, mapID, reduceID}
		if at, ok := intentAt[key]; ok {
			lead := float64(s.eng.Now().Sub(at))
			if lead < minLead {
				minLead = lead
			}
		}
	})
	// Record intent arrival via map-finish + the exact instrumentation
	// latency (20ms FS notify + 5ms decode base + 0.2ms/partition + 1ms
	// management hop), padded slightly.
	s.clus.OnMapFinished(func(j *hadoop.Job, m *hadoop.MapTask, parts []float64) {
		lat := sim.Duration(0.020 + 0.005 + 0.0002*float64(len(parts)) + 0.001 + 0.002)
		for r := range parts {
			intentAt[[3]int{j.ID, m.ID, r}] = s.eng.Now().Add(lat)
		}
	})
	s.clus.Submit(spec)
	s.eng.Run()
	if minLead == math.Inf(1) {
		t.Fatal("no remote fetches observed")
	}
	if minLead <= 0 {
		t.Fatalf("prediction lead = %v, want positive", minLead)
	}
	t.Logf("min prediction lead: %.2fs", minLead)
}

func BenchmarkPythiaEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newStack(Config{Aggregate: true}, hadoop.Config{})
		s.net.SetBackground(s.trunks[0], 0.9*topology.Gbps)
		j, _ := s.clus.Submit(workload.Sort(2*workload.GB, 8, uint64(i)))
		s.eng.Run()
		if !j.Done {
			b.Fatal("job not done")
		}
	}
}
