package workload

import (
	"encoding/json"
	"fmt"

	"pythia/internal/hadoop"
)

// MarshalSpec serializes a job specification to JSON, so generated (or
// hand-built) workloads can be archived and replayed across runs and
// machines — the workload-trace analogue of the paper's benchmark configs.
func MarshalSpec(spec *hadoop.JobSpec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("workload: refusing to serialize invalid spec: %w", err)
	}
	return json.MarshalIndent(spec, "", " ")
}

// UnmarshalSpec parses and validates a serialized job specification.
func UnmarshalSpec(data []byte) (*hadoop.JobSpec, error) {
	var spec hadoop.JobSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("workload: parsing spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("workload: loaded spec invalid: %w", err)
	}
	return &spec, nil
}
