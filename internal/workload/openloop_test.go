package workload

import (
	"math"
	"reflect"
	"testing"
)

func TestOpenLoopDeterministicPrefix(t *testing.T) {
	cfg := OpenLoopConfig{BaseRateJobsPerSec: 0.1, DiurnalAmplitude: 0.3, Seed: 11}
	a := OpenLoop(cfg)
	b := OpenLoop(cfg)
	for i := 0; i < 200; i++ {
		ja, jb := a.Next(), b.Next()
		if !reflect.DeepEqual(ja, jb) {
			t.Fatalf("arrival %d diverged between identically seeded streams:\n%+v\n%+v", i, ja, jb)
		}
	}
}

func TestOpenLoopUntilMatchesNext(t *testing.T) {
	cfg := OpenLoopConfig{BaseRateJobsPerSec: 0.2, Seed: 3}
	jobs := OpenLoop(cfg).Until(600)
	manual := OpenLoop(cfg)
	for i, j := range jobs {
		if got := manual.Next(); !reflect.DeepEqual(got, j) {
			t.Fatalf("Until arrival %d differs from Next sequence", i)
		}
	}
	if len(jobs) == 0 {
		t.Fatal("no arrivals in 600 s at 0.2 job/s")
	}
	last := jobs[len(jobs)-1]
	if last.SubmitAtSec >= 600 {
		t.Fatalf("Until leaked an arrival at %v past the 600 s horizon", last.SubmitAtSec)
	}
}

func TestOpenLoopSeedChangesStream(t *testing.T) {
	a := OpenLoop(OpenLoopConfig{Seed: 1}).Next()
	b := OpenLoop(OpenLoopConfig{Seed: 2}).Next()
	if a.SubmitAtSec == b.SubmitAtSec {
		t.Fatal("different seeds produced the same first arrival time")
	}
}

func TestOpenLoopArrivalRate(t *testing.T) {
	// Homogeneous process (no diurnal swing): the empirical rate over a
	// long horizon must track the configured base rate.
	const rate = 0.5
	const horizon = 20000.0
	jobs := OpenLoop(OpenLoopConfig{BaseRateJobsPerSec: rate, Seed: 5}).Until(horizon)
	got := float64(len(jobs)) / horizon
	if math.Abs(got-rate)/rate > 0.05 {
		t.Fatalf("empirical rate = %v, want ~%v", got, rate)
	}
	// Arrival times must be strictly increasing.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].SubmitAtSec <= jobs[i-1].SubmitAtSec {
			t.Fatalf("arrivals not increasing at %d: %v then %v",
				i, jobs[i-1].SubmitAtSec, jobs[i].SubmitAtSec)
		}
	}
	// Seq numbers the stream.
	for i, j := range jobs {
		if j.Seq != i {
			t.Fatalf("arrival %d has Seq %d", i, j.Seq)
		}
	}
}

func TestOpenLoopDiurnalModulation(t *testing.T) {
	// With a strong diurnal swing the first half-period (sin > 0) must see
	// visibly more arrivals than the second (sin < 0).
	cfg := OpenLoopConfig{BaseRateJobsPerSec: 0.5, DiurnalAmplitude: 0.8,
		DiurnalPeriodSec: 2000, Seed: 7}
	s := OpenLoop(cfg)
	if peak, trough := s.Rate(500), s.Rate(1500); peak <= trough {
		t.Fatalf("Rate(peak) %v <= Rate(trough) %v", peak, trough)
	}
	jobs := s.Until(20000)
	var up, down int
	for _, j := range jobs {
		phase := math.Mod(j.SubmitAtSec, cfg.DiurnalPeriodSec)
		if phase < cfg.DiurnalPeriodSec/2 {
			up++
		} else {
			down++
		}
	}
	if float64(up) < 1.5*float64(down) {
		t.Fatalf("diurnal swing invisible: %d arrivals in the up phase vs %d down", up, down)
	}
}

func TestOpenLoopTenantMixAndMetadata(t *testing.T) {
	jobs := OpenLoop(OpenLoopConfig{BaseRateJobsPerSec: 1, Seed: 13}).Until(5000)
	counts := map[string]int{}
	for _, j := range jobs {
		counts[j.Tenant]++
		if j.Spec == nil || j.Spec.Validate() != nil {
			t.Fatalf("arrival %d has invalid spec", j.Seq)
		}
		if j.SLOSec <= 0 {
			t.Fatalf("arrival %d missing SLO", j.Seq)
		}
		switch j.Class {
		case "map-heavy", "transform", "shuffle-heavy":
		default:
			t.Fatalf("arrival %d has unknown class %q", j.Seq, j.Class)
		}
	}
	n := float64(len(jobs))
	// DefaultTenants weights are 0.5 / 0.3 / 0.2.
	for name, want := range map[string]float64{"interactive": 0.5, "analytics": 0.3, "batch": 0.2} {
		got := float64(counts[name]) / n
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("tenant %s share = %.3f, want ~%.2f (counts %v)", name, got, want, counts)
		}
	}
}

func TestOpenLoopSizesRespectTenantBounds(t *testing.T) {
	tenants := DefaultTenants()
	caps := map[string]float64{}
	for _, tn := range tenants {
		caps[tn.Name] = tn.MaxInputBytes
	}
	jobs := OpenLoop(OpenLoopConfig{BaseRateJobsPerSec: 1, Seed: 17}).Until(3000)
	for _, j := range jobs {
		var total float64
		for _, d := range j.Spec.MapOutputs {
			for _, v := range d {
				total += v
			}
		}
		// Shuffle volume is input × class ratio ≤ max input × 1.2.
		if limit := caps[j.Tenant] * 1.3; total > limit {
			t.Fatalf("tenant %s job shuffles %v bytes, above cap-derived limit %v",
				j.Tenant, total, limit)
		}
	}
}

func TestOpenLoopRejectsNonPositiveWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero tenant weight did not panic")
		}
	}()
	OpenLoop(OpenLoopConfig{Tenants: []Tenant{{Name: "bad", Weight: 0}}})
}
