package workload_test

import (
	"fmt"

	"pythia/internal/workload"
)

// Generating the paper's benchmark workloads at any scale.
func ExampleSort() {
	spec := workload.Sort(24*workload.GB, 10, 42)
	rb := spec.ReducerBytes()
	max, min := rb[0], rb[0]
	for _, v := range rb {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	fmt.Printf("%s: %d maps, skew ratio %.1f\n", spec.Name, spec.NumMaps, max/min)
	// Output:
	// sort: 94 maps, skew ratio 3.2
}

// The Fig. 1a toy job is fixed by construction.
func ExampleToySort() {
	toy := workload.ToySort()
	rb := toy.ReducerBytes()
	fmt.Printf("reducer-0 : reducer-1 = %.0f : 1\n", rb[0]/rb[1])
	// Output:
	// reducer-0 : reducer-1 = 5 : 1
}

// An adaptive (sampling) partitioner flattens reducer skew without changing
// the shuffle volume.
func ExampleRebalancePartitions() {
	spec := workload.Generate(workload.Config{
		Name: "skewed", InputBytes: 4 * workload.GB,
		NumReduces: 8, SkewExponent: 1.2, Seed: 7,
	})
	before := spec.TotalShuffleBytes()
	workload.RebalancePartitions(spec, 1.0)
	rb := spec.ReducerBytes()
	drift := spec.TotalShuffleBytes()/before - 1
	fmt.Printf("volume drift: %.6f; per-reducer share: %.3f\n",
		drift, rb[0]/spec.TotalShuffleBytes())
	// Output:
	// volume drift: 0.000000; per-reducer share: 0.125
}

// Workload specs serialize to JSON for archiving and replay.
func ExampleMarshalSpec() {
	spec := workload.ToySort()
	data, _ := workload.MarshalSpec(spec)
	loaded, _ := workload.UnmarshalSpec(data)
	fmt.Printf("%s: %d maps, %d reducers\n", loaded.Name, loaded.NumMaps, loaded.NumReduces)
	// Output:
	// toy-sort: 3 maps, 2 reducers
}
