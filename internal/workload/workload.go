// Package workload generates MapReduce job specifications shaped like the
// HiBench benchmarks the paper evaluates: Sort (the Hadoop-distribution
// example, representative of data transformation — 240 GB input in the
// paper) and Nutch indexing (large-scale search indexing — 5M pages / 8 GB),
// plus WordCount as an aggregation-heavy contrast and the paper's Fig. 1a
// toy sort.
//
// What matters for shuffle scheduling is the flow-size matrix
// (map × reducer byte counts), not record contents, so generators produce
// exactly that: per-map output volumes hashed over reducers with a
// configurable Zipf key skew, plus deterministic per-cell noise.
package workload

import (
	"fmt"

	"pythia/internal/hadoop"
	"pythia/internal/stats"
)

// Common byte sizes.
const (
	MB = 1e6
	GB = 1e9
	// HDFSBlock is the classic 64 MB Hadoop 1.x block size.
	HDFSBlock = 64 * MB
)

// Config parameterizes a synthetic MapReduce workload.
type Config struct {
	Name string
	// InputBytes is total job input; maps are one per BlockBytes.
	InputBytes float64
	BlockBytes float64
	NumReduces int
	// OutputRatio scales input to intermediate output (1.0 for sort-like
	// transformations, <1 for combiner-heavy aggregation).
	OutputRatio float64
	// SkewExponent shapes per-reducer volumes: 0 = uniform, 1 yields the
	// 2:1..5:1 imbalances common in practice (Fig. 1a shows 5:1).
	SkewExponent float64
	// MapRateBytesPerSec is map-task processing throughput; with jitter it
	// sets map durations. The paper's servers read ~130 MB/s serially but
	// stored intermediate data in memory; map tasks remain CPU-bound.
	MapRateBytesPerSec float64
	// MapJitterSigma is the lognormal sigma on map durations (stragglers).
	MapJitterSigma float64
	// CellNoiseSigma is the lognormal sigma on individual partition sizes.
	CellNoiseSigma float64
	// ReduceSecPerMB and ReduceBaseSec model reduce-side compute.
	ReduceSecPerMB float64
	ReduceBaseSec  float64
	Seed           uint64
}

// Defaults fills unset fields with sensible values.
func (c Config) Defaults() Config {
	if c.BlockBytes == 0 {
		c.BlockBytes = HDFSBlock
	}
	if c.NumReduces == 0 {
		c.NumReduces = 10
	}
	if c.OutputRatio == 0 {
		c.OutputRatio = 1.0
	}
	if c.MapRateBytesPerSec == 0 {
		c.MapRateBytesPerSec = 100 * MB
	}
	if c.MapJitterSigma == 0 {
		c.MapJitterSigma = 0.15
	}
	if c.CellNoiseSigma == 0 {
		c.CellNoiseSigma = 0.10
	}
	if c.ReduceSecPerMB == 0 {
		c.ReduceSecPerMB = 0.004
	}
	if c.ReduceBaseSec == 0 {
		c.ReduceBaseSec = 1.0
	}
	return c
}

// Generate materializes the job spec. It panics on non-positive input size.
func Generate(c Config) *hadoop.JobSpec {
	c = c.Defaults()
	if c.InputBytes <= 0 {
		panic(fmt.Sprintf("workload: job %q needs positive input", c.Name))
	}
	rng := stats.NewRNG(c.Seed ^ 0xF00DF00D)
	numMaps := int(c.InputBytes / c.BlockBytes)
	lastBlock := c.InputBytes - float64(numMaps)*c.BlockBytes
	// Sizes built from the decimal MB/GB constants are not exactly
	// representable, so an input that is an exact block multiple in real
	// arithmetic (34.24*GB = 535 × 64*MB) can leave an epsilon-sized
	// remainder here. Such slivers must not become maps of their own — a
	// near-zero-duration task emitting near-zero flows — so anything below
	// one part in 10⁹ of a block folds into the last full block.
	if lastBlock > c.BlockBytes*1e-9 {
		numMaps++
	} else {
		lastBlock = c.BlockBytes
	}
	weights := stats.SkewWeights(c.NumReduces, c.SkewExponent)

	durations := make([]float64, numMaps)
	outputs := make([][]float64, numMaps)
	durRNG := rng.Split(1)
	cellRNG := rng.Split(2)
	for m := 0; m < numMaps; m++ {
		in := c.BlockBytes
		if m == numMaps-1 {
			in = lastBlock
		}
		jitter := durRNG.LogNormal(0, c.MapJitterSigma)
		durations[m] = in / c.MapRateBytesPerSec * jitter

		out := in * c.OutputRatio
		row := make([]float64, c.NumReduces)
		sum := 0.0
		for r := range row {
			row[r] = weights[r] * cellRNG.LogNormal(0, c.CellNoiseSigma)
			sum += row[r]
		}
		// Normalize so the map's total output is exact despite noise.
		for r := range row {
			row[r] = row[r] / sum * out
		}
		outputs[m] = row
	}
	return &hadoop.JobSpec{
		Name:           c.Name,
		NumMaps:        numMaps,
		NumReduces:     c.NumReduces,
		MapDurations:   durations,
		MapOutputs:     outputs,
		ReduceSecPerMB: c.ReduceSecPerMB,
		ReduceBaseSec:  c.ReduceBaseSec,
	}
}

// Sort returns a HiBench-Sort-like job: intermediate output equals input
// (pure transformation), moderate reducer skew, few large flows. The paper
// ran 240 GB; pass the scaled size you want.
func Sort(inputBytes float64, numReduces int, seed uint64) *hadoop.JobSpec {
	return Generate(Config{
		Name:         "sort",
		InputBytes:   inputBytes,
		BlockBytes:   256 * MB, // fewer, larger flows than Nutch
		NumReduces:   numReduces,
		OutputRatio:  1.0,
		SkewExponent: 0.5,
		Seed:         seed,
	})
}

// Nutch returns a Nutch-indexing-like job: 64 MB blocks, output ratio above
// one (postings + metadata), stronger key skew (term frequencies are
// Zipfian), and many smaller flows — the property the paper credits for
// Pythia's near-flat completion times in Fig. 3. Indexing is CPU-bound
// (parsing/tokenizing ~3.5 MB/s per task puts the paper's 8 GB job near its
// 242 s completion time), so the shuffle demand rate stays low enough to fit
// the spare capacity even at 1:20 oversubscription — when scheduled well.
func Nutch(inputBytes float64, numReduces int, seed uint64) *hadoop.JobSpec {
	return Generate(Config{
		Name:               "nutch-indexing",
		InputBytes:         inputBytes,
		BlockBytes:         HDFSBlock,
		NumReduces:         numReduces,
		OutputRatio:        1.2,
		SkewExponent:       0.45,
		MapRateBytesPerSec: 3.6 * MB,
		ReduceSecPerMB:     0.012,
		Seed:               seed,
	})
}

// WordCount returns an aggregation job: combiners crush the shuffle to a few
// percent of input. Network scheduling barely matters for it — a useful
// negative control.
func WordCount(inputBytes float64, numReduces int, seed uint64) *hadoop.JobSpec {
	return Generate(Config{
		Name:               "wordcount",
		InputBytes:         inputBytes,
		BlockBytes:         HDFSBlock,
		NumReduces:         numReduces,
		OutputRatio:        0.05,
		SkewExponent:       1.0,
		MapRateBytesPerSec: 20 * MB, // tokenizing is CPU-bound
		Seed:               seed,
	})
}

// ToySort reproduces the paper's Fig. 1a motivational job: three map tasks,
// two reducers, with reducer-0 fetching 5x the data of reducer-1.
func ToySort() *hadoop.JobSpec {
	const per = 200 * MB // per-map intermediate output
	outputs := make([][]float64, 3)
	for m := range outputs {
		outputs[m] = []float64{per * 5 / 6, per * 1 / 6}
	}
	return &hadoop.JobSpec{
		Name:           "toy-sort",
		NumMaps:        3,
		NumReduces:     2,
		MapDurations:   []float64{20, 22, 21},
		MapOutputs:     outputs,
		ReduceSecPerMB: 0.004,
		ReduceBaseSec:  1,
	}
}

// IntegerSort returns the Fig. 5 workload: a 60 GB integer sort (pass the
// scaled size), uniform-ish partitions across reducers.
func IntegerSort(inputBytes float64, numReduces int, seed uint64) *hadoop.JobSpec {
	return Generate(Config{
		Name:         "integer-sort",
		InputBytes:   inputBytes,
		BlockBytes:   256 * MB,
		NumReduces:   numReduces,
		OutputRatio:  1.0,
		SkewExponent: 0.2,
		Seed:         seed,
	})
}

// RebalancePartitions emulates an adaptive (sampling-based) partitioner —
// the application-level skew remedy the paper's §II mentions as an
// alternative to network-level handling. Each map's output is blended
// toward a uniform split: strength 0 leaves the matrix untouched, 1 makes
// every reducer receive an equal share. Per-map totals (and thus the
// shuffle volume) are preserved exactly. In real Hadoop this corresponds to
// choosing range-partition boundaries from an input sample (as TeraSort
// does) instead of hashing keys blindly.
func RebalancePartitions(spec *hadoop.JobSpec, strength float64) {
	if strength <= 0 {
		return
	}
	if strength > 1 {
		strength = 1
	}
	for m, row := range spec.MapOutputs {
		total := 0.0
		for _, v := range row {
			total += v
		}
		uniform := total / float64(len(row))
		for r := range row {
			spec.MapOutputs[m][r] = row[r]*(1-strength) + uniform*strength
		}
	}
}
