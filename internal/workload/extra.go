package workload

import (
	"fmt"

	"pythia/internal/hadoop"
)

// TeraSort returns a TeraSort-shaped job: like Sort, but range-partitioned
// from an input sample, so reducers are near-uniform regardless of the key
// distribution — the canonical application-level skew fix (TeraSort's
// TotalOrderPartitioner), built by composing the Sort generator with
// RebalancePartitions.
func TeraSort(inputBytes float64, numReduces int, seed uint64) *hadoop.JobSpec {
	spec := Generate(Config{
		Name:         "terasort",
		InputBytes:   inputBytes,
		BlockBytes:   256 * MB,
		NumReduces:   numReduces,
		OutputRatio:  1.0,
		SkewExponent: 1.0, // raw keys are skewed...
		Seed:         seed,
	})
	RebalancePartitions(spec, 0.95) // ...the sampled partitioner fixes it
	return spec
}

// PageRankIteration returns one iteration of a PageRank-shaped job: the
// rank vector plus adjacency contributions are exchanged each round, with
// power-law in-degree skew concentrating traffic on the reducers owning
// high-degree vertices. Chain iterations by feeding each one's output size
// into the next.
func PageRankIteration(graphBytes float64, numReduces int, iteration int, seed uint64) *hadoop.JobSpec {
	spec := Generate(Config{
		Name:         fmt.Sprintf("pagerank-iter%d", iteration),
		InputBytes:   graphBytes,
		BlockBytes:   HDFSBlock,
		NumReduces:   numReduces,
		OutputRatio:  1.0,
		SkewExponent: 1.1, // power-law in-degree
		// Edge-list processing is lightweight per byte.
		MapRateBytesPerSec: 40 * MB,
		ReduceSecPerMB:     0.006,
		Seed:               seed + uint64(iteration)*7919,
	})
	spec.ReduceOutputRatio = 1.0 // the next iteration consumes the ranks
	return spec
}

// PageRank returns a full n-iteration PageRank pipeline; run the specs in
// order on one cluster (each writes back what the next reads).
func PageRank(graphBytes float64, numReduces, iterations int, seed uint64) []*hadoop.JobSpec {
	if iterations <= 0 {
		panic("workload: PageRank needs positive iterations")
	}
	specs := make([]*hadoop.JobSpec, iterations)
	for i := range specs {
		specs[i] = PageRankIteration(graphBytes, numReduces, i, seed)
	}
	return specs
}

// Join returns a repartition-join-shaped job over two inputs: both tables
// are shuffled in full (output ratio > 1 relative to the probe side), with
// moderate key skew — the join-key hot spot. This is the other classic
// shuffle-heavy pattern after sort.
func Join(leftBytes, rightBytes float64, numReduces int, seed uint64) *hadoop.JobSpec {
	if leftBytes <= 0 || rightBytes <= 0 {
		panic("workload: Join needs two positive inputs")
	}
	total := leftBytes + rightBytes
	spec := Generate(Config{
		Name:         "repartition-join",
		InputBytes:   total,
		BlockBytes:   HDFSBlock,
		NumReduces:   numReduces,
		OutputRatio:  1.0, // both sides shuffled in full
		SkewExponent: 0.7,
		Seed:         seed,
	})
	return spec
}
