package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateValidSpec(t *testing.T) {
	spec := Generate(Config{Name: "g", InputBytes: 1 * GB, Seed: 1})
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.NumMaps != 16 { // 1 GB / 64 MB
		t.Fatalf("maps = %d, want 16", spec.NumMaps)
	}
}

func TestGeneratePartialLastBlock(t *testing.T) {
	spec := Generate(Config{Name: "g", InputBytes: 16*HDFSBlock + 1*MB, Seed: 1})
	if spec.NumMaps != 17 {
		t.Fatalf("maps = %d, want 17 (partial last block)", spec.NumMaps)
	}
	// Last map's output should be much smaller than a full block's.
	lastOut, firstOut := 0.0, 0.0
	for r := 0; r < spec.NumReduces; r++ {
		lastOut += spec.MapOutputs[16][r]
		firstOut += spec.MapOutputs[0][r]
	}
	if lastOut >= firstOut/10 {
		t.Fatalf("partial block output %v not smaller than full %v", lastOut, firstOut)
	}
}

// Inputs that are exact block multiples in real arithmetic but built from
// the decimal MB/GB float constants leave an epsilon-sized remainder in
// float64 (34.24 GB = 535 × 64 MB exactly, but 34.24*GB - 535*HDFSBlock ≈
// 3.8e-6 bytes). Before the sliver fix, Generate turned that remainder
// into an extra near-zero-byte map; it must fold into the last full block.
func TestGenerateExactMultipleNoSliverMap(t *testing.T) {
	for _, tc := range []struct {
		name     string
		input    float64
		block    float64
		wantMaps int
	}{
		{"34.24GB/64MB", 34.24 * GB, HDFSBlock, 535},
		{"68.48GB/64MB", 68.48 * GB, HDFSBlock, 1070},
		{"136.96GB/256MB", 136.96 * GB, 256 * MB, 535},
	} {
		spec := Generate(Config{Name: tc.name, InputBytes: tc.input, BlockBytes: tc.block, Seed: 1})
		if spec.NumMaps != tc.wantMaps {
			t.Fatalf("%s: maps = %d, want %d (sliver remainder must not become a map)",
				tc.name, spec.NumMaps, tc.wantMaps)
		}
		// The last map must be a full block, not a few-microbyte sliver:
		// within noise of the first map's output.
		lastOut, firstOut := 0.0, 0.0
		for r := 0; r < spec.NumReduces; r++ {
			lastOut += spec.MapOutputs[spec.NumMaps-1][r]
			firstOut += spec.MapOutputs[0][r]
		}
		if lastOut < firstOut/2 {
			t.Fatalf("%s: last map output %v vs first %v — sliver block leaked through",
				tc.name, lastOut, firstOut)
		}
	}
}

// A genuinely partial last block (well above the epsilon guard) must still
// get its own map — the fix only folds sub-epsilon remainders.
func TestGenerateRealRemainderStillGetsMap(t *testing.T) {
	spec := Generate(Config{Name: "g", InputBytes: 10*HDFSBlock + 5*MB, Seed: 1})
	if spec.NumMaps != 11 {
		t.Fatalf("maps = %d, want 11 (5 MB remainder deserves a map)", spec.NumMaps)
	}
}

func TestOutputVolumeMatchesRatio(t *testing.T) {
	for _, ratio := range []float64{0.05, 1.0, 1.2} {
		spec := Generate(Config{Name: "g", InputBytes: 2 * GB, OutputRatio: ratio, Seed: 3})
		got := spec.TotalShuffleBytes()
		want := 2 * GB * ratio
		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("ratio %v: shuffle bytes = %v, want %v", ratio, got, want)
		}
	}
}

func TestSkewShapesReducers(t *testing.T) {
	flat := Generate(Config{Name: "flat", InputBytes: 4 * GB, SkewExponent: 1e-9, Seed: 5})
	skewed := Generate(Config{Name: "skew", InputBytes: 4 * GB, SkewExponent: 1.2, Seed: 5})
	fb, sb := flat.ReducerBytes(), skewed.ReducerBytes()
	flatRatio := maxOf(fb) / minOf(fb)
	skewRatio := maxOf(sb) / minOf(sb)
	if flatRatio > 1.5 {
		t.Fatalf("near-zero skew produced ratio %v", flatRatio)
	}
	if skewRatio < 3 {
		t.Fatalf("skew 1.2 produced ratio only %v", skewRatio)
	}
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a := Generate(Config{Name: "a", InputBytes: 1 * GB, Seed: 7})
	b := Generate(Config{Name: "a", InputBytes: 1 * GB, Seed: 7})
	for m := range a.MapOutputs {
		if a.MapDurations[m] != b.MapDurations[m] {
			t.Fatal("durations nondeterministic")
		}
		for r := range a.MapOutputs[m] {
			if a.MapOutputs[m][r] != b.MapOutputs[m][r] {
				t.Fatal("outputs nondeterministic")
			}
		}
	}
}

func TestSeedChangesJob(t *testing.T) {
	a := Generate(Config{Name: "a", InputBytes: 1 * GB, Seed: 1})
	b := Generate(Config{Name: "a", InputBytes: 1 * GB, Seed: 2})
	same := true
	for m := range a.MapOutputs {
		for r := range a.MapOutputs[m] {
			if a.MapOutputs[m][r] != b.MapOutputs[m][r] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical jobs")
	}
}

func TestSortShape(t *testing.T) {
	spec := Sort(24*GB, 10, 1)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.NumMaps != 94 { // ceil(24 GB / 256 MB) = ceil(93.75)
		t.Fatalf("sort maps = %d, want 94", spec.NumMaps)
	}
	if math.Abs(spec.TotalShuffleBytes()-24*GB)/GB > 1e-6 {
		t.Fatalf("sort shuffle = %v, want 24 GB", spec.TotalShuffleBytes())
	}
}

func TestNutchSmallerFlowsThanSort(t *testing.T) {
	sort := Sort(8*GB, 10, 1)
	nutch := Nutch(8*GB, 10, 1)
	sortFlow := sort.TotalShuffleBytes() / float64(sort.NumMaps*sort.NumReduces)
	nutchFlow := nutch.TotalShuffleBytes() / float64(nutch.NumMaps*nutch.NumReduces)
	if nutchFlow >= sortFlow {
		t.Fatalf("nutch mean flow %v not smaller than sort %v", nutchFlow, sortFlow)
	}
	if nutch.NumMaps <= sort.NumMaps {
		t.Fatal("nutch should have more maps (64 MB blocks)")
	}
}

func TestWordCountTinyShuffle(t *testing.T) {
	wc := WordCount(8*GB, 10, 1)
	if got := wc.TotalShuffleBytes(); got > 0.5*GB {
		t.Fatalf("wordcount shuffle = %v, want ~5%% of input", got)
	}
}

func TestToySortMatchesFig1a(t *testing.T) {
	toy := ToySort()
	if err := toy.Validate(); err != nil {
		t.Fatal(err)
	}
	if toy.NumMaps != 3 || toy.NumReduces != 2 {
		t.Fatalf("toy shape: %d maps %d reduces", toy.NumMaps, toy.NumReduces)
	}
	rb := toy.ReducerBytes()
	if math.Abs(rb[0]/rb[1]-5) > 1e-9 {
		t.Fatalf("toy skew ratio = %v, want exactly 5 (reducer-0 gets 5x)", rb[0]/rb[1])
	}
}

func TestIntegerSortNearUniform(t *testing.T) {
	spec := IntegerSort(6*GB, 10, 1)
	rb := spec.ReducerBytes()
	if maxOf(rb)/minOf(rb) > 2.5 {
		t.Fatalf("integer sort skew ratio %v too high", maxOf(rb)/minOf(rb))
	}
}

func TestGeneratePanicsOnZeroInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero input did not panic")
		}
	}()
	Generate(Config{Name: "bad"})
}

func TestMapDurationsPositiveWithJitter(t *testing.T) {
	spec := Generate(Config{Name: "g", InputBytes: 10 * GB, MapJitterSigma: 0.3, Seed: 11})
	for m, d := range spec.MapDurations {
		if d <= 0 {
			t.Fatalf("map %d duration %v", m, d)
		}
	}
}

// Property: for any sane config, the generated spec validates, the shuffle
// volume equals input*ratio, and every cell is nonnegative.
func TestPropertyGenerate(t *testing.T) {
	f := func(inputMB uint16, reducesRaw, skewRaw uint8, seed uint64) bool {
		input := (float64(inputMB%2000) + 64) * MB
		reduces := int(reducesRaw%20) + 1
		skew := float64(skewRaw%30) / 10
		spec := Generate(Config{
			Name: "p", InputBytes: input, NumReduces: reduces,
			SkewExponent: skew, Seed: seed,
		})
		if spec.Validate() != nil {
			return false
		}
		if math.Abs(spec.TotalShuffleBytes()-input)/input > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateSort24GB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Sort(24*GB, 10, uint64(i))
	}
}

func TestSpecRoundTrip(t *testing.T) {
	orig := Sort(2*GB, 6, 7)
	orig.ReduceOutputRatio = 0.5
	data, err := MarshalSpec(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.NumMaps != orig.NumMaps || got.ReduceOutputRatio != 0.5 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	for m := range orig.MapOutputs {
		if got.MapDurations[m] != orig.MapDurations[m] {
			t.Fatal("durations changed")
		}
		for r := range orig.MapOutputs[m] {
			if got.MapOutputs[m][r] != orig.MapOutputs[m][r] {
				t.Fatal("outputs changed")
			}
		}
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	bad := Sort(1*GB, 4, 1)
	bad.MapDurations = bad.MapDurations[:1]
	if _, err := MarshalSpec(bad); err == nil {
		t.Fatal("invalid spec serialized")
	}
}

func TestUnmarshalRejectsGarbageAndInvalid(t *testing.T) {
	if _, err := UnmarshalSpec([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalSpec([]byte(`{"Name":"x","NumMaps":0,"NumReduces":1}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestRebalancePartitions(t *testing.T) {
	spec := Generate(Config{Name: "s", InputBytes: 2 * GB, NumReduces: 8, SkewExponent: 1.2, Seed: 3})
	before := spec.TotalShuffleBytes()
	rb := spec.ReducerBytes()
	skewBefore := maxOf(rb) / minOf(rb)

	RebalancePartitions(spec, 1.0)
	after := spec.TotalShuffleBytes()
	rb = spec.ReducerBytes()
	skewAfter := maxOf(rb) / minOf(rb)

	if math.Abs(after-before) > 1 {
		t.Fatalf("rebalance changed total volume: %v -> %v", before, after)
	}
	if math.Abs(skewAfter-1) > 1e-9 {
		t.Fatalf("full rebalance left skew %v", skewAfter)
	}
	if skewBefore < 3 {
		t.Fatalf("test premise broken: skew before = %v", skewBefore)
	}
}

func TestRebalancePartialAndNoop(t *testing.T) {
	spec := Generate(Config{Name: "s", InputBytes: 1 * GB, NumReduces: 4, SkewExponent: 1.0, Seed: 3})
	orig := spec.ReducerBytes()
	RebalancePartitions(spec, 0)
	same := spec.ReducerBytes()
	for i := range orig {
		if orig[i] != same[i] {
			t.Fatal("strength 0 modified the matrix")
		}
	}
	RebalancePartitions(spec, 0.5)
	half := spec.ReducerBytes()
	// Skew must strictly decrease but not vanish.
	if maxOf(half)/minOf(half) >= maxOf(orig)/minOf(orig) {
		t.Fatal("partial rebalance did not reduce skew")
	}
	if math.Abs(maxOf(half)/minOf(half)-1) < 1e-9 {
		t.Fatal("partial rebalance flattened completely")
	}
	// Strength > 1 clamps.
	RebalancePartitions(spec, 5)
	if flat := spec.ReducerBytes(); math.Abs(maxOf(flat)/minOf(flat)-1) > 1e-9 {
		t.Fatal("clamped strength did not flatten")
	}
}
