package workload

import (
	"fmt"

	"pythia/internal/hadoop"
	"pythia/internal/stats"
)

// TraceJob is one entry of a synthesized cluster trace.
type TraceJob struct {
	Spec *hadoop.JobSpec
	// SubmitAtSec is the arrival time relative to trace start.
	SubmitAtSec float64
}

// TraceConfig shapes a synthetic multi-job trace in the mold of the
// Facebook-2009 workload the paper's motivation cites ("33% of the
// execution time of a large number of jobs is spent at the shuffle phase")
// and that the SWIM project published distributions for: heavy-tailed input
// sizes, a job mix dominated by small map-heavy jobs with a minority of
// shuffle-heavy ones, and Poisson arrivals.
type TraceConfig struct {
	Jobs int
	// MeanInterarrivalSec spaces the Poisson arrivals.
	MeanInterarrivalSec float64
	// MedianInputBytes and InputSigma parameterize the lognormal input
	// distribution; inputs are clamped to [64 MB, MaxInputBytes].
	MedianInputBytes float64
	InputSigma       float64
	MaxInputBytes    float64
	// Class mix (fractions; normalized): map-heavy jobs shuffle ~5% of
	// input, transform jobs ~40%, shuffle-heavy jobs ~120%.
	MapHeavyFrac     float64
	TransformFrac    float64
	ShuffleHeavyFrac float64
	Seed             uint64
}

// Defaults fills unset fields with the published-shape values.
func (c TraceConfig) Defaults() TraceConfig {
	if c.Jobs == 0 {
		c.Jobs = 30
	}
	if c.MeanInterarrivalSec == 0 {
		c.MeanInterarrivalSec = 20
	}
	if c.MedianInputBytes == 0 {
		c.MedianInputBytes = 1 * GB
	}
	if c.InputSigma == 0 {
		c.InputSigma = 1.2
	}
	if c.MaxInputBytes == 0 {
		c.MaxInputBytes = 16 * GB
	}
	if c.MapHeavyFrac == 0 && c.TransformFrac == 0 && c.ShuffleHeavyFrac == 0 {
		c.MapHeavyFrac, c.TransformFrac, c.ShuffleHeavyFrac = 0.5, 0.3, 0.2
	}
	return c
}

// SyntheticFacebookTrace materializes the job stream. Jobs are returned in
// arrival order.
func SyntheticFacebookTrace(cfg TraceConfig) []TraceJob {
	cfg = cfg.Defaults()
	rng := stats.NewRNG(cfg.Seed ^ 0x7ACE)
	classRNG := rng.Split(1)
	sizeRNG := rng.Split(2)
	arriveRNG := rng.Split(3)

	total := cfg.MapHeavyFrac + cfg.TransformFrac + cfg.ShuffleHeavyFrac
	pMap := cfg.MapHeavyFrac / total
	pTransform := cfg.TransformFrac / total

	var out []TraceJob
	at := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		at += arriveRNG.Exp(cfg.MeanInterarrivalSec)
		input := cfg.MedianInputBytes * sizeRNG.LogNormal(0, cfg.InputSigma)
		if input < 64*MB {
			input = 64 * MB
		}
		if input > cfg.MaxInputBytes {
			input = cfg.MaxInputBytes
		}
		u := classRNG.Float64()
		var (
			class string
			ratio float64
			skew  float64
		)
		switch {
		case u < pMap:
			class, ratio, skew = "map-heavy", 0.05, 1.0
		case u < pMap+pTransform:
			class, ratio, skew = "transform", 0.4, 0.6
		default:
			class, ratio, skew = "shuffle-heavy", 1.2, 0.8
		}
		reduces := 4 + int(input/(2*GB))*2
		if reduces > 16 {
			reduces = 16
		}
		spec := Generate(Config{
			Name:         fmt.Sprintf("trace-%03d-%s", i, class),
			InputBytes:   input,
			BlockBytes:   HDFSBlock,
			NumReduces:   reduces,
			OutputRatio:  ratio,
			SkewExponent: skew,
			// Production jobs are far more compute-bound than raw I/O:
			// ~15 MB/s/task calibrates the trace's aggregate
			// shuffle-time share near the ~33% the Facebook analysis
			// reports.
			MapRateBytesPerSec: 15 * MB,
			Seed:               cfg.Seed + uint64(i)*104729,
		})
		out = append(out, TraceJob{Spec: spec, SubmitAtSec: at})
	}
	return out
}
