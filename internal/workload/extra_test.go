package workload

import (
	"math"
	"sort"
	"strings"
	"testing"
)

func TestTeraSortNearUniformDespiteSkew(t *testing.T) {
	spec := TeraSort(8*GB, 10, 3)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	rb := spec.ReducerBytes()
	if ratio := maxOf(rb) / minOf(rb); ratio > 1.3 {
		t.Fatalf("terasort reducer skew %v despite sampled partitioner", ratio)
	}
	if math.Abs(spec.TotalShuffleBytes()-8*GB)/GB > 1e-6 {
		t.Fatalf("volume changed: %v", spec.TotalShuffleBytes())
	}
}

func TestPageRankPipeline(t *testing.T) {
	specs := PageRank(4*GB, 8, 3, 5)
	if len(specs) != 3 {
		t.Fatalf("iterations = %d", len(specs))
	}
	names := map[string]bool{}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if s.ReduceOutputRatio != 1.0 {
			t.Fatalf("iter %d has no write-back", i)
		}
		if names[s.Name] {
			t.Fatalf("duplicate iteration name %q", s.Name)
		}
		names[s.Name] = true
	}
	// Iterations differ (fresh jitter per round).
	if specs[0].MapDurations[0] == specs[1].MapDurations[0] {
		t.Fatal("iterations identical")
	}
}

func TestPageRankPanicsOnZeroIterations(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero iterations did not panic")
		}
	}()
	PageRank(1*GB, 4, 0, 1)
}

func TestJoinShufflesBothSides(t *testing.T) {
	spec := Join(4*GB, 2*GB, 8, 7)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(spec.TotalShuffleBytes()-6*GB)/GB > 1e-6 {
		t.Fatalf("join shuffle = %v, want both sides (6 GB)", spec.TotalShuffleBytes())
	}
}

func TestJoinPanicsOnEmptySide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty side did not panic")
		}
	}()
	Join(1*GB, 0, 4, 1)
}

func TestSyntheticTraceShape(t *testing.T) {
	trace := SyntheticFacebookTrace(TraceConfig{Jobs: 40, Seed: 3})
	if len(trace) != 40 {
		t.Fatalf("jobs = %d", len(trace))
	}
	prev := -1.0
	classes := map[string]int{}
	for _, tj := range trace {
		if tj.SubmitAtSec <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		prev = tj.SubmitAtSec
		if err := tj.Spec.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, class := range []string{"map-heavy", "transform", "shuffle-heavy"} {
			if strings.HasSuffix(tj.Spec.Name, class) {
				classes[class]++
			}
		}
	}
	if len(classes) != 3 {
		t.Fatalf("classes seen: %v", classes)
	}
	// Map-heavy dominates the mix.
	if classes["map-heavy"] < classes["shuffle-heavy"] {
		t.Fatalf("mix inverted: %v", classes)
	}
}

func TestSyntheticTraceDeterministic(t *testing.T) {
	a := SyntheticFacebookTrace(TraceConfig{Jobs: 10, Seed: 5})
	b := SyntheticFacebookTrace(TraceConfig{Jobs: 10, Seed: 5})
	for i := range a {
		if a[i].SubmitAtSec != b[i].SubmitAtSec || a[i].Spec.NumMaps != b[i].Spec.NumMaps {
			t.Fatal("trace nondeterministic")
		}
	}
}

func TestSyntheticTraceHeavyTail(t *testing.T) {
	trace := SyntheticFacebookTrace(TraceConfig{Jobs: 60, Seed: 7})
	var sizes []float64
	for _, tj := range trace {
		total := 0.0
		for _, row := range tj.Spec.MapOutputs {
			for _, v := range row {
				total += v
			}
		}
		_ = total
		sizes = append(sizes, float64(tj.Spec.NumMaps))
	}
	// Heavy tail: the biggest job has many times the median's maps.
	sort.Float64s(sizes)
	med := sizes[len(sizes)/2]
	max := 0.0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	if max < 4*med {
		t.Fatalf("no heavy tail: max %v vs median %v maps", max, med)
	}
}
