package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"pythia/internal/core"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/serve"
	"pythia/internal/sim"
	"pythia/internal/stats"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

// This file benchmarks the online serving surface (internal/serve): the
// open-loop workload plane synthesizes the shuffle-intent stream a real
// cluster's instrumentation would emit, and an in-process single-shard
// collector replays the identical stream as the oracle. The bench proves
// the sharded server's placement stream bit-identical to the oracle at
// every shard count (sequential phase), then measures intents/sec and
// server-side placement latency under concurrent load (throughput phase).

// ServeConfig parameterizes the serving benchmark.
type ServeConfig struct {
	// Jobs is the number of open-loop jobs flattened into the op trace.
	Jobs int
	// ShardCounts lists the collector shard counts to compare; the
	// single-shard in-process replay is always the oracle.
	ShardCounts []int
	// Conns is the concurrent connection count for the throughput phase.
	Conns int
	// ChunkOps is the operation count per ingest request.
	ChunkOps int
	// ClockHz drives the determinism phase's logical clock (ops →
	// virtual seconds), making TTL sweeps replay-invariant.
	ClockHz float64
	Seed    uint64

	// Server shape (see serve.Config).
	Workers      int
	QueueCap     int
	BatchMax     int
	FatTreeK     int
	HostsPerEdge int
}

// Defaults fills unset fields with the CI smoke shape: 40 jobs, shard
// counts 1/2/4/8, 8 connections, 64-op requests.
func (c ServeConfig) Defaults() ServeConfig {
	if c.Jobs == 0 {
		c.Jobs = 40
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4, 8}
	}
	if c.Conns == 0 {
		c.Conns = 8
	}
	if c.ChunkOps == 0 {
		c.ChunkOps = 64
	}
	if c.ClockHz == 0 {
		c.ClockHz = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FatTreeK == 0 {
		c.FatTreeK = 4
	}
	return c
}

// ServeShardResult is one shard count's benchmark row.
type ServeShardResult struct {
	Shards int `json:"shards"`

	// Sequential determinism phase.
	Digest              string `json:"placement_digest"`
	DigestMatchesOracle bool   `json:"digest_matches_oracle"`
	LeakedBookings      int    `json:"leaked_bookings"`

	// Concurrent throughput phase.
	IntentsPerSec      float64 `json:"intents_per_sec"`
	OpsPerSec          float64 `json:"ops_per_sec"`
	PlacementP50Micros float64 `json:"placement_p50_micros"`
	PlacementP99Micros float64 `json:"placement_p99_micros"`
	Rejected429        int64   `json:"rejected_429"`
}

// ServeResult is the benchmark artifact (BENCH_serve.json).
type ServeResult struct {
	Jobs         int                `json:"jobs"`
	Ops          int                `json:"ops"`
	Intents      int                `json:"intents"`
	Requests     int                `json:"requests"`
	Conns        int                `json:"conns"`
	ChunkOps     int                `json:"chunk_ops"`
	OracleDigest string             `json:"oracle_digest"`
	Rows         []ServeShardResult `json:"rows"`
}

// wireOp is one protocol-level operation of the synthesized trace, tagged
// by job so the throughput phase can partition the stream per connection
// without breaking per-job ordering.
type wireOp struct {
	job     int
	reducer *serve.WireReducerUp
	intent  *serve.WireIntent
	done    bool
}

// serveTrace flattens cfg.Jobs open-loop arrivals into the wire-op stream
// the cluster's instrumentation would emit: each job's reducer placements,
// then one intent per map (predicted bytes straight from the job spec's
// intermediate-output matrix), then the job retirement. Jobs interleave in
// arrival order round-robin, the pattern of an overlapped steady state.
func serveTrace(cfg ServeConfig, numHosts int) []wireOp {
	stream := workload.OpenLoop(workload.OpenLoopConfig{
		BaseRateJobsPerSec: 0.2,
		Seed:               cfg.Seed,
	})
	rng := stats.NewRNG(cfg.Seed).Split(0x5e17e)
	perJob := make([][]wireOp, cfg.Jobs)
	for j := 0; j < cfg.Jobs; j++ {
		job := stream.Next()
		spec := job.Spec
		var ops []wireOp
		for r := 0; r < spec.NumReduces; r++ {
			ops = append(ops, wireOp{job: j, reducer: &serve.WireReducerUp{
				Job: j, Reduce: r, Host: rng.Intn(numHosts)}})
		}
		for m := 0; m < spec.NumMaps; m++ {
			ops = append(ops, wireOp{job: j, intent: &serve.WireIntent{
				Job: j, Map: m, SrcHost: rng.Intn(numHosts),
				PredictedWireBytes: spec.MapOutputs[m]}})
		}
		ops = append(ops, wireOp{job: j, done: true})
		perJob[j] = ops
	}
	// Round-robin interleave so many jobs are concurrently live, like an
	// open-loop steady state (rather than one job at a time).
	var out []wireOp
	heads := make([]int, cfg.Jobs)
	for remaining := true; remaining; {
		remaining = false
		for j := 0; j < cfg.Jobs; j++ {
			if heads[j] >= len(perJob[j]) {
				continue
			}
			// Take a small run of each job's ops per round.
			run := 8
			for i := 0; i < run && heads[j] < len(perJob[j]); i++ {
				out = append(out, perJob[j][heads[j]])
				heads[j]++
			}
			if heads[j] < len(perJob[j]) {
				remaining = true
			}
		}
	}
	return out
}

// chunkRequests packs a wire-op stream into ingest requests of at most
// chunk operations, preserving order.
func chunkRequests(ops []wireOp, chunk int) []*serve.IngestRequest {
	var reqs []*serve.IngestRequest
	for at := 0; at < len(ops); at += chunk {
		end := at + chunk
		if end > len(ops) {
			end = len(ops)
		}
		req := &serve.IngestRequest{}
		for _, op := range ops[at:end] {
			switch {
			case op.reducer != nil:
				req.Reducers = append(req.Reducers, *op.reducer)
			case op.intent != nil:
				req.Intents = append(req.Intents, *op.intent)
			default:
				req.DoneJobs = append(req.DoneJobs, op.job)
			}
		}
		reqs = append(reqs, req)
	}
	return reqs
}

// oracleDigest replays the chunked trace on an in-process single-shard
// collector with the server's logical-clock semantics (one batch per
// request, virtual time advancing 1/ClockHz per op) and returns the
// placement digest and leak gauge — the ground truth every server run must
// reproduce bit-identically.
func oracleDigest(cfg ServeConfig, scfg serve.Config, reqs []*serve.IngestRequest) (uint64, int) {
	eng := sim.NewEngine()
	g, hosts := topology.FatTree(scfg.FatTreeK, scfg.HostsPerEdge, topology.Gbps)
	net := netsim.New(eng, g)
	ofc := openflow.NewController(eng, net, 0)
	py := core.New(eng, net, ofc, core.Config{
		K:              scfg.K,
		Aggregate:      true,
		UseCriticality: true,
		BookingTTL:     sim.Duration(scfg.BookingTTLSec),
		Shards:         1,
	})
	dig := newServeDigest()
	py.SetPlacementHook(dig.observe)
	virtual := 0.0
	for _, req := range reqs {
		ops := req.ToOps(hosts)
		// Duplicate-exempt logical clock, same as the server: the bench
		// trace is dup-free so NovelOps == len(ops), but keeping the same
		// rule means a retried trace would still replay to this oracle.
		virtual += float64(py.NovelOps(ops)) / cfg.ClockHz
		if deadline := sim.Time(virtual); deadline > eng.Now() {
			eng.RunUntil(deadline)
		}
		py.ApplyBatch(ops, 1)
	}
	return dig.h, py.OutstandingTotal()
}

// serveDigest mirrors the server's placement-stream FNV-1a fingerprint.
type serveDigest struct{ h uint64 }

func newServeDigest() *serveDigest { return &serveDigest{h: 14695981039346656037} }

func (d *serveDigest) observe(src, dst topology.NodeID, path topology.Path) {
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			d.h ^= (v >> (8 * i)) & 0xff
			d.h *= 1099511628211
		}
	}
	mix(uint64(src))
	mix(uint64(dst))
	for _, l := range path.Links {
		mix(uint64(l))
	}
	mix(^uint64(0))
}

// postIngest sends one ingest request, retrying on 429 after the server's
// Retry-After hint (scaled down: the bench is its own client).
func postIngest(client *http.Client, url string, body []byte) error {
	for {
		resp, err := client.Post(url+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		code := resp.StatusCode
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case code == http.StatusOK:
			return nil
		case code == http.StatusTooManyRequests:
			time.Sleep(2 * time.Millisecond)
		default:
			return fmt.Errorf("ingest: HTTP %d", code)
		}
	}
}

func fetchStats(client *http.Client, url string) (*serve.StatsResponse, error) {
	resp, err := client.Get(url + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// RunServeBench runs both phases for every shard count and returns the
// artifact. The returned error reports infrastructure failures; oracle
// mismatches and booking leaks are reported in the rows (CI asserts on
// them).
func RunServeBench(cfg ServeConfig) (*ServeResult, error) {
	cfg = cfg.Defaults()
	scfg := serve.Config{
		Workers:      cfg.Workers,
		QueueCap:     cfg.QueueCap,
		BatchMax:     cfg.BatchMax,
		FatTreeK:     cfg.FatTreeK,
		HostsPerEdge: cfg.HostsPerEdge,
	}.Defaults()

	// Synthesize the trace against the server fabric's host table.
	probe, err := serve.New(scfg)
	if err != nil {
		return nil, err
	}
	numHosts := probe.NumHosts()
	trace := serveTrace(cfg, numHosts)
	reqs := chunkRequests(trace, cfg.ChunkOps)
	intents := 0
	for _, op := range trace {
		if op.intent != nil {
			intents++
		}
	}

	oracle, oracleLeaks := oracleDigest(cfg, scfg, reqs)
	if oracleLeaks != 0 {
		return nil, fmt.Errorf("oracle replay leaked %d bookings", oracleLeaks)
	}
	res := &ServeResult{
		Jobs:         cfg.Jobs,
		Ops:          len(trace),
		Intents:      intents,
		Requests:     len(reqs),
		Conns:        cfg.Conns,
		ChunkOps:     cfg.ChunkOps,
		OracleDigest: fmt.Sprintf("%016x", oracle),
	}

	bodies := make([][]byte, len(reqs))
	for i, req := range reqs {
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	for _, shards := range cfg.ShardCounts {
		row := ServeShardResult{Shards: shards}

		// Phase 1 — sequential determinism replay on a logical clock:
		// every request commits before the next is sent, so batch
		// boundaries (and therefore placements) are fully determined by
		// the trace.
		sc := scfg
		sc.Shards = shards
		sc.Workers = cfg.Workers // re-defaulted below if zero
		sc.ClockHz = cfg.ClockHz
		sc = sc.Defaults()
		srv, err := serve.New(sc)
		if err != nil {
			return nil, err
		}
		srv.Start()
		ts := httptest.NewServer(srv.Handler())
		client := ts.Client()
		for i := range bodies {
			if err := postIngest(client, ts.URL, bodies[i]); err != nil {
				return nil, fmt.Errorf("shards=%d determinism phase: %w", shards, err)
			}
		}
		st, err := fetchStats(client, ts.URL)
		if err != nil {
			return nil, err
		}
		row.Digest = st.PlacementDigest
		row.DigestMatchesOracle = st.PlacementDigest == res.OracleDigest
		row.LeakedBookings = st.OutstandingBookings
		ts.Close()
		if err := srv.Shutdown(contextWithTimeout(5 * time.Second)); err != nil {
			return nil, err
		}

		// Phase 2 — concurrent throughput on the wall clock: jobs are
		// partitioned round-robin over connections (per-job op order
		// preserved within a connection), intents/sec measured end to
		// end, placement latency taken from the server's own
		// enqueue→commit samples.
		tc := scfg
		tc.Shards = shards
		tc.Workers = cfg.Workers
		tc = tc.Defaults()
		tsrv, err := serve.New(tc)
		if err != nil {
			return nil, err
		}
		tsrv.Start()
		tts := httptest.NewServer(tsrv.Handler())
		perConn := make([][]wireOp, cfg.Conns)
		for _, op := range trace {
			c := op.job % cfg.Conns
			perConn[c] = append(perConn[c], op)
		}
		var wg sync.WaitGroup
		errs := make([]error, cfg.Conns)
		begin := time.Now()
		for c := 0; c < cfg.Conns; c++ {
			connReqs := chunkRequests(perConn[c], cfg.ChunkOps)
			wg.Add(1)
			go func(c int, connReqs []*serve.IngestRequest) {
				defer wg.Done()
				cl := tts.Client()
				for _, req := range connReqs {
					b, err := json.Marshal(req)
					if err == nil {
						err = postIngest(cl, tts.URL, b)
					}
					if err != nil {
						errs[c] = err
						return
					}
				}
			}(c, connReqs)
		}
		wg.Wait()
		elapsed := time.Since(begin).Seconds()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("shards=%d throughput phase: %w", shards, err)
			}
		}
		tst, err := fetchStats(tts.Client(), tts.URL)
		if err != nil {
			return nil, err
		}
		row.IntentsPerSec = float64(intents) / elapsed
		row.OpsPerSec = float64(len(trace)) / elapsed
		row.PlacementP50Micros = tst.LatencyP50Micros
		row.PlacementP99Micros = tst.LatencyP99Micros
		row.Rejected429 = tst.RejectedTotal
		if tst.OutstandingBookings > row.LeakedBookings {
			row.LeakedBookings = tst.OutstandingBookings
		}
		tts.Close()
		if err := tsrv.Shutdown(contextWithTimeout(5 * time.Second)); err != nil {
			return nil, err
		}

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the artifact as the human-readable table the binary
// prints.
func (r *ServeResult) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "serve bench: %d jobs, %d ops (%d intents) in %d requests, %d conns, oracle %s\n",
		r.Jobs, r.Ops, r.Intents, r.Requests, r.Conns, r.OracleDigest)
	fmt.Fprintf(&b, "%-7s %-12s %-7s %-6s %12s %12s %10s %10s %8s\n",
		"shards", "digest==orc", "leaks", "429s", "intents/s", "ops/s", "p50(µs)", "p99(µs)", "digest")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7d %-12v %-7d %-6d %12.0f %12.0f %10.0f %10.0f %8.8s\n",
			row.Shards, row.DigestMatchesOracle, row.LeakedBookings, row.Rejected429,
			row.IntentsPerSec, row.OpsPerSec,
			row.PlacementP50Micros, row.PlacementP99Micros, row.Digest)
	}
	return b.String()
}

// contextWithTimeout is a leak-tolerant convenience for shutdown deadlines
// (the context is short-lived and the timer small).
func contextWithTimeout(d time.Duration) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	_ = cancel // released when the deadline passes
	return ctx
}
