package bench

import (
	"strings"
	"testing"
)

func TestFlowCombComparison(t *testing.T) {
	// E9 is calibrated at the quick scale (24 GB sort): at toy scales the
	// FlowComb-like detection delay exceeds the whole shuffle window.
	rows := RunFlowCombComparison(Scale{SortBytes: 24e9})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	ecmp, fc, py := rows[0], rows[1], rows[2]
	if ecmp.System != "ECMP" || fc.System != "FlowComb-like" || py.System != "Pythia" {
		t.Fatalf("row order: %+v", rows)
	}
	// Both predictive systems must clearly beat ECMP; between themselves
	// they sit within the timing slack (near-parity) — assert Pythia is
	// within 10% of the FlowComb-like configuration and vice versa.
	if fc.JobSec >= ecmp.JobSec || py.JobSec >= ecmp.JobSec {
		t.Fatalf("predictive systems did not beat ECMP: %+v", rows)
	}
	ratio := py.JobSec / fc.JobSec
	if ratio > 1.15 || ratio < 0.85 {
		t.Fatalf("Pythia/FlowComb ratio = %.2f, expected near-parity", ratio)
	}
}

func TestPartitionerComparison(t *testing.T) {
	rows := RunPartitionerComparison(Scale{SortBytes: 24e9})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.System] = r.JobSec
	}
	// The remedies compose: both together must beat either alone, and
	// every intervention must beat plain ECMP+hash.
	base := byName["ECMP + hash partitioner"]
	both := byName["Pythia + balanced partitioner"]
	for name, sec := range byName {
		if name == "ECMP + hash partitioner" {
			continue
		}
		if sec >= base {
			t.Fatalf("%s (%.1fs) did not beat the baseline (%.1fs)", name, sec, base)
		}
	}
	if both >= byName["Pythia + hash partitioner"] || both >= byName["ECMP + balanced partitioner"] {
		t.Fatalf("composition did not win: %+v", byName)
	}
}

func TestFormatRelatedTable(t *testing.T) {
	out := FormatRelatedTable("T", []RelatedRow{{System: "x", JobSec: 1.5}})
	if !strings.Contains(out, "x") || !strings.Contains(out, "1.5") {
		t.Fatalf("table: %s", out)
	}
}
