// Package bench is the experiment harness: one runner per table/figure in
// the paper's evaluation (§II motivation and §V results), each reproducing
// the corresponding workload, oversubscription setup, scheduler pairing and
// reported metric. See EXPERIMENTS.md for paper-vs-measured values.
package bench

import (
	"fmt"

	"pythia/internal/core"
	"pythia/internal/ecmp"
	"pythia/internal/flight"
	"pythia/internal/hadoop"
	"pythia/internal/hedera"
	"pythia/internal/instrument"
	"pythia/internal/mgmtnet"
	"pythia/internal/netflow"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Scheduler selects the flow-allocation scheme for a trial.
type Scheduler int

const (
	// ECMP is the paper's baseline: five-tuple hash modulo path count.
	ECMP Scheduler = iota
	// Pythia is the predictive scheme under evaluation.
	Pythia
	// Hedera is the reactive load-aware intermediate point (§II/§VI).
	Hedera
)

func (s Scheduler) String() string {
	switch s {
	case ECMP:
		return "ECMP"
	case Pythia:
		return "Pythia"
	case Hedera:
		return "Hedera"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// Oversub describes one oversubscription level, realized the way the paper
// did it: CBR background streams on the inter-rack trunks sized so the
// bandwidth left for Hadoop totals SpareTotal, split unevenly across the two
// trunks so that path choice matters (Fig. 1b shows 95% vs 25% occupancy).
type Oversub struct {
	// Label as printed in the figures ("none", "1:2", ...).
	Label string
	// Ratio N: Hadoop's usable inter-rack bandwidth is hostAggregate/N.
	// 0 means no background traffic at all.
	Ratio int
}

// StandardLevels are the sweep used for Figs. 3 and 4.
func StandardLevels() []Oversub {
	return []Oversub{
		{Label: "none", Ratio: 0},
		{Label: "1:2", Ratio: 2},
		{Label: "1:5", Ratio: 5},
		{Label: "1:10", Ratio: 10},
		{Label: "1:20", Ratio: 20},
	}
}

// spareFractions divides the spare trunk bandwidth asymmetrically across n
// trunks in proportion 1:2:…:n (for the paper's two trunks this is the
// Fig. 1b-style 30/70 imbalance that bounds the fully-network-bound
// ECMP-vs-optimal gap near the paper's 43–46% maxima).
func spareFractions(n int) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = float64(i + 1)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	// Calibrated two-trunk split.
	if n == 2 {
		w[0], w[1] = 0.30, 0.70
	}
	return w
}

// TrialConfig fully describes one simulated job run.
type TrialConfig struct {
	Spec      *hadoop.JobSpec
	Scheduler Scheduler
	Oversub   Oversub
	// Testbed shape; zero values take the paper's testbed (2 racks x 5
	// hosts, 2 trunks, 1 Gbps). Setting Spines > 0 switches to a
	// leaf-spine fabric with Leaves racks instead (the "larger-scale
	// future SDN setup" shape of §IV). Setting FatTreeK > 0 instead
	// builds a k-ary fat-tree with HostsPerRack hosts per edge switch
	// (defaulting to k/2 — the canonical full fat-tree) for the scale
	// benchmarks.
	HostsPerRack int
	Trunks       int
	Leaves       int
	Spines       int
	FatTreeK     int
	LinkBps      float64

	Hadoop     hadoop.Config
	PythiaCfg  core.Config
	HederaCfg  hedera.Config
	Instrument instrument.Config
	// DisableAggregation turns off Pythia's host-pair flow aggregation
	// (ablation A2).
	DisableAggregation bool
	// ExplicitControlPlane routes prediction notifications and FLOW_MOD
	// messages over a modeled management network (per-sender FIFO +
	// transmission time) instead of fixed latencies — the full §III
	// architecture.
	ExplicitControlPlane bool
	// InstallLatency overrides the controller's per-rule latency when
	// positive (ablation A4).
	InstallLatency sim.Duration
	Seed           uint64

	// CollectPrediction enables Fig. 5 instrumentation-efficacy capture
	// (per-host predicted and measured cumulative curves).
	CollectPrediction bool
	// CollectFlowHistory records every completed flow's identity and
	// timing in the result — the golden data for determinism tests.
	CollectFlowHistory bool
	// CollectFlight attaches the cross-plane flight recorder and scores the
	// run's prediction quality (lead time, late fraction, byte error) into
	// TrialResult.Quality. Pure observer: results are unchanged.
	CollectFlight bool
	// DisableIndexes reverts netsim telemetry and Pythia path scoring to
	// the pre-index full-scan reference implementations (scan baseline).
	// Results must be bit-identical either way; this knob exists so tests
	// can prove it and benchmarks can measure the difference. It takes
	// precedence over Alloc.
	DisableIndexes bool
	// Alloc selects the netsim allocator implementation: incremental
	// coalesced (default), the PR 1 eager indexed path, or the full-scan
	// reference. All three must produce bit-identical results.
	Alloc netsim.AllocMode
	// Sched selects the event-kernel scheduler (calendar queue by default;
	// SchedHeap is the original binary heap kept as the golden reference).
	// Both deliver events in the identical order, so results never change.
	Sched sim.SchedulerMode
	// AllocWorkers shards each allocation pass across connected components
	// onto a bounded worker pool when > 1. Any width is bit-identical to
	// serial (components write disjoint state and merge deterministically).
	AllocWorkers int
}

func (c TrialConfig) defaults() TrialConfig {
	if c.HostsPerRack == 0 {
		if c.FatTreeK > 0 {
			c.HostsPerRack = c.FatTreeK / 2
		} else {
			c.HostsPerRack = 5
		}
	}
	if c.Trunks == 0 {
		c.Trunks = 2
	}
	if c.LinkBps == 0 {
		c.LinkBps = topology.Gbps
	}
	if !c.PythiaCfg.Aggregate && !c.DisableAggregation {
		c.PythiaCfg = c.PythiaCfg.EnableAggregation()
	}
	return c
}

// TrialResult captures one run's outcome.
type TrialResult struct {
	JobSec     float64
	MapSec     float64
	ShuffleSec float64
	// Scheduler-specific metrics.
	RulesInstalled uint64
	HederaMoves    int
	Overhead       instrument.OverheadReport
	// Faults carries the prediction-plane robustness counters; all zero on
	// a healthy run.
	Faults FaultCounters
	// Fig. 5 capture (CollectPrediction only).
	Prediction *PredictionCapture
	// FlowHistory lists every completed flow in completion order
	// (CollectFlowHistory only).
	FlowHistory []FlowRecord
	// Quality scores the prediction plane's race against the shuffle
	// (CollectFlight only).
	Quality *flight.Quality
}

// FaultCounters aggregates one trial's prediction-plane fault and recovery
// accounting: collector dedup and TTL reclamation, monitor crash recovery,
// and management-network message faults. The scale-benchmark artifact
// includes these so the robustness trajectory stays comparable across
// revisions — a healthy run must keep them all at zero.
type FaultCounters struct {
	DedupHits        int
	DuplicateIntents int
	ExpiredBookings  int
	ExpiredIntents   int
	MonitorCrashes   int
	MissedSpills     int
	LateIntents      int
	InFlightDropped  int
	MgmtDropped      uint64
	MgmtDuplicated   uint64
	MgmtDeferred     uint64
}

// FlowRecord is one completed flow's identity and exact timing, used to
// compare runs for bit-identical behavior.
type FlowRecord struct {
	ID               netsim.FlowID
	Job, Map, Reduce int
	StartSec         float64
	EndSec           float64
}

// PredictionCapture is the Fig. 5 data: per source host, the predicted and
// measured cumulative curves with lead/accuracy statistics.
type PredictionCapture struct {
	Hosts []HostPrediction
}

// HostPrediction is one server's promptness/accuracy result.
type HostPrediction struct {
	Host         topology.NodeID
	Name         string
	MinLeadSec   float64
	MeanLeadSec  float64
	Overestimate float64
	Predicted    *netflow.PredictionCurve
	Measured     []netflow.Point
}

// teeSink records intents while forwarding them to Pythia (or swallowing
// them in baseline runs).
type teeSink struct {
	next    instrument.Sink
	intents []instrument.Intent
	ups     []instrument.ReducerUp
}

func (t *teeSink) ShuffleIntent(i instrument.Intent) {
	t.intents = append(t.intents, i)
	if t.next != nil {
		t.next.ShuffleIntent(i)
	}
}

func (t *teeSink) ReducerUp(u instrument.ReducerUp) {
	t.ups = append(t.ups, u)
	if t.next != nil {
		t.next.ReducerUp(u)
	}
}

func (t *teeSink) JobDone(job int) {
	if jd, ok := t.next.(instrument.JobDoneSink); ok {
		jd.JobDone(job)
	}
}

// nullSink drops messages (ECMP/Hedera runs still pay instrumentation cost
// in reality, but they do not consume the intents).
type nullSink struct{}

func (nullSink) ShuffleIntent(instrument.Intent) {}
func (nullSink) ReducerUp(instrument.ReducerUp)  {}

// RunTrial executes one job under the configured scheduler and
// oversubscription level.
func RunTrial(cfg TrialConfig) TrialResult {
	cfg = cfg.defaults()
	eng := sim.NewEngineMode(cfg.Sched)
	var (
		g      *topology.Graph
		hosts  []topology.NodeID
		trunks []topology.LinkID
	)
	if cfg.FatTreeK > 0 {
		// Scale fabric: oversubscription comes from the tree's own arity,
		// not injected background, so trunks stay empty.
		g, hosts = topology.FatTree(cfg.FatTreeK, cfg.HostsPerRack, cfg.LinkBps)
	} else if cfg.Spines > 0 {
		leaves := cfg.Leaves
		if leaves == 0 {
			leaves = 4
		}
		g, hosts = topology.LeafSpine(leaves, cfg.Spines, cfg.HostsPerRack, cfg.LinkBps)
		// The contended links are the leaf→spine uplinks; collect them
		// (both directions are handled by applyOversub via Reverse).
		for _, l := range g.Links() {
			from, to := g.Node(l.From), g.Node(l.To)
			if from.Kind == topology.Switch && to.Kind == topology.Switch && from.Rack >= 0 && to.Rack < 0 {
				trunks = append(trunks, l.ID)
			}
		}
	} else {
		g, hosts, trunks = topology.TwoRack(cfg.HostsPerRack, cfg.Trunks, cfg.LinkBps)
	}
	net := netsim.New(eng, g)
	alloc := cfg.Alloc
	if cfg.DisableIndexes {
		alloc = netsim.AllocScan
	}
	net.SetAllocMode(alloc)
	if cfg.AllocWorkers > 1 {
		net.SetAllocWorkers(cfg.AllocWorkers)
	}

	applyOversub(net, trunks, cfg)

	var resolver hadoop.PathResolver
	var ofc *openflow.Controller
	var hed *hedera.Scheduler
	var py *core.Pythia
	var sink instrument.Sink = nullSink{}
	var mn *mgmtnet.Network
	var fr *flight.Recorder
	if cfg.CollectFlight {
		// Guarded wiring: a typed-nil *Recorder in the producers' Sink
		// fields would defeat their nil checks.
		fr = flight.NewRecorder(eng)
		net.SetFlightRecorder(fr)
		cfg.Instrument.Flight = fr
	}
	if cfg.ExplicitControlPlane {
		mn = mgmtnet.New(eng, mgmtnet.Config{})
		cfg.Instrument.Mgmt = mn
		if fr != nil {
			mn.SetFlightRecorder(fr)
		}
	}
	switch cfg.Scheduler {
	case ECMP:
		resolver = ecmp.New(g, 2, cfg.Seed)
	case Pythia:
		ofc = openflow.NewController(eng, net, 0)
		if cfg.InstallLatency > 0 {
			ofc.InstallLatency = cfg.InstallLatency
		}
		if mn != nil {
			ofc.SetManagementNetwork(mn, topology.NodeID(-1))
		}
		py = core.New(eng, net, ofc, cfg.PythiaCfg)
		if alloc == netsim.AllocScan {
			py.SetScanBaseline(true)
		}
		if fr != nil {
			ofc.SetFlightRecorder(fr)
			py.SetFlightRecorder(fr)
		}
		resolver = ofc
		sink = py
	case Hedera:
		hcfg := cfg.HederaCfg
		if cfg.InstallLatency > 0 {
			hcfg.InstallLatency = cfg.InstallLatency
		}
		hed = hedera.New(eng, net, cfg.Seed, hcfg)
		resolver = hed
	default:
		panic(fmt.Sprintf("bench: unknown scheduler %d", cfg.Scheduler))
	}

	cluster := hadoop.NewCluster(eng, net, hosts, resolver, cfg.Hadoop)
	tee := &teeSink{next: sink}
	mw := instrument.Attach(eng, cluster, tee, cfg.Instrument)

	var nfc *netflow.Collector
	if cfg.CollectPrediction {
		nfc = netflow.NewCollector(eng, net, hosts, 0)
	}

	job, err := cluster.Submit(cfg.Spec)
	if err != nil {
		panic(fmt.Sprintf("bench: submit: %v", err))
	}
	eng.Run()
	if !job.Done {
		panic("bench: job did not complete")
	}

	res := TrialResult{
		JobSec:     float64(job.Duration()),
		MapSec:     float64(job.MapPhaseEnd.Sub(job.Submitted)),
		ShuffleSec: float64(job.ShuffleEnd.Sub(job.Submitted)),
		Overhead:   mw.Overhead(),
	}
	if ofc != nil {
		res.RulesInstalled = ofc.RulesInstalled
	}
	res.Faults = FaultCounters{
		MonitorCrashes:  mw.MonitorCrashes,
		MissedSpills:    mw.MissedSpills,
		LateIntents:     mw.LateIntents,
		InFlightDropped: mw.InFlightDropped,
	}
	if py != nil {
		res.Faults.DedupHits = py.DedupHits()
		res.Faults.DuplicateIntents = py.DuplicateIntents()
		res.Faults.ExpiredBookings = py.ExpiredBookings()
		res.Faults.ExpiredIntents = py.ExpiredIntents()
	}
	if mn != nil {
		res.Faults.MgmtDropped = mn.Dropped
		res.Faults.MgmtDuplicated = mn.Duplicated
		res.Faults.MgmtDeferred = mn.Deferred
	}
	if hed != nil {
		res.HederaMoves = hed.Moves
	}
	if cfg.CollectPrediction {
		res.Prediction = buildPredictionCapture(g, cluster, job, tee, nfc)
	}
	if fr != nil {
		q := flight.ComputeQuality(fr.Events())
		res.Quality = &q
	}
	if cfg.CollectFlowHistory {
		res.FlowHistory = make([]FlowRecord, 0, net.CompletedFlows())
		net.ForEachCompleted(func(f *netsim.Flow) {
			res.FlowHistory = append(res.FlowHistory, FlowRecord{
				ID:       f.ID,
				Job:      f.Job,
				Map:      f.Map,
				Reduce:   f.Reduce,
				StartSec: float64(f.Started()),
				EndSec:   float64(f.Finished()),
			})
		})
	}
	return res
}

// applyOversub loads the trunks with CBR background per the oversub level.
// Trunks are grouped by their upstream switch (one group on the two-rack
// testbed; one group per leaf on a leaf-spine), and each group's spare
// bandwidth — hostAggregate/N — is split asymmetrically across its members.
func applyOversub(net *netsim.Network, trunks []topology.LinkID, cfg TrialConfig) {
	if cfg.Oversub.Ratio <= 0 {
		return
	}
	g := net.Graph()
	groups := make(map[topology.NodeID][]topology.LinkID)
	var order []topology.NodeID
	for _, tr := range trunks {
		from := g.Link(tr).From
		if _, seen := groups[from]; !seen {
			order = append(order, from)
		}
		groups[from] = append(groups[from], tr)
	}
	hostAggregate := float64(cfg.HostsPerRack) * cfg.LinkBps
	for _, from := range order {
		members := groups[from]
		spareTotal := hostAggregate / float64(cfg.Oversub.Ratio)
		if max := float64(len(members)) * cfg.LinkBps; spareTotal > max {
			spareTotal = max
		}
		fracs := spareFractions(len(members))
		for i, tr := range members {
			spare := spareTotal * fracs[i]
			if spare > cfg.LinkBps {
				spare = cfg.LinkBps
			}
			load := cfg.LinkBps - spare
			net.SetBackground(tr, load)
			if r, ok := g.Reverse(tr); ok {
				net.SetBackground(r, load)
			}
		}
	}
}

// buildPredictionCapture assembles the Fig. 5 curves: predicted cumulative
// bytes per source host (counting only partitions whose reducer landed on a
// different server — local partitions never reach the wire) versus the
// NetFlow-measured cumulative TX bytes.
func buildPredictionCapture(g *topology.Graph, cluster *hadoop.Cluster, job *hadoop.Job, tee *teeSink, nfc *netflow.Collector) *PredictionCapture {
	reducerHost := make(map[int]topology.NodeID)
	for _, r := range job.Reduces {
		reducerHost[r.ID] = cluster.HostOf(r.Tracker)
	}
	curves := make(map[topology.NodeID]*netflow.PredictionCurve)
	for _, in := range tee.intents {
		if in.Job != job.ID {
			continue
		}
		remote := 0.0
		for r, bytes := range in.PredictedWireBytes {
			if reducerHost[r] != in.SrcHost {
				remote += bytes
			}
		}
		if remote <= 0 {
			continue
		}
		c := curves[in.SrcHost]
		if c == nil {
			c = &netflow.PredictionCurve{}
			curves[in.SrcHost] = c
		}
		c.Add(in.EmittedAt, remote)
	}
	out := &PredictionCapture{}
	for _, h := range cluster.Hosts() {
		c := curves[h]
		if c == nil {
			continue
		}
		min, mean, over, ok := netflow.LeadStats(c, nfc, h, 20)
		if !ok {
			continue
		}
		out.Hosts = append(out.Hosts, HostPrediction{
			Host:         h,
			Name:         g.Node(h).Name,
			MinLeadSec:   float64(min),
			MeanLeadSec:  float64(mean),
			Overestimate: over,
			Predicted:    c,
			Measured:     nfc.Series(h),
		})
	}
	return out
}
