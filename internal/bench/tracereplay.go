package bench

import (
	"fmt"
	"strings"

	"pythia/internal/core"
	"pythia/internal/ecmp"
	"pythia/internal/hadoop"
	"pythia/internal/hedera"
	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/stats"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

// TraceResult summarizes one trace replay.
type TraceResult struct {
	Jobs        int
	MakespanSec float64
	MeanJobSec  float64
	P95JobSec   float64
	// ShuffleFraction is Σ per-job shuffle-phase time (map-phase end to
	// barrier) over Σ job time — the statistic behind the paper's
	// motivating "33% of the execution time ... spent at the shuffle
	// phase" Facebook measurement.
	ShuffleFraction float64
}

// RunTraceReplay (E13) replays a synthesized Facebook/SWIM-shaped job
// stream — Poisson arrivals, heavy-tailed inputs, a mixed map-heavy /
// transform / shuffle-heavy class distribution — under the given scheduler
// and oversubscription level on the paper testbed.
func RunTraceReplay(scheduler Scheduler, lvl Oversub, tcfg workload.TraceConfig) TraceResult {
	return runTraceReplayAlloc(scheduler, lvl, tcfg, netsim.AllocIncremental)
}

// runTraceReplayAlloc is RunTraceReplay with an explicit allocator mode, so
// the golden tests can replay the same trace under the coalesced and
// scan-baseline allocators.
func runTraceReplayAlloc(scheduler Scheduler, lvl Oversub, tcfg workload.TraceConfig, alloc netsim.AllocMode) TraceResult {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	net.SetAllocMode(alloc)
	applyOversub(net, trunks, TrialConfig{Oversub: lvl}.defaults())

	var resolver hadoop.PathResolver
	var sink instrument.Sink = nullSink{}
	switch scheduler {
	case ECMP:
		resolver = ecmp.New(g, 2, 1)
	case Pythia:
		ofc := openflow.NewController(eng, net, 0)
		py := core.New(eng, net, ofc, core.Config{}.EnableAggregation())
		if alloc == netsim.AllocScan {
			py.SetScanBaseline(true)
		}
		sink = py
		resolver = ofc
	case Hedera:
		resolver = hedera.New(eng, net, 1, hedera.Config{})
	default:
		panic(fmt.Sprintf("bench: unknown scheduler %d", scheduler))
	}
	cluster := hadoop.NewCluster(eng, net, hosts, resolver, hadoop.Config{})
	instrument.Attach(eng, cluster, sink, instrument.Config{})

	trace := workload.SyntheticFacebookTrace(tcfg)
	jobs := make([]*hadoop.Job, 0, len(trace))
	for _, tj := range trace {
		tj := tj
		eng.At(sim.Time(tj.SubmitAtSec), func() {
			j, err := cluster.Submit(tj.Spec)
			if err != nil {
				panic(fmt.Sprintf("bench: trace submit: %v", err))
			}
			jobs = append(jobs, j)
		})
	}
	eng.Run()

	res := TraceResult{Jobs: len(jobs)}
	var durations []float64
	var totalTime, totalShuffle float64
	for _, j := range jobs {
		if !j.Done {
			panic("bench: trace job did not complete")
		}
		d := float64(j.Duration())
		durations = append(durations, d)
		totalTime += d
		if float64(j.Finished) > res.MakespanSec {
			res.MakespanSec = float64(j.Finished)
		}
		shuffle := float64(j.ShuffleEnd.Sub(j.MapPhaseEnd))
		if shuffle > 0 {
			totalShuffle += shuffle
		}
	}
	s := stats.Summarize(durations)
	res.MeanJobSec = s.Mean
	res.P95JobSec = s.P95
	if totalTime > 0 {
		res.ShuffleFraction = totalShuffle / totalTime
	}
	return res
}

// TraceComparison pairs the replay under ECMP and Pythia.
type TraceComparison struct {
	ECMP   TraceResult
	Pythia TraceResult
	// MeanJobSpeedup is the paper-style relative improvement on mean job
	// completion time.
	MeanJobSpeedup float64
}

// RunTraceComparison (E13) replays the same trace under both schedulers at
// the given level.
func RunTraceComparison(lvl Oversub, seed uint64) TraceComparison {
	tcfg := workload.TraceConfig{Seed: seed}
	e := RunTraceReplay(ECMP, lvl, tcfg)
	p := RunTraceReplay(Pythia, lvl, tcfg)
	return TraceComparison{
		ECMP:           e,
		Pythia:         p,
		MeanJobSpeedup: stats.Speedup(e.MeanJobSec, p.MeanJobSec),
	}
}

// RunTrace (E13) averages the comparison over several trace seeds at 1:10.
// Every (seed, scheduler) replay is independent, so they all fan out across
// the worker pool; aggregation keeps the serial seed order so the result is
// identical at any parallelism.
func RunTrace() TraceComparison {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	results := make([]TraceResult, 2*len(ablationSeeds))
	forEachIndex(len(results), func(i int) {
		tcfg := workload.TraceConfig{Seed: ablationSeeds[i/2]}
		sch := ECMP
		if i%2 == 1 {
			sch = Pythia
		}
		results[i] = RunTraceReplay(sch, lvl, tcfg)
	})
	var agg TraceComparison
	n := float64(len(ablationSeeds))
	for i := range ablationSeeds {
		c := TraceComparison{ECMP: results[2*i], Pythia: results[2*i+1]}
		c.MeanJobSpeedup = stats.Speedup(c.ECMP.MeanJobSec, c.Pythia.MeanJobSec)
		agg.ECMP.Jobs = c.ECMP.Jobs
		agg.Pythia.Jobs = c.Pythia.Jobs
		agg.ECMP.MakespanSec += c.ECMP.MakespanSec / n
		agg.Pythia.MakespanSec += c.Pythia.MakespanSec / n
		agg.ECMP.MeanJobSec += c.ECMP.MeanJobSec / n
		agg.Pythia.MeanJobSec += c.Pythia.MeanJobSec / n
		agg.ECMP.P95JobSec += c.ECMP.P95JobSec / n
		agg.Pythia.P95JobSec += c.Pythia.P95JobSec / n
		agg.ECMP.ShuffleFraction += c.ECMP.ShuffleFraction / n
		agg.Pythia.ShuffleFraction += c.Pythia.ShuffleFraction / n
	}
	agg.MeanJobSpeedup = stats.Speedup(agg.ECMP.MeanJobSec, agg.Pythia.MeanJobSec)
	return agg
}

// FormatTraceComparison renders the E13 result.
func FormatTraceComparison(c TraceComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== E13: Facebook/SWIM-shaped trace replay (%d jobs, 1:10) ===\n", c.ECMP.Jobs)
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %16s\n", "sched", "makespan(s)", "mean job(s)", "p95 job(s)", "shuffle fraction")
	for _, row := range []struct {
		name string
		r    TraceResult
	}{{"ECMP", c.ECMP}, {"Pythia", c.Pythia}} {
		fmt.Fprintf(&b, "%-8s %12.1f %12.1f %12.1f %15.1f%%\n",
			row.name, row.r.MakespanSec, row.r.MeanJobSec, row.r.P95JobSec, row.r.ShuffleFraction*100)
	}
	fmt.Fprintf(&b, "mean-job speedup: %.1f%% (paper motivation: FB traces spend ~33%% of job time in shuffle)\n",
		c.MeanJobSpeedup*100)
	return b.String()
}
