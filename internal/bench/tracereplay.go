package bench

import (
	"fmt"
	"strings"

	"pythia/internal/core"
	"pythia/internal/ecmp"
	"pythia/internal/hadoop"
	"pythia/internal/hedera"
	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/stats"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

// TraceResult summarizes one trace replay.
type TraceResult struct {
	Jobs        int
	MakespanSec float64
	MeanJobSec  float64
	P95JobSec   float64
	// ShuffleFraction is Σ per-job shuffle-phase time (map-phase end to
	// barrier) over Σ job time — the statistic behind the paper's
	// motivating "33% of the execution time ... spent at the shuffle
	// phase" Facebook measurement.
	ShuffleFraction float64
	// Starved counts jobs that had not completed when the replay stopped
	// (deadline hit or drained without progress); zero on a healthy run.
	Starved int
	// Durations holds the completed jobs' completion times so cross-seed
	// aggregation can pool samples before taking percentiles. Excluded
	// from JSON artifacts.
	Durations []float64 `json:"-"`
}

// TraceReplayOptions are the optional knobs of TryRunTraceReplay.
type TraceReplayOptions struct {
	// Alloc selects the netsim allocator mode (incremental by default), so
	// the golden tests can replay the same trace under the coalesced and
	// scan-baseline allocators.
	Alloc netsim.AllocMode
	// DeadlineSec bounds the replay in simulated seconds; 0 runs until the
	// event queue drains. With a deadline, jobs still running when it hits
	// are reported as starved instead of looping in virtual time.
	DeadlineSec float64
}

// RunTraceReplay (E13) replays a synthesized Facebook/SWIM-shaped job
// stream — Poisson arrivals, heavy-tailed inputs, a mixed map-heavy /
// transform / shuffle-heavy class distribution — under the given scheduler
// and oversubscription level on the paper testbed. It panics if any job
// fails to complete; deadline-bounded and saturation-tolerant callers use
// TryRunTraceReplay.
func RunTraceReplay(scheduler Scheduler, lvl Oversub, tcfg workload.TraceConfig) TraceResult {
	res, err := TryRunTraceReplay(scheduler, lvl, tcfg, TraceReplayOptions{})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return res
}

// runTraceReplayAlloc is the golden tests' panicking wrapper with an
// explicit allocator mode.
func runTraceReplayAlloc(scheduler Scheduler, lvl Oversub, tcfg workload.TraceConfig, alloc netsim.AllocMode) TraceResult {
	res, err := TryRunTraceReplay(scheduler, lvl, tcfg, TraceReplayOptions{Alloc: alloc})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return res
}

// TryRunTraceReplay replays the trace and reports failures as errors the
// way pythia.TryRunJobs does: submission errors and starved jobs yield a
// non-nil error alongside the statistics of whatever did complete, so
// deadline-bounded and saturated runs stay measurable instead of
// panicking.
func TryRunTraceReplay(scheduler Scheduler, lvl Oversub, tcfg workload.TraceConfig, opts TraceReplayOptions) (TraceResult, error) {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	net.SetAllocMode(opts.Alloc)
	applyOversub(net, trunks, TrialConfig{Oversub: lvl}.defaults())

	var resolver hadoop.PathResolver
	var sink instrument.Sink = nullSink{}
	switch scheduler {
	case ECMP:
		resolver = ecmp.New(g, 2, 1)
	case Pythia:
		ofc := openflow.NewController(eng, net, 0)
		py := core.New(eng, net, ofc, core.Config{}.EnableAggregation())
		if opts.Alloc == netsim.AllocScan {
			py.SetScanBaseline(true)
		}
		sink = py
		resolver = ofc
	case Hedera:
		resolver = hedera.New(eng, net, 1, hedera.Config{})
	default:
		return TraceResult{}, fmt.Errorf("unknown scheduler %d", scheduler)
	}
	cluster := hadoop.NewCluster(eng, net, hosts, resolver, hadoop.Config{})
	instrument.Attach(eng, cluster, sink, instrument.Config{})

	trace := workload.SyntheticFacebookTrace(tcfg)
	jobs := make([]*hadoop.Job, 0, len(trace))
	specs := make([]*hadoop.JobSpec, 0, len(trace))
	var submitErr error
	for _, tj := range trace {
		tj := tj
		eng.At(sim.Time(tj.SubmitAtSec), func() {
			j, err := cluster.Submit(tj.Spec)
			if err != nil {
				if submitErr == nil {
					submitErr = fmt.Errorf("trace submit %q: %w", tj.Spec.Name, err)
				}
				return
			}
			jobs = append(jobs, j)
			specs = append(specs, tj.Spec)
		})
	}
	if opts.DeadlineSec > 0 {
		eng.RunUntil(sim.Time(opts.DeadlineSec))
	} else {
		eng.Run()
	}
	if submitErr != nil {
		return TraceResult{}, submitErr
	}

	res := TraceResult{Jobs: len(jobs)}
	var starved []string
	var totalTime, totalShuffle float64
	for i, j := range jobs {
		if !j.Done {
			starved = append(starved, specs[i].Name)
			continue
		}
		d := float64(j.Duration())
		res.Durations = append(res.Durations, d)
		totalTime += d
		if float64(j.Finished) > res.MakespanSec {
			res.MakespanSec = float64(j.Finished)
		}
		shuffle := float64(j.ShuffleEnd.Sub(j.MapPhaseEnd))
		if shuffle > 0 {
			totalShuffle += shuffle
		}
	}
	res.Starved = len(starved)
	s := stats.Summarize(res.Durations)
	res.MeanJobSec = s.Mean
	res.P95JobSec = s.P95
	if totalTime > 0 {
		res.ShuffleFraction = totalShuffle / totalTime
	}
	if len(starved) > 0 {
		return res, fmt.Errorf("%d of %d trace jobs did not complete (starved network or deadline hit): %v",
			len(starved), len(jobs), starved)
	}
	return res, nil
}

// TraceComparison pairs the replay under ECMP and Pythia.
type TraceComparison struct {
	ECMP   TraceResult
	Pythia TraceResult
	// MeanJobSpeedup is the paper-style relative improvement on mean job
	// completion time.
	MeanJobSpeedup float64
}

// RunTraceComparison (E13) replays the same trace under both schedulers at
// the given level.
func RunTraceComparison(lvl Oversub, seed uint64) TraceComparison {
	tcfg := workload.TraceConfig{Seed: seed}
	e := RunTraceReplay(ECMP, lvl, tcfg)
	p := RunTraceReplay(Pythia, lvl, tcfg)
	return TraceComparison{
		ECMP:           e,
		Pythia:         p,
		MeanJobSpeedup: stats.Speedup(e.MeanJobSec, p.MeanJobSec),
	}
}

// poolTraceResults aggregates per-seed replays of one scheduler by pooling
// the per-job duration samples and computing statistics once — averaging
// per-seed P95s is NOT a P95 (percentiles do not commute with means, and
// on the trace's heavy-tailed durations the two visibly diverge).
// MakespanSec stays a cross-seed mean: it is a per-replay scalar, not a
// sample statistic. ShuffleFraction pools duration-weighted, recovering
// Σ shuffle over Σ time across every job of every seed.
func poolTraceResults(rs []TraceResult) TraceResult {
	var agg TraceResult
	if len(rs) == 0 {
		return agg
	}
	var pooled []float64
	var totalTime, totalShuffle float64
	for _, r := range rs {
		agg.Jobs = r.Jobs
		agg.Starved += r.Starved
		agg.MakespanSec += r.MakespanSec / float64(len(rs))
		pooled = append(pooled, r.Durations...)
		var t float64
		for _, d := range r.Durations {
			t += d
		}
		totalTime += t
		totalShuffle += r.ShuffleFraction * t
	}
	agg.Durations = pooled
	s := stats.Summarize(pooled)
	agg.MeanJobSec = s.Mean
	agg.P95JobSec = s.P95
	if totalTime > 0 {
		agg.ShuffleFraction = totalShuffle / totalTime
	}
	return agg
}

// RunTrace (E13) aggregates the comparison over several trace seeds at
// 1:10, pooling the per-job samples across seeds. Every (seed, scheduler)
// replay is independent, so they all fan out across the worker pool;
// aggregation keeps the serial seed order so the result is identical at
// any parallelism.
func RunTrace() TraceComparison {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	results := make([]TraceResult, 2*len(ablationSeeds))
	forEachIndex(len(results), func(i int) {
		tcfg := workload.TraceConfig{Seed: ablationSeeds[i/2]}
		sch := ECMP
		if i%2 == 1 {
			sch = Pythia
		}
		results[i] = RunTraceReplay(sch, lvl, tcfg)
	})
	ecmpRuns := make([]TraceResult, 0, len(ablationSeeds))
	pyRuns := make([]TraceResult, 0, len(ablationSeeds))
	for i := range ablationSeeds {
		ecmpRuns = append(ecmpRuns, results[2*i])
		pyRuns = append(pyRuns, results[2*i+1])
	}
	agg := TraceComparison{
		ECMP:   poolTraceResults(ecmpRuns),
		Pythia: poolTraceResults(pyRuns),
	}
	agg.MeanJobSpeedup = stats.Speedup(agg.ECMP.MeanJobSec, agg.Pythia.MeanJobSec)
	return agg
}

// FormatTraceComparison renders the E13 result.
func FormatTraceComparison(c TraceComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== E13: Facebook/SWIM-shaped trace replay (%d jobs, 1:10) ===\n", c.ECMP.Jobs)
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %16s\n", "sched", "makespan(s)", "mean job(s)", "p95 job(s)", "shuffle fraction")
	for _, row := range []struct {
		name string
		r    TraceResult
	}{{"ECMP", c.ECMP}, {"Pythia", c.Pythia}} {
		fmt.Fprintf(&b, "%-8s %12.1f %12.1f %12.1f %15.1f%%\n",
			row.name, row.r.MakespanSec, row.r.MeanJobSec, row.r.P95JobSec, row.r.ShuffleFraction*100)
	}
	fmt.Fprintf(&b, "mean-job speedup: %.1f%% (paper motivation: FB traces spend ~33%% of job time in shuffle)\n",
		c.MeanJobSpeedup*100)
	return b.String()
}
