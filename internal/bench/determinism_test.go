package bench

import (
	"reflect"
	"testing"

	"pythia/internal/core"
	"pythia/internal/hadoop"
	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

func flowHistoriesEqual(t *testing.T, indexed, scan []FlowRecord, label string) {
	t.Helper()
	if len(indexed) == 0 {
		t.Fatalf("%s: empty flow history", label)
	}
	if len(indexed) != len(scan) {
		t.Fatalf("%s: history lengths differ: indexed %d vs scan %d",
			label, len(indexed), len(scan))
	}
	for i := range indexed {
		// Exact comparison on purpose: the indexed hot paths must be
		// bit-identical to the reference scans, not merely close.
		if indexed[i] != scan[i] {
			t.Fatalf("%s: flow %d diverged:\nindexed %+v\nscan    %+v",
				label, i, indexed[i], scan[i])
		}
	}
}

// The Fig. 4 shape — a sort under oversubscription scheduled by Pythia —
// must produce bit-identical flow completion times across all three
// allocator implementations: incremental coalesced (the default), the PR 1
// eager indexed path, and the full-scan reference.
func TestAllocatorsMatchOnSortTrial(t *testing.T) {
	run := func(alloc netsim.AllocMode) []FlowRecord {
		return RunTrial(TrialConfig{
			Spec:               workload.Sort(2*workload.GB, 8, 42),
			Scheduler:          Pythia,
			Oversub:            Oversub{Label: "1:5", Ratio: 5},
			Seed:               42,
			Alloc:              alloc,
			CollectFlowHistory: true,
		}).FlowHistory
	}
	inc := run(netsim.AllocIncremental)
	flowHistoriesEqual(t, inc, run(netsim.AllocIndexed), "sort 1:5 incremental vs indexed")
	flowHistoriesEqual(t, inc, run(netsim.AllocScan), "sort 1:5 incremental vs scan")
}

// Same guarantee under the §IV fault-tolerance scenario: a trunk failure
// mid-job exercises reroutes, re-placements and the index maintenance on
// every one of those transitions.
func TestIndexedMatchesScanUnderLinkFailure(t *testing.T) {
	run := func(alloc netsim.AllocMode) []FlowRecord {
		eng := sim.NewEngine()
		g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
		net := netsim.New(eng, g)
		net.SetAllocMode(alloc)
		ofc := openflow.NewController(eng, net, 0)
		py := core.New(eng, net, ofc, core.Config{}.EnableAggregation())
		if alloc == netsim.AllocScan {
			py.SetScanBaseline(true)
		}
		cluster := hadoop.NewCluster(eng, net, hosts, ofc, hadoop.Config{})
		instrument.Attach(eng, cluster, py, instrument.Config{})
		job, err := cluster.Submit(workload.Sort(8*workload.GB, 8, 5))
		if err != nil {
			t.Fatal(err)
		}
		eng.At(20, func() {
			ofc.FailLink(trunks[0])
			if rev, ok := g.Reverse(trunks[0]); ok {
				g.SetLinkUp(rev, false)
			}
		})
		eng.Run()
		if !job.Done {
			t.Fatal("job did not survive the trunk failure")
		}
		var out []FlowRecord
		for _, f := range net.History() {
			out = append(out, FlowRecord{ID: f.ID, Job: f.Job, Map: f.Map,
				Reduce: f.Reduce, StartSec: float64(f.Started()), EndSec: float64(f.Finished())})
		}
		return out
	}
	inc := run(netsim.AllocIncremental)
	flowHistoriesEqual(t, inc, run(netsim.AllocIndexed), "trunk failure incremental vs indexed")
	flowHistoriesEqual(t, inc, run(netsim.AllocScan), "trunk failure incremental vs scan")
}

// The scale harness itself must be deterministic across the toggle — this is
// the correctness side of BenchmarkScaleFatTree's speedup claim.
func TestScaleFatTreeDeterminism(t *testing.T) {
	inc := RunScaleFatTree(ScaleFatTreeConfig{K: 4})
	indexed := RunScaleFatTree(ScaleFatTreeConfig{K: 4, Alloc: netsim.AllocIndexed})
	scan := RunScaleFatTree(ScaleFatTreeConfig{K: 4, DisableIndexes: true})
	if inc.Hosts != 16 {
		t.Fatalf("k=4 fat-tree hosts = %d, want 16", inc.Hosts)
	}
	if inc.JobSec != indexed.JobSec || inc.JobSec != scan.JobSec {
		t.Fatalf("job time diverged: incremental %v, indexed %v, scan %v",
			inc.JobSec, indexed.JobSec, scan.JobSec)
	}
	flowHistoriesEqual(t, inc.FlowHistory, indexed.FlowHistory, "fat-tree k=4 incremental vs indexed")
	flowHistoriesEqual(t, inc.FlowHistory, scan.FlowHistory, "fat-tree k=4 incremental vs scan")
}

// The calendar-queue event kernel must deliver the exact event order of the
// reference binary heap: a full oversubscribed sort trial is the
// integration-level witness (the unit-level one is the randomized storm in
// internal/sim).
func TestSchedulerModesMatchOnSortTrial(t *testing.T) {
	run := func(mode sim.SchedulerMode) []FlowRecord {
		return RunTrial(TrialConfig{
			Spec:               workload.Sort(2*workload.GB, 8, 42),
			Scheduler:          Pythia,
			Oversub:            Oversub{Label: "1:5", Ratio: 5},
			Seed:               42,
			Sched:              mode,
			CollectFlowHistory: true,
		}).FlowHistory
	}
	cal := run(sim.SchedCalendar)
	flowHistoriesEqual(t, cal, run(sim.SchedHeap), "sort 1:5 calendar vs heap")
}

// Sharding the allocation pass across connected components must be
// bit-identical to the serial pass at any worker-pool width — here proven on
// a full fat-tree trial where every pass sees many simultaneous components.
func TestAllocWorkersMatchOnFatTreeTrial(t *testing.T) {
	serial := RunScaleFatTree(ScaleFatTreeConfig{K: 4})
	for _, w := range []int{2, 8} {
		sharded := RunScaleFatTree(ScaleFatTreeConfig{K: 4, AllocWorkers: w})
		if serial.JobSec != sharded.JobSec {
			t.Fatalf("workers=%d: job time diverged: serial %v, sharded %v",
				w, serial.JobSec, sharded.JobSec)
		}
		flowHistoriesEqual(t, serial.FlowHistory, sharded.FlowHistory,
			"fat-tree k=4 serial vs sharded")
	}
}

// The trace replay exercises multi-job churn (Poisson arrivals, queueing,
// overlapping shuffles); its summary statistics must be identical under the
// coalesced and scan-baseline allocators.
func TestTraceReplayAllocatorsMatch(t *testing.T) {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	tcfg := workload.TraceConfig{Seed: 9}
	inc := runTraceReplayAlloc(Pythia, lvl, tcfg, netsim.AllocIncremental)
	scan := runTraceReplayAlloc(Pythia, lvl, tcfg, netsim.AllocScan)
	if !reflect.DeepEqual(inc, scan) {
		t.Fatalf("trace replay diverged:\nincremental %+v\nscan        %+v", inc, scan)
	}
	if inc.Jobs == 0 || inc.MakespanSec <= 0 {
		t.Fatalf("degenerate trace result: %+v", inc)
	}
}
