package bench

import (
	"testing"

	"pythia/internal/core"
	"pythia/internal/hadoop"
	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

func flowHistoriesEqual(t *testing.T, indexed, scan []FlowRecord, label string) {
	t.Helper()
	if len(indexed) == 0 {
		t.Fatalf("%s: empty flow history", label)
	}
	if len(indexed) != len(scan) {
		t.Fatalf("%s: history lengths differ: indexed %d vs scan %d",
			label, len(indexed), len(scan))
	}
	for i := range indexed {
		// Exact comparison on purpose: the indexed hot paths must be
		// bit-identical to the reference scans, not merely close.
		if indexed[i] != scan[i] {
			t.Fatalf("%s: flow %d diverged:\nindexed %+v\nscan    %+v",
				label, i, indexed[i], scan[i])
		}
	}
}

// The Fig. 4 shape — a sort under oversubscription scheduled by Pythia —
// must produce bit-identical flow completion times with and without the
// per-link occupancy indexes.
func TestIndexedMatchesScanOnSortTrial(t *testing.T) {
	run := func(scan bool) []FlowRecord {
		return RunTrial(TrialConfig{
			Spec:               workload.Sort(2*workload.GB, 8, 42),
			Scheduler:          Pythia,
			Oversub:            Oversub{Label: "1:5", Ratio: 5},
			Seed:               42,
			DisableIndexes:     scan,
			CollectFlowHistory: true,
		}).FlowHistory
	}
	flowHistoriesEqual(t, run(false), run(true), "sort 1:5")
}

// Same guarantee under the §IV fault-tolerance scenario: a trunk failure
// mid-job exercises reroutes, re-placements and the index maintenance on
// every one of those transitions.
func TestIndexedMatchesScanUnderLinkFailure(t *testing.T) {
	run := func(scan bool) []FlowRecord {
		eng := sim.NewEngine()
		g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
		net := netsim.New(eng, g)
		if scan {
			net.SetScanBaseline(true)
		}
		ofc := openflow.NewController(eng, net, 0)
		py := core.New(eng, net, ofc, core.Config{}.EnableAggregation())
		if scan {
			py.SetScanBaseline(true)
		}
		cluster := hadoop.NewCluster(eng, net, hosts, ofc, hadoop.Config{})
		instrument.Attach(eng, cluster, py, instrument.Config{})
		job, err := cluster.Submit(workload.Sort(8*workload.GB, 8, 5))
		if err != nil {
			t.Fatal(err)
		}
		eng.At(20, func() {
			ofc.FailLink(trunks[0])
			if rev, ok := g.Reverse(trunks[0]); ok {
				g.SetLinkUp(rev, false)
			}
		})
		eng.Run()
		if !job.Done {
			t.Fatal("job did not survive the trunk failure")
		}
		var out []FlowRecord
		for _, f := range net.History() {
			out = append(out, FlowRecord{ID: f.ID, Job: f.Job, Map: f.Map,
				Reduce: f.Reduce, StartSec: float64(f.Started()), EndSec: float64(f.Finished())})
		}
		return out
	}
	flowHistoriesEqual(t, run(false), run(true), "trunk failure")
}

// The scale harness itself must be deterministic across the toggle — this is
// the correctness side of BenchmarkScaleFatTree's speedup claim.
func TestScaleFatTreeDeterminism(t *testing.T) {
	indexed := RunScaleFatTree(ScaleFatTreeConfig{K: 4})
	scan := RunScaleFatTree(ScaleFatTreeConfig{K: 4, DisableIndexes: true})
	if indexed.Hosts != 16 {
		t.Fatalf("k=4 fat-tree hosts = %d, want 16", indexed.Hosts)
	}
	if indexed.JobSec != scan.JobSec {
		t.Fatalf("job time diverged: indexed %v vs scan %v", indexed.JobSec, scan.JobSec)
	}
	flowHistoriesEqual(t, indexed.FlowHistory, scan.FlowHistory, "fat-tree k=4")
}
