package bench

import (
	"strings"
	"testing"
)

func TestAblationKPaths(t *testing.T) {
	rows := RunAblationKPaths(tinyScale())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// k=1 (single path) must not beat k=4 (full diversity); all share the
	// same ECMP baseline.
	k1, k4 := rows[0], rows[2]
	if k1.Param != "k=1" || k4.Param != "k=4" {
		t.Fatalf("unexpected params: %v %v", k1.Param, k4.Param)
	}
	if k4.PythiaSec > k1.PythiaSec+1e-6 {
		t.Fatalf("k=4 (%.1fs) slower than k=1 (%.1fs)", k4.PythiaSec, k1.PythiaSec)
	}
	for _, r := range rows[1:] {
		if r.ECMPSec != rows[0].ECMPSec {
			t.Fatal("baseline differs across rows")
		}
	}
}

func TestAblationAggregation(t *testing.T) {
	rows := RunAblationAggregation(tinyScale())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Param != "aggregation=on" || rows[1].Param != "aggregation=off" {
		t.Fatalf("params: %+v", rows)
	}
	// Both must complete; aggregation-on should not be worse.
	if rows[0].PythiaSec > rows[1].PythiaSec*1.10 {
		t.Fatalf("aggregation on (%.1fs) much worse than off (%.1fs)",
			rows[0].PythiaSec, rows[1].PythiaSec)
	}
}

func TestAblationPredictionDelay(t *testing.T) {
	rows := RunAblationPredictionDelay(tinyScale())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Massive delay (15 s) must not beat prompt prediction.
	prompt, late := rows[0], rows[3]
	if late.PythiaSec < prompt.PythiaSec-1e-6 {
		t.Fatalf("late predictions (%.1fs) beat prompt (%.1fs)", late.PythiaSec, prompt.PythiaSec)
	}
}

func TestAblationInstallLatency(t *testing.T) {
	rows := RunAblationInstallLatency(tinyScale())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	fast, slow := rows[0], rows[3]
	if slow.PythiaSec < fast.PythiaSec-1e-6 {
		t.Fatalf("500ms installs (%.1fs) beat 1ms (%.1fs)", slow.PythiaSec, fast.PythiaSec)
	}
}

func TestFormatAblationTable(t *testing.T) {
	out := FormatAblationTable("A1", []AblationRow{{Param: "k=2", PythiaSec: 10, ECMPSec: 12, Speedup: 0.2}})
	if !strings.Contains(out, "k=2") || !strings.Contains(out, "20.0%") {
		t.Fatalf("table: %s", out)
	}
}

func TestAblationTimelinessInsensitive(t *testing.T) {
	rows := RunAblationTimeliness(tinyScale())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var minLeads, meanLeads []float64
	for _, r := range rows {
		if r.MinLeadSec <= 0 {
			t.Fatalf("%s: prediction not ahead (min lead %v)", r.Param, r.MinLeadSec)
		}
		minLeads = append(minLeads, r.MinLeadSec)
		meanLeads = append(meanLeads, r.MeanLeadSec)
	}
	// The §V-C insensitivity claim: varying parallel copies and poll
	// periods must not change the order of magnitude of the lead.
	spread := func(xs []float64) float64 {
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi / lo
	}
	if spread(meanLeads) > 5 {
		t.Fatalf("mean lead varies %vx across Hadoop settings", spread(meanLeads))
	}
	_ = minLeads
}

func TestFormatTimelinessTable(t *testing.T) {
	out := FormatTimelinessTable("A7", []TimelinessRow{{Param: "x", MinLeadSec: 1, MeanLeadSec: 2}})
	if !strings.Contains(out, "min lead") || !strings.Contains(out, "x") {
		t.Fatalf("table: %s", out)
	}
}
