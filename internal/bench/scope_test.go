package bench

import (
	"strings"
	"testing"
)

func TestAblationScope(t *testing.T) {
	rows := RunAblationScope(tinyScale())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Rules*3 > rows[0].Rules {
		t.Fatalf("rack-pair rules %d not much fewer than host-pair %d", rows[1].Rules, rows[0].Rules)
	}
	if rows[1].PythiaSec > rows[0].PythiaSec*2.5 {
		t.Fatalf("rack scope time %.1f far worse than host scope %.1f", rows[1].PythiaSec, rows[0].PythiaSec)
	}
}

func TestAblationCriticalityParity(t *testing.T) {
	rows := RunAblationCriticality(tinyScale())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	off, on := rows[0].PythiaSec, rows[1].PythiaSec
	// §VI feature: must never regress materially; parity is expected on
	// the small testbed.
	if on > off*1.10 {
		t.Fatalf("criticality on (%.1fs) much worse than off (%.1fs)", on, off)
	}
}

func TestScaleOutPythiaWinsEverywhere(t *testing.T) {
	rows := RunScaleOut(tinyScale())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PythiaSec >= r.ECMPSec {
			t.Fatalf("%s: pythia %.1f >= ecmp %.1f", r.Topology, r.PythiaSec, r.ECMPSec)
		}
	}
}

func TestSpeedupSVG(t *testing.T) {
	rows := []SpeedupRow{
		{Oversub: "none", ECMPSec: 100, PythiaSec: 99, Speedup: 0.01},
		{Oversub: "1:20", ECMPSec: 220, PythiaSec: 150, Speedup: 0.46},
	}
	svg := SpeedupSVG("Fig.3", rows)
	for _, want := range []string{"<svg", "ECMP", "Pythia", "1:20", "polyline"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("speedup svg missing %q", want)
		}
	}
}

func TestFig5SVGFromRealRun(t *testing.T) {
	res := RunFig5(tinyScale())
	if len(res.PerHost) == 0 {
		t.Fatal("no hosts")
	}
	svg := Fig5SVG(res.PerHost[0])
	for _, want := range []string{"<svg", "predicted", "measured", "cumulative bytes"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("fig5 svg missing %q", want)
		}
	}
}
