package bench

import (
	"fmt"
	"strings"

	"pythia/internal/core"
	"pythia/internal/hadoop"
	"pythia/internal/instrument"
	"pythia/internal/sim"
	"pythia/internal/workload"
)

// AblationRow is one parameter setting of an ablation sweep, always compared
// against the ECMP baseline on the identical scenario.
type AblationRow struct {
	Param     string
	PythiaSec float64
	ECMPSec   float64
	Speedup   float64
}

// ablationSeeds are averaged over to smooth single-hash artifacts.
var ablationSeeds = []uint64{9, 1009, 2009}

// sweep runs one ablation: the ECMP baseline once per seed, then each
// parameter setting once per seed via runPythia(param, seed). All trials fan
// out across the worker pool; the averages are accumulated in the fixed
// (param, seed) order, so the result is identical at any parallelism.
func sweep(params []string, runECMP func(seed uint64) float64, runPythia func(param string, seed uint64) float64) []AblationRow {
	ns := len(ablationSeeds)
	vals := make([]float64, ns*(1+len(params)))
	forEachIndex(len(vals), func(i int) {
		seed := ablationSeeds[i%ns]
		if i < ns {
			vals[i] = runECMP(seed)
		} else {
			vals[i] = runPythia(params[i/ns-1], seed)
		}
	})
	mean := func(off int) float64 {
		sum := 0.0
		for i := 0; i < ns; i++ {
			sum += vals[off+i]
		}
		return sum / float64(ns)
	}
	base := mean(0)
	rows := make([]AblationRow, 0, len(params))
	for pi, p := range params {
		t := mean(ns * (1 + pi))
		rows = append(rows, AblationRow{
			Param:     p,
			PythiaSec: t,
			ECMPSec:   base,
			Speedup:   (base - t) / t,
		})
	}
	return rows
}

// RunAblationKPaths (A1) varies the number of precomputed shortest paths on
// a four-trunk variant of the testbed: k=1 collapses Pythia to single-path
// routing (catastrophic: every pair lands on the same trunk); k>=4 exposes
// the full trunk diversity. DESIGN.md calls out the k-shortest-paths module
// as a design choice; this quantifies it.
func RunAblationKPaths(scale Scale) []AblationRow {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	ks := map[string]int{"k=1": 1, "k=2": 2, "k=4": 4, "k=8": 8}
	return sweep([]string{"k=1", "k=2", "k=4", "k=8"},
		func(seed uint64) float64 {
			return RunTrial(TrialConfig{
				Spec:      workload.Sort(scale.SortBytes, 10, seed),
				Scheduler: ECMP, Oversub: lvl, Trunks: 4, Seed: seed,
			}).JobSec
		},
		func(param string, seed uint64) float64 {
			return RunTrial(TrialConfig{
				Spec:      workload.Sort(scale.SortBytes, 10, seed),
				Scheduler: Pythia, Oversub: lvl, Trunks: 4, Seed: seed,
				PythiaCfg: core.Config{K: ks[param]}.EnableAggregation(),
			}).JobSec
		})
}

// RunAblationAggregation (A2) toggles host-pair flow aggregation on the
// Nutch workload (many flows per pair — where aggregation matters most).
// The paper expects near-parity on completion time — aggregation exists for
// TCAM conservation and because ports are unknowable, not as a performance
// booster.
func RunAblationAggregation(scale Scale) []AblationRow {
	lvl := Oversub{Label: "1:20", Ratio: 20}
	return sweep([]string{"aggregation=on", "aggregation=off"},
		func(seed uint64) float64 {
			return RunTrial(TrialConfig{
				Spec:      workload.Nutch(scale.NutchBytes, 12, seed),
				Scheduler: ECMP, Oversub: lvl, Seed: seed,
			}).JobSec
		},
		func(param string, seed uint64) float64 {
			agg := param == "aggregation=on"
			return RunTrial(TrialConfig{
				Spec:      workload.Nutch(scale.NutchBytes, 12, seed),
				Scheduler: Pythia, Oversub: lvl, Seed: seed,
				DisableAggregation: !agg,
				PythiaCfg:          core.Config{Aggregate: agg},
			}).JobSec
		})
}

// RunAblationPredictionDelay (A3) artificially delays the filesystem
// notification so predictions arrive closer to (or after) the actual flows.
// Small delays are harmless — the paper found the fetch gap leaves seconds
// of margin — but once the delay exceeds the map-finish-to-fetch gap, flows
// start before their rules exist and fall back to the default pipeline,
// eroding the benefit toward zero.
func RunAblationPredictionDelay(scale Scale) []AblationRow {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	delays := map[string]sim.Duration{
		"notify-delay=0.02s": 0.02,
		"notify-delay=5s":    5,
		"notify-delay=30s":   30,
		"notify-delay=120s":  120,
	}
	return sweep([]string{"notify-delay=0.02s", "notify-delay=5s", "notify-delay=30s", "notify-delay=120s"},
		func(seed uint64) float64 {
			return RunTrial(TrialConfig{
				Spec:      workload.Sort(scale.SortBytes, 10, seed),
				Scheduler: ECMP, Oversub: lvl, Seed: seed,
			}).JobSec
		},
		func(param string, seed uint64) float64 {
			return RunTrial(TrialConfig{
				Spec:      workload.Sort(scale.SortBytes, 10, seed),
				Scheduler: Pythia, Oversub: lvl, Seed: seed,
				Instrument: instrument.Config{FSNotifyDelay: delays[param]},
			}).JobSec
		})
}

// RunAblationInstallLatency (A4) sweeps the per-rule switch programming
// cost. The paper cites 3–5 ms/flow as the hardware budget; this shows how
// much headroom the prediction lead leaves before slow control planes start
// to hurt.
func RunAblationInstallLatency(scale Scale) []AblationRow {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	lats := map[string]sim.Duration{
		"install=1ms":   0.001,
		"install=4ms":   0.004,
		"install=50ms":  0.05,
		"install=500ms": 0.5,
	}
	return sweep([]string{"install=1ms", "install=4ms", "install=50ms", "install=500ms"},
		func(seed uint64) float64 {
			return RunTrial(TrialConfig{
				Spec:      workload.Sort(scale.SortBytes, 10, seed),
				Scheduler: ECMP, Oversub: lvl, Seed: seed,
			}).JobSec
		},
		func(param string, seed uint64) float64 {
			return RunTrial(TrialConfig{
				Spec:      workload.Sort(scale.SortBytes, 10, seed),
				Scheduler: Pythia, Oversub: lvl, Seed: seed,
				InstallLatency: lats[param],
			}).JobSec
		})
}

// RunAblationCriticality (A6) toggles the §VI flow-priority criterion on a
// heavily skewed sort. On the small testbed the first-fit-decreasing order
// already approximates criticality, so near-parity is the honest expected
// result; the test asserts no regression.
func RunAblationCriticality(scale Scale) []AblationRow {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	mkSpec := func(seed uint64) *hadoop.JobSpec {
		return workload.Generate(workload.Config{
			Name: "skewed-sort", InputBytes: scale.SortBytes,
			BlockBytes: 256 * workload.MB, NumReduces: 10,
			SkewExponent: 1.2, Seed: seed,
		})
	}
	return sweep([]string{"criticality=off", "criticality=on"},
		func(seed uint64) float64 {
			return RunTrial(TrialConfig{Spec: mkSpec(seed), Scheduler: ECMP, Oversub: lvl, Seed: seed}).JobSec
		},
		func(param string, seed uint64) float64 {
			return RunTrial(TrialConfig{
				Spec: mkSpec(seed), Scheduler: Pythia, Oversub: lvl, Seed: seed,
				PythiaCfg: core.Config{UseCriticality: param == "criticality=on"}.EnableAggregation(),
			}).JobSec
		})
}

// TimelinessRow is one Hadoop-parameter setting of the A7 experiment.
type TimelinessRow struct {
	Param       string
	MinLeadSec  float64
	MeanLeadSec float64
}

// RunAblationTimeliness (A7) carries out the experiment the paper proposes
// as future work in §V-C: confirm that prediction timeliness — the gap
// between map finish and fetch start — is not sensitive to Hadoop's
// configuration parameters (reducer parallel copies, completion-event poll
// period). Each row runs the Fig. 5 capture under a different setting and
// reports the lead statistics.
func RunAblationTimeliness(scale Scale) []TimelinessRow {
	lvl := Oversub{Label: "1:5", Ratio: 5}
	settings := []struct {
		name string
		cfg  hadoop.Config
	}{
		{"defaults (copies=5, poll=3s)", hadoop.Config{}},
		{"parallel-copies=2", hadoop.Config{ParallelCopies: 2}},
		{"parallel-copies=10", hadoop.Config{ParallelCopies: 10}},
		{"event-poll=1s", hadoop.Config{EventPollInterval: 1}},
		{"event-poll=6s", hadoop.Config{EventPollInterval: 6}},
	}
	cfgs := make([]TrialConfig, len(settings))
	for i, s := range settings {
		cfgs[i] = TrialConfig{
			Spec:              workload.IntegerSort(scale.IntegerSortBytes, 10, 7),
			Scheduler:         Pythia,
			Oversub:           lvl,
			Hadoop:            s.cfg,
			Seed:              7,
			CollectPrediction: true,
		}
	}
	results := RunTrials(cfgs)
	var rows []TimelinessRow
	for i, s := range settings {
		res := results[i]
		row := TimelinessRow{Param: s.name}
		first := true
		var meanSum float64
		for _, h := range res.Prediction.Hosts {
			if first || h.MinLeadSec < row.MinLeadSec {
				row.MinLeadSec = h.MinLeadSec
				first = false
			}
			meanSum += h.MeanLeadSec
		}
		if n := len(res.Prediction.Hosts); n > 0 {
			row.MeanLeadSec = meanSum / float64(n)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTimelinessTable renders the A7 sweep.
func FormatTimelinessTable(title string, rows []TimelinessRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-30s %14s %14s\n", "hadoop setting", "min lead (s)", "mean lead (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %14.2f %14.2f\n", r.Param, r.MinLeadSec, r.MeanLeadSec)
	}
	return b.String()
}

// ScopeRow is one row of the A5 aggregation-scope experiment.
type ScopeRow struct {
	Scope     string
	PythiaSec float64
	Rules     uint64
}

// RunAblationScope (A5) compares host-pair against rack-pair aggregation
// (§IV forwarding-state conservation): completion time should be close on
// the two-rack testbed while the rule count collapses from O(host pairs) to
// O(rack pairs).
func RunAblationScope(scale Scale) []ScopeRow {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	scopes := []core.Scope{core.ScopeHostPair, core.ScopeRackPair}
	var cfgs []TrialConfig
	for _, sc := range scopes {
		for _, seed := range ablationSeeds {
			cfgs = append(cfgs, TrialConfig{
				Spec:      workload.Sort(scale.SortBytes, 10, seed),
				Scheduler: Pythia, Oversub: lvl, Seed: seed,
				PythiaCfg: core.Config{Scope: sc}.EnableAggregation(),
			})
		}
	}
	results := RunTrials(cfgs)
	var rows []ScopeRow
	for si, sc := range scopes {
		var secs, rules float64
		for i := range ablationSeeds {
			res := results[si*len(ablationSeeds)+i]
			secs += res.JobSec
			rules += float64(res.RulesInstalled)
		}
		n := float64(len(ablationSeeds))
		rows = append(rows, ScopeRow{Scope: sc.String(), PythiaSec: secs / n, Rules: uint64(rules / n)})
	}
	return rows
}

// FormatScopeTable renders the A5 sweep.
func FormatScopeTable(title string, rows []ScopeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %12s %14s\n", "scope", "Pythia (s)", "rules installed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12.1f %14d\n", r.Scope, r.PythiaSec, r.Rules)
	}
	return b.String()
}

// FormatAblationTable renders an ablation sweep.
func FormatAblationTable(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-22s %12s %12s %10s\n", "parameter", "Pythia (s)", "ECMP (s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12.1f %12.1f %9.1f%%\n", r.Param, r.PythiaSec, r.ECMPSec, r.Speedup*100)
	}
	return b.String()
}
