package bench

import "testing"

// TestServeBenchSmoke runs the full serving benchmark at a reduced shape
// and asserts its hard guarantees: every shard count's sequential replay is
// bit-identical to the in-process oracle, and no bookings leak in either
// phase.
func TestServeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve bench smoke is not short")
	}
	res, err := RunServeBench(ServeConfig{
		Jobs:        6,
		ShardCounts: []int{1, 2, 8},
		Conns:       2,
		ChunkOps:    32,
	})
	if err != nil {
		t.Fatalf("RunServeBench: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.DigestMatchesOracle {
			t.Errorf("shards=%d: digest %s != oracle %s", row.Shards, row.Digest, res.OracleDigest)
		}
		if row.LeakedBookings != 0 {
			t.Errorf("shards=%d: %d leaked bookings", row.Shards, row.LeakedBookings)
		}
		if row.IntentsPerSec <= 0 {
			t.Errorf("shards=%d: nonpositive intents/sec %v", row.Shards, row.IntentsPerSec)
		}
	}
	t.Logf("\n%s", res)
}
