package bench

import (
	"fmt"
	"strings"

	"pythia/internal/ecmp"
	"pythia/internal/hadoop"
	"pythia/internal/netsim"
	"pythia/internal/plot"
	"pythia/internal/sim"
	"pythia/internal/stats"
	"pythia/internal/topology"
	"pythia/internal/trace"
	"pythia/internal/workload"
)

// Scale selects the experiment input sizes. Paper scale reproduces the
// exact published input volumes; Quick scale divides them by 10 so the full
// suite runs in seconds.
type Scale struct {
	SortBytes        float64
	NutchBytes       float64
	IntegerSortBytes float64
	Repeats          int
}

// QuickScale keeps Nutch at its published 8 GB (it is cheap to simulate)
// and divides the two sort inputs by 10 so the full suite runs in seconds.
func QuickScale() Scale {
	return Scale{
		SortBytes:        24 * workload.GB,
		NutchBytes:       8 * workload.GB,
		IntegerSortBytes: 6 * workload.GB,
		Repeats:          3,
	}
}

// PaperScale matches §V-A: 240 GB sort, 8 GB Nutch, 60 GB integer sort.
func PaperScale() Scale {
	return Scale{
		SortBytes:        240 * workload.GB,
		NutchBytes:       8 * workload.GB,
		IntegerSortBytes: 60 * workload.GB,
		Repeats:          3,
	}
}

// SpeedupRow is one oversubscription level of Figs. 3/4: mean job completion
// times under ECMP and Pythia and the relative speedup (ECMP-Pythia)/Pythia,
// matching the figures' right axis.
type SpeedupRow struct {
	Oversub   string
	ECMPSec   float64
	PythiaSec float64
	Speedup   float64
	// ECMPCI and PythiaCI are 95% confidence half-widths over the repeat
	// runs (0 for single runs).
	ECMPCI   float64
	PythiaCI float64
}

// runSpeedupSweep executes the Fig. 3/4 protocol for one workload: for each
// oversubscription level, run Repeats trials per scheduler (varying the
// seed, which reshuffles ECMP hashing and workload jitter — the paper
// reports averages of multiple executions) and average.
func runSpeedupSweep(mkSpec func(seed uint64) *hadoop.JobSpec, scale Scale, levels []Oversub) []SpeedupRow {
	// Every (level, repeat, scheduler) trial is an independent simulation
	// with its seed fixed here, so the whole sweep fans out across the
	// worker pool; aggregation below walks the results in the same nested
	// order the serial loop used, keeping the output byte-identical at any
	// parallelism.
	cfgs := make([]TrialConfig, 0, len(levels)*scale.Repeats*2)
	for _, lvl := range levels {
		for rep := 0; rep < scale.Repeats; rep++ {
			seed := uint64(rep)*1000 + 17
			spec := mkSpec(seed)
			cfgs = append(cfgs,
				TrialConfig{Spec: spec, Scheduler: ECMP, Oversub: lvl, Seed: seed},
				TrialConfig{Spec: spec, Scheduler: Pythia, Oversub: lvl, Seed: seed})
		}
	}
	results := RunTrials(cfgs)
	rows := make([]SpeedupRow, 0, len(levels))
	i := 0
	for _, lvl := range levels {
		var ecmpTimes, pythiaTimes []float64
		for rep := 0; rep < scale.Repeats; rep++ {
			ecmpTimes = append(ecmpTimes, results[i].JobSec)
			pythiaTimes = append(pythiaTimes, results[i+1].JobSec)
			i += 2
		}
		e, p := stats.Mean(ecmpTimes), stats.Mean(pythiaTimes)
		rows = append(rows, SpeedupRow{
			Oversub:   lvl.Label,
			ECMPSec:   e,
			PythiaSec: p,
			Speedup:   stats.Speedup(e, p),
			ECMPCI:    stats.CI95(ecmpTimes),
			PythiaCI:  stats.CI95(pythiaTimes),
		})
	}
	return rows
}

// RunFig3 reproduces Figure 3: Nutch indexing completion times under Pythia
// and ECMP across oversubscription ratios, with relative speedup. The paper
// reports speedups up to 46% at 1:20 and near-flat Pythia times.
func RunFig3(scale Scale) []SpeedupRow {
	return runSpeedupSweep(func(seed uint64) *hadoop.JobSpec {
		return workload.Nutch(scale.NutchBytes, 12, seed)
	}, scale, StandardLevels())
}

// RunFig4 reproduces Figure 4: the Sort counterpart (speedups up to 43%;
// Pythia times degrade somewhat with oversubscription, unlike Nutch,
// because sort's fewer larger flows pack less evenly).
func RunFig4(scale Scale) []SpeedupRow {
	return runSpeedupSweep(func(seed uint64) *hadoop.JobSpec {
		return workload.Sort(scale.SortBytes, 10, seed)
	}, scale, StandardLevels())
}

// Fig5Result is the prediction promptness/accuracy outcome for the 60 GB
// integer sort: the paper observed a minimum ~9 s lead and a 3–7%
// traffic-volume overestimate, consistent across servers.
type Fig5Result struct {
	PerHost []HostPrediction
	// MinLeadSec is the smallest lead across all hosts and volume levels.
	MinLeadSec float64
	// MeanOverestimate averages the per-host overestimation factors.
	MeanOverestimate float64
}

// RunFig5 reproduces Figure 5 under Pythia scheduling at moderate load.
func RunFig5(scale Scale) Fig5Result {
	res := RunTrial(TrialConfig{
		Spec:              workload.IntegerSort(scale.IntegerSortBytes, 10, 7),
		Scheduler:         Pythia,
		Oversub:           Oversub{Label: "1:5", Ratio: 5},
		Seed:              7,
		CollectPrediction: true,
	})
	out := Fig5Result{PerHost: res.Prediction.Hosts}
	first := true
	var overSum float64
	for _, h := range res.Prediction.Hosts {
		if first || h.MinLeadSec < out.MinLeadSec {
			out.MinLeadSec = h.MinLeadSec
			first = false
		}
		overSum += h.Overestimate
	}
	if n := len(res.Prediction.Hosts); n > 0 {
		out.MeanOverestimate = overSum / float64(n)
	}
	return out
}

// RunFig1a reproduces the Figure 1a sequence diagram: the toy sort job
// (three maps, two reducers, reducer-0 fetching 5x reducer-1) on a
// non-blocking 1 Gbps network, rendered by the trace tool.
func RunFig1a() (ascii, svg string) {
	eng := sim.NewEngine()
	g, hosts, _ := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	cl := hadoop.NewCluster(eng, net, hosts, ecmp.New(g, 2, 1), hadoop.Config{
		MapSlots: 1, ReduceSlots: 1,
	})
	rec := trace.Attach(eng, cl)
	if _, err := cl.Submit(workload.ToySort()); err != nil {
		panic(err)
	}
	eng.Run()
	return rec.Render(100), rec.RenderSVG()
}

// Fig1bResult quantifies the §II motivational example: a 159 MB shuffle
// flow and the two candidate paths (95% vs 25% occupied). ECMP's
// load-unaware hash can land the flow on the hot path; allocation by
// available bandwidth cannot.
type Fig1bResult struct {
	// AdversarialSec is the large flow's transfer time when hashed onto
	// the 95%-loaded path.
	AdversarialSec float64
	// OptimalSec is its time on the 25%-loaded path.
	OptimalSec float64
	// ECMPHitsHotPath reports whether an actual ECMP hash over the flow's
	// five-tuple picked the hot path in this instantiation.
	ECMPHitsHotPath bool
	// PythiaPickedCleanPath reports the availability-based choice.
	PythiaPickedCleanPath bool
}

// RunFig1b builds the Fig. 1b scenario and measures both allocations.
func RunFig1b() Fig1bResult {
	const flowBytes = 159e6
	build := func() (*sim.Engine, *netsim.Network, []topology.NodeID, []topology.LinkID) {
		eng := sim.NewEngine()
		g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
		net := netsim.New(eng, g)
		// Path-1 at 95%, Path-2 at 25% (both directions).
		for i, load := range []float64{0.95, 0.25} {
			net.SetBackground(trunks[i], load*topology.Gbps)
			if r, ok := g.Reverse(trunks[i]); ok {
				net.SetBackground(r, load*topology.Gbps)
			}
		}
		return eng, net, hosts, trunks
	}

	timeOn := func(trunkIdx int) float64 {
		eng, net, hosts, trunks := build()
		g := net.Graph()
		var path topology.Path
		for _, p := range g.KShortestPaths(hosts[0], hosts[5], 2) {
			for _, l := range p.Links {
				if l == trunks[trunkIdx] {
					path = p
				}
			}
		}
		var done sim.Time
		net.StartFlow(netsim.FiveTuple{SrcHost: hosts[0], DstHost: hosts[5], SrcPort: hadoop.ShufflePort, DstPort: 20000, Protocol: 6},
			netsim.Shuffle, path, flowBytes*8, 0, 0, 0, func(f *netsim.Flow) { done = f.Finished() })
		eng.Run()
		return float64(done)
	}

	res := Fig1bResult{
		AdversarialSec: timeOn(0),
		OptimalSec:     timeOn(1),
	}

	// Does a concrete ECMP hash hit the hot path? Scan ephemeral ports
	// until one does (the paper's point is that nothing prevents it).
	_, net, hosts, trunks := build()
	g := net.Graph()
	alloc := ecmp.New(g, 2, 1)
	for port := uint16(20000); port < 20032; port++ {
		p, _ := alloc.Resolve(netsim.FiveTuple{SrcHost: hosts[0], DstHost: hosts[5], SrcPort: hadoop.ShufflePort, DstPort: port, Protocol: 6})
		for _, l := range p.Links {
			if l == trunks[0] {
				res.ECMPHitsHotPath = true
			}
		}
	}
	// Availability-based choice: pick the path with max available bw.
	paths := g.KShortestPaths(hosts[0], hosts[5], 2)
	bestAvail, bestIdx := -1.0, -1
	for i, p := range paths {
		avail := 1e18
		for _, l := range p.Links {
			if a := net.AvailableBps(l); a < avail {
				avail = a
			}
		}
		if avail > bestAvail {
			bestAvail, bestIdx = avail, i
		}
	}
	for _, l := range paths[bestIdx].Links {
		if l == trunks[1] {
			res.PythiaPickedCleanPath = true
		}
	}
	return res
}

// OverheadResult is the §V-C cost summary.
type OverheadResult struct {
	MeanCPUFraction float64
	MaxCPUFraction  float64
	MgmtBytes       float64
	RulesInstalled  uint64
	IntentsSent     int
}

// RunOverhead measures instrumentation overhead on the sort workload under
// Pythia (the configuration §V-C reports: 2–5% CPU, insignificant memory,
// low control traffic).
func RunOverhead(scale Scale) OverheadResult {
	res := RunTrial(TrialConfig{
		Spec:      workload.Sort(scale.SortBytes, 10, 3),
		Scheduler: Pythia,
		Oversub:   Oversub{Label: "1:10", Ratio: 10},
		Seed:      3,
	})
	return OverheadResult{
		MeanCPUFraction: res.Overhead.MeanCPUFraction,
		MaxCPUFraction:  res.Overhead.MaxCPUFraction,
		MgmtBytes:       res.Overhead.MgmtBytes,
		RulesInstalled:  res.RulesInstalled,
		IntentsSent:     res.Overhead.Spills,
	}
}

// HederaRow compares all three schedulers on one workload at one level.
type HederaRow struct {
	Workload  string
	ECMPSec   float64
	HederaSec float64
	PythiaSec float64
}

// RunHederaComparison is the E7 extension: §II argues a Hedera-like scheme
// avoids some adversarial allocations but cannot exploit flow criticality or
// advance knowledge; expect ECMP ≥ Hedera ≥ Pythia at 1:10.
func RunHederaComparison(scale Scale) []HederaRow {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	jobs := []struct {
		name string
		spec *hadoop.JobSpec
	}{
		{"sort", workload.Sort(scale.SortBytes, 10, 17)},
		{"nutch", workload.Nutch(scale.NutchBytes, 12, 17)},
	}
	var cfgs []TrialConfig
	for _, j := range jobs {
		for _, sch := range []Scheduler{ECMP, Hedera, Pythia} {
			cfgs = append(cfgs, TrialConfig{Spec: j.spec, Scheduler: sch, Oversub: lvl, Seed: 17})
		}
	}
	results := RunTrials(cfgs)
	rows := make([]HederaRow, len(jobs))
	for i, j := range jobs {
		rows[i] = HederaRow{
			Workload:  j.name,
			ECMPSec:   results[3*i].JobSec,
			HederaSec: results[3*i+1].JobSec,
			PythiaSec: results[3*i+2].JobSec,
		}
	}
	return rows
}

// ScaleOutRow is one topology size of the E8 scale-out experiment.
type ScaleOutRow struct {
	Topology  string
	ECMPSec   float64
	PythiaSec float64
	Speedup   float64
}

// RunScaleOut (E8, extension) runs the sort under ECMP and Pythia on
// leaf-spine fabrics of growing size — the "larger-scale future SDN setup"
// §IV anticipates. Pythia's win should persist beyond the 2-rack testbed.
func RunScaleOut(scale Scale) []ScaleOutRow {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	shapes := []struct {
		label          string
		leaves, spines int
	}{
		{"2x2 leaf-spine", 2, 2},
		{"4x2 leaf-spine", 4, 2},
		{"4x4 leaf-spine", 4, 4},
	}
	var cfgs []TrialConfig
	for _, sh := range shapes {
		spec := workload.Sort(scale.SortBytes, 2*sh.leaves, 21)
		cfgs = append(cfgs,
			TrialConfig{Spec: spec, Scheduler: ECMP, Oversub: lvl,
				Leaves: sh.leaves, Spines: sh.spines, Seed: 21},
			TrialConfig{Spec: spec, Scheduler: Pythia, Oversub: lvl,
				Leaves: sh.leaves, Spines: sh.spines, Seed: 21})
	}
	results := RunTrials(cfgs)
	rows := make([]ScaleOutRow, len(shapes))
	for i, sh := range shapes {
		e, p := results[2*i].JobSec, results[2*i+1].JobSec
		rows[i] = ScaleOutRow{
			Topology: sh.label, ECMPSec: e, PythiaSec: p,
			Speedup: stats.Speedup(e, p),
		}
	}
	return rows
}

// FormatScaleOutTable renders the E8 sweep.
func FormatScaleOutTable(title string, rows []ScaleOutRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s %12s %12s %10s\n", "topology", "ECMP (s)", "Pythia (s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12.1f %12.1f %9.1f%%\n", r.Topology, r.ECMPSec, r.PythiaSec, r.Speedup*100)
	}
	return b.String()
}

// FormatSpeedupTable renders Fig. 3/4 rows as the text table the paper's
// figures plot.
func FormatSpeedupTable(title string, rows []SpeedupRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %18s %18s %10s\n", "oversub", "ECMP (s)", "Pythia (s)", "speedup")
	for _, r := range rows {
		ecmp := fmt.Sprintf("%.1f", r.ECMPSec)
		pythia := fmt.Sprintf("%.1f", r.PythiaSec)
		if r.ECMPCI > 0 {
			ecmp = fmt.Sprintf("%.1f ±%.1f", r.ECMPSec, r.ECMPCI)
		}
		if r.PythiaCI > 0 {
			pythia = fmt.Sprintf("%.1f ±%.1f", r.PythiaSec, r.PythiaCI)
		}
		fmt.Fprintf(&b, "%-8s %18s %18s %9.1f%%\n", r.Oversub, ecmp, pythia, r.Speedup*100)
	}
	return b.String()
}

// SpeedupSVG renders Fig. 3/4 rows in the paper's presentation: grouped
// completion-time bars per oversubscription level with the relative-speedup
// line on the right axis.
func SpeedupSVG(title string, rows []SpeedupRow) string {
	c := plot.BarChart{
		Title:     title,
		YLabel:    "job completion time (s)",
		Series:    []string{"ECMP", "Pythia"},
		LineLabel: "relative speedup",
		LinePct:   true,
	}
	for _, r := range rows {
		c.Groups = append(c.Groups, plot.BarGroup{Label: r.Oversub, Values: []float64{r.ECMPSec, r.PythiaSec}})
		c.Line = append(c.Line, r.Speedup)
	}
	return c.Render()
}

// Fig5SVG renders one server's predicted vs measured cumulative curves (the
// paper shows Server4; pass any entry of Fig5Result.PerHost).
func Fig5SVG(h HostPrediction) string {
	pred := plot.LineSeries{Name: "predicted (cumulative)", Step: true}
	for _, p := range h.Predicted.Points() {
		pred.X = append(pred.X, float64(p.T))
		pred.Y = append(pred.Y, p.Bytes)
	}
	meas := plot.LineSeries{Name: "measured (NetFlow)"}
	for _, p := range h.Measured {
		meas.X = append(meas.X, float64(p.T))
		meas.Y = append(meas.Y, p.Bytes)
	}
	return plot.LineChart{
		Title:  fmt.Sprintf("Fig.5 — traffic sourced by %s", h.Name),
		XLabel: "time (s)",
		YLabel: "cumulative bytes",
		Series: []plot.LineSeries{pred, meas},
	}.Render()
}

// FormatFig5 renders the prediction-efficacy summary.
func FormatFig5(r Fig5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.5 prediction efficacy (integer sort)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %14s\n", "server", "min lead(s)", "mean lead(s)", "overestimate")
	for _, h := range r.PerHost {
		fmt.Fprintf(&b, "%-16s %12.2f %12.2f %13.1f%%\n", h.Name, h.MinLeadSec, h.MeanLeadSec, h.Overestimate*100)
	}
	fmt.Fprintf(&b, "overall: min lead %.2fs, mean overestimate %.1f%%\n", r.MinLeadSec, r.MeanOverestimate*100)
	return b.String()
}
