package bench

import (
	"math"
	"strings"
	"testing"

	"pythia/internal/stats"
	"pythia/internal/workload"
)

func TestTraceReplayCompletesAllJobs(t *testing.T) {
	tcfg := workload.TraceConfig{Jobs: 10, Seed: 4}
	res := RunTraceReplay(ECMP, Oversub{"1:10", 10}, tcfg)
	if res.Jobs != 10 {
		t.Fatalf("jobs = %d", res.Jobs)
	}
	if res.MakespanSec <= 0 || res.MeanJobSec <= 0 || res.P95JobSec < res.MeanJobSec {
		t.Fatalf("metrics: %+v", res)
	}
	if res.ShuffleFraction <= 0 || res.ShuffleFraction >= 1 {
		t.Fatalf("shuffle fraction = %v", res.ShuffleFraction)
	}
}

func TestTraceComparisonPythiaWins(t *testing.T) {
	c := RunTraceComparison(Oversub{"1:10", 10}, 1)
	if c.Pythia.MeanJobSec >= c.ECMP.MeanJobSec {
		t.Fatalf("pythia mean %.1f >= ecmp %.1f", c.Pythia.MeanJobSec, c.ECMP.MeanJobSec)
	}
	if c.MeanJobSpeedup <= 0 {
		t.Fatalf("speedup = %v", c.MeanJobSpeedup)
	}
}

func TestTraceShuffleFractionNearFacebook(t *testing.T) {
	// The trace is calibrated so the ECMP shuffle-time share lands in the
	// neighborhood of the paper's motivating 33% statistic.
	c := RunTrace()
	if c.ECMP.ShuffleFraction < 0.20 || c.ECMP.ShuffleFraction > 0.45 {
		t.Fatalf("ECMP shuffle fraction = %.1f%%, want ~33%%", c.ECMP.ShuffleFraction*100)
	}
	// Pythia shrinks exactly that share.
	if c.Pythia.ShuffleFraction >= c.ECMP.ShuffleFraction {
		t.Fatal("Pythia did not reduce the shuffle share")
	}
}

func TestTraceDeterministicPerSeed(t *testing.T) {
	a := RunTraceReplay(Pythia, Oversub{"1:10", 10}, workload.TraceConfig{Jobs: 8, Seed: 9})
	b := RunTraceReplay(Pythia, Oversub{"1:10", 10}, workload.TraceConfig{Jobs: 8, Seed: 9})
	if a.MakespanSec != b.MakespanSec || a.MeanJobSec != b.MeanJobSec {
		t.Fatal("trace replay nondeterministic")
	}
}

// Cross-seed aggregation must pool the per-job duration samples and take
// percentiles once. The old code averaged per-seed P95s, which on skewed
// samples is a different (wrong) number: percentiles do not commute with
// means.
func TestPoolTraceResultsPoolsPercentiles(t *testing.T) {
	// Seed A: tight cluster. Seed B: same size, one huge outlier. The
	// pooled P95 must reflect the outlier's true weight in the combined
	// sample, not the mean of the two per-seed P95s.
	a := TraceResult{Jobs: 5, MakespanSec: 100, ShuffleFraction: 0.30,
		Durations: []float64{10, 11, 12, 13, 14}}
	b := TraceResult{Jobs: 5, MakespanSec: 200, ShuffleFraction: 0.40,
		Durations: []float64{10, 11, 12, 13, 1000}}
	got := poolTraceResults([]TraceResult{a, b})

	pooled := append(append([]float64(nil), a.Durations...), b.Durations...)
	want := stats.Summarize(pooled)
	if got.P95JobSec != want.P95 || got.MeanJobSec != want.Mean {
		t.Fatalf("pooled stats = mean %v p95 %v, want mean %v p95 %v",
			got.MeanJobSec, got.P95JobSec, want.Mean, want.P95)
	}
	// The regression this guards against: the averaged-percentile value
	// must differ visibly from the pooled one on these samples.
	avgOfP95 := (stats.Summarize(a.Durations).P95 + stats.Summarize(b.Durations).P95) / 2
	if rel := (got.P95JobSec - avgOfP95) / got.P95JobSec; rel < 0.05 && rel > -0.05 {
		t.Fatalf("test premise broken: pooled %v vs averaged %v do not diverge",
			got.P95JobSec, avgOfP95)
	}
	// Makespan stays a cross-seed mean; shuffle fraction pools
	// duration-weighted.
	if got.MakespanSec != 150 {
		t.Fatalf("makespan = %v, want 150", got.MakespanSec)
	}
	ta := 10.0 + 11 + 12 + 13 + 14
	tb := 10.0 + 11 + 12 + 13 + 1000
	wantFrac := (0.30*ta + 0.40*tb) / (ta + tb)
	if math.Abs(got.ShuffleFraction-wantFrac) > 1e-12 {
		t.Fatalf("shuffle fraction = %v, want %v", got.ShuffleFraction, wantFrac)
	}
	if empty := poolTraceResults(nil); empty.Jobs != 0 {
		t.Fatalf("empty pool = %+v", empty)
	}
}

// A deadline that cuts the replay short must surface as an error with the
// starved jobs counted, while the completed jobs' statistics stay usable —
// the TryRunJobs contract.
func TestTryRunTraceReplayDeadline(t *testing.T) {
	tcfg := workload.TraceConfig{Jobs: 10, Seed: 4}
	res, err := TryRunTraceReplay(ECMP, Oversub{"1:10", 10}, tcfg,
		TraceReplayOptions{DeadlineSec: 120})
	if err == nil {
		t.Fatal("120 s deadline on a 10-job trace must starve jobs")
	}
	if !strings.Contains(err.Error(), "did not complete") {
		t.Fatalf("error text: %v", err)
	}
	if res.Starved == 0 || res.Starved+len(res.Durations) != res.Jobs {
		t.Fatalf("starved accounting: %+v", res)
	}
	if len(res.Durations) > 0 && res.MeanJobSec <= 0 {
		t.Fatalf("partial stats not populated: %+v", res)
	}
	// The full run of the same trace succeeds — the error is the
	// deadline's doing, not the trace's.
	if _, err := TryRunTraceReplay(ECMP, Oversub{"1:10", 10}, tcfg, TraceReplayOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTraceComparison(t *testing.T) {
	out := FormatTraceComparison(TraceComparison{
		ECMP:           TraceResult{Jobs: 5, MakespanSec: 100, MeanJobSec: 20, P95JobSec: 50, ShuffleFraction: 0.33},
		Pythia:         TraceResult{Jobs: 5, MakespanSec: 90, MeanJobSec: 15, P95JobSec: 40, ShuffleFraction: 0.2},
		MeanJobSpeedup: 0.33,
	})
	for _, want := range []string{"E13", "ECMP", "Pythia", "33.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q", want)
		}
	}
}

func TestRunAllAndMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	rep := RunAll(tinyScale())
	md := rep.Markdown()
	for _, want := range []string{
		"# Pythia reproduction", "Fig. 1a", "Fig. 1b", "Fig. 3", "Fig. 4",
		"Fig. 5", "E7", "E8", "E9", "E10", "E11", "E13",
		"A1", "A2", "A3", "A4", "A5", "A6",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if len(md) < 2000 {
		t.Fatalf("report suspiciously short: %d bytes", len(md))
	}
}
