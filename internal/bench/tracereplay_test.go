package bench

import (
	"strings"
	"testing"

	"pythia/internal/workload"
)

func TestTraceReplayCompletesAllJobs(t *testing.T) {
	tcfg := workload.TraceConfig{Jobs: 10, Seed: 4}
	res := RunTraceReplay(ECMP, Oversub{"1:10", 10}, tcfg)
	if res.Jobs != 10 {
		t.Fatalf("jobs = %d", res.Jobs)
	}
	if res.MakespanSec <= 0 || res.MeanJobSec <= 0 || res.P95JobSec < res.MeanJobSec {
		t.Fatalf("metrics: %+v", res)
	}
	if res.ShuffleFraction <= 0 || res.ShuffleFraction >= 1 {
		t.Fatalf("shuffle fraction = %v", res.ShuffleFraction)
	}
}

func TestTraceComparisonPythiaWins(t *testing.T) {
	c := RunTraceComparison(Oversub{"1:10", 10}, 1)
	if c.Pythia.MeanJobSec >= c.ECMP.MeanJobSec {
		t.Fatalf("pythia mean %.1f >= ecmp %.1f", c.Pythia.MeanJobSec, c.ECMP.MeanJobSec)
	}
	if c.MeanJobSpeedup <= 0 {
		t.Fatalf("speedup = %v", c.MeanJobSpeedup)
	}
}

func TestTraceShuffleFractionNearFacebook(t *testing.T) {
	// The trace is calibrated so the ECMP shuffle-time share lands in the
	// neighborhood of the paper's motivating 33% statistic.
	c := RunTrace()
	if c.ECMP.ShuffleFraction < 0.20 || c.ECMP.ShuffleFraction > 0.45 {
		t.Fatalf("ECMP shuffle fraction = %.1f%%, want ~33%%", c.ECMP.ShuffleFraction*100)
	}
	// Pythia shrinks exactly that share.
	if c.Pythia.ShuffleFraction >= c.ECMP.ShuffleFraction {
		t.Fatal("Pythia did not reduce the shuffle share")
	}
}

func TestTraceDeterministicPerSeed(t *testing.T) {
	a := RunTraceReplay(Pythia, Oversub{"1:10", 10}, workload.TraceConfig{Jobs: 8, Seed: 9})
	b := RunTraceReplay(Pythia, Oversub{"1:10", 10}, workload.TraceConfig{Jobs: 8, Seed: 9})
	if a.MakespanSec != b.MakespanSec || a.MeanJobSec != b.MeanJobSec {
		t.Fatal("trace replay nondeterministic")
	}
}

func TestFormatTraceComparison(t *testing.T) {
	out := FormatTraceComparison(TraceComparison{
		ECMP:           TraceResult{Jobs: 5, MakespanSec: 100, MeanJobSec: 20, P95JobSec: 50, ShuffleFraction: 0.33},
		Pythia:         TraceResult{Jobs: 5, MakespanSec: 90, MeanJobSec: 15, P95JobSec: 40, ShuffleFraction: 0.2},
		MeanJobSpeedup: 0.33,
	})
	for _, want := range []string{"E13", "ECMP", "Pythia", "33.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q", want)
		}
	}
}

func TestRunAllAndMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	rep := RunAll(tinyScale())
	md := rep.Markdown()
	for _, want := range []string{
		"# Pythia reproduction", "Fig. 1a", "Fig. 1b", "Fig. 3", "Fig. 4",
		"Fig. 5", "E7", "E8", "E9", "E10", "E11", "E13",
		"A1", "A2", "A3", "A4", "A5", "A6",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if len(md) < 2000 {
		t.Fatalf("report suspiciously short: %d bytes", len(md))
	}
}
