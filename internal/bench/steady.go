package bench

import (
	"fmt"
	"sort"
	"strings"

	"pythia/internal/core"
	"pythia/internal/ecmp"
	"pythia/internal/flight"
	"pythia/internal/hadoop"
	"pythia/internal/hedera"
	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/stats"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

// The steady-state harness: submits an open-loop arrival stream into the
// simulated cluster under an admission cap, detects warm-up with MSER-5
// over completion times, then measures windowed p50/p95/p99
// job-completion-time and per-tenant SLO attainment over the remaining
// horizon. Unlike the closed-loop trace replay, nothing here panics on a
// starved run — saturation is a measured outcome, not a failure.

// SteadyConfig describes one open-loop steady-state run.
type SteadyConfig struct {
	Scheduler Scheduler
	Oversub   Oversub
	// Workload is the arrival process; its BaseRateJobsPerSec is the
	// offered-load knob the frontier sweeps.
	Workload workload.OpenLoopConfig
	// HorizonSec bounds the run in simulated time (default 1800).
	HorizonSec float64
	// MaxInFlight caps concurrently admitted jobs (default 8); arrivals
	// beyond the cap wait in a priority-ordered admission queue, and their
	// queueing delay counts against their completion time.
	MaxInFlight int
	// WindowSec sizes the tail-latency measurement windows (default 300).
	WindowSec float64
	// CollectFlight attaches the flight recorder and correlates per-window
	// prediction lateness with windowed p99 (Pythia only; pure observer).
	CollectFlight bool
	// Alloc selects the netsim allocator (incremental coalesced default).
	Alloc netsim.AllocMode
	Seed  uint64
}

func (c SteadyConfig) defaults() SteadyConfig {
	if c.HorizonSec == 0 {
		c.HorizonSec = 1800
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 8
	}
	if c.WindowSec == 0 {
		c.WindowSec = 300
	}
	c.Workload.Seed = c.Seed
	return c
}

// TenantSteady is one tenant's steady-state scorecard.
type TenantSteady struct {
	Tenant string `json:"tenant"`
	// Completed counts post-warm-up completions. CensoredLate counts jobs
	// still unfinished at the horizon whose age already exceeded the SLO —
	// definite violations even though their final completion time is
	// unknown. SLOAttainment is met / (Completed + CensoredLate); censored
	// jobs still within their SLO budget are scored nowhere.
	Completed     int     `json:"completed"`
	CensoredLate  int     `json:"censored_late"`
	SLOSec        float64 `json:"slo_sec"`
	SLOAttainment float64 `json:"slo_attainment"`
	P95Sec        float64 `json:"p95_sec"`
}

// WindowStat is one measurement window's tail-latency snapshot.
type WindowStat struct {
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	Jobs     int     `json:"jobs"`
	P50Sec   float64 `json:"p50_sec"`
	P95Sec   float64 `json:"p95_sec"`
	P99Sec   float64 `json:"p99_sec"`
	// LateFraction is the share of covered shuffle flows admitted in this
	// window whose rule install lost the race (CollectFlight only).
	LateFraction float64 `json:"late_fraction"`
	races        int
}

// SteadyResult is one steady-state run's outcome. Completion time is
// always measured arrival-to-completion, so admission queueing counts.
type SteadyResult struct {
	Scheduler      string  `json:"scheduler"`
	RateJobsPerSec float64 `json:"rate_jobs_per_sec"`
	HorizonSec     float64 `json:"horizon_sec"`

	Submitted     int `json:"submitted"`
	Completed     int `json:"completed"`
	InFlightAtEnd int `json:"in_flight_at_end"`
	QueuedAtEnd   int `json:"queued_at_end"`

	// Warm-up truncation (MSER-5 over completion times in completion
	// order). WarmupOK reports the rule converged; WarmupJobs completions
	// were discarded, the last of them finishing at WarmupEndSec.
	WarmupOK     bool    `json:"warmup_ok"`
	WarmupJobs   int     `json:"warmup_jobs"`
	WarmupEndSec float64 `json:"warmup_end_sec"`

	// Steady-state (post-warm-up) job-completion-time percentiles.
	MeanSec float64 `json:"mean_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P95Sec  float64 `json:"p95_sec"`
	P99Sec  float64 `json:"p99_sec"`

	// SLOAttainment is the job-weighted fraction of post-warm-up
	// completions that met their tenant's SLO. A job still queued or in
	// flight at the horizon whose age already exceeds its SLO is a definite
	// violation and counts against attainment; censored jobs still within
	// budget are scored nowhere. Without this, a saturated scheduler that
	// strands every hard job unfinished would read as 100% attainment.
	SLOAttainment float64        `json:"slo_attainment"`
	Tenants       []TenantSteady `json:"tenants"`
	Windows       []WindowStat   `json:"windows"`

	// MeanInFlight is the time-averaged number of admitted jobs — the
	// utilization proxy for the frontier (cap = MaxInFlight).
	MeanInFlight float64 `json:"mean_in_flight"`
	// OfferedShuffleBps is the arrival stream's shuffle demand rate
	// (Σ shuffle bytes of submitted jobs × 8 / horizon).
	OfferedShuffleBps float64 `json:"offered_shuffle_bps"`

	// LeakedBookings must be zero: reservations still held for completed
	// jobs after the run (Pythia only).
	LeakedBookings int `json:"leaked_bookings"`
	// LateTailCorrelation is the Pearson correlation between per-window
	// prediction late fraction and windowed p99 completion time
	// (CollectFlight + Pythia only; 0 when undefined).
	LateTailCorrelation float64 `json:"late_tail_correlation"`

	Quality *flight.Quality `json:"quality,omitempty"`
}

// steadyArrival tracks one open-loop job through the admission machinery.
type steadyArrival struct {
	job     workload.OpenJob
	handle  *hadoop.Job
	doneAt  float64
	done    bool
	started bool
}

// RunSteady executes one open-loop steady-state run. It returns an error
// for submission failures (invalid specs); a saturated run that strands
// jobs in the queue or on the fabric is a valid measurement, reported in
// the counters, not an error.
func RunSteady(cfg SteadyConfig) (SteadyResult, error) {
	cfg = cfg.defaults()
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	net.SetAllocMode(cfg.Alloc)
	applyOversub(net, trunks, TrialConfig{Oversub: cfg.Oversub}.defaults())

	var resolver hadoop.PathResolver
	var sink instrument.Sink = nullSink{}
	var py *core.Pythia
	var fr *flight.Recorder
	icfg := instrument.Config{}
	if cfg.CollectFlight {
		fr = flight.NewRecorder(eng)
		net.SetFlightRecorder(fr)
		icfg.Flight = fr
	}
	switch cfg.Scheduler {
	case ECMP:
		resolver = ecmp.New(g, 2, cfg.Seed)
	case Pythia:
		ofc := openflow.NewController(eng, net, 0)
		py = core.New(eng, net, ofc, core.Config{}.EnableAggregation())
		if cfg.Alloc == netsim.AllocScan {
			py.SetScanBaseline(true)
		}
		if fr != nil {
			ofc.SetFlightRecorder(fr)
			py.SetFlightRecorder(fr)
		}
		sink = py
		resolver = ofc
	case Hedera:
		resolver = hedera.New(eng, net, cfg.Seed, hedera.Config{})
	default:
		return SteadyResult{}, fmt.Errorf("bench: unknown scheduler %d", cfg.Scheduler)
	}
	cluster := hadoop.NewCluster(eng, net, hosts, resolver, hadoop.Config{})
	instrument.Attach(eng, cluster, sink, icfg)

	stream := workload.OpenLoop(cfg.Workload)
	arrivals := stream.Until(cfg.HorizonSec)

	var (
		byJobID   = map[int]*steadyArrival{}
		queue     []*steadyArrival // admission backlog, selected by priority
		inFlight  int
		submitErr error
		// Time integral of inFlight for the utilization proxy.
		inFlightIntegral float64
		lastTransition   float64
	)
	accountTransition := func() {
		now := float64(eng.Now())
		inFlightIntegral += float64(inFlight) * (now - lastTransition)
		lastTransition = now
	}
	admit := func(a *steadyArrival) {
		h, err := cluster.Submit(a.job.Spec)
		if err != nil {
			if submitErr == nil {
				submitErr = fmt.Errorf("steady: submit %q: %w", a.job.Spec.Name, err)
			}
			return
		}
		accountTransition()
		a.handle = h
		a.started = true
		inFlight++
		byJobID[h.ID] = a
	}
	// Admission selection: highest tenant priority first, FIFO (arrival
	// order) within a priority.
	popQueue := func() *steadyArrival {
		best := -1
		for i, a := range queue {
			if best < 0 || a.job.Priority > queue[best].job.Priority {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		a := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		return a
	}
	cluster.OnJobDone(func(j *hadoop.Job) {
		a, ok := byJobID[j.ID]
		if !ok {
			return
		}
		accountTransition()
		a.done = true
		a.doneAt = float64(eng.Now())
		inFlight--
		if next := popQueue(); next != nil {
			admit(next)
		}
	})

	recs := make([]*steadyArrival, len(arrivals))
	for i := range arrivals {
		a := &steadyArrival{job: arrivals[i]}
		recs[i] = a
		eng.At(sim.Time(a.job.SubmitAtSec), func() {
			if inFlight < cfg.MaxInFlight {
				admit(a)
			} else {
				queue = append(queue, a)
			}
		})
	}
	eng.RunUntil(sim.Time(cfg.HorizonSec))
	// Close the in-flight integral over the tail of the horizon.
	accountTransition()
	if submitErr != nil {
		return SteadyResult{}, submitErr
	}

	res := SteadyResult{
		Scheduler:      cfg.Scheduler.String(),
		RateJobsPerSec: cfg.Workload.Defaults().BaseRateJobsPerSec,
		HorizonSec:     cfg.HorizonSec,
		Submitted:      len(recs),
		QueuedAtEnd:    len(queue),
	}
	var offered float64
	var completions []*steadyArrival
	for _, a := range recs {
		offered += a.job.Spec.TotalShuffleBytes()
		switch {
		case a.done:
			completions = append(completions, a)
		case a.started:
			res.InFlightAtEnd++
		}
	}
	res.OfferedShuffleBps = offered * 8 / cfg.HorizonSec
	res.Completed = len(completions)
	res.MeanInFlight = inFlightIntegral / cfg.HorizonSec

	// Completions arrive in completion order already (OnJobDone fires in
	// simulated-time order); MSER-5 truncates the initial transient.
	jcts := make([]float64, len(completions))
	for i, a := range completions {
		jcts[i] = a.doneAt - a.job.SubmitAtSec
	}
	cut, ok := stats.MSER5(jcts)
	res.WarmupOK = ok
	res.WarmupJobs = cut
	if cut > 0 {
		res.WarmupEndSec = completions[cut-1].doneAt
	}
	steady := completions[cut:]
	steadyJCT := jcts[cut:]
	if len(steadyJCT) > 0 {
		s := stats.Summarize(steadyJCT)
		res.MeanSec, res.P50Sec, res.P95Sec, res.P99Sec = s.Mean, s.P50, s.P95, s.P99
	}

	// Per-tenant SLO attainment over the steady window. Unfinished jobs
	// older than their SLO at the horizon are definite violations — without
	// them a scheduler that starves its hardest jobs would score perfectly.
	type tacc struct {
		met, n, late int
		slo          float64
		jcts         []float64
	}
	perTenant := map[string]*tacc{}
	var tenantOrder []string
	acc := func(name string, slo float64) *tacc {
		t := perTenant[name]
		if t == nil {
			t = &tacc{slo: slo}
			perTenant[name] = t
			tenantOrder = append(tenantOrder, name)
		}
		return t
	}
	metTotal, lateTotal := 0, 0
	for i, a := range steady {
		t := acc(a.job.Tenant, a.job.SLOSec)
		t.n++
		t.jcts = append(t.jcts, steadyJCT[i])
		if steadyJCT[i] <= a.job.SLOSec {
			t.met++
			metTotal++
		}
	}
	for _, a := range recs {
		if !a.done && cfg.HorizonSec-a.job.SubmitAtSec > a.job.SLOSec {
			acc(a.job.Tenant, a.job.SLOSec).late++
			lateTotal++
		}
	}
	sort.Strings(tenantOrder)
	for _, name := range tenantOrder {
		t := perTenant[name]
		ts := TenantSteady{
			Tenant:       name,
			Completed:    t.n,
			CensoredLate: t.late,
			SLOSec:       t.slo,
			P95Sec:       stats.Summarize(t.jcts).P95,
		}
		if scored := t.n + t.late; scored > 0 {
			ts.SLOAttainment = float64(t.met) / float64(scored)
		}
		res.Tenants = append(res.Tenants, ts)
	}
	if scored := len(steady) + lateTotal; scored > 0 {
		res.SLOAttainment = float64(metTotal) / float64(scored)
	}

	// Windowed tails from warm-up end to the horizon, joined with the
	// flight recorder's per-flow race outcomes.
	var races []flight.FlowRace
	if fr != nil {
		races = flight.FlowRaces(fr.Events())
		q := flight.ComputeQuality(fr.Events())
		res.Quality = &q
	}
	for start := res.WarmupEndSec; start < cfg.HorizonSec; start += cfg.WindowSec {
		end := start + cfg.WindowSec
		if end > cfg.HorizonSec {
			end = cfg.HorizonSec
		}
		w := WindowStat{StartSec: start, EndSec: end}
		var wj []float64
		for i, a := range steady {
			if a.doneAt >= start && a.doneAt < end {
				wj = append(wj, steadyJCT[i])
			}
		}
		w.Jobs = len(wj)
		if len(wj) > 0 {
			s := stats.Summarize(wj)
			w.P50Sec, w.P95Sec, w.P99Sec = s.P50, s.P95, s.P99
		}
		late := 0
		for _, r := range races {
			if t := float64(r.T); t >= start && t < end {
				w.races++
				if r.Late {
					late++
				}
			}
		}
		if w.races > 0 {
			w.LateFraction = float64(late) / float64(w.races)
		}
		res.Windows = append(res.Windows, w)
	}
	var lateXs, tailYs []float64
	for _, w := range res.Windows {
		if w.Jobs > 0 && w.races > 0 {
			lateXs = append(lateXs, w.LateFraction)
			tailYs = append(tailYs, w.P99Sec)
		}
	}
	res.LateTailCorrelation = stats.Pearson(lateXs, tailYs)

	if py != nil {
		for _, a := range completions {
			res.LeakedBookings += py.OutstandingBookings(a.handle.ID)
		}
	}
	return res, nil
}

// SteadySchedulers is the frontier's scheduler sweep.
func SteadySchedulers() []Scheduler { return []Scheduler{ECMP, Hedera, Pythia} }

// DefaultSteadyRates spans light load to near saturation of the default
// two-rack testbed at 1:10 oversubscription with the default tenant mix:
// at 0.05 job/s the fabric idles between jobs, at 0.20 the admission queue
// is persistently occupied and the scheduler choice dominates the tail.
func DefaultSteadyRates() []float64 { return []float64{0.05, 0.12, 0.20} }

// RunSteadyFrontier sweeps arrival rates × schedulers and returns one
// SteadyResult per (rate, scheduler) cell, rates outermost — the
// utilization-vs-SLO frontier. Every cell is an independent deterministic
// simulation, so they fan out across the harness worker pool; results are
// assembled in sweep order and are byte-identical at any parallelism.
func RunSteadyFrontier(base SteadyConfig, rates []float64) ([]SteadyResult, error) {
	scheds := SteadySchedulers()
	out := make([]SteadyResult, len(rates)*len(scheds))
	errs := make([]error, len(out))
	forEachIndex(len(out), func(i int) {
		cfg := base
		cfg.Workload.BaseRateJobsPerSec = rates[i/len(scheds)]
		cfg.Scheduler = scheds[i%len(scheds)]
		out[i], errs[i] = RunSteady(cfg)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FormatSteadyFrontier renders the frontier as the E14 table.
func FormatSteadyFrontier(rows []SteadyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== E14: open-loop steady state — utilization vs SLO frontier ===\n")
	fmt.Fprintf(&b, "%-12s %-8s %6s %6s %9s %9s %9s %7s %8s\n",
		"rate(job/s)", "sched", "done", "queue", "p50(s)", "p95(s)", "p99(s)", "SLO%", "late-corr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.3f %-8s %6d %6d %9.1f %9.1f %9.1f %6.1f%% %8.2f\n",
			r.RateJobsPerSec, r.Scheduler, r.Completed, r.QueuedAtEnd,
			r.P50Sec, r.P95Sec, r.P99Sec, r.SLOAttainment*100, r.LateTailCorrelation)
	}
	b.WriteString("(SLO% is job-weighted per-tenant attainment over the post-warm-up window;\n")
	b.WriteString(" late-corr is the per-window correlation of prediction lateness with p99 JCT)\n")
	return b.String()
}
